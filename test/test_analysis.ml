(* Validation of the dynamic analyzers (lockset, happens-before,
   lock-order) and the static spec linter.

   The seeded mutants pin down the division of labour: the broken
   spinlock is invisible to lockset (its critical sections consistently
   "hold" the lock) but caught by happens-before (no interlocked TAS, no
   acquire edge); the naive-broadcast baseline is a lockset catch (waiter
   count touched outside the mutex); lock inversion is a lock-order cycle
   whatever the schedule.  Conforming backends must be silent across many
   seeds, and recording must not perturb execution at all. *)

module An = Threads_analysis.Analysis
module Mu = Threads_analysis.Mutants
module Lint = Threads_analysis.Lint
module Bk = Threads_backend.Backend
module Wl = Threads_backend.Workload
module M = Firefly.Machine

let contains s sub =
  let n = String.length sub in
  let rec go i = i + n <= String.length s && (String.sub s i n = sub || go (i + 1)) in
  n = 0 || go 0

let seeds n = List.init n (fun i -> 100 + (7 * i))

(* --- mutants --- *)

let check_scenario (s : Mu.scenario) seed =
  let r = An.of_machine (s.Mu.m_run ~seed) in
  let ctx what =
    Printf.sprintf "%s (seed %d): %s" s.Mu.m_name seed what
  in
  match s.Mu.m_expect with
  | Mu.Hb ->
    Alcotest.(check bool) (ctx "hb race found") true (r.An.hb <> []);
    Alcotest.(check (list string))
      (ctx "lockset stays fooled — complementarity")
      []
      (List.map
         (Format.asprintf "%a" Threads_analysis.Lockset.pp_race)
         r.An.lockset)
  | Mu.Lockset ->
    Alcotest.(check bool) (ctx "lockset race found") true (r.An.lockset <> [])
  | Mu.Lock_order ->
    Alcotest.(check bool) (ctx "lock-order cycle found") true
      (An.cycles r <> [])
  | Mu.Clean ->
    Alcotest.(check (list string)) (ctx "no findings") [] (An.findings r)

let test_mutants () =
  List.iter
    (fun s -> List.iter (check_scenario s) (seeds 5))
    Mu.all

let test_mutant_reports_actionable () =
  (* The messages must name the word, the threads and the access kinds —
     enough to act on without re-running. *)
  let r = An.of_machine (Mu.broken_spinlock ~seed:3) in
  (match r.An.hb with
  | race :: _ ->
    let msg = Format.asprintf "%a" Threads_analysis.Hb.pp_race race in
    Alcotest.(check bool) "names the racy word" true
      (race.Threads_analysis.Hb.h_name = "mutant-counter");
    List.iter
      (fun part ->
        Alcotest.(check bool)
          (Printf.sprintf "message mentions %S" part)
          true
          (contains msg part))
      [ "mutant-counter"; "unordered" ]
  | [] -> Alcotest.fail "broken spinlock not flagged");
  let r = An.of_machine (Mu.lock_inversion ~seed:3) in
  match An.cycles r with
  | cycle :: _ ->
    Alcotest.(check int) "binary deadlock cycle" 2 (List.length cycle);
    let msg =
      Format.asprintf "%a"
        (Threads_analysis.Lockorder.pp_cycle ~lock_name:r.An.lock_name)
        cycle
    in
    Alcotest.(check bool) "cycle names mutexes" true
      (contains msg "mutex#")
  | [] -> Alcotest.fail "lock inversion not flagged"

(* --- clean backends stay silent --- *)

let instrumented name =
  let b = Option.get (Bk.find name) in
  match b.Bk.instrument with
  | Bk.Machine_access f -> (b, f)
  | _ -> Alcotest.fail (name ^ ": expected a machine-access instrument")

let test_clean_backends () =
  List.iter
    (fun bname ->
      let b, f = instrumented bname in
      List.iter
        (fun (wl : Wl.t) ->
          if Bk.supports b wl then
            List.iter
              (fun seed ->
                let _, machine = f ~seed wl in
                let r = An.of_machine machine in
                Alcotest.(check (list string))
                  (Printf.sprintf "%s/%s seed %d silent" bname wl.Wl.name seed)
                  [] (An.findings r))
              (seeds 20))
        Wl.all)
    [ "sim"; "uniproc" ]

let test_multicore_lock_order () =
  let b = Option.get (Bk.find "multicore") in
  let f =
    match b.Bk.instrument with
    | Bk.Lock_trace f -> f
    | _ -> Alcotest.fail "multicore: expected a lock-trace instrument"
  in
  List.iter
    (fun wname ->
      let wl = Option.get (Wl.find wname) in
      let _, events = f ~seed:1 wl in
      let r = An.of_lock_events events in
      Alcotest.(check bool)
        (Printf.sprintf "multicore/%s lock order acyclic" wname)
        true (An.clean r))
    [ "mutex"; "condvar"; "broadcast" ]

(* --- recording identity --- *)

let test_recording_identity () =
  (* Instrumented and plain runs of the same (backend, workload, seed)
     must agree on step count, observable and the full linearized trace:
     recording is host-side bookkeeping, never an instruction. *)
  List.iter
    (fun bname ->
      let b, f = instrumented bname in
      List.iter
        (fun (wl : Wl.t) ->
          List.iter
            (fun seed ->
              let plain = b.Bk.run ~seed wl in
              let rec_outcome, machine = f ~seed wl in
              let ctx what =
                Printf.sprintf "%s/%s seed %d: %s" bname wl.Wl.name seed what
              in
              Alcotest.(check bool) (ctx "recording was on") true
                (M.recording machine && M.access_count machine > 0);
              Alcotest.(check (option int))
                (ctx "same step count") plain.Bk.steps rec_outcome.Bk.steps;
              Alcotest.(check (option string))
                (ctx "same observable") plain.Bk.observable
                rec_outcome.Bk.observable;
              Alcotest.(check (list string))
                (ctx "same trace")
                (List.map Spec_trace.event_to_string plain.Bk.trace)
                (List.map Spec_trace.event_to_string rec_outcome.Bk.trace))
            (seeds 5))
        [ Option.get (Wl.find "mutex"); Option.get (Wl.find "condvar") ])
    [ "sim"; "uniproc" ]

(* --- held-lock bookkeeping --- *)

let test_held_locks_balanced () =
  (* Every lock acquisition in the stream must be matched: at the end of a
     completed run no access should have been recorded, on any backend,
     with a held set that was never released (the last accesses of each
     thread run outside all critical sections in these workloads). *)
  let _, machine = (snd (instrumented "sim")) ~seed:11 (Option.get (Wl.find "mutex")) in
  let per_thread = Hashtbl.create 8 in
  List.iter
    (fun (a : M.access) -> Hashtbl.replace per_thread a.a_tid a.a_locks)
    (M.accesses machine);
  Hashtbl.iter
    (fun tid locks ->
      Alcotest.(check (list int))
        (Printf.sprintf "t%d ends with empty held set" tid)
        [] locks)
    per_thread

(* --- the spec linter --- *)

let test_linter_accepts_threads_spec () =
  let iface =
    Spec_core.Parser.interface_of_string Spec_core.Threads_interface.source
  in
  let findings = Lint.lint iface in
  Alcotest.(check (list string))
    "no errors on the shipped spec" []
    (List.map
       (Format.asprintf "%a" Lint.pp_finding)
       (Lint.errors findings))

let lint_errors_of src =
  Lint.errors (Lint.lint (Spec_core.Parser.interface_of_string src))

let test_linter_rejects_dead_when () =
  let errs =
    lint_errors_of
      "INTERFACE Bad\n\
       TYPE Mutex = Thread INITIALLY NIL\n\
       ATOMIC PROCEDURE Acquire(VAR m: Mutex)\n\
       MODIFIES AT MOST [m]\n\
       RETURNS\n\
       WHEN m = NIL & ~(m = NIL)\n\
       ENSURES m_post = SELF\n"
  in
  Alcotest.(check bool) "dead WHEN reported" true
    (List.exists
       (fun (f : Lint.finding) ->
         contains f.Lint.f_msg "never satisfiable")
       errs)

let test_linter_rejects_unsatisfiable_ensures () =
  let errs =
    lint_errors_of
      "INTERFACE Bad\n\
       TYPE Mutex = Thread INITIALLY NIL\n\
       ATOMIC PROCEDURE Acquire(VAR m: Mutex)\n\
       MODIFIES AT MOST [m]\n\
       RETURNS\n\
       WHEN m = NIL\n\
       ENSURES m_post = SELF & ~(m_post = SELF)\n"
  in
  Alcotest.(check bool) "unimplementable ENSURES reported" true
    (List.exists
       (fun (f : Lint.finding) ->
         contains f.Lint.f_msg "no post state")
       errs)

let test_linter_rejects_ensures_outside_modifies () =
  (* ENSURES constrains m_post but no MODIFIES clause names m: a
     well-formedness violation, reported before any clause checking. *)
  let errs =
    lint_errors_of
      "INTERFACE Bad\n\
       TYPE Mutex = Thread INITIALLY NIL\n\
       ATOMIC PROCEDURE Acquire(VAR m: Mutex)\n\
       RETURNS\n\
       WHEN m = NIL\n\
       ENSURES m_post = SELF\n"
  in
  Alcotest.(check bool) "ENSURES outside MODIFIES reported" true (errs <> [])

let test_linter_warns_unconstrained_modifies () =
  let findings =
    Lint.lint
      (Spec_core.Parser.interface_of_string
         "INTERFACE Odd\n\
          TYPE Mutex = Thread INITIALLY NIL\n\
          ATOMIC PROCEDURE Poke(VAR m: Mutex)\n\
          MODIFIES AT MOST [m]\n\
          RETURNS\n\
          ENSURES TRUE\n")
  in
  Alcotest.(check bool) "no errors" true (Lint.errors findings = []);
  Alcotest.(check bool) "warning about unconstrained m" true
    (List.exists
       (fun (f : Lint.finding) ->
         f.Lint.f_severity = Lint.Warning
         && contains f.Lint.f_msg "no ENSURES constrains")
       findings)

let suite =
  ( "analysis",
    [
      Alcotest.test_case "mutants caught across seeds" `Slow test_mutants;
      Alcotest.test_case "mutant reports are actionable" `Quick
        test_mutant_reports_actionable;
      Alcotest.test_case "clean backends silent across 20 seeds" `Slow
        test_clean_backends;
      Alcotest.test_case "multicore lock order acyclic" `Slow
        test_multicore_lock_order;
      Alcotest.test_case "recording leaves runs identical" `Slow
        test_recording_identity;
      Alcotest.test_case "held-lock sets balance" `Quick
        test_held_locks_balanced;
      Alcotest.test_case "linter accepts the Threads spec" `Quick
        test_linter_accepts_threads_spec;
      Alcotest.test_case "linter rejects a dead WHEN" `Quick
        test_linter_rejects_dead_when;
      Alcotest.test_case "linter rejects unsatisfiable ENSURES" `Quick
        test_linter_rejects_unsatisfiable_ensures;
      Alcotest.test_case "linter rejects ENSURES outside MODIFIES" `Quick
        test_linter_rejects_ensures_outside_modifies;
      Alcotest.test_case "linter warns on unconstrained MODIFIES" `Quick
        test_linter_warns_unconstrained_modifies;
    ] )
