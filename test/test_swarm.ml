(* Swarm testing: randomly generated client programs run on the simulator
   under random schedules; every run must terminate cleanly and its trace
   must conform to the formal specification.

   Generated programs are deadlock-free by construction: nested locks are
   always taken in global object order, semaphore P/V pairs are properly
   bracketed, alerts are fire-and-forget.  Condition variables are
   exercised by the second property with balanced producer/consumer
   counts. *)

module Tid = Threads_util.Tid

type op =
  | Lock_region of int list * int  (* sorted mutex indices, work ticks *)
  | Sem_region of int * int
  | Alert_peer of int  (* worker index *)
  | Poll_alert
  | Yield
  | Work of int

let gen_op nworkers =
  let open QCheck.Gen in
  frequency
    [
      ( 4,
        map2
          (fun subset ticks ->
            Lock_region (List.sort_uniq compare subset, 1 + ticks))
          (list_size (int_range 1 2) (int_range 0 2))
          (int_range 0 5) );
      (2, map2 (fun s t -> Sem_region (s, 1 + t)) (int_range 0 1) (int_range 0 4));
      (1, map (fun w -> Alert_peer w) (int_range 0 (nworkers - 1)));
      (1, return Poll_alert);
      (1, return Yield);
      (2, map (fun t -> Work (1 + t)) (int_range 0 4));
    ]

let gen_workload =
  let open QCheck.Gen in
  int_range 2 4 >>= fun nworkers ->
  list_size (int_range 1 6) (gen_op nworkers) |> list_repeat nworkers
  >>= fun progs ->
  int_range 0 999 >>= fun seed -> return (nworkers, progs, seed)

let print_workload (nworkers, progs, seed) =
  let op_str = function
    | Lock_region (ms, t) ->
      Printf.sprintf "lock%s/%d"
        (String.concat "" (List.map string_of_int ms))
        t
    | Sem_region (s, t) -> Printf.sprintf "sem%d/%d" s t
    | Alert_peer w -> Printf.sprintf "alert%d" w
    | Poll_alert -> "poll"
    | Yield -> "yield"
    | Work t -> Printf.sprintf "work%d" t
  in
  Printf.sprintf "workers=%d seed=%d [%s]" nworkers seed
    (String.concat " | "
       (List.map (fun p -> String.concat ";" (List.map op_str p)) progs))

let run_workload runner (nworkers, progs, seed) =
  let report =
    runner ~seed (fun sync ->
        let module S =
          (val sync : Taos_threads.Sync_intf.SYNC with type thread = Tid.t)
        in
        let mutexes = Array.init 3 (fun _ -> S.mutex ()) in
        let sems = Array.init 2 (fun _ -> S.semaphore ()) in
        let workers = Array.make nworkers None in
        let interp prog () =
          List.iter
            (fun op ->
              match op with
              | Lock_region (ms, ticks) ->
                let rec nest = function
                  | [] -> Firefly.Machine.Ops.tick ticks
                  | i :: rest -> S.with_lock mutexes.(i) (fun () -> nest rest)
                in
                nest ms
              | Sem_region (s, ticks) ->
                S.p sems.(s);
                Firefly.Machine.Ops.tick ticks;
                S.v sems.(s)
              | Alert_peer w -> (
                match workers.(w) with
                | Some t -> S.alert t
                | None -> ())
              | Poll_alert -> ignore (S.test_alert ())
              | Yield -> S.yield ()
              | Work t -> Firefly.Machine.Ops.tick t)
            prog
        in
        List.iteri
          (fun i prog -> workers.(i) <- Some (S.fork (interp prog)))
          progs;
        Array.iter (function Some t -> S.join t | None -> ()) workers;
        (* drain any alert aimed at the main thread's id by accident *)
        ignore (S.test_alert ()))
  in
  (match report.Firefly.Interleave.verdict with
  | Firefly.Interleave.Completed -> ()
  | Firefly.Interleave.Deadlock _ -> failwith "deadlock"
  | Firefly.Interleave.Step_limit -> failwith "step limit");
  (match Firefly.Machine.failures report.Firefly.Interleave.machine with
  | [] -> ()
  | (tid, e) :: _ ->
    failwith (Printf.sprintf "t%d: %s" tid (Printexc.to_string e)));
  let rep =
    Threads_model.Conformance.check Spec_core.Threads_interface.final
      (Firefly.Machine.trace report.Firefly.Interleave.machine)
  in
  if not (Threads_model.Conformance.ok rep) then
    failwith
      (Format.asprintf "%a" Threads_model.Conformance.pp_report rep);
  true

let prop_swarm_sim =
  QCheck.Test.make ~name:"random programs conform (firefly)" ~count:120
    (QCheck.make gen_workload ~print:print_workload)
    (run_workload (fun ~seed body -> Taos_threads.Api.run ~seed body))

let prop_swarm_uniproc =
  QCheck.Test.make ~name:"random programs conform (uniproc)" ~count:120
    (QCheck.make gen_workload ~print:print_workload)
    (run_workload (fun ~seed body ->
         Taos_threads.Uniproc.run ~seed ~strategy:(Firefly.Sched.random seed)
           body))

(* Balanced producer/consumer with random parameters: conformance plus
   item accounting. *)
let gen_pc =
  let open QCheck.Gen in
  QCheck.make
    ~print:(fun (p, c, ipc, cap, seed) ->
      Printf.sprintf "producers=%d consumers=%d items/c=%d cap=%d seed=%d" p c
        ipc cap seed)
    (int_range 1 3 >>= fun producers ->
     int_range 1 3 >>= fun consumers ->
     int_range 1 5 >>= fun items_per_consumer ->
     int_range 1 3 >>= fun cap ->
     int_range 0 999 >>= fun seed ->
     return (producers, consumers, items_per_consumer, cap, seed))

let prop_pc_sim =
  QCheck.Test.make ~name:"random producer/consumer conforms" ~count:120 gen_pc
    (fun (producers, consumers, items_per_consumer, cap, seed) ->
      (* keep totals divisible: each producer makes consumers*ipc /
         producers... instead: total = lcm-free, producers produce
         total/producers with remainder to the first producer *)
      let total = consumers * items_per_consumer in
      let report =
        Taos_threads.Api.run ~seed (fun sync ->
            let module S =
              (val sync : Taos_threads.Sync_intf.SYNC with type thread = Tid.t)
            in
            let m = S.mutex () in
            let nonempty = S.condition () in
            let nonfull = S.condition () in
            let buf = ref 0 in
            let eaten = ref 0 in
            let producer n () =
              for _ = 1 to n do
                S.with_lock m (fun () ->
                    while !buf >= cap do
                      S.wait m nonfull
                    done;
                    incr buf;
                    S.signal nonempty)
              done
            in
            let consumer () =
              for _ = 1 to items_per_consumer do
                S.with_lock m (fun () ->
                    while !buf = 0 do
                      S.wait m nonempty
                    done;
                    decr buf;
                    incr eaten;
                    S.signal nonfull)
              done
            in
            let base = total / producers in
            let extra = total - (base * producers) in
            let ps =
              List.init producers (fun i ->
                  S.fork (producer (base + if i = 0 then extra else 0)))
            in
            let cs = List.init consumers (fun _ -> S.fork consumer) in
            List.iter S.join (ps @ cs);
            if !eaten <> total then failwith "accounting")
      in
      (match report.Firefly.Interleave.verdict with
      | Firefly.Interleave.Completed -> ()
      | _ -> failwith "did not complete");
      Threads_model.Conformance.ok
        (Threads_model.Conformance.check
           Spec_core.Threads_interface.final (Firefly.Machine.trace report.Firefly.Interleave.machine)))

let suite =
  let q = QCheck_alcotest.to_alcotest in
  ("swarm", [ q prop_swarm_sim; q prop_swarm_uniproc; q prop_pc_sim ])
