(* Swarm testing: randomly generated client programs run under random
   schedules; every run must terminate cleanly and its trace must conform
   to the formal specification.

   Generation lives in lib/gen (the generative chaos engine): programs
   are drawn per-policy over random object graphs — ordered lock subsets,
   bracketed semaphores, condition flags and producer/consumer tokens
   with root coverage, alert handshakes, interrupt-context V — and lifted
   into backend-generic workloads, so the same swarm drives every
   conforming backend: the simulator, the cooperative uniprocessor, and
   the OCaml 5 multicore implementation on real domains. *)

module Tid = Threads_util.Tid
module Rng = Threads_util.Rng
module Gen = Threads_gen
module Bk = Threads_backend.Backend

let backend name =
  match Bk.find name with
  | Some b -> b
  | None -> Alcotest.failf "backend %S not registered" name

(* One QCheck case = one generation seed; program, schedule seed and
   policy all derive from it deterministically, so a failure's printed
   seed fully reproduces the run. *)
let scenario_of ~policies b base =
  let rng = Rng.cell ~base ~index:0 in
  let policy = policies.(base mod Array.length policies) in
  let program =
    Gen.Generate.program ~policy ~features:b.Bk.supports rng
  in
  {
    Gen.Oracle.program;
    policy;
    seed = Rng.int rng 1_000_000;
    plan = None;
  }

let swarm_prop ?policies:(ps = Gen.Generate.[| Safe; Free; Irq |]) name
    ~count =
  let b = backend name in
  let scenario_of = scenario_of ~policies:ps in
  QCheck.Test.make
    ~name:(Printf.sprintf "random programs conform (%s)" name)
    ~count
    (QCheck.make
       QCheck.Gen.(int_range 0 1_000_000)
       ~print:(fun base ->
         let s = scenario_of b base in
         Format.asprintf "base=%d policy=%s seed=%d@.%a" base
           (Gen.Generate.policy_name s.Gen.Oracle.policy)
           s.Gen.Oracle.seed Gen.Prog.render s.Gen.Oracle.program))
    (fun base ->
      match Gen.Oracle.run b (scenario_of b base) with
      | Gen.Oracle.Pass _ -> true
      | Gen.Oracle.Fail (kind, detail) ->
        QCheck.Test.fail_reportf "%s: %s (%s)" name
          (Gen.Oracle.kind_name kind) detail)

let prop_swarm_sim = swarm_prop "sim" ~count:120
let prop_swarm_uniproc = swarm_prop "uniproc" ~count:120

(* Real domains per run, and no deadlock detector on hardware: keep the
   count modest and generate only deadlock-free-by-construction programs
   (a Free-policy deadlock would hang the suite, not fail it). *)
let prop_swarm_multicore =
  swarm_prop "multicore" ~policies:[| Gen.Generate.Safe |] ~count:40

(* Balanced producer/consumer with random parameters: conformance plus
   item accounting. *)
let gen_pc =
  let open QCheck.Gen in
  QCheck.make
    ~print:(fun (p, c, ipc, cap, seed) ->
      Printf.sprintf "producers=%d consumers=%d items/c=%d cap=%d seed=%d" p c
        ipc cap seed)
    (int_range 1 3 >>= fun producers ->
     int_range 1 3 >>= fun consumers ->
     int_range 1 5 >>= fun items_per_consumer ->
     int_range 1 3 >>= fun cap ->
     int_range 0 999 >>= fun seed ->
     return (producers, consumers, items_per_consumer, cap, seed))

let prop_pc_sim =
  QCheck.Test.make ~name:"random producer/consumer conforms" ~count:120 gen_pc
    (fun (producers, consumers, items_per_consumer, cap, seed) ->
      (* keep totals divisible: each producer makes consumers*ipc /
         producers... instead: total = lcm-free, producers produce
         total/producers with remainder to the first producer *)
      let total = consumers * items_per_consumer in
      let report =
        Taos_threads.Api.run ~seed (fun sync ->
            let module S =
              (val sync : Taos_threads.Sync_intf.SYNC with type thread = Tid.t)
            in
            let m = S.mutex () in
            let nonempty = S.condition () in
            let nonfull = S.condition () in
            let buf = ref 0 in
            let eaten = ref 0 in
            let producer n () =
              for _ = 1 to n do
                S.with_lock m (fun () ->
                    while !buf >= cap do
                      S.wait m nonfull
                    done;
                    incr buf;
                    S.signal nonempty)
              done
            in
            let consumer () =
              for _ = 1 to items_per_consumer do
                S.with_lock m (fun () ->
                    while !buf = 0 do
                      S.wait m nonempty
                    done;
                    decr buf;
                    incr eaten;
                    S.signal nonfull)
              done
            in
            let base = total / producers in
            let extra = total - (base * producers) in
            let ps =
              List.init producers (fun i ->
                  S.fork (producer (base + if i = 0 then extra else 0)))
            in
            let cs = List.init consumers (fun _ -> S.fork consumer) in
            List.iter S.join (ps @ cs);
            if !eaten <> total then failwith "accounting")
      in
      (match report.Firefly.Interleave.verdict with
      | Firefly.Interleave.Completed -> ()
      | _ -> failwith "did not complete");
      Threads_model.Conformance.ok
        (Threads_model.Conformance.check
           Spec_core.Threads_interface.final (Firefly.Machine.trace report.Firefly.Interleave.machine)))

let suite =
  let q = QCheck_alcotest.to_alcotest in
  ( "swarm",
    [
      q prop_swarm_sim;
      q prop_swarm_uniproc;
      q prop_swarm_multicore;
      q prop_pc_sim;
    ] )
