(* Tests for the simulator core: memory effects, scheduling, blocking,
   accounting, interrupts, and atomic emit. *)

module M = Firefly.Machine
module Ops = Firefly.Machine.Ops

let run_rr ?(max_steps = 100_000) build =
  Firefly.Interleave.run ~max_steps ~strategy:(Firefly.Sched.round_robin ())
    build

let completed (r : Firefly.Interleave.report) =
  match r.verdict with
  | Firefly.Interleave.Completed -> true
  | Firefly.Interleave.Deadlock _ | Firefly.Interleave.Step_limit -> false

let no_failures (r : Firefly.Interleave.report) =
  M.failures r.machine = []

let test_memory_ops () =
  let out = ref (-1) in
  let r =
    run_rr (fun machine ->
        ignore
          (M.spawn_root machine (fun () ->
               let a = Ops.alloc 2 in
               Ops.write a 5;
               Ops.write (a + 1) 7;
               let x = Ops.read a + Ops.read (a + 1) in
               let old = Ops.faa a 10 in
               assert (old = 5);
               assert (Ops.read a = 15);
               assert (not (Ops.tas (a + 1) = false) || Ops.read (a + 1) = 1);
               out := x)))
  in
  Alcotest.(check bool) "completed" true (completed r && no_failures r);
  Alcotest.(check int) "arith" 12 !out

let test_tas_semantics () =
  let r =
    run_rr (fun machine ->
        ignore
          (M.spawn_root machine (fun () ->
               let a = Ops.alloc 1 in
               assert (Ops.tas a = false);
               (* was 0: acquired *)
               assert (Ops.tas a = true);
               (* was 1: busy *)
               Ops.clear a;
               assert (Ops.tas a = false))))
  in
  Alcotest.(check bool) "tas" true (completed r && no_failures r)

let test_spawn_join () =
  let order = ref [] in
  let r =
    run_rr (fun machine ->
        ignore
          (M.spawn_root machine (fun () ->
               let child =
                 Ops.spawn (fun () -> order := "child" :: !order)
               in
               Ops.join child;
               order := "parent" :: !order)))
  in
  Alcotest.(check bool) "completed" true (completed r);
  Alcotest.(check (list string)) "join ordering" [ "parent"; "child" ] !order

let test_join_finished () =
  let r =
    run_rr (fun machine ->
        ignore
          (M.spawn_root machine (fun () ->
               let child = Ops.spawn (fun () -> ()) in
               (* spin until the child has finished, then join: must not
                  block forever *)
               for _ = 1 to 50 do
                 Ops.yield ()
               done;
               Ops.join child)))
  in
  Alcotest.(check bool) "join after finish" true (completed r)

let test_deschedule_ready () =
  let r =
    run_rr (fun machine ->
        ignore
          (M.spawn_root machine (fun () ->
               let a = Ops.alloc 1 in
               Ops.write a 1;
               let sleeper =
                 Ops.spawn (fun () -> Ops.deschedule_and_clear a)
               in
               (* wait for the sleeper to go down (it clears a) *)
               while Ops.read a <> 0 do
                 Ops.yield ()
               done;
               Ops.ready sleeper;
               Ops.join sleeper)))
  in
  Alcotest.(check bool) "deschedule/ready" true (completed r && no_failures r)

let test_wakeup_pending () =
  (* ready() delivered before the deschedule executes must not be lost *)
  let r =
    run_rr (fun machine ->
        ignore
          (M.spawn_root machine (fun () ->
               let a = Ops.alloc 1 in
               let self = Ops.self () in
               (* wake ourselves first: the later deschedule is a no-op *)
               Ops.ready self;
               Ops.deschedule_and_clear a)))
  in
  Alcotest.(check bool) "wakeup-waiting switch" true
    (completed r && no_failures r)

let test_deadlock_detection () =
  let r =
    run_rr (fun machine ->
        ignore
          (M.spawn_root machine (fun () ->
               let a = Ops.alloc 1 in
               Ops.deschedule_and_clear a)))
  in
  (match r.Firefly.Interleave.verdict with
  | Firefly.Interleave.Deadlock [ 0 ] -> ()
  | _ -> Alcotest.fail "expected Deadlock [t0]")

let test_interrupt_cannot_block () =
  let r =
    run_rr (fun machine ->
        ignore
          (M.spawn_root machine ~interrupt:true (fun () ->
               let a = Ops.alloc 1 in
               Ops.deschedule_and_clear a)))
  in
  (match M.failures r.Firefly.Interleave.machine with
  | [ (0, M.Interrupt_blocked ctx) ] ->
    Alcotest.(check bool) "context names the blocking op" true
      (String.length ctx > 0)
  | _ -> Alcotest.fail "expected Interrupt_blocked failure")

let test_counters_and_instr () =
  let r =
    run_rr (fun machine ->
        ignore
          (M.spawn_root machine (fun () ->
               let a = Ops.alloc 1 in
               Ops.incr_counter "foo";
               Ops.incr_counter "foo";
               Ops.write a 1;
               Ops.tick 100)))
  in
  let m = r.Firefly.Interleave.machine in
  Alcotest.(check int) "counter" 2 (M.counter m "foo");
  Alcotest.(check int) "missing counter" 0 (M.counter m "bar");
  Alcotest.(check int) "instructions (write + tick)" 2 (M.total_instructions m);
  Alcotest.(check int) "cycles (1 + 100)" 101 (M.total_cycles m)

let test_mem_emit_atomicity () =
  (* Two threads each do mem_emit(tas); exactly one event must be emitted,
     by the winner, regardless of schedule. *)
  for seed = 0 to 50 do
    let r =
      Firefly.Interleave.run ~seed (fun machine ->
          ignore
            (M.spawn_root machine (fun () ->
                 let a = Ops.alloc 1 in
                 let contender () =
                   (* capture self outside the thunk: thunks run inside the
                      machine step and must not perform effects *)
                   let self = Ops.self () in
                   ignore
                     (Ops.mem_emit (M.M_tas a) (fun old ->
                          if old = 0 then
                            Some
                              (Spec_trace.make ~proc:"Win" ~self ~args:[]
                                 ())
                          else None))
                 in
                 let t1 = Ops.spawn contender in
                 let t2 = Ops.spawn contender in
                 Ops.join t1;
                 Ops.join t2)))
    in
    let events = M.trace r.Firefly.Interleave.machine in
    Alcotest.(check int)
      (Printf.sprintf "one winner (seed %d)" seed)
      1 (List.length events)
  done

let test_determinism () =
  let run seed =
    let r =
      Firefly.Interleave.run ~seed (fun machine ->
          ignore
            (M.spawn_root machine (fun () ->
                 let a = Ops.alloc 1 in
                 let worker () =
                   for _ = 1 to 10 do
                     ignore (Ops.faa a 1)
                   done;
                   Ops.emit
                     (Spec_trace.make ~proc:"done" ~self:(Ops.self ())
                        ~args:[] ())
                 in
                 let ts = List.init 3 (fun _ -> Ops.spawn worker) in
                 List.iter Ops.join ts)))
    in
    List.map
      (fun (e : Spec_trace.event) -> e.self)
      (M.trace r.Firefly.Interleave.machine)
  in
  Alcotest.(check (list int)) "same seed, same trace" (run 9) (run 9);
  Alcotest.(check bool) "steps reproducible" true (run 3 = run 3)

let test_timed_driver () =
  let report =
    Firefly.Timed.run ~processors:2 (fun machine ->
        ignore
          (M.spawn_root machine (fun () ->
               let worker () = Ops.tick 1000 in
               let a = Ops.spawn worker in
               let b = Ops.spawn worker in
               Ops.join a;
               Ops.join b)))
  in
  (match report.Firefly.Timed.verdict with
  | Firefly.Timed.Completed -> ()
  | _ -> Alcotest.fail "timed run incomplete");
  (* two 1000-cycle jobs on two processors should overlap: elapsed well
     under the serial 2000 plus overheads *)
  Alcotest.(check bool) "parallel speedup" true
    (report.Firefly.Timed.sim_cycles < 1900);
  Alcotest.(check bool) "busy cycles counted" true
    (report.Firefly.Timed.busy_cycles >= 2000)

let test_replay_strategy () =
  (* replay must follow the recorded prefix *)
  let r =
    Firefly.Interleave.run
      ~strategy:(Firefly.Sched.replay [ 0; 0; 0 ] (Firefly.Sched.round_robin ()))
      (fun machine ->
        ignore (M.spawn_root machine (fun () -> Ops.tick 1)))
  in
  Alcotest.(check bool) "replay run completes" true (completed r)

let test_explore_finds_race () =
  (* Classic lost-update: two threads do read;write with no lock.  The
     explorer must find a schedule where the final value is 1, not 2. *)
  let final = ref 0 in
  let build machine =
    ignore
      (M.spawn_root machine (fun () ->
           let a = Ops.alloc 1 in
           let incr () =
             let v = Ops.read a in
             Ops.write a (v + 1)
           in
           let t1 = Ops.spawn incr in
           let t2 = Ops.spawn incr in
           Ops.join t1;
           Ops.join t2;
           final := Ops.read a))
  in
  let err, stats =
    Firefly.Explore.explore ~max_depth:200 ~build (fun outcome ->
        match outcome.Firefly.Explore.verdict with
        | Firefly.Interleave.Completed when !final = 1 -> Some "lost update"
        | _ -> None)
  in
  Alcotest.(check (option string)) "race found" (Some "lost update") err;
  Alcotest.(check bool) "explored some runs" true
    (stats.Firefly.Explore.terminal_runs >= 1)

let test_explore_bounded_finds_race () =
  let final = ref 0 in
  let build machine =
    ignore
      (M.spawn_root machine (fun () ->
           let a = Ops.alloc 1 in
           let incr () =
             let v = Ops.read a in
             Ops.write a (v + 1)
           in
           let t1 = Ops.spawn incr in
           let t2 = Ops.spawn incr in
           Ops.join t1;
           Ops.join t2;
           final := Ops.read a))
  in
  let err, _ =
    Firefly.Explore.explore_bounded ~max_preemptions:1 ~max_depth:200 ~build
      (fun outcome ->
        match outcome.Firefly.Explore.verdict with
        | Firefly.Interleave.Completed when !final = 1 -> Some "lost update"
        | _ -> None)
  in
  Alcotest.(check (option string)) "found with 1 preemption"
    (Some "lost update") err

let test_eventcount_sequencer () =
  let r =
    run_rr (fun machine ->
        ignore
          (M.spawn_root machine (fun () ->
               let ec = Firefly.Eventcount.create () in
               assert (Firefly.Eventcount.read ec = 0);
               assert (Firefly.Eventcount.advance ec = 1);
               assert (Firefly.Eventcount.advance ec = 2);
               assert (Firefly.Eventcount.read ec = 2);
               let s = Firefly.Sequencer.create () in
               assert (Firefly.Sequencer.ticket s = 0);
               assert (Firefly.Sequencer.ticket s = 1);
               (* await a target already reached returns immediately *)
               Firefly.Sequencer.await ec 2)))
  in
  Alcotest.(check bool) "eventcount/sequencer" true
    (completed r && no_failures r)

let test_sequencer_fifo () =
  (* ticket+eventcount build a FIFO lock: tickets are served in order *)
  let served = ref [] in
  let r =
    Firefly.Interleave.run ~seed:17 (fun machine ->
        ignore
          (M.spawn_root machine (fun () ->
               let seq = Firefly.Sequencer.create () in
               let ec = Firefly.Eventcount.create () in
               let worker () =
                 let my = Firefly.Sequencer.ticket seq in
                 Firefly.Sequencer.await ec my;
                 served := my :: !served;
                 ignore (Firefly.Eventcount.advance ec)
               in
               let ts = List.init 4 (fun _ -> Ops.spawn worker) in
               List.iter Ops.join ts)))
  in
  Alcotest.(check bool) "completed" true (completed r);
  Alcotest.(check (list int)) "FIFO order" [ 0; 1; 2; 3 ] (List.rev !served)

let suite =
  ( "machine",
    [
      Alcotest.test_case "memory ops" `Quick test_memory_ops;
      Alcotest.test_case "tas semantics" `Quick test_tas_semantics;
      Alcotest.test_case "spawn/join" `Quick test_spawn_join;
      Alcotest.test_case "join finished thread" `Quick test_join_finished;
      Alcotest.test_case "deschedule/ready" `Quick test_deschedule_ready;
      Alcotest.test_case "wakeup-waiting switch" `Quick test_wakeup_pending;
      Alcotest.test_case "deadlock detection" `Quick test_deadlock_detection;
      Alcotest.test_case "interrupt cannot block" `Quick
        test_interrupt_cannot_block;
      Alcotest.test_case "counters and accounting" `Quick
        test_counters_and_instr;
      Alcotest.test_case "mem_emit atomicity" `Quick test_mem_emit_atomicity;
      Alcotest.test_case "seeded determinism" `Quick test_determinism;
      Alcotest.test_case "timed driver" `Quick test_timed_driver;
      Alcotest.test_case "replay strategy" `Quick test_replay_strategy;
      Alcotest.test_case "explore finds lost update" `Quick
        test_explore_finds_race;
      Alcotest.test_case "bounded explore finds lost update" `Quick
        test_explore_bounded_finds_race;
      Alcotest.test_case "eventcount + sequencer" `Quick
        test_eventcount_sequencer;
      Alcotest.test_case "sequencer FIFO lock" `Quick test_sequencer_fifo;
    ] )
