(* Static spec verifier: pristine spec clean, every seeded mutant caught
   with a distinct diagnostic class, whole-program analysis, and the
   DPOR soundness cross-check. *)

open Spec_core
module SC = Threads_staticcheck

let classes findings =
  List.sort_uniq compare
    (List.map (fun (f : SC.Finding.t) -> f.SC.Finding.cls) findings)

let pp_findings fs =
  String.concat "; "
    (List.map (fun f -> Format.asprintf "%a" SC.Finding.pp f) fs)

(* ---- pass 1: spec model checking ---- *)

let test_pristine_clean () =
  let rep = SC.Speccheck.check Threads_interface.final in
  Alcotest.(check string) "zero findings" ""
    (pp_findings rep.SC.Speccheck.rep_findings);
  Alcotest.(check int) "no uncovered cases" 0
    (List.length rep.SC.Speccheck.rep_uncovered)

let test_pristine_coverage_complete () =
  (* the suite's union drives every (proc, action, case) of the spec *)
  let rep = SC.Speccheck.check Threads_interface.final in
  Alcotest.(check (list string)) "all cases reachable" []
    (List.map
       (fun (p, a, ci) -> Printf.sprintf "%s.%s#%d" p a (ci + 1))
       rep.SC.Speccheck.rep_uncovered);
  (* sanity: the interface really has the 20 cases we think it has *)
  Alcotest.(check int) "spec case count" 20
    (List.length (SC.Suite.all_cases Threads_interface.final))

let test_parsed_file_matches_builtin_check () =
  (* check-spec on the shipped file must agree with the builtin *)
  let iface, locs =
    Parser.interface_of_string_located Threads_interface.source
  in
  let rep = SC.Speccheck.check ~locs iface in
  Alcotest.(check string) "zero findings on parsed source" ""
    (pp_findings rep.SC.Speccheck.rep_findings)

let test_mutants_all_caught () =
  let results = SC.Speccheck.check_mutants () in
  Alcotest.(check bool) "at least 8 mutants" true (List.length results >= 8);
  List.iter
    (fun (r : SC.Speccheck.mutant_result) ->
      Alcotest.(check (option string))
        (r.SC.Speccheck.mu_name ^ " primary class")
        (Some r.SC.Speccheck.mu_expected) r.SC.Speccheck.mu_primary;
      Alcotest.(check bool) (r.SC.Speccheck.mu_name ^ " caught") true
        r.SC.Speccheck.mu_caught)
    results

let test_mutant_classes_distinct () =
  let results = SC.Speccheck.check_mutants () in
  let primaries =
    List.filter_map (fun r -> r.SC.Speccheck.mu_primary) results
  in
  Alcotest.(check int) "primary classes pairwise distinct"
    (List.length results)
    (List.length (List.sort_uniq compare primaries))

let test_wakeup_waiting_rediscovered () =
  (* the paper's reason for Wait's two-action split: mutate Enqueue to
     keep the mutex and the wakeup-waiting window reappears *)
  match SC.Spec_mutants.find "enqueue-keeps-mutex" with
  | None -> Alcotest.fail "mutant missing"
  | Some m ->
    let r =
      SC.Engine.run m.SC.Spec_mutants.m_iface SC.Suite.wait_signal
    in
    Alcotest.(check bool) "no delivery reachable" false
      r.SC.Engine.r_delivery_reachable;
    Alcotest.(check bool) "wakeup-window reported" true
      (List.mem "wakeup-window" (classes r.SC.Engine.r_findings))

let test_pristine_delivery_reachable () =
  let r = SC.Engine.run Threads_interface.final SC.Suite.wait_signal in
  Alcotest.(check bool) "delivery reachable" true
    r.SC.Engine.r_delivery_reachable;
  Alcotest.(check string) "no findings" ""
    (pp_findings r.SC.Engine.r_findings)

let test_determinism () =
  let a = SC.Speccheck.check_mutants () in
  let b = SC.Speccheck.check_mutants () in
  Alcotest.(check bool) "mutant sweep deterministic" true (a = b)

(* ---- effect summaries ---- *)

let test_effects () =
  let iface = Threads_interface.final in
  let eff name =
    match SC.Effects.mutex_effects iface (Proc.find_proc iface name) with
    | e :: _ -> e
    | [] -> Alcotest.fail (name ^ ": no mutex effect")
  in
  let check_eff name ~held ~post ~delays =
    let e = eff name in
    Alcotest.(check bool) (name ^ " requires_held") held
      e.SC.Effects.e_requires_held;
    Alcotest.(check string) (name ^ " post") post
      (SC.Effects.lockpost_name e.SC.Effects.e_post);
    Alcotest.(check bool) (name ^ " delays") delays e.SC.Effects.e_delays
  in
  check_eff "Acquire" ~held:false ~post:"held" ~delays:true;
  check_eff "Release" ~held:true ~post:"freed" ~delays:false;
  check_eff "Wait" ~held:true ~post:"held" ~delays:true;
  check_eff "AlertWait" ~held:true ~post:"held" ~delays:true;
  check_eff "TimedWait" ~held:true ~post:"held" ~delays:true;
  (* TimedP's timeout case is unguarded: it never delays *)
  Alcotest.(check bool) "TimedP never delays" false
    (Threads_analysis.Lint.may_delay iface (Proc.find_proc iface "TimedP"));
  Alcotest.(check bool) "P may delay" true
    (Threads_analysis.Lint.may_delay iface (Proc.find_proc iface "P"))

(* ---- pass 2: whole-program analysis ---- *)

let test_progcheck_harness_clean () =
  let iface = Threads_interface.final in
  List.iter
    (fun scenario ->
      let rep = SC.Progcheck.check iface scenario in
      Alcotest.(check string)
        (rep.SC.Progcheck.p_scenario ^ " clean")
        ""
        (pp_findings rep.SC.Progcheck.p_findings))
    [
      Threads_harness.Scenarios.mutex_contention 2;
      Threads_harness.Scenarios.wait_signal 1;
      Threads_harness.Scenarios.alert_wait_mutual_exclusion ();
      Threads_harness.Scenarios.nelson ();
      Threads_harness.Scenarios.semaphore_pingpong ();
    ]

let test_progcheck_demos () =
  let iface = Threads_interface.final in
  let expected =
    [
      ("lock-inversion-static", "lock-order-cycle");
      ("double-acquire-static", "double-acquire");
      ("unheld-release-static", "requires-unheld");
      ("interrupt-blocking-static", "interrupt-blocking");
    ]
  in
  List.iter
    (fun scenario ->
      let rep = SC.Progcheck.check iface scenario in
      let name = rep.SC.Progcheck.p_scenario in
      let want = List.assoc name expected in
      Alcotest.(check bool)
        (name ^ " flags " ^ want)
        true
        (List.mem want (classes rep.SC.Progcheck.p_findings)))
    SC.Progcheck.demo_scenarios

let test_lock_order_edges () =
  let iface = Threads_interface.final in
  let rep =
    SC.Progcheck.check iface (List.hd SC.Progcheck.demo_scenarios)
  in
  Alcotest.(check bool) "a->b edge" true
    (List.mem ("a", "b") rep.SC.Progcheck.p_edges);
  Alcotest.(check bool) "b->a edge" true
    (List.mem ("b", "a") rep.SC.Progcheck.p_edges)

(* ---- DPOR soundness cross-check ---- *)

let test_crossval_pinned_in_sync () =
  (* the pinned dynamic sets must match the harness's expectations *)
  List.iter
    (fun (name, expect) ->
      match Threads_harness.Explore_scenarios.find name with
      | None -> Alcotest.fail ("explore scenario missing: " ^ name)
      | Some sc ->
        Alcotest.(check (list string)) (name ^ " expectations")
          sc.Threads_harness.Explore_scenarios.expect expect)
    SC.Crossval.pinned;
  Alcotest.(check int) "all explore scenarios covered"
    (List.length Threads_harness.Explore_scenarios.all)
    (List.length SC.Crossval.pinned)

let test_crossval_sound () =
  let entries = SC.Crossval.run Threads_interface.final in
  List.iter
    (fun (e : SC.Crossval.entry) ->
      Alcotest.(check bool)
        (e.SC.Crossval.x_scenario ^ " dynamic ⊆ static")
        true e.SC.Crossval.x_ok)
    entries;
  let static_of name =
    let e =
      List.find (fun e -> e.SC.Crossval.x_scenario = name) entries
    in
    e.SC.Crossval.x_static_classes
  in
  Alcotest.(check (list string)) "naive-broadcast static" [ "deadlock" ]
    (static_of "naive-broadcast");
  Alcotest.(check (list string)) "hoare-signal static" [ "spec-conformance" ]
    (static_of "hoare-signal");
  Alcotest.(check (list string)) "wakeup-waiting static clean" []
    (static_of "wakeup-waiting");
  Alcotest.(check (list string)) "alert-cancel static clean" []
    (static_of "alert-cancel");
  Alcotest.(check (list string)) "disjoint-locks static clean" []
    (static_of "disjoint-locks")

let test_classify () =
  Alcotest.(check string) "deadlock" "deadlock"
    (SC.Crossval.classify "stranded waiter: deadlock blocked=[0,1]");
  Alcotest.(check string) "conformance" "spec-conformance"
    (SC.Crossval.classify "x admitted by no case: y");
  Alcotest.(check string) "invariant" "invariant"
    (SC.Crossval.classify "foo: invariant bar violated")

let suite =
  ( "staticcheck",
    [
      Alcotest.test_case "pristine spec clean" `Quick test_pristine_clean;
      Alcotest.test_case "coverage complete" `Quick
        test_pristine_coverage_complete;
      Alcotest.test_case "parsed file clean" `Quick
        test_parsed_file_matches_builtin_check;
      Alcotest.test_case "all mutants caught" `Quick test_mutants_all_caught;
      Alcotest.test_case "mutant classes distinct" `Quick
        test_mutant_classes_distinct;
      Alcotest.test_case "wakeup-waiting rediscovered" `Quick
        test_wakeup_waiting_rediscovered;
      Alcotest.test_case "pristine delivery reachable" `Quick
        test_pristine_delivery_reachable;
      Alcotest.test_case "deterministic" `Quick test_determinism;
      Alcotest.test_case "effect summaries" `Quick test_effects;
      Alcotest.test_case "harness scenarios clean" `Quick
        test_progcheck_harness_clean;
      Alcotest.test_case "defect demos flagged" `Quick test_progcheck_demos;
      Alcotest.test_case "lock-order edges" `Quick test_lock_order_edges;
      Alcotest.test_case "crossval pinned in sync" `Quick
        test_crossval_pinned_in_sync;
      Alcotest.test_case "crossval sound" `Quick test_crossval_sound;
      Alcotest.test_case "dynamic classification" `Quick test_classify;
    ] )
