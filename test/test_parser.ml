(* Lexer, parser, printer: unit tests and round-trip properties. *)

open Spec_core

let test_tokenize () =
  let toks = Lexer.tokenize "WHEN m = NIL -- comment\nENSURES {}" in
  let kinds = List.map fst toks in
  Alcotest.(check int) "token count" 8 (List.length kinds);
  (match kinds with
  | [ Lexer.KW "WHEN"; Lexer.IDENT "m"; Lexer.EQUALS; Lexer.KW "NIL";
      Lexer.KW "ENSURES"; Lexer.LBRACE; Lexer.RBRACE; Lexer.EOF ] ->
    ()
  | _ -> Alcotest.fail "unexpected token stream");
  (* positions advance past comments, columns are 1-based *)
  let pos i = List.nth toks i |> snd in
  Alcotest.(check int) "WHEN on line 1" 1 (pos 0).Lexer.line;
  Alcotest.(check int) "WHEN at col 1" 1 (pos 0).Lexer.col;
  Alcotest.(check int) "m at col 6" 6 (pos 1).Lexer.col;
  Alcotest.(check int) "ENSURES on line 2" 2 (pos 4).Lexer.line;
  Alcotest.(check int) "ENSURES at col 1" 1 (pos 4).Lexer.col;
  Alcotest.(check int) "'{' at col 9" 9 (pos 5).Lexer.col

let test_lex_error () =
  Alcotest.(check bool) "bad char" true
    (try ignore (Lexer.tokenize "m = @"); false
     with Lexer.Lex_error (_, { Lexer.line = 1; col = 5 }) -> true)

let test_parse_source_equals_builtin () =
  let parsed = Parser.interface_of_string Threads_interface.source in
  Alcotest.(check bool) "parse source = builtin" true
    (Proc.equal_interface parsed Threads_interface.final)

let test_roundtrip_all_variants () =
  List.iter
    (fun (name, iface) ->
      let printed = Printer.to_string iface in
      let reparsed = Parser.interface_of_string printed in
      Alcotest.(check bool) (name ^ " roundtrips") true
        (Proc.equal_interface reparsed iface))
    Threads_interface.variants

let test_well_formed_final () =
  List.iter
    (fun (name, iface) ->
      Alcotest.(check (list string)) (name ^ " well-formed") []
        (Proc.well_formed iface))
    Threads_interface.variants

let test_well_formed_catches () =
  (* ENSURES constrains a variable missing from MODIFIES *)
  let src =
    {|INTERFACE Bad
TYPE Mutex = Thread INITIALLY NIL
ATOMIC PROCEDURE Oops(VAR m : Mutex)
  ENSURES m_post = SELF
|}
  in
  let iface = Parser.interface_of_string src in
  (match Proc.well_formed iface with
  | [] -> Alcotest.fail "expected a violation"
  | errs ->
    Alcotest.(check bool) "mentions MODIFIES" true
      (List.exists
         (fun e ->
           String.length e > 0
           && String.split_on_char ' ' e |> List.mem "MODIFIES")
         errs));
  (* undeclared exception *)
  let src2 =
    {|INTERFACE Bad2
TYPE Semaphore = (available, unavailable) INITIALLY available
ATOMIC PROCEDURE Q(VAR s : Semaphore) RAISES Nope
  MODIFIES AT MOST [s]
  RAISES Nope WHEN s = available
    ENSURES s_post = unavailable
|}
  in
  let iface2 = Parser.interface_of_string src2 in
  Alcotest.(check bool) "undeclared exception flagged" true
    (Proc.well_formed iface2 <> [])

let test_parse_errors () =
  let bad src =
    try
      ignore (Parser.interface_of_string src);
      false
    with Parser.Parse_error _ -> true
  in
  Alcotest.(check bool) "missing INTERFACE" true (bad "TYPE Mutex = Thread");
  Alcotest.(check bool) "non-atomic without composition" true
    (bad
       {|INTERFACE X
TYPE Mutex = Thread INITIALLY NIL
PROCEDURE F(VAR m : Mutex)
  ENSURES m_post = NIL
|});
  Alcotest.(check bool) "composition name mismatch" true
    (bad
       {|INTERFACE X
TYPE Mutex = Thread INITIALLY NIL
PROCEDURE F(VAR m : Mutex) = COMPOSITION OF A; B END
  MODIFIES AT MOST [m]
  ATOMIC ACTION A
    ENSURES m_post = NIL
  ATOMIC ACTION Wrong
    ENSURES m_post = NIL
|})

(* Golden error messages: diagnostics are part of the interface.  Each
   malformed input must fail with exactly this message at exactly this
   position (what a user sees as FILE:LINE:COL: message). *)
let test_parse_error_goldens () =
  let golden src expected =
    let got =
      try
        ignore (Parser.interface_of_string src);
        "(no error)"
      with
      | Parser.Parse_error (msg, p) ->
        Printf.sprintf "%d:%d: parse error: %s" p.Lexer.line p.Lexer.col msg
      | Lexer.Lex_error (msg, p) ->
        Printf.sprintf "%d:%d: lexical error: %s" p.Lexer.line p.Lexer.col msg
    in
    Alcotest.(check string) expected expected got
  in
  golden "TYPE Mutex = Thread"
    "1:1: parse error: expected keyword INTERFACE but found keyword TYPE";
  golden
    {|INTERFACE X
TYPE Mutex = Thread INITIALLY NIL
PROCEDURE F(VAR m : Mutex)
  ENSURES m_post = NIL
|}
    "4:3: parse error: procedure F has no COMPOSITION and is not ATOMIC";
  golden
    {|INTERFACE X
TYPE Mutex = Thread INITIALLY NIL
ATOMIC PROCEDURE F(VAR m : Mutex)
  MODIFIES AT MOST [m]
  WHEN m = NIL
|}
    "6:1: parse error: expected keyword ENSURES but found end of input";
  golden
    {|INTERFACE X
TYPE Mutex = Thread INITIALLY NIL
ATOMIC PROCEDURE F(VAR m : Mutex)
  ENSURES m_post = insert(
|}
    "5:1: parse error: expected an expression but found end of input";
  golden
    {|INTERFACE X
TYPE M = Thread INITIALLY NIL
ATOMIC PROCEDURE F(VAR m : M)
  ENSURES m_post @ NIL
|}
    "4:18: lexical error: unexpected character '@'"

(* The position side-table of the located parse: declarations of the
   shipped source are found at the line where their keyword appears. *)
let test_located_positions () =
  let _, locs = Parser.interface_of_string_located Threads_interface.source in
  let lines = String.split_on_char '\n' Threads_interface.source in
  let line_of needle =
    let contains hay =
      let nh = String.length hay and nn = String.length needle in
      let rec go i =
        i + nn <= nh && (String.sub hay i nn = needle || go (i + 1))
      in
      go 0
    in
    match
      List.find_index contains lines
    with
    | Some i -> i + 1
    | None -> Alcotest.fail ("source line not found: " ^ needle)
  in
  let check_proc name =
    match Parser.loc_proc locs name with
    | None -> Alcotest.fail (name ^ ": no position")
    | Some p ->
      Alcotest.(check int)
        (name ^ " line")
        (line_of ("PROCEDURE " ^ name))
        p.Lexer.line
  in
  List.iter check_proc
    [ "Acquire"; "Release"; "Wait"; "Signal"; "Broadcast"; "P"; "V";
      "Alert"; "TestAlert"; "AlertP"; "AlertWait"; "TimedP"; "TimedWait" ];
  (match Parser.loc_action locs ~proc:"Wait" "Resume" with
  | None -> Alcotest.fail "Wait.Resume: no position"
  | Some p ->
    Alcotest.(check int) "Wait.Resume line" (line_of "ATOMIC ACTION Resume")
      p.Lexer.line);
  (* an unlocated (programmatically built) interface has no positions *)
  Alcotest.(check bool) "no_locs empty" true
    (Parser.loc_proc Parser.no_locs "Acquire" = None)

let test_formula_precedence () =
  let f = Parser.formula_of_string in
  (* & binds tighter than | *)
  Alcotest.(check bool) "a | b & c" true
    (Formula.equal
       (f "TRUE | TRUE & FALSE")
       (Formula.Or (Formula.True, Formula.And (Formula.True, Formula.False))));
  (* => is right-associative and loosest *)
  Alcotest.(check bool) "impl assoc" true
    (Formula.equal
       (f "FALSE => FALSE => TRUE")
       (Formula.Implies
          (Formula.False, Formula.Implies (Formula.False, Formula.True))));
  (* left associativity of & *)
  Alcotest.(check bool) "& left assoc" true
    (Formula.equal
       (f "TRUE & TRUE & FALSE")
       (Formula.And (Formula.And (Formula.True, Formula.True), Formula.False)))

let test_term_parsing () =
  let t = Parser.term_of_string in
  Alcotest.(check bool) "insert" true
    (Term.equal
       (t "insert(c, SELF)")
       (Term.Insert (Term.Ref ("c", Term.Pre), Term.Self)));
  Alcotest.(check bool) "post suffix" true
    (Term.equal (t "alerts_post") (Term.Ref ("alerts", Term.Post)));
  Alcotest.(check bool) "RESULT" true (Term.equal (t "RESULT") Term.Result);
  Alcotest.(check bool) "enum literal" true
    (Term.equal (t "available") (Term.Lit (Value.Sem Value.Available)))

(* Random-formula round-trip: generate ASTs from the grammar the printer
   can emit, print, reparse, compare. *)
let gen_term : Term.t QCheck.Gen.t =
  let open QCheck.Gen in
  let base =
    oneof
      [
        return Term.Self;
        return Term.Nil_const;
        return Term.Empty_set;
        map (fun n -> Term.Ref ("v" ^ string_of_int n, Term.Pre)) (int_range 0 3);
        map (fun n -> Term.Ref ("v" ^ string_of_int n, Term.Post)) (int_range 0 3);
        return (Term.Lit (Value.Sem Value.Available));
        return (Term.Lit (Value.Sem Value.Unavailable));
      ]
  in
  let rec go depth =
    if depth = 0 then base
    else
      frequency
        [
          (3, base);
          (1, map2 (fun a b -> Term.Insert (a, b)) (go (depth - 1)) (go (depth - 1)));
          (1, map2 (fun a b -> Term.Delete (a, b)) (go (depth - 1)) (go (depth - 1)));
        ]
  in
  go 2

let gen_formula : Formula.t QCheck.Gen.t =
  let open QCheck.Gen in
  let atom =
    oneof
      [
        return Formula.True;
        return Formula.False;
        map2 (fun a b -> Formula.Eq (a, b)) gen_term gen_term;
        map2 (fun a b -> Formula.Member (a, b)) gen_term gen_term;
        map2 (fun a b -> Formula.Subset (a, b)) gen_term gen_term;
        map (fun n -> Formula.Unchanged [ "v" ^ string_of_int n ]) (int_range 0 3);
      ]
  in
  let rec go depth =
    if depth = 0 then atom
    else
      frequency
        [
          (3, atom);
          (1, map (fun f -> Formula.Not f) (go (depth - 1)));
          (1, map2 (fun a b -> Formula.And (a, b)) (go (depth - 1)) (go (depth - 1)));
          (1, map2 (fun a b -> Formula.Or (a, b)) (go (depth - 1)) (go (depth - 1)));
          (1, map2 (fun a b -> Formula.Implies (a, b)) (go (depth - 1)) (go (depth - 1)));
          (1, map2 (fun a b -> Formula.Iff (a, b)) (go (depth - 1)) (go (depth - 1)));
        ]
  in
  go 3

let prop_formula_roundtrip =
  QCheck.Test.make ~name:"print/parse formula roundtrip" ~count:500
    (QCheck.make gen_formula ~print:Formula.to_string)
    (fun f ->
      let printed = Formula.to_string f in
      let reparsed = Parser.formula_of_string printed in
      Formula.equal reparsed f)

let suite =
  let q = QCheck_alcotest.to_alcotest in
  ( "parser",
    [
      Alcotest.test_case "tokenize" `Quick test_tokenize;
      Alcotest.test_case "lex error" `Quick test_lex_error;
      Alcotest.test_case "source = builtin" `Quick
        test_parse_source_equals_builtin;
      Alcotest.test_case "all variants roundtrip" `Quick
        test_roundtrip_all_variants;
      Alcotest.test_case "variants well-formed" `Quick test_well_formed_final;
      Alcotest.test_case "well-formedness violations" `Quick
        test_well_formed_catches;
      Alcotest.test_case "parse errors" `Quick test_parse_errors;
      Alcotest.test_case "parse error goldens" `Quick test_parse_error_goldens;
      Alcotest.test_case "located positions" `Quick test_located_positions;
      Alcotest.test_case "precedence" `Quick test_formula_precedence;
      Alcotest.test_case "terms" `Quick test_term_parsing;
      q prop_formula_roundtrip;
    ] )

(* The spec file shipped in specs/ must match the embedded source (the
   file is what a user edits; the embedded copy is what the library
   defaults to). *)
let test_spec_file_in_sync () =
  let path = "../specs/threads.lspec" in
  if Sys.file_exists path then begin
    let ic = open_in_bin path in
    let n = in_channel_length ic in
    let contents = really_input_string ic n in
    close_in ic;
    let parsed = Parser.interface_of_string contents in
    Alcotest.(check bool) "file parses to the final interface" true
      (Proc.equal_interface parsed Threads_interface.final)
  end

let suite =
  let name, cases = suite in
  ( name,
    cases
    @ [ Alcotest.test_case "specs/threads.lspec in sync" `Quick
          test_spec_file_in_sync ] )
