(* Race-focused implementation tests: the wakeup-waiting window, bounded
   systematic exploration, baselines, and the fast-path ablation. *)

module Tid = Threads_util.Tid
module Ops = Firefly.Machine.Ops

let conforms machine =
  Threads_model.Conformance.ok
    (Threads_model.Conformance.check Spec_core.Threads_interface.final
       (Firefly.Machine.trace machine))

(* The window race: sweep seeds until a Signal removes >1 thread, and check
   every such run still conforms.  (Paper: "possible though unlikely".) *)
let test_multi_unblock_exists_and_conforms () =
  let found = ref false in
  let seed = ref 0 in
  while (not !found) && !seed < 2000 do
    let report =
      Taos_threads.Api.run ~seed:!seed (fun sync ->
          let module S =
            (val sync : Taos_threads.Sync_intf.SYNC with type thread = Tid.t)
          in
          let m = S.mutex () in
          let c = S.condition () in
          let flag = ref false in
          let waiter () =
            S.with_lock m (fun () ->
                while not !flag do
                  S.wait m c
                done)
          in
          let ws = List.init 3 (fun _ -> S.fork waiter) in
          let s =
            S.fork (fun () ->
                S.with_lock m (fun () -> flag := true);
                S.signal c)
          in
          S.join s;
          S.broadcast c;
          List.iter S.join ws)
    in
    let machine = report.Firefly.Interleave.machine in
    let multi =
      List.exists
        (fun (e : Spec_trace.event) ->
          e.proc = "Signal" && List.length e.removed > 1)
        (Firefly.Machine.trace machine)
    in
    if multi then begin
      found := true;
      Alcotest.(check bool) "multi-unblock run conforms" true (conforms machine)
    end;
    incr seed
  done;
  Alcotest.(check bool) "the race window is reachable" true !found

(* Bounded systematic exploration of the real mutex: across every schedule
   with <= 2 preemptions, mutual exclusion holds and no updates are lost. *)
let test_mutex_systematic () =
  let peak = ref 0 and total = ref 0 in
  let build machine =
    ignore
      (Firefly.Machine.spawn_root machine (fun () ->
           peak := 0;
           total := 0;
           let pkg = Taos_threads.Pkg.create () in
           let m = Taos_threads.Mutex.create pkg in
           let inside = ref 0 in
           let worker () =
             for _ = 1 to 2 do
               Taos_threads.Mutex.with_lock m (fun () ->
                   incr inside;
                   if !inside > !peak then peak := !inside;
                   incr total;
                   decr inside)
             done
           in
           let a = Ops.spawn worker in
           let b = Ops.spawn worker in
           Ops.join a;
           Ops.join b))
  in
  let err, stats =
    Firefly.Explore.explore_bounded ~max_preemptions:2 ~max_depth:2000
      ~max_runs:30_000 ~build (fun outcome ->
        match outcome.Firefly.Explore.verdict with
        | Firefly.Interleave.Completed ->
          if !peak > 1 then Some "mutual exclusion violated"
          else if !total <> 4 then Some "lost update"
          else None
        | Firefly.Interleave.Deadlock _ -> Some "deadlock"
        | Firefly.Interleave.Step_limit -> None)
  in
  Alcotest.(check (option string)) "no violation in bounded space" None err;
  Alcotest.(check bool) "nontrivial exploration" true
    (stats.Firefly.Explore.terminal_runs > 50)

(* Same bounded exploration for Wait/Signal: no lost wakeups. *)
let test_condvar_systematic () =
  let build machine =
    ignore
      (Firefly.Machine.spawn_root machine (fun () ->
           let pkg = Taos_threads.Pkg.create () in
           let m = Taos_threads.Mutex.create pkg in
           let c = Taos_threads.Condition.create pkg in
           let flag = ref false in
           let w =
             Ops.spawn (fun () ->
                 Taos_threads.Mutex.with_lock m (fun () ->
                     while not !flag do
                       Taos_threads.Condition.wait c m
                     done))
           in
           Taos_threads.Mutex.with_lock m (fun () -> flag := true);
           Taos_threads.Condition.signal c;
           Ops.join w))
  in
  let err, _ =
    Firefly.Explore.explore_bounded ~max_preemptions:2 ~max_depth:3000
      ~max_runs:30_000 ~build (fun outcome ->
        match outcome.Firefly.Explore.verdict with
        | Firefly.Interleave.Completed ->
          if conforms outcome.Firefly.Explore.machine then None
          else Some "non-conforming trace"
        | Firefly.Interleave.Deadlock _ -> Some "lost wakeup"
        | Firefly.Interleave.Step_limit -> None)
  in
  Alcotest.(check (option string)) "no lost wakeup, all traces conform" None
    err

(* The naive semaphore-based condvar must strand a waiter somewhere in the
   bounded space (the paper's impossibility argument). *)
let test_naive_strands_systematically () =
  let build machine =
    ignore
      (Firefly.Machine.spawn_root machine (fun () ->
           let sync = Taos_threads.Uniproc.make () in
           let module S =
             (val sync : Taos_threads.Sync_intf.SYNC with type thread = Tid.t)
           in
           let m = S.mutex () in
           let sem = S.semaphore () in
           S.p sem;
           let nwaiters = ref 0 in
           let flag = ref false in
           let waiter () =
             S.with_lock m (fun () ->
                 while not !flag do
                   incr nwaiters;
                   S.release m;
                   S.p sem;
                   decr nwaiters;
                   S.acquire m
                 done)
           in
           let w1 = S.fork waiter in
           let w2 = S.fork waiter in
           S.with_lock m (fun () -> flag := true);
           for _ = 1 to !nwaiters do
             S.v sem
           done;
           S.join w1;
           S.join w2))
  in
  let err, _ =
    Firefly.Explore.explore_bounded ~max_preemptions:2 ~max_depth:800
      ~max_runs:50_000 ~build (fun outcome ->
        match outcome.Firefly.Explore.verdict with
        | Firefly.Interleave.Deadlock _ -> Some "stranded"
        | Firefly.Interleave.Completed | Firefly.Interleave.Step_limit -> None)
  in
  Alcotest.(check (option string)) "naive broadcast strands" (Some "stranded")
    err

(* Hoare monitors: the predicate really is guaranteed on return. *)
let test_hoare_guarantee () =
  for seed = 0 to 30 do
    let violated = ref false in
    let r =
      Firefly.Interleave.run ~seed (fun machine ->
          ignore
            (Firefly.Machine.spawn_root machine (fun () ->
                 let mon = Taos_threads.Hoare.monitor () in
                 let nonzero = Taos_threads.Hoare.condition mon in
                 let counter = ref 0 in
                 let consumer () =
                   for _ = 1 to 5 do
                     Taos_threads.Hoare.with_monitor mon (fun () ->
                         if !counter = 0 then Taos_threads.Hoare.wait nonzero;
                         if !counter = 0 then violated := true
                         else decr counter)
                   done
                 in
                 let producer () =
                   for _ = 1 to 5 do
                     Taos_threads.Hoare.with_monitor mon (fun () ->
                         incr counter;
                         Taos_threads.Hoare.signal nonzero)
                   done
                 in
                 let c = Ops.spawn consumer in
                 let p = Ops.spawn producer in
                 Ops.join c;
                 Ops.join p)))
    in
    (match r.Firefly.Interleave.verdict with
    | Firefly.Interleave.Completed -> ()
    | _ -> Alcotest.fail (Printf.sprintf "hoare run stuck (seed %d)" seed));
    Alcotest.(check bool)
      (Printf.sprintf "predicate held on return (seed %d)" seed)
      false !violated
  done

(* Ablation: with the fast path off the behaviour (and conformance) is
   unchanged, only the cost moves. *)
let test_no_fast_path_conforms () =
  for seed = 0 to 20 do
    let r =
      Taos_threads.Api.run ~fast_path:false ~seed (fun sync ->
          let module S =
            (val sync : Taos_threads.Sync_intf.SYNC with type thread = Tid.t)
          in
          let m = S.mutex () in
          let c = S.condition () in
          let flag = ref false in
          let w =
            S.fork (fun () ->
                S.with_lock m (fun () ->
                    while not !flag do
                      S.wait m c
                    done))
          in
          S.with_lock m (fun () -> flag := true);
          S.signal c;
          S.broadcast c;
          S.join w)
    in
    (match r.Firefly.Interleave.verdict with
    | Firefly.Interleave.Completed -> ()
    | _ -> Alcotest.fail "no-fast-path run stuck");
    Alcotest.(check bool)
      (Printf.sprintf "conforms (seed %d)" seed)
      true
      (conforms r.Firefly.Interleave.machine)
  done

(* Interrupt-context V: never lost across seeds. *)
let test_interrupt_v_not_lost () =
  for seed = 0 to 100 do
    let r =
      Firefly.Interleave.run ~seed (fun machine ->
          ignore
            (Firefly.Machine.spawn_root machine (fun () ->
                 let pkg = Taos_threads.Pkg.create () in
                 let sem = Taos_threads.Semaphore.create pkg in
                 Taos_threads.Semaphore.p sem;
                 let d =
                   Ops.spawn (fun () -> Taos_threads.Semaphore.p sem)
                 in
                 ignore
                   (Firefly.Machine.spawn_root machine ~interrupt:true
                      (fun () -> Taos_threads.Semaphore.v sem));
                 Ops.join d)))
    in
    match r.Firefly.Interleave.verdict with
    | Firefly.Interleave.Completed -> ()
    | _ -> Alcotest.fail (Printf.sprintf "lost interrupt V (seed %d)" seed)
  done

let suite =
  ( "races",
    [
      Alcotest.test_case "signal multi-unblock reachable + conformant" `Slow
        test_multi_unblock_exists_and_conforms;
      Alcotest.test_case "mutex: bounded systematic exploration" `Slow
        test_mutex_systematic;
      Alcotest.test_case "condvar: no lost wakeups (systematic)" `Slow
        test_condvar_systematic;
      Alcotest.test_case "naive condvar strands (systematic)" `Slow
        test_naive_strands_systematically;
      Alcotest.test_case "hoare guarantee" `Quick test_hoare_guarantee;
      Alcotest.test_case "no-fast-path conforms" `Quick
        test_no_fast_path_conforms;
      Alcotest.test_case "interrupt V not lost" `Quick
        test_interrupt_v_not_lost;
    ] )

(* Internal invariant: a condition's interest count returns to zero once
   all waiters have left (the fast-path skip is exact at quiescence). *)
let test_interest_quiescence () =
  for seed = 0 to 20 do
    let interest_left = ref (-1) in
    let r =
      Firefly.Interleave.run ~seed (fun machine ->
          ignore
            (Firefly.Machine.spawn_root machine (fun () ->
                 let pkg = Taos_threads.Pkg.create () in
                 let m = Taos_threads.Mutex.create pkg in
                 let c = Taos_threads.Condition.create pkg in
                 let flag = ref false in
                 let waiter () =
                   Taos_threads.Mutex.with_lock m (fun () ->
                       while not !flag do
                         Taos_threads.Condition.wait c m
                       done)
                 in
                 let ws = List.init 3 (fun _ -> Ops.spawn waiter) in
                 Taos_threads.Mutex.with_lock m (fun () -> flag := true);
                 Taos_threads.Condition.broadcast c;
                 List.iter Ops.join ws;
                 interest_left := Ops.read (Taos_threads.Condition.id c))))
    in
    (match r.Firefly.Interleave.verdict with
    | Firefly.Interleave.Completed -> ()
    | _ -> Alcotest.fail "stuck");
    Alcotest.(check int)
      (Printf.sprintf "interest back to 0 (seed %d)" seed)
      0 !interest_left
  done

let suite =
  let name, cases = suite in
  ( name,
    cases
    @ [ Alcotest.test_case "interest quiescence" `Quick
          test_interest_quiescence ] )
