(* The cycle-accurate timed driver: priorities, slicing, limits,
   utilization — the Nub's scheduling facilities the paper mentions but
   deliberately leaves out of the specification ("our specification is
   independent of these facilities"). *)

module M = Firefly.Machine
module Ops = Firefly.Machine.Ops

let test_priority_preference () =
  (* With one processor and both threads ready, the high-priority thread
     must finish first. *)
  let order = ref [] in
  let report =
    Firefly.Timed.run ~processors:1 (fun machine ->
        ignore
          (M.spawn_root machine (fun () ->
               let lo =
                 Ops.spawn ~priority:0 (fun () ->
                     Ops.tick 500;
                     order := "lo" :: !order)
               in
               let hi =
                 Ops.spawn ~priority:10 (fun () ->
                     Ops.tick 500;
                     order := "hi" :: !order)
               in
               Ops.join lo;
               Ops.join hi)))
  in
  (match report.Firefly.Timed.verdict with
  | Firefly.Timed.Completed -> ()
  | _ -> Alcotest.fail "did not complete");
  Alcotest.(check (list string)) "high priority first" [ "lo"; "hi" ]
    !order

let test_time_slicing () =
  (* Two equal-priority cpu hogs on one processor: slicing interleaves
     them (context switches well above the 2 needed without slicing). *)
  let cost = { Firefly.Cost.default with time_slice = 100 } in
  let report =
    Firefly.Timed.run ~processors:1 ~cost (fun machine ->
        ignore
          (M.spawn_root machine (fun () ->
               let hog () =
                 for _ = 1 to 50 do
                   Ops.tick 20
                 done
               in
               let a = Ops.spawn hog in
               let b = Ops.spawn hog in
               Ops.join a;
               Ops.join b)))
  in
  Alcotest.(check bool) "sliced" true
    (report.Firefly.Timed.context_switches > 5)

let test_cycle_limit () =
  let report =
    Firefly.Timed.run ~processors:1 ~max_cycles:5_000 (fun machine ->
        ignore
          (M.spawn_root machine (fun () ->
               while true do
                 Ops.tick 100
               done)))
  in
  match report.Firefly.Timed.verdict with
  | Firefly.Timed.Cycle_limit -> ()
  | _ -> Alcotest.fail "expected Cycle_limit"

let test_deadlock_timed () =
  let report =
    Firefly.Timed.run ~processors:2 (fun machine ->
        ignore
          (M.spawn_root machine (fun () ->
               let a = Ops.alloc 1 in
               Ops.deschedule_and_clear a)))
  in
  match report.Firefly.Timed.verdict with
  | Firefly.Timed.Deadlock [ 0 ] -> ()
  | _ -> Alcotest.fail "expected Deadlock [t0]"

let test_utilization_bounds () =
  let report =
    Firefly.Timed.run ~processors:4 (fun machine ->
        ignore
          (M.spawn_root machine (fun () ->
               let ts = List.init 4 (fun _ -> Ops.spawn (fun () -> Ops.tick 1000)) in
               List.iter Ops.join ts)))
  in
  let u = Firefly.Timed.utilization report ~processors:4 in
  Alcotest.(check bool) "0 < utilization <= 1" true (u > 0.0 && u <= 1.0)

let test_interrupt_preempts_timed () =
  (* An interrupt-context thread is scheduled ahead of a cpu hog. *)
  let fired_at = ref max_int in
  let report =
    Firefly.Timed.run ~processors:1 (fun machine ->
        ignore
          (M.spawn_root machine (fun () ->
               let total = 100_000 in
               ignore
                 (M.spawn_root machine ~interrupt:true (fun () ->
                      fired_at := 0));
               for _ = 1 to total / 100 do
                 Ops.tick 100
               done)))
  in
  (match report.Firefly.Timed.verdict with
  | Firefly.Timed.Completed -> ()
  | _ -> Alcotest.fail "did not complete");
  Alcotest.(check bool) "interrupt ran" true (!fired_at = 0)

let test_timed_threads_package () =
  (* The full package running under the timed driver with priorities:
     conformance is schedule-independent. *)
  let report =
    Taos_threads.Api.run_timed ~processors:3 ~seed:5 (fun sync ->
        let module S =
          (val sync : Taos_threads.Sync_intf.SYNC
             with type thread = Threads_util.Tid.t)
        in
        let m = S.mutex () in
        let c = S.condition () in
        let buf = ref 0 in
        let consumer prio () =
          Ops.set_priority prio;
          for _ = 1 to 20 do
            S.with_lock m (fun () ->
                while !buf = 0 do
                  S.wait m c
                done;
                decr buf)
          done
        in
        let producer () =
          for _ = 1 to 40 do
            S.with_lock m (fun () ->
                incr buf;
                S.signal c)
          done
        in
        let c1 = S.fork (consumer 5) in
        let c2 = S.fork (consumer 0) in
        let p = S.fork producer in
        S.join p;
        S.join c1;
        S.join c2)
  in
  (match report.Firefly.Timed.verdict with
  | Firefly.Timed.Completed -> ()
  | _ -> Alcotest.fail "timed package run incomplete");
  let rep =
    Threads_model.Conformance.check Spec_core.Threads_interface.final
      (Firefly.Machine.trace report.Firefly.Timed.machine)
  in
  Alcotest.(check bool) "conforms under timed driver" true
    (Threads_model.Conformance.ok rep)

let suite =
  ( "timed",
    [
      Alcotest.test_case "priority preference" `Quick test_priority_preference;
      Alcotest.test_case "time slicing" `Quick test_time_slicing;
      Alcotest.test_case "cycle limit" `Quick test_cycle_limit;
      Alcotest.test_case "deadlock detection" `Quick test_deadlock_timed;
      Alcotest.test_case "utilization bounds" `Quick test_utilization_bounds;
      Alcotest.test_case "interrupt preempts" `Quick
        test_interrupt_preempts_timed;
      Alcotest.test_case "threads package under timed driver" `Quick
        test_timed_threads_package;
    ] )

let test_timed_determinism () =
  let run () =
    let report =
      Taos_threads.Api.run_timed ~processors:3 ~seed:11 (fun sync ->
          let module S =
            (val sync : Taos_threads.Sync_intf.SYNC
               with type thread = Threads_util.Tid.t)
          in
          let m = S.mutex () in
          let worker () =
            for _ = 1 to 30 do
              S.acquire m;
              Ops.tick 7;
              S.release m
            done
          in
          let ts = List.init 4 (fun _ -> S.fork worker) in
          List.iter S.join ts)
    in
    ( report.Firefly.Timed.sim_cycles,
      report.Firefly.Timed.context_switches,
      report.Firefly.Timed.steps,
      List.length (Firefly.Machine.trace report.Firefly.Timed.machine) )
  in
  Alcotest.(check bool) "same seed, identical timed run" true (run () = run ())

let suite =
  let name, cases = suite in
  ( name,
    cases
    @ [ Alcotest.test_case "timed determinism" `Quick test_timed_determinism ]
  )
