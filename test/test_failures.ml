(* Failure injection: client bugs must stay contained — the machine keeps
   running, other threads are unaffected where the spec says so, and the
   conformance checker attributes fault correctly. *)

module Tid = Threads_util.Tid
module Ops = Firefly.Machine.Ops

let test_exception_in_critical_section_without_sugar () =
  (* A thread that dies holding the mutex (no LOCK/with_lock sugar):
     the lock stays held — every later Acquire blocks.  This is the
     behaviour the TRY..FINALLY sugar exists to prevent. *)
  let r =
    Taos_threads.Api.run ~seed:1 (fun sync ->
        let module S =
          (val sync : Taos_threads.Sync_intf.SYNC with type thread = Tid.t)
        in
        let m = S.mutex () in
        let dead =
          S.fork (fun () ->
              S.acquire m;
              failwith "died in critical section")
        in
        S.join dead;
        (* this acquire must block forever *)
        S.acquire m)
  in
  (match r.Firefly.Interleave.verdict with
  | Firefly.Interleave.Deadlock [ 0 ] -> ()
  | _ -> Alcotest.fail "expected the orphaned lock to wedge the acquirer");
  (* the dead thread's failure is recorded, the machine survived *)
  match Firefly.Machine.failures r.Firefly.Interleave.machine with
  | [ (_, Failure msg) ] when msg = "died in critical section" -> ()
  | _ -> Alcotest.fail "failure not recorded"

let test_wait_without_holding () =
  (* Calling Wait with REQUIRES false: the spec allows anything; our
     implementation neither crashes the machine nor corrupts other
     threads, and the conformance checker pins the blame on the caller. *)
  let r =
    Taos_threads.Api.run ~seed:2 (fun sync ->
        let module S =
          (val sync : Taos_threads.Sync_intf.SYNC with type thread = Tid.t)
        in
        let m = S.mutex () in
        let c = S.condition () in
        let rogue = S.fork (fun () -> S.wait m c) in
        (* an innocent bystander keeps working on a different mutex *)
        let m2 = S.mutex () in
        let n = ref 0 in
        let good =
          S.fork (fun () ->
              for _ = 1 to 10 do
                S.with_lock m2 (fun () -> incr n)
              done)
        in
        S.join good;
        if !n <> 10 then failwith "bystander corrupted";
        S.signal c;
        S.broadcast c;
        (try S.join rogue with _ -> ()))
  in
  (* run may or may not complete (the rogue can stay blocked); what
     matters is attribution *)
  let rep =
    Threads_model.Conformance.check Spec_core.Threads_interface.final
      (Firefly.Machine.trace r.Firefly.Interleave.machine)
  in
  Alcotest.(check bool) "caller blamed" true
    (List.exists
       (fun (e : Threads_model.Conformance.error) ->
         e.event.Spec_trace.proc = "Wait")
       rep.requires_violations)

let test_double_release_harmless_at_impl_level () =
  (* Release without holding: REQUIRES is violated (caller bug) but the
     implementation must not crash the machine. *)
  let r =
    Taos_threads.Api.run ~seed:3 (fun sync ->
        let module S =
          (val sync : Taos_threads.Sync_intf.SYNC with type thread = Tid.t)
        in
        let m = S.mutex () in
        S.release m;
        S.release m;
        (* the mutex still functions afterwards *)
        S.with_lock m (fun () -> ()))
  in
  (match r.Firefly.Interleave.verdict with
  | Firefly.Interleave.Completed -> ()
  | _ -> Alcotest.fail "machine wedged");
  let rep =
    Threads_model.Conformance.check Spec_core.Threads_interface.final
      (Firefly.Machine.trace r.Firefly.Interleave.machine)
  in
  Alcotest.(check int) "two caller violations" 2
    (List.length rep.Threads_model.Conformance.requires_violations)

let test_exception_during_wait_predicate () =
  (* An exception thrown between Wait returns: with_lock still releases,
     and other waiters are not poisoned. *)
  let r =
    Taos_threads.Api.run ~seed:4 (fun sync ->
        let module S =
          (val sync : Taos_threads.Sync_intf.SYNC with type thread = Tid.t)
        in
        let m = S.mutex () in
        let c = S.condition () in
        let flag = ref false in
        let fragile =
          S.fork (fun () ->
              try
                S.with_lock m (fun () ->
                    while not !flag do
                      S.wait m c
                    done;
                    failwith "predicate handler exploded")
              with Failure _ -> ())
        in
        let robust =
          S.fork (fun () ->
              S.with_lock m (fun () ->
                  while not !flag do
                    S.wait m c
                  done))
        in
        S.with_lock m (fun () -> flag := true);
        S.broadcast c;
        S.join fragile;
        S.join robust)
  in
  (match r.Firefly.Interleave.verdict with
  | Firefly.Interleave.Completed -> ()
  | _ -> Alcotest.fail "waiters poisoned by peer exception");
  Alcotest.(check bool) "conforms" true
    (Threads_model.Conformance.ok
       (Threads_model.Conformance.check
          Spec_core.Threads_interface.final (Firefly.Machine.trace r.Firefly.Interleave.machine)))

let suite =
  ( "failure-injection",
    [
      Alcotest.test_case "orphaned lock wedges (why LOCK..END exists)" `Quick
        test_exception_in_critical_section_without_sugar;
      Alcotest.test_case "Wait without holding: caller blamed" `Quick
        test_wait_without_holding;
      Alcotest.test_case "double release contained" `Quick
        test_double_release_harmless_at_impl_level;
      Alcotest.test_case "exception after Wait contained" `Quick
        test_exception_during_wait_predicate;
    ] )
