(* Causal profiler: the invariants the profile pipeline is sold on.

   - The critical path tiles the run: step durations sum exactly to the
     makespan on every backend/workload/seed combination (the backward
     walk crosses wake edges but never skips or double-counts cycles).
   - On a serial workload the path is trivial: one thread, no blocked or
     scheduler-induced cycles anywhere on the path.
   - The wait-for graph is acyclic on the conforming backends (no seed
     manufactures a deadlock that is not there), and the lock-inversion
     mutant produces a genuine cycle snapshot on some schedule.
   - Profiling is free: a profiled run is cycle- and schedule-identical
     to the unprofiled run of the same seed (the acceptance criterion
     that makes the profiler causal rather than observational). *)

module Bk = Threads_backend.Backend
module Wl = Threads_backend.Workload
module P = Threads_profile.Profile
module M = Firefly.Machine

let backend name =
  match Bk.find name with
  | Some b -> b
  | None -> Alcotest.failf "backend %s not registered" name

let workload name =
  match Wl.find name with
  | Some w -> w
  | None -> Alcotest.failf "workload %s not registered" name

let profiled b ~seed wl =
  match b.Bk.profile with
  | Some f -> f ~seed wl
  | None -> Alcotest.failf "backend %s has no profile capability" b.Bk.name

(* ---------------------------------------------------------------- *)

let test_critpath_tiles_makespan () =
  List.iter
    (fun bname ->
      let b = backend bname in
      List.iter
        (fun wname ->
          let wl = workload wname in
          if Bk.supports b wl then
            for seed = 1 to 3 do
              let _, machine = profiled b ~seed wl in
              let p = P.of_machine machine in
              Alcotest.(check int)
                (Printf.sprintf "%s/%s seed %d: critpath total = makespan"
                   bname wname seed)
                p.P.makespan p.P.critpath.Threads_profile.Critpath.total;
              (* steps tile [0, makespan]: chronological and abutting *)
              let rec tiles at = function
                | [] -> at = p.P.makespan
                | s :: rest ->
                  s.Threads_profile.Critpath.s_t0 = at
                  && s.Threads_profile.Critpath.s_t1 >= at
                  && tiles s.Threads_profile.Critpath.s_t1 rest
              in
              Alcotest.(check bool)
                (Printf.sprintf "%s/%s seed %d: steps abut" bname wname seed)
                true
                (tiles 0 p.P.critpath.Threads_profile.Critpath.steps)
            done)
        [ "mutex"; "condvar"; "semaphore" ])
    [ "sim"; "uniproc"; "naive"; "hoare" ]

let test_serial_critpath () =
  let report =
    Firefly.Interleave.run ~seed:1 (fun machine ->
        M.set_profiling machine true;
        ignore
          (M.spawn_root machine (fun () ->
               M.Ops.tick 50;
               M.Ops.tick 25)))
  in
  let p = P.of_machine report.Firefly.Interleave.machine in
  Alcotest.(check int) "serial: total = makespan" p.P.makespan
    p.P.critpath.Threads_profile.Critpath.total;
  let run, _spin, sched, blocked =
    List.fold_left
      (fun (r, s, d, b) st ->
        Threads_profile.Critpath.
          (r + st.s_run, s + st.s_spin, d + st.s_sched, b + st.s_blocked))
      (0, 0, 0, 0)
      p.P.critpath.Threads_profile.Critpath.steps
  in
  Alcotest.(check int) "serial: path is pure running" p.P.makespan run;
  Alcotest.(check int) "serial: no scheduler wait" 0 sched;
  Alcotest.(check int) "serial: no lock wait" 0 blocked

let test_waitfor_acyclic_clean () =
  List.iter
    (fun bname ->
      let b = backend bname in
      let wl = workload "mutex" in
      for seed = 1 to 10 do
        let outcome, machine = profiled b ~seed wl in
        (match outcome.Bk.verdict with
        | Bk.Completed -> ()
        | v ->
          Alcotest.failf "%s/mutex seed %d: expected completion, got %a"
            bname seed Bk.pp_verdict v);
        let p = P.of_machine machine in
        Alcotest.(check int)
          (Printf.sprintf "%s/mutex seed %d: no wait-for cycles" bname seed)
          0
          (List.length p.P.waitfor.Threads_profile.Waitfor.cycles);
        Alcotest.(check int)
          (Printf.sprintf "%s/mutex seed %d: no residual waiters" bname seed)
          0
          (List.length p.P.waitfor.Threads_profile.Waitfor.final)
      done)
    [ "sim"; "uniproc" ]

let test_lock_inversion_cycle () =
  let mutant =
    match Threads_analysis.Mutants.find "lock-inversion" with
    | Some m -> m
    | None -> Alcotest.fail "lock-inversion mutant missing"
  in
  (* The inversion is schedule-dependent; scan seeds until one deadlocks
     and check the wait-for snapshot captured the cycle at formation. *)
  let found = ref None in
  let seed = ref 1 in
  while !found = None && !seed <= 50 do
    let machine = mutant.Threads_analysis.Mutants.m_run ~seed:!seed in
    let p = P.of_machine machine in
    (match p.P.waitfor.Threads_profile.Waitfor.cycles with
    | c :: _ -> found := Some (!seed, c)
    | [] -> ());
    incr seed
  done;
  match !found with
  | None ->
    Alcotest.fail "no seed in 1..50 produced a wait-for cycle snapshot"
  | Some (_, c) ->
    let members = c.Threads_profile.Waitfor.c_members in
    Alcotest.(check bool) "cycle has >= 2 members" true
      (List.length members >= 2);
    (* Every member blocked on an object whose owner is the next member:
       the snapshot is a genuine hold-and-wait chain. *)
    List.iter
      (fun e ->
        match e.Threads_profile.Waitfor.w_owner with
        | Some _ -> ()
        | None -> Alcotest.fail "cycle member with unknown owner")
      members

let test_profiling_is_free () =
  List.iter
    (fun bname ->
      let b = backend bname in
      List.iter
        (fun wname ->
          let wl = workload wname in
          if Bk.supports b wl then begin
            let plain = b.Bk.run ~seed:5 wl in
            let prof, machine = profiled b ~seed:5 wl in
            Alcotest.(check bool)
              (Printf.sprintf "%s/%s: same verdict" bname wname)
              true
              (plain.Bk.verdict = prof.Bk.verdict);
            Alcotest.(check (option string))
              (Printf.sprintf "%s/%s: same observable" bname wname)
              plain.Bk.observable prof.Bk.observable;
            Alcotest.(check (option int))
              (Printf.sprintf "%s/%s: same step count" bname wname)
              plain.Bk.steps prof.Bk.steps;
            Alcotest.(check bool)
              (Printf.sprintf "%s/%s: profile stream non-empty" bname wname)
              true
              (M.prof_event_count machine > 0)
          end)
        [ "mutex"; "condvar"; "broadcast" ])
    [ "sim"; "uniproc"; "hoare" ]

let test_render_deterministic () =
  let b = backend "sim" in
  let wl = workload "mutex" in
  let once () =
    let _, machine = profiled b ~seed:1 wl in
    let p = P.of_machine machine in
    (P.render p, P.folded p, Obs.Json.to_string (P.to_json p))
  in
  let r1, f1, j1 = once () in
  let r2, f2, j2 = once () in
  Alcotest.(check string) "table deterministic" r1 r2;
  Alcotest.(check string) "folded deterministic" f1 f2;
  Alcotest.(check string) "json deterministic" j1 j2;
  (* folded lines are "stack cycles" with cycle counts summing to the
     total thread-lifetime cycles, all positive *)
  String.split_on_char '\n' f1
  |> List.filter (fun l -> l <> "")
  |> List.iter (fun line ->
         match String.rindex_opt line ' ' with
         | None -> Alcotest.failf "folded line lacks a count: %s" line
         | Some i ->
           let n =
             int_of_string_opt
               (String.sub line (i + 1) (String.length line - i - 1))
           in
           (match n with
           | Some n when n > 0 -> ()
           | _ -> Alcotest.failf "folded count not positive: %s" line));
  (* json reports the same critical-path total as the typed profile *)
  let j = Obs.Json.of_string j1 in
  (match Obs.Json.member (Obs.Json.member j "critical_path") "total" with
  | Obs.Json.Int n ->
    let _, machine = profiled b ~seed:1 wl in
    let p = P.of_machine machine in
    Alcotest.(check int) "json total = makespan" p.P.makespan n
  | _ -> Alcotest.fail "critical_path.total missing")

let suite =
  ( "profile",
    [
      Alcotest.test_case "critical path tiles the makespan" `Quick
        test_critpath_tiles_makespan;
      Alcotest.test_case "serial workload: pure-running path" `Quick
        test_serial_critpath;
      Alcotest.test_case "wait-for acyclic on clean backends (10 seeds)"
        `Quick test_waitfor_acyclic_clean;
      Alcotest.test_case "lock-inversion mutant yields a cycle snapshot"
        `Quick test_lock_inversion_cycle;
      Alcotest.test_case "profiled runs are cycle-identical" `Quick
        test_profiling_is_free;
      Alcotest.test_case "renderings deterministic, folded well-formed"
        `Quick test_render_deterministic;
    ] )
