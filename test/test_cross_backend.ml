(* Differential conformance across the backend registry.

   The conforming backends (sim, uniproc, multicore) must replay every
   workload trace against the formal specification with zero violations
   and agree on the observable.  The two baselines must diverge exactly
   where the paper's experiments say: naive strands waiters under
   Broadcast (E5) and hoare's hand-off signal violates Resume's
   WHEN (m = NIL) (E8). *)

module Bk = Threads_backend.Backend
module Wl = Threads_backend.Workload
module Cc = Threads_backend.Crosscheck

let backend name =
  match Bk.find name with
  | Some b -> b
  | None -> Alcotest.failf "backend %S not registered" name

let workload name =
  match Wl.find name with
  | Some w -> w
  | None -> Alcotest.failf "workload %S not registered" name

let check_ok b w ~seeds () =
  let s = Cc.conform (backend b) (workload w) ~seeds in
  (match Cc.first_error s with
  | Some e -> Alcotest.failf "%s/%s: %s" b w e
  | None -> ());
  Alcotest.(check bool)
    (Printf.sprintf "%s/%s ok (completed, agreed, 0 violations)" b w)
    true (Cc.ok s)

(* E5: the rejected conditions-as-binary-semaphores design.  Its trace
   still conforms (coalescing Vs are legal for the spec's Signal, which
   may wake nobody) — the failure is the stranding itself, visible as a
   deadlock verdict on schedules where the broadcaster's Vs coalesce. *)
let naive_strands_broadcast () =
  let s = Cc.conform (backend "naive") (workload "broadcast") ~seeds:5 in
  Alcotest.(check int) "naive trace still conforms" 0 (Cc.violations s);
  let stranded =
    List.length
      (List.filter
         (fun (r : Cc.run) -> r.outcome.Bk.verdict = Bk.Deadlocked)
         s.runs)
  in
  if stranded = 0 then
    Alcotest.fail "naive backend never stranded a waiter under broadcast (E5)"

(* The one-bit design is sound for Signal (paper, section 6): with a
   single consumer the condvar workload must run clean. *)
let naive_signal_sound () = check_ok "naive" "condvar" ~seeds:3 ()

(* E8: Hoare signal transfers the mutex inside one atomic action, so the
   woken thread's Resume commits while m is the signaller, not NIL.
   Every effective signal yields exactly one violation, always on the
   Wait.Resume event. *)
let hoare_violates_resume () =
  let s = Cc.conform (backend "hoare") (workload "condvar") ~seeds:2 in
  Alcotest.(check bool) "hoare completes" true (Cc.completed s);
  if Cc.violations s = 0 then
    Alcotest.fail "hoare backend produced no Resume violations (E8)";
  List.iter
    (fun (r : Cc.run) ->
      List.iter
        (fun (e : Threads_model.Conformance.error) ->
          if e.event.Spec_trace.action <> "Resume" then
            Alcotest.failf "non-Resume violation: %a" Spec_trace.pp_event
              e.event)
        r.report.Threads_model.Conformance.errors)
    s.runs

(* Hoare's mutual exclusion itself is fine — only signal diverges. *)
let hoare_mutex_clean () = check_ok "hoare" "mutex" ~seeds:3 ()

let feature_gating () =
  let alert = workload "alert" in
  List.iter
    (fun name ->
      let s = Cc.conform (backend name) alert ~seeds:1 in
      Alcotest.(check bool) (name ^ " skips alert workload") true s.skipped)
    [ "naive"; "hoare" ]

let conforming_cases =
  (* Three conforming backends x (more than) two workloads each. *)
  List.concat_map
    (fun (b, seeds) ->
      List.map
        (fun w ->
          Alcotest.test_case
            (Printf.sprintf "%s/%s conforms" b w)
            `Quick
            (check_ok b w ~seeds))
        [ "mutex"; "condvar"; "semaphore"; "broadcast" ])
    [ ("sim", 3); ("uniproc", 3); ("multicore", 2) ]

let suite =
  ( "cross-backend",
    conforming_cases
    @ [
        Alcotest.test_case "naive strands broadcast (E5)" `Quick
          naive_strands_broadcast;
        Alcotest.test_case "naive signal is sound" `Quick naive_signal_sound;
        Alcotest.test_case "hoare violates Resume (E8)" `Quick
          hoare_violates_resume;
        Alcotest.test_case "hoare mutex clean" `Quick hoare_mutex_clean;
        Alcotest.test_case "feature gating skips alerts" `Quick feature_gating;
      ] )
