(* The generative chaos engine (lib/gen).

   Pins the engine's headline guarantees: the regression corpus of
   minimized counterexamples replays to its recorded classification;
   shrinking is deterministic (same seed and backend give a
   byte-identical minimal counterexample at any jobs) and monotone
   (every accepted step strictly decreases the measure); generated
   scenarios kill at least 8 of the 10 seeded spec mutants; and the
   program / plan / replay-file codecs round-trip. *)

module Rng = Threads_util.Rng
module Gen = Threads_gen
module Bk = Threads_backend.Backend
module Plan = Threads_fault.Plan

let backend name =
  match Bk.find name with
  | Some b -> b
  | None -> Alcotest.failf "backend %S not registered" name

(* ---- regression corpus ---- *)

let corpus =
  [ "corpus/e5-naive-stranded.gen"; "corpus/e8-hoare-resume.gen" ]

(* dune runs the suite from the test directory; tolerate a repo-root cwd
   too so the binary can be invoked by hand. *)
let resolve path =
  if Sys.file_exists path then path else Filename.concat "test" path

let test_corpus_replays path () =
  match Gen.Replay.load (resolve path) with
  | Error msg -> Alcotest.failf "%s: %s" path msg
  | Ok r ->
    let b = backend r.Gen.Replay.backend in
    let expect =
      match r.Gen.Replay.expect with
      | Some k -> k
      | None -> Alcotest.failf "%s: no pinned classification" path
    in
    (match Gen.Oracle.run b r.Gen.Replay.scenario with
    | Gen.Oracle.Fail (kind, _) when Gen.Oracle.same_kind expect kind -> ()
    | Gen.Oracle.Fail (kind, detail) ->
      Alcotest.failf "%s: expected %s, got %s (%s)" path
        (Gen.Oracle.kind_name expect)
        (Gen.Oracle.kind_name kind)
        detail
    | Gen.Oracle.Pass label ->
      Alcotest.failf "%s: expected %s, passed (%s)" path
        (Gen.Oracle.kind_name expect)
        label)

let test_corpus_is_divergence path () =
  (* Corpus counterexamples witness a backend divergence: the reference
     conforming backend completes the very same program. *)
  match Gen.Replay.load (resolve path) with
  | Error msg -> Alcotest.failf "%s: %s" path msg
  | Ok r -> (
    match Gen.Oracle.run (backend "sim") r.Gen.Replay.scenario with
    | Gen.Oracle.Pass _ -> ()
    | Gen.Oracle.Fail (kind, detail) ->
      Alcotest.failf "%s: reference backend also fails: %s (%s)" path
        (Gen.Oracle.kind_name kind) detail)

(* ---- campaign discovery pins (E5 / E8 rediscovered) ---- *)

let config =
  {
    Gen.Campaign.policy = Gen.Generate.Safe;
    runs = 100;
    seed = 7;
    chaos = false;
    shrink = true;
  }

let campaign ?jobs name = Gen.Campaign.run ?jobs (backend name) config

let minimal_text (r : Gen.Campaign.result) =
  match r.Gen.Campaign.minimal with
  | Some (file, _) -> Gen.Replay.to_string file
  | None -> Alcotest.fail "campaign found no counterexample"

let test_rediscovers_e5 () =
  let r = campaign "naive" in
  (match r.Gen.Campaign.first_failure with
  | Some (_, _, Gen.Oracle.Stranded, _) -> ()
  | Some (_, _, k, _) ->
    Alcotest.failf "naive: expected stranding, got %s" (Gen.Oracle.kind_name k)
  | None -> Alcotest.fail "naive: no counterexample in 100 runs");
  let file, _ = Option.get r.Gen.Campaign.minimal in
  let size = Gen.Oracle.scenario_size file.Gen.Replay.scenario in
  Alcotest.(check bool)
    (Printf.sprintf "minimal E5 witness has <= 8 ops (got %d)" size)
    true (size <= 8)

let test_rediscovers_e8 () =
  let r = campaign "hoare" in
  (match r.Gen.Campaign.first_failure with
  | Some (_, _, Gen.Oracle.Violation "Resume", _) -> ()
  | Some (_, _, k, _) ->
    Alcotest.failf "hoare: expected violation:Resume, got %s"
      (Gen.Oracle.kind_name k)
  | None -> Alcotest.fail "hoare: no counterexample in 100 runs");
  let file, _ = Option.get r.Gen.Campaign.minimal in
  let size = Gen.Oracle.scenario_size file.Gen.Replay.scenario in
  Alcotest.(check bool)
    (Printf.sprintf "minimal E8 witness has <= 8 ops (got %d)" size)
    true (size <= 8)

let test_conforming_backends_clean () =
  List.iter
    (fun name ->
      let r =
        Gen.Campaign.run (backend name)
          { config with Gen.Campaign.runs = 40; shrink = false }
      in
      Alcotest.(check (list (pair int pass)))
        (name ^ ": no counterexamples")
        []
        (List.map (fun (i, k) -> (i, Gen.Oracle.kind_name k))
           r.Gen.Campaign.failures))
    [ "sim"; "uniproc" ]

(* ---- shrinker determinism and monotonicity ---- *)

let test_shrink_jobs_parity () =
  let sequential = campaign ~jobs:1 "naive" in
  let parallel = campaign ~jobs:4 "naive" in
  Alcotest.(check string)
    "minimal counterexample byte-identical at --jobs=1 and --jobs=4"
    (minimal_text sequential) (minimal_text parallel);
  Alcotest.(check string)
    "whole rendered report byte-identical"
    (Format.asprintf "%a" Gen.Campaign.render sequential)
    (Format.asprintf "%a" Gen.Campaign.render parallel)

let test_shrink_rerun_identical () =
  Alcotest.(check string)
    "same (seed, backend) shrinks to the same bytes twice"
    (minimal_text (campaign "hoare"))
    (minimal_text (campaign "hoare"))

let measure (st : Gen.Shrink.step) = (st.Gen.Shrink.st_size, st.Gen.Shrink.st_weight)

let test_shrink_monotone () =
  List.iter
    (fun name ->
      let r = campaign name in
      let _, s0, _, _ = Option.get r.Gen.Campaign.first_failure in
      let trail = snd (Option.get r.Gen.Campaign.minimal) in
      let start =
        (Gen.Oracle.scenario_size s0, Gen.Oracle.scenario_weight s0)
      in
      ignore
        (List.fold_left
           (fun prev st ->
             if measure st >= prev then
               Alcotest.failf
                 "%s: non-decreasing shrink step %s: (%d,%d) -> (%d,%d)" name
                 st.Gen.Shrink.st_action (fst prev) (snd prev)
                 st.Gen.Shrink.st_size st.Gen.Shrink.st_weight;
             measure st)
           start trail))
    [ "naive"; "hoare" ]

(* ---- mutation adequacy ---- *)

let test_mutant_kills () =
  let rows = Gen.Mutants.kill_table ~seed:7 () in
  Alcotest.(check int) "all ten mutants in the table" 10 (List.length rows);
  let k = Gen.Mutants.killed rows in
  if k < 8 then
    Alcotest.failf "only %d/10 mutants killed:@.%s" k
      (Format.asprintf "%a" Gen.Mutants.render rows)

(* ---- codecs ---- *)

let generated_programs n =
  List.init n (fun i ->
      let rng = Rng.cell ~base:42 ~index:i in
      Gen.Generate.program
        ~policy:Gen.Generate.(List.nth policies (i mod 3))
        ~features:
          Threads_backend.Workload.[ Alerts; Timeouts; Interrupts ]
        rng)

let test_op_codec_roundtrip () =
  List.iter
    (fun p ->
      List.iter
        (fun op ->
          let enc = Gen.Prog.encode_op op in
          match Gen.Prog.decode_op enc with
          | Some op' when op' = op -> ()
          | Some _ -> Alcotest.failf "codec changed %S" enc
          | None -> Alcotest.failf "codec cannot parse %S" enc)
        (p.Gen.Prog.main @ List.concat p.Gen.Prog.threads))
    (generated_programs 30)

let test_plan_codec_roundtrip () =
  List.init 20 (fun i -> Plan.random ~seed:9 ~id:i)
  |> List.iter (fun plan ->
         List.iter
           (fun a ->
             let enc = Plan.encode_action a in
             match Plan.decode_action enc with
             | Some a' when a' = a -> ()
             | Some _ -> Alcotest.failf "plan codec changed %S" enc
             | None -> Alcotest.failf "plan codec cannot parse %S" enc)
           plan.Plan.actions)

let test_replay_roundtrip () =
  List.iteri
    (fun i p ->
      let file =
        {
          Gen.Replay.backend = "sim";
          scenario =
            {
              Gen.Oracle.program = p;
              policy = Gen.Generate.Free;
              seed = 1000 + i;
              plan = (if i mod 2 = 0 then Some (Plan.random ~seed:5 ~id:i) else None);
            };
          expect = (if i mod 3 = 0 then Some Gen.Oracle.Stranded else None);
        }
      in
      match Gen.Replay.parse (Gen.Replay.to_string file) with
      | Ok file' when file' = file -> ()
      | Ok _ -> Alcotest.failf "replay roundtrip changed file %d" i
      | Error msg -> Alcotest.failf "replay roundtrip failed: %s" msg)
    (generated_programs 12)

let test_canonicalize_idempotent () =
  List.iter
    (fun p ->
      Alcotest.(check bool)
        "canonicalize is idempotent" true
        (Gen.Prog.canonicalize p = p))
    (generated_programs 30)

(* ---- plan generator seeding (Rng.cell streams) ---- *)

let test_plan_generate_seeded () =
  let a = Plan.generate ~seed:3 ~plan_id:1 () in
  let b = Plan.generate ~seed:3 ~plan_id:1 () in
  let c = Plan.generate ~seed:4 ~plan_id:1 () in
  Alcotest.(check bool) "same seed reproduces the plan" true (a = b);
  Alcotest.(check bool) "different base seed changes the stream" true (a <> c)

let suite =
  ( "gen",
    List.map
      (fun path ->
        Alcotest.test_case ("corpus replays: " ^ path) `Quick
          (test_corpus_replays path))
      corpus
    @ List.map
        (fun path ->
          Alcotest.test_case ("corpus diverges: " ^ path) `Quick
            (test_corpus_is_divergence path))
        corpus
    @ [
        Alcotest.test_case "rediscovers E5 stranding on naive" `Quick
          test_rediscovers_e5;
        Alcotest.test_case "rediscovers E8 Resume violation on hoare" `Quick
          test_rediscovers_e8;
        Alcotest.test_case "conforming backends yield no counterexamples"
          `Quick test_conforming_backends_clean;
        Alcotest.test_case "shrink byte-identical across --jobs" `Quick
          test_shrink_jobs_parity;
        Alcotest.test_case "shrink byte-identical across reruns" `Quick
          test_shrink_rerun_identical;
        Alcotest.test_case "shrink measure strictly decreases" `Quick
          test_shrink_monotone;
        Alcotest.test_case "generated scenarios kill >= 8/10 spec mutants"
          `Quick test_mutant_kills;
        Alcotest.test_case "op codec round-trips" `Quick
          test_op_codec_roundtrip;
        Alcotest.test_case "plan codec round-trips" `Quick
          test_plan_codec_roundtrip;
        Alcotest.test_case "replay files round-trip" `Quick
          test_replay_roundtrip;
        Alcotest.test_case "canonicalize is idempotent" `Quick
          test_canonicalize_idempotent;
        Alcotest.test_case "plan generation draws per-cell streams" `Quick
          test_plan_generate_seeded;
      ] )
