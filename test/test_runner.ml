(* Scale-out verification: the work-stealing run-matrix executor, the
   domain-parallel crosscheck matrices, and DPOR schedule exploration.

   The load-bearing properties:
   - Matrix results are byte-identical for any worker count (ordering is
     restored after stealing, errors surface lowest-index-first).
   - DPOR's violation set equals exhaustive DFS's wherever DFS can
     finish, and equals the scenarios' pinned expectations everywhere —
     while exploring orders of magnitude fewer schedules. *)

module Matrix = Threads_runner.Matrix
module Rng = Threads_util.Rng
module Ex = Firefly.Explore
module Sc = Threads_harness.Explore_scenarios
module Bk = Threads_backend.Backend
module Wl = Threads_backend.Workload
module Cc = Threads_backend.Crosscheck

let job_counts = [ 1; 2; 4; 8 ]

(* ---- Matrix.map ---- *)

let test_map_values () =
  List.iter
    (fun jobs ->
      List.iter
        (fun n ->
          let got = Matrix.map ~jobs ~n (fun i -> (i * 7) + 1) in
          Alcotest.(check (array int))
            (Printf.sprintf "map n=%d jobs=%d" n jobs)
            (Array.init n (fun i -> (i * 7) + 1))
            got)
        [ 0; 1; 3; 17; 100 ])
    job_counts

let test_map_uneven_cells () =
  (* Wildly unbalanced cell costs force actual stealing; the result must
     still come back in index order. *)
  let n = 64 in
  let cell i =
    let r = Rng.cell ~base:99 ~index:i in
    let spin = if i mod 7 = 0 then 20_000 else 10 in
    let acc = ref 0 in
    for _ = 1 to spin do
      acc := !acc + Rng.int r 5
    done;
    (i, !acc)
  in
  let seq = Matrix.map ~jobs:1 ~n cell in
  List.iter
    (fun jobs ->
      Alcotest.(check (array (pair int int)))
        (Printf.sprintf "uneven jobs=%d" jobs)
        seq
        (Matrix.map ~jobs ~n cell))
    job_counts

exception Boom of int

let test_map_lowest_error () =
  List.iter
    (fun jobs ->
      match
        Matrix.map ~jobs ~n:50 (fun i ->
            if i = 13 || i = 37 then raise (Boom i) else i)
      with
      | _ -> Alcotest.fail "expected an exception"
      | exception Boom i ->
        Alcotest.(check int)
          (Printf.sprintf "lowest failing cell wins (jobs=%d)" jobs)
          13 i)
    job_counts

(* ---- Matrix.iter_ordered ---- *)

let test_iter_ordered_order () =
  List.iter
    (fun jobs ->
      (* More cells than the in-flight window, so producers must block on
         the consumer's watermark at least once when jobs > 1. *)
      let n = 1000 in
      let seen = ref [] in
      Matrix.iter_ordered ~jobs ~n
        ~f:(fun i -> i * 3)
        ~consume:(fun i v ->
          Alcotest.(check int) "value matches index" (i * 3) v;
          seen := i :: !seen)
        ();
      Alcotest.(check (list int))
        (Printf.sprintf "all cells in order (jobs=%d)" jobs)
        (List.init n (fun i -> i))
        (List.rev !seen))
    job_counts

let test_iter_ordered_error () =
  List.iter
    (fun jobs ->
      let consumed = ref [] in
      (match
         Matrix.iter_ordered ~jobs ~n:40
           ~f:(fun i -> if i >= 20 then raise (Boom i) else i)
           ~consume:(fun i _ -> consumed := i :: !consumed)
           ()
       with
      | () -> Alcotest.fail "expected an exception"
      | exception Boom i ->
        Alcotest.(check int)
          (Printf.sprintf "first failing cell raised (jobs=%d)" jobs)
          20 i);
      (* Everything before the failing cell was consumed, in order. *)
      Alcotest.(check (list int)) "prefix consumed"
        (List.init 20 (fun i -> i))
        (List.rev !consumed))
    job_counts

(* ---- per-cell RNG ---- *)

let test_rng_cell_deterministic () =
  let a = Rng.cell ~base:5 ~index:9 and b = Rng.cell ~base:5 ~index:9 in
  for _ = 1 to 50 do
    Alcotest.(check int) "same cell, same stream" (Rng.next a) (Rng.next b)
  done

let test_rng_cell_independent () =
  (* Adjacent cells and adjacent bases must not produce overlapping or
     correlated prefixes. *)
  let streams =
    [ Rng.cell ~base:5 ~index:0; Rng.cell ~base:5 ~index:1;
      Rng.cell ~base:6 ~index:0; Rng.cell ~base:4 ~index:2 ]
  in
  let prefixes =
    List.map (fun r -> List.init 8 (fun _ -> Rng.next r)) streams
  in
  let rec all_pairs = function
    | [] -> []
    | x :: rest -> List.map (fun y -> (x, y)) rest @ all_pairs rest
  in
  List.iter
    (fun (xs, ys) ->
      Alcotest.(check bool) "distinct prefixes" true (xs <> ys))
    (all_pairs prefixes)

(* ---- crosscheck matrices: parity across worker counts ---- *)

let summary_fingerprint (s : Cc.summary) =
  ( Cc.verdicts s,
    Cc.observables s,
    Cc.events s,
    Cc.violations s,
    List.map (fun (r : Cc.run) -> r.Cc.seed) s.Cc.runs )

let test_conform_jobs_parity () =
  let b = Option.get (Bk.find "uniproc") in
  let wl = Option.get (Wl.find "condvar") in
  let reference = summary_fingerprint (Cc.conform ~jobs:1 b wl ~seeds:6) in
  List.iter
    (fun jobs ->
      Alcotest.(check bool)
        (Printf.sprintf "conform summary identical (jobs=%d)" jobs)
        true
        (summary_fingerprint (Cc.conform ~jobs b wl ~seeds:6) = reference))
    [ 2; 4; 8 ]

let test_diff_jobs_parity () =
  let wl = Option.get (Wl.find "mutex") in
  (* The hardware backend's event counts are timing-dependent (real
     domains) at any worker count; only the simulator-family backends
     promise byte-identical summaries.  For hardware, pin the stable
     contract: verdicts and violations. *)
  let fp summaries =
    List.map
      (fun (s : Cc.summary) ->
        if s.Cc.backend.Bk.real_parallelism then
          (Cc.verdicts s, [], 0, Cc.violations s, [])
        else summary_fingerprint s)
      summaries
  in
  let reference = fp (Cc.diff ~jobs:1 wl ~seeds:2) in
  Alcotest.(check bool) "diff summaries identical (jobs=4)" true
    (fp (Cc.diff ~jobs:4 wl ~seeds:2) = reference)

let chaos_report ~jobs b wl ~plans ~seeds =
  let buf = Buffer.create 4096 in
  let t = Cc.chaos_stream ~jobs ~emit:(Buffer.add_string buf) b wl ~plans ~seeds in
  (Buffer.contents buf, t.Cc.ct_classes, t.Cc.ct_failures)

let test_chaos_stream_parity () =
  let b = Option.get (Bk.find "uniproc") in
  let wl = Option.get (Wl.find "mutex") in
  let reference = chaos_report ~jobs:1 b wl ~plans:3 ~seeds:2 in
  (* Streaming at jobs=1 must emit exactly what the retained summary
     renders... *)
  let retained =
    Format.asprintf "%a" Cc.render_chaos (Cc.chaos ~jobs:1 b wl ~plans:3 ~seeds:2)
  in
  let ref_text, _, _ = reference in
  Alcotest.(check string) "stream bytes = render_chaos bytes" retained ref_text;
  (* ...and the bytes must not depend on the worker count. *)
  List.iter
    (fun jobs ->
      Alcotest.(check bool)
        (Printf.sprintf "chaos report identical (jobs=%d)" jobs)
        true
        (chaos_report ~jobs b wl ~plans:3 ~seeds:2 = reference))
    [ 2; 4; 8 ]

(* ---- telemetry determinism: observed matrices report identically ---- *)

(* The observatory contract: attaching a fleet/progress sink must leave
   every report byte-identical, and the deterministic telemetry totals
   (cells executed) must equal the matrix size at any worker count. *)
let test_telemetry_reports_identical () =
  let module Tel = Threads_telemetry in
  let b = Option.get (Bk.find "uniproc") in
  let wl = Option.get (Wl.find "condvar") in
  let bare = summary_fingerprint (Cc.conform ~jobs:1 b wl ~seeds:6) in
  let chaos_bare = chaos_report ~jobs:1 b wl ~plans:3 ~seeds:2 in
  List.iter
    (fun jobs ->
      let p =
        Tel.Progress.create
          ~dest:(Tel.Progress.Custom ignore)
          ~label:"test" ~total:6 ~jobs ()
      in
      let telemetry = Tel.Progress.sink p in
      let observed =
        summary_fingerprint (Cc.conform ~telemetry ~jobs b wl ~seeds:6)
      in
      Tel.Progress.finish p;
      Alcotest.(check bool)
        (Printf.sprintf "telemetered conform identical (jobs=%d)" jobs)
        true (observed = bare);
      Alcotest.(check int)
        (Printf.sprintf "telemetry counted every seed (jobs=%d)" jobs)
        6
        (Tel.Fleet.total_cells (Tel.Progress.fleet_report p));
      let fl = Tel.Fleet.create ~jobs ~cells:0 () in
      let chaos_observed =
        let buf = Buffer.create 4096 in
        let t =
          Cc.chaos_stream ~telemetry:(Tel.Fleet.sink fl) ~jobs
            ~emit:(Buffer.add_string buf) b wl ~plans:3 ~seeds:2
        in
        (Buffer.contents buf, t.Cc.ct_classes, t.Cc.ct_failures)
      in
      Alcotest.(check bool)
        (Printf.sprintf "telemetered chaos bytes identical (jobs=%d)" jobs)
        true
        (chaos_observed = chaos_bare))
    [ 1; 4; 8 ]

(* The multicore package is one-per-process (global nub, alert tables,
   trace sink); its run entry points serialize on a package mutex so
   parallel matrix cells queue instead of corrupting each other.
   Before that lock, two overlapping traced runs raced reset() against
   a live alert_wait and deadlocked `repro diff --workload=alert
   --jobs=N` a majority of the time. *)
let test_multicore_package_serializes () =
  let module MC = Threads_multicore.Multicore in
  let module S = MC.Sync in
  let body () =
    let m = S.mutex () in
    let c = S.condition () in
    let w =
      S.fork (fun () ->
          try
            S.with_lock m (fun () ->
                while true do
                  S.alert_wait m c
                done)
          with Taos_threads.Sync_intf.Alerted -> ())
    in
    S.alert w;
    S.join w
  in
  let ds =
    List.init 2 (fun _ -> Domain.spawn (fun () -> ignore (MC.traced_run body)))
  in
  List.iter Domain.join ds

(* ---- DPOR vs exhaustive DFS ---- *)

let scenario name = Option.get (Sc.find name)

(* Where plain DFS can finish, its violation set is the ground truth
   DPOR must reproduce — with far fewer executions. *)
let test_dpor_matches_dfs () =
  List.iter
    (fun name ->
      let s = scenario name in
      let dfs_v, dfs_stats, complete =
        Ex.explore_all ~max_depth:s.Sc.max_depth ~max_runs:500_000
          ~build:s.Sc.build s.Sc.check
      in
      Alcotest.(check bool) (name ^ ": DFS exhausted the tree") true complete;
      let dpor_v, dpor_stats =
        Ex.explore_dpor ~max_depth:s.Sc.max_depth ~build:s.Sc.build s.Sc.check
      in
      Alcotest.(check bool) (name ^ ": DPOR complete") true
        dpor_stats.Ex.complete;
      Alcotest.(check (list string))
        (name ^ ": DPOR and DFS find the same violations")
        dfs_v dpor_v;
      Alcotest.(check (list string))
        (name ^ ": pinned expectation") s.Sc.expect dpor_v;
      Alcotest.(check bool)
        (Printf.sprintf "%s: DPOR prunes (%d < %d)" name
           dpor_stats.Ex.executions dfs_stats.Ex.terminal_runs)
        true
        (dpor_stats.Ex.executions < dfs_stats.Ex.terminal_runs))
    [ "wakeup-waiting"; "hoare-signal" ]

(* The rest of the catalogue is too big for DFS; DPOR must still finish
   and land exactly on the pinned expectations (E5's two stranding
   classes, clean alert cancellation, clean disjoint locks). *)
let test_dpor_pinned_expectations () =
  List.iter
    (fun name ->
      let s = scenario name in
      let v, st =
        Ex.explore_dpor ~max_depth:s.Sc.max_depth ~build:s.Sc.build s.Sc.check
      in
      Alcotest.(check bool) (name ^ ": complete") true st.Ex.complete;
      Alcotest.(check (list string)) (name ^ ": violations") s.Sc.expect v)
    [ "alert-cancel"; "naive-broadcast"; "disjoint-locks" ]

let test_dpor_parallel_jobs_parity () =
  List.iter
    (fun name ->
      let s = scenario name in
      let run jobs =
        Ex.explore_dpor_parallel ~max_depth:s.Sc.max_depth ~split_branches:2
          ~jobs ~build:s.Sc.build s.Sc.check
      in
      let reference = run 1 in
      let _, ref_stats = reference in
      Alcotest.(check bool) (name ^ ": complete") true ref_stats.Ex.complete;
      let ref_v, _ = reference in
      Alcotest.(check (list string))
        (name ^ ": split search agrees with expectation") s.Sc.expect ref_v;
      List.iter
        (fun jobs ->
          Alcotest.(check bool)
            (Printf.sprintf "%s: identical result (jobs=%d)" name jobs)
            true
            (run jobs = reference))
        [ 2; 4; 8 ])
    [ "wakeup-waiting"; "alert-cancel"; "hoare-signal" ]

let test_dpor_deterministic () =
  let s = scenario "wakeup-waiting" in
  let run () =
    Ex.explore_dpor ~max_depth:s.Sc.max_depth ~build:s.Sc.build s.Sc.check
  in
  Alcotest.(check bool) "two runs, same everything" true (run () = run ())

let suite =
  ( "runner-scaleout",
    [
      Alcotest.test_case "matrix map values" `Quick test_map_values;
      Alcotest.test_case "matrix map uneven cells" `Quick
        test_map_uneven_cells;
      Alcotest.test_case "matrix map lowest error" `Quick
        test_map_lowest_error;
      Alcotest.test_case "iter_ordered order" `Quick test_iter_ordered_order;
      Alcotest.test_case "iter_ordered error" `Quick test_iter_ordered_error;
      Alcotest.test_case "rng cell deterministic" `Quick
        test_rng_cell_deterministic;
      Alcotest.test_case "rng cell independent" `Quick
        test_rng_cell_independent;
      Alcotest.test_case "conform jobs parity" `Quick
        test_conform_jobs_parity;
      Alcotest.test_case "diff jobs parity" `Quick test_diff_jobs_parity;
      Alcotest.test_case "chaos stream parity" `Quick
        test_chaos_stream_parity;
      Alcotest.test_case "telemetered reports identical" `Quick
        test_telemetry_reports_identical;
      Alcotest.test_case "multicore package serializes" `Quick
        test_multicore_package_serializes;
      Alcotest.test_case "dpor matches exhaustive dfs" `Slow
        test_dpor_matches_dfs;
      Alcotest.test_case "dpor pinned expectations" `Slow
        test_dpor_pinned_expectations;
      Alcotest.test_case "dpor parallel jobs parity" `Quick
        test_dpor_parallel_jobs_parity;
      Alcotest.test_case "dpor deterministic" `Quick test_dpor_deterministic;
    ] )
