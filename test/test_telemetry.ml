(* Fleet observatory: telemetry collectors, progress streams and the
   bench-diff regression gate.

   The load-bearing properties:
   - Attaching a collector or progress sink never changes matrix
     results (observation is host-side only).
   - Counter totals are deterministic: total cells = matrix size at any
     worker count, even though per-worker attribution is not.
   - The progress stream is well-formed JSON lines with the documented
     event grammar, and the straggler/heartbeat logic is exact under an
     injected clock.
   - bench-diff gates deterministic metrics hard and host timing only
     advisorily. *)

module Matrix = Threads_runner.Matrix
module T = Threads_runner.Telemetry
module Fleet = Threads_telemetry.Fleet
module Progress = Threads_telemetry.Progress
module Bd = Threads_telemetry.Bench_diff
module Ex = Firefly.Explore
module Sc = Threads_harness.Explore_scenarios

let job_counts = [ 1; 2; 4; 8 ]

let contains hay needle =
  let nh = String.length hay and nn = String.length needle in
  let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
  go 0

(* ---- fleet collector ---- *)

let test_fleet_map_noninterference () =
  let n = 200 in
  let cell i = (i * 13) + 5 in
  let plain = Matrix.map ~jobs:1 ~n cell in
  List.iter
    (fun jobs ->
      let fl = Fleet.create ~jobs ~cells:n () in
      let got = Matrix.map ~telemetry:(Fleet.sink fl) ~jobs ~n cell in
      Alcotest.(check (array int))
        (Printf.sprintf "map results unchanged (jobs=%d)" jobs)
        plain got;
      let rep = Fleet.snapshot fl in
      Alcotest.(check int)
        (Printf.sprintf "every cell counted exactly once (jobs=%d)" jobs)
        n (Fleet.total_cells rep);
      Alcotest.(check int) "jobs recorded" jobs rep.Fleet.r_jobs;
      Alcotest.(check int) "expected recorded" n rep.Fleet.r_expected)
    job_counts

let test_fleet_iter_ordered_noninterference () =
  let n = 500 in
  List.iter
    (fun jobs ->
      let fl = Fleet.create ~jobs ~cells:n () in
      let seen = ref [] in
      Matrix.iter_ordered ~telemetry:(Fleet.sink fl) ~jobs ~n
        ~f:(fun i -> i * 2)
        ~consume:(fun i v ->
          Alcotest.(check int) "value matches index" (i * 2) v;
          seen := i :: !seen)
        ();
      Alcotest.(check (list int))
        (Printf.sprintf "consume order unchanged (jobs=%d)" jobs)
        (List.init n (fun i -> i))
        (List.rev !seen);
      let rep = Fleet.snapshot fl in
      Alcotest.(check int) "cells counted" n (Fleet.total_cells rep);
      Alcotest.(check bool) "in-flight high-water >= 1" true
        (rep.Fleet.r_inflight_hw >= 1))
    job_counts

let test_fleet_steals_balance () =
  (* Steals won on one side are stolen cells on the same side: the sink
     reports both from the thief, so the totals must agree. *)
  let n = 64 in
  let fl = Fleet.create ~jobs:4 ~cells:n () in
  ignore
    (Matrix.map ~telemetry:(Fleet.sink fl) ~jobs:4 ~n (fun i ->
         let acc = ref 0 in
         for j = 1 to if i mod 5 = 0 then 50_000 else 100 do
           acc := !acc + (j mod 7)
         done;
         !acc));
  let rep = Fleet.snapshot fl in
  let won =
    List.fold_left (fun a w -> a + w.Fleet.ws_steals_won) 0 rep.Fleet.r_workers
  and stolen =
    List.fold_left
      (fun a w -> a + w.Fleet.ws_stolen_cells)
      0 rep.Fleet.r_workers
  in
  Alcotest.(check bool) "stolen cells >= steal wins" true (stolen >= won);
  Alcotest.(check int) "all cells executed" n (Fleet.total_cells rep)

let test_fleet_render_and_chrome () =
  let clk = ref 0. in
  let now () = !clk in
  let fl = Fleet.create ~label:"unit" ~now ~jobs:2 ~cells:3 () in
  let s = Fleet.sink fl in
  (* Two cells on worker 0 closer than the coalescing gap, one on
     worker 1 after a long idle stretch. *)
  s.T.cell_start ~worker:0 ~cell:0;
  clk := 0.010;
  s.T.cell_done ~worker:0 ~cell:0;
  clk := 0.0101;
  s.T.cell_start ~worker:0 ~cell:1;
  clk := 0.020;
  s.T.cell_done ~worker:0 ~cell:1;
  clk := 1.0;
  s.T.cell_start ~worker:1 ~cell:2;
  clk := 1.5;
  s.T.cell_done ~worker:1 ~cell:2;
  clk := 2.0;
  let rep = Fleet.snapshot fl in
  let w0 = List.nth rep.Fleet.r_workers 0 in
  Alcotest.(check int) "w0 segments coalesced" 1
    (List.length w0.Fleet.ws_segments);
  let rendered = Fleet.render rep in
  Alcotest.(check bool) "render has title" true
    (contains rendered "fleet: unit");
  Alcotest.(check bool) "render has totals row" true
    (contains rendered "all");
  let trace = Fleet.chrome rep in
  match Obs.Json.find trace "traceEvents" with
  | Some (Obs.Json.Arr evs) ->
    let xs =
      List.filter
        (fun e -> Obs.Json.find e "ph" = Some (Obs.Json.String "X"))
        evs
    in
    (* one coalesced segment for worker 0, one for worker 1 *)
    Alcotest.(check int) "one X event per busy segment" 2 (List.length xs)
  | _ -> Alcotest.fail "chrome trace lacks traceEvents"

(* ---- progress stream ---- *)

let parse_lines lines =
  List.rev_map (fun l -> Obs.Json.of_string (String.trim l)) lines

let event_name j =
  match Obs.Json.find j "event" with
  | Some (Obs.Json.String s) -> s
  | _ -> Alcotest.fail "event without a name"

let test_progress_event_stream () =
  let lines = ref [] in
  let p =
    Progress.create ~interval:0. ~dest:(Progress.Custom (fun l -> lines := l :: !lines))
      ~label:"unit" ~total:5 ~jobs:2 ()
  in
  Progress.phase p "warmup" ~cells:5;
  ignore (Matrix.map ~telemetry:(Progress.sink p) ~jobs:2 ~n:5 (fun i -> i));
  Progress.finish p;
  Progress.finish p (* idempotent *);
  let evs = parse_lines !lines in
  Alcotest.(check string) "first event is start" "start"
    (event_name (List.hd evs));
  Alcotest.(check string) "last event is done" "done"
    (event_name (List.nth evs (List.length evs - 1)));
  Alcotest.(check bool) "phase announced" true
    (List.exists (fun e -> event_name e = "phase") evs);
  (* interval 0 => one heartbeat per completed cell, with monotone
     non-decreasing done counts ending at the total *)
  let hbs = List.filter (fun e -> event_name e = "heartbeat") evs in
  Alcotest.(check int) "heartbeat per cell" 5 (List.length hbs);
  let dones =
    List.map
      (fun e ->
        match Obs.Json.find e "done" with
        | Some (Obs.Json.Int n) -> n
        | _ -> Alcotest.fail "heartbeat without done")
      hbs
  in
  Alcotest.(check (list int)) "done counts monotone" [ 1; 2; 3; 4; 5 ] dones;
  match List.rev evs with
  | last :: _ ->
    Alcotest.(check bool) "done event carries cells" true
      (Obs.Json.find last "cells" = Some (Obs.Json.Int 5))
  | [] -> Alcotest.fail "no events"

let test_progress_straggler () =
  let clk = ref 0. in
  let lines = ref [] in
  let p =
    Progress.create
      ~now:(fun () -> !clk)
      ~interval:1e9 (* suppress heartbeats: isolate the straggler path *)
      ~dest:(Progress.Custom (fun l -> lines := l :: !lines))
      ~label:"unit" ~total:10 ~jobs:1 ()
  in
  let s = Progress.sink p in
  (* Baseline: 8 cells of 10ms each — too fast and too uniform to flag. *)
  for i = 0 to 7 do
    s.T.cell_start ~worker:0 ~cell:i;
    clk := !clk +. 0.010;
    s.T.cell_done ~worker:0 ~cell:i
  done;
  Alcotest.(check bool) "no straggler in the baseline" false
    (List.exists
       (fun e -> event_name e = "straggler")
       (parse_lines !lines));
  (* One cell at 25x the mean. *)
  s.T.cell_start ~worker:0 ~cell:8;
  clk := !clk +. 0.250;
  s.T.cell_done ~worker:0 ~cell:8;
  let stragglers =
    List.filter (fun e -> event_name e = "straggler") (parse_lines !lines)
  in
  Alcotest.(check int) "straggler flagged once" 1 (List.length stragglers);
  let st = List.hd stragglers in
  Alcotest.(check bool) "straggler names the cell" true
    (Obs.Json.find st "cell" = Some (Obs.Json.Int 8))

let test_progress_never_stdout () =
  (* The matrix result is identical with and without a live progress
     stream — the stream goes only to its own destination. *)
  let n = 100 in
  let cell i = Printf.sprintf "row-%d" i in
  let plain = Matrix.map ~jobs:4 ~n cell in
  let sunk = ref 0 in
  let p =
    Progress.create ~interval:0.
      ~dest:(Progress.Custom (fun _ -> incr sunk))
      ~label:"unit" ~total:n ~jobs:4 ()
  in
  let got = Matrix.map ~telemetry:(Progress.sink p) ~jobs:4 ~n cell in
  Progress.finish p;
  Alcotest.(check (array string)) "results identical" plain got;
  Alcotest.(check bool) "events actually flowed" true (!sunk > 0)

(* ---- DPOR explore instrumentation ---- *)

let test_explore_progress_monotone () =
  let s = Option.get (Sc.find "wakeup-waiting") in
  let snaps = ref [] in
  let v, final =
    Ex.explore_dpor ~max_depth:s.Sc.max_depth
      ~progress:(fun st -> snaps := st :: !snaps)
      ~build:s.Sc.build s.Sc.check
  in
  Alcotest.(check (list string)) "violations unchanged" s.Sc.expect v;
  let snaps = List.rev !snaps in
  Alcotest.(check int) "one snapshot per execution" final.Ex.executions
    (List.length snaps);
  let rec monotone = function
    | a :: (b :: _ as rest) ->
      a.Ex.executions <= b.Ex.executions
      && a.Ex.sleep_blocked <= b.Ex.sleep_blocked
      && a.Ex.peak_depth <= b.Ex.peak_depth
      && monotone rest
    | _ -> true
  in
  Alcotest.(check bool) "snapshots monotone" true (monotone snaps);
  (* Snapshots land right after each execution, before the backtracking
     that may still discover sleep-blocked branches — so the last one
     matches the final stats on executions/depth and trails at most on
     sleep_blocked. *)
  let last = List.nth snaps (List.length snaps - 1) in
  Alcotest.(check int) "last snapshot saw every execution"
    final.Ex.executions last.Ex.executions;
  Alcotest.(check int) "last snapshot saw the peak depth"
    final.Ex.peak_depth last.Ex.peak_depth;
  Alcotest.(check bool) "sleep counter only trails" true
    (last.Ex.sleep_blocked <= final.Ex.sleep_blocked);
  Alcotest.(check bool) "peak depth positive" true (final.Ex.peak_depth > 0)

let test_explore_telemetry_identical () =
  (* Instrumented parallel exploration returns exactly what the bare one
     does — including the new peak_depth stat — at any worker count. *)
  let s = Option.get (Sc.find "wakeup-waiting") in
  let bare =
    Ex.explore_dpor_parallel ~max_depth:s.Sc.max_depth ~split_branches:2
      ~jobs:1 ~build:s.Sc.build s.Sc.check
  in
  List.iter
    (fun jobs ->
      let fl = Fleet.create ~jobs ~cells:0 () in
      let ticks = ref 0 in
      let instrumented =
        Ex.explore_dpor_parallel ~max_depth:s.Sc.max_depth ~split_branches:2
          ~jobs
          ~progress:(fun _ -> incr ticks)
          ~telemetry:(Fleet.sink fl) ~build:s.Sc.build s.Sc.check
      in
      Alcotest.(check bool)
        (Printf.sprintf "instrumented result identical (jobs=%d)" jobs)
        true (instrumented = bare);
      Alcotest.(check bool) "progress ticked" true (!ticks > 0))
    job_counts

(* ---- bench-diff ---- *)

let bench ?(cycles = []) ?(host = []) ?dpor_execs ?(agree = true) () =
  let arm name =
    Obs.Json.Obj
      [
        ("name", Obs.Json.String name);
        ( "host_us_per_run",
          match List.assoc_opt name host with
          | Some us -> Obs.Json.Float us
          | None -> Obs.Json.Null );
        ( "sim_cycles",
          match List.assoc_opt name cycles with
          | Some c -> Obs.Json.Int c
          | None -> Obs.Json.Null );
      ]
  in
  let names =
    List.sort_uniq compare (List.map fst cycles @ List.map fst host)
  in
  Obs.Json.Obj
    [
      ("schema_version", Obs.Json.Int 2);
      ( "dpor",
        Obs.Json.Obj
          ([ ("violations_agree", Obs.Json.Bool agree) ]
          @
          match dpor_execs with
          | Some n -> [ ("dpor_executions", Obs.Json.Int n) ]
          | None -> []) );
      ("benchmarks", Obs.Json.Arr (List.map arm names));
    ]

let test_bench_diff_gate () =
  let old_ = bench ~cycles:[ ("a", 1000); ("b", 500) ] ~dpor_execs:14 () in
  (* a regresses 1%, b improves *)
  let new_ = bench ~cycles:[ ("a", 1010); ("b", 400) ] ~dpor_execs:14 () in
  let r = Bd.compare_json ~old_ ~new_ () in
  Alcotest.(check bool) "default gate 0: any increase fails" false (Bd.ok r);
  Alcotest.(check int) "exactly one regression" 1
    (List.length r.Bd.d_regressions);
  let r5 = Bd.compare_json ~gate:5. ~old_ ~new_ () in
  Alcotest.(check bool) "1% increase passes a 5% gate" true (Bd.ok r5);
  let statuses =
    List.map (fun a -> (a.Bd.a_name, a.Bd.a_status)) r.Bd.d_arms
  in
  Alcotest.(check bool) "a regressed / b improved" true
    (statuses = [ ("a", Bd.Regression); ("b", Bd.Improvement) ]);
  Alcotest.(check bool) "render announces FAIL" true
    (contains (Bd.render r) "bench-diff: FAIL")

let test_bench_diff_dpor_and_agreement () =
  let old_ = bench ~cycles:[ ("a", 100) ] ~dpor_execs:14 () in
  let worse = bench ~cycles:[ ("a", 100) ] ~dpor_execs:20 () in
  Alcotest.(check bool) "dpor execution growth is a regression" false
    (Bd.ok (Bd.compare_json ~old_ ~new_:worse ()));
  let broken =
    bench ~cycles:[ ("a", 100) ] ~dpor_execs:14 ~agree:false ()
  in
  Alcotest.(check bool) "violation-set disagreement is a regression" false
    (Bd.ok (Bd.compare_json ~old_ ~new_:broken ()))

let test_bench_diff_host_advisory () =
  let old_ = bench ~cycles:[ ("a", 100) ] ~host:[ ("a", 10.) ] () in
  let new_ = bench ~cycles:[ ("a", 100) ] ~host:[ ("a", 20.) ] () in
  let r = Bd.compare_json ~old_ ~new_ () in
  Alcotest.(check bool) "host drift never fails the diff" true (Bd.ok r);
  Alcotest.(check int) "but is advisory" 1 (List.length r.Bd.d_advisories);
  let quiet =
    Bd.compare_json ~host_gate:150. ~old_ ~new_ ()
  in
  Alcotest.(check int) "advisory threshold respected" 0
    (List.length quiet.Bd.d_advisories)

let test_bench_diff_added_removed () =
  let old_ = bench ~cycles:[ ("gone", 10); ("kept", 5) ] () in
  let new_ = bench ~cycles:[ ("kept", 5); ("fresh", 7) ] () in
  let r = Bd.compare_json ~old_ ~new_ () in
  Alcotest.(check bool) "arm churn is not a failure" true (Bd.ok r);
  Alcotest.(check (list string)) "statuses by arm"
    [ "removed"; "ok"; "added" ]
    (List.map (fun a -> Bd.status_name a.Bd.a_status) r.Bd.d_arms)

let test_bench_diff_jsonl_history () =
  let path = Filename.temp_file "bench_hist" ".jsonl" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      let oc = open_out path in
      output_string oc
        (Obs.Json.to_string (bench ~cycles:[ ("a", 111) ] ()) ^ "\n");
      output_string oc
        (Obs.Json.to_string (bench ~cycles:[ ("a", 222) ] ()) ^ "\n");
      close_out oc;
      let j = Bd.load_file path in
      let r = Bd.compare_json ~old_:j ~new_:(bench ~cycles:[ ("a", 222) ] ()) () in
      (* comparing the history's *last* record against itself: clean *)
      Alcotest.(check bool) "last record wins" true (Bd.ok r);
      match r.Bd.d_arms with
      | [ a ] -> Alcotest.(check (option int)) "cycles from last line"
          (Some 222) a.Bd.a_old_cycles
      | _ -> Alcotest.fail "expected one arm")

let suite =
  ( "telemetry-observatory",
    [
      Alcotest.test_case "fleet map noninterference" `Quick
        test_fleet_map_noninterference;
      Alcotest.test_case "fleet iter_ordered noninterference" `Quick
        test_fleet_iter_ordered_noninterference;
      Alcotest.test_case "fleet steal accounting" `Quick
        test_fleet_steals_balance;
      Alcotest.test_case "fleet render + chrome trace" `Quick
        test_fleet_render_and_chrome;
      Alcotest.test_case "progress event stream" `Quick
        test_progress_event_stream;
      Alcotest.test_case "progress straggler detection" `Quick
        test_progress_straggler;
      Alcotest.test_case "progress leaves results alone" `Quick
        test_progress_never_stdout;
      Alcotest.test_case "explore progress monotone" `Quick
        test_explore_progress_monotone;
      Alcotest.test_case "explore telemetry identical" `Quick
        test_explore_telemetry_identical;
      Alcotest.test_case "bench-diff cycle gate" `Quick test_bench_diff_gate;
      Alcotest.test_case "bench-diff dpor + agreement" `Quick
        test_bench_diff_dpor_and_agreement;
      Alcotest.test_case "bench-diff host advisory" `Quick
        test_bench_diff_host_advisory;
      Alcotest.test_case "bench-diff arm churn" `Quick
        test_bench_diff_added_removed;
      Alcotest.test_case "bench-diff jsonl history" `Quick
        test_bench_diff_jsonl_history;
    ] )
