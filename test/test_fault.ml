(* Fault injection and chaos conformance.

   Three claims are pinned here.  First, the injection machinery is free
   when disabled: a run with the wakeup filter installed but answering
   Deliver is cycle-, schedule- and trace-identical to a run without it.
   Second, the robustness contract: for every chaos-capable backend x
   workload x fault plan x seed, the run either completes conformant or
   terminates with a diagnosed fault report naming the injected fault —
   never a hang (the engine's step budget is the watchdog), never a spec
   violation, never an unexplained failure.  Third, chaos runs are
   deterministic: equal (backend, workload, plan, seed) render
   byte-identical fault reports.

   The alert-cancellation tests are the regression net for the paper's
   wakeup-waiting incidents: under injected delayed-wakeup windows, an
   Alert racing a V (or a Broadcast) must never lose the pending wakeup. *)

module M = Firefly.Machine
module Bk = Threads_backend.Backend
module Wl = Threads_backend.Workload
module Cc = Threads_backend.Crosscheck
module Plan = Threads_fault.Plan
module Engine = Threads_fault.Engine
module Sync_intf = Taos_threads.Sync_intf

let backend name =
  match Bk.find name with
  | Some b -> b
  | None -> Alcotest.failf "backend %S not registered" name

let workload name =
  match Wl.find name with
  | Some w -> w
  | None -> Alcotest.failf "workload %S not registered" name

let chaos_backends = [ "sim"; "uniproc" ]

(* ---- injection disabled: the hooks are free ---- *)

(* The sim backend's build, inlined (the registry does not export its
   builders): package created inside the root thread, exactly as
   Backend.machine_run does it. *)
let sim_run ~deliver_filter ~seed (wl : Wl.t) =
  let observable = ref None in
  let report =
    Firefly.Interleave.run ~seed ~max_steps:2_000_000 (fun m ->
        if deliver_filter then
          M.set_wake_filter m (Some (fun _ -> M.Deliver));
        ignore
          (M.spawn_root m (fun () ->
               let module S =
                 (val Taos_threads.Api.make (Taos_threads.Pkg.create ()))
               in
               observable := Some (wl.Wl.body (module S)))))
  in
  (report, !observable)

let disabled_is_identical () =
  List.iter
    (fun wname ->
      let wl = workload wname in
      List.iter
        (fun seed ->
          let plain, obs_plain = sim_run ~deliver_filter:false ~seed wl in
          let hooked, obs_hooked = sim_run ~deliver_filter:true ~seed wl in
          let label fmt = Printf.sprintf "%s seed %d: %s" wname seed fmt in
          Alcotest.(check int)
            (label "steps")
            plain.Firefly.Interleave.steps hooked.Firefly.Interleave.steps;
          Alcotest.(check int)
            (label "cycles")
            (M.total_cycles plain.Firefly.Interleave.machine)
            (M.total_cycles hooked.Firefly.Interleave.machine);
          Alcotest.(check bool)
            (label "trace identical")
            true
            (M.trace plain.Firefly.Interleave.machine
            = M.trace hooked.Firefly.Interleave.machine);
          Alcotest.(check (option string)) (label "observable") obs_plain
            obs_hooked)
        [ 0; 3; 11 ])
    [ "mutex"; "condvar"; "alert" ]

(* ---- plan generation is reproducible ---- *)

let plans_deterministic () =
  for plan_id = 0 to 13 do
    let a = Plan.generate ~plan_id () in
    let b = Plan.generate ~plan_id () in
    Alcotest.(check string)
      (Printf.sprintf "plan %d reproducible" plan_id)
      (Plan.describe a) (Plan.describe b);
    Alcotest.(check bool)
      (Printf.sprintf "plan %d structurally equal" plan_id)
      true (a = b)
  done

(* ---- the robustness contract over the full matrix ---- *)

(* 7 plans (every family) x 3 seeds per backend/workload pair: every run
   must land in one of the two acceptable classes.  A Violation or
   Unexplained anywhere — or a hang, which the step budget converts into
   a Step_budget verdict — fails the suite. *)
let chaos_matrix bname wname () =
  let s = Cc.chaos (backend bname) (workload wname) ~plans:7 ~seeds:3 in
  Alcotest.(check bool) "not skipped" false s.Cc.cs_skipped;
  Alcotest.(check int) "full matrix ran" 21 (List.length s.Cc.cs_runs);
  List.iter
    (fun (r : Cc.chaos_run) ->
      match r.Cc.c_class with
      | Cc.Conformant | Cc.Diagnosed -> ()
      | Cc.Violation | Cc.Unexplained ->
        Alcotest.failf "%s/%s plan#%d seed=%d: %s\n%s" bname wname
          r.Cc.c_plan.Plan.id r.Cc.c_seed
          (Cc.class_name r.Cc.c_class)
          (Plan.describe r.Cc.c_plan))
    s.Cc.cs_runs;
  Alcotest.(check bool) "chaos_ok" true (Cc.chaos_ok s)

(* ---- chaos runs render byte-identical reports ---- *)

let chaos_deterministic () =
  List.iter
    (fun bname ->
      let render () =
        Format.asprintf "%a" Cc.render_chaos
          (Cc.chaos (backend bname) (workload "condvar") ~plans:3 ~seeds:2)
      in
      Alcotest.(check string)
        (bname ^ " report byte-identical across runs")
        (render ()) (render ()))
    chaos_backends

(* ---- diagnosed-failure pins ---- *)

(* A dropped wakeup wedges the condvar workload: the watchdog must turn
   the hang into a Deadlock verdict, and the fault log must name the
   drop so the report attributes blame. *)
let dropped_wakeup_diagnosed () =
  let r =
    Cc.chaos_one (backend "sim") (workload "condvar") ~seed:0
      (Plan.generate ~plan_id:1 ())
  in
  Alcotest.(check string) "class" "diagnosed" (Cc.class_name r.Cc.c_class);
  (match r.Cc.c_outcome.Engine.verdict with
  | Engine.Deadlock (_ :: _) -> ()
  | v -> Alcotest.failf "expected deadlock, got %a" Engine.pp_verdict v);
  let dropped (f : M.fault) =
    String.length f.M.f_desc >= 7
    && List.exists
         (fun sub ->
           let n = String.length sub in
           let rec at i =
             i + n <= String.length f.M.f_desc
             && (String.sub f.M.f_desc i n = sub || at (i + 1))
           in
           at 0)
         [ "dropped" ]
  in
  Alcotest.(check bool) "fault log names the drop" true
    (List.exists dropped r.Cc.c_outcome.Engine.injected)

(* Crash-stop mid-critical-section: the victim dies holding the package
   mutex, everyone else deadlocks behind it.  The thread failure must be
   Crash_stopped (not an unwound exception) and the run Diagnosed. *)
let crash_stop_diagnosed () =
  let r =
    Cc.chaos_one (backend "sim") (workload "mutex") ~seed:0
      (Plan.generate ~plan_id:5 ())
  in
  Alcotest.(check string) "class" "diagnosed" (Cc.class_name r.Cc.c_class);
  let failures = M.failures r.Cc.c_outcome.Engine.machine in
  Alcotest.(check bool) "some thread crash-stopped" true (failures <> []);
  List.iter
    (fun (tid, e) ->
      if e <> M.Crash_stopped then
        Alcotest.failf "t%d failed with %s, not Crash_stopped" tid
          (Printexc.to_string e))
    failures

(* ---- timed waits conform (TimedWait / TimedP spec clauses) ---- *)

let timeout_conforms bname () =
  let s = Cc.conform (backend bname) (workload "timeout") ~seeds:5 in
  (match Cc.first_error s with
  | Some e -> Alcotest.failf "%s/timeout: %s" bname e
  | None -> ());
  Alcotest.(check bool) "completed, agreed, 0 violations" true (Cc.ok s)

(* ---- alert cancellation never loses a pending wakeup (S3) ---- *)

(* Two races the paper's incident reports motivate, run under injected
   delayed-wakeup windows:

   - Alert vs V on a drained semaphore: whichever way AlertP resolves,
     the V must survive — if the victim was alerted out, the final P
     must find the token; if the victim consumed it, we replenish first.
     A lost V deadlocks the main thread, which the engine would report
     as Diagnosed — the test demands Conformant, so a loss fails.
   - An alerted waiter next to a Mesa waiter under one Broadcast: both
     must exit, the alertee via Alerted, the waiter via the predicate. *)
let alert_cancel_wl : Wl.t =
  {
    Wl.name = "alert-cancel";
    description = "alert racing V and Broadcast keeps pending wakeups";
    needs = [ Wl.Alerts ];
    body =
      (fun (module S : Sync_intf.SYNC) ->
        let s = S.semaphore () in
        S.p s;
        let got = ref false in
        let victim =
          S.fork (fun () ->
              match S.alert_p s with
              | () -> got := true
              | exception Sync_intf.Alerted -> ())
        in
        S.alert victim;
        S.v s;
        S.join victim;
        if !got then S.v s;
        S.p s;
        let m = S.mutex () in
        let c = S.condition () in
        let flag = ref false in
        let alerted = ref false in
        let aw =
          S.fork (fun () ->
              try S.with_lock m (fun () -> S.alert_wait m c)
              with Sync_intf.Alerted -> alerted := true)
        in
        let w =
          S.fork (fun () ->
              S.with_lock m (fun () ->
                  while not !flag do
                    S.wait m c
                  done))
        in
        S.alert aw;
        S.with_lock m (fun () -> flag := true);
        S.broadcast c;
        S.join aw;
        S.join w;
        Printf.sprintf "p=%s alerted=%b" (if !got then "got" else "alerted")
          !alerted);
  }

(* Plan ids 0 and 7 are both the delayed-wakeups family with different
   jitter; 10 seeds each, on both chaos-capable backends.  Every run
   must complete conformant: a lost Signal/V surfaces as Diagnosed
   (deadlock) and fails. *)
let alert_under_delayed_wakeups bname () =
  let b = backend bname in
  List.iter
    (fun plan_id ->
      let plan = Plan.generate ~plan_id () in
      for seed = 0 to 9 do
        let r = Cc.chaos_one b alert_cancel_wl ~seed plan in
        if r.Cc.c_class <> Cc.Conformant then
          Alcotest.failf "%s plan#%d seed=%d: %s (verdict %a)" bname plan_id
            seed
            (Cc.class_name r.Cc.c_class)
            Engine.pp_verdict r.Cc.c_outcome.Engine.verdict;
        Alcotest.(check int)
          (Printf.sprintf "%s plan#%d seed=%d: no violations" bname plan_id
             seed)
          0
          (List.length r.Cc.c_report.Threads_model.Conformance.errors)
      done)
    [ 0; 7 ]

let matrix_cases =
  List.concat_map
    (fun b ->
      List.map
        (fun w ->
          Alcotest.test_case
            (Printf.sprintf "%s/%s: 7 plans x 3 seeds all explained" b w)
            `Quick (chaos_matrix b w))
        [ "mutex"; "condvar"; "semaphore"; "timeout" ])
    chaos_backends

let suite =
  ( "fault",
    [
      Alcotest.test_case "disabled injection is schedule-identical" `Quick
        disabled_is_identical;
      Alcotest.test_case "plan generation reproducible" `Quick
        plans_deterministic;
      Alcotest.test_case "chaos reports deterministic" `Quick
        chaos_deterministic;
      Alcotest.test_case "dropped wakeup -> diagnosed deadlock" `Quick
        dropped_wakeup_diagnosed;
      Alcotest.test_case "crash-stop -> diagnosed, no unwinding" `Quick
        crash_stop_diagnosed;
      Alcotest.test_case "sim timeout workload conforms" `Quick
        (timeout_conforms "sim");
      Alcotest.test_case "uniproc timeout workload conforms" `Quick
        (timeout_conforms "uniproc");
      Alcotest.test_case "sim alert cancellation keeps wakeups" `Quick
        (alert_under_delayed_wakeups "sim");
      Alcotest.test_case "uniproc alert cancellation keeps wakeups" `Quick
        (alert_under_delayed_wakeups "uniproc");
    ]
    @ matrix_cases )
