(* Entry point: every suite in one alcotest binary.

   The "spec gate" test is the repository's keystone: the shipped
   concrete-syntax specification parses to exactly the built-in AST, is
   well-formed, and survives a print/parse round trip. *)

let spec_gate () =
  let open Spec_core in
  let parsed = Parser.interface_of_string Threads_interface.source in
  Alcotest.(check bool) "source parses to builtin" true
    (Proc.equal_interface parsed Threads_interface.final);
  Alcotest.(check (list string)) "well-formed" []
    (Proc.well_formed Threads_interface.final);
  let reparsed =
    Parser.interface_of_string (Printer.to_string Threads_interface.final)
  in
  Alcotest.(check bool) "roundtrip" true
    (Proc.equal_interface reparsed Threads_interface.final)

let () =
  Alcotest.run "threads-repro"
    [
      ("spec-gate", [ Alcotest.test_case "source/builtin/roundtrip" `Quick spec_gate ]);
      Test_util.suite;
      Test_spec_values.suite;
      Test_parser.suite;
      Test_lsl.suite;
      Test_semantics.suite;
      Test_machine.suite;
      Test_tqueue.suite;
      Test_backends.suite;
      Test_conformance.suite;
      Test_checker.suite;
      Test_races.suite;
      Test_timed.suite;
      Test_swarm.suite;
      Test_gen.suite;
      Test_obs.suite;
      Test_harness.suite;
      Test_failures.suite;
      Test_multicore.suite;
      Test_cross_backend.suite;
      Test_fault.suite;
      Test_analysis.suite;
      Test_staticcheck.suite;
      Test_profile.suite;
      Test_runner.suite;
      Test_telemetry.suite;
    ]
