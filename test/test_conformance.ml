(* Direct tests of the trace-conformance checker on hand-crafted traces. *)

open Spec_core
module T = Spec_trace
module Conf = Threads_model.Conformance

let ev ?action ?(outcome = T.Ret) ?result_bool ?(removed = []) proc self args =
  T.make ~proc ?action ~self ~args ~outcome ?result_bool ~removed ()

let m_arg = ("m", T.Obj 100)
let c_arg = ("c", T.Obj 200)
let s_arg = ("s", T.Obj 300)

let check ?(iface = Threads_interface.final) trace = Conf.check iface trace

let test_simple_lock () =
  let r =
    check
      [
        ev "Acquire" 1 [ m_arg ];
        ev "Release" 1 [ m_arg ];
        ev "Acquire" 2 [ m_arg ];
        ev "Release" 2 [ m_arg ];
      ]
  in
  Alcotest.(check bool) "accepted" true (Conf.ok r);
  Alcotest.(check int) "events" 4 r.Conf.events;
  Alcotest.(check int) "no requires issues" 0
    (List.length r.Conf.requires_violations)

let test_double_acquire_rejected () =
  let r =
    check [ ev "Acquire" 1 [ m_arg ]; ev "Acquire" 2 [ m_arg ] ]
  in
  Alcotest.(check bool) "rejected" false (Conf.ok r);
  Alcotest.(check int) "second event flagged" 1
    (List.length r.Conf.errors)

let test_release_by_stranger () =
  (* Release's effect satisfies its (unconditional) ENSURES, but REQUIRES
     m = SELF is the caller's obligation: flagged separately. *)
  let r =
    check [ ev "Acquire" 1 [ m_arg ]; ev "Release" 2 [ m_arg ] ]
  in
  Alcotest.(check bool) "spec-level ok" true (Conf.ok r);
  Alcotest.(check int) "caller flagged" 1
    (List.length r.Conf.requires_violations)

let test_wait_composition_order () =
  let ok_trace =
    [
      ev "Acquire" 1 [ m_arg ];
      ev "Wait" ~action:"Enqueue" 1 [ m_arg; c_arg ];
      ev "Signal" 2 ~removed:[ 1 ] [ c_arg ];
      ev "Wait" ~action:"Resume" 1 [ m_arg; c_arg ];
      ev "Release" 1 [ m_arg ];
    ]
  in
  Alcotest.(check bool) "wait accepted" true (Conf.ok (check ok_trace));
  (* Resume without Enqueue *)
  let bad = [ ev "Wait" ~action:"Resume" 1 [ m_arg; c_arg ] ] in
  Alcotest.(check bool) "bare resume rejected" false (Conf.ok (check bad));
  (* Resume before the signal removes the thread *)
  let too_early =
    [
      ev "Acquire" 1 [ m_arg ];
      ev "Wait" ~action:"Enqueue" 1 [ m_arg; c_arg ];
      ev "Wait" ~action:"Resume" 1 [ m_arg; c_arg ];
    ]
  in
  Alcotest.(check bool) "self-resume rejected" false
    (Conf.ok (check too_early))

let test_signal_subset_rule () =
  (* removing a thread not in c is harmless (delete is a no-op; c_post is
     still a subset), but Broadcast leaving a member is a violation *)
  let harmless =
    [
      ev "Acquire" 1 [ m_arg ];
      ev "Wait" ~action:"Enqueue" 1 [ m_arg; c_arg ];
      ev "Signal" 2 ~removed:[ 9 ] [ c_arg ];
    ]
  in
  Alcotest.(check bool) "phantom removal fine" true (Conf.ok (check harmless));
  let bad_broadcast =
    [
      ev "Acquire" 1 [ m_arg ];
      ev "Wait" ~action:"Enqueue" 1 [ m_arg; c_arg ];
      ev "Broadcast" 2 ~removed:[] [ c_arg ];
    ]
  in
  Alcotest.(check bool) "broadcast leaving member rejected" false
    (Conf.ok (check bad_broadcast))

let test_semaphore_trace () =
  let r =
    check
      [
        ev "P" 1 [ s_arg ];
        ev "V" 2 [ s_arg ];
        (* V by another thread: no REQUIRES on V *)
        ev "P" 2 [ s_arg ];
      ]
  in
  Alcotest.(check bool) "P/V accepted" true (Conf.ok r);
  Alcotest.(check int) "no requires issues (V has none)" 0
    (List.length r.Conf.requires_violations);
  (* P while unavailable *)
  let bad = [ ev "P" 1 [ s_arg ]; ev "P" 2 [ s_arg ] ] in
  Alcotest.(check bool) "double P rejected" false (Conf.ok (check bad))

let test_alert_trace () =
  let r =
    check
      [
        ev "Alert" 1 [ ("t", T.Thr 2) ];
        ev "TestAlert" 2 ~result_bool:true [];
        ev "TestAlert" 2 ~result_bool:false [];
      ]
  in
  Alcotest.(check bool) "alert/test accepted" true (Conf.ok r);
  (* wrong TestAlert result *)
  let bad =
    [
      ev "Alert" 1 [ ("t", T.Thr 2) ];
      ev "TestAlert" 2 ~result_bool:false [];
    ]
  in
  Alcotest.(check bool) "wrong result rejected" false (Conf.ok (check bad))

let alert_wait_raise_trace =
  [
    ev "Alert" 2 [ ("t", T.Thr 1) ];
    ev "Acquire" 1 [ m_arg ];
    ev "AlertWait" ~action:"Enqueue" 1 [ m_arg; c_arg ];
    ev "AlertWait" ~action:"AlertResume" ~outcome:(T.Raise "Alerted") 1
      [ m_arg; c_arg ];
  ]

let test_alert_wait_variants () =
  (* the same trace, judged by three versions of the spec *)
  Alcotest.(check bool) "final accepts" true
    (Conf.ok (check alert_wait_raise_trace));
  (* Nelson's variant requires UNCHANGED [c]; the implementation removes
     self from c, so the buggy spec rejects the (correct) behaviour *)
  Alcotest.(check bool) "nelson variant rejects" false
    (Conf.ok (check ~iface:Threads_interface.nelson_bug alert_wait_raise_trace));
  (* returning normally while alerted: fine under final, rejected by the
     original must-raise spec *)
  let return_while_alerted =
    [
      ev "Alert" 2 [ ("t", T.Thr 1) ];
      ev "Acquire" 1 [ m_arg ];
      ev "AlertWait" ~action:"Enqueue" 1 [ m_arg; c_arg ];
      ev "Signal" 2 ~removed:[ 1 ] [ c_arg ];
      ev "AlertWait" ~action:"AlertResume" 1 [ m_arg; c_arg ];
    ]
  in
  Alcotest.(check bool) "final accepts normal return" true
    (Conf.ok (check return_while_alerted));
  Alcotest.(check bool) "must-raise rejects" false
    (Conf.ok (check ~iface:Threads_interface.must_raise return_while_alerted))

let test_missing_guard_variant_is_weaker () =
  (* Under the missing-guard variant, raising while the mutex is held is
     allowed (that's the bug); the final spec rejects the same trace. *)
  let raise_while_held =
    [
      ev "Alert" 3 [ ("t", T.Thr 1) ];
      ev "Acquire" 1 [ m_arg ];
      ev "AlertWait" ~action:"Enqueue" 1 [ m_arg; c_arg ];
      ev "Acquire" 2 [ m_arg ];
      ev "AlertWait" ~action:"AlertResume" ~outcome:(T.Raise "Alerted") 1
        [ m_arg; c_arg ];
    ]
  in
  Alcotest.(check bool) "buggy variant admits the disaster" true
    (Conf.ok (check ~iface:Threads_interface.missing_mutex_guard raise_while_held));
  Alcotest.(check bool) "final rejects it" false
    (Conf.ok (check raise_while_held))

let test_unknown_proc () =
  let r = check [ ev "Frobnicate" 1 [] ] in
  Alcotest.(check bool) "unknown proc rejected" false (Conf.ok r)

let test_object_sort_stability () =
  (* the same implementation object used as both mutex and condition *)
  Alcotest.(check bool) "sort clash detected" false
    (Conf.ok
       (check
          [
            ev "Acquire" 1 [ ("m", T.Obj 7) ];
            ev "Signal" 1 [ ("c", T.Obj 7) ];
          ]))

let suite =
  ( "conformance",
    [
      Alcotest.test_case "simple lock trace" `Quick test_simple_lock;
      Alcotest.test_case "double acquire rejected" `Quick
        test_double_acquire_rejected;
      Alcotest.test_case "release by stranger" `Quick test_release_by_stranger;
      Alcotest.test_case "wait composition order" `Quick
        test_wait_composition_order;
      Alcotest.test_case "signal subset rule" `Quick test_signal_subset_rule;
      Alcotest.test_case "semaphore traces" `Quick test_semaphore_trace;
      Alcotest.test_case "alert traces" `Quick test_alert_trace;
      Alcotest.test_case "AlertWait across spec variants" `Quick
        test_alert_wait_variants;
      Alcotest.test_case "missing-guard variant is weaker" `Quick
        test_missing_guard_variant_is_weaker;
      Alcotest.test_case "unknown procedure" `Quick test_unknown_proc;
      Alcotest.test_case "object sort stability" `Quick
        test_object_sort_stability;
    ] )
