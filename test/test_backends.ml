(* A behaviour battery run against both simulated backends (Firefly and
   co-routine).  Every scenario also gets conformance-checked against the
   final formal specification — the repository's core soundness property:
   whatever the schedule, every visible atomic action is admitted by some
   case of its clause. *)

module Tid = Threads_util.Tid

type runner = {
  rname : string;
  run :
    seed:int ->
    (Taos_threads.Api.sync -> unit) ->
    Firefly.Interleave.report;
  conformance : bool;  (* both emit events, so always true today *)
}

let sim_runner =
  {
    rname = "sim";
    run = (fun ~seed body -> Taos_threads.Api.run ~seed body);
    conformance = true;
  }

let uniproc_runner =
  {
    rname = "uniproc";
    run =
      (fun ~seed body ->
        Taos_threads.Uniproc.run ~seed ~strategy:(Firefly.Sched.random seed)
          body);
    conformance = true;
  }

let check_report ?(allow_deadlock = false) name (r : Firefly.Interleave.report) =
  (match r.verdict with
  | Firefly.Interleave.Completed -> ()
  | Firefly.Interleave.Deadlock ts ->
    if not allow_deadlock then
      Alcotest.fail
        (Printf.sprintf "%s: deadlock of %s" name
           (String.concat "," (List.map Tid.to_string ts)))
  | Firefly.Interleave.Step_limit ->
    Alcotest.fail (name ^ ": step limit"));
  match Firefly.Machine.failures r.machine with
  | [] -> ()
  | (tid, e) :: _ ->
    Alcotest.fail
      (Printf.sprintf "%s: t%d failed with %s" name tid (Printexc.to_string e))

let check_conformance name (r : Firefly.Interleave.report) =
  let rep =
    Threads_model.Conformance.check Spec_core.Threads_interface.final
      (Firefly.Machine.trace r.machine)
  in
  if not (Threads_model.Conformance.ok rep) then
    Alcotest.fail
      (Format.asprintf "%s: %a" name Threads_model.Conformance.pp_report rep);
  Alcotest.(check (list string))
    (name ^ " requires-clean") []
    (List.map
       (fun (e : Threads_model.Conformance.error) -> e.message)
       rep.requires_violations)

let seeds = 25

let sweep ?allow_deadlock runner name body =
  for seed = 0 to seeds - 1 do
    let r = runner.run ~seed body in
    check_report ?allow_deadlock (Printf.sprintf "%s seed %d" name seed) r;
    if runner.conformance then
      check_conformance (Printf.sprintf "%s seed %d" name seed) r
  done

let as_sync sync =
  (module (val sync : Taos_threads.Sync_intf.SYNC with type thread = Tid.t)
  : Taos_threads.Sync_intf.SYNC with type thread = Tid.t)

(* --- scenarios --- *)

let mutual_exclusion runner () =
  sweep runner "mutex" (fun sync ->
      let module S = (val as_sync sync) in
      let m = S.mutex () in
      let inside = ref 0 and peak = ref 0 and total = ref 0 in
      let worker () =
        for _ = 1 to 6 do
          S.with_lock m (fun () ->
              incr inside;
              if !inside > !peak then peak := !inside;
              incr total;
              decr inside)
        done
      in
      let ts = List.init 4 (fun _ -> S.fork worker) in
      List.iter S.join ts;
      if !peak <> 1 then failwith "two threads in the critical section";
      if !total <> 24 then failwith "lost increments")

let with_lock_releases_on_exception runner () =
  sweep runner "with_lock/exn" (fun sync ->
      let module S = (val as_sync sync) in
      let m = S.mutex () in
      (try S.with_lock m (fun () -> failwith "boom") with Failure _ -> ());
      (* if Release didn't run, this acquire deadlocks *)
      S.with_lock m (fun () -> ()))

let producer_consumer runner () =
  sweep runner "prodcons" (fun sync ->
      let module S = (val as_sync sync) in
      let m = S.mutex () in
      let nonempty = S.condition () in
      let nonfull = S.condition () in
      let buf = Queue.create () in
      let produced = 10 and cap = 2 in
      let eaten = ref 0 in
      let producer () =
        for i = 1 to produced do
          S.with_lock m (fun () ->
              while Queue.length buf >= cap do
                S.wait m nonfull
              done;
              Queue.add i buf;
              S.signal nonempty)
        done
      in
      let consumer () =
        for _ = 1 to produced do
          S.with_lock m (fun () ->
              while Queue.is_empty buf do
                S.wait m nonempty
              done;
              ignore (Queue.take buf);
              incr eaten;
              S.signal nonfull)
        done
      in
      let p = S.fork producer and c = S.fork consumer in
      S.join p;
      S.join c;
      if !eaten <> produced then failwith "items lost")

let broadcast_wakes_all runner () =
  sweep runner "broadcast" (fun sync ->
      let module S = (val as_sync sync) in
      let m = S.mutex () in
      let go = S.condition () in
      let flag = ref false in
      let waiter () =
        S.with_lock m (fun () ->
            while not !flag do
              S.wait m go
            done)
      in
      let ws = List.init 5 (fun _ -> S.fork waiter) in
      S.with_lock m (fun () -> flag := true);
      S.broadcast go;
      (* a second broadcast covers waiters that enqueued after the first *)
      S.broadcast go;
      (* waiters racing past both broadcasts still see flag = true and
         never wait; those parked are freed: *)
      List.iter
        (fun w ->
          (* repeatedly broadcast until joined, bounded by construction *)
          ignore w)
        ws;
      List.iter S.join ws)

let semaphore_pingpong runner () =
  sweep runner "semaphore" (fun sync ->
      let module S = (val as_sync sync) in
      let tokens = S.semaphore () in
      let turns = ref [] in
      let player name rounds =
        for _ = 1 to rounds do
          S.p tokens;
          turns := name :: !turns;
          S.v tokens
        done
      in
      let a = S.fork (fun () -> player "a" 5) in
      let b = S.fork (fun () -> player "b" 5) in
      S.join a;
      S.join b;
      if List.length !turns <> 10 then failwith "wrong number of turns")

let alert_unblocks_wait runner () =
  sweep runner "alert/wait" (fun sync ->
      let module S = (val as_sync sync) in
      let m = S.mutex () in
      let c = S.condition () in
      let alerted = ref false in
      let w =
        S.fork (fun () ->
            try S.with_lock m (fun () -> S.alert_wait m c)
            with Taos_threads.Sync_intf.Alerted -> alerted := true)
      in
      S.alert w;
      S.join w;
      if not !alerted then failwith "alert did not unblock the waiter")

let alert_p_unblocks runner () =
  sweep runner "alert/p" (fun sync ->
      let module S = (val as_sync sync) in
      let sem = S.semaphore () in
      S.p sem;
      (* make it unavailable so AlertP must block *)
      let alerted = ref false in
      let w =
        S.fork (fun () ->
            try S.alert_p sem
            with Taos_threads.Sync_intf.Alerted -> alerted := true)
      in
      S.alert w;
      S.join w;
      if not !alerted then failwith "alert did not unblock AlertP")

let test_alert_polls runner () =
  sweep runner "test_alert" (fun sync ->
      let module S = (val as_sync sync) in
      (* no alert pending: false, and stays false *)
      if S.test_alert () then failwith "phantom alert";
      let me = S.self () in
      S.alert me;
      if not (S.test_alert ()) then failwith "alert not seen";
      if S.test_alert () then failwith "alert not consumed")

let signal_after_alert_still_works runner () =
  (* An alerted waiter must not steal the Signal meant for another waiter
     (the operational consequence of Nelson's bug, which the fixed spec and
     this implementation avoid). *)
  sweep runner "no stolen signal" (fun sync ->
      let module S = (val as_sync sync) in
      let m = S.mutex () in
      let c = S.condition () in
      let flag = ref false in
      let normal_done = ref false in
      let alerted_waiter =
        S.fork (fun () ->
            try S.with_lock m (fun () -> S.alert_wait m c)
            with Taos_threads.Sync_intf.Alerted -> ())
      in
      let normal_waiter =
        S.fork (fun () ->
            S.with_lock m (fun () ->
                while not !flag do
                  S.wait m c
                done;
                normal_done := true))
      in
      S.alert alerted_waiter;
      S.join alerted_waiter;
      (* now only the normal waiter can be in c *)
      S.with_lock m (fun () -> flag := true);
      S.signal c;
      S.join normal_waiter;
      if not !normal_done then failwith "signal was lost")

let cases runner =
  [
    Alcotest.test_case (runner.rname ^ ": mutual exclusion") `Quick
      (mutual_exclusion runner);
    Alcotest.test_case (runner.rname ^ ": with_lock releases on exn") `Quick
      (with_lock_releases_on_exception runner);
    Alcotest.test_case (runner.rname ^ ": producer/consumer") `Quick
      (producer_consumer runner);
    Alcotest.test_case (runner.rname ^ ": broadcast wakes all") `Quick
      (broadcast_wakes_all runner);
    Alcotest.test_case (runner.rname ^ ": semaphore ping-pong") `Quick
      (semaphore_pingpong runner);
    Alcotest.test_case (runner.rname ^ ": alert unblocks AlertWait") `Quick
      (alert_unblocks_wait runner);
    Alcotest.test_case (runner.rname ^ ": alert unblocks AlertP") `Quick
      (alert_p_unblocks runner);
    Alcotest.test_case (runner.rname ^ ": TestAlert consumes") `Quick
      (test_alert_polls runner);
    Alcotest.test_case (runner.rname ^ ": no stolen signal") `Quick
      (signal_after_alert_still_works runner);
  ]

let suite = ("backends", cases sim_runner @ cases uniproc_runner)

(* --- alerting edge cases --- *)

let alert_before_wait runner () =
  (* an alert posted before the AlertWait call: the wait must not sleep
     forever (the implementation departs immediately or at Block) *)
  sweep runner "alert-before-wait" (fun sync ->
      let module S = (val as_sync sync) in
      let m = S.mutex () in
      let c = S.condition () in
      let raised = ref false in
      let w =
        S.fork (fun () ->
            (* wait until pending is certainly set *)
            while not (S.test_alert ()) do
              S.yield ()
            done;
            (* re-alert ourselves: pending again, consumed by AlertWait *)
            S.alert (S.self ());
            try S.with_lock m (fun () -> S.alert_wait m c)
            with Taos_threads.Sync_intf.Alerted -> raised := true)
      in
      S.alert w;
      S.join w;
      if not !raised then failwith "pre-posted alert ignored")

let double_alert_coalesces runner () =
  (* alerts form a SET: two Alerts before consumption are one pending *)
  sweep runner "double-alert" (fun sync ->
      let module S = (val as_sync sync) in
      let me = S.self () in
      S.alert me;
      S.alert me;
      if not (S.test_alert ()) then failwith "lost alert";
      if S.test_alert () then failwith "alerts must coalesce (set semantics)")

let alert_vs_signal_race runner () =
  (* both a Signal and an Alert target the same AlertWaiter: either
     outcome is legal; the run must terminate and conform either way *)
  sweep runner "alert-vs-signal" (fun sync ->
      let module S = (val as_sync sync) in
      let m = S.mutex () in
      let c = S.condition () in
      let flag = ref false in
      let outcome = ref `None in
      let w =
        S.fork (fun () ->
            try
              S.with_lock m (fun () ->
                  while not !flag do
                    S.alert_wait m c
                  done;
                  outcome := `Returned)
            with Taos_threads.Sync_intf.Alerted -> outcome := `Raised)
      in
      let a = S.fork (fun () -> S.alert w) in
      let s =
        S.fork (fun () ->
            S.with_lock m (fun () -> flag := true);
            S.signal c)
      in
      S.join a;
      S.join s;
      S.broadcast c;
      S.join w;
      (match !outcome with
      | `Returned | `Raised -> ()
      | `None -> failwith "waiter finished with no outcome");
      (* consume any leftover pending alert so the next scenario's threads
         start clean (alerts are per-thread, but hygiene) *)
      ignore (S.test_alert ()))

let suite =
  let name, cases = suite in
  ( name,
    cases
    @ List.concat_map
        (fun runner ->
          [
            Alcotest.test_case (runner.rname ^ ": alert before wait") `Quick
              (alert_before_wait runner);
            Alcotest.test_case (runner.rname ^ ": double alert coalesces")
              `Quick (double_alert_coalesces runner);
            Alcotest.test_case (runner.rname ^ ": alert vs signal race")
              `Quick (alert_vs_signal_race runner);
          ])
        [ sim_runner; uniproc_runner ] )
