(* Tests for the observability subsystem (lib/obs): instrument registry
   semantics, snapshot determinism under a fixed seed, the contended >
   uncontended spin invariant, and the Chrome trace-event exporter
   round-tripped through the in-tree JSON parser. *)

module I = Obs.Instrument
module Ops = Firefly.Machine.Ops

(* -------------------------------------------------------------------- *)
(* Instrument registry unit semantics                                    *)

let test_counters_gauges () =
  let t = I.create () in
  I.incr t "a" 2;
  I.incr t "a" 3;
  I.incr t "materialized" 0;
  I.gauge_max t "g" 4;
  I.gauge_max t "g" 2;
  I.sample t "h" 10;
  I.sample t "h" 30;
  let snap = I.snapshot t in
  Alcotest.(check (list (pair string int)))
    "counters sorted, zero materialized"
    [ ("a", 5); ("materialized", 0) ]
    snap.I.counters;
  Alcotest.(check (list (pair string int))) "gauge keeps max" [ ("g", 4) ]
    snap.I.gauges;
  match snap.I.histograms with
  | [ ("h", s) ] ->
    Alcotest.(check int) "histogram n" 2 s.Threads_util.Stats.n;
    Alcotest.(check (float 1e-9)) "histogram mean" 20.0
      s.Threads_util.Stats.mean
  | _ -> Alcotest.fail "expected exactly one histogram"

let test_spans () =
  let t = I.create () in
  I.span_begin t ~track:1 ~cat:"m" "held" ~now:10;
  Alcotest.(check int) "one open span" 1 (I.open_span_count t);
  (match I.span_end t ~track:1 "held" ~now:25 with
  | Some d -> Alcotest.(check int) "duration" 15 d
  | None -> Alcotest.fail "span_end should match the begin");
  Alcotest.(check bool) "unmatched end is None" true
    (I.span_end t ~track:1 "held" ~now:30 = None);
  I.span_begin t ~track:2 "leaked" ~now:0;
  I.span_add t ~track:1 ~cat:"m" "direct" ~t0:40 ~t1:45;
  let snap = I.snapshot t in
  (* open spans are dropped from the snapshot; completed ones are kept in
     (t0, track) order *)
  Alcotest.(check (list string)) "completed spans only, t0 order"
    [ "held"; "direct" ]
    (List.map (fun (s : I.span) -> s.I.name) snap.I.spans)

(* -------------------------------------------------------------------- *)
(* Simulator-backed workloads                                            *)

let run_mutex_workload ~threads ~seed =
  let report =
    Taos_threads.Api.run ~seed (fun sync ->
        let module S =
          (val sync : Taos_threads.Sync_intf.SYNC
             with type thread = Threads_util.Tid.t)
        in
        let m = S.mutex () in
        let worker () =
          for _ = 1 to 50 do
            S.acquire m;
            Ops.tick 5;
            S.release m;
            Ops.tick 5
          done
        in
        let ts = List.init threads (fun _ -> S.fork worker) in
        List.iter S.join ts)
  in
  report.Firefly.Interleave.machine

let snapshot_of machine = I.snapshot (Firefly.Machine.obs machine)

let test_snapshot_deterministic () =
  let s1 = snapshot_of (run_mutex_workload ~threads:4 ~seed:7) in
  let s2 = snapshot_of (run_mutex_workload ~threads:4 ~seed:7) in
  Alcotest.(check bool) "same seed, equal snapshots" true (s1 = s2);
  Alcotest.(check string) "same seed, byte-identical report"
    (Obs.Report.render s1) (Obs.Report.render s2);
  let s3 = snapshot_of (run_mutex_workload ~threads:4 ~seed:8) in
  Alcotest.(check bool) "different seed, different snapshot" true (s1 <> s3)

let test_contended_spins_more () =
  let spin snap =
    List.fold_left
      (fun acc (name, v) ->
        if Filename.check_suffix name ".spin_cycles" then acc + v else acc)
      0 snap.I.counters
  in
  let uncontended = snapshot_of (run_mutex_workload ~threads:1 ~seed:5) in
  let contended = snapshot_of (run_mutex_workload ~threads:8 ~seed:5) in
  Alcotest.(check int) "uncontended run never spins" 0 (spin uncontended);
  Alcotest.(check bool) "contended run spins" true (spin contended > 0);
  let fast name snap = List.assoc_opt name snap.I.counters in
  Alcotest.(check (option int)) "uncontended is all fast path"
    (fast "mutex#1.acquires" uncontended)
    (fast "mutex#1.fast_path_hits" uncontended);
  Alcotest.(check bool) "contended misses the fast path" true
    (fast "mutex#1.fast_path_hits" contended
    < fast "mutex#1.acquires" contended)

let test_zero_sim_cost () =
  (* The whole point of the ambient-probe design: instrumented runs charge
     exactly the cycles the workload charges.  A single thread doing 50
     tick-5 + tick-5 iterations plus the acquire/release pairs has a cycle
     count we can predict from the machine's own accounting — but the
     sharper check is that two identical runs agree cycle-for-cycle even
     though both recorded thousands of probe events. *)
  let c1 =
    Firefly.Machine.total_cycles (run_mutex_workload ~threads:8 ~seed:3)
  in
  let c2 =
    Firefly.Machine.total_cycles (run_mutex_workload ~threads:8 ~seed:3)
  in
  Alcotest.(check int) "cycle-identical across runs" c1 c2

(* -------------------------------------------------------------------- *)
(* Chrome trace export, parsed back                                      *)

let test_chrome_roundtrip () =
  let machine = run_mutex_workload ~threads:4 ~seed:11 in
  let snap = snapshot_of machine in
  Alcotest.(check bool) "workload produced spans" true (snap.I.spans <> []);
  let s =
    Obs.Chrome_trace.to_string ~cycle_us:Firefly.Cost.us_per_cycle
      ~process_name:"test" snap
  in
  let j = Obs.Json.of_string s in
  let events =
    match Obs.Json.member j "traceEvents" with
    | Obs.Json.Arr evs -> evs
    | _ -> Alcotest.fail "traceEvents must be an array"
  in
  let ph e =
    match Obs.Json.member e "ph" with
    | Obs.Json.String s -> s
    | _ -> Alcotest.fail "ph must be a string"
  in
  let begins = List.filter (fun e -> ph e = "B") events in
  let ends = List.filter (fun e -> ph e = "E") events in
  Alcotest.(check int) "one B per completed span"
    (List.length snap.I.spans) (List.length begins);
  Alcotest.(check int) "one E per B" (List.length begins)
    (List.length ends);
  (* Every duration event carries the required trace-event fields, and
     per-track B/E events balance like parentheses. *)
  let depth = Hashtbl.create 8 in
  List.iter
    (fun e ->
      match ph e with
      | "B" | "E" ->
        List.iter
          (fun k -> ignore (Obs.Json.member e k))
          [ "name"; "ts"; "pid"; "tid" ];
        let tid =
          match Obs.Json.member e "tid" with
          | Obs.Json.Int i -> i
          | _ -> Alcotest.fail "tid must be an int"
        in
        let d = Option.value ~default:0 (Hashtbl.find_opt depth tid) in
        let d' = if ph e = "B" then d + 1 else d - 1 in
        if d' < 0 then Alcotest.fail "E without matching B on its track";
        Hashtbl.replace depth tid d'
      | "M" -> ()
      | other -> Alcotest.fail ("unexpected phase " ^ other))
    events;
  Hashtbl.iter
    (fun tid d ->
      if d <> 0 then
        Alcotest.fail (Printf.sprintf "track %d left %d spans open" tid d))
    depth

let test_json_parser () =
  let j =
    Obs.Json.of_string
      {| {"a": [1, -2.5, true, null], "s": "xA\n", "o": {"k": 3}} |}
  in
  (match Obs.Json.member j "a" with
  | Obs.Json.Arr [ Obs.Json.Int 1; Obs.Json.Float f; Obs.Json.Bool true;
                   Obs.Json.Null ] ->
    Alcotest.(check (float 1e-9)) "float" (-2.5) f
  | _ -> Alcotest.fail "array shape");
  (match Obs.Json.member j "s" with
  | Obs.Json.String s -> Alcotest.(check string) "escapes" "xA\n" s
  | _ -> Alcotest.fail "string shape");
  (* writer/parser round trip *)
  let t = Obs.Json.member j "o" in
  Alcotest.(check bool) "roundtrip" true
    (Obs.Json.of_string (Obs.Json.to_string t) = t);
  Alcotest.check_raises "trailing garbage"
    (Obs.Json.Parse_error "trailing garbage at offset 5") (fun () ->
      ignore (Obs.Json.of_string "null x"))

(* Property: the writer and parser are exact inverses on the whole value
   type — escaped strings, nested arrays/objects, and full-precision
   floats included.  Floats use a shortest-round-trip printer, so equality
   here is bit-exact, not approximate. *)
let json_roundtrip_prop =
  let open QCheck in
  let leaf_gen =
    Gen.oneof
      [
        Gen.return Obs.Json.Null;
        Gen.map (fun b -> Obs.Json.Bool b) Gen.bool;
        Gen.map (fun n -> Obs.Json.Int n) Gen.int;
        Gen.map
          (fun x -> Obs.Json.Float x)
          (Gen.oneof
             [
               Gen.float;
               (* adversarial: sums that %.12g used to collapse *)
               Gen.return (0.1 +. 0.2);
               Gen.return 1.0e-300;
               Gen.return (-1.2345678901234567e22);
               Gen.map (fun n -> float_of_int n /. 7.0) Gen.int;
             ]);
        Gen.map (fun s -> Obs.Json.String s) Gen.string;
      ]
  in
  let value_gen =
    Gen.sized (fun size ->
        Gen.fix
          (fun self n ->
            if n = 0 then leaf_gen
            else
              Gen.oneof
                [
                  leaf_gen;
                  Gen.map
                    (fun xs -> Obs.Json.Arr xs)
                    (Gen.list_size (Gen.int_bound 4) (self (n / 2)));
                  Gen.map
                    (fun kvs -> Obs.Json.Obj kvs)
                    (Gen.list_size (Gen.int_bound 4)
                       (Gen.pair Gen.string (self (n / 2))));
                ])
          (min size 6))
  in
  let rec no_nan = function
    | Obs.Json.Float x -> x = x
    | Obs.Json.Arr xs -> List.for_all no_nan xs
    | Obs.Json.Obj kvs -> List.for_all (fun (_, v) -> no_nan v) kvs
    | _ -> true
  in
  Test.make ~count:500 ~name:"json to_string/of_string round trip"
    (make value_gen)
    (fun j ->
      assume (no_nan j);
      Obs.Json.of_string (Obs.Json.to_string j) = j)

let test_json_float_precision () =
  (* regression: %.12g collapsed 0.1 +. 0.2 to "0.3" *)
  List.iter
    (fun x ->
      match Obs.Json.of_string (Obs.Json.to_string (Obs.Json.Float x)) with
      | Obs.Json.Float y ->
        Alcotest.(check bool)
          (Printf.sprintf "float %h survives exactly" x)
          true (x = y)
      | _ -> Alcotest.fail "float did not parse back as a float")
    [ 0.1 +. 0.2; 1.0 /. 3.0; Float.min_float; Float.max_float; 1e-300 ];
  (* non-finite values degrade to valid JSON rather than bare tokens *)
  Alcotest.(check bool) "nan writes null" true
    (Obs.Json.to_string (Obs.Json.Float Float.nan) = "null");
  (match Obs.Json.of_string (Obs.Json.to_string (Obs.Json.Float infinity)) with
  | Obs.Json.Float x -> Alcotest.(check bool) "inf round trip" true (x = infinity)
  | _ -> Alcotest.fail "infinity did not parse back");
  (* deeply nested arrays with escaped strings round trip *)
  let nasty =
    Obs.Json.(
      Arr
        [
          Arr [ Arr [ String "a\"b\\c\nd\tx"; Arr [] ] ];
          Obj [ ("k\"1", Arr [ Int 1; Arr [ String "\000\031 ok" ] ]) ];
        ])
  in
  Alcotest.(check bool) "nested/escaped round trip" true
    (Obs.Json.of_string (Obs.Json.to_string nasty) = nasty)

let suite =
  ( "obs",
    [
      Alcotest.test_case "counters/gauges/histograms" `Quick
        test_counters_gauges;
      Alcotest.test_case "span begin/end semantics" `Quick test_spans;
      Alcotest.test_case "same-seed snapshot determinism" `Quick
        test_snapshot_deterministic;
      Alcotest.test_case "contended spins > uncontended" `Quick
        test_contended_spins_more;
      Alcotest.test_case "instrumentation is cycle-stable" `Quick
        test_zero_sim_cost;
      Alcotest.test_case "chrome trace parses back, B/E per span" `Quick
        test_chrome_roundtrip;
      Alcotest.test_case "json writer/parser" `Quick test_json_parser;
      Alcotest.test_case "json float precision & escapes" `Quick
        test_json_float_precision;
      QCheck_alcotest.to_alcotest json_roundtrip_prop;
    ] )
