module Conformance = Threads_model.Conformance

type run = {
  seed : int;
  outcome : Backend.outcome;
  report : Conformance.report;
}

type summary = {
  backend : Backend.t;
  workload : Workload.t;
  skipped : bool;
  runs : run list;
}

let iface = Spec_core.Threads_interface.final

let conform (backend : Backend.t) (workload : Workload.t) ~seeds =
  if not (Backend.supports backend workload) then
    { backend; workload; skipped = true; runs = [] }
  else
    let runs =
      List.init seeds (fun seed ->
          let outcome = backend.run ~seed workload in
          let report = Conformance.check iface outcome.trace in
          { seed; outcome; report })
    in
    { backend; workload; skipped = false; runs }

let violations s =
  List.fold_left
    (fun acc r -> acc + List.length r.report.Conformance.errors)
    0 s.runs

let events s =
  List.fold_left (fun acc r -> acc + r.report.Conformance.events) 0 s.runs

let completed s =
  List.for_all (fun r -> r.outcome.Backend.verdict = Backend.Completed) s.runs

let verdicts s =
  List.fold_left
    (fun acc r ->
      let key =
        Format.asprintf "%a" Backend.pp_verdict r.outcome.Backend.verdict
      in
      match List.assoc_opt key acc with
      | Some n -> (key, n + 1) :: List.remove_assoc key acc
      | None -> acc @ [ (key, 1) ])
    [] s.runs

let observables s =
  List.sort_uniq compare
    (List.filter_map (fun r -> r.outcome.Backend.observable) s.runs)

(* A summary passes when every seed completed with the same observable and
   the whole trace set replayed without a spec violation. *)
let ok s =
  (not s.skipped)
  && completed s
  && violations s = 0
  && List.length (observables s) <= 1

let first_error s =
  List.find_map
    (fun r ->
      match r.report.Conformance.errors with
      | e :: _ ->
        Some
          (Format.asprintf "seed %d, event [%d] %a: %s" r.seed
             e.Conformance.index Spec_trace.pp_event e.Conformance.event
             e.Conformance.message)
      | [] -> None)
    s.runs

(* Run every registered backend able to take the workload. *)
let diff (workload : Workload.t) ~seeds =
  List.map (fun b -> conform b workload ~seeds) Backend.all
