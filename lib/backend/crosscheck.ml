module Conformance = Threads_model.Conformance

type run = {
  seed : int;
  outcome : Backend.outcome;
  report : Conformance.report;
}

type summary = {
  backend : Backend.t;
  workload : Workload.t;
  skipped : bool;
  runs : run list;
}

let iface = Spec_core.Threads_interface.final

module Matrix = Threads_runner.Matrix

let conform_cell (backend : Backend.t) (workload : Workload.t) seed =
  let outcome = backend.run ~seed workload in
  let report = Conformance.check iface outcome.trace in
  { seed; outcome; report }

(* Single-cell entry point for callers that bring their own matrix — the
   generative engine runs one (program, seed) cell per generated
   scenario and shrinks on the result. *)
let run_one (backend : Backend.t) (workload : Workload.t) ~seed =
  conform_cell backend workload seed

(* Matrix cells are independent: each run builds its own machine, the
   ambient probe slot is domain-local, and the scheduler RNG is seeded
   per cell — so [Matrix.map] may execute them on any domain in any
   order.  Results come back in index order, keeping reports
   byte-identical whatever [jobs] is. *)
let conform ?telemetry ?(jobs = 1) (backend : Backend.t) (workload : Workload.t)
    ~seeds =
  if not (Backend.supports backend workload) then
    { backend; workload; skipped = true; runs = [] }
  else
    let runs =
      Array.to_list
        (Matrix.map ?telemetry ~jobs ~n:seeds (fun seed ->
             conform_cell backend workload seed))
    in
    { backend; workload; skipped = false; runs }

let violations s =
  List.fold_left
    (fun acc r -> acc + List.length r.report.Conformance.errors)
    0 s.runs

let events s =
  List.fold_left (fun acc r -> acc + r.report.Conformance.events) 0 s.runs

let completed s =
  List.for_all (fun r -> r.outcome.Backend.verdict = Backend.Completed) s.runs

let verdicts s =
  List.fold_left
    (fun acc r ->
      let key =
        Format.asprintf "%a" Backend.pp_verdict r.outcome.Backend.verdict
      in
      match List.assoc_opt key acc with
      | Some n -> (key, n + 1) :: List.remove_assoc key acc
      | None -> acc @ [ (key, 1) ])
    [] s.runs

let observables s =
  List.sort_uniq compare
    (List.filter_map (fun r -> r.outcome.Backend.observable) s.runs)

(* A summary passes when every seed completed with the same observable and
   the whole trace set replayed without a spec violation. *)
let ok s =
  (not s.skipped)
  && completed s
  && violations s = 0
  && List.length (observables s) <= 1

let first_error s =
  List.find_map
    (fun r ->
      match r.report.Conformance.errors with
      | e :: _ ->
        Some
          (Format.asprintf "seed %d, event [%d] %a: %s" r.seed
             e.Conformance.index Spec_trace.pp_event e.Conformance.event
             e.Conformance.message)
      | [] -> None)
    s.runs

(* Run every registered backend able to take the workload.  The whole
   backend x seed matrix is flattened into one cell array so the
   work-stealing executor balances load across backends of very
   different costs, then regrouped into per-backend summaries in
   registration order. *)
let diff ?telemetry ?(jobs = 1) (workload : Workload.t) ~seeds =
  let supported =
    List.map (fun b -> (b, Backend.supports b workload)) Backend.all
  in
  let cells =
    Array.of_list
      (List.concat_map
         (fun (b, ok) ->
           if ok then List.init seeds (fun seed -> (b, seed)) else [])
         supported)
  in
  let results =
    Matrix.map ?telemetry ~jobs ~n:(Array.length cells) (fun i ->
        let b, seed = cells.(i) in
        conform_cell b workload seed)
  in
  let next = ref 0 in
  List.map
    (fun (b, ok) ->
      if not ok then { backend = b; workload; skipped = true; runs = [] }
      else begin
        let runs = Array.to_list (Array.sub results !next seeds) in
        next := !next + seeds;
        { backend = b; workload; skipped = false; runs }
      end)
    supported

(* ------------------------------------------------------------------ *)
(* Chaos conformance: backend x workload x fault plan.                 *)

module Engine = Threads_fault.Engine
module Plan = Threads_fault.Plan
module M = Firefly.Machine

type chaos_class =
  | Conformant
  | Diagnosed
  | Violation
  | Unexplained

let class_name = function
  | Conformant -> "conformant"
  | Diagnosed -> "diagnosed"
  | Violation -> "VIOLATION"
  | Unexplained -> "UNEXPLAINED"

type chaos_run = {
  c_seed : int;
  c_plan : Plan.t;
  c_observable : string option;
  c_outcome : Engine.outcome;
  c_report : Conformance.report;
  c_class : chaos_class;
}

(* The robustness contract: under any injected fault plan a run must
   either conform (complete, zero violations, no unexplained thread
   failures) or be diagnosed — terminate with zero violations and a
   non-empty fault log that names the injected fault blamed for the
   deadlock, budget exhaustion or crash-stopped thread.  Anything else
   (a spec violation, or a failure with an empty fault log) is a harness
   red flag. *)
let classify (outcome : Engine.outcome) (report : Conformance.report) =
  let failures = M.failures outcome.Engine.machine in
  let crash_only =
    List.for_all (fun (_, e) -> e = M.Crash_stopped) failures
  in
  let injected = outcome.Engine.injected <> [] in
  if report.Conformance.errors <> [] then Violation
  else
    match outcome.Engine.verdict with
    | Engine.Completed when failures = [] -> Conformant
    | Engine.Completed when crash_only && injected -> Diagnosed
    | (Engine.Deadlock _ | Engine.Step_budget) when crash_only && injected ->
      Diagnosed
    | _ -> Unexplained

let chaos_one (backend : Backend.t) (workload : Workload.t) ~seed
    (plan : Plan.t) =
  match backend.Backend.chaos with
  | None -> invalid_arg ("backend has no chaos driver: " ^ backend.Backend.name)
  | Some driver ->
    let observable, outcome = driver ~seed ~plan workload in
    let report = Conformance.check iface (M.trace outcome.Engine.machine) in
    {
      c_seed = seed;
      c_plan = plan;
      c_observable = observable;
      c_outcome = outcome;
      c_report = report;
      c_class = classify outcome report;
    }

type chaos_summary = {
  cs_backend : Backend.t;
  cs_workload : Workload.t;
  cs_skipped : bool;
  cs_runs : chaos_run list;
}

(* Plan-major cell numbering: cell [i] is plan [i / seeds], seed
   [i mod seeds] — the same order the sequential nest produced. *)
let chaos_cell backend workload ~seeds i =
  let plan = Plan.generate ~plan_id:(i / seeds) () in
  chaos_one backend workload ~seed:(i mod seeds) plan

let chaos ?telemetry ?(jobs = 1) (backend : Backend.t) (workload : Workload.t)
    ~plans
    ~seeds =
  if backend.Backend.chaos = None || not (Backend.supports backend workload)
  then
    { cs_backend = backend; cs_workload = workload; cs_skipped = true;
      cs_runs = [] }
  else
    let runs =
      Array.to_list
        (Matrix.map ?telemetry ~jobs ~n:(plans * seeds)
           (fun i -> chaos_cell backend workload ~seeds i))
    in
    { cs_backend = backend; cs_workload = workload; cs_skipped = false;
      cs_runs = runs }

(* Every run landed in one of the two acceptable classes. *)
let chaos_ok s =
  (not s.cs_skipped)
  && List.for_all
       (fun r -> match r.c_class with
         | Conformant | Diagnosed -> true
         | Violation | Unexplained -> false)
       s.cs_runs

let chaos_classes s =
  List.fold_left
    (fun acc r ->
      let key = class_name r.c_class in
      match List.assoc_opt key acc with
      | Some n -> (key, n + 1) :: List.remove_assoc key acc
      | None -> acc @ [ (key, 1) ])
    [] s.cs_runs

(* Deterministic rendering of one chaos run — the structured fault
   report.  Equal (backend, workload, plan, seed) must render equal
   reports; the chaos CI smoke job diffs two such renderings. *)
let render_run b ppf r =
  let o = r.c_outcome in
  Format.fprintf ppf "=== %s plan#%d seed=%d: %s@\n" b r.c_plan.Plan.id
    r.c_seed (class_name r.c_class);
  Format.fprintf ppf "  plan: %s@\n" (Plan.describe r.c_plan);
  Format.fprintf ppf "  verdict: %a after %d steps@\n" Engine.pp_verdict
    o.Engine.verdict o.Engine.steps;
  (match r.c_observable with
  | Some obs -> Format.fprintf ppf "  observable: %s@\n" obs
  | None -> Format.fprintf ppf "  observable: (none)@\n");
  Format.fprintf ppf "  conformance: %d events, %d violations@\n"
    r.c_report.Conformance.events
    (List.length r.c_report.Conformance.errors);
  List.iter
    (fun (e : Conformance.error) ->
      Format.fprintf ppf "  violation at [%d] %a: %s@\n" e.Conformance.index
        Spec_trace.pp_event e.Conformance.event e.Conformance.message)
    r.c_report.Conformance.errors;
  (match M.failures o.Engine.machine with
  | [] -> ()
  | fs ->
    Format.fprintf ppf "  failed threads: %s@\n"
      (String.concat ", "
         (List.map
            (fun (tid, e) ->
              Printf.sprintf "t%d (%s)" tid (Printexc.to_string e))
            fs)));
  match o.Engine.injected with
  | [] -> Format.fprintf ppf "  injected: (none)@\n"
  | faults ->
    Format.fprintf ppf "  injected (%d):@\n" (List.length faults);
    List.iter
      (fun (f : M.fault) ->
        Format.fprintf ppf "    [%d] cycle %d: %s@\n" f.M.f_seq f.M.f_cycle
          f.M.f_desc)
      faults

let render_chaos ppf s =
  if s.cs_skipped then
    Format.fprintf ppf "%s x %s: skipped (no chaos driver or feature)@\n"
      s.cs_backend.Backend.name s.cs_workload.Workload.name
  else begin
    Format.fprintf ppf "--- chaos: %s x %s (%d runs) ---@\n"
      s.cs_backend.Backend.name s.cs_workload.Workload.name
      (List.length s.cs_runs);
    List.iter (render_run s.cs_backend.Backend.name ppf) s.cs_runs;
    Format.fprintf ppf "summary: %s@\n"
      (String.concat ", "
         (List.map
            (fun (k, n) -> Printf.sprintf "%d %s" n k)
            (chaos_classes s)))
  end

(* ------------------------------------------------------------------ *)
(* Streaming chaos: million-run matrices at flat memory.               *)

type chaos_totals = {
  ct_backend : Backend.t;
  ct_workload : Workload.t;
  ct_skipped : bool;
  ct_runs : int;
  ct_classes : (string * int) list;  (* class name -> count, first-seen *)
  ct_failures : (int * int * chaos_class) list;
      (* (plan, seed, class) of every Violation / Unexplained run *)
}

let chaos_totals_ok t = (not t.ct_skipped) && t.ct_failures = []

(* Same cells, same order and same rendered bytes as [chaos] +
   [render_chaos], but each run is classified, rendered through [emit]
   and dropped as soon as its turn comes: the resident set holds only
   the bounded in-flight window of the executor plus the class counters,
   independent of the matrix size.  [emit] is called on the calling
   domain, in deterministic cell order, for any [jobs]. *)
let chaos_stream ?telemetry ?(jobs = 1) ~emit (backend : Backend.t)
    (workload : Workload.t) ~plans ~seeds =
  if backend.Backend.chaos = None || not (Backend.supports backend workload)
  then begin
    emit
      (Format.asprintf "%s x %s: skipped (no chaos driver or feature)@\n"
         backend.Backend.name workload.Workload.name);
    { ct_backend = backend; ct_workload = workload; ct_skipped = true;
      ct_runs = 0; ct_classes = []; ct_failures = [] }
  end
  else begin
    let n = plans * seeds in
    emit
      (Format.asprintf "--- chaos: %s x %s (%d runs) ---@\n"
         backend.Backend.name workload.Workload.name n);
    let classes = ref [] in
    let failures = ref [] in
    let bump key =
      classes :=
        (match List.assoc_opt key !classes with
        | Some c -> (key, c + 1) :: List.remove_assoc key !classes
        | None -> !classes @ [ (key, 1) ])
    in
    Matrix.iter_ordered ?telemetry ~jobs ~n
      ~f:(fun i -> chaos_cell backend workload ~seeds i)
      ~consume:(fun i r ->
        emit (Format.asprintf "%a" (render_run backend.Backend.name) r);
        bump (class_name r.c_class);
        match r.c_class with
        | Violation | Unexplained ->
          failures := (i / seeds, i mod seeds, r.c_class) :: !failures
        | Conformant | Diagnosed -> ())
      ();
    emit
      (Format.asprintf "summary: %s@\n"
         (String.concat ", "
            (List.map
               (fun (k, c) -> Printf.sprintf "%d %s" c k)
               !classes)));
    { ct_backend = backend; ct_workload = workload; ct_skipped = false;
      ct_runs = n; ct_classes = !classes;
      ct_failures = List.rev !failures }
  end
