module Tid = Threads_util.Tid
module Sync_intf = Taos_threads.Sync_intf
module Ops = Firefly.Machine.Ops

type verdict = Completed | Deadlocked | Crashed of string

type outcome = {
  verdict : verdict;
  observable : string option;
  trace : Spec_trace.event list;
  steps : int option;  (** simulator backends only *)
}

type lock_event = { le_tid : int; le_lock : int; le_acquire : bool }

type instrument =
  | Machine_access of (seed:int -> Workload.t -> outcome * Firefly.Machine.t)
  | Lock_trace of (seed:int -> Workload.t -> outcome * lock_event list)
  | No_instrument

type t = {
  name : string;
  description : string;
  real_parallelism : bool;
  conforming : bool;  (** false for the deliberately-divergent baselines *)
  supports : Workload.feature list;
  run : seed:int -> Workload.t -> outcome;
  instrument : instrument;
  profile : (seed:int -> Workload.t -> outcome * Firefly.Machine.t) option;
      (** causal-profiled run (same seeds and schedules as [run]);
          [None] for hardware backends with no machine *)
  chaos :
    (seed:int ->
    plan:Threads_fault.Plan.t ->
    Workload.t ->
    string option * Threads_fault.Engine.outcome)
    option;
      (** run under the fault-injection engine replaying [plan];
          [None] for backends the chaos driver cannot host *)
}

let supports b (wl : Workload.t) =
  List.for_all (fun f -> List.mem f b.supports) wl.needs

let pp_verdict ppf = function
  | Completed -> Format.pp_print_string ppf "completed"
  | Deadlocked -> Format.pp_print_string ppf "deadlock"
  | Crashed msg -> Format.fprintf ppf "crashed: %s" msg

(* Shared wrapper for the three drivers built on the simulator: map the
   interleaving report (plus any thread failures) to an outcome and pull
   the machine's event trace. *)
let of_report observable (report : Firefly.Interleave.report) =
  let verdict =
    match Firefly.Machine.failures report.machine with
    | (tid, e) :: _ ->
      Crashed (Printf.sprintf "t%d: %s" tid (Printexc.to_string e))
    | [] -> (
      match report.verdict with
      | Firefly.Interleave.Completed -> Completed
      | Firefly.Interleave.Deadlock _ -> Deadlocked
      | Firefly.Interleave.Step_limit -> Crashed "step limit")
  in
  {
    verdict;
    observable = (match verdict with Completed -> !observable | _ -> None);
    trace = Firefly.Machine.trace report.machine;
    steps = Some report.steps;
  }

let max_steps = 2_000_000

(* Generic simulator-hosted runner: fresh machine, backend built inside a
   root thread, optional access recording.  The instruction sequence is
   identical with recording on or off — recording is host-side machine
   bookkeeping, never an effect — so the [run] and [Machine_access] entry
   points of a backend see the same schedules for the same seed. *)
let machine_run ?strategy ?(profile = false) ~record ~seed build
    (wl : Workload.t) =
  let observable = ref None in
  let report =
    Firefly.Interleave.run ?strategy ~seed ~max_steps (fun machine ->
        if record then Firefly.Machine.set_recording machine true;
        if profile then Firefly.Machine.set_profiling machine true;
        ignore
          (Firefly.Machine.spawn_root machine (fun () ->
               observable := Some (wl.body (build ())))))
  in
  (of_report observable report, report.Firefly.Interleave.machine)

(* Chaos-engine counterpart of [machine_run]: same root-thread shape, but
   the fault engine drives the interleaving, replaying [plan]'s triggers.
   Both chaos-capable backends run under the engine's seed-derived random
   strategy, so equal (backend, workload, plan, seed) replay exactly. *)
let chaos_run ~seed ~plan build (wl : Workload.t) =
  let observable = ref None in
  let outcome =
    Threads_fault.Engine.run ~seed ~plan (fun machine ->
        ignore
          (Firefly.Machine.spawn_root machine (fun () ->
               observable := Some (wl.body (build ())))))
  in
  (!observable, outcome)

let taos_build () =
  let module S = (val Taos_threads.Api.make (Taos_threads.Pkg.create ())) in
  (module S : Sync_intf.SYNC)

let uniproc_build () =
  let module S = (val Taos_threads.Uniproc.make ()) in
  (module S : Sync_intf.SYNC)

let sim_run ~seed wl = fst (machine_run ~record:false ~seed taos_build wl)

(* The cooperative backend runs under a random strategy here (its own
   default is round-robin) so different seeds exercise different wake
   orders, like the other simulator-hosted backends. *)
let uniproc_run ~seed wl =
  fst
    (machine_run
       ~strategy:(Firefly.Sched.random seed)
       ~record:false ~seed uniproc_build wl)

(* The rejected design as a full backend: the two-layer Taos mutex,
   semaphore and alert machinery, with conditions represented by a binary
   semaphore (Naive).  Alertable waits have no encoding there. *)
let naive_make pkg : (module Sync_intf.SYNC) =
  (module struct
    module T = Taos_threads

    type mutex = T.Mutex.t
    type condition = T.Naive.t
    type semaphore = T.Semaphore.t
    type thread = Tid.t

    let mutex () = T.Mutex.create pkg
    let condition () = T.Naive.create pkg
    let semaphore () = T.Semaphore.create pkg
    let acquire = T.Mutex.acquire
    let release = T.Mutex.release
    let with_lock = T.Mutex.with_lock
    let wait m c = T.Naive.wait c m
    let signal = T.Naive.signal
    let broadcast = T.Naive.broadcast
    let p = T.Semaphore.p
    let v = T.Semaphore.v

    let alert target =
      T.Alerts.alert pkg.T.Pkg.alerts ~lock:pkg.T.Pkg.lock ~self:(Ops.self ())
        ~target

    let test_alert () = T.Alerts.test_alert pkg.T.Pkg.alerts ~self:(Ops.self ())
    let alert_wait _ _ = failwith "naive backend: alert_wait unsupported"
    let alert_p = T.Semaphore.alert_p
    let timed_wait _ _ ~timeout:_ = failwith "naive backend: timed_wait unsupported"
    let timed_p = T.Semaphore.timed_p
    let self () = Ops.self ()
    let fork f = Ops.spawn f
    let join = Ops.join
    let yield = Ops.yield
  end)

let naive_build () = naive_make (Taos_threads.Pkg.create ())
let naive_run ~seed wl = fst (machine_run ~record:false ~seed naive_build wl)

(* Hoare monitors as the mutex/condition pair (conditions bind to their
   monitor at first wait), Taos semaphores alongside; no alerting. *)
let hoare_make pkg : (module Sync_intf.SYNC) =
  (module struct
    module H = Taos_threads.Hoare

    type mutex = H.monitor
    type condition = { mutable bound : H.cond option }
    type semaphore = Taos_threads.Semaphore.t
    type thread = Tid.t

    let mutex () = H.monitor ()
    let condition () = { bound = None }
    let semaphore () = Taos_threads.Semaphore.create pkg
    let acquire = H.enter
    let release = H.exit
    let with_lock = H.with_monitor

    let bind m c =
      match c.bound with
      | Some hc -> hc
      | None ->
        let hc = H.condition m in
        c.bound <- Some hc;
        hc

    let wait m c = H.wait (bind m c)

    (* An unbound condition never had a waiter: both wakes are no-ops. *)
    let signal c = Option.iter H.signal c.bound
    let broadcast c = Option.iter H.broadcast c.bound
    let p = Taos_threads.Semaphore.p
    let v = Taos_threads.Semaphore.v
    let alert _ = failwith "hoare backend: alerting unsupported"
    let test_alert () = failwith "hoare backend: alerting unsupported"
    let alert_wait _ _ = failwith "hoare backend: alerting unsupported"
    let alert_p _ = failwith "hoare backend: alerting unsupported"
    let timed_wait _ _ ~timeout:_ = failwith "hoare backend: timed_wait unsupported"
    let timed_p _ ~timeout:_ = failwith "hoare backend: timed_p unsupported"
    let self () = Ops.self ()
    let fork f = Ops.spawn f
    let join = Ops.join
    let yield = Ops.yield
  end)

let hoare_build () = hoare_make (Taos_threads.Pkg.create ())
let hoare_run ~seed wl = fst (machine_run ~record:false ~seed hoare_build wl)

let multicore_run ~seed:_ (wl : Workload.t) =
  let module MC = Threads_multicore.Multicore in
  match
    MC.traced_run (fun () -> wl.body (module MC.Sync : Sync_intf.SYNC))
  with
  | observable, trace ->
    { verdict = Completed; observable = Some observable; trace; steps = None }
  | exception e ->
    {
      verdict = Crashed (Printexc.to_string e);
      observable = None;
      trace = [];
      steps = None;
    }

(* Hardware runs have no access stream; the lock-event capture feeds the
   lock-order analyzer only. *)
let multicore_lock_run ~seed:_ (wl : Workload.t) =
  let module MC = Threads_multicore.Multicore in
  match
    MC.analyzed_run (fun () -> wl.body (module MC.Sync : Sync_intf.SYNC))
  with
  | observable, evs ->
    ( {
        verdict = Completed;
        observable = Some observable;
        trace = [];
        steps = None;
      },
      List.map
        (fun (e : MC.lock_event) ->
          { le_tid = e.le_tid; le_lock = e.le_lock; le_acquire = e.le_acquire })
        evs )
  | exception e ->
    ( {
        verdict = Crashed (Printexc.to_string e);
        observable = None;
        trace = [];
        steps = None;
      },
      [] )

let all =
  [
    {
      name = "sim";
      description = "Firefly simulator, Taos two-layer implementation";
      real_parallelism = false;
      conforming = true;
      supports = [ Workload.Alerts; Workload.Timeouts; Workload.Interrupts ];
      run = sim_run;
      instrument =
        Machine_access (fun ~seed wl -> machine_run ~record:true ~seed taos_build wl);
      profile =
        Some
          (fun ~seed wl ->
            machine_run ~profile:true ~record:false ~seed taos_build wl);
      chaos = Some (fun ~seed ~plan wl -> chaos_run ~seed ~plan taos_build wl);
    };
    {
      name = "uniproc";
      description = "cooperative uniprocessor implementation";
      real_parallelism = false;
      conforming = true;
      supports = [ Workload.Alerts; Workload.Timeouts; Workload.Interrupts ];
      run = uniproc_run;
      instrument =
        Machine_access
          (fun ~seed wl ->
            machine_run
              ~strategy:(Firefly.Sched.random seed)
              ~record:true ~seed uniproc_build wl);
      profile =
        Some
          (fun ~seed wl ->
            machine_run
              ~strategy:(Firefly.Sched.random seed)
              ~profile:true ~record:false ~seed uniproc_build wl);
      chaos =
        Some (fun ~seed ~plan wl -> chaos_run ~seed ~plan uniproc_build wl);
    };
    {
      name = "naive";
      description = "condition variables as binary semaphores (E5 baseline)";
      real_parallelism = false;
      conforming = false;
      supports = [ Workload.Interrupts ];
      run = naive_run;
      instrument =
        Machine_access
          (fun ~seed wl -> machine_run ~record:true ~seed naive_build wl);
      profile =
        Some
          (fun ~seed wl ->
            machine_run ~profile:true ~record:false ~seed naive_build wl);
      chaos = None;
    };
    {
      name = "hoare";
      description = "Hoare monitors: signal hands over the mutex (E8 baseline)";
      real_parallelism = false;
      conforming = false;
      supports = [ Workload.Interrupts ];
      run = hoare_run;
      instrument =
        Machine_access
          (fun ~seed wl -> machine_run ~record:true ~seed hoare_build wl);
      profile =
        Some
          (fun ~seed wl ->
            machine_run ~profile:true ~record:false ~seed hoare_build wl);
      chaos = None;
    };
    {
      name = "multicore";
      description = "OCaml 5 domains with atomic fast paths";
      real_parallelism = true;
      conforming = true;
      supports = [ Workload.Alerts ];
      run = multicore_run;
      instrument = Lock_trace multicore_lock_run;
      profile = None;
      chaos = None;
    };
  ]

let find name = List.find_opt (fun b -> b.name = name) all
let names () = List.map (fun b -> b.name) all
