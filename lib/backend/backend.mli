(** First-class registry of Threads-package backends.

    A backend packages a {!Taos_threads.Sync_intf.SYNC} implementation
    with a runner and trace capture: [run ~seed workload] executes the
    workload body against that implementation and returns its verdict,
    observable and the {!Spec_trace} event sequence the backend emitted at
    its linearization points.  Five are registered:

    - [sim] — the Taos two-layer implementation on the Firefly simulator;
    - [uniproc] — the cooperative uniprocessor implementation;
    - [naive] — conditions as binary semaphores, the design the paper
      rejects (strands waiters under Broadcast, experiment E5);
    - [hoare] — Hoare monitors, whose signal hands the mutex over and so
      violates Resume's [WHEN (m = NIL)] (experiment E8);
    - [multicore] — OCaml 5 domains with atomic fast paths, traced via
      appends under the package's spin-lock.

    Simulator-hosted backends honour [~seed] (schedule randomization);
    [multicore] takes its nondeterminism from the hardware. *)

type verdict = Completed | Deadlocked | Crashed of string

type outcome = {
  verdict : verdict;
  observable : string option;  (** workload result; [None] unless completed *)
  trace : Spec_trace.event list;  (** linearization-point events, in order *)
  steps : int option;  (** simulator backends only *)
}

(** One mutex acquisition/release from a hardware backend, for the
    lock-order analyzer (each thread's events in its program order). *)
type lock_event = { le_tid : int; le_lock : int; le_acquire : bool }

(** How a backend exposes itself to [lib/analysis].  Simulator-hosted
    backends return the machine of a recorded run — the full access
    stream plus word/lock registries — feeding all three dynamic
    analyzers; hardware backends capture only lock events, feeding
    lock-order analysis.  Instrumented runs use the same seeds and
    schedules as [run] (recording is host-side bookkeeping, not an
    instruction). *)
type instrument =
  | Machine_access of (seed:int -> Workload.t -> outcome * Firefly.Machine.t)
  | Lock_trace of (seed:int -> Workload.t -> outcome * lock_event list)
  | No_instrument

type t = {
  name : string;
  description : string;
  real_parallelism : bool;
  conforming : bool;  (** false for the deliberately-divergent baselines *)
  supports : Workload.feature list;
  run : seed:int -> Workload.t -> outcome;
  instrument : instrument;
  profile : (seed:int -> Workload.t -> outcome * Firefly.Machine.t) option;
      (** causal-profiled run for [lib/profile]: same seeds and schedules
          as [run] (the profile stream is host-side machine bookkeeping,
          not an instruction); [None] for hardware backends, which have
          no machine to profile *)
  chaos :
    (seed:int ->
    plan:Threads_fault.Plan.t ->
    Workload.t ->
    string option * Threads_fault.Engine.outcome)
    option;
      (** run under the fault-injection engine ([lib/fault]) replaying
          [plan]; returns the workload observable (if the root finished)
          and the engine outcome.  Deterministic in (seed, plan).  [None]
          for backends the chaos driver cannot host — the baselines (not
          part of the robustness claim) and hardware backends (no
          simulated machine to perturb) *)
}

(** [supports b w] — does [b] provide every feature [w] needs? *)
val supports : t -> Workload.t -> bool

val pp_verdict : Format.formatter -> verdict -> unit

val all : t list
val find : string -> t option
val names : unit -> string list
