(** First-class registry of Threads-package backends.

    A backend packages a {!Taos_threads.Sync_intf.SYNC} implementation
    with a runner and trace capture: [run ~seed workload] executes the
    workload body against that implementation and returns its verdict,
    observable and the {!Spec_trace} event sequence the backend emitted at
    its linearization points.  Five are registered:

    - [sim] — the Taos two-layer implementation on the Firefly simulator;
    - [uniproc] — the cooperative uniprocessor implementation;
    - [naive] — conditions as binary semaphores, the design the paper
      rejects (strands waiters under Broadcast, experiment E5);
    - [hoare] — Hoare monitors, whose signal hands the mutex over and so
      violates Resume's [WHEN (m = NIL)] (experiment E8);
    - [multicore] — OCaml 5 domains with atomic fast paths, traced via
      appends under the package's spin-lock.

    Simulator-hosted backends honour [~seed] (schedule randomization);
    [multicore] takes its nondeterminism from the hardware. *)

type verdict = Completed | Deadlocked | Crashed of string

type outcome = {
  verdict : verdict;
  observable : string option;  (** workload result; [None] unless completed *)
  trace : Spec_trace.event list;  (** linearization-point events, in order *)
  steps : int option;  (** simulator backends only *)
}

type t = {
  name : string;
  description : string;
  real_parallelism : bool;
  conforming : bool;  (** false for the deliberately-divergent baselines *)
  supports : Workload.feature list;
  run : seed:int -> Workload.t -> outcome;
}

(** [supports b w] — does [b] provide every feature [w] needs? *)
val supports : t -> Workload.t -> bool

val pp_verdict : Format.formatter -> verdict -> unit

val all : t list
val find : string -> t option
val names : unit -> string list
