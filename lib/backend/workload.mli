(** Backend-generic harness workloads.

    A workload is a client program written against
    {!Taos_threads.Sync_intf.SYNC} whose observable result is
    schedule-independent: any conforming backend, cooperative or truly
    parallel, must complete it and produce the same string.  Divergence —
    a different observable, a deadlock, or spec violations in the emitted
    trace — is therefore attributable to the backend, which is what
    [repro diff] exploits. *)

type feature =
  | Alerts  (** the workload uses Alert/TestAlert/Alert*. *)
  | Timeouts  (** the workload uses TimedWait/TimedP. *)
  | Interrupts
      (** the workload raises interrupts
          ({!Firefly.Machine.spawn_interrupt}); simulator-hosted backends
          only. *)

type t = {
  name : string;
  description : string;
  needs : feature list;  (** backend capabilities required to run *)
  body : (module Taos_threads.Sync_intf.SYNC) -> string;
      (** returns the observable *)
}

(** mutex, condvar, semaphore, alert, broadcast, timeout — the
    [broadcast] workload is the E5 stranding scenario: three waiters
    provably inside Wait when one Broadcast fires; [timeout] exercises an
    expiring TimedP, a Mesa-loop TimedWait that is eventually signalled,
    and a TimedWait that must expire. *)
val all : t list

val find : string -> t option
val names : unit -> string list
