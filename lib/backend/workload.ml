module Sync_intf = Taos_threads.Sync_intf

type feature = Alerts | Timeouts | Interrupts

type t = {
  name : string;
  description : string;
  needs : feature list;
  body : (module Sync_intf.SYNC) -> string;
}

(* Four threads hammer one counter; mutual exclusion makes the observable
   schedule-independent. *)
let mutex_body (module S : Sync_intf.SYNC) =
  let m = S.mutex () in
  let count = ref 0 in
  let worker () =
    for _ = 1 to 25 do
      S.with_lock m (fun () -> incr count)
    done
  in
  let ts = List.init 4 (fun _ -> S.fork worker) in
  List.iter S.join ts;
  Printf.sprintf "count=%d" !count

(* Single producer, single consumer, Mesa-style predicate loop.  One
   waiter keeps Signal sound even on the Naive baseline (the paper's
   one-bit argument covers Signal; only Broadcast breaks it). *)
let condvar_body (module S : Sync_intf.SYNC) =
  let items = 30 in
  let m = S.mutex () in
  let nonempty = S.condition () in
  let buf = ref 0 in
  let consumed = ref 0 in
  let consumer () =
    for _ = 1 to items do
      S.with_lock m (fun () ->
          while !buf = 0 do
            S.wait m nonempty
          done;
          decr buf;
          incr consumed)
    done
  in
  let c = S.fork consumer in
  for _ = 1 to items do
    S.with_lock m (fun () ->
        incr buf;
        S.signal nonempty)
  done;
  S.join c;
  Printf.sprintf "consumed=%d" !consumed

(* Strict alternation on two binary semaphores (pong starts unavailable). *)
let semaphore_body (module S : Sync_intf.SYNC) =
  let rounds = 15 in
  let ping = S.semaphore () in
  let pong = S.semaphore () in
  S.p pong;
  let rallies = ref 0 in
  let b =
    S.fork (fun () ->
        for _ = 1 to rounds do
          S.p pong;
          incr rallies;
          S.v ping
        done)
  in
  for _ = 1 to rounds do
    S.p ping;
    S.v pong
  done;
  S.join b;
  Printf.sprintf "rallies=%d" !rallies

(* Alerts land in all three places they can: an alertable wait, an
   alertable P, and the caller's own pending flag via TestAlert. *)
let alert_body (module S : Sync_intf.SYNC) =
  let m = S.mutex () in
  let c = S.condition () in
  let s = S.semaphore () in
  let wait_result = ref "" in
  let p_result = ref "" in
  let w =
    S.fork (fun () ->
        S.with_lock m (fun () ->
            match S.alert_wait m c with
            | () -> wait_result := "woken"
            | exception Sync_intf.Alerted -> wait_result := "alerted"))
  in
  S.p s;
  (* s is now held: the victim can only leave AlertP by being alerted. *)
  let victim =
    S.fork (fun () ->
        match S.alert_p s with
        | () -> p_result := "acquired"
        | exception Sync_intf.Alerted -> p_result := "alerted")
  in
  S.alert w;
  S.alert victim;
  S.join w;
  S.join victim;
  S.v s;
  S.alert (S.self ());
  let t1 = S.test_alert () in
  let t2 = S.test_alert () in
  Printf.sprintf "wait=%s p=%s test=%b,%b" !wait_result !p_result t1 t2

(* The E5 scenario: several threads are provably inside Wait when a single
   Broadcast fires.  A conforming backend wakes all of them; the Naive
   baseline's coalescing Vs strand at least one, and the run deadlocks. *)
let broadcast_body (module S : Sync_intf.SYNC) =
  let waiters = 3 in
  let m = S.mutex () in
  let c = S.condition () in
  let waiting = ref 0 in
  let flag = ref false in
  let woken = ref 0 in
  let waiter () =
    S.with_lock m (fun () ->
        incr waiting;
        while not !flag do
          S.wait m c
        done;
        incr woken)
  in
  let ws = List.init waiters (fun _ -> S.fork waiter) in
  (* A waiter increments [waiting] under the mutex and releases it only by
     entering Wait, so seeing [waiting = 3] under the mutex proves all
     three have passed their Enqueue. *)
  let rec settle () =
    if S.with_lock m (fun () -> !waiting) < waiters then begin
      S.yield ();
      settle ()
    end
  in
  settle ();
  S.with_lock m (fun () ->
      flag := true;
      S.broadcast c);
  List.iter S.join ws;
  Printf.sprintf "woken=%d" !woken

(* Timeouts land in all three shapes they can take: a TimedP that must
   expire (the semaphore is held for the duration), a Mesa-loop TimedWait
   that is eventually signalled (expiries before that just go round the
   loop), and a TimedWait on a condition nobody ever signals, which must
   expire.  Every arm has exactly one schedule-independent outcome. *)
let timeout_body (module S : Sync_intf.SYNC) =
  let m = S.mutex () in
  let c = S.condition () in
  let never = S.condition () in
  let s = S.semaphore () in
  S.p s;
  (* s is held and nobody will V it: TimedP can only expire. *)
  let p_result = ref "" in
  let p_thread =
    S.fork (fun () ->
        match S.timed_p s ~timeout:200 with
        | () -> p_result := "acquired"
        | exception Sync_intf.Timed_out -> p_result := "timed_out")
  in
  let flag = ref false in
  let wait_result = ref "" in
  let waiter =
    S.fork (fun () ->
        S.with_lock m (fun () ->
            while not !flag do
              match S.timed_wait m c ~timeout:150 with
              | () -> ()
              | exception Sync_intf.Timed_out -> ()
            done;
            wait_result := "woken"))
  in
  S.join p_thread;
  S.with_lock m (fun () ->
      flag := true;
      S.signal c);
  S.join waiter;
  let expiry_result = ref "" in
  let expiry =
    S.fork (fun () ->
        S.with_lock m (fun () ->
            match S.timed_wait m never ~timeout:120 with
            | () -> expiry_result := "woken"
            | exception Sync_intf.Timed_out -> expiry_result := "timed_out"))
  in
  S.join expiry;
  Printf.sprintf "p=%s wait=%s expiry=%s" !p_result !wait_result
    !expiry_result

let all =
  [
    {
      name = "mutex";
      description = "4 threads x 25 guarded increments";
      needs = [];
      body = mutex_body;
    };
    {
      name = "condvar";
      description = "producer/consumer, 30 items, Mesa predicate loop";
      needs = [];
      body = condvar_body;
    };
    {
      name = "semaphore";
      description = "two-semaphore ping-pong, 15 rallies";
      needs = [];
      body = semaphore_body;
    };
    {
      name = "alert";
      description = "alerted Wait, alerted P, TestAlert on self";
      needs = [ Alerts ];
      body = alert_body;
    };
    {
      name = "broadcast";
      description = "3 provably-parked waiters, one Broadcast (E5 shape)";
      needs = [];
      body = broadcast_body;
    };
    {
      name = "timeout";
      description = "expiring TimedP, Mesa-loop TimedWait, sure expiry";
      needs = [ Timeouts ];
      body = timeout_body;
    };
  ]

let find name = List.find_opt (fun w -> w.name = name) all
let names () = List.map (fun w -> w.name) all
