(** Cross-backend differential conformance.

    [conform] replays one backend's traces against the formal
    specification over many seeds; [diff] does so for every registered
    backend on one workload, which is the whole test: conforming backends
    must complete with identical observables and zero violations, while
    the baselines diverge exactly where experiments E5 and E8 say —
    [naive] deadlocks the broadcast workload, [hoare] accumulates one
    Resume violation per effective signal. *)

type run = {
  seed : int;
  outcome : Backend.outcome;
  report : Threads_model.Conformance.report;
}

type summary = {
  backend : Backend.t;
  workload : Workload.t;
  skipped : bool;  (** workload needs a feature the backend lacks *)
  runs : run list;
}

(** [conform b w ~seeds] — run seeds [0..seeds-1] and check each trace. *)
val conform : Backend.t -> Workload.t -> seeds:int -> summary

(** Aggregates over a summary's runs. *)

val violations : summary -> int
val events : summary -> int
val completed : summary -> bool

(** Verdict string -> occurrence count, in first-seen order. *)
val verdicts : summary -> (string * int) list

(** Distinct observables, sorted. *)
val observables : summary -> string list

(** Every seed completed, one observable, zero violations. *)
val ok : summary -> bool

(** First spec violation, rendered with its seed and trace position. *)
val first_error : summary -> string option

(** [diff w ~seeds] — [conform] on every registered backend. *)
val diff : Workload.t -> seeds:int -> summary list
