(** Cross-backend differential conformance.

    [conform] replays one backend's traces against the formal
    specification over many seeds; [diff] does so for every registered
    backend on one workload, which is the whole test: conforming backends
    must complete with identical observables and zero violations, while
    the baselines diverge exactly where experiments E5 and E8 say —
    [naive] deadlocks the broadcast workload, [hoare] accumulates one
    Resume violation per effective signal. *)

type run = {
  seed : int;
  outcome : Backend.outcome;
  report : Threads_model.Conformance.report;
}

type summary = {
  backend : Backend.t;
  workload : Workload.t;
  skipped : bool;  (** workload needs a feature the backend lacks *)
  runs : run list;
}

(** [conform ?jobs b w ~seeds] — run seeds [0..seeds-1] and check each
    trace.  [jobs] > 1 distributes the seed matrix over that many OCaml
    domains with the work-stealing executor; every cell is an isolated
    machine with its own per-seed RNG and domain-local probe slot, and
    results keep index order, so the summary is identical for any
    [jobs].  [?telemetry] attaches a host-side observation sink to the
    seed matrix (see {!Threads_runner.Telemetry}); it never changes the
    summary. *)
val conform :
  ?telemetry:Threads_runner.Telemetry.sink -> ?jobs:int -> Backend.t ->
  Workload.t -> seeds:int -> summary

(** [run_one b w ~seed] — one conformance cell: run the workload on seed
    [seed] and check the emitted trace against the spec.  The generative
    engine's per-scenario entry point. *)
val run_one : Backend.t -> Workload.t -> seed:int -> run

(** Aggregates over a summary's runs. *)

val violations : summary -> int
val events : summary -> int
val completed : summary -> bool

(** Verdict string -> occurrence count, in first-seen order. *)
val verdicts : summary -> (string * int) list

(** Distinct observables, sorted. *)
val observables : summary -> string list

(** Every seed completed, one observable, zero violations. *)
val ok : summary -> bool

(** First spec violation, rendered with its seed and trace position. *)
val first_error : summary -> string option

(** [diff ?jobs w ~seeds] — [conform] on every registered backend; the
    whole backend x seed matrix is one work-stealing pool. *)
val diff :
  ?telemetry:Threads_runner.Telemetry.sink -> ?jobs:int -> Workload.t ->
  seeds:int -> summary list

(** {1 Chaos conformance}

    Backend x workload x fault plan, the robustness contract of the
    fault-injection layer: every run must either complete conformant or
    terminate with a diagnosed fault report naming the injected fault —
    never a silent hang (the engine's step budget is the watchdog) and
    never a spec violation. *)

type chaos_class =
  | Conformant
      (** completed, zero violations, no failed threads *)
  | Diagnosed
      (** zero violations; the deadlock / budget exhaustion /
          crash-stopped thread is attributed to a recorded injected
          fault *)
  | Violation  (** the trace broke the spec — always a bug *)
  | Unexplained
      (** a failure with no injected fault to blame — always a bug *)

val class_name : chaos_class -> string

type chaos_run = {
  c_seed : int;
  c_plan : Threads_fault.Plan.t;
  c_observable : string option;
  c_outcome : Threads_fault.Engine.outcome;
  c_report : Threads_model.Conformance.report;
  c_class : chaos_class;
}

type chaos_summary = {
  cs_backend : Backend.t;
  cs_workload : Workload.t;
  cs_skipped : bool;  (** no chaos driver, or missing workload feature *)
  cs_runs : chaos_run list;
}

(** [chaos_one b w ~seed plan] — one run under the fault engine, trace
    checked against the spec and classified.  Raises [Invalid_argument]
    if [b] has no chaos driver. *)
val chaos_one :
  Backend.t -> Workload.t -> seed:int -> Threads_fault.Plan.t -> chaos_run

(** [chaos ?jobs b w ~plans ~seeds] — plans [0..plans-1] x seeds
    [0..seeds-1], parallelized like {!conform}. *)
val chaos :
  ?telemetry:Threads_runner.Telemetry.sink -> ?jobs:int -> Backend.t ->
  Workload.t -> plans:int -> seeds:int -> chaos_summary

(** Every run classified [Conformant] or [Diagnosed]. *)
val chaos_ok : chaos_summary -> bool

(** Class name -> occurrence count, in first-seen order. *)
val chaos_classes : chaos_summary -> (string * int) list

(** Deterministic fault report: equal (backend, workload, plan, seed)
    render byte-equal reports. *)
val render_chaos : Format.formatter -> chaos_summary -> unit

(** {1 Streaming chaos}

    The list-returning {!chaos} retains every run's machine; for
    million-run matrices use {!chaos_stream}, which renders and drops
    each run as its turn comes, keeping memory flat (the executor's
    bounded in-flight window) while emitting exactly the bytes
    {!render_chaos} would. *)

type chaos_totals = {
  ct_backend : Backend.t;
  ct_workload : Workload.t;
  ct_skipped : bool;
  ct_runs : int;
  ct_classes : (string * int) list;
      (** class name -> count, first-seen order *)
  ct_failures : (int * int * chaos_class) list;
      (** (plan, seed, class) of every Violation / Unexplained run *)
}

(** Every run classified [Conformant] or [Diagnosed]. *)
val chaos_totals_ok : chaos_totals -> bool

(** [chaos_stream ?jobs ~emit b w ~plans ~seeds] — the streaming
    equivalent of [render_chaos ppf (chaos b w ~plans ~seeds)]: [emit]
    receives the report in deterministic chunks (called on the calling
    domain, in cell order, for any [jobs]). *)
val chaos_stream :
  ?telemetry:Threads_runner.Telemetry.sink ->
  ?jobs:int ->
  emit:(string -> unit) ->
  Backend.t ->
  Workload.t ->
  plans:int ->
  seeds:int ->
  chaos_totals
