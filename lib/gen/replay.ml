module Plan = Threads_fault.Plan

type file = {
  backend : string;
  scenario : Oracle.scenario;
  expect : Oracle.kind option;
}

let magic = "taos-gen 1"

let to_string f =
  let b = Buffer.create 256 in
  let line fmt = Printf.ksprintf (fun s -> Buffer.add_string b (s ^ "\n")) fmt in
  let p = f.scenario.Oracle.program in
  line "%s" magic;
  line "backend %s" f.backend;
  line "policy %s" (Generate.policy_name f.scenario.Oracle.policy);
  line "seed %d" f.scenario.Oracle.seed;
  (match f.expect with
  | Some k -> line "expect %s" (Oracle.kind_name k)
  | None -> ());
  (match f.scenario.Oracle.plan with
  | None -> ()
  | Some plan ->
    line "plan-id %d" plan.Plan.id;
    List.iter
      (fun a -> line "plan-action %s" (Plan.encode_action a))
      plan.Plan.actions);
  line "mutexes %d" p.Prog.mutexes;
  line "sems %d" p.Prog.sems;
  line "flags %d" p.Prog.flags;
  line "tokens %d" p.Prog.tokens;
  line "irqs %d" p.Prog.irqs;
  List.iter
    (fun ops ->
      line "worker%s"
        (match ops with
        | [] -> ""
        | _ -> " " ^ String.concat "; " (List.map Prog.encode_op ops)))
    p.Prog.threads;
  line "main%s"
    (match p.Prog.main with
    | [] -> ""
    | ops -> " " ^ String.concat "; " (List.map Prog.encode_op ops));
  line "end";
  Buffer.contents b

let print ppf f = Format.pp_print_string ppf (to_string f)

(* ---- parsing ---- *)

let parse text =
  let err fmt = Printf.ksprintf (fun s -> Error s) fmt in
  let lines =
    String.split_on_char '\n' text
    |> List.map String.trim
    |> List.filter (fun l -> l <> "" && not (String.length l > 0 && l.[0] = '#'))
  in
  match lines with
  | m :: rest when m = magic -> (
    let backend = ref None
    and policy = ref Generate.Safe
    and seed = ref None
    and expect = ref None
    and plan_id = ref None
    and plan_actions = ref []
    and mutexes = ref 0
    and sems = ref 0
    and flags = ref 0
    and tokens = ref 0
    and irqs = ref 0
    and threads = ref []
    and main = ref [] in
    let parse_ops s =
      if String.trim s = "" then Ok []
      else
        let parts =
          String.split_on_char ';' s |> List.map String.trim
          |> List.filter (fun x -> x <> "")
        in
        let ops = List.map Prog.decode_op parts in
        if List.for_all Option.is_some ops then Ok (List.map Option.get ops)
        else Error s
    in
    let bad = ref None in
    let fail l = if !bad = None then bad := Some l in
    let int_field r v l =
      match int_of_string_opt (String.trim v) with
      | Some n -> r := n
      | None -> fail l
    in
    List.iter
      (fun l ->
        if l <> "end" then
          let key, rest =
            match String.index_opt l ' ' with
            | Some i ->
              ( String.sub l 0 i,
                String.sub l (i + 1) (String.length l - i - 1) )
            | None -> (l, "")
          in
          match key with
          | "backend" -> backend := Some (String.trim rest)
          | "policy" -> (
            match Generate.policy_of_string (String.trim rest) with
            | Some p -> policy := p
            | None -> fail l)
          | "seed" -> (
            match int_of_string_opt (String.trim rest) with
            | Some n -> seed := Some n
            | None -> fail l)
          | "expect" -> (
            match Oracle.kind_of_string rest with
            | Some k -> expect := Some k
            | None -> fail l)
          | "plan-id" -> (
            match int_of_string_opt (String.trim rest) with
            | Some n -> plan_id := Some n
            | None -> fail l)
          | "plan-action" -> (
            match Plan.decode_action rest with
            | Some a -> plan_actions := !plan_actions @ [ a ]
            | None -> fail l)
          | "mutexes" -> int_field mutexes rest l
          | "sems" -> int_field sems rest l
          | "flags" -> int_field flags rest l
          | "tokens" -> int_field tokens rest l
          | "irqs" -> int_field irqs rest l
          | "worker" -> (
            match parse_ops rest with
            | Ok ops -> threads := !threads @ [ ops ]
            | Error _ -> fail l)
          | "main" -> (
            match parse_ops rest with
            | Ok ops -> main := ops
            | Error _ -> fail l)
          | _ -> fail l)
      rest;
    match (!bad, !backend, !seed) with
    | Some l, _, _ -> err "unparseable line: %s" l
    | None, None, _ -> err "missing 'backend' line"
    | None, _, None -> err "missing 'seed' line"
    | None, Some backend, Some seed ->
      let plan =
        match (!plan_id, !plan_actions) with
        | None, [] -> None
        | id, actions ->
          Some { Plan.id = Option.value id ~default:0; actions }
      in
      let program =
        {
          Prog.mutexes = !mutexes;
          sems = !sems;
          flags = !flags;
          tokens = !tokens;
          irqs = !irqs;
          threads = !threads;
          main = !main;
        }
      in
      Ok
        {
          backend;
          scenario =
            { Oracle.program; policy = !policy; seed; plan };
          expect = !expect;
        })
  | l :: _ -> err "bad magic: expected %S, got %S" magic l
  | [] -> err "empty replay file"

let load path =
  match In_channel.with_open_text path In_channel.input_all with
  | text -> parse text
  | exception Sys_error msg -> Error msg

let save path f = Out_channel.with_open_text path (fun oc ->
    Out_channel.output_string oc (to_string f))
