module Wl = Threads_backend.Workload
module Sync_intf = Taos_threads.Sync_intf

type op =
  | Lock of int list * int
  | Sem of int * int
  | Timed_sem of int * int
  | Await of int
  | Timed_await of int
  | Alert_await of int
  | Set_flag of int
  | Produce of int
  | Consume of int
  | Alert_peer of int
  | Poll_alert
  | Interrupt_v of int
  | Yield
  | Work of int

type t = {
  mutexes : int;
  sems : int;
  flags : int;
  tokens : int;
  irqs : int;
  threads : op list list;
  main : op list;
}

let all_ops p = p.main @ List.concat p.threads

let size p = List.length p.main + List.fold_left (fun a t -> a + List.length t) 0 p.threads

let op_weight = function
  | Lock (ms, w) -> List.length ms + w
  | Sem (_, w) -> 1 + w
  | Timed_sem (_, patience) -> 1 + (patience / 50)
  | Work w -> w
  | Await _ | Timed_await _ | Alert_await _ | Set_flag _ | Produce _
  | Consume _ | Alert_peer _ | Poll_alert | Interrupt_v _ | Yield -> 1

let weight p = List.fold_left (fun a o -> a + op_weight o) 0 (all_ops p)

let needs p =
  let alerts = ref false and timeouts = ref false and irqs = ref false in
  List.iter
    (function
      | Alert_await _ | Alert_peer _ | Poll_alert -> alerts := true
      | Timed_sem _ | Timed_await _ -> timeouts := true
      | Interrupt_v _ -> irqs := true
      | _ -> ())
    (all_ops p);
  (if !alerts then [ Wl.Alerts ] else [])
  @ (if !timeouts then [ Wl.Timeouts ] else [])
  @ if !irqs then [ Wl.Interrupts ] else []

(* ---- canonicalization ---- *)

(* Renumber each object class densely in first-use order and drop the
   rest; clamp worker references.  [map_ops] rebuilds every op list with
   a per-class renaming table. *)
let canonicalize p =
  let table () = Hashtbl.create 8 in
  let mutexes = table () and sems = table () and flags = table () in
  let tokens = table () and irqs = table () in
  let look tbl i =
    match Hashtbl.find_opt tbl i with
    | Some j -> j
    | None ->
      let j = Hashtbl.length tbl in
      Hashtbl.add tbl i j;
      j
  in
  let nworkers = List.length p.threads in
  let map_op o =
    match o with
    | Lock (ms, w) -> Lock (List.map (look mutexes) ms, w)
    | Sem (s, w) -> Sem (look sems s, w)
    | Timed_sem (s, patience) -> Timed_sem (look sems s, patience)
    | Await f -> Await (look flags f)
    | Timed_await f -> Timed_await (look flags f)
    | Alert_await f -> Alert_await (look flags f)
    | Set_flag f -> Set_flag (look flags f)
    | Produce t -> Produce (look tokens t)
    | Consume t -> Consume (look tokens t)
    | Alert_peer w -> Alert_peer (if nworkers = 0 then 0 else w mod nworkers)
    | Interrupt_v i -> Interrupt_v (look irqs i)
    | (Poll_alert | Yield | Work _) as o -> o
  in
  (* Workers first, in order, then main: renaming is deterministic in
     the program text alone. *)
  let threads = List.map (List.map map_op) p.threads in
  let main = List.map map_op p.main in
  {
    mutexes = Hashtbl.length mutexes;
    sems = Hashtbl.length sems;
    flags = Hashtbl.length flags;
    tokens = Hashtbl.length tokens;
    irqs = Hashtbl.length irqs;
    threads;
    main;
  }

(* ---- op codec ---- *)

let encode_op = function
  | Lock (ms, w) ->
    Printf.sprintf "lock %s %d" (String.concat "," (List.map string_of_int ms)) w
  | Sem (s, w) -> Printf.sprintf "sem %d %d" s w
  | Timed_sem (s, patience) -> Printf.sprintf "timedsem %d %d" s patience
  | Await f -> Printf.sprintf "await %d" f
  | Timed_await f -> Printf.sprintf "timedawait %d" f
  | Alert_await f -> Printf.sprintf "alertawait %d" f
  | Set_flag f -> Printf.sprintf "setflag %d" f
  | Produce t -> Printf.sprintf "produce %d" t
  | Consume t -> Printf.sprintf "consume %d" t
  | Alert_peer w -> Printf.sprintf "alert %d" w
  | Poll_alert -> "poll"
  | Interrupt_v i -> Printf.sprintf "irqv %d" i
  | Yield -> "yield"
  | Work w -> Printf.sprintf "work %d" w

let decode_op s =
  let int = int_of_string_opt in
  match String.split_on_char ' ' (String.trim s) with
  | [ "lock"; ms; w ] -> (
    let idxs =
      List.map int_of_string_opt (String.split_on_char ',' ms)
    in
    match (List.for_all Option.is_some idxs, int w) with
    | true, Some w -> Some (Lock (List.map Option.get idxs, w))
    | _ -> None)
  | [ "sem"; s; w ] -> (
    match (int s, int w) with
    | Some s, Some w -> Some (Sem (s, w))
    | _ -> None)
  | [ "timedsem"; s; patience ] -> (
    match (int s, int patience) with
    | Some s, Some p -> Some (Timed_sem (s, p))
    | _ -> None)
  | [ "await"; f ] -> Option.map (fun f -> Await f) (int f)
  | [ "timedawait"; f ] -> Option.map (fun f -> Timed_await f) (int f)
  | [ "alertawait"; f ] -> Option.map (fun f -> Alert_await f) (int f)
  | [ "setflag"; f ] -> Option.map (fun f -> Set_flag f) (int f)
  | [ "produce"; t ] -> Option.map (fun t -> Produce t) (int t)
  | [ "consume"; t ] -> Option.map (fun t -> Consume t) (int t)
  | [ "alert"; w ] -> Option.map (fun w -> Alert_peer w) (int w)
  | [ "poll" ] -> Some Poll_alert
  | [ "irqv"; i ] -> Option.map (fun i -> Interrupt_v i) (int i)
  | [ "yield" ] -> Some Yield
  | [ "work"; w ] -> Option.map (fun w -> Work w) (int w)
  | _ -> None

let render_ops ops = String.concat "; " (List.map encode_op ops)

let render ppf p =
  Format.fprintf ppf
    "@[<v>objects: %d mutex(es), %d sem(s), %d flag(s), %d token(s), %d irq(s)@,"
    p.mutexes p.sems p.flags p.tokens p.irqs;
  List.iteri
    (fun i ops -> Format.fprintf ppf "worker %d: %s@," i (render_ops ops))
    p.threads;
  Format.fprintf ppf "main: %s@]" (render_ops p.main)

(* ---- lifting into Workload.t ---- *)

(* Default patience for the Mesa-loop TimedWait: long enough that expiry
   re-loops stay rare, short enough that a missing Set_flag cannot spin
   the step budget away before the deadlock detector would have fired. *)
let await_patience = 150

let body p (module S : Sync_intf.SYNC) =
  let mutexes = Array.init p.mutexes (fun _ -> S.mutex ()) in
  let sems = Array.init p.sems (fun _ -> S.semaphore ()) in
  let flag_m = Array.init p.flags (fun _ -> S.mutex ()) in
  let flag_c = Array.init p.flags (fun _ -> S.condition ()) in
  let flag_v = Array.init p.flags (fun _ -> ref false) in
  let tok_m = Array.init p.tokens (fun _ -> S.mutex ()) in
  let tok_c = Array.init p.tokens (fun _ -> S.condition ()) in
  let tok_v = Array.init p.tokens (fun _ -> ref 0) in
  let irq =
    Array.init p.irqs (fun _ ->
        let s = S.semaphore () in
        (* interrupt semaphores start unavailable: P blocks until the
           handler's V *)
        S.p s;
        s)
  in
  let nworkers = List.length p.threads in
  let workers = Array.make (max nworkers 1) None in
  let work n =
    for _ = 1 to n do
      S.yield ()
    done
  in
  let exec op =
    match op with
    | Lock (ms, w) ->
      let rec nest = function
        | [] -> work w
        | i :: rest -> S.with_lock mutexes.(i) (fun () -> nest rest)
      in
      nest ms
    | Sem (s, w) ->
      S.p sems.(s);
      work w;
      S.v sems.(s)
    | Timed_sem (s, patience) -> (
      match S.timed_p sems.(s) ~timeout:patience with
      | () -> S.v sems.(s)
      | exception Sync_intf.Timed_out -> ())
    | Await f ->
      S.with_lock flag_m.(f) (fun () ->
          while not !(flag_v.(f)) do
            S.wait flag_m.(f) flag_c.(f)
          done)
    | Timed_await f ->
      S.with_lock flag_m.(f) (fun () ->
          while not !(flag_v.(f)) do
            match S.timed_wait flag_m.(f) flag_c.(f) ~timeout:await_patience with
            | () -> ()
            | exception Sync_intf.Timed_out -> ()
          done)
    | Alert_await f ->
      S.with_lock flag_m.(f) (fun () ->
          let alerted = ref false in
          while not (!(flag_v.(f)) || !alerted) do
            match S.alert_wait flag_m.(f) flag_c.(f) with
            | () -> ()
            | exception Sync_intf.Alerted -> alerted := true
          done)
    | Set_flag f ->
      S.with_lock flag_m.(f) (fun () ->
          flag_v.(f) := true;
          S.broadcast flag_c.(f))
    | Produce t ->
      S.with_lock tok_m.(t) (fun () ->
          incr tok_v.(t);
          S.signal tok_c.(t))
    | Consume t ->
      S.with_lock tok_m.(t) (fun () ->
          while !(tok_v.(t)) = 0 do
            S.wait tok_m.(t) tok_c.(t)
          done;
          decr tok_v.(t))
    | Alert_peer w ->
      if w < nworkers then
        (match workers.(w) with Some th -> S.alert th | None -> ())
    | Poll_alert -> ignore (S.test_alert ())
    | Interrupt_v i ->
      ignore (Firefly.Machine.spawn_interrupt (fun () -> S.v irq.(i)));
      S.p irq.(i)
    | Yield -> S.yield ()
    | Work n -> work n
  in
  let interp ops () = List.iter exec ops in
  List.iteri (fun i ops -> workers.(i) <- Some (S.fork (interp ops))) p.threads;
  interp p.main ();
  Array.iter (function Some t -> S.join t | None -> ()) workers;
  "ok"

let to_workload ~name p =
  {
    Wl.name;
    description =
      Printf.sprintf "generated: %d worker(s), %d ops" (List.length p.threads)
        (size p);
    needs = needs p;
    body = body p;
  }
