module Bk = Threads_backend.Backend
module Cc = Threads_backend.Crosscheck
module Workload = Threads_backend.Workload
module Rng = Threads_util.Rng
module P = Threads_model.Program
module Checker = Threads_model.Checker
module Conformance = Threads_model.Conformance
module Spec_mutants = Threads_staticcheck.Spec_mutants
module Sort = Spec_core.Sort

type row = {
  r_mutant : string;
  r_expected : string;
  r_killed : string option;
}

(* ---- abstraction: Prog.t -> model scenario ---- *)

let abstract (p : Prog.t) =
  let m i = Printf.sprintf "m%d" i
  and s i = Printf.sprintf "s%d" i
  and fm i = Printf.sprintf "fm%d" i
  and fc i = Printf.sprintf "fc%d" i
  and tm i = Printf.sprintf "tm%d" i
  and tc i = Printf.sprintf "tc%d" i
  and irq i = Printf.sprintf "irq%d" i in
  let objects =
    List.concat
      [
        List.init p.Prog.mutexes (fun i -> (m i, Sort.Thread));
        List.init p.Prog.sems (fun i -> (s i, Sort.Semaphore));
        List.concat
          (List.init p.Prog.flags (fun i ->
               [ (fm i, Sort.Thread); (fc i, Sort.Thread_set) ]));
        List.concat
          (List.init p.Prog.tokens (fun i ->
               [ (tm i, Sort.Thread); (tc i, Sort.Thread_set) ]));
        List.init p.Prog.irqs (fun i -> (irq i, Sort.Semaphore));
      ]
  in
  let acquire x = P.call "Acquire" [ P.Aobj x ]
  and release x = P.call "Release" [ P.Aobj x ] in
  let steps_of_op = function
    | Prog.Lock (ms, _) ->
      List.map (fun i -> acquire (m i)) ms
      @ List.rev_map (fun i -> release (m i)) ms
    | Prog.Sem (i, _) | Prog.Timed_sem (i, _) ->
      [ P.call "P" [ P.Aobj (s i) ]; P.call "V" [ P.Aobj (s i) ] ]
    | Prog.Await i | Prog.Timed_await i ->
      [
        acquire (fm i);
        P.call "Wait" [ P.Aobj (fm i); P.Aobj (fc i) ];
        release (fm i);
      ]
    | Prog.Alert_await i ->
      [
        acquire (fm i);
        P.call "AlertWait" [ P.Aobj (fm i); P.Aobj (fc i) ];
        release (fm i);
      ]
    | Prog.Set_flag i ->
      [ acquire (fm i); P.call "Broadcast" [ P.Aobj (fc i) ]; release (fm i) ]
    | Prog.Produce i ->
      [ acquire (tm i); P.call "Signal" [ P.Aobj (tc i) ]; release (tm i) ]
    | Prog.Consume i ->
      [
        acquire (tm i);
        P.call "Wait" [ P.Aobj (tm i); P.Aobj (tc i) ];
        release (tm i);
      ]
    | Prog.Alert_peer w -> [ P.call "Alert" [ P.Athread w ] ]
    | Prog.Poll_alert -> [ P.call "TestAlert" [] ]
    | Prog.Interrupt_v i ->
      [ P.call "V" [ P.Aobj (irq i) ]; P.call "P" [ P.Aobj (irq i) ] ]
    | Prog.Yield | Prog.Work _ -> []
  in
  let program ops = List.concat_map steps_of_op ops in
  P.make ~name:"gen-abstract" ~objects
    ~programs:(List.map program p.Prog.threads @ [ program p.Prog.main ])
    ~allow_deadlock:true ()

(* ---- differential fingerprints ---- *)

let errors_sig (es : Conformance.error list) =
  List.map
    (fun (e : Conformance.error) ->
      (e.Conformance.index, e.Conformance.event.Spec_trace.action,
       e.Conformance.message))
    es

let conformance_sig iface trace =
  match Conformance.check iface trace with
  | r ->
    Ok (errors_sig r.Conformance.errors,
        errors_sig r.Conformance.requires_violations)
  | exception _ -> Error "raised"

let checker_sig iface scenario =
  match Checker.run ~max_states:200_000 iface scenario with
  | r ->
    Ok
      ( (match r.Checker.violation with
        | None -> ""
        | Some v ->
          (match v.Checker.kind with
          | `Invariant -> "invariant: "
          | `Deadlock -> "deadlock: "
          | `Requires -> "requires: ")
          ^ v.Checker.message),
        r.Checker.states,
        r.Checker.transitions )
  | exception _ -> Error "raised"

(* ---- the table ---- *)

let policies = [| Generate.Safe; Generate.Free; Generate.Irq |]

(* Directed-pool predicates over generated programs: rejection-sample the
   generator's own stream for the shapes a mutant class needs.  A shared
   semaphore exercises P's enabling condition; an alert aimed at a parked
   [alert_wait] exercises AlertResume's Alerted case. *)

let sem_indices ops =
  List.filter_map
    (function Prog.Sem (s, _) | Prog.Timed_sem (s, _) -> Some s | _ -> None)
    ops

let has_sem_contention (p : Prog.t) =
  let bodies = p.Prog.main :: p.Prog.threads in
  List.exists
    (fun s ->
      List.length (List.filter (fun ops -> List.mem s (sem_indices ops)) bodies)
      >= 2)
    (List.sort_uniq compare (List.concat_map sem_indices bodies))

(* The alerter must live in a body other than the waiter's own — a
   self-alert after the wait never reaches AlertResume's Alerted case. *)
let has_alert_handshake (p : Prog.t) =
  List.exists
    (fun w ->
      (match List.nth_opt p.Prog.threads w with
      | Some ops ->
        List.exists (function Prog.Alert_await _ -> true | _ -> false) ops
      | None -> false)
      && List.exists
           (fun (i, ops) ->
             i <> w
             && List.exists
                  (function Prog.Alert_peer x -> x = w | _ -> false)
                  ops)
           ((-1, p.Prog.main)
           :: List.mapi (fun i ops -> (i, ops)) p.Prog.threads))
    (List.init (List.length p.Prog.threads) Fun.id)

(* First [want] programs of the (seed, features) generation stream that
   satisfy [pred]; bounded scan keeps the table total. *)
let collect ~seed ~features ~want pred =
  let rec go i acc found =
    if found >= want || i >= 400 then List.rev acc
    else
      let rng = Rng.cell ~base:seed ~index:i in
      let policy = policies.(i mod Array.length policies) in
      let program = Generate.program ~small:true ~policy ~features rng in
      if pred program then
        go (i + 1) ((i, program, Rng.int rng 1_000_000) :: acc) (found + 1)
      else go (i + 1) acc found
  in
  go 0 [] 0

let all_features =
  [ Workload.Alerts; Workload.Timeouts; Workload.Interrupts ]

let kill_table ?(scenarios = 12) ~seed () =
  let pristine = Spec_core.Threads_interface.final in
  (* Concrete material: (label, trace) per generated run.  The conforming
     simulator gives clean traces (catches strengthened mutants); the
     divergent baselines give violating traces (catches weakened ones);
     the directed alert-handshake pool gives traces through AlertResume's
     Alerted case (catches its ENSURES/WHEN mutants).  Handshake programs
     run under several schedule seeds — the alert only lands in the
     window on some interleavings. *)
  let backends = List.filter_map Bk.find [ "sim"; "naive"; "hoare" ] in
  let trace_of (b : Bk.t) program run_seed =
    let wl = Prog.to_workload ~name:"gen-mutant" program in
    (Cc.run_one b wl ~seed:run_seed).Cc.outcome.Bk.trace
  in
  let general =
    List.concat_map
      (fun (b : Bk.t) ->
        List.map
          (fun (i, program, run_seed) ->
            ( Printf.sprintf "%s trace, scenario %d" b.Bk.name i,
              trace_of b program run_seed ))
          (collect ~seed:(seed + 0x7ace) ~features:b.Bk.supports
             ~want:scenarios (fun _ -> true)))
      backends
  in
  let handshakes =
    match Bk.find "sim" with
    | None -> []
    | Some sim ->
      List.concat_map
        (fun (i, program, run_seed) ->
          List.init 4 (fun k ->
              ( Printf.sprintf "sim alert-handshake, scenario %d seed#%d" i k,
                trace_of sim program (run_seed + k) )))
        (collect ~seed:(seed + 0xa1e7) ~features:all_features ~want:4
           has_alert_handshake)
  in
  let traces = general @ handshakes in
  (* Abstract material: small scenarios model-checked exhaustively, plus
     a directed semaphore-contention pool — enabling-condition mutants
     (dropped or contradictory WHEN) only change the state graph where
     two threads actually contend. *)
  let abstracts =
    List.map
      (fun (i, program, _) -> (Printf.sprintf "scenario %d" i, abstract program))
      (collect ~seed:(seed + 0xab5) ~features:all_features
         ~want:(min scenarios 8) (fun _ -> true))
    @ List.map
        (fun (i, program, _) ->
          (Printf.sprintf "sem-contention scenario %d" i, abstract program))
        (collect ~seed:(seed + 0x5e8) ~features:all_features ~want:4
           has_sem_contention)
  in
  (* Pristine fingerprints are mutant-independent: compute each once. *)
  let traces =
    List.map (fun (l, t) -> (l, t, conformance_sig pristine t)) traces
  in
  let abstracts =
    List.map (fun (l, s) -> (l, s, checker_sig pristine s)) abstracts
  in
  let kill (m : Spec_mutants.t) =
    let concrete =
      List.find_map
        (fun (label, trace, psig) ->
          if psig <> conformance_sig m.Spec_mutants.m_iface trace then
            Some ("concrete: " ^ label)
          else None)
        traces
    in
    match concrete with
    | Some _ as k -> k
    | None ->
      List.find_map
        (fun (label, scenario, psig) ->
          if psig <> checker_sig m.Spec_mutants.m_iface scenario then
            Some ("abstract: model check, " ^ label)
          else None)
        abstracts
  in
  List.map
    (fun (m : Spec_mutants.t) ->
      {
        r_mutant = m.Spec_mutants.m_name;
        r_expected = m.Spec_mutants.m_expected;
        r_killed = kill m;
      })
    Spec_mutants.all

let killed rows =
  List.length (List.filter (fun r -> r.r_killed <> None) rows)

let render ppf rows =
  Format.fprintf ppf "mutant kill table (%d/%d killed)@." (killed rows)
    (List.length rows);
  List.iter
    (fun r ->
      Format.fprintf ppf "  %-32s %-28s %s@." r.r_mutant r.r_expected
        (match r.r_killed with
        | Some how -> "KILLED (" ^ how ^ ")"
        | None -> "survived"))
    rows
