(** Generated client programs.

    A program is a random object graph — mutexes, flag conditions and
    token conditions (each with its own protecting mutex), bracketed
    semaphores, interrupt semaphores — plus one straight-line op list per
    worker thread and one for the root thread.  Lifting into
    {!Threads_backend.Workload.t} interprets the ops against any
    backend's [SYNC] implementation, so one generated program runs
    unmodified on every registered backend and its trace is checked
    against the spec exactly like the hand-written workloads. *)

type op =
  | Lock of int list * int
      (** acquire the mutex subset in list order (sorted under the safe
          policy = global lock order), spin [work] yields innermost,
          release in reverse *)
  | Sem of int * int  (** bracketed [P s; work; V s] *)
  | Timed_sem of int * int
      (** [TimedP s ~timeout]; on success V, on expiry skip *)
  | Await of int  (** flag condition: Mesa loop until the flag is set *)
  | Timed_await of int  (** Mesa loop via TimedWait; expiries re-loop *)
  | Alert_await of int
      (** Mesa loop via AlertWait; an alert exits the loop *)
  | Set_flag of int  (** set the flag under its mutex, then Broadcast *)
  | Produce of int  (** token condition: increment counter, Signal *)
  | Consume of int  (** token condition: Mesa-wait for a token, take it *)
  | Alert_peer of int  (** alert worker [i] (no-op if out of range) *)
  | Poll_alert  (** TestAlert on self *)
  | Interrupt_v of int
      (** raise an interrupt whose handler Vs interrupt semaphore [i],
          then P it — the paper's device-wakeup handshake *)
  | Yield
  | Work of int  (** [work] yields *)

type t = {
  mutexes : int;  (** plain mutexes, for [Lock] *)
  sems : int;  (** bracketed semaphores, all initially available *)
  flags : int;  (** flag conditions (own mutex + bool each) *)
  tokens : int;  (** token conditions (own mutex + counter each) *)
  irqs : int;  (** interrupt semaphores, initially unavailable *)
  threads : op list list;  (** worker bodies, forked by the root *)
  main : op list;  (** run by the root between fork and join *)
}

(** Total op count across workers and root — the shrinker's primary
    size measure (the acceptance bar for minimal counterexamples). *)
val size : t -> int

(** Total parameter magnitude (work ticks, lock-set widths, timeouts) —
    the shrinker's secondary measure, so in-place simplifications also
    terminate. *)
val weight : t -> int

(** Backend features the program's ops require. *)
val needs : t -> Threads_backend.Workload.feature list

(** Drop unreferenced objects and renumber the remaining ones densely
    (first-use order); clamp worker references that point past the last
    worker.  Canonical form makes shrunk programs comparable and keeps
    replay files self-consistent. *)
val canonicalize : t -> t

(** One-line op encoding, e.g. [lock 0,2 3], [await 0], [irqv 1]; used
    by both the renderer and replay files.  [decode_op (encode_op o) =
    Some o]. *)
val encode_op : op -> string

val decode_op : string -> op option

(** Multi-line human rendering (deterministic). *)
val render : Format.formatter -> t -> unit

(** [to_workload ~name p] — the program as a backend-generic workload;
    [needs] is {!needs}[ p], the observable is a constant (generated
    programs assert nothing about results — divergence shows up as
    deadlock or spec violations). *)
val to_workload : name:string -> t -> Threads_backend.Workload.t
