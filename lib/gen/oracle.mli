(** Run one generated scenario and classify the outcome.

    A scenario is the (program, schedule seed, fault plan) triple the
    tentpole shrinks.  Classification is policy-aware: a deadlock is a
    counterexample only under policies that guarantee deadlock-freedom
    on a correct backend ({!Generate.deadlock_is_failure}). *)

type scenario = {
  program : Prog.t;
  policy : Generate.policy;
  seed : int;  (** schedule seed *)
  plan : Threads_fault.Plan.t option;  (** [Some] = run under the chaos engine *)
}

type kind =
  | Violation of string
      (** the trace broke the spec; payload is the violating action name
          (e.g. ["Resume"]) — the shrinker preserves it *)
  | Stranded  (** deadlock under a deadlock-free-by-construction policy *)
  | Exhausted  (** step budget spent — livelock or lost progress *)
  | Crashed of string  (** a thread died with an exception *)
  | Unexplained
      (** chaos mode: a failure with no injected fault to blame *)

type classification =
  | Pass of string  (** benign label: "conformant", "diagnosed", ... *)
  | Fail of kind * string  (** kind + one-line detail *)

val kind_name : kind -> string

(** Parse [kind_name]'s rendering back (replay-file [expect] lines). *)
val kind_of_string : string -> kind option

(** Same failure, for shrink acceptance: constructor equality, and equal
    violating actions for [Violation]. *)
val same_kind : kind -> kind -> bool

val scenario_size : scenario -> int

(** Secondary shrink measure: program weight + plan weight. *)
val scenario_weight : scenario -> int

(** [run backend scenario] — execute and classify.  Raises
    [Invalid_argument] if [scenario.plan] is [Some _] but [backend] has
    no chaos driver, or if the backend lacks a feature the program
    needs. *)
val run : Threads_backend.Backend.t -> scenario -> classification
