(** Generation matrices: N scenarios over the work-stealing executor.

    Cell [i] of a campaign draws its program from the
    [Rng.cell ~base:seed ~index:i] stream (and, in chaos mode, a fault
    plan from a sub-stream), runs it, and classifies the result.  Results
    keep index order and the counterexample selected for shrinking is the
    lowest-index failure, so the whole report — including the minimized
    scenario — is byte-identical at any [jobs]. *)

type config = {
  policy : Generate.policy;
  runs : int;
  seed : int;  (** campaign base seed *)
  chaos : bool;  (** compose each scenario with a generated fault plan *)
  shrink : bool;  (** minimize the first counterexample *)
}

type result = {
  backend : Threads_backend.Backend.t;
  config : config;
  classes : (string * int) list;  (** label -> count, first-seen order *)
  failures : (int * Oracle.kind) list;  (** (run index, kind) *)
  first_failure : (int * Oracle.scenario * Oracle.kind * string) option;
  minimal : (Replay.file * Shrink.step list) option;
      (** shrunk first failure, when [shrink] *)
}

(** The scenario cell [index] runs — pure in [(config, backend, index)];
    [--replay]-independent reproduction of any campaign cell. *)
val scenario_of_cell :
  config -> Threads_backend.Backend.t -> int -> Oracle.scenario

(** Raises [Invalid_argument] if [config.chaos] and [backend] has no
    chaos driver. *)
val run :
  ?telemetry:Threads_runner.Telemetry.sink ->
  ?jobs:int ->
  Threads_backend.Backend.t ->
  config ->
  result

(** Deterministic report: equal (backend, config) render byte-equal. *)
val render : Format.formatter -> result -> unit
