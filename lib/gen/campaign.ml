module Bk = Threads_backend.Backend
module Plan = Threads_fault.Plan
module Rng = Threads_util.Rng
module Matrix = Threads_runner.Matrix
module Telemetry = Threads_runner.Telemetry

type config = {
  policy : Generate.policy;
  runs : int;
  seed : int;
  chaos : bool;
  shrink : bool;
}

type result = {
  backend : Bk.t;
  config : config;
  classes : (string * int) list;
  failures : (int * Oracle.kind) list;
  first_failure : (int * Oracle.scenario * Oracle.kind * string) option;
  minimal : (Replay.file * Shrink.step list) option;
}

let scenario_of_cell config (backend : Bk.t) index =
  let rng = Rng.cell ~base:config.seed ~index in
  let program =
    Generate.program ~policy:config.policy ~features:backend.Bk.supports rng
  in
  let seed = Rng.int rng 1_000_000 in
  (* The plan draws its own stream, keyed off this cell's, so adding
     chaos never perturbs the program the cell generates. *)
  let plan =
    if config.chaos then Some (Plan.random ~seed:(Rng.next rng) ~id:index)
    else None
  in
  { Oracle.program; policy = config.policy; seed; plan }

let label_of = function
  | Oracle.Pass label -> label
  | Oracle.Fail (kind, _) -> Oracle.kind_name kind

let run ?telemetry ?(jobs = 1) (backend : Bk.t) config =
  if config.chaos && backend.Bk.chaos = None then
    invalid_arg
      (Printf.sprintf "generate: backend %s has no chaos driver"
         backend.Bk.name);
  let cells =
    Matrix.map ?telemetry ~jobs ~n:config.runs (fun i ->
        let s = scenario_of_cell config backend i in
        (s, Oracle.run backend s))
  in
  let classes = Hashtbl.create 8 in
  let order = ref [] in
  let failures = ref [] in
  let first_failure = ref None in
  Array.iteri
    (fun i (s, c) ->
      let label = label_of c in
      (if not (Hashtbl.mem classes label) then order := label :: !order);
      Hashtbl.replace classes label
        (1 + Option.value ~default:0 (Hashtbl.find_opt classes label));
      match c with
      | Oracle.Pass _ -> ()
      | Oracle.Fail (kind, detail) ->
        failures := (i, kind) :: !failures;
        if !first_failure = None then
          first_failure := Some (i, s, kind, detail))
    cells;
  let minimal =
    match (config.shrink, !first_failure) with
    | true, Some (_, s, kind, _) ->
      let minimal, trail = Shrink.minimize backend s kind in
      Some
        ( {
            Replay.backend = backend.Bk.name;
            scenario = minimal;
            expect = Some kind;
          },
          trail )
    | _ -> None
  in
  {
    backend;
    config;
    classes =
      List.rev_map (fun l -> (l, Hashtbl.find classes l)) !order;
    failures = List.rev !failures;
    first_failure = !first_failure;
    minimal;
  }

let render ppf r =
  let c = r.config in
  Format.fprintf ppf
    "generate: backend=%s policy=%s runs=%d seed=%d chaos=%s@."
    r.backend.Bk.name
    (Generate.policy_name c.policy)
    c.runs c.seed
    (if c.chaos then "on" else "off");
  Format.fprintf ppf "  classes:";
  List.iter (fun (l, n) -> Format.fprintf ppf " %s=%d" l n) r.classes;
  Format.fprintf ppf "@.";
  Format.fprintf ppf "  failures: %d@." (List.length r.failures);
  (match r.first_failure with
  | None -> ()
  | Some (i, s, kind, detail) ->
    Format.fprintf ppf "  first counterexample: run %d, %s@." i
      (Oracle.kind_name kind);
    Format.fprintf ppf "    %s@." detail;
    Format.fprintf ppf "    size %d ops, weight %d@."
      (Oracle.scenario_size s) (Oracle.scenario_weight s));
  match r.minimal with
  | None -> ()
  | Some (file, trail) ->
    let s = file.Replay.scenario in
    Format.fprintf ppf
      "  shrink: %d accepted steps -> %d ops (weight %d)@."
      (List.length trail) (Oracle.scenario_size s)
      (Oracle.scenario_weight s);
    List.iter
      (fun st ->
        Format.fprintf ppf "    %s -> size %d weight %d@."
          st.Shrink.st_action st.Shrink.st_size st.Shrink.st_weight)
      trail;
    Format.fprintf ppf "  minimal counterexample:@.";
    Format.fprintf ppf "%s"
      (String.concat ""
         (List.map
            (fun l -> "    | " ^ l ^ "\n")
            (String.split_on_char '\n' (String.trim (Replay.to_string file)))))
