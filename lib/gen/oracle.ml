module Bk = Threads_backend.Backend
module Cc = Threads_backend.Crosscheck
module Plan = Threads_fault.Plan
module Conformance = Threads_model.Conformance

type scenario = {
  program : Prog.t;
  policy : Generate.policy;
  seed : int;
  plan : Plan.t option;
}

type kind =
  | Violation of string
  | Stranded
  | Exhausted
  | Crashed of string
  | Unexplained

type classification = Pass of string | Fail of kind * string

let kind_name = function
  | Violation action -> "violation:" ^ action
  | Stranded -> "stranded"
  | Exhausted -> "exhausted"
  | Crashed _ -> "crashed"
  | Unexplained -> "unexplained"

let kind_of_string s =
  match String.split_on_char ':' (String.trim s) with
  | [ "violation"; action ] -> Some (Violation action)
  | [ "stranded" ] -> Some Stranded
  | [ "exhausted" ] -> Some Exhausted
  | [ "crashed" ] -> Some (Crashed "")
  | [ "unexplained" ] -> Some Unexplained
  | _ -> None

(* Crash payloads carry tids and exception texts that legitimately vary
   while shrinking; the crash itself is the invariant. *)
let same_kind a b =
  match (a, b) with
  | Violation x, Violation y -> x = y
  | Stranded, Stranded | Exhausted, Exhausted | Unexplained, Unexplained
  | Crashed _, Crashed _ -> true
  | _ -> false

let scenario_size s = Prog.size s.program

let scenario_weight s =
  Prog.weight s.program
  + match s.plan with None -> 0 | Some p -> Plan.weight p

let first_violation (report : Conformance.report) =
  match report.Conformance.errors with
  | [] -> None
  | e :: _ ->
    Some
      ( e.Conformance.event.Spec_trace.action,
        Printf.sprintf "event %d (%s): %s" e.Conformance.index
          e.Conformance.event.Spec_trace.action e.Conformance.message )

let workload s = Prog.to_workload ~name:"gen" s.program

let run (backend : Bk.t) s =
  let wl = workload s in
  if not (Bk.supports backend wl) then
    invalid_arg
      (Printf.sprintf "oracle: backend %s lacks a feature program needs"
         backend.Bk.name);
  match s.plan with
  | None -> (
    let cell = Cc.run_one backend wl ~seed:s.seed in
    match first_violation cell.Cc.report with
    | Some (action, detail) -> Fail (Violation action, detail)
    | None -> (
      match cell.Cc.outcome.Bk.verdict with
      | Bk.Completed -> Pass "conformant"
      | Bk.Deadlocked ->
        if Generate.deadlock_is_failure s.policy then
          Fail (Stranded, "deadlock under a deadlock-free-by-construction policy")
        else Pass "deadlock (free policy)"
      | Bk.Crashed msg when msg = "step limit" ->
        if Generate.deadlock_is_failure s.policy then
          Fail (Exhausted, "step budget exhausted")
        else Pass "step budget (free policy)"
      | Bk.Crashed msg -> Fail (Crashed msg, msg)))
  | Some plan -> (
    let r = Cc.chaos_one backend wl ~seed:s.seed plan in
    match r.Cc.c_class with
    | Cc.Conformant -> Pass "conformant"
    | Cc.Diagnosed -> Pass "diagnosed"
    | Cc.Violation -> (
      match first_violation r.Cc.c_report with
      | Some (action, detail) -> Fail (Violation action, detail)
      | None -> Fail (Violation "?", "violation with empty error list"))
    | Cc.Unexplained ->
      Fail
        ( Unexplained,
          Format.asprintf "unexplained %a"
            Threads_fault.Engine.pp_verdict
            r.Cc.c_outcome.Threads_fault.Engine.verdict ))
