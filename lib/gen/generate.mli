(** Policy-driven random program generation.

    All randomness is drawn from one {!Threads_util.Rng.t}, so a program
    is a pure function of (policy, feature set, rng state) — generation
    matrices give each cell its own [Rng.cell] stream and stay
    deterministic at any worker count. *)

type policy =
  | Safe
      (** deadlock-free by construction: nested locks in global order,
          bracketed semaphore regions, every awaited flag set by the
          root, token produce/consume balanced, per-thread interrupt
          semaphores.  On a conforming backend every Safe program
          terminates, so a deadlock {e is} a counterexample. *)
  | Free
      (** drops the Safe invariants: unordered lock nesting, workers may
          produce/set flags, the root may leave flags unset.  Deadlock
          is expected; only spec violations count as counterexamples. *)
  | Irq
      (** Safe, with every worker raising interrupts ([Interrupt_v]) —
          the paper's device-wakeup handshake under load.  Degenerates
          to Safe when the backend lacks the [Interrupts] feature. *)

val policy_name : policy -> string
val policy_of_string : string -> policy option
val policies : policy list

(** [program ~policy ~features rng] draws a program whose ops use only
    capabilities in [features] (a backend's [supports] list).  [small]
    caps the program at two workers and three ops per thread — the shape
    the spec-level mutant killer can model-check exhaustively. *)
val program :
  ?small:bool ->
  policy:policy ->
  features:Threads_backend.Workload.feature list ->
  Threads_util.Rng.t ->
  Prog.t

(** Deadlocks count as counterexamples only under policies that
    guarantee deadlock-freedom on a correct backend. *)
val deadlock_is_failure : policy -> bool
