module Rng = Threads_util.Rng
module Wl = Threads_backend.Workload

type policy = Safe | Free | Irq

let policy_name = function Safe -> "safe" | Free -> "free" | Irq -> "irq"

let policy_of_string = function
  | "safe" -> Some Safe
  | "free" -> Some Free
  | "irq" -> Some Irq
  | _ -> None

let policies = [ Safe; Free; Irq ]
let deadlock_is_failure = function Safe | Irq -> true | Free -> false

(* Weighted choice over a frequency table; the table is filtered before
   drawing so unavailable entries never consume randomness. *)
let frequency rng table =
  let table = List.filter (fun (w, _) -> w > 0) table in
  let total = List.fold_left (fun a (w, _) -> a + w) 0 table in
  let rec pick n = function
    | [] -> invalid_arg "frequency: empty table"
    | (w, x) :: rest -> if n < w then x else pick (n - w) rest
  in
  pick (Rng.int rng total) table

(* A sorted, duplicate-free random subset of [0..n-1] of size <= k. *)
let ordered_subset rng n k =
  let want = 1 + Rng.int rng k in
  let rec draw acc = function
    | 0 -> acc
    | i ->
      let m = Rng.int rng n in
      draw (if List.mem m acc then acc else m :: acc) (i - 1)
  in
  List.sort_uniq compare (draw [] want)

(* Unordered variant for the Free policy: still duplicate-free (nested
   re-acquisition self-deadlocks trivially and teaches nothing) but in
   random order, so opposite nesting orders can collide. *)
let unordered_subset rng n k =
  let subset = ordered_subset rng n k in
  let arr = Array.of_list subset in
  Rng.shuffle rng arr;
  Array.to_list arr

let program ?(small = false) ~policy ~features rng =
  let has f = List.mem f features in
  let alerts = has Wl.Alerts and timeouts = has Wl.Timeouts in
  let irqs_ok = has Wl.Interrupts in
  let policy = if policy = Irq && not irqs_ok then Safe else policy in
  let cap hi = if small then min hi 2 else hi in
  let mutexes = 1 + Rng.int rng (cap 3) in
  let sems = 1 + Rng.int rng (cap 2) in
  let flags = Rng.int rng (1 + cap 2) in
  let tokens = Rng.int rng (1 + cap 2) in
  let nworkers = 1 + Rng.int rng (cap 3) in
  (* Interrupt semaphores are binary: concurrent handshakes on a shared
     one would coalesce their Vs and deadlock even on a correct backend,
     so each thread owns its own (worker i -> irq i, root -> irq
     nworkers); canonicalize compacts the unused ones away. *)
  let irqs = if irqs_ok then nworkers + 1 else 0 in
  let max_ops = if small then 3 else 5 in
  let ticks () = Rng.int rng 4 in
  let patience () = 100 + (50 * Rng.int rng 4) in
  let gen_op ~in_worker ~self =
    let lock () =
      let subset =
        if policy = Free then unordered_subset rng mutexes 2
        else ordered_subset rng mutexes 2
      in
      Prog.Lock (subset, ticks ())
    in
    let free = policy = Free in
    (* Flag waits and token consumes block until the root's coverage
       tail runs, so under Safe they may only appear in workers — the
       root awaiting a flag it has yet to set would deadlock a correct
       backend. *)
    let may_block = in_worker || free in
    frequency rng
      [
        (4, `Lock);
        (2, `Sem);
        ((if timeouts then 1 else 0), `Timed_sem);
        ((if may_block && flags > 0 then 3 else 0), `Await);
        ((if may_block && timeouts && flags > 0 then 1 else 0), `Timed_await);
        ((if may_block && alerts && flags > 0 then 2 else 0), `Alert_await);
        ((if free && flags > 0 then 2 else 0), `Set_flag);
        ((if free && tokens > 0 then 2 else 0), `Produce);
        ((if may_block && tokens > 0 then 2 else 0), `Consume);
        ((if alerts && nworkers > 0 then 1 else 0), `Alert_peer);
        ((if alerts then 1 else 0), `Poll_alert);
        ((if policy = Irq then 3 else if irqs_ok then 1 else 0), `Interrupt_v);
        (1, `Yield);
        (2, `Work);
      ]
    |> function
    | `Lock -> lock ()
    | `Sem -> Prog.Sem (Rng.int rng sems, ticks ())
    | `Timed_sem -> Prog.Timed_sem (Rng.int rng sems, patience ())
    | `Await -> Prog.Await (Rng.int rng flags)
    | `Timed_await -> Prog.Timed_await (Rng.int rng flags)
    | `Alert_await -> Prog.Alert_await (Rng.int rng flags)
    | `Set_flag -> Prog.Set_flag (Rng.int rng flags)
    | `Produce -> Prog.Produce (Rng.int rng tokens)
    | `Consume -> Prog.Consume (Rng.int rng tokens)
    | `Alert_peer -> Prog.Alert_peer (Rng.int rng nworkers)
    | `Poll_alert -> Prog.Poll_alert
    | `Interrupt_v -> Prog.Interrupt_v self
    | `Yield -> Prog.Yield
    | `Work -> Prog.Work (1 + Rng.int rng 3)
  in
  let threads =
    List.init nworkers (fun i ->
        let n = 1 + Rng.int rng max_ops in
        List.init n (fun _ -> gen_op ~in_worker:true ~self:i))
  in
  (* Start-barrier pattern: with probability 1/2 every worker first
     awaits a dedicated shared flag the root sets once (via the coverage
     tail below).  This parks all workers on one condition before the
     broadcast — the paper's E5 shape, where a broadcast that coalesces
     wakeups strands the rest of the crowd. *)
  let barrier = nworkers >= 2 && Rng.int rng 2 = 0 in
  let flags = if barrier then flags + 1 else flags in
  let threads =
    if barrier then
      List.map (fun ops -> Prog.Await (flags - 1) :: ops) threads
    else threads
  in
  (* Alert-handshake pattern: with probability 1/3 (alerts available)
     one worker opens with [alert_wait] on a dedicated flag {e nobody
     sets} — its only way out is the root's Alert, so the run drives
     AlertResume's Alerted case while the waiter is enqueued.  The flag
     stays exempt from the coverage tail below; termination comes from
     the alert itself. *)
  let handshake = alerts && Rng.int rng 3 = 0 in
  let hs_flag = flags in
  let hs_waiter = if handshake then Rng.int rng nworkers else -1 in
  let flags = if handshake then flags + 1 else flags in
  let threads =
    if handshake then
      List.mapi
        (fun i ops ->
          if i = hs_waiter then Prog.Alert_await hs_flag :: ops else ops)
        threads
    else threads
  in
  let main_prefix =
    let n = Rng.int rng (1 + (max_ops / 2)) in
    List.init n (fun _ -> gen_op ~in_worker:false ~self:nworkers)
  in
  let main_prefix =
    if handshake then main_prefix @ [ Prog.Alert_peer hs_waiter ]
    else main_prefix
  in
  (* The Safe contract: the root covers every consumed token and sets
     every awaited flag after its own prefix, so all workers terminate.
     Free covers each obligation only with probability 3/4 — stranding
     is allowed there and classified accordingly. *)
  let covers () = policy <> Free || Rng.int rng 4 < 3 in
  let consumed t =
    List.fold_left
      (fun a ops ->
        a
        + List.fold_left
            (fun a o -> if o = Prog.Consume t then a + 1 else a)
            0 ops)
      0 threads
  in
  let produces =
    List.concat
      (List.init tokens (fun t ->
           let missing =
             consumed t
             - List.fold_left
                 (fun a o -> if o = Prog.Produce t then a + 1 else a)
                 0
                 (main_prefix @ List.concat threads)
           in
           if missing > 0 && covers () then
             List.init missing (fun _ -> Prog.Produce t)
           else []))
  in
  let awaited f =
    List.exists
      (List.exists (function
        | Prog.Await g | Prog.Timed_await g | Prog.Alert_await g -> g = f
        | _ -> false))
      threads
  in
  let already_set f =
    List.exists
      (fun o -> o = Prog.Set_flag f)
      (main_prefix @ List.concat threads)
  in
  let set_flags =
    List.concat
      (List.init flags (fun f ->
           if
             awaited f
             && (not (handshake && f = hs_flag))
             && (not (already_set f))
             && covers ()
           then [ Prog.Set_flag f ]
           else []))
  in
  Prog.canonicalize
    {
      Prog.mutexes;
      sems;
      flags;
      tokens;
      irqs;
      threads;
      main = main_prefix @ produces @ set_flags;
    }
