(** Deterministic greedy minimization of a failing scenario.

    Given a (program, seed, plan) triple whose run fails with some
    {!Oracle.kind}, repeatedly try strictly-simpler candidates — drop a
    worker, drop an op, narrow a lock set, halve a magnitude, drop the
    fault plan or one of its actions — re-running each candidate and
    accepting the first that still fails {e with the same kind}.  The
    candidate order is a pure function of the scenario, and each
    accepted candidate strictly decreases the measure
    [(size, weight, plan-present)], so the result is a unique,
    locally-minimal counterexample: byte-identical for equal inputs,
    independent of how the surrounding campaign was parallelized. *)

type step = {
  st_size : int;  (** accepted candidate's op count *)
  st_weight : int;  (** accepted candidate's secondary weight *)
  st_action : string;  (** which transformation was accepted *)
}

(** [minimize backend scenario kind] — requires that running [scenario]
    on [backend] fails with [kind] (the caller just observed it).
    Returns the minimal scenario and the accepted-step trail (for
    transcripts and the monotonicity tests).

    For the liveness kinds (Stranded, Exhausted) candidates are also run
    on [reference] (default: the [sim] backend) and accepted only if the
    reference completes them — so the minimum is a genuine divergence
    witness, not a program that shrinking made deadlock everywhere. *)
val minimize :
  ?reference:Threads_backend.Backend.t ->
  Threads_backend.Backend.t ->
  Oracle.scenario ->
  Oracle.kind ->
  Oracle.scenario * step list
