(** Mutation adequacy of the generative engine.

    For each seeded spec defect in [Threads_staticcheck.Spec_mutants],
    decide whether generated scenarios distinguish the mutant interface
    from the pristine one — i.e. whether the generator would have caught
    that spec bug.  Two differentials are tried, both deterministic in
    the seed:

    - {e concrete}: run a generated program on a backend, then check the
      one emitted trace against both interfaces; different error sets
      (or REQUIRES counts) kill the mutant.  This catches strengthened
      specs on conforming traces and weakened specs on the divergent
      baselines' violating traces.
    - {e abstract}: translate the generated program into a
      [Threads_model.Program] scenario and exhaustively model-check it
      under both interfaces; a different (violation, states, transitions)
      fingerprint kills the mutant.  This catches enabling-condition
      mutants (dropped WHEN, contradictory guards) that no single
      concrete trace can witness. *)

type row = {
  r_mutant : string;  (** [Spec_mutants] name *)
  r_expected : string;  (** the static verifier's diagnostic class *)
  r_killed : string option;  (** first killing evidence, [None] = survived *)
}

(** Straight-line abstraction of a generated program: workers become
    programs [0..n-1] (matching [Alert_peer] indices), main becomes
    program [n]; Mesa wait loops flatten to single Wait/AlertWait calls;
    [Yield]/[Work] vanish.  [allow_deadlock] is on — the abstraction
    drops the re-check loops, so stranding is expected, not a finding. *)
val abstract : Prog.t -> Threads_model.Program.t

(** [kill_table ~seed ()] — run every mutant against [scenarios]
    generated programs (default 12) per differential.  Deterministic in
    [seed]. *)
val kill_table : ?scenarios:int -> seed:int -> unit -> row list

val killed : row list -> int
val render : Format.formatter -> row list -> unit
