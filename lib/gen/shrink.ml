module Plan = Threads_fault.Plan

type step = { st_size : int; st_weight : int; st_action : string }

(* ---- candidate enumeration ---- *)

let drop_nth i l = List.filteri (fun j _ -> j <> i) l
let set_nth i x l = List.mapi (fun j y -> if j = i then x else y) l

(* In-place simplifications of one op (strict weight decrease). *)
let simplify_op op =
  let halve w = w / 2 in
  match op with
  | Prog.Lock (ms, w) ->
    (if List.length ms > 1 then
       List.mapi (fun i _ -> Prog.Lock (drop_nth i ms, w)) ms
     else [])
    @ (if w > 0 then [ Prog.Lock (ms, halve w) ] else [])
  | Prog.Sem (s, w) -> if w > 0 then [ Prog.Sem (s, halve w) ] else []
  | Prog.Timed_sem (s, patience) ->
    if patience > 50 then [ Prog.Timed_sem (s, patience / 2) ] else []
  | Prog.Work w -> if w > 0 then [ Prog.Work (halve w) ] else []
  | Prog.Await _ | Prog.Timed_await _ | Prog.Alert_await _ | Prog.Set_flag _
  | Prog.Produce _ | Prog.Consume _ | Prog.Alert_peer _ | Prog.Poll_alert
  | Prog.Interrupt_v _ | Prog.Yield -> []

let candidates (s : Oracle.scenario) =
  let p = s.Oracle.program in
  let with_prog ?(what = "") prog =
    ( { s with Oracle.program = Prog.canonicalize prog },
      what )
  in
  let nworkers = List.length p.Prog.threads in
  let drop_workers =
    List.init nworkers (fun i ->
        with_prog
          ~what:(Printf.sprintf "drop worker %d" i)
          { p with Prog.threads = drop_nth i p.Prog.threads })
  in
  let drop_main_ops =
    List.init (List.length p.Prog.main) (fun j ->
        with_prog
          ~what:(Printf.sprintf "drop main op %d" j)
          { p with Prog.main = drop_nth j p.Prog.main })
  in
  let drop_worker_ops =
    List.concat
      (List.mapi
         (fun i ops ->
           List.init (List.length ops) (fun j ->
               with_prog
                 ~what:(Printf.sprintf "drop worker %d op %d" i j)
                 {
                   p with
                   Prog.threads = set_nth i (drop_nth j ops) p.Prog.threads;
                 }))
         p.Prog.threads)
  in
  let simplify_main =
    List.concat
      (List.mapi
         (fun j op ->
           List.map
             (fun op' ->
               with_prog
                 ~what:(Printf.sprintf "simplify main op %d" j)
                 { p with Prog.main = set_nth j op' p.Prog.main })
             (simplify_op op))
         p.Prog.main)
  in
  let simplify_workers =
    List.concat
      (List.mapi
         (fun i ops ->
           List.concat
             (List.mapi
                (fun j op ->
                  List.map
                    (fun op' ->
                      with_prog
                        ~what:(Printf.sprintf "simplify worker %d op %d" i j)
                        {
                          p with
                          Prog.threads =
                            set_nth i (set_nth j op' ops) p.Prog.threads;
                        })
                    (simplify_op op))
                ops))
         p.Prog.threads)
  in
  let plan_candidates =
    match s.Oracle.plan with
    | None -> []
    | Some plan ->
      ({ s with Oracle.plan = None }, "drop fault plan")
      :: List.map
           (fun plan' ->
             ( { s with Oracle.plan = Some plan' },
               "shrink fault plan" ))
           (Plan.shrink plan)
  in
  (* Big structural drops first: fastest route to small programs. *)
  drop_workers @ plan_candidates @ drop_main_ops @ drop_worker_ops
  @ simplify_main @ simplify_workers

(* ---- greedy fixpoint ---- *)

let minimize ?reference backend (scenario : Oracle.scenario) kind =
  let reference =
    match reference with
    | Some _ -> reference
    | None -> Threads_backend.Backend.find "sim"
  in
  (* Liveness kinds need a differential guard: "stranded" must mean the
     {e backend} strands the program, not that shrinking broke the
     policy's coverage invariant and produced a program that deadlocks
     everywhere.  A candidate survives only if the reference conforming
     backend still completes it. *)
  let reference_clean c =
    match kind with
    | Oracle.Violation _ | Oracle.Crashed _ | Oracle.Unexplained -> true
    | Oracle.Stranded | Oracle.Exhausted -> (
      match reference with
      | Some r when r.Threads_backend.Backend.name <> backend.Threads_backend.Backend.name -> (
        match Oracle.run r { c with Oracle.plan = None } with
        | Oracle.Pass _ -> true
        | Oracle.Fail _ -> false
        | exception Invalid_argument _ -> false)
      | _ -> true)
  in
  let accept c =
    match Oracle.run backend c with
    | Oracle.Fail (k, _) when Oracle.same_kind kind k -> reference_clean c
    | _ -> false
    | exception Invalid_argument _ -> false
  in
  let rec go s trail =
    match List.find_opt (fun (c, _) -> accept c) (candidates s) with
    | Some (c, what) ->
      let st =
        {
          st_size = Oracle.scenario_size c;
          st_weight = Oracle.scenario_weight c;
          st_action = what;
        }
      in
      go c (trail @ [ st ])
    | None -> (s, trail)
  in
  go scenario []
