(** Replayable scenario files.

    A minimized counterexample is rendered as a small line-based text
    file — backend, policy, schedule seed, optional fault plan, object
    counts, one line per thread — that [repro generate --replay=FILE]
    (and the corpus regression test) re-runs and re-classifies.  Parsing
    and printing round-trip: [parse (to_string f) = Ok f] for any
    canonical [f]. *)

type file = {
  backend : string;
  scenario : Oracle.scenario;
  expect : Oracle.kind option;
      (** the pinned classification, if the file records one *)
}

val to_string : file -> string
val print : Format.formatter -> file -> unit

(** [parse text] — [Error msg] names the first offending line. *)
val parse : string -> (file, string) result

val load : string -> (file, string) result
val save : string -> file -> unit
