(** Trace conformance: does an implementation execution refine the formal
    specification?

    The checker replays a {!Spec_trace} event sequence, maintaining the
    specification-level abstract state itself (no ghost state in the
    implementation): each event determines the abstract post state — e.g.
    an Acquire event sets the mutex to the emitting thread, a Signal event
    removes exactly the threads listed in [removed].  Every transition is
    then validated against the interface's clauses with
    {!Spec_core.Semantics.check_transition}:

    - some case of the action must have the matching RETURNS/RAISES kind,
      its WHEN true in the pre state and its ENSURES true over (pre, post);
    - objects outside MODIFIES AT MOST must be unchanged;
    - REQUIRES is checked at the procedure's first action (a violation is
      the {e caller's} fault and reported separately);
    - a composition's actions must occur in order, per thread.

    Checking the same trace against a buggy historical variant of the
    specification shows exactly which events that variant cannot explain —
    experiment E7b. *)

type error = {
  index : int;  (** position in the trace *)
  event : Spec_trace.event;
  message : string;
}

type report = {
  events : int;
  errors : error list;  (** spec violations (implementation at fault) *)
  requires_violations : error list;  (** caller obligations broken *)
}

val ok : report -> bool
val pp_report : Format.formatter -> report -> unit

(** [check iface trace] replays [trace] against [iface].  The trace comes
    from any backend's {!Spec_trace.Sink} — this module deliberately knows
    nothing about how an implementation executes, only what it claims its
    atomic actions did. *)
val check : Spec_core.Proc.interface -> Spec_trace.event list -> report
