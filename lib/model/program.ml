module Tid = Threads_util.Tid
open Spec_core

type arg = Aobj of string | Athread of int

type step = { proc : string; args : arg list }

let call proc args = { proc; args }

type phase = Idle of int | Mid of int * int | Done

type view = {
  state : State.t;
  phases : phase array;
  objects : (string * Spec_obj.t) list;
}

let value view name = State.get view.state (List.assoc name view.objects)

(* Spec thread ids: program i runs as thread i+1 (0 is never used, keeping
   ids distinct from NIL-ish defaults in debug output). *)
let tid_of i = i + 1

type t = {
  name : string;
  objects : (string * Sort.t) list;
  programs : step list array;
  invariant : (view -> string option) option;
  allow_deadlock : bool;
  initials : (string * Value.t) list;
  interrupts : int list;
}

let make ~name ~objects ~programs ?invariant ?(allow_deadlock = false)
    ?(initials = []) ?(interrupts = []) () =
  { name; objects; programs = Array.of_list programs; invariant;
    allow_deadlock; initials; interrupts }

let no_stale_waiters ~c ~waits view =
  let members = Value.as_set (value view c) in
  let parked tid =
    (* tid = program index + 1 *)
    let i = tid - 1 in
    i >= 0 && i < Array.length view.phases
    &&
    match view.phases.(i) with
    | Mid (s, k) -> k >= 1 && List.mem (i, s) waits
    | Idle _ | Done -> false
  in
  match Tid.Set.elements (Tid.Set.filter (fun t -> not (parked t)) members) with
  | [] -> None
  | stale ->
    Some
      (Format.asprintf
         "condition %s contains %a which are not parked in any wait" c
         Tid.Set.pp (Tid.Set.of_list stale))

let mutual_exclusion ~regions view =
  let occupied (prog, first, last, wait_steps) =
    match view.phases.(prog) with
    | Done -> false
    | Idle s -> first < s && s <= last
    | Mid (s, k) ->
      first < s && s <= last && not (k >= 1 && List.mem s wait_steps)
  in
  let inside = List.filter occupied regions in
  if List.length inside > 1 then
    Some
      (Format.asprintf "critical regions of programs %s occupied together"
         (String.concat ", "
            (List.map (fun (p, _, _, _) -> string_of_int p) inside)))
  else None
