module Tid = Threads_util.Tid
open Spec_core

type error = { index : int; event : Spec_trace.event; message : string }

type report = {
  events : int;
  errors : error list;
  requires_violations : error list;
}

let ok r = r.errors = []

let pp_report ppf r =
  Format.fprintf ppf "%d events, %d violations, %d requires-violations"
    r.events (List.length r.errors)
    (List.length r.requires_violations);
  List.iter
    (fun e ->
      Format.fprintf ppf "@\n  [%d] %a: %s" e.index Spec_trace.pp_event
        e.event e.message)
    r.errors

(* Replay context. *)
type ctx = {
  iface : Proc.interface;
  mutable state : State.t;
  objs : (int, Spec_obj.t) Hashtbl.t;  (* impl object id -> spec object *)
  (* thread -> remaining actions of an in-progress composition *)
  in_progress : (Tid.t, string * Proc.action list) Hashtbl.t;
  mutable errors : error list;
  mutable requires_violations : error list;
}

let obj_for ctx ~sort ~impl_id =
  match Hashtbl.find_opt ctx.objs impl_id with
  | Some o ->
    if not (Sort.equal o.Spec_obj.sort sort) then
      failwith
        (Format.asprintf "object #%d used at two sorts (%a vs %a)" impl_id
           Sort.pp o.Spec_obj.sort Sort.pp sort);
    o
  | None ->
    (* Deterministic identity derived from the impl id (a machine-local
       address or negative trace id), so error messages that print the
       object are byte-identical whichever domain ran the check.  Impl
       ids are unique per machine; [+1] keeps 0 free for [alerts]. *)
    let oid = if impl_id >= 0 then impl_id + 1 else impl_id in
    let o = Spec_obj.make ~oid (Printf.sprintf "o%d" impl_id) sort in
    Hashtbl.replace ctx.objs impl_id o;
    ctx.state <- State.add o (Value.initial sort) ctx.state;
    o

(* Resolve the event's arguments against the procedure's formals, creating
   spec objects on first sight. *)
let bindings_of ctx (proc : Proc.t) (ev : Spec_trace.event) =
  List.map
    (fun (f : Proc.formal) ->
      match List.assoc_opt f.f_name ev.args with
      | None -> failwith (Printf.sprintf "event lacks argument %s" f.f_name)
      | Some (Spec_trace.Obj impl_id) ->
        let sort = Proc.sort_of_type ctx.iface f.f_type in
        (f.f_name, Term.Obj (obj_for ctx ~sort ~impl_id))
      | Some (Spec_trace.Thr t) -> (f.f_name, Term.Const (Value.Thread t)))
    proc.p_formals

let arg_obj bindings name =
  match List.assoc_opt name bindings with
  | Some (Term.Obj o) -> o
  | _ -> failwith (Printf.sprintf "expected VAR argument %s" name)

let arg_thread bindings name =
  match List.assoc_opt name bindings with
  | Some (Term.Const (Value.Thread t)) -> t
  | _ -> failwith (Printf.sprintf "expected thread argument %s" name)

(* The abstraction function, applied per event: compute the abstract post
   state the implementation's action denotes.  This encodes only which
   procedure touched what — the legality of the transition is judged
   afterwards by the spec clauses. *)
let post_of ctx bindings (ev : Spec_trace.event) =
  let st = ctx.state in
  let self = ev.self in
  let set_obj name v st = State.set st (arg_obj bindings name) v in
  let alerts_del st = State.set_alerts st (Tid.Set.remove self (State.alerts st)) in
  match (ev.proc, ev.action, ev.outcome) with
  | "Acquire", _, _ -> set_obj "m" (Value.Thread self) st
  | "Release", _, _ -> set_obj "m" Value.Nil st
  | ("Wait" | "AlertWait" | "TimedWait"), "Enqueue", _ ->
    let c = arg_obj bindings "c" in
    let members = Value.as_set (State.get st c) in
    let st = State.set st c (Value.Set (Tid.Set.add self members)) in
    set_obj "m" Value.Nil st
  | "Wait", "Resume", _ -> set_obj "m" (Value.Thread self) st
  | "TimedWait", "TimedResume", Spec_trace.Ret ->
    set_obj "m" (Value.Thread self) st
  | "TimedWait", "TimedResume", Spec_trace.Raise _ ->
    let c = arg_obj bindings "c" in
    let members = Value.as_set (State.get st c) in
    let st = State.set st c (Value.Set (Tid.Set.remove self members)) in
    set_obj "m" (Value.Thread self) st
  | "AlertWait", "AlertResume", Spec_trace.Ret ->
    set_obj "m" (Value.Thread self) st
  | "AlertWait", "AlertResume", Spec_trace.Raise _ ->
    let c = arg_obj bindings "c" in
    let members = Value.as_set (State.get st c) in
    let st = State.set st c (Value.Set (Tid.Set.remove self members)) in
    let st = set_obj "m" (Value.Thread self) st in
    alerts_del st
  | ("Signal" | "Broadcast"), _, _ ->
    let c = arg_obj bindings "c" in
    let members = Value.as_set (State.get st c) in
    let members =
      List.fold_left (fun acc t -> Tid.Set.remove t acc) members ev.removed
    in
    State.set st c (Value.Set members)
  | "P", _, _ -> set_obj "s" (Value.Sem Value.Unavailable) st
  | "V", _, _ -> set_obj "s" (Value.Sem Value.Available) st
  | "Alert", _, _ ->
    let target = arg_thread bindings "t" in
    State.set_alerts st (Tid.Set.add target (State.alerts st))
  | "TestAlert", _, _ -> alerts_del st
  | "AlertP", _, Spec_trace.Ret ->
    set_obj "s" (Value.Sem Value.Unavailable) st
  | "AlertP", _, Spec_trace.Raise _ -> alerts_del st
  | "TimedP", _, Spec_trace.Ret -> set_obj "s" (Value.Sem Value.Unavailable) st
  | "TimedP", _, Spec_trace.Raise _ -> st
  | proc, action, _ ->
    failwith (Printf.sprintf "unknown event %s.%s" proc action)

let check iface trace =
  let ctx =
    {
      iface;
      state = State.empty;
      objs = Hashtbl.create 16;
      in_progress = Hashtbl.create 16;
      errors = [];
      requires_violations = [];
    }
  in
  let count = ref 0 in
  List.iteri
    (fun index (ev : Spec_trace.event) ->
      incr count;
      let fail message = ctx.errors <- { index; event = ev; message } :: ctx.errors in
      match Proc.find_proc iface ev.proc with
      | exception Not_found -> fail "no such procedure in the interface"
      | proc -> (
        match bindings_of ctx proc ev with
        | exception Failure message -> fail message
        | bindings -> (
        (* Composition sequencing per thread. *)
        let action_or_error =
          match Hashtbl.find_opt ctx.in_progress ev.self with
          | Some (pname, next :: rest) ->
            if pname <> ev.proc then
              Error
                (Printf.sprintf
                   "thread is mid-%s but emitted a %s event" pname ev.proc)
            else if next.Proc.a_name <> ev.action then
              Error
                (Printf.sprintf "expected action %s of %s, got %s"
                   next.Proc.a_name pname ev.action)
            else begin
              (if rest = [] then Hashtbl.remove ctx.in_progress ev.self
               else Hashtbl.replace ctx.in_progress ev.self (pname, rest));
              Ok next
            end
          | Some (_, []) -> assert false
          | None -> (
            let actions = Proc.actions proc in
            match actions with
            | [] -> Error "procedure with no actions"
            | first :: rest ->
              if first.Proc.a_name <> ev.action then
                Error
                  (Printf.sprintf
                     "expected first action %s of %s, got %s"
                     first.Proc.a_name ev.proc ev.action)
              else begin
                (* REQUIRES is the caller's obligation at the first
                   action. *)
                if
                  not
                    (Semantics.requires_holds proc ~self:ev.self ~bindings
                       ctx.state)
                then
                  ctx.requires_violations <-
                    { index; event = ev; message = "REQUIRES violated by caller" }
                    :: ctx.requires_violations;
                if rest <> [] then
                  Hashtbl.replace ctx.in_progress ev.self (ev.proc, rest);
                Ok first
              end)
        in
        match action_or_error with
        | Error message -> fail message
        | Ok action -> (
          let pre = ctx.state in
          match post_of ctx bindings ev with
          | exception Failure message -> fail message
          | post -> (
            let outcome =
              match ev.outcome with
              | Spec_trace.Ret -> Proc.Returns
              | Spec_trace.Raise e -> Proc.Raises e
            in
            let result = Option.map (fun b -> Value.Bool b) ev.result_bool in
            ctx.state <- post;
            match
              Semantics.check_transition iface proc action ~self:ev.self
                ~bindings ~pre ~post ~outcome ~result
            with
            | Ok _case -> ()
            | Error message -> fail message)))))
    trace;
  {
    events = !count;
    errors = List.rev ctx.errors;
    requires_violations = List.rev ctx.requires_violations;
  }

