(** Client-program scenarios for the specification-level model checker.

    A scenario declares synchronization objects, one straight-line program
    per thread (a list of procedure calls on those objects), and a safety
    invariant.  The checker explores {e every} interleaving of the atomic
    actions the specification allows — including all non-deterministic
    outcomes (e.g. all removal choices of Signal, both RETURNS and RAISES
    when AlertP's guards overlap). *)

type arg =
  | Aobj of string  (** a declared object, by name *)
  | Athread of int  (** the thread running program [i] (0-based) *)

type step = { proc : string; args : arg list }

val call : string -> arg list -> step

(** Where a thread is in its program.  [Mid (s, k)] = inside the
    composition of step [s], having executed [k] of its actions;
    [Idle s] = before step [s]; [Done] = program finished. *)
type phase = Idle of int | Mid of int * int | Done

(** What the invariant sees after every transition. *)
type view = {
  state : Spec_core.State.t;
  phases : phase array;  (** indexed by program/thread *)
  objects : (string * Spec_core.Spec_obj.t) list;
}

(** [value view name] — current abstract value of a declared object. *)
val value : view -> string -> Spec_core.Value.t

(** [tid_of i] — the spec thread id of program [i]. *)
val tid_of : int -> Threads_util.Tid.t

type t = {
  name : string;
  objects : (string * Spec_core.Sort.t) list;
  programs : step list array;
  invariant : (view -> string option) option;
  allow_deadlock : bool;
  initials : (string * Spec_core.Value.t) list;
      (** per-object initial values overriding the sort's default *)
  interrupts : int list;
      (** programs that model interrupt handlers (static analysis flags
          potentially-blocking calls inside them) *)
}

val make :
  name:string ->
  objects:(string * Spec_core.Sort.t) list ->
  programs:step list list ->
  ?invariant:(view -> string option) ->
  ?allow_deadlock:bool ->
  ?initials:(string * Spec_core.Value.t) list ->
  ?interrupts:int list ->
  unit ->
  t

(** {1 Ready-made invariants} *)

(** [no_stale_waiters ~c ~waits] — every member of condition [c] must be a
    thread currently inside one of the [waits] regions: [(program, step)]
    pairs naming Wait/AlertWait calls.  This is the invariant Nelson's bug
    breaks: a thread that raised Alerted stays in [c]. *)
val no_stale_waiters : c:string -> waits:(int * int) list -> view -> string option

(** [mutual_exclusion ~regions] — at most one of the listed critical
    regions may be occupied at a time.  A region [(program, first_step,
    last_step, wait_steps)] is occupied when the thread's phase lies
    strictly after completing [first_step] (its Acquire) and not past
    [last_step] (its Release) — except while parked inside one of the
    [wait_steps] (a Wait/AlertWait whose Enqueue released the mutex).
    Breaks under the missing-mutex-guard variant of AlertWait. *)
val mutual_exclusion :
  regions:(int * int * int * int list) list -> view -> string option
