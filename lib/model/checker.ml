open Spec_core

type trace_entry = {
  thread : int;
  proc : string;
  action : string;
  outcome : Proc.outcome;
  case : int;
}

let pp_trace_entry ppf e =
  Format.fprintf ppf "t%d: %s.%s [%a]" (Program.tid_of e.thread) e.proc
    e.action Proc.pp_outcome e.outcome

type violation = {
  kind : [ `Invariant | `Deadlock | `Requires ];
  message : string;
  trace : trace_entry list;
}

type result = {
  violation : violation option;
  states : int;
  transitions : int;
}

let pp_result ppf r =
  match r.violation with
  | None ->
    Format.fprintf ppf "no violation (%d states, %d transitions)" r.states
      r.transitions
  | Some v ->
    let kind =
      match v.kind with
      | `Invariant -> "invariant"
      | `Deadlock -> "deadlock"
      | `Requires -> "REQUIRES"
    in
    Format.fprintf ppf "%s violation after %d steps: %s (%d states explored)"
      kind (List.length v.trace) v.message r.states;
    List.iter (fun e -> Format.fprintf ppf "@\n  %a" pp_trace_entry e) v.trace

(* A node of the exploration graph. *)
type node = { state : State.t; phases : Program.phase array }

let node_key node =
  let buf = Buffer.create 64 in
  List.iter
    (fun obj ->
      Buffer.add_string buf
        (Printf.sprintf "%d=%s;" obj.Spec_obj.oid
           (Value.to_string (State.get node.state obj))))
    (State.objects node.state);
  Array.iter
    (fun p ->
      Buffer.add_string buf
        (match p with
        | Program.Idle s -> Printf.sprintf "I%d," s
        | Program.Mid (s, k) -> Printf.sprintf "M%d.%d," s k
        | Program.Done -> "D,"))
    node.phases;
  Buffer.contents buf

let run ?(max_states = 2_000_000) iface (scenario : Program.t) =
  let objects =
    (* Positional ids: node keys and any printed state depend only on the
       scenario, not on process history or the executing domain. *)
    List.mapi
      (fun i (name, sort) -> (name, Spec_obj.make ~oid:(i + 1) name sort))
      scenario.objects
  in
  let init_state =
    List.fold_left
      (fun st (name, obj) ->
        let v =
          match List.assoc_opt name scenario.initials with
          | Some v -> v
          | None -> Value.initial obj.Spec_obj.sort
        in
        State.add obj v st)
      State.empty objects
  in
  let nprogs = Array.length scenario.programs in
  let init = { state = init_state; phases = Array.make nprogs (Program.Idle 0) } in
  let step_of i s = List.nth scenario.programs.(i) s in
  let bindings_of (step : Program.step) proc =
    Semantics.bindings_of_args iface proc
      (List.map
         (function
           | Program.Aobj name -> `Obj (List.assoc name objects)
           | Program.Athread i -> `Val (Value.Thread (Program.tid_of i)))
         step.args)
  in
  (* The action thread i must perform next, if any: either the first
     action of its next call or the continuation of a composition. *)
  let pending node i =
    match node.phases.(i) with
    | Program.Done -> None
    | Program.Idle s ->
      if s >= List.length scenario.programs.(i) then None
      else
        let step = step_of i s in
        let proc = Proc.find_proc iface step.proc in
        let actions = Proc.actions proc in
        Some (step, proc, List.hd actions, 0, s)
    | Program.Mid (s, k) ->
      let step = step_of i s in
      let proc = Proc.find_proc iface step.proc in
      let actions = Proc.actions proc in
      Some (step, proc, List.nth actions k, k, s)
  in
  let advance_phase (proc : Proc.t) k s prog_len =
    let nactions = List.length (Proc.actions proc) in
    if k + 1 >= nactions then
      if s + 1 >= prog_len then Program.Done else Program.Idle (s + 1)
    else Program.Mid (s, k + 1)
  in
  let visited = Hashtbl.create 4096 in
  let states = ref 0 and transitions = ref 0 in
  let violation = ref None in
  let view node =
    { Program.state = node.state; phases = node.phases; objects }
  in
  let check_invariant node trace =
    match scenario.invariant with
    | None -> ()
    | Some inv -> (
      match inv (view node) with
      | None -> ()
      | Some message ->
        if !violation = None then
          violation := Some { kind = `Invariant; message; trace = List.rev trace })
  in
  (* DFS with an explicit stack of (node, reversed trace). *)
  let stack = ref [ (init, []) ] in
  check_invariant init [];
  while !violation = None && !stack <> [] do
    match !stack with
    | [] -> ()
    | (node, trace) :: rest -> (
      stack := rest;
      let key = node_key node in
      if not (Hashtbl.mem visited key) then begin
        Hashtbl.replace visited key ();
        incr states;
        if !states > max_states then
          failwith "Checker: state-space bound exceeded";
        (* Enumerate enabled transitions. *)
        let any_enabled = ref false in
        let all_done = ref true in
        for i = 0 to nprogs - 1 do
          match pending node i with
          | None -> ()
          | Some (step, proc, action, k, s) ->
            all_done := false;
            let self = Program.tid_of i in
            let bindings = bindings_of step proc in
            (* REQUIRES at the first action of a call. *)
            if
              k = 0
              && not (Semantics.requires_holds proc ~self ~bindings node.state)
              && !violation = None
            then
              violation :=
                Some
                  {
                    kind = `Requires;
                    message =
                      Printf.sprintf "t%d calls %s with REQUIRES false" self
                        step.proc;
                    trace = List.rev trace;
                  };
            let outs =
              Semantics.outcomes iface proc action ~self ~bindings node.state
            in
            List.iter
              (fun (o : Semantics.outcome) ->
                any_enabled := true;
                incr transitions;
                let phases = Array.copy node.phases in
                phases.(i) <-
                  advance_phase proc k s (List.length scenario.programs.(i));
                let node' = { state = o.o_post; phases } in
                let entry =
                  {
                    thread = i;
                    proc = step.proc;
                    action = action.Proc.a_name;
                    outcome = o.o_outcome;
                    case = o.o_case;
                  }
                in
                let trace' = entry :: trace in
                check_invariant node' trace';
                stack := (node', trace') :: !stack)
              outs
        done;
        if
          (not !any_enabled) && (not !all_done)
          && (not scenario.allow_deadlock)
          && !violation = None
        then
          violation :=
            Some
              {
                kind = `Deadlock;
                message = "no enabled action but some programs unfinished";
                trace = List.rev trace;
              }
      end)
  done;
  { violation = !violation; states = !states; transitions = !transitions }
