exception Alerted = Taos_threads.Sync_intf.Alerted

module Events = Taos_threads.Events

(* Polymorphic FIFO with arbitrary removal; touched only under the global
   spin-lock. *)
module Dq = struct
  type 'a t = { mutable items : 'a list }

  let create () = { items = [] }
  let push q x = q.items <- q.items @ [ x ]

  let pop q =
    match q.items with
    | [] -> None
    | x :: rest ->
      q.items <- rest;
      Some x

  let pop_all q =
    let xs = q.items in
    q.items <- [];
    xs

  let remove q x = q.items <- List.filter (fun y -> not (y == x)) q.items
end

type thread = {
  tid : int;
  parker : Parker.t;
  mutable domain : unit Domain.t option;
  mutable woken_by_alert : bool;  (* written under the nub lock *)
}

(* One package per process, like one Threads package per address space. *)
let nub = Spin.create ()
let tid_counter = Atomic.make 0

let new_thread () =
  {
    tid = Atomic.fetch_and_add tid_counter 1;
    parker = Parker.create ();
    domain = None;
    woken_by_alert = false;
  }

let key = Domain.DLS.new_key new_thread

(* Alerting state, under the nub lock. *)
let pending : (int, unit) Hashtbl.t = Hashtbl.create 16
let cancels : (int, unit -> unit) Hashtbl.t = Hashtbl.create 16

(* ---- linearization-point tracing ----

   When a sink is installed every visible atomic action appends one
   {!Spec_trace.event}, emitted while holding the nub spin-lock at the
   very instant the action commits (the winning CAS, the bit clear, the
   eventcount read or bump).  Holding the nub across commit + append means
   the sink's order is a legal linearization of the run, so the trace can
   be replayed against the specification by the same checker the
   simulator uses.  Untraced runs keep the lock-free fast paths — the
   [traced ()] test is one atomic load. *)
let sink : Spec_trace.Sink.t option Atomic.t = Atomic.make None

let set_trace_sink s = Atomic.set sink s
let traced () = Atomic.get sink <> None

let emit ev =
  match Atomic.get sink with
  | Some k -> Spec_trace.Sink.emit k ev
  | None -> ()

let emit_opt = function Some ev -> emit ev | None -> ()

(* Trace identities for mutexes/conditions/semaphores. *)
let obj_ids = Atomic.make 0
let new_obj_id () = Atomic.fetch_and_add obj_ids 1

(* ---- lock-event capture (lib/analysis lock-order checking) ----

   With a log installed, every mutex acquisition/release appends one
   event (semaphores are excluded: V need not come from the P-ing thread,
   so they carry no lock-order information).  The log has its own host
   mutex rather than the nub so fast paths stay lock-free when no log is
   installed and the nub is never held around the append.  Each thread's
   own events appear in program order, which is all the lock-order
   replay needs. *)
type lock_event = { le_tid : int; le_lock : int; le_acquire : bool }

let lock_log : lock_event list ref option Atomic.t = Atomic.make None
let log_mu = Stdlib.Mutex.create ()

let log_lock le_lock le_acquire =
  match Atomic.get lock_log with
  | None -> ()
  | Some cell ->
    let le_tid = (Domain.DLS.get key).tid in
    Stdlib.Mutex.lock log_mu;
    cell := { le_tid; le_lock; le_acquire } :: !cell;
    Stdlib.Mutex.unlock log_mu

let reset () =
  Spin.acquire nub;
  Hashtbl.reset pending;
  Hashtbl.reset cancels;
  Spin.release nub

module Sync = struct
  type nonrec thread = thread

  type mutex = {
    id : int;
    bit : bool Atomic.t;
    mq : thread Dq.t;
    waiters : int Atomic.t;  (* |mq|, written under the nub lock *)
  }

  type condition = {
    cid : int;
    evc : int Atomic.t;
    interest : int Atomic.t;
    cq : thread Dq.t;
    (* Traced runs only, under the nub lock: [window] holds threads
       between their Enqueue event (the eventcount read) and parking or
       noticing staleness — the wakeup-waiting window; [departing] holds
       alerted waiters that are abstractly still condition members until
       their AlertResume commits.  Signal/Broadcast must list both in
       [removed] for the abstract condition to empty correctly. *)
    window : (int, unit) Hashtbl.t;
    departing : (int, unit) Hashtbl.t;
  }

  type semaphore = mutex  (* "the implementation of semaphores is identical" *)

  let self () = Domain.DLS.get key

  let mutex () =
    {
      id = new_obj_id ();
      bit = Atomic.make false;
      mq = Dq.create ();
      waiters = Atomic.make 0;
    }

  let semaphore () = mutex ()

  let condition () =
    {
      cid = new_obj_id ();
      evc = Atomic.make 0;
      interest = Atomic.make 0;
      cq = Dq.create ();
      window = Hashtbl.create 8;
      departing = Hashtbl.create 8;
    }

  (* ---- mutex / semaphore core ---- *)

  let try_bit m = Atomic.compare_and_set m.bit false true

  (* Traced acquisition point: take the nub so the winning test-and-set
     and its event append are one atomic step.  [ev] runs only on the
     winning CAS of a traced run and may carry bookkeeping that must be
     atomic with the event (departing/pending consumption). *)
  let try_bit_ev m ~ev =
    if not (traced ()) then try_bit m
    else begin
      Spin.acquire nub;
      let ok = try_bit m in
      if ok then emit_opt (ev ());
      Spin.release nub;
      ok
    end

  (* The Nub subroutine for Acquire/P: enqueue, re-test, park or retry.
     [alertable] adds the pending check and cancellation registration.
     Returns [`Alerted] only for alertable calls; [on_alerted] is the
     traced-run hook for that outcome — invoked under the nub hold that
     decided it, it consumes the pending alert and returns the Raise
     event. *)
  let rec slow_lock m ~alertable ~ev ~on_alerted =
    let me = self () in
    Spin.acquire nub;
    if alertable && Hashtbl.mem pending me.tid then begin
      if traced () then emit (on_alerted ());
      Spin.release nub;
      `Alerted
    end
    else begin
      Dq.push m.mq me;
      Atomic.incr m.waiters;
      if Atomic.get m.bit then begin
        if alertable then
          Hashtbl.replace cancels me.tid (fun () ->
              Dq.remove m.mq me;
              Atomic.decr m.waiters;
              me.woken_by_alert <- true;
              Parker.unpark me.parker);
        Spin.release nub;
        Parker.park me.parker;
        let alerted =
          alertable
          &&
          begin
            Spin.acquire nub;
            Hashtbl.remove cancels me.tid;
            let w = me.woken_by_alert in
            me.woken_by_alert <- false;
            if w && traced () then emit (on_alerted ());
            Spin.release nub;
            w
          end
        in
        if alerted then `Alerted
        else if try_bit_ev m ~ev then `Acquired
        else slow_lock m ~alertable ~ev ~on_alerted
      end
      else begin
        Dq.remove m.mq me;
        Atomic.decr m.waiters;
        Spin.release nub;
        if try_bit_ev m ~ev then `Acquired
        else slow_lock m ~alertable ~ev ~on_alerted
      end
    end

  let lock m ~alertable ~ev ~on_alerted =
    if try_bit_ev m ~ev then `Acquired
    else slow_lock m ~alertable ~ev ~on_alerted

  let no_ev () = None
  let no_alert () = assert false

  (* [ev] is the Release/V event of a traced run; [None] for the internal
     release inside Wait, whose abstract transition already happened at
     the Enqueue event. *)
  let unlock_ev m ~ev =
    (if not (traced ()) then Atomic.set m.bit false
     else begin
       Spin.acquire nub;
       Atomic.set m.bit false;
       emit_opt (ev ());
       Spin.release nub
     end);
    if Atomic.get m.waiters <> 0 then begin
      Spin.acquire nub;
      (match Dq.pop m.mq with
      | Some t ->
        Atomic.decr m.waiters;
        Hashtbl.remove cancels t.tid;
        Parker.unpark t.parker
      | None -> ());
      Spin.release nub
    end

  let unlock m = unlock_ev m ~ev:no_ev

  let acquire m =
    let ev () = Some (Events.acquire ~self:(self ()).tid ~m:m.id) in
    (match lock m ~alertable:false ~ev ~on_alerted:no_alert with
    | `Acquired -> ()
    | `Alerted -> assert false);
    log_lock m.id true

  let release m =
    log_lock m.id false;
    unlock_ev m ~ev:(fun () -> Some (Events.release ~self:(self ()).tid ~m:m.id))

  let with_lock m f =
    acquire m;
    Fun.protect ~finally:(fun () -> release m) f

  let p s =
    let ev () = Some (Events.p ~self:(self ()).tid ~s:s.id) in
    match lock s ~alertable:false ~ev ~on_alerted:no_alert with
    | `Acquired -> ()
    | `Alerted -> assert false

  let v s =
    unlock_ev s ~ev:(fun () -> Some (Events.v ~self:(self ()).tid ~s:s.id))

  let alert_p s =
    let me = self () in
    let ev () = Some (Events.alert_p ~self:me.tid ~s:s.id ~alerted:false) in
    let on_alerted () =
      Hashtbl.remove pending me.tid;
      Events.alert_p ~self:me.tid ~s:s.id ~alerted:true
    in
    match lock s ~alertable:true ~ev ~on_alerted with
    | `Acquired -> ()
    | `Alerted ->
      Spin.acquire nub;
      Hashtbl.remove pending me.tid;
      Spin.release nub;
      raise Alerted

  (* ---- condition variables ---- *)

  (* Block(c, i): sleep unless the eventcount moved since [i]. *)
  let block c i ~alertable =
    let me = self () in
    Spin.acquire nub;
    if Atomic.get c.evc <> i then begin
      (* A wake beat us here; its Signal/Broadcast event already listed us
         (it swept the window), so we are no longer an abstract member. *)
      Spin.release nub;
      `Stale
    end
    else if alertable && Hashtbl.mem pending me.tid then begin
      if traced () then begin
        Hashtbl.remove c.window me.tid;
        Hashtbl.replace c.departing me.tid ()
      end;
      Spin.release nub;
      `Alerted_now
    end
    else begin
      if traced () then Hashtbl.remove c.window me.tid;
      Dq.push c.cq me;
      if alertable then
        Hashtbl.replace cancels me.tid (fun () ->
            Dq.remove c.cq me;
            if traced () then Hashtbl.replace c.departing me.tid ();
            me.woken_by_alert <- true;
            Parker.unpark me.parker);
      Spin.release nub;
      Parker.park me.parker;
      `Woken
    end

  let wait_generic c m ~alertable =
    let me = self () in
    ignore (Atomic.fetch_and_add c.interest 1);
    let i =
      if not (traced ()) then Atomic.get c.evc
      else begin
        (* The Enqueue event linearizes at the eventcount read, while the
           mutex bit is still ours: abstractly it both joins the condition
           and frees the mutex, so the bit clear below emits nothing. *)
        Spin.acquire nub;
        let i = Atomic.get c.evc in
        Hashtbl.replace c.window me.tid ();
        emit
          (Events.enqueue
             ~proc:(if alertable then "AlertWait" else "Wait")
             ~self:me.tid ~m:m.id ~c:c.cid);
        Spin.release nub;
        i
      end
    in
    log_lock m.id false;
    unlock m;
    let wake = block c i ~alertable in
    let raise_it =
      alertable
      &&
      match wake with
      | `Alerted_now -> true
      | `Stale | `Woken ->
        Spin.acquire nub;
        Hashtbl.remove cancels me.tid;
        let w = me.woken_by_alert || Hashtbl.mem pending me.tid in
        me.woken_by_alert <- false;
        Spin.release nub;
        w
    in
    let ev () =
      if alertable then begin
        Hashtbl.remove c.departing me.tid;
        if raise_it then Hashtbl.remove pending me.tid;
        Some (Events.alert_resume ~self:me.tid ~m:m.id ~c:c.cid ~alerted:raise_it)
      end
      else Some (Events.resume ~self:me.tid ~m:m.id ~c:c.cid)
    in
    (match lock m ~alertable:false ~ev ~on_alerted:no_alert with
    | `Acquired -> ()
    | `Alerted -> assert false);
    log_lock m.id true;
    ignore (Atomic.fetch_and_add c.interest (-1));
    if raise_it then begin
      Spin.acquire nub;
      Hashtbl.remove pending me.tid;
      Spin.release nub;
      raise Alerted
    end

  let wait m c = wait_generic c m ~alertable:false
  let alert_wait m c = wait_generic c m ~alertable:true

  (* Timed waits need a deadline-aware parker; not implemented for the
     hardware backend (the chaos/timeout workloads gate on the feature). *)
  let timed_wait _m _c ~timeout:_ =
    failwith "multicore backend: timed_wait unsupported"

  let timed_p _s ~timeout:_ = failwith "multicore backend: timed_p unsupported"

  let wake_some c ~take_all =
    if not (traced ()) then begin
      if Atomic.get c.interest <> 0 then begin
        Spin.acquire nub;
        ignore (Atomic.fetch_and_add c.evc 1);
        let woken =
          if take_all then Dq.pop_all c.cq
          else match Dq.pop c.cq with Some t -> [ t ] | None -> []
        in
        List.iter
          (fun t ->
            Hashtbl.remove cancels t.tid;
            Parker.unpark t.parker)
          woken;
        Spin.release nub
      end
    end
    else begin
      (* Traced runs always bump the eventcount and always emit, even with
         nobody interested (Signal on an empty condition is a conforming
         no-op).  [removed] must cover every abstract member the wake
         dislodges: the queue pops, the whole wakeup-waiting window (those
         threads will find the count stale and return), and departing
         alerted waiters (already leaving; removing them twice is a spec
         no-op since removal of a non-member changes nothing). *)
      let me = self () in
      Spin.acquire nub;
      ignore (Atomic.fetch_and_add c.evc 1);
      let woken =
        if take_all then Dq.pop_all c.cq
        else match Dq.pop c.cq with Some t -> [ t ] | None -> []
      in
      let swept tbl = Hashtbl.fold (fun tid () acc -> tid :: acc) tbl [] in
      let removed =
        List.map (fun t -> t.tid) woken @ swept c.window @ swept c.departing
      in
      Hashtbl.reset c.window;
      emit
        (if take_all then Events.broadcast ~self:me.tid ~c:c.cid ~removed
         else Events.signal ~self:me.tid ~c:c.cid ~removed);
      List.iter
        (fun t ->
          Hashtbl.remove cancels t.tid;
          Parker.unpark t.parker)
        woken;
      Spin.release nub
    end

  let signal c = wake_some c ~take_all:false
  let broadcast c = wake_some c ~take_all:true

  (* ---- alerting ---- *)

  let alert (t : thread) =
    Spin.acquire nub;
    Hashtbl.replace pending t.tid ();
    if traced () then
      emit (Events.alert ~self:(self ()).tid ~target:t.tid);
    (match Hashtbl.find_opt cancels t.tid with
    | Some cancel ->
      Hashtbl.remove cancels t.tid;
      cancel ()
    | None -> ());
    Spin.release nub

  let test_alert () =
    let me = self () in
    Spin.acquire nub;
    let was = Hashtbl.mem pending me.tid in
    Hashtbl.remove pending me.tid;
    if traced () then emit (Events.test_alert ~self:me.tid ~result:was);
    Spin.release nub;
    was

  (* ---- threads ---- *)

  let fork f =
    let t = new_thread () in
    let d =
      Domain.spawn (fun () ->
          Domain.DLS.set key t;
          f ())
    in
    t.domain <- Some d;
    t

  let join t =
    match t.domain with
    | Some d -> Domain.join d
    | None -> invalid_arg "Multicore.join: not a forked thread"

  let yield () = Domain.cpu_relax ()
end

(* The package is one-per-process (global nub, alert tables, trace
   sink), so two runs cannot overlap: a concurrent [reset] would wipe
   the other run's pending alerts mid-wait.  Serializing here makes the
   entry points safe to call from parallel matrix cells — the run
   inside occupies every core anyway, so nothing is lost. *)
let package_mu = Stdlib.Mutex.create ()

let exclusive body =
  Stdlib.Mutex.lock package_mu;
  Fun.protect ~finally:(fun () -> Stdlib.Mutex.unlock package_mu) body

let run body = exclusive body

let traced_run body =
  exclusive (fun () ->
      let s = Spec_trace.Sink.create () in
      reset ();
      set_trace_sink (Some s);
      Fun.protect ~finally:(fun () -> set_trace_sink None) (fun () ->
          let result = body () in
          (result, Spec_trace.Sink.events s)))

let analyzed_run body =
  exclusive (fun () ->
      let cell = ref [] in
      reset ();
      Atomic.set lock_log (Some cell);
      Fun.protect ~finally:(fun () -> Atomic.set lock_log None) (fun () ->
          let result = body () in
          (result, List.rev !cell)))
