(** The Threads package on real parallel hardware: OCaml 5 domains,
    [Atomic] words, and the same two-layer structure as the Firefly code.

    - Mutex/Semaphore: an atomic lock bit with an in-line test-and-set fast
      path; contended paths enter the "Nub" (the global spin-lock) to queue
      and park, re-testing the bit exactly as the paper's Nub subroutine
      does.
    - Condition: an atomic eventcount plus a queue; Wait reads the count,
      releases the mutex, and Block compares the count under the spin-lock
      — the wakeup-waiting race is closed the same way as on the Firefly.
    - Alerting: a pending set under the spin-lock with cancellation of
      alertable sleeps.

    This backend implements {!Taos_threads.Sync_intf.SYNC}, so every
    example and workload in the repository also runs with true parallelism.

    With a trace sink installed (see {!traced_run}) every visible atomic
    action additionally appends one {!Spec_trace} event, emitted under the
    nub spin-lock at the instant the action commits — so the sink's order
    is a legal linearization of the run and the trace replays against the
    formal specification with the same checker the simulator uses.
    Untraced runs keep the lock-free fast paths untouched.

    [fork] spawns a domain; keep thread counts near the core count. *)

type thread

(** Equal to {!Taos_threads.Sync_intf.Alerted}. *)
exception Alerted

(** The SYNC instance.  Global (one package per process), matching the
    Threads package being one per address space. *)
module Sync : Taos_threads.Sync_intf.SYNC with type thread = thread

(** The package state (nub lock, alert tables, trace sink) is global,
    so [run]/[traced_run]/[analyzed_run] serialize on a package mutex:
    overlapping calls from different domains — e.g. parallel run-matrix
    cells — queue up rather than corrupt each other (a concurrent reset
    would wipe another run's pending alerts mid-wait).  The body inside
    occupies every core anyway, so serializing costs no parallelism. *)

(** [run body] — run [body] on the main thread with the package
    initialized; joins nothing implicitly. *)
val run : (unit -> 'a) -> 'a

(** [traced_run body] — clear residual alert state, install a fresh sink,
    run [body], uninstall the sink (even on exception) and return the
    result with the linearized event trace. *)
val traced_run : (unit -> 'a) -> 'a * Spec_trace.event list

(** Install or remove the trace sink by hand ({!traced_run} is the usual
    entry point).  Takes effect for actions that commit after the store. *)
val set_trace_sink : Spec_trace.Sink.t option -> unit

(** One mutex acquisition or release, as captured by {!analyzed_run}.
    Thread ids are the package's own; lock ids are mutex trace ids.
    Semaphores are not captured (V need not come from the P-ing thread,
    so they carry no lock-order information). *)
type lock_event = { le_tid : int; le_lock : int; le_acquire : bool }

(** [analyzed_run body] — clear residual alert state, capture every mutex
    acquisition/release during [body], and return the result with the
    events (each thread's events in its program order). *)
val analyzed_run : (unit -> 'a) -> 'a * lock_event list

(** Clear leftover pending alerts and cancellations from a previous run
    (thread ids are never reused, so this is hygiene, not correctness —
    except for the main thread, whose id persists across runs). *)
val reset : unit -> unit
