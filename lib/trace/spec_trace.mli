(** Backend-neutral execution traces of specification-level atomic actions.

    Every Threads backend — the Firefly simulator, the cooperative
    uniprocessor version, the Hoare/Naive baselines and the real-parallelism
    OCaml 5 implementation — emits one event at each linearization point
    (the instant its visible atomic action takes effect, e.g. the successful
    test-and-set inside Acquire).  The conformance checker in
    [threads_model] replays an event sequence against the formal
    specification; because the vocabulary lives here, below every backend,
    one spec checks all implementations — the paper's claim that the
    specification "describes all implementations of the interface"
    mechanized.

    Events are deliberately implementation-flavoured: they carry only what
    the implementation knows at the linearization instant.  In particular
    [removed] records the threads a Signal/Broadcast abstractly removed
    from the condition — the queued threads it moved to the ready pool
    {e plus} the threads then inside the wakeup-waiting race window, which
    its eventcount increment also releases (the paper: "Signal will
    unblock all such threads"). *)

type arg =
  | Obj of int  (** a synchronization object, by implementation id *)
  | Thr of Threads_util.Tid.t  (** a by-value thread argument *)

type outcome = Ret | Raise of string

type event = {
  proc : string;  (** procedure name, e.g. "Wait" *)
  action : string;  (** atomic action, e.g. "Enqueue"; = [proc] if atomic *)
  self : Threads_util.Tid.t;
  args : (string * arg) list;  (** formal name -> argument *)
  outcome : outcome;
  result_bool : bool option;  (** TestAlert's return value *)
  removed : Threads_util.Tid.t list;
      (** Signal/Broadcast: threads abstractly removed from the condition *)
}

val make :
  proc:string ->
  ?action:string ->
  self:Threads_util.Tid.t ->
  args:(string * arg) list ->
  ?outcome:outcome ->
  ?result_bool:bool ->
  ?removed:Threads_util.Tid.t list ->
  unit ->
  event

val pp_event : Format.formatter -> event -> unit
val event_to_string : event -> string

(** An append-only event collector.  The simulator owns one per machine;
    the multicore backend appends from many domains at once (each append
    happens under the emitting object's linearizing lock, so the recorded
    order is a valid linearization). *)
module Sink : sig
  type t

  val create : unit -> t
  val emit : t -> event -> unit

  (** Events in emission order. *)
  val events : t -> event list

  val length : t -> int
  val clear : t -> unit
end
