module Tid = Threads_util.Tid

type arg = Obj of int | Thr of Tid.t

type outcome = Ret | Raise of string

type event = {
  proc : string;
  action : string;
  self : Tid.t;
  args : (string * arg) list;
  outcome : outcome;
  result_bool : bool option;
  removed : Tid.t list;
}

let make ~proc ?action ~self ~args ?(outcome = Ret) ?result_bool
    ?(removed = []) () =
  {
    proc;
    action = Option.value action ~default:proc;
    self;
    args;
    outcome;
    result_bool;
    removed;
  }

let pp_arg ppf = function
  | Obj id -> Format.fprintf ppf "#%d" id
  | Thr t -> Tid.pp ppf t

let pp_event ppf e =
  Format.fprintf ppf "%a: %s.%s(%a)" Tid.pp e.self e.proc e.action
    (Format.pp_print_list
       ~pp_sep:(fun ppf () -> Format.pp_print_string ppf ", ")
       (fun ppf (name, a) -> Format.fprintf ppf "%s=%a" name pp_arg a))
    e.args;
  (match e.outcome with
  | Ret -> ()
  | Raise exc -> Format.fprintf ppf " raises %s" exc);
  (match e.result_bool with
  | Some b -> Format.fprintf ppf " -> %b" b
  | None -> ());
  if e.removed <> [] then
    Format.fprintf ppf " removed=%a" Tid.Set.pp (Tid.Set.of_list e.removed)

let event_to_string e = Format.asprintf "%a" pp_event e

module Sink = struct
  (* A lock-free cons onto an atomic list: emitters on real parallel
     backends append while holding their own linearizing lock, so the CAS
     loop here only ever retries under cross-object contention. *)
  type t = event list Atomic.t

  let create () = Atomic.make []

  let rec emit t ev =
    let old = Atomic.get t in
    if not (Atomic.compare_and_set t old (ev :: old)) then emit t ev

  let events t = List.rev (Atomic.get t)
  let length t = List.length (Atomic.get t)

  let clear t = Atomic.set t []
end
