(** Facade: every applicable analyzer over one recorded execution.

    Simulator-hosted backends yield a full access stream, feeding
    {!Lockset}, {!Hb} and {!Lockorder}; hardware backends capture lock
    events only, feeding {!Lockorder} alone.  All outputs are
    deterministic functions of the capture. *)

type report = {
  n_accesses : int;
  n_data_words : int;  (** distinct checked (data) words touched *)
  n_exempt_words : int;  (** registered synchronization/atomic words *)
  lockset : Lockset.race list;
  hb : Hb.race list;
  lock_order : Lockorder.report option;
      (** [None] when the capture has no lock information at all *)
  lock_name : int -> string;
}

val of_machine : Firefly.Machine.t -> report
(** Analyze a machine whose run was recorded ({!Firefly.Machine.set_recording}). *)

val of_lock_events : Threads_backend.Backend.lock_event list -> report

type backend_result = {
  br_outcome : Threads_backend.Backend.outcome;
  br_report : report option;  (** [None] if the backend is uninstrumented *)
}

val run_backend :
  Threads_backend.Backend.t ->
  seed:int ->
  Threads_backend.Workload.t ->
  backend_result
(** Run the workload through the backend's instrumented entry point (same
    seeds and schedules as its plain [run]) and analyze the capture. *)

val cycles : report -> int list list
val clean : report -> bool

val findings : report -> string list
(** All findings as one-line messages: lockset races, then
    happens-before races, then lock-order cycles. *)
