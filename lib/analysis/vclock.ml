type t = { mutable v : int array }

let create () = { v = [||] }

let get c i = if i >= 0 && i < Array.length c.v then c.v.(i) else 0

(* Grow to exactly [n]: [join] grows to the other clock's length, so any
   over-allocation here would itself propagate through joins and compound. *)
let grow c n =
  if n > Array.length c.v then begin
    let bigger = Array.make n 0 in
    Array.blit c.v 0 bigger 0 (Array.length c.v);
    c.v <- bigger
  end

let set c i x =
  grow c (i + 1);
  c.v.(i) <- x

let incr c i = set c i (get c i + 1)

let join a b =
  grow a (Array.length b.v);
  Array.iteri (fun i x -> if x > a.v.(i) then a.v.(i) <- x) b.v

let copy a = { v = Array.copy a.v }

let leq_epoch ~tid ~clock c = clock <= get c tid
