module M = Firefly.Machine
module B = Threads_backend.Backend

(* Facade: run every applicable analyzer over one recorded execution and
   fold the results into a single report with deterministic, human-readable
   findings. *)

type report = {
  n_accesses : int;
  n_data_words : int;  (** distinct checked (data) words touched *)
  n_exempt_words : int;  (** registered synchronization/atomic words *)
  lockset : Lockset.race list;
  hb : Hb.race list;
  lock_order : Lockorder.report option;
      (** [None] when the capture has no lock information at all *)
  lock_name : int -> string;
}

let is_data_kind = function
  | None | Some M.W_data -> true
  | Some (M.W_lock | M.W_sem | M.W_eventcount | M.W_atomic) -> false

let of_machine machine =
  let accesses = M.accesses machine in
  let word_kind = M.word_kind machine in
  let word_name = M.word_name machine in
  let data_words = Hashtbl.create 32 in
  List.iter
    (fun (a : M.access) ->
      match a.a_kind with
      | M.A_load | M.A_store | M.A_tas _ | M.A_clear | M.A_faa ->
        if is_data_kind (word_kind a.a_addr) then
          Hashtbl.replace data_words a.a_addr ()
      | _ -> ())
    accesses;
  let n_exempt =
    List.length
      (List.filter
         (fun (_, k, _) -> not (is_data_kind (Some k)))
         (M.registered_words machine))
  in
  {
    n_accesses = M.access_count machine;
    n_data_words = Hashtbl.length data_words;
    n_exempt_words = n_exempt;
    lockset = Lockset.check ~word_kind ~word_name accesses;
    hb = Hb.check ~word_kind ~word_name accesses;
    lock_order = Some (Lockorder.of_accesses ~word_kind accesses);
    lock_name = M.lock_name machine;
  }

(* Hardware captures carry only lock events: no data words, no race
   checking — lock-order analysis only. *)
let of_lock_events (events : B.lock_event list) =
  let triples =
    List.map (fun e -> (e.B.le_tid, e.B.le_lock, e.B.le_acquire)) events
  in
  {
    n_accesses = List.length events;
    n_data_words = 0;
    n_exempt_words = 0;
    lockset = [];
    hb = [];
    lock_order = Some (Lockorder.of_lock_events triples);
    lock_name = (fun id -> Printf.sprintf "lock#%d" id);
  }

type backend_result = {
  br_outcome : B.outcome;
  br_report : report option;  (** [None] if the backend is uninstrumented *)
}

let run_backend (b : B.t) ~seed workload =
  match b.B.instrument with
  | B.Machine_access f ->
    let outcome, machine = f ~seed workload in
    { br_outcome = outcome; br_report = Some (of_machine machine) }
  | B.Lock_trace f ->
    let outcome, events = f ~seed workload in
    { br_outcome = outcome; br_report = Some (of_lock_events events) }
  | B.No_instrument ->
    { br_outcome = b.B.run ~seed workload; br_report = None }

let cycles r = match r.lock_order with None -> [] | Some lo -> lo.Lockorder.cycles
let clean r = r.lockset = [] && r.hb = [] && cycles r = []

let findings r =
  List.map (Format.asprintf "%a" Lockset.pp_race) r.lockset
  @ List.map (Format.asprintf "%a" Hb.pp_race) r.hb
  @ List.map
      (Format.asprintf "%a" (Lockorder.pp_cycle ~lock_name:r.lock_name))
      (cycles r)
