module P = Spec_core.Proc
module V = Spec_core.Value
module Sem = Spec_core.Semantics
module Tid = Threads_util.Tid

(* Static linter over interface specifications.  Beyond the parser's
   well-formedness rules (re-reported here) it model-checks each clause
   against a small-state universe — two threads, every sort's value pool —
   which is exhaustive for the term language the Threads interface uses:

   - a WHEN guard that no enumerated pre state satisfies (conjoined with
     REQUIRES for an atomic action or a composition's first action, whose
     callers must establish REQUIRES) is a dead case;
   - an ENSURES that admits no post state from any enabling pre state is
     an unimplementable case;
   - a MODIFIES name never constrained by any ENSURES is suspicious —
     the spec allows the object to change arbitrarily (warning). *)

type severity = Error | Warning

type kind =
  | Well_formed
  | Dead_case
  | Unimplementable_case
  | Unconstrained_modifies
  | Eval_failure

let kind_name = function
  | Well_formed -> "well-formedness"
  | Dead_case -> "dead-case"
  | Unimplementable_case -> "unimplementable-case"
  | Unconstrained_modifies -> "unconstrained-modifies"
  | Eval_failure -> "eval-failure"

type finding = {
  f_severity : severity;
  f_kind : kind;
  f_proc : string;
  f_msg : string;
  f_pos : Spec_core.Lexer.pos option;
}

let self : Tid.t = 1
let other : Tid.t = 2

let pool : Spec_core.Sort.t -> V.t list = function
  | Thread -> [ V.Nil; V.Thread self; V.Thread other ]
  | Bool -> [ V.Bool false; V.Bool true ]
  | Int -> [ V.Int 0; V.Int 1 ]
  | Thread_set ->
    [
      V.Set Tid.Set.empty;
      V.Set (Tid.Set.singleton self);
      V.Set (Tid.Set.singleton other);
      V.Set (Tid.Set.of_int_list [ self; other ]);
    ]
  | Semaphore -> [ V.Sem V.Available; V.Sem V.Unavailable ]

(* By-value Thread arguments name an actual thread, not NIL. *)
let arg_pool sort =
  match sort with
  | Spec_core.Sort.Thread -> [ V.Thread self; V.Thread other ]
  | _ -> pool sort

let alerts_pool =
  [
    Tid.Set.empty;
    Tid.Set.singleton self;
    Tid.Set.singleton other;
    Tid.Set.of_int_list [ self; other ];
  ]

let product lists =
  List.fold_right
    (fun choices acc ->
      List.concat_map (fun c -> List.map (fun rest -> c :: rest) acc) choices)
    lists [ [] ]

(* Every (bindings, pre-state) pair over the small universe: VAR formals
   become objects ranging over their sort's pool, by-value formals range
   over the argument pool, and [alerts] over all two-thread subsets. *)
let enumerate iface (p : P.t) =
  let formals =
    List.mapi
      (fun i (f : P.formal) ->
        let sort = P.formal_sort iface p f.f_name in
        match f.f_mode with
        | P.By_var ->
          (* Positional id: linter output is independent of process
             history and of which domain ran the pass. *)
          let obj = Spec_core.Spec_obj.make ~oid:(i + 1) f.f_name sort in
          List.map
            (fun v ->
              ((f.f_name, Spec_core.Term.Obj obj), fun st ->
                Spec_core.State.add obj v st))
            (pool sort)
        | P.By_value ->
          List.map
            (fun v -> ((f.f_name, Spec_core.Term.Const v), fun st -> st))
            (arg_pool sort))
      p.P.p_formals
  in
  List.concat_map
    (fun choice ->
      let bindings = List.map fst choice in
      let base =
        List.fold_left (fun st (_, addf) -> addf st) Spec_core.State.empty
          choice
      in
      List.map
        (fun al -> (bindings, Spec_core.State.set_alerts base al))
        alerts_pool)
    (product formals)

(* Whether a call of [p] can block: some action can find every WHEN
   guard false in a small-universe state (the first action only in
   states where REQUIRES holds — callers must establish it). *)
let may_delay iface (p : P.t) =
  let universe = enumerate iface p in
  let rec go ai = function
    | [] -> false
    | (act : P.action) :: rest ->
      let gated = ai = 0 in
      List.exists
        (fun (bindings, pre) ->
          (not (gated && not (Sem.requires_holds p ~self ~bindings pre)))
          && Sem.enabled act ~self ~bindings pre = [])
        universe
      || go (ai + 1) rest
  in
  go 0 (P.actions p)

let outcome_str = function
  | P.Returns -> "RETURNS"
  | P.Raises e -> "RAISES " ^ e

let lint_proc ?(locs = Spec_core.Parser.no_locs) iface (p : P.t) =
  let findings = ref [] in
  let add sev kind ?pos msg =
    findings :=
      { f_severity = sev; f_kind = kind; f_proc = p.P.p_name; f_msg = msg;
        f_pos = pos }
      :: !findings
  in
  let proc_pos = Spec_core.Parser.loc_proc locs p.P.p_name in
  let case_pos (act : P.action) ci =
    match
      Spec_core.Parser.loc_case locs ~proc:p.P.p_name ~action:act.P.a_name
        (ci + 1)
    with
    | Some _ as pos -> pos
    | None -> proc_pos
  in
  (try
     let universe = enumerate iface p in
     let actions = P.actions p in
     List.iteri
       (fun ai (act : P.action) ->
         (* REQUIRES gates the call, hence the first action's guard; later
            actions of a composition fire from any intermediate state. *)
         let gated = ai = 0 in
         let admitting = List.map (fun (bindings, pre) ->
             if gated && not (Sem.requires_holds p ~self ~bindings pre) then
               (bindings, pre, [])
             else (bindings, pre, Sem.enabled act ~self ~bindings pre))
             universe
         in
         List.iteri
           (fun ci (c : P.case) ->
             let where = List.filter (fun (_, _, en) -> List.mem ci en) admitting in
             if where = [] then
               add Error Dead_case ?pos:(case_pos act ci)
                 (Printf.sprintf
                    "action %s, case %d (%s): WHEN guard%s is never \
                     satisfiable — dead case"
                    act.P.a_name (ci + 1)
                    (outcome_str c.P.c_outcome)
                    (if gated then " (under REQUIRES)" else ""))
             else if
               not
                 (List.exists
                    (fun (bindings, pre, _) ->
                      List.exists
                        (fun (o : Sem.outcome) -> o.o_case = ci)
                        (Sem.outcomes iface p act ~self ~bindings pre))
                    where)
             then
               add Error Unimplementable_case ?pos:(case_pos act ci)
                 (Printf.sprintf
                    "action %s, case %d (%s): ENSURES admits no post state \
                     from any enabling pre state — unimplementable case"
                    act.P.a_name (ci + 1)
                    (outcome_str c.P.c_outcome)))
           act.P.a_cases)
       actions;
     let constrained =
       List.concat_map
         (fun (act : P.action) ->
           List.concat_map
             (fun (c : P.case) -> Spec_core.Formula.post_names c.P.c_ensures)
             act.P.a_cases)
         actions
     in
     List.iter
       (fun name ->
         if not (List.mem name constrained) then
           add Warning Unconstrained_modifies ?pos:proc_pos
             (Printf.sprintf
                "MODIFIES lists %s but no ENSURES constrains %s_post — the \
                 object may change arbitrarily"
                name name))
       p.P.p_modifies
   with Spec_core.Term.Eval_error msg ->
     add Error Eval_failure ?pos:proc_pos
       (Printf.sprintf "evaluation error while checking: %s" msg));
  List.rev !findings

let lint ?(locs = Spec_core.Parser.no_locs) iface =
  let wf =
    List.map
      (fun msg ->
        (* well_formed prefixes each message with the offending
           procedure's name ("Proc: ..."); use it for the position. *)
        let pos =
          match String.index_opt msg ':' with
          | Some i -> Spec_core.Parser.loc_proc locs (String.sub msg 0 i)
          | None -> None
        in
        { f_severity = Error; f_kind = Well_formed; f_proc = iface.P.i_name;
          f_msg = msg; f_pos = pos })
      (P.well_formed iface)
  in
  (* Clause checks assume well-formedness; skip them when it fails. *)
  if wf <> [] then wf
  else List.concat_map (lint_proc ~locs iface) iface.P.i_procs

let errors fs = List.filter (fun f -> f.f_severity = Error) fs

let pp_finding ppf f =
  (match f.f_pos with
  | Some p -> Format.fprintf ppf "%a: " Spec_core.Lexer.pp_pos p
  | None -> ());
  Format.fprintf ppf "%s: %s: %s"
    (match f.f_severity with Error -> "error" | Warning -> "warning")
    f.f_proc f.f_msg
