module M = Firefly.Machine

(* GoodLock-style lock-order graph (Havelund 2000): one edge h → l per
   observed "attempted or succeeded acquiring l while holding h".  A cycle
   means two threads ordered the same locks differently somewhere in the
   run — a potential deadlock even if this schedule survived.  Attempts
   count as well as successes, so the classic AB/BA deadlock (where the
   inner acquisitions never succeed) still closes its cycle. *)

type edge = { e_from : int; e_to : int; e_tid : int; e_seq : int }

type report = {
  locks : int list;  (** every lock id seen, ascending *)
  edges : edge list;  (** deduped by (from, to); first witness kept *)
  cycles : int list list;
      (** each cycle as its sorted member list; includes self-loops *)
}

(* Tarjan's strongly-connected components over the edge list. *)
let sccs nodes edges =
  let adj = Hashtbl.create 16 in
  List.iter
    (fun e ->
      let cur = Option.value (Hashtbl.find_opt adj e.e_from) ~default:[] in
      Hashtbl.replace adj e.e_from (e.e_to :: cur))
    edges;
  let index = Hashtbl.create 16 in
  let low = Hashtbl.create 16 in
  let on_stack = Hashtbl.create 16 in
  let stack = ref [] in
  let counter = ref 0 in
  let out = ref [] in
  let rec strongconnect v =
    Hashtbl.replace index v !counter;
    Hashtbl.replace low v !counter;
    incr counter;
    stack := v :: !stack;
    Hashtbl.replace on_stack v ();
    List.iter
      (fun w ->
        if not (Hashtbl.mem index w) then begin
          strongconnect w;
          Hashtbl.replace low v
            (min (Hashtbl.find low v) (Hashtbl.find low w))
        end
        else if Hashtbl.mem on_stack w then
          Hashtbl.replace low v
            (min (Hashtbl.find low v) (Hashtbl.find index w)))
      (Option.value (Hashtbl.find_opt adj v) ~default:[]);
    if Hashtbl.find low v = Hashtbl.find index v then begin
      let rec pop acc =
        match !stack with
        | [] -> acc
        | w :: rest ->
          stack := rest;
          Hashtbl.remove on_stack w;
          if w = v then w :: acc else pop (w :: acc)
      in
      out := pop [] :: !out
    end
  in
  List.iter (fun v -> if not (Hashtbl.mem index v) then strongconnect v) nodes;
  !out

let of_acquisitions acqs =
  let locks = Hashtbl.create 16 in
  let seen = Hashtbl.create 16 in
  let edges = ref [] in
  List.iter
    (fun (tid, lock, held, seq) ->
      Hashtbl.replace locks lock ();
      List.iter
        (fun h ->
          Hashtbl.replace locks h ();
          if not (Hashtbl.mem seen (h, lock)) then begin
            Hashtbl.add seen (h, lock) ();
            edges :=
              { e_from = h; e_to = lock; e_tid = tid; e_seq = seq } :: !edges
          end)
        held)
    acqs;
  let edges = List.rev !edges in
  let locks =
    Hashtbl.fold (fun l () acc -> l :: acc) locks [] |> List.sort compare
  in
  let self_loops =
    List.filter_map
      (fun e -> if e.e_from = e.e_to then Some [ e.e_from ] else None)
      edges
  in
  let multi =
    sccs locks edges
    |> List.filter (fun c -> List.length c > 1)
    |> List.map (List.sort compare)
  in
  let cycles = List.sort compare (multi @ self_loops) in
  { locks; edges; cycles }

(* From the machine stream: successful acquisitions (probe events) plus
   every TAS — failed or won — on a W_lock word, each an ordering claim
   "wants l while holding held". *)
let of_accesses ~word_kind accesses =
  let acqs =
    List.filter_map
      (fun (a : M.access) ->
        match a.a_kind with
        | M.A_lock_acq | M.A_lock_att ->
          Some (a.a_tid, a.a_addr, a.a_locks, a.a_seq)
        | M.A_tas _ when word_kind a.a_addr = Some M.W_lock ->
          Some (a.a_tid, a.a_addr, a.a_locks, a.a_seq)
        | _ -> None)
      accesses
  in
  of_acquisitions acqs

(* From a hardware backend's lock-event capture: replay each thread's
   held set (events are in per-thread program order, which is all the
   held-set reconstruction needs). *)
let of_lock_events events =
  let held : (int, int list) Hashtbl.t = Hashtbl.create 16 in
  let rec remove_first x = function
    | [] -> []
    | y :: rest -> if x = y then rest else y :: remove_first x rest
  in
  let acqs = ref [] in
  List.iteri
    (fun i (tid, lock, acquire) ->
      let cur = Option.value (Hashtbl.find_opt held tid) ~default:[] in
      if acquire then begin
        acqs := (tid, lock, cur, i) :: !acqs;
        Hashtbl.replace held tid (lock :: cur)
      end
      else Hashtbl.replace held tid (remove_first lock cur))
    events;
  of_acquisitions (List.rev !acqs)

let acyclic r = r.cycles = []

let pp_cycle ~lock_name ppf cycle =
  Format.fprintf ppf "lock-order: cycle {%s}: the locks are acquired in \
                      incompatible orders (potential deadlock)"
    (String.concat ", " (List.map lock_name cycle))
