module M = Firefly.Machine

(* Vector-clock happens-before checking in the FastTrack style: per-thread
   clocks, and per data word a last-write epoch plus a per-thread read
   table.  Release–acquire edges:

   - W_lock / W_sem words: a clear (or store) releases the word's clock, a
     winning TAS acquires it — the TAS/clear protocol of spin-locks, mutex
     Lock-bits and semaphores.  Failed TASes and plain loads of these words
     are protocol reads, not edges.
   - W_eventcount words: advance (faa) releases, read acquires — the
     edge that makes the wakeup-waiting window benign: a waiter's
     eventcount read at Enqueue synchronizes with any Signal/Broadcast
     advance it observes.
   - Probe-level lock events carry edges only for locks NOT backed by a
     W_lock word (cooperative mutexes, Hoare monitors).  TAS-backed locks
     get their edges exclusively from the hardware protocol above, so a
     "lock" whose word is never atomically TASed provides no ordering —
     which is exactly how a broken spinlock is caught.
   - Spawn and join edges order a child after its creation and a joiner
     after the child's last access.

   W_atomic words are exempt: single benign-by-design racy words the
   paper's protocol sanctions (waiter counts, interest counts). *)

type race = {
  h_addr : int;
  h_name : string;
  h_tid1 : int;  (** earlier access (by stream order) *)
  h_seq1 : int;
  h_kind1 : string;
  h_tid2 : int;  (** later access, unordered with the earlier one *)
  h_seq2 : int;
  h_kind2 : string;
}

type word = {
  mutable last_write : (int * int * int) option;  (* tid, seq, clock *)
  reads : (int, int * int) Hashtbl.t;  (* tid -> seq, clock *)
  mutable reported : bool;
}

let check ~word_kind ~word_name accesses =
  let tvc : (int, Vclock.t) Hashtbl.t = Hashtbl.create 16 in
  let syncvc : (int, Vclock.t) Hashtbl.t = Hashtbl.create 16 in
  let probevc : (int, Vclock.t) Hashtbl.t = Hashtbl.create 16 in
  let words : (int, word) Hashtbl.t = Hashtbl.create 64 in
  let races = ref [] in
  let vc_of tbl key =
    match Hashtbl.find_opt tbl key with
    | Some c -> c
    | None ->
      let c = Vclock.create () in
      Hashtbl.add tbl key c;
      c
  in
  let thread_vc tid =
    match Hashtbl.find_opt tvc tid with
    | Some c -> c
    | None ->
      let c = Vclock.create () in
      (* A thread's own component starts at 1 so its epochs are never
         confused with the all-zero initial clock. *)
      Vclock.set c tid 1;
      Hashtbl.add tvc tid c;
      c
  in
  let word addr =
    match Hashtbl.find_opt words addr with
    | Some w -> w
    | None ->
      let w = { last_write = None; reads = Hashtbl.create 4; reported = false } in
      Hashtbl.add words addr w;
      w
  in
  let acquire_from tbl key tid = Vclock.join (thread_vc tid) (vc_of tbl key) in
  let release_to tbl key tid =
    let c = thread_vc tid in
    Vclock.join (vc_of tbl key) c;
    Vclock.incr c tid
  in
  let kind_str = function
    | M.A_load -> "read"
    | M.A_tas _ | M.A_faa -> "read-modify-write"
    | _ -> "write"
  in
  let found w (a : M.access) (tid1, seq1, kind1) =
    if not w.reported then begin
      w.reported <- true;
      races :=
        {
          h_addr = a.a_addr;
          h_name = word_name a.a_addr;
          h_tid1 = tid1;
          h_seq1 = seq1;
          h_kind1 = kind1;
          h_tid2 = a.a_tid;
          h_seq2 = a.a_seq;
          h_kind2 = kind_str a.a_kind;
        }
        :: !races
    end
  in
  let check_data (a : M.access) ~write =
    let w = word a.a_addr in
    let c = thread_vc a.a_tid in
    (match w.last_write with
    | Some (t, s, clk)
      when t <> a.a_tid && not (Vclock.leq_epoch ~tid:t ~clock:clk c) ->
      found w a (t, s, "write")
    | _ -> ());
    if write then begin
      Hashtbl.iter
        (fun t (s, clk) ->
          if t <> a.a_tid && not (Vclock.leq_epoch ~tid:t ~clock:clk c) then
            found w a (t, s, "read"))
        w.reads;
      w.last_write <- Some (a.a_tid, a.a_seq, Vclock.get c a.a_tid);
      Hashtbl.reset w.reads
    end
    else Hashtbl.replace w.reads a.a_tid (a.a_seq, Vclock.get c a.a_tid)
  in
  List.iter
    (fun (a : M.access) ->
      let k = word_kind a.a_addr in
      match (a.a_kind, k) with
      (* -- synchronization-word protocol edges -- *)
      | M.A_tas true, (Some M.W_lock | Some M.W_sem) ->
        acquire_from syncvc a.a_addr a.a_tid
      | M.A_tas false, (Some M.W_lock | Some M.W_sem) -> ()
      | (M.A_clear | M.A_store), (Some M.W_lock | Some M.W_sem) ->
        release_to syncvc a.a_addr a.a_tid
      | M.A_load, (Some M.W_lock | Some M.W_sem) -> ()
      | M.A_faa, (Some M.W_lock | Some M.W_sem) ->
        (* Not part of either protocol; treat as a full fence. *)
        acquire_from syncvc a.a_addr a.a_tid;
        release_to syncvc a.a_addr a.a_tid
      | M.A_faa, Some M.W_eventcount -> release_to syncvc a.a_addr a.a_tid
      | M.A_load, Some M.W_eventcount -> acquire_from syncvc a.a_addr a.a_tid
      | (M.A_store | M.A_clear | M.A_tas _), Some M.W_eventcount ->
        acquire_from syncvc a.a_addr a.a_tid;
        release_to syncvc a.a_addr a.a_tid
      (* -- sanctioned racy words -- *)
      | (M.A_load | M.A_store | M.A_clear | M.A_tas _ | M.A_faa), Some M.W_atomic
        ->
        ()
      (* -- probe-level lock edges (non-TAS-backed locks only) -- *)
      | M.A_lock_acq, _ ->
        if k <> Some M.W_lock then acquire_from probevc a.a_addr a.a_tid
      | M.A_lock_rel, _ ->
        if k <> Some M.W_lock then release_to probevc a.a_addr a.a_tid
      | M.A_lock_att, _ -> ()
      (* -- thread lifecycle edges -- *)
      | M.A_spawn child, _ ->
        let p = thread_vc a.a_tid in
        let c = thread_vc child in
        Vclock.join c p;
        Vclock.incr p a.a_tid
      | M.A_join child, _ -> Vclock.join (thread_vc a.a_tid) (thread_vc child)
      (* -- data accesses -- *)
      | M.A_load, (None | Some M.W_data) -> check_data a ~write:false
      | (M.A_store | M.A_clear | M.A_tas _ | M.A_faa), (None | Some M.W_data)
        ->
        check_data a ~write:true)
    accesses;
  List.rev !races

let pp_race ppf r =
  Format.fprintf ppf
    "happens-before: %s: t%d's %s at #%d and t%d's %s at #%d are \
     unordered — no release/acquire chain connects them"
    r.h_name r.h_tid1 r.h_kind1 r.h_seq1 r.h_tid2 r.h_kind2 r.h_seq2
