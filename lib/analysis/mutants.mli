(** Seeded fault-injection scenarios validating the dynamic analyzers.

    Each mutant is built to be caught by exactly one detector, and the
    control scenario by none — together they exercise the complementary
    guarantees: lockset is schedule-insensitive but trusts any
    consistently-held "lock"; happens-before is protocol-exact but only
    certifies the observed run; lock-order sees potential deadlocks even
    on surviving schedules. *)

type expect =
  | Hb  (** happens-before must report, lockset must not *)
  | Lockset  (** lockset must report *)
  | Lock_order  (** the lock-order graph must have a cycle *)
  | Clean  (** control: all analyzers must stay silent *)

type scenario = {
  m_name : string;
  m_description : string;
  m_expect : expect;
  m_run : seed:int -> Firefly.Machine.t;
      (** a completed recorded run (the lock-inversion scenario may end
          deadlocked; its access stream is still analyzable) *)
}

val broken_spinlock : seed:int -> Firefly.Machine.t
val lock_inversion : seed:int -> Firefly.Machine.t
val naive_broadcast : seed:int -> Firefly.Machine.t
val clean_window : seed:int -> Firefly.Machine.t

val all : scenario list
val find : string -> scenario option
val names : unit -> string list
