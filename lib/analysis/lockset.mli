(** Eraser-style lockset race detection (Savage et al., SOSP 1997) over
    the machine's access stream.

    Each data word walks virgin → exclusive → shared → shared-modified;
    from the moment a second thread touches the word, the candidate set
    C(v) — locks held on every subsequent access — is refined by
    intersection, and a race is reported the first time C(v) is empty in
    the shared-modified state.  Words registered as synchronization
    ([W_lock], [W_sem], [W_eventcount]) or sanctioned-racy ([W_atomic])
    are exempt; named [W_data] words and unregistered words are checked.

    Lockset checking is schedule-insensitive: it flags missing lock
    discipline even on runs where the accesses happened not to collide —
    and conversely trusts any consistently-held lock, even one acquired
    by broken code (see {!Hb} for the complementary guarantee). *)

type race = {
  r_addr : int;
  r_name : string;
  r_tid : int;  (** thread whose access emptied the candidate set *)
  r_seq : int;  (** that access's sequence number in the stream *)
  r_kind : string;  (** ["read"] or ["write"] *)
  r_prior_tid : int;  (** the previous thread to touch the word *)
}

val check :
  word_kind:(int -> Firefly.Machine.word_kind option) ->
  word_name:(int -> string) ->
  Firefly.Machine.access list ->
  race list
(** First report per word, in stream order. *)

val pp_race : Format.formatter -> race -> unit
