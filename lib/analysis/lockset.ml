module M = Firefly.Machine
module IS = Set.Make (Int)

(* Eraser's per-word state machine (Savage et al. 1997).  The first
   thread may do anything (initialization); once a second thread reads
   the word checking starts in read-shared mode; the first write in
   shared mode arms reporting.  The candidate set C(v) — locks held on
   every checked access — is refined by intersection and a report fires
   when it empties in [Shared_modified]. *)
type word_state =
  | Virgin
  | Exclusive of int
  | Shared
  | Shared_modified

type word = {
  addr : int;
  mutable st : word_state;
  mutable cand : IS.t option;  (* None = all locks (not yet constrained) *)
  mutable last_tid : int;
  mutable reported : bool;
}

type race = {
  r_addr : int;
  r_name : string;
  r_tid : int;
  r_seq : int;
  r_kind : string;  (* "read" or "write" *)
  r_prior_tid : int;
}

type acc_class = Read | Write | Ignore

let classify = function
  | M.A_load -> Read
  | M.A_store | M.A_clear | M.A_tas _ | M.A_faa -> Write
  | M.A_lock_acq | M.A_lock_att | M.A_lock_rel | M.A_spawn _ | M.A_join _ ->
    Ignore

let inter_held cand held =
  let h = IS.of_list held in
  match cand with None -> h | Some c -> IS.inter c h

let check ~word_kind ~word_name accesses =
  let words : (int, word) Hashtbl.t = Hashtbl.create 64 in
  let races = ref [] in
  let is_data addr =
    match word_kind addr with None | Some M.W_data -> true | _ -> false
  in
  let word addr =
    match Hashtbl.find_opt words addr with
    | Some w -> w
    | None ->
      let w =
        { addr; st = Virgin; cand = None; last_tid = -1; reported = false }
      in
      Hashtbl.add words addr w;
      w
  in
  List.iter
    (fun (a : M.access) ->
      match classify a.a_kind with
      | Ignore -> ()
      | (Read | Write) when not (is_data a.a_addr) -> ()
      | cls ->
        let w = word a.a_addr in
        let refine () = w.cand <- Some (inter_held w.cand a.a_locks) in
        let report () =
          if (not w.reported) && w.cand = Some IS.empty then begin
            w.reported <- true;
            races :=
              {
                r_addr = a.a_addr;
                r_name = word_name a.a_addr;
                r_tid = a.a_tid;
                r_seq = a.a_seq;
                r_kind = (if cls = Write then "write" else "read");
                r_prior_tid = w.last_tid;
              }
              :: !races
          end
        in
        (match w.st with
        | Virgin -> w.st <- Exclusive a.a_tid
        | Exclusive t when t = a.a_tid -> ()
        | Exclusive _ ->
          (* Second thread: checking starts here; C(v) seeds from this
             access's lock set. *)
          w.st <- (if cls = Read then Shared else Shared_modified);
          refine ();
          report ()
        | Shared ->
          refine ();
          if cls = Write then begin
            w.st <- Shared_modified;
            report ()
          end
        | Shared_modified ->
          refine ();
          report ());
        w.last_tid <- a.a_tid)
    accesses;
  List.rev !races

let pp_race ppf r =
  Format.fprintf ppf
    "lockset: %s is write-shared with an empty candidate lockset: t%d's %s \
     at #%d holds no lock in common with earlier accesses (last by t%d)"
    r.r_name r.r_tid r.r_kind r.r_seq r.r_prior_tid
