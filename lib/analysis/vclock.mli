(** Mutable vector clocks over thread ids (indices), growing on demand;
    absent entries read as 0. *)

type t

val create : unit -> t

(** Component [i] (0 for unseen threads or negative indices). *)
val get : t -> int -> int

val set : t -> int -> int -> unit

(** [incr c i] bumps component [i] — a thread's release increment. *)
val incr : t -> int -> unit

(** [join a b] — pointwise maximum, into [a]. *)
val join : t -> t -> unit

val copy : t -> t

(** [leq_epoch ~tid ~clock c] — does the epoch [(tid, clock)]
    happen-before (or equal) the time [c] knows?  I.e. [clock <= c(tid)]. *)
val leq_epoch : tid:int -> clock:int -> t -> bool
