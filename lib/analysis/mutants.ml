module M = Firefly.Machine
module Ops = M.Ops
module Probe = M.Probe

(* Seeded fault-injection scenarios, each designed to be caught by exactly
   one analyzer — the validation suite for [lib/analysis], and a
   demonstration of which detector owns which bug class:

   - [broken_spinlock]: a "lock" that tests-then-sets with two separate
     instructions.  Lockset is fooled (every access consistently "holds"
     the lock); happens-before is not — without a winning interlocked TAS
     there is no acquire edge, so the critical sections stay unordered.
   - [lock_inversion]: two mutexes acquired in opposite orders.  Any
     single run may survive; the lock-order graph has the A→B and B→A
     edges regardless of schedule.
   - [naive_broadcast]: the rejected conditions-as-semaphores design on
     the Broadcast workload.  A woken waiter decrements the waiter count
     after releasing the mutex — an empty candidate lockset.
   - [clean_window]: a correct Mesa-style producer/consumer with its data
     words registered for checking.  Every analyzer must stay silent —
     in particular happens-before certifies the wakeup-waiting window
     (deschedule vs. ready) race-free on the observed runs. *)

type expect = Hb | Lockset | Lock_order | Clean

type scenario = {
  m_name : string;
  m_description : string;
  m_expect : expect;
  m_run : seed:int -> M.t;
}

let sim_run ~seed body =
  let report =
    Firefly.Interleave.run
      ~strategy:(Firefly.Sched.random seed)
      ~seed ~max_steps:500_000
      (fun machine ->
        M.set_recording machine true;
        M.set_profiling machine true;
        ignore (M.spawn_root machine body))
  in
  report.Firefly.Interleave.machine

let broken_spinlock ~seed =
  sim_run ~seed (fun () ->
      let lock = Ops.alloc 1 in
      let counter = Ops.alloc 1 in
      Probe.register_word lock M.W_lock "mutant-spinlock";
      Probe.register_word counter M.W_data "mutant-counter";
      (* Test, then set: two instructions where Acquire needs one TAS. *)
      let acquire () =
        while Ops.read lock <> 0 do
          Ops.tick 1
        done;
        Ops.write lock 1;
        Probe.lock_acquired lock
      in
      let release () =
        Probe.lock_released lock;
        Ops.clear lock
      in
      let worker () =
        for _ = 1 to 5 do
          acquire ();
          Ops.write counter (Ops.read counter + 1);
          release ()
        done
      in
      let t1 = Ops.spawn worker in
      let t2 = Ops.spawn worker in
      Ops.join t1;
      Ops.join t2)

let lock_inversion ~seed =
  sim_run ~seed (fun () ->
      let module S =
        (val Taos_threads.Api.make (Taos_threads.Pkg.create ()))
      in
      let a = S.mutex () in
      let b = S.mutex () in
      let worker first second =
        for _ = 1 to 3 do
          S.acquire first;
          Ops.tick 3;
          S.acquire second;
          Ops.tick 3;
          S.release second;
          S.release first
        done
      in
      let t1 = S.fork (fun () -> worker a b) in
      let t2 = S.fork (fun () -> worker b a) in
      S.join t1;
      S.join t2)

let naive_broadcast ~seed =
  match Threads_backend.Backend.find "naive" with
  | Some b -> (
    match (b.Threads_backend.Backend.instrument,
           Threads_backend.Workload.find "broadcast")
    with
    | Threads_backend.Backend.Machine_access f, Some wl ->
      let _, machine = f ~seed wl in
      machine
    | _ -> invalid_arg "naive backend lost its instrumentation")
  | None -> invalid_arg "naive backend not registered"

let clean_window ~seed =
  sim_run ~seed (fun () ->
      let module S =
        (val Taos_threads.Api.make (Taos_threads.Pkg.create ()))
      in
      let m = S.mutex () in
      let nonempty = S.condition () in
      let nonfull = S.condition () in
      let count = Ops.alloc 1 in
      let buf = Ops.alloc 1 in
      Probe.register_word count M.W_data "window.count";
      Probe.register_word buf M.W_data "window.buffer";
      let items = 8 in
      let producer () =
        for i = 1 to items do
          S.with_lock m (fun () ->
              while Ops.read count = 1 do
                S.wait m nonfull
              done;
              Ops.write buf i;
              Ops.write count 1;
              S.signal nonempty)
        done
      in
      let consumer () =
        for _ = 1 to items do
          S.with_lock m (fun () ->
              while Ops.read count = 0 do
                S.wait m nonempty
              done;
              ignore (Ops.read buf);
              Ops.write count 0;
              S.signal nonfull)
        done
      in
      let p = S.fork producer in
      let c = S.fork consumer in
      S.join p;
      S.join c)

let all =
  [
    {
      m_name = "broken-spinlock";
      m_description =
        "spinlock acquiring with separate test and set instead of TAS";
      m_expect = Hb;
      m_run = broken_spinlock;
    };
    {
      m_name = "lock-inversion";
      m_description = "two mutexes acquired in opposite orders by two threads";
      m_expect = Lock_order;
      m_run = lock_inversion;
    };
    {
      m_name = "naive-broadcast";
      m_description =
        "conditions-as-semaphores baseline: waiter count updated outside \
         the mutex";
      m_expect = Lockset;
      m_run = naive_broadcast;
    };
    {
      m_name = "clean-window";
      m_description =
        "correct producer/consumer (control: all analyzers must stay silent)";
      m_expect = Clean;
      m_run = clean_window;
    };
  ]

let find name = List.find_opt (fun s -> s.m_name = name) all
let names () = List.map (fun s -> s.m_name) all
