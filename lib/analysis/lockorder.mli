(** GoodLock-style lock-order analysis (Havelund, SPIN 2000).

    Builds the acquisition-order graph — an edge h → l whenever a thread
    attempted or succeeded in acquiring l while holding h — and reports
    its cycles.  A cycle is a potential deadlock even on schedules that
    happened to survive; attempts count as well as successes, so the
    classic AB/BA deadlock (whose inner acquisitions never complete)
    still closes its cycle. *)

type edge = {
  e_from : int;  (** held lock *)
  e_to : int;  (** acquired (or attempted) lock *)
  e_tid : int;  (** thread of the first witness *)
  e_seq : int;  (** sequence number of the first witness *)
}

type report = {
  locks : int list;  (** every lock id seen, ascending *)
  edges : edge list;  (** deduped by (from, to); first witness kept *)
  cycles : int list list;
      (** each cycle as its sorted member list; includes self-loops *)
}

val of_accesses :
  word_kind:(int -> Firefly.Machine.word_kind option) ->
  Firefly.Machine.access list ->
  report
(** Acquisitions from [A_lock_acq]/[A_lock_att] probe events plus every
    TAS on a [W_lock] word. *)

val of_lock_events : (int * int * bool) list -> report
(** Acquisitions from a hardware backend's [(tid, lock, acquired)] event
    log, replaying each thread's held set in program order. *)

val acyclic : report -> bool

val pp_cycle :
  lock_name:(int -> string) -> Format.formatter -> int list -> unit
