(** Vector-clock happens-before race checking over the access stream.

    Per-thread vector clocks with FastTrack-style per-word metadata (a
    last-write epoch and a per-thread read table).  Release–acquire edges
    come from the implementation's real protocols:

    - [W_lock]/[W_sem] words: clear/store releases, winning TAS acquires;
    - [W_eventcount] words: advance (faa) releases, read acquires — the
      paper's eventcount protocol, which is what makes the wakeup-waiting
      window benign;
    - probe-level lock events, only for locks {e not} backed by a
      [W_lock] word (cooperative mutexes, Hoare monitors) — a TAS-backed
      lock gets ordering only from its hardware protocol, so a spinlock
      that claims acquisition without an atomic TAS provides none and its
      critical sections race;
    - spawn/join.

    Happens-before is schedule-sensitive and protocol-exact: it certifies
    the observed run free of unordered conflicting accesses regardless of
    which locks were held, the complement of {!Lockset}'s discipline
    check. *)

type race = {
  h_addr : int;
  h_name : string;
  h_tid1 : int;  (** earlier access (stream order) *)
  h_seq1 : int;
  h_kind1 : string;
  h_tid2 : int;  (** later access, unordered with the earlier one *)
  h_seq2 : int;
  h_kind2 : string;
}

val check :
  word_kind:(int -> Firefly.Machine.word_kind option) ->
  word_name:(int -> string) ->
  Firefly.Machine.access list ->
  race list
(** First report per word, in stream order. *)

val pp_race : Format.formatter -> race -> unit
