(** Static linter for interface specifications.

    Re-runs {!Spec_core.Proc.well_formed} (declared names, ENSURES names
    covered by MODIFIES AT MOST, one-state WHEN/REQUIRES, ...) and then
    model-checks each clause against a small-state universe — two threads
    and every sort's full value pool, exhaustive for the term language the
    Threads interface uses:

    - a WHEN guard satisfiable in no enumerated pre state (conjoined with
      REQUIRES for an atomic action or a composition's first action) is a
      dead case ({!Error});
    - an ENSURES admitting no post state from any enabling pre state is
      an unimplementable case ({!Error});
    - a MODIFIES name no ENSURES ever constrains leaves that object free
      to change arbitrarily ({!Warning}). *)

type severity = Error | Warning

type finding = { f_severity : severity; f_proc : string; f_msg : string }

val lint : Spec_core.Proc.interface -> finding list
(** Findings in declaration order.  When [well_formed] reports anything,
    only those errors are returned (clause checks assume
    well-formedness). *)

val errors : finding list -> finding list

val pp_finding : Format.formatter -> finding -> unit
