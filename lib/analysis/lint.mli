(** Static linter for interface specifications.

    Re-runs {!Spec_core.Proc.well_formed} (declared names, ENSURES names
    covered by MODIFIES AT MOST, one-state WHEN/REQUIRES, ...) and then
    model-checks each clause against a small-state universe — two threads
    and every sort's full value pool, exhaustive for the term language the
    Threads interface uses:

    - a WHEN guard satisfiable in no enumerated pre state (conjoined with
      REQUIRES for an atomic action or a composition's first action) is a
      dead case ({!Error});
    - an ENSURES admitting no post state from any enabling pre state is
      an unimplementable case ({!Error});
    - a MODIFIES name no ENSURES ever constrains leaves that object free
      to change arbitrarily ({!Warning}). *)

type severity = Error | Warning

(** What a finding is about, so downstream tools (the static verifier's
    diagnostic classes, JSON reports) need not parse messages. *)
type kind =
  | Well_formed  (** a {!Spec_core.Proc.well_formed} violation *)
  | Dead_case  (** WHEN never satisfiable *)
  | Unimplementable_case  (** ENSURES admits no post state *)
  | Unconstrained_modifies  (** MODIFIES name no ENSURES constrains *)
  | Eval_failure  (** the clause semantics raised while checking *)

val kind_name : kind -> string
(** Stable kebab-case name: ["well-formedness"], ["dead-case"],
    ["unimplementable-case"], ["unconstrained-modifies"],
    ["eval-failure"]. *)

type finding = {
  f_severity : severity;
  f_kind : kind;
  f_proc : string;
  f_msg : string;
  f_pos : Spec_core.Lexer.pos option;
      (** source position, when the interface came from the parser and a
          location table was supplied *)
}

val lint :
  ?locs:Spec_core.Parser.locs -> Spec_core.Proc.interface -> finding list
(** Findings in declaration order.  When [well_formed] reports anything,
    only those errors are returned (clause checks assume
    well-formedness).  [locs] attaches [FILE:LINE:COL]-able positions. *)

val errors : finding list -> finding list

val pp_finding : Format.formatter -> finding -> unit
(** Renders ["error: Proc: msg"], with a ["LINE:COL: "] prefix when the
    finding has a position. *)

(** {1 Small-state clause semantics, shared with the static verifier} *)

(** [enumerate iface p] — every (bindings, pre-state) pair over the small
    universe: VAR formals become objects ranging over their sort's pool
    (positional ids [1..n]), by-value formals range over the argument
    pool, and [alerts] over all two-thread subsets.  The distinguished
    SELF thread is id 1. *)
val enumerate :
  Spec_core.Proc.interface ->
  Spec_core.Proc.t ->
  ((string * Spec_core.Term.binding) list * Spec_core.State.t) list

(** [may_delay iface p] — whether some action of [p] can find every WHEN
    guard false in a reachable small-universe state (first actions are
    gated by REQUIRES), i.e. whether a call can block.  Procedures whose
    every action always has an enabled case (Release, Signal, V, ...,
    and TimedP, whose unguarded timeout case is always an out) never
    delay. *)
val may_delay : Spec_core.Proc.interface -> Spec_core.Proc.t -> bool
