(** Per-worker fleet statistics for the run-matrix executor.

    A collector turns the {!Threads_runner.Telemetry} event stream into
    per-domain counters (cells executed, steals won/failed, idle spins,
    busy wall time, in-flight window high-water) plus a coalesced busy
    timeline per worker.  Observation is host-side only: attaching a
    collector never changes a matrix's results, so final reports stay
    byte-identical at any [--jobs].

    Determinism contract: counter {e totals} across the fleet are
    deterministic for a given matrix (total cells = matrix size); the
    attribution of cells to workers and all wall-clock figures are
    host- and schedule-dependent. *)

type t

(** [create ~jobs ~cells ()] — a collector for a matrix of [cells]
    cells run by [jobs] workers.  [?now] injects a clock for tests
    (defaults to [Unix.gettimeofday]). *)
val create :
  ?label:string -> ?now:(unit -> float) -> jobs:int -> cells:int -> unit ->
  t

val jobs : t -> int
val label : t -> string

(** The sink to pass as [?telemetry] to {!Threads_runner.Matrix}
    functions.  Callbacks are safe under the runner's concurrency
    contract (per-worker events arrive from one domain each). *)
val sink : t -> Threads_runner.Telemetry.sink

(** Wall-clock seconds of the last cell completed by [worker] — used by
    {!Progress} for straggler detection. *)
val last_cell_s : t -> worker:int -> float

type worker_stats = {
  ws_id : int;
  ws_cells : int;
  ws_steals_won : int;
  ws_stolen_cells : int;
  ws_steals_failed : int;
  ws_idle_spins : int;
  ws_busy_s : float;
  ws_max_cell_s : float;
  ws_segments : (float * float) list;
      (** Coalesced busy intervals, oldest first, seconds relative to
          collector creation. *)
  ws_dropped_segments : int;
      (** Segments beyond the per-worker cap (counted, not recorded). *)
}

type report = {
  r_label : string;
  r_jobs : int;
  r_expected : int;  (** Matrix size passed at creation. *)
  r_elapsed_s : float;
  r_inflight_hw : int;
  r_workers : worker_stats list;
}

(** Take a snapshot.  Call after the matrix has returned (workers
    joined); reading while workers still run is racy. *)
val snapshot : t -> report

(** Sum of cells over all workers — equals the matrix size once the
    matrix has completed, whatever [jobs]. *)
val total_cells : report -> int

(** Fixed-width utilization table (one row per worker plus totals).
    Structure is deterministic; timing columns are host-dependent. *)
val render : report -> string

val worker_to_json : worker_stats -> Obs.Json.t
val to_json : report -> Obs.Json.t

(** Chrome trace-event JSON (load in [chrome://tracing] / Perfetto):
    worker-occupancy timeline, one track per domain, one complete event
    per coalesced busy segment, microseconds relative to collector
    creation. *)
val chrome : report -> Obs.Json.t
