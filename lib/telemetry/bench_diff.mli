(** Noise-aware comparison of two bench result records (the perf
    trajectory's regression gate).

    Deterministic metrics — per-arm [sim_cycles] and the DPOR execution
    counts — are gated hard: any increase beyond [gate] percent is a
    regression and {!ok} turns false.  Host wall-clock ([host_us_per_run])
    is machine noise by definition, so it is never gated, only reported
    as an advisory when it drifts more than [host_gate] percent.  Arms
    present on only one side are reported as added/removed, not failed. *)

type status = Regression | Improvement | Within | Added | Removed

val status_name : status -> string

type arm = {
  a_name : string;
  a_old_cycles : int option;
  a_new_cycles : int option;
  a_cycles_pct : float option;
  a_status : status;
  a_old_us : float option;
  a_new_us : float option;
  a_us_pct : float option;
  a_us_advisory : bool;
}

type report = {
  d_gate : float;
  d_host_gate : float;
  d_arms : arm list;
  d_regressions : string list;
  d_advisories : string list;
}

(** No deterministic regressions (advisories don't count). *)
val ok : report -> bool

(** [compare_json ~old_ ~new_ ()] compares two records in the
    [results/BENCH.json] shape (schema 1 or 2).  [gate] (percent,
    default 0 — any deterministic increase fails) gates [sim_cycles]
    and DPOR executions; [host_gate] (percent, default 25) is the
    advisory threshold for host timing. *)
val compare_json :
  ?gate:float -> ?host_gate:float -> old_:Obs.Json.t -> new_:Obs.Json.t ->
  unit -> report

(** Fixed-width table plus regression/advisory lines and a final
    OK/FAIL line.  Deterministic given the same inputs. *)
val render : report -> string

val to_json : report -> Obs.Json.t

(** Load a bench record: a [.json] document, or the {e last} record of
    an append-only [.jsonl] history.
    @raise Obs.Json.Parse_error on malformed input or empty history
    @raise Sys_error when unreadable *)
val load_file : string -> Obs.Json.t
