(* Streaming JSON-lines progress for long-running matrices.

   One JSON object per line: start, phase, heartbeat (throughput + ETA),
   straggler, explore (DPOR frontier ticks) and done events.  The stream
   goes to stderr or a file — never stdout — so the final report stays
   byte-identical whether or not progress is enabled.  Event timing and
   throughput figures are host wall-clock and therefore not
   deterministic; the structural fields (cells, totals) are. *)

type dest = Stderr | File of string | Custom of (string -> unit)

type t = {
  fleet : Fleet.t;
  label : string;
  total : int; (* 0 = unknown (no ETA) *)
  now : unit -> float;
  interval : float;
  mu : Mutex.t;
  write : (string -> unit) option;
  close : unit -> unit;
  t0 : float;
  mutable n_done : int;
  mutable sum_s : float;
  mutable last_hb : float;
  mutable last_tick : float;
  mutable finished : bool;
}

let r3 x = Float.round (x *. 1e3) /. 1e3

let json_line fields = Obs.Json.to_string (Obs.Json.Obj fields) ^ "\n"

let emit t fields =
  match t.write with None -> () | Some w -> w (json_line fields)

let create ?now ?(interval = 0.5) ?dest ~label ~total ~jobs () =
  let now = match now with Some f -> f | None -> Unix.gettimeofday in
  let write, close =
    match dest with
    | None -> (None, fun () -> ())
    | Some Stderr ->
      ( Some
          (fun s ->
            output_string stderr s;
            flush stderr),
        fun () -> () )
    | Some (File path) ->
      let oc = open_out path in
      ( Some
          (fun s ->
            output_string oc s;
            flush oc),
        fun () -> close_out oc )
    | Some (Custom f) -> (Some f, fun () -> ())
  in
  let t0 = now () in
  let t =
    {
      fleet = Fleet.create ~label ~now ~jobs ~cells:total ();
      label;
      total;
      now;
      interval;
      mu = Mutex.create ();
      write;
      close;
      t0;
      n_done = 0;
      sum_s = 0.;
      last_hb = t0;
      last_tick = t0;
      finished = false;
    }
  in
  emit t
    [
      ("event", Obs.Json.String "start");
      ("task", Obs.Json.String label);
      ("cells", Obs.Json.Int total);
      ("jobs", Obs.Json.Int jobs);
    ];
  t

let fleet t = t.fleet
let fleet_report t = Fleet.snapshot t.fleet
let cells_done t = t.n_done

let phase t name ~cells =
  Mutex.lock t.mu;
  emit t
    [
      ("event", Obs.Json.String "phase");
      ("name", Obs.Json.String name);
      ("cells", Obs.Json.Int cells);
    ];
  Mutex.unlock t.mu

(* Straggler heuristic: after a baseline of cells, a cell at >4x the
   running mean (and humanly noticeable) gets flagged as it lands. *)
let straggler_min_cells = 8
let straggler_factor = 4.
let straggler_min_s = 0.05

let on_cell_done t ~worker ~cell =
  Mutex.lock t.mu;
  let d = Fleet.last_cell_s t.fleet ~worker in
  let prev = t.n_done in
  t.n_done <- prev + 1;
  (if prev >= straggler_min_cells then
     let mean = t.sum_s /. float_of_int prev in
     if d > straggler_factor *. mean && d > straggler_min_s then
       emit t
         [
           ("event", Obs.Json.String "straggler");
           ("cell", Obs.Json.Int cell);
           ("worker", Obs.Json.Int worker);
           ("cell_s", Obs.Json.Float (r3 d));
           ("mean_s", Obs.Json.Float (r3 mean));
         ]);
  t.sum_s <- t.sum_s +. d;
  let now = t.now () in
  if now -. t.last_hb >= t.interval then begin
    t.last_hb <- now;
    let elapsed = now -. t.t0 in
    let rate =
      if elapsed > 0. then float_of_int t.n_done /. elapsed else 0.
    in
    let base =
      [
        ("event", Obs.Json.String "heartbeat");
        ("done", Obs.Json.Int t.n_done);
        ("total", Obs.Json.Int t.total);
        ("elapsed_s", Obs.Json.Float (r3 elapsed));
        ("cells_per_s", Obs.Json.Float (r3 rate));
      ]
    in
    let eta =
      if t.total > t.n_done && rate > 0. then
        [
          ( "eta_s",
            Obs.Json.Float (r3 (float_of_int (t.total - t.n_done) /. rate))
          );
        ]
      else []
    in
    emit t (base @ eta)
  end;
  Mutex.unlock t.mu

let sink t =
  let f = Fleet.sink t.fleet in
  {
    f with
    Threads_runner.Telemetry.cell_done =
      (fun ~worker ~cell ->
        f.Threads_runner.Telemetry.cell_done ~worker ~cell;
        on_cell_done t ~worker ~cell);
  }

let explore_tick t ~scenario ~executions ~sleep_blocked ~peak_depth =
  Mutex.lock t.mu;
  let now = t.now () in
  if now -. t.last_tick >= t.interval then begin
    t.last_tick <- now;
    let elapsed = now -. t.t0 in
    let rate =
      if elapsed > 0. then float_of_int executions /. elapsed else 0.
    in
    emit t
      [
        ("event", Obs.Json.String "explore");
        ("scenario", Obs.Json.String scenario);
        ("executions", Obs.Json.Int executions);
        ("sleep_blocked", Obs.Json.Int sleep_blocked);
        ("peak_depth", Obs.Json.Int peak_depth);
        ("elapsed_s", Obs.Json.Float (r3 elapsed));
        ("execs_per_s", Obs.Json.Float (r3 rate));
      ]
  end;
  Mutex.unlock t.mu

let finish t =
  if not t.finished then begin
    t.finished <- true;
    let rep = Fleet.snapshot t.fleet in
    emit t
      [
        ("event", Obs.Json.String "done");
        ("task", Obs.Json.String t.label);
        ("cells", Obs.Json.Int (Fleet.total_cells rep));
        ("elapsed_s", Obs.Json.Float (r3 rep.Fleet.r_elapsed_s));
        ( "cells_per_s",
          Obs.Json.Float
            (r3
               (if rep.Fleet.r_elapsed_s > 0. then
                  float_of_int (Fleet.total_cells rep)
                  /. rep.Fleet.r_elapsed_s
                else 0.)) );
        ( "workers",
          Obs.Json.Arr (List.map Fleet.worker_to_json rep.Fleet.r_workers)
        );
      ];
    t.close ()
  end
