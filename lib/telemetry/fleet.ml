(* Per-worker fleet statistics for the run-matrix executor.

   A collector implements the Threads_runner.Telemetry.sink callbacks
   and aggregates them host-side: per-worker counters plus coalesced
   busy segments for the worker-occupancy timeline.  Everything here is
   invisible to the simulated machines — the sink only observes the
   executor, it never feeds anything back — so instrumented runs stay
   cycle- and schedule-identical.

   Concurrency: each worker's record is written only by that worker's
   domain (the runner routes events by worker index); cross-worker
   values (the in-flight high-water mark) are atomics.  Snapshots are
   taken after the matrix has joined its workers, from one domain. *)

module T = Threads_runner.Telemetry

(* Beyond this many timeline segments per worker we keep counting cells
   but stop recording new segments — bounds trace size on million-cell
   matrices.  Adjacent cells closer than [seg_gap] seconds coalesce into
   one segment, which is what keeps real traces far below the cap. *)
let max_segments = 4096
let seg_gap = 0.0005

type worker = {
  mutable w_cells : int;
  mutable w_steals_won : int;
  mutable w_stolen_cells : int;
  mutable w_steals_failed : int;
  mutable w_idle_spins : int;
  mutable w_busy_s : float;
  mutable w_max_cell_s : float;
  mutable w_last_cell_s : float;
  mutable w_cur_start : float;
  mutable w_segments : (float * float) list; (* newest first, absolute *)
  mutable w_nsegs : int;
  mutable w_dropped_segs : int;
}

let fresh_worker () =
  {
    w_cells = 0;
    w_steals_won = 0;
    w_stolen_cells = 0;
    w_steals_failed = 0;
    w_idle_spins = 0;
    w_busy_s = 0.;
    w_max_cell_s = 0.;
    w_last_cell_s = 0.;
    w_cur_start = Float.nan;
    w_segments = [];
    w_nsegs = 0;
    w_dropped_segs = 0;
  }

type t = {
  label : string;
  expected : int;
  now : unit -> float;
  t0 : float;
  workers : worker array;
  inflight_hw : int Atomic.t;
}

let create ?(label = "matrix") ?now ~jobs ~cells () =
  let now = match now with Some f -> f | None -> Unix.gettimeofday in
  {
    label;
    expected = cells;
    now;
    t0 = now ();
    workers = Array.init (max 1 jobs) (fun _ -> fresh_worker ());
    inflight_hw = Atomic.make 0;
  }

let jobs t = Array.length t.workers
let label t = t.label

let rec atomic_max a v =
  let cur = Atomic.get a in
  if v > cur && not (Atomic.compare_and_set a cur v) then atomic_max a v

let get t i = if i >= 0 && i < Array.length t.workers then Some t.workers.(i) else None
let last_cell_s t ~worker = match get t worker with Some w -> w.w_last_cell_s | None -> 0.

let sink t =
  {
    T.cell_start =
      (fun ~worker ~cell:_ ->
        match get t worker with
        | None -> ()
        | Some w -> w.w_cur_start <- t.now ());
    cell_done =
      (fun ~worker ~cell:_ ->
        match get t worker with
        | None -> ()
        | Some w ->
          let now = t.now () in
          let d =
            if Float.is_nan w.w_cur_start then 0. else now -. w.w_cur_start
          in
          let d = if d < 0. then 0. else d in
          w.w_cells <- w.w_cells + 1;
          w.w_busy_s <- w.w_busy_s +. d;
          w.w_last_cell_s <- d;
          if d > w.w_max_cell_s then w.w_max_cell_s <- d;
          let start = now -. d in
          (match w.w_segments with
          | (s0, s1) :: rest when start -. s1 <= seg_gap ->
            w.w_segments <- (s0, now) :: rest
          | segs ->
            if w.w_nsegs >= max_segments then
              w.w_dropped_segs <- w.w_dropped_segs + 1
            else begin
              w.w_segments <- (start, now) :: segs;
              w.w_nsegs <- w.w_nsegs + 1
            end);
          w.w_cur_start <- Float.nan);
    steal =
      (fun ~worker ~victim:_ ~cells ->
        match get t worker with
        | None -> ()
        | Some w ->
          w.w_steals_won <- w.w_steals_won + 1;
          w.w_stolen_cells <- w.w_stolen_cells + cells);
    steal_fail =
      (fun ~worker ->
        match get t worker with
        | None -> ()
        | Some w -> w.w_steals_failed <- w.w_steals_failed + 1);
    idle_spin =
      (fun ~worker ->
        match get t worker with
        | None -> ()
        | Some w -> w.w_idle_spins <- w.w_idle_spins + 1);
    in_flight = (fun ~count -> atomic_max t.inflight_hw count);
  }

type worker_stats = {
  ws_id : int;
  ws_cells : int;
  ws_steals_won : int;
  ws_stolen_cells : int;
  ws_steals_failed : int;
  ws_idle_spins : int;
  ws_busy_s : float;
  ws_max_cell_s : float;
  ws_segments : (float * float) list; (* oldest first, relative to t0 *)
  ws_dropped_segments : int;
}

type report = {
  r_label : string;
  r_jobs : int;
  r_expected : int;
  r_elapsed_s : float;
  r_inflight_hw : int;
  r_workers : worker_stats list;
}

let snapshot t =
  let elapsed = t.now () -. t.t0 in
  let workers =
    Array.to_list
      (Array.mapi
         (fun i w ->
           {
             ws_id = i;
             ws_cells = w.w_cells;
             ws_steals_won = w.w_steals_won;
             ws_stolen_cells = w.w_stolen_cells;
             ws_steals_failed = w.w_steals_failed;
             ws_idle_spins = w.w_idle_spins;
             ws_busy_s = w.w_busy_s;
             ws_max_cell_s = w.w_max_cell_s;
             ws_segments =
               List.rev_map
                 (fun (s0, s1) -> (s0 -. t.t0, s1 -. t.t0))
                 w.w_segments;
             ws_dropped_segments = w.w_dropped_segs;
           })
         t.workers)
  in
  {
    r_label = t.label;
    r_jobs = Array.length t.workers;
    r_expected = t.expected;
    r_elapsed_s = elapsed;
    r_inflight_hw = Atomic.get t.inflight_hw;
    r_workers = workers;
  }

let total_cells r = List.fold_left (fun acc w -> acc + w.ws_cells) 0 r.r_workers

let render r =
  let module Tb = Threads_util.Table in
  let tb =
    Tb.create
      ~title:
        (Printf.sprintf
           "fleet: %s — %d cells over %d workers in %.1f ms (in-flight \
            high-water %d)"
           r.r_label (total_cells r) r.r_jobs
           (r.r_elapsed_s *. 1e3)
           r.r_inflight_hw)
      [
        "worker"; "cells"; "steals"; "stolen"; "fails"; "idle"; "busy ms";
        "util"; "max cell ms";
      ]
  in
  let ms s = Tb.cell_float ~decimals:2 (s *. 1e3) in
  let util busy =
    if r.r_elapsed_s > 0. then Tb.cell_pct (busy /. r.r_elapsed_s)
    else Tb.cell_pct 0.
  in
  List.iter
    (fun w ->
      Tb.add_row tb
        [
          Tb.cell_int w.ws_id;
          Tb.cell_int w.ws_cells;
          Tb.cell_int w.ws_steals_won;
          Tb.cell_int w.ws_stolen_cells;
          Tb.cell_int w.ws_steals_failed;
          Tb.cell_int w.ws_idle_spins;
          ms w.ws_busy_s;
          util w.ws_busy_s;
          ms w.ws_max_cell_s;
        ])
    r.r_workers;
  Tb.add_rule tb;
  let sum f = List.fold_left (fun acc w -> acc + f w) 0 r.r_workers in
  let sumf f = List.fold_left (fun acc w -> acc +. f w) 0. r.r_workers in
  let busy = sumf (fun w -> w.ws_busy_s) in
  Tb.add_row tb
    [
      "all";
      Tb.cell_int (total_cells r);
      Tb.cell_int (sum (fun w -> w.ws_steals_won));
      Tb.cell_int (sum (fun w -> w.ws_stolen_cells));
      Tb.cell_int (sum (fun w -> w.ws_steals_failed));
      Tb.cell_int (sum (fun w -> w.ws_idle_spins));
      ms busy;
      (* Aggregate utilization: busy time over worker-seconds. *)
      (if r.r_elapsed_s > 0. then
         Tb.cell_pct (busy /. (r.r_elapsed_s *. float_of_int r.r_jobs))
       else Tb.cell_pct 0.);
      ms (List.fold_left (fun acc w -> Float.max acc w.ws_max_cell_s) 0. r.r_workers);
    ];
  Tb.render tb

let round3 x = Float.round (x *. 1e3) /. 1e3
let round1 x = Float.round (x *. 10.) /. 10.

let worker_to_json w =
  Obs.Json.Obj
    [
      ("worker", Obs.Json.Int w.ws_id);
      ("cells", Obs.Json.Int w.ws_cells);
      ("steals_won", Obs.Json.Int w.ws_steals_won);
      ("stolen_cells", Obs.Json.Int w.ws_stolen_cells);
      ("steals_failed", Obs.Json.Int w.ws_steals_failed);
      ("idle_spins", Obs.Json.Int w.ws_idle_spins);
      ("busy_ms", Obs.Json.Float (round3 (w.ws_busy_s *. 1e3)));
      ("max_cell_ms", Obs.Json.Float (round3 (w.ws_max_cell_s *. 1e3)));
    ]

let to_json r =
  Obs.Json.Obj
    [
      ("label", Obs.Json.String r.r_label);
      ("jobs", Obs.Json.Int r.r_jobs);
      ("cells", Obs.Json.Int (total_cells r));
      ("elapsed_ms", Obs.Json.Float (round3 (r.r_elapsed_s *. 1e3)));
      ("inflight_high_water", Obs.Json.Int r.r_inflight_hw);
      ("workers", Obs.Json.Arr (List.map worker_to_json r.r_workers));
    ]

(* Chrome trace-event worker-occupancy timeline: one track (tid) per
   worker domain, one complete ("X") event per coalesced busy segment.
   Times are microseconds relative to collector creation.  Built on
   Obs.Json directly rather than Obs.Chrome_trace because the latter's
   clock is simulated integer cycles; fleet occupancy is host
   wall-clock. *)
let chrome r =
  let meta =
    Obs.Json.Obj
      [
        ("name", Obs.Json.String "process_name");
        ("ph", Obs.Json.String "M");
        ("pid", Obs.Json.Int 1);
        ( "args",
          Obs.Json.Obj
            [ ("name", Obs.Json.String ("fleet: " ^ r.r_label)) ] );
      ]
    :: List.map
         (fun w ->
           Obs.Json.Obj
             [
               ("name", Obs.Json.String "thread_name");
               ("ph", Obs.Json.String "M");
               ("pid", Obs.Json.Int 1);
               ("tid", Obs.Json.Int w.ws_id);
               ( "args",
                 Obs.Json.Obj
                   [
                     ( "name",
                       Obs.Json.String
                         (Printf.sprintf "worker %d" w.ws_id) );
                   ] );
             ])
         r.r_workers
  in
  let events =
    List.concat_map
      (fun w ->
        List.map
          (fun (s0, s1) ->
            Obs.Json.Obj
              [
                ("name", Obs.Json.String "cells");
                ("cat", Obs.Json.String "fleet");
                ("ph", Obs.Json.String "X");
                ("ts", Obs.Json.Float (round1 (s0 *. 1e6)));
                ("dur", Obs.Json.Float (round1 ((s1 -. s0) *. 1e6)));
                ("pid", Obs.Json.Int 1);
                ("tid", Obs.Json.Int w.ws_id);
              ])
          w.ws_segments)
      r.r_workers
  in
  Obs.Json.Obj
    [
      ("traceEvents", Obs.Json.Arr (meta @ events));
      ("displayTimeUnit", Obs.Json.String "ms");
    ]
