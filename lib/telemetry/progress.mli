(** Streaming JSON-lines progress events for long-running matrices.

    Wraps a {!Fleet} collector and emits one JSON object per line as
    the matrix runs: [start], [phase] (a named sub-matrix begins),
    [heartbeat] (throughput + ETA, throttled to [interval]),
    [straggler] (a cell far above the running mean), [explore] (DPOR
    frontier ticks) and [done] (with per-worker fleet counters).

    The stream never touches stdout, so final reports are byte-identical
    with or without progress enabled.  Callbacks are mutex-serialized,
    so the sink is safe to share across worker domains. *)

type dest =
  | Stderr
  | File of string  (** Truncates/creates; one flushed line per event. *)
  | Custom of (string -> unit)  (** Receives whole lines (tests). *)

type t

(** [create ~label ~total ~jobs ()] starts a progress stream and emits
    the [start] event.  [total = 0] means "unknown" (heartbeats carry
    no ETA).  [?dest = None] collects fleet stats but emits nothing.
    [?now] injects a clock for tests; [?interval] (seconds, default
    0.5) throttles heartbeat and explore events. *)
val create :
  ?now:(unit -> float) -> ?interval:float -> ?dest:dest -> label:string ->
  total:int -> jobs:int -> unit -> t

(** The underlying fleet collector. *)
val fleet : t -> Fleet.t

(** Snapshot of the underlying collector (see {!Fleet.snapshot}). *)
val fleet_report : t -> Fleet.report

val cells_done : t -> int

(** Announce a named sub-matrix (e.g. one workload of a conform sweep). *)
val phase : t -> string -> cells:int -> unit

(** The sink to pass as [?telemetry]: fleet collection plus progress
    events on each completed cell. *)
val sink : t -> Threads_runner.Telemetry.sink

(** Progress tick for schedule exploration, throttled like heartbeats.
    Counters are cumulative across the whole explore run. *)
val explore_tick :
  t -> scenario:string -> executions:int -> sleep_blocked:int ->
  peak_depth:int -> unit

(** Emit the [done] event (with per-worker counters) and close the
    destination.  Idempotent. *)
val finish : t -> unit
