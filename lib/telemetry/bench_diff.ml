(* Noise-aware comparison of two bench result records.

   The perf trajectory splits metrics by trustworthiness:

   - [sim_cycles] per arm and the DPOR execution counts are fully
     deterministic (simulated clock, seeded schedules) — any increase
     beyond [gate] percent is a hard regression.
   - [host_us_per_run] is wall-clock on whatever machine ran the bench —
     never gated, only surfaced as an advisory when it moves more than
     [host_gate] percent.

   Inputs are Obs.Json values in the results/BENCH.json shape (schema 1
   or 2); [load_file] also accepts an append-only .jsonl history, taking
   its last record. *)

type status = Regression | Improvement | Within | Added | Removed

let status_name = function
  | Regression -> "REGRESSION"
  | Improvement -> "improved"
  | Within -> "ok"
  | Added -> "added"
  | Removed -> "removed"

type arm = {
  a_name : string;
  a_old_cycles : int option;
  a_new_cycles : int option;
  a_cycles_pct : float option;
  a_status : status;
  a_old_us : float option;
  a_new_us : float option;
  a_us_pct : float option;
  a_us_advisory : bool;
}

type report = {
  d_gate : float;
  d_host_gate : float;
  d_arms : arm list;
  d_regressions : string list;
  d_advisories : string list;
}

let ok r = r.d_regressions = []

(* ---- JSON access helpers ---- *)

let str = function Obs.Json.String s -> Some s | _ -> None

let num = function
  | Obs.Json.Int i -> Some (float_of_int i)
  | Obs.Json.Float f -> Some f
  | _ -> None

let int_opt = function
  | Obs.Json.Int i -> Some i
  | Obs.Json.Float f -> Some (int_of_float f)
  | _ -> None

let field j k = Option.value (Obs.Json.find j k) ~default:Obs.Json.Null

let arms_of j =
  match field j "benchmarks" with
  | Obs.Json.Arr rows ->
    List.filter_map
      (fun row ->
        match str (field row "name") with
        | None -> None
        | Some name ->
          Some
            ( name,
              int_opt (field row "sim_cycles"),
              num (field row "host_us_per_run") ))
      rows
  | _ -> []

let pct ~old_ ~new_ =
  if old_ = 0. then if new_ = 0. then 0. else infinity
  else (new_ -. old_) /. old_ *. 100.

(* ---- comparison ---- *)

let compare_arm ~gate ~host_gate name (oc, ou) (nc, nu) =
  let cycles_pct =
    match (oc, nc) with
    | Some o, Some n -> Some (pct ~old_:(float_of_int o) ~new_:(float_of_int n))
    | _ -> None
  in
  let status =
    match (oc, nc, cycles_pct) with
    | Some o, Some n, Some p ->
      if n > o && p > gate then Regression
      else if n < o then Improvement
      else Within
    | _ -> Within
  in
  let us_pct =
    match (ou, nu) with
    | Some o, Some n when o > 0. -> Some (pct ~old_:o ~new_:n)
    | _ -> None
  in
  let advisory =
    match us_pct with Some p -> Float.abs p > host_gate | None -> false
  in
  {
    a_name = name;
    a_old_cycles = oc;
    a_new_cycles = nc;
    a_cycles_pct = cycles_pct;
    a_status = status;
    a_old_us = ou;
    a_new_us = nu;
    a_us_pct = us_pct;
    a_us_advisory = advisory;
  }

let compare_json ?(gate = 0.) ?(host_gate = 25.) ~old_ ~new_ () =
  let old_arms = arms_of old_ and new_arms = arms_of new_ in
  let lookup arms name =
    List.find_map
      (fun (n, c, u) -> if n = name then Some (c, u) else None)
      arms
  in
  (* Old order first (matched and removed arms), then new-only arms —
     deterministic whatever the input ordering. *)
  let arms =
    List.map
      (fun (name, oc, ou) ->
        match lookup new_arms name with
        | Some (nc, nu) -> compare_arm ~gate ~host_gate name (oc, ou) (nc, nu)
        | None ->
          {
            a_name = name;
            a_old_cycles = oc;
            a_new_cycles = None;
            a_cycles_pct = None;
            a_status = Removed;
            a_old_us = ou;
            a_new_us = None;
            a_us_pct = None;
            a_us_advisory = false;
          })
      old_arms
    @ List.filter_map
        (fun (name, nc, nu) ->
          match lookup old_arms name with
          | Some _ -> None
          | None ->
            Some
              {
                a_name = name;
                a_old_cycles = None;
                a_new_cycles = nc;
                a_cycles_pct = None;
                a_status = Added;
                a_old_us = None;
                a_new_us = nu;
                a_us_pct = None;
                a_us_advisory = false;
              })
        new_arms
  in
  let regressions =
    List.filter_map
      (fun a ->
        match (a.a_status, a.a_old_cycles, a.a_new_cycles) with
        | Regression, Some o, Some n ->
          Some
            (Printf.sprintf "%s: sim_cycles %d -> %d (%+.2f%%, gate %.1f%%)"
               a.a_name o n
               (Option.value a.a_cycles_pct ~default:0.)
               gate)
        | _ -> None)
      arms
  in
  (* DPOR block: executions are deterministic too, and the DFS/DPOR
     violation-set agreement must never silently break. *)
  let regressions =
    let old_d = field old_ "dpor" and new_d = field new_ "dpor" in
    let dpor_reg =
      match
        (int_opt (field old_d "dpor_executions"),
         int_opt (field new_d "dpor_executions"))
      with
      | Some o, Some n
        when n > o && pct ~old_:(float_of_int o) ~new_:(float_of_int n) > gate
        ->
        [
          Printf.sprintf
            "dpor: executions %d -> %d (%+.2f%%, gate %.1f%%)" o n
            (pct ~old_:(float_of_int o) ~new_:(float_of_int n))
            gate;
        ]
      | _ -> []
    in
    let agree_reg =
      match field new_d "violations_agree" with
      | Obs.Json.Bool false -> [ "dpor: violation sets no longer agree with DFS" ]
      | _ -> []
    in
    regressions @ dpor_reg @ agree_reg
  in
  let advisories =
    List.filter_map
      (fun a ->
        if a.a_us_advisory then
          match (a.a_old_us, a.a_new_us, a.a_us_pct) with
          | Some o, Some n, Some p ->
            Some
              (Printf.sprintf
                 "%s: host %.2fus -> %.2fus (%+.1f%%; host timing is \
                  advisory, not gated)"
                 a.a_name o n p)
          | _ -> None
        else None)
      arms
  in
  { d_gate = gate; d_host_gate = host_gate; d_arms = arms; d_regressions = regressions; d_advisories = advisories }

(* ---- rendering ---- *)

let render r =
  let module Tb = Threads_util.Table in
  let tb =
    Tb.create
      ~aligns:[ Tb.Left; Tb.Right; Tb.Right; Tb.Right; Tb.Left; Tb.Right ]
      ~title:
        (Printf.sprintf
           "bench-diff: sim_cycles gated at +%.1f%%, host time advisory at \
            ±%.0f%%"
           r.d_gate r.d_host_gate)
      [ "arm"; "cycles old"; "cycles new"; "Δcycles"; "status"; "Δhost" ]
  in
  let cyc = function Some c -> Tb.cell_int c | None -> "-" in
  let p = function
    | Some x when Float.is_finite x -> Printf.sprintf "%+.2f%%" x
    | Some _ -> "+inf"
    | None -> "-"
  in
  List.iter
    (fun a ->
      Tb.add_row tb
        [
          a.a_name;
          cyc a.a_old_cycles;
          cyc a.a_new_cycles;
          p a.a_cycles_pct;
          status_name a.a_status
          ^ (if a.a_us_advisory then " (host drift)" else "");
          p a.a_us_pct;
        ])
    r.d_arms;
  let buf = Buffer.create 1024 in
  Buffer.add_string buf (Tb.render tb);
  List.iter
    (fun m -> Buffer.add_string buf (Printf.sprintf "REGRESSION: %s\n" m))
    r.d_regressions;
  List.iter
    (fun m -> Buffer.add_string buf (Printf.sprintf "advisory: %s\n" m))
    r.d_advisories;
  Buffer.add_string buf
    (if ok r then "bench-diff: OK — no deterministic regressions\n"
     else
       Printf.sprintf "bench-diff: FAIL — %d deterministic regression(s)\n"
         (List.length r.d_regressions));
  Buffer.contents buf

let to_json r =
  let fopt = function
    | Some x when Float.is_finite x -> Obs.Json.Float x
    | Some _ -> Obs.Json.String "inf"
    | None -> Obs.Json.Null
  in
  let iopt = function Some i -> Obs.Json.Int i | None -> Obs.Json.Null in
  Obs.Json.Obj
    [
      ("schema_version", Obs.Json.Int 1);
      ("gate_pct", Obs.Json.Float r.d_gate);
      ("host_gate_pct", Obs.Json.Float r.d_host_gate);
      ("ok", Obs.Json.Bool (ok r));
      ( "arms",
        Obs.Json.Arr
          (List.map
             (fun a ->
               Obs.Json.Obj
                 [
                   ("name", Obs.Json.String a.a_name);
                   ("status", Obs.Json.String (status_name a.a_status));
                   ("old_sim_cycles", iopt a.a_old_cycles);
                   ("new_sim_cycles", iopt a.a_new_cycles);
                   ("cycles_pct", fopt a.a_cycles_pct);
                   ("old_host_us", fopt a.a_old_us);
                   ("new_host_us", fopt a.a_new_us);
                   ("host_pct", fopt a.a_us_pct);
                   ("host_advisory", Obs.Json.Bool a.a_us_advisory);
                 ])
             r.d_arms) );
      ( "regressions",
        Obs.Json.Arr (List.map (fun s -> Obs.Json.String s) r.d_regressions)
      );
      ( "advisories",
        Obs.Json.Arr (List.map (fun s -> Obs.Json.String s) r.d_advisories)
      );
    ]

(* ---- loading ---- *)

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> really_input_string ic (in_channel_length ic))

(* A .jsonl history is append-only, newest last: compare against its
   latest record.  Anything else is a single JSON document. *)
let load_file path =
  let s = read_file path in
  if Filename.check_suffix path ".jsonl" then
    let lines =
      List.filter
        (fun l -> String.trim l <> "")
        (String.split_on_char '\n' s)
    in
    match List.rev lines with
    | last :: _ -> Obs.Json.of_string last
    | [] -> raise (Obs.Json.Parse_error (path ^ ": empty history"))
  else Obs.Json.of_string s
