(* Splitmix64, truncated to OCaml's 63-bit native ints.  The constants are
   the standard ones from Steele, Lea & Flood, "Fast Splittable Pseudorandom
   Number Generators" (OOPSLA 2014). *)

type t = { mutable state : int64 }

let golden_gamma = 0x9E3779B97F4A7C15L

let create seed = { state = Int64.of_int seed }

let copy t = { state = t.state }

let mix z =
  let z = Int64.(mul (logxor z (shift_right_logical z 30)) 0xBF58476D1CE4E5B9L) in
  let z = Int64.(mul (logxor z (shift_right_logical z 27)) 0x94D049BB133111EBL) in
  Int64.(logxor z (shift_right_logical z 31))

let next64 t =
  t.state <- Int64.add t.state golden_gamma;
  mix t.state

let next t =
  (* Mask to 62 bits so the result is non-negative on 64-bit OCaml. *)
  Int64.to_int (Int64.logand (next64 t) 0x3FFFFFFFFFFFFFFFL)

let int t bound =
  assert (bound > 0);
  (* Rejection sampling to avoid modulo bias for large bounds. *)
  let limit = 0x3FFFFFFFFFFFFFFF / bound * bound in
  let rec draw () =
    let r = next t in
    if r < limit then r mod bound else draw ()
  in
  draw ()

let bool t = Int64.logand (next64 t) 1L = 1L

let float t = float_of_int (next t) *. (1.0 /. 4611686018427387904.0)

let pick t arr =
  assert (Array.length arr > 0);
  arr.(int t (Array.length arr))

let pick_list t xs =
  assert (xs <> []);
  List.nth xs (int t (List.length xs))

let shuffle t arr =
  for i = Array.length arr - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = arr.(i) in
    arr.(i) <- arr.(j);
    arr.(j) <- tmp
  done

let split t = { state = mix (next64 t) }

(* Matrix cells must not share a generator (domain-safety) nor overlap
   streams (statistical independence): hash (base, index) through the
   output mixer so adjacent cells land in unrelated regions of the
   splitmix sequence, instead of seeding with [base + index] directly —
   raw consecutive seeds produce correlated first draws. *)
let cell ~base ~index =
  assert (index >= 0);
  {
    state =
      mix
        (Int64.add (Int64.of_int base)
           (Int64.mul (Int64.of_int (index + 1)) golden_gamma));
  }
