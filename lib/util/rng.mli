(** Deterministic pseudo-random number generator (splitmix64).

    Every stochastic component of the reproduction (schedulers, workload
    generators, seed sweeps) draws from this generator so that any run is
    reproducible from its integer seed alone.  We deliberately avoid
    [Stdlib.Random] to keep the stream independent of OCaml version.

    Domain-safety: there is no global generator state — every [t] is an
    independent heap value, and the run-matrix executor gives each matrix
    cell its own instance ({!cell}), so parallel runs never contend on or
    perturb each other's streams.  An individual [t] is not itself safe
    to share across domains; don't. *)

type t

(** [create seed] returns a fresh generator.  Equal seeds yield equal
    streams. *)
val create : int -> t

(** [copy t] is an independent generator with the same current state. *)
val copy : t -> t

(** [next t] returns the next raw 62-bit non-negative integer. *)
val next : t -> int

(** [int t bound] is uniform in [\[0, bound)].  Requires [bound > 0]. *)
val int : t -> int -> int

(** [bool t] is a uniform boolean. *)
val bool : t -> bool

(** [float t] is uniform in [\[0, 1)]. *)
val float : t -> float

(** [pick t arr] returns a uniformly chosen element of [arr].
    Requires [arr] non-empty. *)
val pick : t -> 'a array -> 'a

(** [pick_list t xs] returns a uniformly chosen element of [xs].
    Requires [xs] non-empty. *)
val pick_list : t -> 'a list -> 'a

(** [shuffle t arr] permutes [arr] in place (Fisher-Yates). *)
val shuffle : t -> 'a array -> unit

(** [split t] derives a new generator whose stream is independent of the
    parent's subsequent draws. *)
val split : t -> t

(** [cell ~base ~index] is a fresh generator for matrix cell [index] of a
    run family seeded by [base]: deterministic in [(base, index)], with
    streams statistically independent across cells (the pair is hashed
    through the splitmix output mixer, so adjacent indices do not yield
    adjacent — correlated — raw seeds).  Requires [index >= 0]. *)
val cell : base:int -> index:int -> t
