type summary = {
  n : int;
  mean : float;
  stddev : float;
  min : float;
  max : float;
  p50 : float;
  p90 : float;
  p99 : float;
}

(* One pass for (count, sum); the fold order matches the obvious
   [List.fold_left ( +. )] so results are bit-identical to it. *)
let count_sum samples =
  List.fold_left (fun (n, s) x -> (n + 1, s +. x)) (0, 0.0) samples

let mean samples =
  assert (samples <> []);
  let n, sum = count_sum samples in
  sum /. float_of_int n

let stddev_around m samples =
  let n, sq =
    List.fold_left
      (fun (n, acc) x -> (n + 1, acc +. ((x -. m) ** 2.0)))
      (0, 0.0) samples
  in
  sqrt (sq /. float_of_int n)

let stddev samples = stddev_around (mean samples) samples

let percentile p sorted =
  let n = Array.length sorted in
  assert (n > 0 && p >= 0.0 && p <= 100.0);
  if n = 1 then sorted.(0)
  else begin
    let rank = p /. 100.0 *. float_of_int (n - 1) in
    let lo = int_of_float (floor rank) in
    let hi = min (lo + 1) (n - 1) in
    let frac = rank -. float_of_int lo in
    (sorted.(lo) *. (1.0 -. frac)) +. (sorted.(hi) *. frac)
  end

let summarize samples =
  assert (samples <> []);
  let sorted = Array.of_list samples in
  Array.sort Float.compare sorted;
  let m = mean samples in
  {
    n = Array.length sorted;
    mean = m;
    stddev = stddev_around m samples;
    min = sorted.(0);
    max = sorted.(Array.length sorted - 1);
    p50 = percentile 50.0 sorted;
    p90 = percentile 90.0 sorted;
    p99 = percentile 99.0 sorted;
  }

let summarize_ints samples = summarize (List.map float_of_int samples)

let pp_summary ppf s =
  Format.fprintf ppf "mean=%.2f sd=%.2f p50=%.2f p99=%.2f (n=%d)" s.mean
    s.stddev s.p50 s.p99 s.n
