(** Blocking-chain critical path: the longest dependency chain of
    causal steps from run start to finish.

    The builder walks backwards from the thread that was active when the
    run ended, attributing each interval to the thread gating progress
    over it and crossing wake edges (Nub hand-off, Signal/Broadcast, V,
    alert, join) to the waker.  The resulting step intervals abut, so
    their durations sum exactly to the makespan — every cycle of the run
    is attributed to exactly one step, and each step is decomposed into
    running / spin / runnable-but-unscheduled / blocked cycles on its
    thread's timeline. *)

type entry =
  | Woken of { waker : Threads_util.Tid.t option; obj : int option }
  | Spawned of Threads_util.Tid.t
  | Origin

type step = {
  s_tid : Threads_util.Tid.t;
  s_t0 : int;
  s_t1 : int;
  s_entry : entry;
  s_run : int;
  s_spin : int;
  s_sched : int;
  s_blocked : int;
}

type t = {
  steps : step list;  (** chronological; intervals tile [0, makespan] *)
  total : int;  (** sum of step durations; = makespan by construction *)
}

val build :
  makespan:int -> Timeline.t -> Firefly.Machine.prof_event list -> t
