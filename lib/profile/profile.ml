module M = Firefly.Machine
module Tid = Threads_util.Tid
module Table = Threads_util.Table

type t = {
  makespan : int;
  event_count : int;
  timeline : Timeline.t;
  critpath : Critpath.t;
  waitfor : Waitfor.t;
  name_of : int -> string;
}

let of_machine m =
  let makespan = M.total_cycles m in
  let events = M.prof_events m in
  let snap = Obs.Instrument.snapshot (M.obs m) in
  let spin_spans =
    List.filter_map
      (fun (s : Obs.Instrument.span) ->
        if s.cat = "spin" then Some (s.track, s.t0, s.t1) else None)
      snap.spans
  in
  let timeline = Timeline.build ~makespan ~spin_spans events in
  {
    makespan;
    event_count = M.prof_event_count m;
    timeline;
    critpath = Critpath.build ~makespan timeline events;
    waitfor = Waitfor.build events;
    name_of = (fun o -> M.lock_name m o);
  }

let target_name t = function
  | M.On_obj o -> t.name_of o
  | M.On_thread tid -> Printf.sprintf "t%d" tid
  | M.On_unknown -> "?"

let entry_name t = function
  | Critpath.Origin -> "(start)"
  | Critpath.Spawned p -> Printf.sprintf "fork by t%d" p
  | Critpath.Woken { waker; obj } ->
    let who = match waker with Some w -> Printf.sprintf "t%d" w | None -> "?" in
    let what = match obj with Some o -> t.name_of o | None -> "wake" in
    Printf.sprintf "%s via %s" what who

(* The object (or pseudo-object) whose hand-off put a step on the path —
   the grouping key of the "critical path by object" table. *)
let entry_object t = function
  | Critpath.Origin -> "(start)"
  | Critpath.Spawned _ -> "(fork)"
  | Critpath.Woken { obj = Some o; _ } -> t.name_of o
  | Critpath.Woken { obj = None; _ } -> "(wake)"

let by_object t =
  let tbl = Hashtbl.create 8 in
  List.iter
    (fun (s : Critpath.step) ->
      let key = entry_object t s.s_entry in
      let cycles, steps = Option.value (Hashtbl.find_opt tbl key) ~default:(0, 0) in
      Hashtbl.replace tbl key (cycles + (s.s_t1 - s.s_t0), steps + 1))
    t.critpath.steps;
  Hashtbl.fold (fun key (cycles, steps) acc -> (key, cycles, steps) :: acc) tbl []
  |> List.sort (fun (k1, c1, _) (k2, c2, _) -> compare (-c1, k1) (-c2, k2))

(* Who kept others waiting: blocked cycles grouped by (waker, object).
   Intervals never resolved (waker None) group under "(never woken)". *)
let top_blockers t =
  let tbl = Hashtbl.create 8 in
  List.iter
    (fun (b : Timeline.blocked) ->
      let who =
        match b.b_waker with Some w -> Printf.sprintf "t%d" w | None -> "(never woken)"
      in
      let what =
        match b.b_obj_handed with
        | Some o -> t.name_of o
        | None -> target_name t b.b_target
      in
      let cycles, count =
        Option.value (Hashtbl.find_opt tbl (who, what)) ~default:(0, 0)
      in
      Hashtbl.replace tbl (who, what) (cycles + (b.b_t1 - b.b_t0), count + 1))
    t.timeline.blocks;
  Hashtbl.fold (fun (who, what) (c, n) acc -> (who, what, c, n) :: acc) tbl []
  |> List.sort (fun (w1, o1, c1, _) (w2, o2, c2, _) ->
         compare (-c1, w1, o1) (-c2, w2, o2))

let share t cycles =
  if t.makespan = 0 then 0.0 else float_of_int cycles /. float_of_int t.makespan

(* ---------- table report ---------- *)

let render t =
  let buf = Buffer.create 2048 in
  Buffer.add_string buf
    (Printf.sprintf "profile: makespan %d cycles, %d thread(s), %d event(s)\n\n"
       t.makespan
       (List.length t.timeline.lines)
       t.event_count);
  (* Critical path: one row per step, chronological; the durations tile
     the makespan, so the total row equals it exactly. *)
  let cp =
    Table.create ~title:"critical path (blocking chain)"
      ~aligns:[ Table.Left; Table.Right; Table.Right; Table.Right; Table.Left;
                Table.Right; Table.Right; Table.Right; Table.Right ]
      [ "thread"; "t0"; "t1"; "cycles"; "entered via"; "run"; "spin"; "sched"; "blocked" ]
  in
  List.iter
    (fun (s : Critpath.step) ->
      Table.add_row cp
        [
          Printf.sprintf "t%d" s.s_tid;
          Table.cell_int s.s_t0;
          Table.cell_int s.s_t1;
          Table.cell_int (s.s_t1 - s.s_t0);
          entry_name t s.s_entry;
          Table.cell_int s.s_run;
          Table.cell_int s.s_spin;
          Table.cell_int s.s_sched;
          Table.cell_int s.s_blocked;
        ])
    t.critpath.steps;
  Table.add_rule cp;
  Table.add_row cp
    [ "total"; ""; ""; Table.cell_int t.critpath.total; ""; ""; ""; ""; "" ];
  Buffer.add_string buf (Table.render cp);
  Buffer.add_char buf '\n';
  let byo =
    Table.create ~title:"critical path by object"
      ~aligns:[ Table.Left; Table.Right; Table.Right; Table.Right ]
      [ "object"; "cycles"; "steps"; "share" ]
  in
  List.iter
    (fun (key, cycles, steps) ->
      Table.add_row byo
        [ key; Table.cell_int cycles; Table.cell_int steps;
          Table.cell_pct (share t cycles) ])
    (by_object t);
  Buffer.add_string buf (Table.render byo);
  Buffer.add_char buf '\n';
  let blockers = top_blockers t in
  if blockers <> [] then begin
    let tb =
      Table.create ~title:"top blockers (who kept others waiting)"
        ~aligns:[ Table.Left; Table.Left; Table.Right; Table.Right ]
        [ "waker"; "object"; "blocked cycles"; "wakes" ]
    in
    let rec take n = function
      | [] -> [] | _ when n = 0 -> [] | x :: r -> x :: take (n - 1) r
    in
    List.iter
      (fun (who, what, cycles, count) ->
        Table.add_row tb
          [ who; what; Table.cell_int cycles; Table.cell_int count ])
      (take 10 blockers);
    Buffer.add_string buf (Table.render tb);
    Buffer.add_char buf '\n'
  end;
  let decomp =
    Table.create ~title:"wait decomposition (scheduler- vs lock-induced)"
      ~aligns:[ Table.Left; Table.Right; Table.Right; Table.Right; Table.Right ]
      [ "thread"; "run"; "spin"; "sched"; "blocked" ]
  in
  List.iter
    (fun (l : Timeline.thread_line) ->
      let run, spin, sched, blocked =
        Timeline.decompose l.l_segs ~t0:0 ~t1:t.makespan
      in
      Table.add_row decomp
        [
          Printf.sprintf "t%d" l.l_tid;
          Table.cell_int run;
          Table.cell_int spin;
          Table.cell_int sched;
          Table.cell_int blocked;
        ])
    t.timeline.lines;
  Table.add_rule decomp;
  let run, spin, sched, blocked = Timeline.totals t.timeline in
  Table.add_row decomp
    [ "total"; Table.cell_int run; Table.cell_int spin; Table.cell_int sched;
      Table.cell_int blocked ];
  Buffer.add_string buf (Table.render decomp);
  Buffer.add_string buf
    (Printf.sprintf
       "scheduler-induced wait: %d cycles; lock-induced wait: %d cycles (spin %d + blocked %d)\n"
       sched (spin + blocked) spin blocked);
  if t.waitfor.cycles <> [] || t.waitfor.final <> [] then begin
    Buffer.add_char buf '\n';
    List.iter
      (fun (c : Waitfor.cycle) ->
        Buffer.add_string buf
          (Printf.sprintf "wait-for CYCLE at cycle %d (seq %d): %s\n" c.c_at
             c.c_seq
             (String.concat " -> "
                (List.map
                   (fun (e : Waitfor.edge) ->
                     Printf.sprintf "t%d[%s]" e.w_tid (target_name t e.w_target))
                   c.c_members))))
      t.waitfor.cycles;
    List.iter
      (fun (e : Waitfor.edge) ->
        Buffer.add_string buf
          (Printf.sprintf
             "still blocked at end: t%d on %s (owner %s) since cycle %d\n"
             e.w_tid (target_name t e.w_target)
             (match e.w_owner with
             | Some o -> Printf.sprintf "t%d" o
             | None -> "-")
             e.w_at))
      t.waitfor.final
  end;
  Buffer.contents buf

(* ---------- folded stacks ---------- *)

(* One line per distinct stack, "frame;frame;... cycles" — the format
   flamegraph.pl and speedscope ingest.  Stacks are thread;state[;object],
   aggregated and sorted so output is deterministic. *)
let folded t =
  let tbl = Hashtbl.create 32 in
  List.iter
    (fun (l : Timeline.thread_line) ->
      List.iter
        (fun (s : Timeline.seg) ->
          let stack =
            match (s.kind, s.obj) with
            | Timeline.Blocked, Some o ->
              Printf.sprintf "t%d;%s;%s" s.tid
                (Timeline.kind_name s.kind)
                (t.name_of o)
            | _ -> Printf.sprintf "t%d;%s" s.tid (Timeline.kind_name s.kind)
          in
          let d = s.t1 - s.t0 in
          if d > 0 then
            Hashtbl.replace tbl stack
              (d + Option.value (Hashtbl.find_opt tbl stack) ~default:0))
        l.l_segs)
    t.timeline.lines;
  Hashtbl.fold (fun stack cycles acc -> (stack, cycles) :: acc) tbl []
  |> List.sort compare
  |> List.map (fun (stack, cycles) -> Printf.sprintf "%s %d" stack cycles)
  |> fun lines -> String.concat "\n" lines ^ "\n"

(* ---------- chrome trace ---------- *)

let chrome t =
  let inst = Obs.Instrument.create () in
  List.iter
    (fun (l : Timeline.thread_line) ->
      List.iter
        (fun (s : Timeline.seg) ->
          if s.t1 > s.t0 then
            let name =
              match (s.kind, s.obj) with
              | Timeline.Blocked, Some o ->
                Printf.sprintf "blocked %s" (t.name_of o)
              | _ -> Timeline.kind_name s.kind
            in
            Obs.Instrument.span_add inst ~track:s.tid
              ~cat:(Timeline.kind_name s.kind) name ~t0:s.t0 ~t1:s.t1)
        l.l_segs)
    t.timeline.lines;
  let cp_track =
    1 + List.fold_left (fun a (l : Timeline.thread_line) -> max a l.l_tid) 0
          t.timeline.lines
  in
  List.iter
    (fun (s : Critpath.step) ->
      if s.s_t1 > s.s_t0 then
        Obs.Instrument.span_add inst ~track:cp_track ~cat:"critpath"
          (Printf.sprintf "t%d: %s" s.s_tid (entry_name t s.s_entry))
          ~t0:s.s_t0 ~t1:s.s_t1)
    t.critpath.steps;
  let thread_names =
    List.map
      (fun (l : Timeline.thread_line) -> (l.l_tid, Printf.sprintf "t%d" l.l_tid))
      t.timeline.lines
    @ [ (cp_track, "critical path") ]
  in
  Obs.Chrome_trace.to_string ~process_name:"threads_profile"
    ~cycle_us:Firefly.Cost.us_per_cycle ~thread_names
    (Obs.Instrument.snapshot inst)

(* ---------- json ---------- *)

let to_json t =
  let open Obs.Json in
  let entry_json = function
    | Critpath.Origin -> Obj [ ("kind", String "start") ]
    | Critpath.Spawned p -> Obj [ ("kind", String "fork"); ("parent", Int p) ]
    | Critpath.Woken { waker; obj } ->
      Obj
        [
          ("kind", String "wake");
          ("waker", match waker with Some w -> Int w | None -> Null);
          ( "object",
            match obj with Some o -> String (t.name_of o) | None -> Null );
        ]
  in
  let step_json (s : Critpath.step) =
    Obj
      [
        ("tid", Int s.s_tid);
        ("t0", Int s.s_t0);
        ("t1", Int s.s_t1);
        ("entry", entry_json s.s_entry);
        ("run", Int s.s_run);
        ("spin", Int s.s_spin);
        ("sched", Int s.s_sched);
        ("blocked", Int s.s_blocked);
      ]
  in
  let run, spin, sched, blocked = Timeline.totals t.timeline in
  let edge_json (e : Waitfor.edge) =
    Obj
      [
        ("at", Int e.w_at);
        ("tid", Int e.w_tid);
        ("target", String (target_name t e.w_target));
        ("owner", match e.w_owner with Some o -> Int o | None -> Null);
      ]
  in
  Obj
    [
      ("schema_version", Int 1);
      ("makespan", Int t.makespan);
      ("events", Int t.event_count);
      ( "totals",
        Obj
          [
            ("run", Int run);
            ("spin", Int spin);
            ("sched", Int sched);
            ("blocked", Int blocked);
          ] );
      ( "critical_path",
        Obj
          [
            ("total", Int t.critpath.total);
            ("steps", Arr (List.map step_json t.critpath.steps));
          ] );
      ( "by_object",
        Arr
          (List.map
             (fun (key, cycles, steps) ->
               Obj
                 [
                   ("object", String key);
                   ("cycles", Int cycles);
                   ("steps", Int steps);
                   ("share", Float (share t cycles));
                 ])
             (by_object t)) );
      ( "top_blockers",
        Arr
          (List.map
             (fun (who, what, cycles, count) ->
               Obj
                 [
                   ("waker", String who);
                   ("object", String what);
                   ("blocked_cycles", Int cycles);
                   ("wakes", Int count);
                 ])
             (top_blockers t)) );
      ( "waitfor",
        Obj
          [
            ( "cycles",
              Arr
                (List.map
                   (fun (c : Waitfor.cycle) ->
                     Obj
                       [
                         ("at", Int c.c_at);
                         ("seq", Int c.c_seq);
                         ("members", Arr (List.map edge_json c.c_members));
                       ])
                   t.waitfor.cycles) );
            ("final", Arr (List.map edge_json t.waitfor.final));
          ] );
    ]
