module M = Firefly.Machine
module Tid = Threads_util.Tid

(* What a thread was doing over an interval of simulated time.  The four
   states tile each thread's lifetime [spawn, finish]: it was either
   consuming cycles (Running, refined to Spin while inside a spin-lock
   acquire), parked by the Nub or scheduler (Blocked), or runnable but
   not dispatched (Sched — scheduler-induced wait). *)
type kind = Running | Spin | Sched | Blocked

type seg = {
  tid : Tid.t;
  t0 : int;
  t1 : int;  (* half-open [t0, t1) *)
  kind : kind;
  obj : int option;  (* Blocked: the object waited on, when annotated *)
}

(* One blocked interval with its causal annotations: what the thread
   waited on, who owned it at block time, and who eventually woke it
   (None = still blocked when the run ended — deadlock or starvation). *)
type blocked = {
  b_tid : Tid.t;
  b_t0 : int;
  b_t1 : int;
  b_target : M.wait_target;
  b_owner : Tid.t option;
  b_waker : Tid.t option;
  b_obj_handed : int option;  (* object named by the waker's hand-off *)
}

type thread_line = {
  l_tid : Tid.t;
  l_start : int;  (* spawn time; 0 for the root *)
  l_end : int;  (* finish time, or makespan if still live *)
  l_segs : seg list;  (* chronological, tiling [l_start, l_end) *)
}

type t = {
  makespan : int;
  lines : thread_line list;  (* sorted by tid *)
  blocks : blocked list;  (* all blocked intervals, chronological *)
}

let kind_name = function
  | Running -> "running"
  | Spin -> "spin"
  | Sched -> "runnable"
  | Blocked -> "blocked"

(* Intersect [spins] (wall-clock spin-lock acquire windows for one
   thread) with one Running segment, splitting it into Spin/Running
   parts.  A spin window can straddle dispatch gaps; only the portions
   where the thread actually ran count as Spin. *)
let refine_running ~spins seg =
  let overlaps =
    List.filter_map
      (fun (s0, s1) ->
        let t0 = max s0 seg.t0 and t1 = min s1 seg.t1 in
        if t0 < t1 then Some (t0, t1) else None)
      spins
    |> List.sort compare
  in
  let rec fill t acc = function
    | [] -> if t < seg.t1 then { seg with t0 = t } :: acc else acc
    | (s0, s1) :: rest ->
      let acc = if t < s0 then { seg with t0 = t; t1 = s0 } :: acc else acc in
      fill s1 ({ seg with t0 = s0; t1 = s1; kind = Spin } :: acc) rest
  in
  List.rev (fill seg.t0 [] overlaps)

(* Reconstruct per-thread timelines from the machine's profile stream.
   [spin_spans] are (tid, t0, t1) triples from the obs instrument (the
   cat="spin" spans Spinlock.acquire records). *)
let build ~makespan ~spin_spans (events : M.prof_event list) =
  let spawn_at = Hashtbl.create 16 in
  let finish_at = Hashtbl.create 16 in
  let runs = Hashtbl.create 16 in  (* tid -> (t0, t1) list, rev *)
  let open_block = Hashtbl.create 16 in  (* tid -> pending blocked *)
  let blocks = ref [] in
  let tids = Hashtbl.create 16 in
  List.iter
    (fun (e : M.prof_event) ->
      Hashtbl.replace tids e.pr_tid ();
      match e.pr_kind with
      | M.Pr_run t1 ->
        let l = Option.value (Hashtbl.find_opt runs e.pr_tid) ~default:[] in
        Hashtbl.replace runs e.pr_tid ((e.pr_t, t1) :: l)
      | M.Pr_spawn child ->
        Hashtbl.replace tids child ();
        if not (Hashtbl.mem spawn_at child) then
          Hashtbl.replace spawn_at child e.pr_t
      | M.Pr_block (target, owner) ->
        Hashtbl.replace open_block e.pr_tid
          {
            b_tid = e.pr_tid;
            b_t0 = e.pr_t;
            b_t1 = makespan;
            b_target = target;
            b_owner = owner;
            b_waker = None;
            b_obj_handed = None;
          }
      | M.Pr_wake (waker, handed) -> (
        match Hashtbl.find_opt open_block e.pr_tid with
        | Some b ->
          Hashtbl.remove open_block e.pr_tid;
          blocks :=
            { b with b_t1 = e.pr_t; b_waker = waker; b_obj_handed = handed }
            :: !blocks
        | None -> ())
      | M.Pr_wake_pending _ -> ()
      | M.Pr_finish -> Hashtbl.replace finish_at e.pr_tid e.pr_t)
    events;
  (* Threads still blocked at the end keep b_t1 = makespan, b_waker None. *)
  Hashtbl.iter (fun _ b -> blocks := b :: !blocks) open_block;
  let blocks =
    List.sort (fun a b -> compare (a.b_t0, a.b_tid) (b.b_t0, b.b_tid)) !blocks
  in
  let lines =
    Hashtbl.fold (fun tid () acc -> tid :: acc) tids []
    |> List.sort Tid.compare
    |> List.map (fun tid ->
           let start =
             Option.value (Hashtbl.find_opt spawn_at tid) ~default:0
           in
           let stop =
             Option.value (Hashtbl.find_opt finish_at tid) ~default:makespan
           in
           let spins =
             List.filter_map
               (fun (t, s0, s1) -> if Tid.equal t tid then Some (s0, s1) else None)
               spin_spans
           in
           (* Busy intervals: running segments and blocked intervals, in
              time order; the gaps between them are Sched. *)
           let busy =
             List.rev_map
               (fun (t0, t1) -> { tid; t0; t1; kind = Running; obj = None })
               (Option.value (Hashtbl.find_opt runs tid) ~default:[])
             @ List.filter_map
                 (fun b ->
                   if Tid.equal b.b_tid tid && b.b_t0 < b.b_t1 then
                     Some
                       {
                         tid;
                         t0 = b.b_t0;
                         t1 = b.b_t1;
                         kind = Blocked;
                         obj =
                           (match b.b_target with
                           | M.On_obj o -> Some o
                           | _ -> None);
                       }
                   else None)
                 blocks
           in
           let busy = List.sort (fun a b -> compare a.t0 b.t0) busy in
           let rec tile t acc = function
             | [] ->
               if t < stop then
                 { tid; t0 = t; t1 = stop; kind = Sched; obj = None } :: acc
               else acc
             | s :: rest ->
               let acc =
                 if t < s.t0 then
                   { tid; t0 = t; t1 = s.t0; kind = Sched; obj = None } :: acc
                 else acc
               in
               let segs =
                 if s.kind = Running then refine_running ~spins s else [ s ]
               in
               tile (max t s.t1) (List.rev_append segs acc) rest
           in
           let segs = List.rev (tile start [] busy) in
           { l_tid = tid; l_start = start; l_end = stop; l_segs = segs })
  in
  { makespan; lines; blocks }

(* Sum of cycles per state across [segs] clipped to [t0, t1). *)
let decompose segs ~t0 ~t1 =
  List.fold_left
    (fun (run, spin, sched, blk) s ->
      let d = min s.t1 t1 - max s.t0 t0 in
      if d <= 0 then (run, spin, sched, blk)
      else
        match s.kind with
        | Running -> (run + d, spin, sched, blk)
        | Spin -> (run, spin + d, sched, blk)
        | Sched -> (run, spin, sched + d, blk)
        | Blocked -> (run, spin, sched, blk + d))
    (0, 0, 0, 0) segs

let line t tid = List.find_opt (fun l -> Tid.equal l.l_tid tid) t.lines

(* Whole-run totals per state, over every thread's lifetime. *)
let totals t =
  List.fold_left
    (fun (run, spin, sched, blk) l ->
      let r, s, c, b = decompose l.l_segs ~t0:0 ~t1:t.makespan in
      (run + r, spin + s, sched + c, blk + b))
    (0, 0, 0, 0) t.lines
