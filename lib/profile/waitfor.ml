module M = Firefly.Machine
module Tid = Threads_util.Tid

(* One live wait-for edge: [w_tid] is blocked on [w_target], whose owner
   at block time was [w_owner] (threads wait on objects, objects point
   at their owner — the classical two-partite wait-for graph, projected
   onto threads for cycle detection). *)
type edge = {
  w_at : int;
  w_tid : Tid.t;
  w_target : M.wait_target;
  w_owner : Tid.t option;
}

type cycle = {
  c_at : int;  (* cycle timestamp of the block that closed it *)
  c_seq : int;  (* profile-stream sequence number, for forensics *)
  c_members : edge list;  (* in chain order, starting at the closer *)
}

type t = {
  cycles : cycle list;  (* first snapshot per distinct member set *)
  final : edge list;  (* threads still blocked when the run ended *)
}

(* Follow thread -> owned-object -> owner links from [start].  Returns
   the chain if it loops back to [start]; owners recorded at block time
   stay valid while the waiters stay blocked, which is exactly the
   deadlocked case a snapshot must capture. *)
let find_cycle waiting start =
  let rec follow tid chain seen =
    match Hashtbl.find_opt waiting tid with
    | None -> None
    | Some e ->
      let next =
        match e.w_target with
        | M.On_thread t -> Some t
        | M.On_obj _ -> e.w_owner
        | M.On_unknown -> None
      in
      (match next with
      | None -> None
      | Some t when Tid.equal t start -> Some (List.rev (e :: chain))
      | Some t ->
        if List.exists (Tid.equal t) seen then None
        else follow t (e :: chain) (t :: seen))
  in
  follow start [] [ start ]

let build (events : M.prof_event list) =
  let waiting = Hashtbl.create 16 in
  let cycles = ref [] in
  let seen_member_sets = Hashtbl.create 4 in
  List.iter
    (fun (e : M.prof_event) ->
      match e.pr_kind with
      | M.Pr_block (target, owner) -> (
        Hashtbl.replace waiting e.pr_tid
          { w_at = e.pr_t; w_tid = e.pr_tid; w_target = target; w_owner = owner };
        match find_cycle waiting e.pr_tid with
        | Some members ->
          let key =
            List.map (fun m -> m.w_tid) members |> List.sort Tid.compare
          in
          if not (Hashtbl.mem seen_member_sets key) then begin
            Hashtbl.replace seen_member_sets key ();
            cycles :=
              { c_at = e.pr_t; c_seq = e.pr_seq; c_members = members }
              :: !cycles
          end
        | None -> ())
      | M.Pr_wake _ | M.Pr_finish -> Hashtbl.remove waiting e.pr_tid
      | M.Pr_run _ | M.Pr_spawn _ | M.Pr_wake_pending _ -> ())
    events;
  let final =
    Hashtbl.fold (fun _ e acc -> e :: acc) waiting []
    |> List.sort (fun a b -> Tid.compare a.w_tid b.w_tid)
  in
  { cycles = List.rev !cycles; final }
