module M = Firefly.Machine
module Tid = Threads_util.Tid

(* How a critical-path step begins: the causal event that made its
   thread the one gating progress at that instant. *)
type entry =
  | Woken of { waker : Tid.t option; obj : int option }
      (* a wake edge: the previous step's thread readied this one,
         handing over [obj] (mutex release / Signal / V / alert) *)
  | Spawned of Tid.t  (* forked by the parent *)
  | Origin  (* the root thread's birth at t = 0 *)

type step = {
  s_tid : Tid.t;
  s_t0 : int;
  s_t1 : int;
  s_entry : entry;
  s_run : int;  (* decomposition of [s_t0, s_t1) on s_tid's timeline *)
  s_spin : int;
  s_sched : int;
  s_blocked : int;
}

type t = {
  steps : step list;  (* chronological; intervals tile [0, makespan] *)
  total : int;  (* = makespan by construction *)
}

(* Walk the dependency chain backwards from the end of the run: start at
   the thread that was active last, attribute [wake, now) to it, cross
   the wake edge to the waker, repeat.  Every crossing moves to an event
   with a strictly smaller sequence number, so the walk terminates; the
   attributed intervals abut, so they sum exactly to the makespan. *)
let build ~makespan (timeline : Timeline.t) (events : M.prof_event list) =
  let ev = Array.of_list events in
  let n = Array.length ev in
  (* The thread gating the finish: owner of the run segment with the
     greatest end time (ties to the latest record). *)
  let last_tid =
    let best = ref None in
    Array.iter
      (fun (e : M.prof_event) ->
        match e.pr_kind with
        | M.Pr_run t1 -> (
          match !best with
          | Some (bt, _) when bt > t1 -> ()
          | _ -> best := Some (t1, e.pr_tid))
        | _ -> ())
      ev;
    match !best with
    | Some (_, tid) -> Some tid
    | None -> (
      match n with 0 -> None | _ -> Some ev.(n - 1).pr_tid)
  in
  let decomp tid ~t0 ~t1 =
    match Timeline.line timeline tid with
    | Some l -> Timeline.decompose l.l_segs ~t0 ~t1
    | None -> (0, 0, 0, 0)
  in
  let mk_step tid ~t0 ~t1 entry =
    let run, spin, sched, blocked = decomp tid ~t0 ~t1 in
    {
      s_tid = tid;
      s_t0 = t0;
      s_t1 = t1;
      s_entry = entry;
      s_run = run;
      s_spin = spin;
      s_sched = sched;
      s_blocked = blocked;
    }
  in
  (* Latest wake of [tid] recorded before [bound]; joins, hand-offs and
     alert cancellations all surface as Pr_wake. *)
  let latest_wake tid bound =
    let found = ref None in
    (try
       for i = min bound n - 1 downto 0 do
         let e = ev.(i) in
         if Tid.equal e.pr_tid tid then
           match e.pr_kind with
           | M.Pr_wake (waker, obj) ->
             found := Some (e.pr_seq, e.pr_t, waker, obj);
             raise Exit
           | _ -> ()
       done
     with Exit -> ());
    !found
  in
  let spawn_of tid =
    let found = ref None in
    Array.iter
      (fun (e : M.prof_event) ->
        match e.pr_kind with
        | M.Pr_spawn child when Tid.equal child tid ->
          if !found = None then found := Some (e.pr_seq, e.pr_t, e.pr_tid)
        | _ -> ())
      ev;
    !found
  in
  let rec walk tid t_cur bound acc =
    match latest_wake tid bound with
    | Some (seq, t, waker, obj) ->
      let acc = mk_step tid ~t0:t ~t1:t_cur (Woken { waker; obj }) :: acc in
      (match waker with
      | Some w -> walk w t seq acc
      | None ->
        (* A wake with no thread context (defensive); keep walking this
           thread's own earlier history. *)
        walk tid t seq acc)
    | None -> (
      match spawn_of tid with
      | Some (seq, t, parent) when seq < bound ->
        let acc = mk_step tid ~t0:t ~t1:t_cur (Spawned parent) :: acc in
        walk parent t seq acc
      | _ -> mk_step tid ~t0:0 ~t1:t_cur Origin :: acc)
  in
  let steps =
    match last_tid with Some tid -> walk tid makespan n [] | None -> []
  in
  { steps; total = List.fold_left (fun a s -> a + (s.s_t1 - s.s_t0)) 0 steps }
