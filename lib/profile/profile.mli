(** Causal profiler facade: build a profile from a machine after a
    profiled run ({!Firefly.Machine.set_profiling}) and render it.

    All renderings are deterministic for a fixed seed: tables sort by
    (cycles, name), folded stacks sort lexicographically, and the
    underlying profile stream is host-side bookkeeping — a profiled run
    is cycle- and schedule-identical to an unprofiled one. *)

type t = {
  makespan : int;  (** total simulated cycles of the run *)
  event_count : int;
  timeline : Timeline.t;
  critpath : Critpath.t;
  waitfor : Waitfor.t;
  name_of : int -> string;  (** object id -> display name *)
}

val of_machine : Firefly.Machine.t -> t

(** "critical path by object" rows: (object, cycles, steps), sorted by
    cycles descending then name. *)
val by_object : t -> (string * int * int) list

(** "top blockers" rows: (waker, object, blocked cycles, wake count),
    sorted by blocked cycles descending. *)
val top_blockers : t -> (string * string * int * int) list

(** Deterministic table report: critical path, per-object attribution,
    top blockers, wait decomposition, wait-for forensics. *)
val render : t -> string

(** Folded-stack flamegraph ("thread;state[;object] cycles", one line
    per stack) — the format flamegraph.pl and speedscope ingest. *)
val folded : t -> string

(** Chrome trace-event JSON: one track per thread colored by state,
    plus a dedicated critical-path track. *)
val chrome : t -> string

(** Structured report (schema_version 1) for scripts and CI. *)
val to_json : t -> Obs.Json.t
