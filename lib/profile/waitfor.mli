(** Wait-for graph forensics over the causal profile stream.

    Replays block/wake edges, maintaining the set of live wait-for edges
    (thread → object → owner, or thread → thread for joins).  A block
    that closes a thread-projected cycle yields a {!cycle} snapshot —
    the deadlock's member chain frozen at the instant it formed.  Edges
    still live when the run ends ([final]) are the starvation /
    deadlock residue. *)

type edge = {
  w_at : int;  (** block timestamp, simulated cycles *)
  w_tid : Threads_util.Tid.t;
  w_target : Firefly.Machine.wait_target;
  w_owner : Threads_util.Tid.t option;  (** owner at block time *)
}

type cycle = {
  c_at : int;
  c_seq : int;
  c_members : edge list;  (** in chain order, starting at the closer *)
}

type t = {
  cycles : cycle list;  (** first snapshot per distinct member set *)
  final : edge list;  (** threads still blocked when the run ended *)
}

val build : Firefly.Machine.prof_event list -> t
