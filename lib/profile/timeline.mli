(** Per-thread state timelines reconstructed from the machine's causal
    profile stream ({!Firefly.Machine.prof_events}).

    Each thread's lifetime is tiled by four states: [Running] (consuming
    cycles), [Spin] (running inside a spin-lock acquire), [Sched]
    (runnable but not dispatched — scheduler-induced wait) and [Blocked]
    (parked by the Nub or scheduler — lock-induced wait).  Blocked
    intervals additionally carry the causal annotations the package
    probes recorded: the object waited on, its owner at block time, and
    the waker that ended the wait. *)

type kind = Running | Spin | Sched | Blocked

type seg = {
  tid : Threads_util.Tid.t;
  t0 : int;
  t1 : int;  (** half-open [t0, t1) *)
  kind : kind;
  obj : int option;  (** [Blocked]: the object waited on, when annotated *)
}

type blocked = {
  b_tid : Threads_util.Tid.t;
  b_t0 : int;
  b_t1 : int;  (** = makespan when never woken *)
  b_target : Firefly.Machine.wait_target;
  b_owner : Threads_util.Tid.t option;  (** owner at block time *)
  b_waker : Threads_util.Tid.t option;  (** [None] = never woken *)
  b_obj_handed : int option;  (** object named by the waker's hand-off *)
}

type thread_line = {
  l_tid : Threads_util.Tid.t;
  l_start : int;
  l_end : int;
  l_segs : seg list;  (** chronological, tiling [l_start, l_end) *)
}

type t = {
  makespan : int;
  lines : thread_line list;  (** sorted by tid *)
  blocks : blocked list;  (** all blocked intervals, chronological *)
}

val kind_name : kind -> string

(** [build ~makespan ~spin_spans events] — [spin_spans] are
    [(tid, t0, t1)] wall-clock spin-lock acquire windows from the obs
    instrument (cat ["spin"]). *)
val build :
  makespan:int ->
  spin_spans:(Threads_util.Tid.t * int * int) list ->
  Firefly.Machine.prof_event list ->
  t

(** [(running, spin, sched, blocked)] cycles of [segs] ∩ [t0, t1). *)
val decompose : seg list -> t0:int -> t1:int -> int * int * int * int

val line : t -> Threads_util.Tid.t -> thread_line option

(** Whole-run [(running, spin, sched, blocked)] totals over all threads. *)
val totals : t -> int * int * int * int
