(* Driver of the spec model checking pass.

   [check] composes the clause-level linter (re-exported with diagnostic
   classes) with the abstract engine over the verification suite:

   1. lint: well-formedness, dead cases, unimplementable cases,
      unconstrained MODIFIES — each a class of its own;
   2. if lint found no errors, every suite scenario is explored
      exhaustively, yielding mutex-theft / stale-waiter / exclusion /
      requires-violation / signal-loss / alert-loss / wakeup-window /
      deadlock findings;
   3. spec cases no scenario's exploration ever fired are reported as
      [unreachable-case].

   The pristine Threads interface produces zero findings; each of the
   {!Spec_mutants} corpus produces at least one, led by the mutant's
   expected class. *)

open Spec_core
module Lint = Threads_analysis.Lint

type model_report = {
  mr_scenario : string;
  mr_findings : Finding.t list;
  mr_states : int;
  mr_transitions : int;
  mr_skipped : bool;
}

type report = {
  rep_lint : Finding.t list;
  rep_model : model_report list;
  rep_uncovered : (string * string * int) list;
  rep_findings : Finding.t list;  (* all of the above, in report order *)
}

let of_lint (f : Lint.finding) =
  let severity =
    match f.Lint.f_severity with
    | Lint.Error -> Finding.Error
    | Lint.Warning -> Finding.Warning
  in
  let msg =
    match f.Lint.f_pos with
    | Some p -> Format.asprintf "%a: %s" Lexer.pp_pos p f.Lint.f_msg
    | None -> f.Lint.f_msg
  in
  Finding.make ~severity ~cls:(Lint.kind_name f.Lint.f_kind)
    ~where:f.Lint.f_proc msg

let check ?locs iface =
  let lint_findings = List.map of_lint (Lint.lint ?locs iface) in
  let lint_has_errors = Finding.errors lint_findings <> [] in
  let covered = Hashtbl.create 64 in
  let ran_any = ref false in
  let model =
    if lint_has_errors then
      List.map
        (fun (sc : Engine.scenario) ->
          {
            mr_scenario = sc.Engine.sc_name;
            mr_findings = [];
            mr_states = 0;
            mr_transitions = 0;
            mr_skipped = true;
          })
        Suite.all
    else
      List.map
        (fun (sc : Engine.scenario) ->
          if not (Suite.applicable iface sc) then
            {
              mr_scenario = sc.Engine.sc_name;
              mr_findings = [];
              mr_states = 0;
              mr_transitions = 0;
              mr_skipped = true;
            }
          else
            match Engine.run iface sc with
            | r ->
              ran_any := true;
              List.iter
                (fun c -> Hashtbl.replace covered c ())
                r.Engine.r_covered;
              {
                mr_scenario = sc.Engine.sc_name;
                mr_findings = r.Engine.r_findings;
                mr_states = r.Engine.r_states;
                mr_transitions = r.Engine.r_transitions;
                mr_skipped = false;
              }
            | exception e ->
              {
                mr_scenario = sc.Engine.sc_name;
                mr_findings =
                  [
                    Finding.make ~cls:"engine-error"
                      ~where:sc.Engine.sc_name (Printexc.to_string e);
                  ];
                mr_states = 0;
                mr_transitions = 0;
                mr_skipped = false;
              })
        Suite.all
  in
  let uncovered =
    if not !ran_any then []
    else
      List.filter
        (fun c -> not (Hashtbl.mem covered c))
        (Suite.all_cases iface)
  in
  let uncovered_findings =
    List.map
      (fun (p, a, ci) ->
        Finding.make ~cls:"unreachable-case" ~where:p
          (Printf.sprintf
             "case %d of action %s is fired by no interleaving of any \
              verification scenario"
             (ci + 1) a))
      uncovered
  in
  let findings =
    lint_findings
    @ List.concat_map (fun m -> m.mr_findings) model
    @ uncovered_findings
  in
  {
    rep_lint = lint_findings;
    rep_model = model;
    rep_uncovered = uncovered;
    rep_findings = findings;
  }

let primary rep =
  match rep.rep_findings with [] -> None | f :: _ -> Some f

(* ---- mutant self-test ---- *)

type mutant_result = {
  mu_name : string;
  mu_expected : string;
  mu_primary : string option;
  mu_classes : string list;  (* every class reported, deduplicated *)
  mu_caught : bool;
}

let check_mutant (m : Spec_mutants.t) =
  let rep = check m.Spec_mutants.m_iface in
  let primary_cls =
    match primary rep with None -> None | Some f -> Some f.Finding.cls
  in
  {
    mu_name = m.Spec_mutants.m_name;
    mu_expected = m.Spec_mutants.m_expected;
    mu_primary = primary_cls;
    mu_classes =
      List.sort_uniq compare
        (List.map (fun f -> f.Finding.cls) rep.rep_findings);
    mu_caught = primary_cls = Some m.Spec_mutants.m_expected;
  }

let check_mutants () = List.map check_mutant Spec_mutants.all
