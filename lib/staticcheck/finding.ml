(* A diagnostic produced by the static verifier.  [cls] is the stable
   kebab-case diagnostic class every consumer keys on: the mutant corpus
   asserts each seeded defect is flagged with a distinct class, the JSON
   reports expose it, and the DPOR cross-check compares dynamic violation
   classes against statically reachable ones. *)

type severity = Error | Warning

type t = {
  cls : string;  (* diagnostic class, kebab-case *)
  severity : severity;
  where : string;  (* scenario or procedure the finding is about *)
  msg : string;
}

let make ?(severity = Error) ~cls ~where msg = { cls; severity; where; msg }

let severity_name = function Error -> "error" | Warning -> "warning"

let pp ppf f =
  Format.fprintf ppf "%s[%s] %s: %s" (severity_name f.severity) f.cls f.where
    f.msg

let errors fs = List.filter (fun f -> f.severity = Error) fs

(* Keep the first occurrence of each (class, where, msg) triple; the
   engine can rediscover the same defect on many interleavings. *)
let dedup fs =
  let seen = Hashtbl.create 16 in
  List.filter
    (fun f ->
      let key = (f.cls, f.where, f.msg) in
      if Hashtbl.mem seen key then false
      else begin
        Hashtbl.replace seen key ();
        true
      end)
    fs
