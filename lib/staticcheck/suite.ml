(* The verification suite: nine small closed scenarios that together
   drive every case of every procedure of the Threads interface (the
   driver checks this coverage is complete) and carry the properties the
   abstract engine checks — delivery assertions for the signal-loss /
   wakeup-window analysis, stale-waiter and mutual-exclusion invariants
   with their diagnostic classes. *)

open Spec_core
module Program = Threads_model.Program

let call = Program.call
let obj = fun n -> Program.Aobj n
let thread = fun i -> Program.Athread i

(* One waiter, one signaller.  Benign deadlocks are allowed (the paper's
   Signal may wake nobody), but a delivered-then-stuck path is
   signal-loss and an undeliverable scenario is the wakeup window. *)
let wait_signal =
  {
    Engine.sc_name = "wait-signal";
    sc_program =
      Program.make ~name:"wait-signal"
        ~objects:[ ("m", Sort.Thread); ("c", Sort.Thread_set) ]
        ~programs:
          [
            [ call "Acquire" [ obj "m" ]; call "Wait" [ obj "m"; obj "c" ];
              call "Release" [ obj "m" ] ];
            [ call "Acquire" [ obj "m" ]; call "Signal" [ obj "c" ];
              call "Release" [ obj "m" ] ];
          ]
        ~allow_deadlock:true ();
    sc_assert_delivery = true;
    sc_invariants = [];
  }

let wait_broadcast =
  {
    Engine.sc_name = "wait-broadcast";
    sc_program =
      Program.make ~name:"wait-broadcast"
        ~objects:[ ("m", Sort.Thread); ("c", Sort.Thread_set) ]
        ~programs:
          [
            [ call "Acquire" [ obj "m" ]; call "Wait" [ obj "m"; obj "c" ];
              call "Release" [ obj "m" ] ];
            [ call "Acquire" [ obj "m" ]; call "Broadcast" [ obj "c" ];
              call "Release" [ obj "m" ] ];
          ]
        ~allow_deadlock:true ();
    sc_assert_delivery = true;
    sc_invariants = [];
  }

(* Alert races Signal at an alertable waiter; the alert guarantees
   progress, so no deadlock is tolerated, and nobody may linger in [c]
   after leaving the wait (Nelson's bug). *)
let alert_wait =
  {
    Engine.sc_name = "alert-wait";
    sc_program =
      Program.make ~name:"alert-wait"
        ~objects:[ ("m", Sort.Thread); ("c", Sort.Thread_set) ]
        ~programs:
          [
            [ call "Acquire" [ obj "m" ];
              call "AlertWait" [ obj "m"; obj "c" ];
              call "Release" [ obj "m" ] ];
            [ call "Alert" [ thread 0 ]; call "Acquire" [ obj "m" ];
              call "Signal" [ obj "c" ]; call "Release" [ obj "m" ] ];
          ]
        ();
    sc_assert_delivery = false;
    sc_invariants =
      [ ("stale-waiter", Program.no_stale_waiters ~c:"c" ~waits:[ (0, 1) ]) ];
  }

(* An alerted waiter resuming while another thread is inside its
   critical section: under the pristine spec AlertResume's [m = NIL]
   guards forbid it; dropping them is mutex theft. *)
let alert_wait_held =
  {
    Engine.sc_name = "alert-wait-held";
    sc_program =
      Program.make ~name:"alert-wait-held"
        ~objects:[ ("m", Sort.Thread); ("c", Sort.Thread_set) ]
        ~programs:
          [
            [ call "Acquire" [ obj "m" ];
              call "AlertWait" [ obj "m"; obj "c" ];
              call "Release" [ obj "m" ] ];
            [ call "Alert" [ thread 0 ]; call "Acquire" [ obj "m" ];
              call "Release" [ obj "m" ] ];
          ]
        ();
    sc_assert_delivery = false;
    sc_invariants =
      [ ("stale-waiter", Program.no_stale_waiters ~c:"c" ~waits:[ (0, 1) ]) ];
  }

(* The timeout path always rescues the waiter, so no deadlock. *)
let timed_wait =
  {
    Engine.sc_name = "timed-wait";
    sc_program =
      Program.make ~name:"timed-wait"
        ~objects:[ ("m", Sort.Thread); ("c", Sort.Thread_set) ]
        ~programs:
          [
            [ call "Acquire" [ obj "m" ];
              call "TimedWait" [ obj "m"; obj "c" ];
              call "Release" [ obj "m" ] ];
            [ call "Acquire" [ obj "m" ]; call "Signal" [ obj "c" ];
              call "Release" [ obj "m" ] ];
          ]
        ();
    sc_assert_delivery = false;
    sc_invariants = [];
  }

(* Binary-semaphore mutual exclusion: both threads inside their P..V
   region at once breaks exclusion (caught when P's WHEN is dropped). *)
let semaphore =
  {
    Engine.sc_name = "semaphore";
    sc_program =
      Program.make ~name:"semaphore"
        ~objects:[ ("s", Sort.Semaphore) ]
        ~programs:
          [
            [ call "P" [ obj "s" ]; call "V" [ obj "s" ] ];
            [ call "P" [ obj "s" ]; call "V" [ obj "s" ] ];
          ]
        ();
    sc_assert_delivery = false;
    sc_invariants =
      [
        ( "exclusion",
          Program.mutual_exclusion ~regions:[ (0, 0, 1, []); (1, 0, 1, []) ]
        );
      ];
  }

let alert_p =
  {
    Engine.sc_name = "alert-p";
    sc_program =
      Program.make ~name:"alert-p"
        ~objects:[ ("s", Sort.Semaphore) ]
        ~programs:
          [
            [ call "AlertP" [ obj "s" ] ];
            [ call "Alert" [ thread 0 ] ];
          ]
        ();
    sc_assert_delivery = false;
    sc_invariants = [];
  }

let test_alert =
  {
    Engine.sc_name = "test-alert";
    sc_program =
      Program.make ~name:"test-alert"
        ~objects:[ ("s", Sort.Semaphore) ]
        ~programs:
          [ [ call "TestAlert" [] ]; [ call "Alert" [ thread 0 ] ] ]
        ();
    sc_assert_delivery = false;
    sc_invariants = [];
  }

(* TimedP never delays (its timeout case is unguarded). *)
let timed_p =
  {
    Engine.sc_name = "timed-p";
    sc_program =
      Program.make ~name:"timed-p"
        ~objects:[ ("s", Sort.Semaphore) ]
        ~programs:[ [ call "TimedP" [ obj "s" ] ]; [ call "TimedP" [ obj "s" ] ] ]
        ();
    sc_assert_delivery = false;
    sc_invariants = [];
  }

let all =
  [
    wait_signal; wait_broadcast; alert_wait; alert_wait_held; timed_wait;
    semaphore; alert_p; test_alert; timed_p;
  ]

(* Does the interface provide every procedure a scenario calls, with the
   arity the scenario assumes?  Lets check-spec run on partial or foreign
   spec files: inapplicable scenarios are skipped, not crashed on. *)
let applicable iface (sc : Engine.scenario) =
  Array.for_all
    (fun steps ->
      List.for_all
        (fun (step : Program.step) ->
          match Proc.find_proc iface step.Program.proc with
          | proc ->
            List.length proc.Proc.p_formals = List.length step.Program.args
          | exception Not_found -> false)
        steps)
    sc.sc_program.Program.programs

(* Every (procedure, action, 0-based case) triple of the interface —
   the coverage target the suite's union must meet. *)
let all_cases iface =
  List.concat_map
    (fun (p : Proc.t) ->
      List.concat_map
        (fun (a : Proc.action) ->
          List.mapi (fun ci _ -> (p.Proc.p_name, a.Proc.a_name, ci))
            a.Proc.a_cases)
        (Proc.actions p))
    iface.Proc.i_procs
