(* Whole-program static analysis of scenario ASTs — no execution.

   Walks each straight-line client program with the spec-derived effect
   summaries of {!Effects}, maintaining a must-hold lockset per thread:

   - calling a procedure whose REQUIRES demands the object held while it
     is not in the lockset is [requires-unheld] (Release or Wait outside
     the critical section);
   - a blocking acquire of an object already in the lockset is
     [double-acquire] (guaranteed self-deadlock: WHEN m = NIL can never
     fire while SELF holds m);
   - fresh acquires add lock-order edges from every held object; a cycle
     in the union graph over all programs is [lock-order-cycle];
   - a potentially-blocking call inside a program marked as an interrupt
     handler is [interrupt-blocking].

   The analysis is deterministic and purely syntactic over the scenario
   AST plus the clause-derived summaries. *)

open Spec_core
module P = Proc
module Program = Threads_model.Program

type row = {
  row_program : int;
  row_step : int;
  row_call : string;  (* rendered call, e.g. "Acquire(m)" *)
  row_lockset : string list;  (* must-hold set after the step, sorted *)
}

type report = {
  p_scenario : string;
  p_rows : row list;
  p_edges : (string * string) list;  (* lock-order edges, deduplicated *)
  p_findings : Finding.t list;
}

let render_call (step : Program.step) =
  Printf.sprintf "%s(%s)" step.Program.proc
    (String.concat ", "
       (List.map
          (function
            | Program.Aobj n -> n
            | Program.Athread i -> Printf.sprintf "t%d" i)
          step.Program.args))

(* Find a cycle in the edge list; returns the node sequence if any. *)
let find_cycle edges =
  let nodes =
    List.sort_uniq compare (List.concat_map (fun (a, b) -> [ a; b ]) edges)
  in
  let succs n = List.filter_map (fun (a, b) -> if a = n then Some b else None) edges in
  let rec dfs path n =
    if List.mem n path then
      (* cycle: the suffix of [path] back to [n], in traversal order *)
      let rec suffix = function
        | [] -> []
        | x :: rest -> if x = n then [ x ] else x :: suffix rest
      in
      Some (List.rev (suffix path))
    else
      List.fold_left
        (fun acc s -> match acc with Some _ -> acc | None -> dfs (n :: path) s)
        None (succs n)
  in
  List.fold_left
    (fun acc n -> match acc with Some _ -> acc | None -> dfs [] n)
    None nodes

let check iface (scenario : Program.t) =
  let effects_cache = Hashtbl.create 16 in
  let effects_of proc =
    match Hashtbl.find_opt effects_cache proc.P.p_name with
    | Some e -> e
    | None ->
      let e = Effects.mutex_effects iface proc in
      Hashtbl.replace effects_cache proc.P.p_name e;
      e
  in
  let findings = ref [] in
  let add ?severity ~cls msg =
    findings :=
      Finding.make ?severity ~cls ~where:scenario.Program.name msg
      :: !findings
  in
  let edges = ref [] in
  let rows = ref [] in
  Array.iteri
    (fun pi steps ->
      let interrupt = List.mem pi scenario.Program.interrupts in
      let lockset = ref [] in
      List.iteri
        (fun si (step : Program.step) ->
          match Proc.find_proc iface step.Program.proc with
          | exception Not_found ->
            add ~cls:"unknown-procedure"
              (Printf.sprintf "program %d step %d calls undeclared %s" pi si
                 step.Program.proc)
          | proc ->
            if interrupt && Threads_analysis.Lint.may_delay iface proc then
              add ~cls:"interrupt-blocking"
                (Printf.sprintf
                   "program %d is an interrupt handler but step %d (%s) can \
                    block"
                   pi si (render_call step));
            List.iter
              (fun (e : Effects.effect) ->
                (* positional: formal i <- argument i *)
                let idx =
                  let rec find i = function
                    | [] -> None
                    | (f : P.formal) :: rest ->
                      if f.P.f_name = e.Effects.e_formal then Some i
                      else find (i + 1) rest
                  in
                  find 0 proc.P.p_formals
                in
                match idx with
                | None -> ()
                | Some i -> (
                  match List.nth_opt step.Program.args i with
                  | Some (Program.Aobj name) ->
                    let held = List.mem name !lockset in
                    if e.Effects.e_requires_held && not held then
                      add ~cls:"requires-unheld"
                        (Printf.sprintf
                           "program %d step %d: %s requires %s held but the \
                            must-hold lockset is {%s}"
                           pi si (render_call step) name
                           (String.concat ", " !lockset));
                    if
                      (not e.Effects.e_requires_held)
                      && e.Effects.e_delays
                      && e.Effects.e_post = Effects.Held
                      && held
                    then
                      add ~cls:"double-acquire"
                        (Printf.sprintf
                           "program %d step %d: %s blocks forever — %s is \
                            already held by this thread"
                           pi si (render_call step) name);
                    (match e.Effects.e_post with
                    | Effects.Held ->
                      if not held then begin
                        List.iter
                          (fun h ->
                            if not (List.mem (h, name) !edges) then
                              edges := (h, name) :: !edges)
                          !lockset;
                        lockset := !lockset @ [ name ]
                      end
                    | Effects.Freed ->
                      lockset := List.filter (fun h -> h <> name) !lockset
                    | Effects.Kept | Effects.Unknown -> ())
                  | Some (Program.Athread _) | None -> ()))
              (effects_of proc);
            rows :=
              {
                row_program = pi;
                row_step = si;
                row_call = render_call step;
                row_lockset = List.sort compare !lockset;
              }
              :: !rows)
        steps)
    scenario.Program.programs;
  let edges = List.rev !edges in
  (match find_cycle edges with
  | None -> ()
  | Some cycle ->
    add ~cls:"lock-order-cycle"
      (Printf.sprintf "lock-order graph has a cycle: %s"
         (String.concat " -> " (cycle @ [ List.hd cycle ]))));
  {
    p_scenario = scenario.Program.name;
    p_rows = List.rev !rows;
    p_edges = edges;
    p_findings = Finding.dedup (List.rev !findings);
  }

(* ---- built-in defect demonstrations ---- *)

let demo_scenarios =
  let call = Program.call in
  let obj n = Program.Aobj n in
  [
    Program.make ~name:"lock-inversion-static"
      ~objects:[ ("a", Sort.Thread); ("b", Sort.Thread) ]
      ~programs:
        [
          [ call "Acquire" [ obj "a" ]; call "Acquire" [ obj "b" ];
            call "Release" [ obj "b" ]; call "Release" [ obj "a" ] ];
          [ call "Acquire" [ obj "b" ]; call "Acquire" [ obj "a" ];
            call "Release" [ obj "a" ]; call "Release" [ obj "b" ] ];
        ]
      ();
    Program.make ~name:"double-acquire-static"
      ~objects:[ ("a", Sort.Thread) ]
      ~programs:
        [
          [ call "Acquire" [ obj "a" ]; call "Acquire" [ obj "a" ];
            call "Release" [ obj "a" ] ];
        ]
      ();
    Program.make ~name:"unheld-release-static"
      ~objects:[ ("a", Sort.Thread) ]
      ~programs:[ [ call "Release" [ obj "a" ] ] ]
      ();
    Program.make ~name:"interrupt-blocking-static"
      ~objects:[ ("a", Sort.Thread) ]
      ~programs:
        [
          [ call "Acquire" [ obj "a" ]; call "Release" [ obj "a" ] ];
          [ call "Acquire" [ obj "a" ]; call "Release" [ obj "a" ] ];
        ]
      ~interrupts:[ 1 ] ();
  ]
