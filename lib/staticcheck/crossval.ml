(* Soundness cross-check of the static abstraction against dynamic DPOR
   exploration.

   [repro explore] exhaustively interleaves five implementation-level
   scenarios and reports a canonical violation set per scenario.  This
   module computes, for each of those scenarios, the violation classes
   the *static* abstraction can reach — by abstract model checking of a
   spec-level counterpart program, by whole-program lock analysis, or by
   a spec-conformance judgement — and checks the soundness inclusion:

       every dynamically observed violation class must be statically
       reachable (dynamic ⊆ static).

   The dynamic side defaults to the pinned expectation sets (kept in
   sync with the explore scenarios by tests) and can be overridden with
   violations parsed from an actual [repro explore --format=json] run. *)

open Spec_core
module Program = Threads_model.Program

type entry = {
  x_scenario : string;
  x_dynamic : string list;  (* dynamic violation strings *)
  x_dynamic_classes : string list;
  x_static_classes : string list;
  x_ok : bool;  (* dynamic classes ⊆ static classes *)
}

let contains haystack needle =
  let nh = String.length haystack and nn = String.length needle in
  let rec go i =
    if i + nn > nh then false
    else if String.sub haystack i nn = needle then true
    else go (i + 1)
  in
  nn = 0 || go 0

(* Canonical class of a dynamic violation string. *)
let classify s =
  if contains s "deadlock" then "deadlock"
  else if contains s "admitted by no case" then "spec-conformance"
  else if contains s "invariant" then "invariant"
  else "violation"

(* Pinned dynamic expectation sets of the five explore scenarios
   (tests assert these stay in sync with the harness). *)
let pinned =
  [
    ("wakeup-waiting", []);
    ("alert-cancel", []);
    ( "naive-broadcast",
      [
        "stranded waiter: deadlock blocked=[0,1]";
        "stranded waiter: deadlock blocked=[0,2]";
      ] );
    ( "hoare-signal",
      [
        "hoare hand-off: Wait.Resume by t1 with outcome RETURNS admitted \
         by no case: [RETURNS: when=false kind-match=true ensures=false]";
      ] );
    ("disjoint-locks", []);
  ]

(* The spec-level counterpart of the naive-broadcast scenario (E5): a
   condition variable encoded as a semaphore that starts unavailable;
   the broadcaster Vs once while two waiters sit in the Release/P
   window, so one waiter is stranded — the abstract engine reaches the
   deadlock exhaustively. *)
let naive_broadcast_counterpart =
  let call = Program.call in
  let obj n = Program.Aobj n in
  let waiter =
    [
      call "Acquire" [ obj "m" ]; call "Release" [ obj "m" ];
      call "P" [ obj "sem" ]; call "Acquire" [ obj "m" ];
      call "Release" [ obj "m" ];
    ]
  in
  {
    Engine.sc_name = "naive-broadcast-static";
    sc_program =
      Program.make ~name:"naive-broadcast-static"
        ~objects:[ ("m", Sort.Thread); ("sem", Sort.Semaphore) ]
        ~programs:
          [
            waiter; waiter;
            [
              call "Acquire" [ obj "m" ]; call "Release" [ obj "m" ];
              call "V" [ obj "sem" ];
            ];
          ]
        ~initials:[ ("sem", Value.Sem Value.Unavailable) ]
        ();
    sc_assert_delivery = false;
    sc_invariants = [];
  }

(* The spec-level counterpart of two disjoint mutex pairs. *)
let disjoint_locks_counterpart =
  let call = Program.call in
  let obj n = Program.Aobj n in
  let worker m = [ call "Acquire" [ obj m ]; call "Release" [ obj m ] ] in
  {
    Engine.sc_name = "disjoint-locks-static";
    sc_program =
      Program.make ~name:"disjoint-locks-static"
        ~objects:[ ("ma", Sort.Thread); ("mb", Sort.Thread) ]
        ~programs:[ worker "ma"; worker "ma"; worker "mb"; worker "mb" ]
        ();
    sc_assert_delivery = false;
    sc_invariants = [];
  }

let engine_classes iface sc =
  let r = Engine.run iface sc in
  List.sort_uniq compare
    (List.map (fun f -> f.Finding.cls) r.Engine.r_findings)

(* The Hoare hand-off judgement (E8): the waiter's Resume fires while
   the signaller still owns the abstract mutex, transferring ownership
   directly.  The specification must reject the transition — if
   [check_transition] admitted it, Hoare signalling would conform and
   the dynamic spec-conformance violation would be statically
   unreachable. *)
let hoare_handoff_classes iface =
  let m = Spec_obj.make ~oid:1 "m" Sort.Thread in
  let c = Spec_obj.make ~oid:2 "c" Sort.Thread_set in
  let waiter = 1 and signaller = 2 in
  let pre =
    State.add m (Value.Thread signaller)
      (State.add c (Value.Set Threads_util.Tid.Set.empty) State.empty)
  in
  let post =
    State.add m (Value.Thread waiter)
      (State.add c (Value.Set Threads_util.Tid.Set.empty) State.empty)
  in
  let proc = Proc.find_proc iface "Wait" in
  let resume =
    List.find (fun (a : Proc.action) -> a.Proc.a_name = "Resume")
      (Proc.actions proc)
  in
  let bindings = [ ("m", Term.Obj m); ("c", Term.Obj c) ] in
  match
    Semantics.check_transition iface proc resume ~self:waiter ~bindings ~pre
      ~post ~outcome:Proc.Returns ~result:None
  with
  | Ok _ -> []  (* hand-off admitted: the defect is NOT statically visible *)
  | Error _ -> [ "spec-conformance" ]

let static_classes iface = function
  | "wakeup-waiting" -> engine_classes iface Suite.wait_signal
  | "alert-cancel" -> engine_classes iface Suite.alert_wait
  | "naive-broadcast" -> engine_classes iface naive_broadcast_counterpart
  | "hoare-signal" -> hoare_handoff_classes iface
  | "disjoint-locks" ->
    let rep =
      Progcheck.check iface disjoint_locks_counterpart.Engine.sc_program
    in
    List.sort_uniq compare
      (List.map (fun f -> f.Finding.cls) rep.Progcheck.p_findings)
    @ engine_classes iface disjoint_locks_counterpart
  | name -> failwith ("Crossval: unknown explore scenario " ^ name)

(* [run iface ~dynamic] — [dynamic] maps scenario name to the violation
   set an actual exploration produced; defaults to {!pinned}. *)
let run ?(dynamic = pinned) iface =
  List.map
    (fun (name, _) ->
      let dyn =
        match List.assoc_opt name dynamic with Some v -> v | None -> []
      in
      let dyn_classes = List.sort_uniq compare (List.map classify dyn) in
      let static = static_classes iface name in
      {
        x_scenario = name;
        x_dynamic = dyn;
        x_dynamic_classes = dyn_classes;
        x_static_classes = static;
        x_ok = List.for_all (fun c -> List.mem c static) dyn_classes;
      })
    pinned
