(* Abstract model checker for the static spec verifier.

   Explores every interleaving a scenario's client programs admit under
   the interface specification — like {!Threads_model.Checker} — but over
   an *augmented* abstract transition system: each node carries a ghost
   "delivered" bit recording whether, somewhere on the path, another
   thread's action removed a parked waiter from a condition.  The bit
   separates the two deadlock families the plain checker conflates:

   - a benign ordering deadlock (the paper's Signal may legally wake
     nobody — no liveness), reached with [delivered = false];
   - a lost wakeup, where a signal *was* delivered and a waiter is stuck
     anyway ([signal-loss]), or where no delivery is reachable at all in
     a scenario that must exhibit one ([wakeup-window] — the paper's
     wakeup-waiting defect, rediscovered when Enqueue is mutated to keep
     the mutex).

   Per-transition checks additionally flag mutex theft (a thread
   overwriting a Thread-sorted object another thread owns) and classified
   invariant violations; deadlocks where an alerted thread is parked in
   AlertResume are [alert-loss].  Case coverage is collected so the
   driver can report spec cases no scenario can reach. *)

open Spec_core
module Program = Threads_model.Program
module Tid = Threads_util.Tid

type scenario = {
  sc_name : string;
  sc_program : Program.t;
  sc_assert_delivery : bool;
      (* the scenario must be able to deliver a wakeup; if no path does,
         report the wakeup-waiting window *)
  sc_invariants : (string * (Program.view -> string option)) list;
      (* (diagnostic class, invariant) pairs checked at every node *)
}

type result = {
  r_findings : Finding.t list;
  r_states : int;
  r_transitions : int;
  r_covered : (string * string * int) list;
      (* (procedure, action, 0-based case) triples some transition fired *)
  r_delivery_reachable : bool;
}

type node = { state : State.t; phases : Program.phase array; delivered : bool }

let node_key node =
  let buf = Buffer.create 64 in
  List.iter
    (fun obj ->
      Buffer.add_string buf
        (Printf.sprintf "%d=%s;" obj.Spec_obj.oid
           (Value.to_string (State.get node.state obj))))
    (State.objects node.state);
  Array.iter
    (fun p ->
      Buffer.add_string buf
        (match p with
        | Program.Idle s -> Printf.sprintf "I%d," s
        | Program.Mid (s, k) -> Printf.sprintf "M%d.%d," s k
        | Program.Done -> "D,"))
    node.phases;
  Buffer.add_char buf (if node.delivered then 'd' else '-');
  Buffer.contents buf

(* Is program [j] parked inside a composition (it has executed at least
   the Enqueue of its current call)? *)
let parked phases j =
  j >= 0
  && j < Array.length phases
  &&
  match phases.(j) with
  | Program.Mid (_, k) -> k >= 1
  | Program.Idle _ | Program.Done -> false

let run ?(max_states = 1_000_000) iface (sc : scenario) =
  let scenario = sc.sc_program in
  let objects =
    List.mapi
      (fun i (name, sort) -> (name, Spec_obj.make ~oid:(i + 1) name sort))
      scenario.Program.objects
  in
  let init_state =
    List.fold_left
      (fun st (name, obj) ->
        let v =
          match List.assoc_opt name scenario.Program.initials with
          | Some v -> v
          | None -> Value.initial obj.Spec_obj.sort
        in
        State.add obj v st)
      State.empty objects
  in
  let thread_objs =
    List.filter (fun (_, o) -> o.Spec_obj.sort = Sort.Thread) objects
  in
  let cond_objs =
    List.filter (fun (_, o) -> o.Spec_obj.sort = Sort.Thread_set) objects
  in
  let nprogs = Array.length scenario.Program.programs in
  let init =
    { state = init_state; phases = Array.make nprogs (Program.Idle 0);
      delivered = false }
  in
  let step_of i s = List.nth scenario.Program.programs.(i) s in
  let bindings_of (step : Program.step) proc =
    Semantics.bindings_of_args iface proc
      (List.map
         (function
           | Program.Aobj name -> `Obj (List.assoc name objects)
           | Program.Athread i -> `Val (Value.Thread (Program.tid_of i)))
         step.args)
  in
  let pending node i =
    match node.phases.(i) with
    | Program.Done -> None
    | Program.Idle s ->
      if s >= List.length scenario.Program.programs.(i) then None
      else
        let step = step_of i s in
        let proc = Proc.find_proc iface step.Program.proc in
        Some (step, proc, List.hd (Proc.actions proc), 0, s)
    | Program.Mid (s, k) ->
      let step = step_of i s in
      let proc = Proc.find_proc iface step.Program.proc in
      Some (step, proc, List.nth (Proc.actions proc) k, k, s)
  in
  let advance_phase (proc : Proc.t) k s prog_len =
    let nactions = List.length (Proc.actions proc) in
    if k + 1 >= nactions then
      if s + 1 >= prog_len then Program.Done else Program.Idle (s + 1)
    else Program.Mid (s, k + 1)
  in
  let findings = ref [] in
  let add ~cls msg =
    findings := Finding.make ~cls ~where:sc.sc_name msg :: !findings
  in
  let covered = Hashtbl.create 64 in
  let delivery_reachable = ref false in
  let visited = Hashtbl.create 4096 in
  let states = ref 0 and transitions = ref 0 in
  let view node =
    { Program.state = node.state; phases = node.phases; objects }
  in
  let check_invariants node =
    List.iter
      (fun (cls, inv) ->
        match inv (view node) with None -> () | Some msg -> add ~cls msg)
      sc.sc_invariants
  in
  (* Did thread [self]'s transition remove a *parked other* thread from a
     condition?  That is a wakeup delivery. *)
  let delivers ~self ~pre_node post_state =
    List.exists
      (fun (_, obj) ->
        let before = Value.as_set (State.get pre_node.state obj) in
        let after = Value.as_set (State.get post_state obj) in
        Tid.Set.exists
          (fun u -> u <> self && parked pre_node.phases (u - 1))
          (Tid.Set.diff before after))
      cond_objs
  in
  (* Did thread [self] overwrite a Thread-sorted object another thread
     owns?  Mutex ownership transfers only through the owner's own
     Release/Enqueue; any other change is theft. *)
  let theft ~self ~proc ~action ~pre_state post_state =
    List.iter
      (fun (name, obj) ->
        match State.get pre_state obj with
        | Value.Thread u when u <> self ->
          if not (Value.equal (State.get pre_state obj) (State.get post_state obj))
          then
            add ~cls:"mutex-theft"
              (Printf.sprintf
                 "%s.%s by t%d changes %s from t%d while t%d holds it" proc
                 action self name u u)
        | _ -> ())
      thread_objs
  in
  let stack = ref [ init ] in
  check_invariants init;
  while !stack <> [] do
    match !stack with
    | [] -> ()
    | node :: rest ->
      stack := rest;
      let key = node_key node in
      if not (Hashtbl.mem visited key) then begin
        Hashtbl.replace visited key ();
        incr states;
        if !states > max_states then
          failwith "Staticcheck.Engine: state-space bound exceeded";
        let any_enabled = ref false in
        let all_done = ref true in
        for i = 0 to nprogs - 1 do
          match pending node i with
          | None -> ()
          | Some (step, proc, action, k, s) ->
            all_done := false;
            let self = Program.tid_of i in
            let bindings = bindings_of step proc in
            if
              k = 0
              && not (Semantics.requires_holds proc ~self ~bindings node.state)
            then
              add ~cls:"requires-violation"
                (Printf.sprintf "t%d calls %s with REQUIRES false" self
                   step.Program.proc);
            let outs =
              Semantics.outcomes iface proc action ~self ~bindings node.state
            in
            List.iter
              (fun (o : Semantics.outcome) ->
                any_enabled := true;
                incr transitions;
                Hashtbl.replace covered
                  (step.Program.proc, action.Proc.a_name, o.Semantics.o_case)
                  ();
                theft ~self ~proc:step.Program.proc
                  ~action:action.Proc.a_name ~pre_state:node.state
                  o.Semantics.o_post;
                let delivered_now =
                  delivers ~self ~pre_node:node o.Semantics.o_post
                in
                if delivered_now then delivery_reachable := true;
                let phases = Array.copy node.phases in
                phases.(i) <-
                  advance_phase proc k s
                    (List.length scenario.Program.programs.(i));
                let node' =
                  { state = o.Semantics.o_post; phases;
                    delivered = node.delivered || delivered_now }
                in
                check_invariants node';
                stack := node' :: !stack)
              outs
        done;
        if (not !any_enabled) && not !all_done then begin
          let blocked =
            List.filter (fun i -> pending node i <> None)
              (List.init nprogs (fun i -> i))
          in
          let blocked_str =
            String.concat "," (List.map string_of_int blocked)
          in
          if node.delivered then
            add ~cls:"signal-loss"
              (Printf.sprintf
                 "wakeup delivered yet threads [%s] are stuck forever"
                 blocked_str)
          else
            let alerted_parked =
              List.filter
                (fun i ->
                  Tid.Set.mem (Program.tid_of i) (State.alerts node.state)
                  &&
                  match pending node i with
                  | Some (_, _, action, _, _) ->
                    action.Proc.a_name = "AlertResume"
                  | None -> false)
                blocked
            in
            if alerted_parked <> [] then
              add ~cls:"alert-loss"
                (Printf.sprintf
                   "threads [%s] are alerted but parked forever in \
                    AlertResume"
                   (String.concat ","
                      (List.map string_of_int alerted_parked)))
            else if not scenario.Program.allow_deadlock then
              add ~cls:"deadlock"
                (Printf.sprintf "no enabled action; threads [%s] unfinished"
                   blocked_str)
        end
      end
  done;
  let findings = List.rev !findings in
  let findings =
    if sc.sc_assert_delivery && not !delivery_reachable then
      findings
      @ [
          Finding.make ~cls:"wakeup-window" ~where:sc.sc_name
            "no interleaving can deliver a wakeup to a parked waiter — \
             the wakeup-waiting window spans the whole scenario";
        ]
    else findings
  in
  {
    r_findings = Finding.dedup findings;
    r_states = !states;
    r_transitions = !transitions;
    r_covered =
      List.sort compare (Hashtbl.fold (fun k () acc -> k :: acc) covered []);
    r_delivery_reachable = !delivery_reachable;
  }
