(* Per-procedure effect summaries derived from the spec's clauses — not
   hand-written tables.  The whole-program analysis ([Progcheck]) needs,
   for every Thread-sorted VAR formal of every procedure:

   - whether REQUIRES forces the caller to hold it ([m = SELF]);
   - what the call does to it (acquires, releases, keeps, or unknown);
   - whether the call can block.

   All three are computed by quantifying the clauses over the linter's
   small-state universe, which is exhaustive for the interface's term
   language: e.g. Wait's summary (requires held, leaves held, may block)
   emerges from Enqueue's [m_post = NIL] composed with Resume's
   [m_post = SELF]. *)

open Spec_core
module P = Proc
module Sem = Semantics
module Lint = Threads_analysis.Lint

type lockpost =
  | Held  (* every admitted transition leaves the object owned by SELF *)
  | Freed  (* ... leaves it NIL *)
  | Kept  (* ... leaves it unchanged *)
  | Unknown  (* admitted transitions disagree *)

let lockpost_name = function
  | Held -> "held"
  | Freed -> "freed"
  | Kept -> "kept"
  | Unknown -> "unknown"

type effect = {
  e_formal : string;
  e_requires_held : bool;
  e_post : lockpost;
  e_delays : bool;
}

(* Classification of one action's admitted transitions w.r.t. [obj]. *)
let classify_action iface (p : P.t) (act : P.action) ~gated obj universe =
  let self = 1 in
  let all_self = ref true and all_nil = ref true and all_same = ref true in
  let any = ref false in
  List.iter
    (fun (bindings, pre_state) ->
      if (not gated) || Sem.requires_holds p ~self ~bindings pre_state then
        List.iter
          (fun (o : Sem.outcome) ->
            any := true;
            let before = State.get pre_state obj in
            let after = State.get o.Sem.o_post obj in
            if not (Value.equal after (Value.Thread self)) then
              all_self := false;
            if not (Value.equal after Value.Nil) then all_nil := false;
            if not (Value.equal after before) then all_same := false)
          (Sem.outcomes iface p act ~self ~bindings pre_state))
    universe;
  if not !any then Kept
  else if !all_same then Kept
  else if !all_self then Held
  else if !all_nil then Freed
  else Unknown

(* Sequential composition of ownership effects: a later action's Kept
   preserves whatever the earlier actions established. *)
let fold_post a b = match b with Kept -> a | _ -> b

let mutex_effects iface (p : P.t) =
  List.filter_map
    (fun (f : P.formal) ->
      match P.formal_sort iface p f.P.f_name with
      | Sort.Thread when f.P.f_mode = P.By_var ->
        let universe = Lint.enumerate iface p in
        let obj =
          (* the object [enumerate] bound to this formal; identical in
             every universe element *)
          match List.assoc f.P.f_name (fst (List.hd universe)) with
          | Term.Obj o -> o
          | Term.Const _ -> assert false
        in
        let self = 1 in
        let requires_held =
          List.for_all
            (fun (bindings, pre_state) ->
              (not (Sem.requires_holds p ~self ~bindings pre_state))
              || Value.equal (State.get pre_state obj) (Value.Thread self))
            universe
        in
        let post =
          List.fold_left
            (fun acc (ai, act) ->
              fold_post acc
                (classify_action iface p act ~gated:(ai = 0) obj universe))
            Kept
            (List.mapi (fun i a -> (i, a)) (P.actions p))
        in
        Some
          {
            e_formal = f.P.f_name;
            e_requires_held = requires_held;
            e_post = post;
            e_delays = Lint.may_delay iface p;
          }
      | _ -> None
      | exception Not_found -> None)
    p.P.p_formals
