(* Seeded spec defects for the static verifier's self-test.

   Each mutant plants one historically-motivated defect class in the
   pristine Threads interface; [Speccheck.check] must flag every one,
   each with the distinct primary diagnostic class recorded here, while
   the pristine spec passes with zero findings.  Several reproduce the
   paper's own incidents: [enqueue-keeps-mutex] is the wakeup-waiting
   defect (the reason Wait is specified as a two-action composition),
   [nelson-bug] is E7c, [missing-mutex-guard] is E7a. *)

open Spec_core
module P = Proc

type t = {
  m_name : string;
  m_expected : string;  (* the primary diagnostic class Speccheck must report *)
  m_description : string;
  m_iface : P.interface;
}

(* ---- AST surgery ---- *)

let map_proc name f (iface : P.interface) =
  {
    iface with
    P.i_procs =
      List.map
        (fun (p : P.t) -> if p.P.p_name = name then f p else p)
        iface.P.i_procs;
  }

let map_action pname aname f =
  map_proc pname (fun (p : P.t) ->
      let g (a : P.action) = if a.P.a_name = aname then f a else a in
      {
        p with
        P.p_kind =
          (match p.P.p_kind with
          | P.Atomic a -> P.Atomic (g a)
          | P.Composition l -> P.Composition (List.map g l));
      })

(* [ci] is 0-based. *)
let map_case pname aname ci f =
  map_action pname aname (fun (a : P.action) ->
      {
        a with
        P.a_cases =
          List.mapi (fun j c -> if j = ci then f c else c) a.P.a_cases;
      })

let pre n = Term.Ref (n, Term.Pre)
let post n = Term.Ref (n, Term.Post)
let f_and a b = Formula.And (a, b)

(* ---- the corpus ---- *)

let base = Threads_interface.final

let all =
  [
    {
      m_name = "signal-frame-violation";
      m_expected = "well-formedness";
      m_description =
        "Signal's ENSURES constrains alerts_post without listing alerts \
         in MODIFIES AT MOST";
      m_iface =
        map_case "Signal" "Signal" 0
          (fun c ->
            {
              c with
              P.c_ensures =
                f_and c.P.c_ensures
                  (Formula.Eq (post "alerts", pre "alerts"));
            })
          base;
    };
    {
      m_name = "signal-unconstrained-modifies";
      m_expected = "unconstrained-modifies";
      m_description =
        "Signal's MODIFIES AT MOST gains alerts but no ENSURES constrains \
         it — the spec lets Signal scribble on the alert set";
      m_iface =
        map_proc "Signal"
          (fun p -> { p with P.p_modifies = p.P.p_modifies @ [ "alerts" ] })
          base;
    };
    {
      m_name = "acquire-when-contradictory";
      m_expected = "dead-case";
      m_description = "Acquire's WHEN is strengthened into a contradiction";
      m_iface =
        map_case "Acquire" "Acquire" 0
          (fun c ->
            {
              c with
              P.c_when =
                f_and c.P.c_when
                  (Formula.Not (Formula.Eq (pre "m", Term.Nil_const)));
            })
          base;
    };
    {
      m_name = "v-ensures-contradictory";
      m_expected = "unimplementable-case";
      m_description = "V's ENSURES demands two different post values of s";
      m_iface =
        map_case "V" "V" 0
          (fun c ->
            {
              c with
              P.c_ensures =
                f_and c.P.c_ensures
                  (Formula.Eq (post "s", Term.Lit (Value.Sem Value.Unavailable)));
            })
          base;
    };
    {
      m_name = "p-when-dropped";
      m_expected = "exclusion";
      m_description =
        "P loses its WHEN s = available guard, so it proceeds on an \
         unavailable semaphore — binary-semaphore mutual exclusion breaks";
      m_iface =
        map_case "P" "P" 0 (fun c -> { c with P.c_when = Formula.True }) base;
    };
    {
      m_name = "missing-mutex-guard";
      m_expected = "mutex-theft";
      m_description =
        "AlertResume loses its m = NIL guards (E7a): an alerted waiter \
         seizes the mutex while another thread holds it";
      m_iface =
        base
        |> map_case "AlertWait" "AlertResume" 0 (fun c ->
               {
                 c with
                 P.c_when =
                   Formula.Not (Formula.Member (Term.Self, pre "c"));
               })
        |> map_case "AlertWait" "AlertResume" 1 (fun c ->
               {
                 c with
                 P.c_when = Formula.Member (Term.Self, pre "alerts");
               });
    };
    {
      m_name = "nelson-bug";
      m_expected = "stale-waiter";
      m_description =
        "AlertResume's Alerted case keeps UNCHANGED [c] (E7c): the \
         departed thread lingers in the condition queue";
      m_iface =
        map_case "AlertWait" "AlertResume" 1
          (fun c ->
            {
              c with
              P.c_ensures =
                Formula.conj
                  [
                    Formula.Eq (post "m", Term.Self);
                    Formula.Unchanged [ "c" ];
                    Formula.Eq
                      (post "alerts", Term.Delete (pre "alerts", Term.Self));
                  ];
            })
          base;
    };
    {
      m_name = "resume-requires-alert";
      m_expected = "signal-loss";
      m_description =
        "Wait's Resume additionally demands SELF IN alerts: a delivered \
         signal can no longer wake the waiter";
      m_iface =
        map_case "Wait" "Resume" 0
          (fun c ->
            {
              c with
              P.c_when =
                f_and c.P.c_when (Formula.Member (Term.Self, pre "alerts"));
            })
          base;
    };
    {
      m_name = "enqueue-keeps-mutex";
      m_expected = "wakeup-window";
      m_description =
        "Wait's Enqueue keeps the mutex instead of releasing it — the \
         signaller can never get in, so no interleaving delivers a wakeup \
         (the paper's wakeup-waiting defect)";
      m_iface =
        map_case "Wait" "Enqueue" 0
          (fun c ->
            {
              c with
              P.c_ensures =
                f_and
                  (Formula.Eq
                     (post "c", Term.Insert (pre "c", Term.Self)))
                  (Formula.Eq (post "m", Term.Self));
            })
          base;
    };
    {
      m_name = "alert-resume-overguarded";
      m_expected = "alert-loss";
      m_description =
        "AlertResume's Alerted case additionally demands ~(SELF IN c): an \
         alerted thread still enqueued can never leave the wait";
      m_iface =
        map_case "AlertWait" "AlertResume" 1
          (fun c ->
            {
              c with
              P.c_when =
                f_and c.P.c_when
                  (Formula.Not (Formula.Member (Term.Self, pre "c")));
            })
          base;
    };
  ]

let find name = List.find_opt (fun m -> m.m_name = name) all
