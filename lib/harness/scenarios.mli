(** Model-checking scenarios shared by experiments and tests.

    Each scenario is a {!Threads_model.Program.t}: a set of straight-line
    thread programs over named spec objects plus an invariant over
    explored states.  The interesting ones reproduce the paper's
    incidents (E7) and the stress shapes used by E4–E6. *)

(** [mutex_contention n] — [n] threads each Acquire then Release one
    mutex; the invariant is mutual exclusion over the critical regions. *)
val mutex_contention : int -> Threads_model.Program.t

(** [wait_signal n] — [n] waiters and one broadcaster; deadlock is
    allowed (the spec has no liveness), the invariant checks only waiter
    threads ever appear in [c]. *)
val wait_signal : int -> Threads_model.Program.t

(** Incident 1 (E7a): dropping the [m = NIL] guard on AlertResume's
    RAISES case lets an alerted waiter seize a held mutex. *)
val alert_wait_mutual_exclusion : unit -> Threads_model.Program.t

(** Incident 3 (E7c): Nelson's bug — UNCHANGED [c] on the Alerted case
    leaves the departed thread stranded in [c]. *)
val nelson : unit -> Threads_model.Program.t

(** P/V ping-pong over one semaphore, no holder notion. *)
val semaphore_pingpong : unit -> Threads_model.Program.t
