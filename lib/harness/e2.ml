(** E2 — contention sweep on the 5-processor timed simulation.

    Paper: the user-space code exists "to optimize most cases where the
    synchronization action will not cause the thread to block" — under no
    contention the Nub is never called; under contention threads queue and
    deschedule.  We sweep thread counts on P=5 processors (the Firefly's
    CPU count) and report throughput and where the time goes. *)

module Table = Threads_util.Table

let processors = 5
let ops_per_thread = 400

let run_config ~threads ~cs_len ~think_len =
  let report =
    Taos_threads.Api.run_timed ~processors ~seed:(threads * 7919) (fun sync ->
        let module S =
          (val sync : Taos_threads.Sync_intf.SYNC
             with type thread = Threads_util.Tid.t)
        in
        let module Ops = Firefly.Machine.Ops in
        let m = S.mutex () in
        let worker () =
          for _ = 1 to ops_per_thread do
            S.acquire m;
            Ops.tick cs_len;
            S.release m;
            Ops.tick think_len
          done
        in
        let ts = List.init threads (fun _ -> S.fork worker) in
        List.iter S.join ts)
  in
  let machine = report.Firefly.Timed.machine in
  let total_ops = threads * ops_per_thread in
  let cycles = report.Firefly.Timed.sim_cycles in
  let throughput =
    float_of_int total_ops /. (float_of_int cycles *. Firefly.Cost.us_per_cycle)
    *. 1000.0
  in
  let per_op counter =
    float_of_int (Firefly.Machine.counter machine counter)
    /. float_of_int total_ops
  in
  ( report,
    throughput,
    per_op "nub.acquire" +. per_op "nub.release",
    per_op "spin.iterations" )

let run () =
  let t =
    Table.create
      ~title:
        (Printf.sprintf
           "E2: mutex contention, P=%d processors, %d ops/thread (cs=20 \
            cycles, think=80 cycles)"
           processors ops_per_thread)
      [ "threads"; "ops/ms (sim)"; "nub entries/op"; "spin iters/op";
        "ctx switches"; "utilization" ]
  in
  let contended = ref None in
  List.iter
    (fun threads ->
      let report, throughput, nub, spin =
        run_config ~threads ~cs_len:20 ~think_len:80
      in
      if threads = 8 then contended := Some report.Firefly.Timed.machine;
      Table.add_row t
        [
          Table.cell_int threads;
          Table.cell_float throughput;
          Table.cell_float nub;
          Table.cell_float spin;
          Table.cell_int report.Firefly.Timed.context_switches;
          Table.cell_pct (Firefly.Timed.utilization report ~processors);
        ])
    [ 1; 2; 4; 8; 16 ];
  Table.print t;
  let t2 =
    Table.create
      ~title:
        "E2b: critical-section length sweep, 8 threads (think = 4 x cs)"
      [ "cs cycles"; "ops/ms (sim)"; "nub entries/op"; "utilization" ]
  in
  List.iter
    (fun cs ->
      let report, throughput, nub, _spin =
        run_config ~threads:8 ~cs_len:cs ~think_len:(4 * cs)
      in
      Table.add_row t2
        [
          Table.cell_int cs;
          Table.cell_float throughput;
          Table.cell_float nub;
          Table.cell_pct (Firefly.Timed.utilization report ~processors);
        ])
    [ 5; 20; 80; 320 ];
  Table.print t2;
  print_endline
    "Shape check: 1 thread -> ~0 nub entries/op (pure fast path); nub\n\
     entries and spinning grow with contention; longer critical sections\n\
     lower throughput but amortize the synchronization cost (fewer nub\n\
     entries per op matter less).";
  Option.iter
    (Exp.print_metrics
       ~header:"--- observability (8 threads, cs=20, think=80) ---")
    !contended

let experiment =
  {
    Exp.id = "E2";
    title = "Mutex contention sweep (timed, 5 CPUs)";
    claim =
      "The user code avoids the overhead of calling the Nub in most cases \
       where the action will not cause the thread to block (Implementation).";
    run;
  }
