(** Systematic-exploration scenarios for [repro explore].

    Small closed programs (2–4 threads) on the bounded backends — the
    cooperative uniprocessor package and the Hoare monitor package —
    paired with canonical checkers, so DFS and DPOR traversals (and
    parallel workers) can be compared on the {e set} of violations they
    find.  See the implementation for the catalogue: the wakeup-waiting
    window, Alert racing Signal, E5's semaphore-encoded broadcast, E8's
    Hoare hand-off non-conformance, and a disjoint-lock reduction
    benchmark. *)

type t = {
  name : string;
  description : string;
  build : Firefly.Machine.t -> unit;
  check : Firefly.Explore.outcome -> string option;
      (** canonical: schedule-independent strings, so violation sets are
          comparable across traversal orders *)
  expect : string list;
      (** the exact sorted violation set exploration must produce;
          [[]] means the scenario must verify clean *)
  max_depth : int;  (** per-execution step bound *)
}

val all : t list
val find : string -> t option
