(** Experiment registry.

    The paper has no numbered tables or figures; its evaluation is a set of
    precise claims.  Each experiment here regenerates one claim (see
    EXPERIMENTS.md for the mapping) and prints one or more tables. *)

type t = {
  id : string;  (** "E1" ... "E10" *)
  title : string;
  claim : string;  (** the paper sentence being reproduced *)
  run : unit -> unit;
}

val register : t -> unit

(** All experiments, in id order. *)
val all : unit -> t list

val find : string -> t option

(** [run_ids ids] — runs each (case-insensitive id match); returns the
    unknown ids. *)
val run_ids : string list -> string list

val run_all : unit -> unit

(** [print_metrics ?header machine] appends the machine's instrument
    registry ({!Firefly.Machine.obs}) as an observability section —
    fast-path rates, counters, gauges, cycle histograms, span
    aggregates — to the experiment's output. *)
val print_metrics : ?header:string -> Firefly.Machine.t -> unit
