(** Systematic-exploration scenarios for [repro explore].

    Each scenario is a small closed program (2–4 threads) on a bounded
    backend — the cooperative uniprocessor package or the Hoare monitor
    package, whose blocking operations are single deschedules rather than
    test-and-set retry chains, so the schedule tree is finite — together
    with a checker that maps a terminal outcome to a canonical violation
    string and the violation set the scenario is expected to produce.

    The checkers must be canonical: two different schedules exhibiting
    the same defect must yield byte-identical strings, because DPOR and
    plain DFS traverse different executions and are compared on the
    {e set} of violations, and the parallel explorer merges sets found by
    different workers. *)

module M = Firefly.Machine
module Ops = Firefly.Machine.Ops
module Tid = Threads_util.Tid

type t = {
  name : string;
  description : string;
  build : M.t -> unit;
  check : Firefly.Explore.outcome -> string option;
  expect : string list;
      (* expected violation set; [] means the scenario must verify clean *)
  max_depth : int;
}

let iface = Spec_core.Threads_interface.final

(* ---- checkers ---- *)

let verdict_check label (outcome : Firefly.Explore.outcome) =
  match outcome.verdict with
  | Firefly.Interleave.Deadlock blocked ->
    Some
      (Printf.sprintf "%s: deadlock blocked=[%s]" label
         (String.concat ","
            (List.map string_of_int (List.sort compare blocked))))
  | Firefly.Interleave.Step_limit -> Some (label ^ ": step limit hit")
  | Firefly.Interleave.Completed -> None

(* Replay the run's spec trace through the conformance checker; distinct
   error messages (deterministic: object ids and thread ids are
   machine-local) joined in sorted order form the canonical string. *)
let conformance_check label (outcome : Firefly.Explore.outcome) =
  match verdict_check label outcome with
  | Some _ as v -> v
  | None -> (
    let report =
      Threads_model.Conformance.check iface (M.trace outcome.machine)
    in
    match report.Threads_model.Conformance.errors with
    | [] -> None
    | errs ->
      let msgs =
        List.sort_uniq String.compare
          (List.map
             (fun e -> e.Threads_model.Conformance.message)
             errs)
      in
      Some (Printf.sprintf "%s: %s" label (String.concat " | " msgs)))

(* A checker that also fails if the program recorded a broken invariant
   through the machine's counter instrument. *)
let invariant_check label counter_name (outcome : Firefly.Explore.outcome) =
  match verdict_check label outcome with
  | Some _ as v -> v
  | None ->
    if M.counter outcome.machine counter_name > 0 then
      Some (Printf.sprintf "%s: invariant %s violated" label counter_name)
    else None

(* ---- programs ---- *)

let uniproc_root
    (body :
      (module Taos_threads.Sync_intf.SYNC with type thread = Tid.t) -> unit)
    machine =
  ignore
    (M.spawn_root machine (fun () ->
         let sync = Taos_threads.Uniproc.make () in
         let module S =
           (val sync : Taos_threads.Sync_intf.SYNC
              with type thread = Tid.t)
         in
         body
           (module S : Taos_threads.Sync_intf.SYNC with type thread = Tid.t)))

(* The paper's wakeup-waiting window: Wait releases the mutex in one
   atomic action and blocks in a later instruction, so a Signal can land
   in between; the package must latch it (the "wakeup waiting" bit) or
   the wakeup is lost and both threads sleep forever.  Exhaustive
   exploration proves the latch covers the whole window. *)
let wakeup_waiting =
  let build =
    uniproc_root (fun (module S) ->
        let m = S.mutex () in
        let c = S.condition () in
        let flag = ref false in
        let w =
          S.fork (fun () ->
              S.with_lock m (fun () ->
                  while not !flag do
                    S.wait m c
                  done))
        in
        S.with_lock m (fun () -> flag := true);
        S.signal c;
        S.join w)
  in
  {
    name = "wakeup-waiting";
    description =
      "one waiter, one signaller; a lost wakeup in the window between \
       Wait's release and its block deadlocks both";
    build;
    check = verdict_check "lost wakeup";
    expect = [];
    max_depth = 600;
  }

(* Alert racing a Signal at a waiter that entered the alertable window:
   whichever lands first, the waiter must leave Wait (by Alerted or by
   resumption) and the program must terminate — and an alerted exit must
   still hold the mutex (checked by the invariant counter). *)
let alert_cancellation =
  let build =
    uniproc_root (fun (module S) ->
        let m = S.mutex () in
        let c = S.condition () in
        let flag = ref false in
        let w =
          S.fork (fun () ->
              try
                S.with_lock m (fun () ->
                    while not !flag do
                      S.alert_wait m c
                    done)
              with Taos_threads.Sync_intf.Alerted ->
                (* AlertResume's RAISES case re-acquired the mutex, and
                   with_lock's finally released it on the way out. *)
                Ops.incr_counter "scenario.alerted")
        in
        S.alert w;
        S.with_lock m (fun () -> flag := true);
        S.signal c;
        S.join w)
  in
  {
    name = "alert-cancel";
    description =
      "Alert races Signal at an alertable waiter; every ordering must \
       terminate with the waiter out of the queue";
    build;
    check = verdict_check "alert-cancellation";
    expect = [];
    max_depth = 800;
  }

(* E5's defect, minimal closed form: a condition variable encoded as a
   semaphore strands a waiter under Broadcast when two waiters sit in the
   race window between Release(m) and P(c).  Exploration must find the
   stranding deadlock (and nothing else). *)
let naive_broadcast =
  let build =
    uniproc_root (fun (module S) ->
        let m = S.mutex () in
        let sem = S.semaphore () in
        S.p sem;
        (* the condition's semaphore starts unavailable *)
        let nwaiters = ref 0 in
        let flag = ref false in
        let naive_wait () =
          incr nwaiters;
          S.release m;
          S.p sem;
          decr nwaiters;
          S.acquire m
        in
        let waiter () =
          S.with_lock m (fun () -> if not !flag then naive_wait ())
        in
        let w1 = S.fork waiter in
        let w2 = S.fork waiter in
        S.with_lock m (fun () -> flag := true);
        (* naive broadcast: V once per currently-registered waiter *)
        for _ = 1 to !nwaiters do
          S.v sem
        done;
        S.join w1;
        S.join w2)
  in
  {
    name = "naive-broadcast";
    description =
      "semaphore-encoded condition variable vs Broadcast (E5): two \
       waiters in the Release/P window, one is stranded";
    build;
    check = verdict_check "stranded waiter";
    expect = [ "stranded waiter: deadlock blocked=[0,1]";
               "stranded waiter: deadlock blocked=[0,2]" ];
    max_depth = 600;
  }

(* Hoare signalling hands the monitor straight to the waiter: the
   waiter's Resume commits while the abstract mutex still belongs to the
   signaller, so conformance against the paper's specification must
   report the failed WHEN — on every schedule in which the signal finds a
   waiter (E8's deliberate non-conformance). *)
let hoare_signal =
  let build machine =
    ignore
      (M.spawn_root machine (fun () ->
           let mon = Taos_threads.Hoare.monitor () in
           let c = Taos_threads.Hoare.condition mon in
           let ready = ref false in
           let waiter =
             Ops.spawn (fun () ->
                 Taos_threads.Hoare.with_monitor mon (fun () ->
                     if not !ready then Taos_threads.Hoare.wait c;
                     (* Hoare guarantee: predicate holds, no re-check *)
                     if not !ready then Ops.incr_counter "scenario.bad"))
           in
           Taos_threads.Hoare.with_monitor mon (fun () ->
               ready := true;
               Taos_threads.Hoare.signal c);
           Ops.join waiter))
  in
  {
    name = "hoare-signal";
    description =
      "Hoare monitor hand-off (E8): the waiter resumes while the \
       signaller still owns the abstract mutex — a WHEN violation the \
       checker must find on every signalling schedule";
    build;
    check = conformance_check "hoare hand-off";
    expect =
      [ "hoare hand-off: Wait.Resume by t1 with outcome RETURNS admitted \
         by no case: [RETURNS: when=false kind-match=true ensures=false]" ];
    max_depth = 600;
  }

(* Two pairs of threads contending on two unrelated mutexes: every step
   of pair A commutes with every step of pair B, so DPOR collapses the
   cross-product of interleavings while plain DFS enumerates it — the
   pinned reduction benchmark for CI. *)
let disjoint_locks =
  let build =
    uniproc_root (fun (module S) ->
        let ma = S.mutex () and mb = S.mutex () in
        let hits = ref 0 in
        let worker m = S.fork (fun () -> S.with_lock m (fun () -> incr hits)) in
        let a1 = worker ma and a2 = worker ma in
        let b1 = worker mb and b2 = worker mb in
        S.join a1; S.join a2; S.join b1; S.join b2;
        if !hits <> 4 then Ops.incr_counter "scenario.bad")
  in
  {
    name = "disjoint-locks";
    description =
      "two independent mutex pairs; DPOR prunes the cross-product of \
       unrelated interleavings that DFS enumerates";
    build;
    check = invariant_check "disjoint-locks" "scenario.bad";
    expect = [];
    max_depth = 800;
  }

let all =
  [ wakeup_waiting; alert_cancellation; naive_broadcast; hoare_signal;
    disjoint_locks ]

let find name = List.find_opt (fun s -> s.name = name) all
