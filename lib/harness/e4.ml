(** E4 — the wakeup-waiting race and Signal unblocking several threads.

    Paper: "It is possible (though unlikely) that Signal will acquire the
    spin-lock while more than one thread is trying to acquire it in Wait;
    if so, Signal will unblock all such threads."  And on the spec side:
    "We cannot strengthen Signal's postcondition: although our
    implementation of Signal usually unblocks just one waiting thread, it
    may unblock more."

    We race several Wait calls against a Signal across thousands of seeds
    and classify each Signal event by how many threads it removed.  Every
    run is also conformance-checked: the weak postcondition
    [(c_post = {{}}) | (c_post SUBSET c)] covers all observed behaviours. *)

module Table = Threads_util.Table

let seeds = 3000

let run () =
  let histogram = Hashtbl.create 8 in
  let bump k =
    Hashtbl.replace histogram k
      (1 + Option.value (Hashtbl.find_opt histogram k) ~default:0)
  in
  let nonconforming = ref 0 in
  for seed = 0 to seeds - 1 do
    let report =
      Taos_threads.Api.run ~seed (fun sync ->
          let module S =
            (val sync : Taos_threads.Sync_intf.SYNC
               with type thread = Threads_util.Tid.t)
          in
          let m = S.mutex () in
          let c = S.condition () in
          let flag = ref false in
          let waiter () =
            S.with_lock m (fun () ->
                while not !flag do
                  S.wait m c
                done)
          in
          let ws = List.init 3 (fun _ -> S.fork waiter) in
          let signaller () =
            S.with_lock m (fun () -> flag := true);
            (* Keep signalling until all waiters drained. *)
            S.signal c
          in
          let s = S.fork signaller in
          S.join s;
          (* Finish the run: broadcast to release any still-parked
             waiters (flag is already true). *)
          S.broadcast c;
          List.iter S.join ws)
    in
    let machine = report.Firefly.Interleave.machine in
    List.iter
      (fun (e : Spec_trace.event) ->
        if e.proc = "Signal" then bump (List.length e.removed))
      (Firefly.Machine.trace machine);
    if
      not
        (Threads_model.Conformance.ok
           (Threads_model.Conformance.check
              Spec_core.Threads_interface.final (Firefly.Machine.trace machine)))
    then incr nonconforming
  done;
  let t =
    Table.create
      ~title:
        (Printf.sprintf "E4: threads removed per Signal (%d seeded runs)"
           seeds)
      [ "threads unblocked"; "signals"; "fraction" ]
  in
  let total = Hashtbl.fold (fun _ n acc -> acc + n) histogram 0 in
  List.iter
    (fun k ->
      match Hashtbl.find_opt histogram k with
      | Some n ->
        Table.add_row t
          [
            Table.cell_int k;
            Table.cell_int n;
            Table.cell_pct (float_of_int n /. float_of_int total);
          ]
      | None -> ())
    [ 0; 1; 2; 3; 4 ];
  Table.print t;
  Printf.printf "conformance violations across all runs: %d (expect 0)\n"
    !nonconforming;
  print_endline
    "Shape check: most Signals unblock exactly one thread; a small but\n\
     non-zero fraction unblock several (the race window), which only the\n\
     weak postcondition admits."

let experiment =
  {
    Exp.id = "E4";
    title = "Signal may unblock more than one thread";
    claim =
      "It is possible (though unlikely) that Signal will unblock all the \
       threads racing in Wait; the specification cannot be strengthened \
       (Implementation / Formal Specification).";
    run;
  }
