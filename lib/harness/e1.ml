(** E1 — the uncontended fast path.

    Paper: "In this case an Acquire-Release pair executes a total of 5
    instructions, taking 10 microseconds on a MicroVAX II.  This code is
    compiled entirely in-line."

    We run a single simulated thread through uncontended LOCK clauses and
    count exactly what the pair costs in simulated instructions and cycles
    (the cycle model is calibrated at 2 μs/cycle, the paper's implied
    rate), with the Nub-entry counters proving the Nub was never entered.
    The same loop on the real-hardware backend gives nanoseconds per pair
    on a modern machine, next to [Stdlib.Mutex] for context. *)

module Table = Threads_util.Table

let iterations = 10_000

let sim_numbers ~fast_path =
  let report =
    Taos_threads.Api.run ~fast_path ~seed:1 (fun sync ->
        let module S =
          (val sync : Taos_threads.Sync_intf.SYNC
             with type thread = Threads_util.Tid.t)
        in
        let m = S.mutex () in
        for _ = 1 to iterations do
          S.acquire m;
          S.release m
        done)
  in
  let machine = report.Firefly.Interleave.machine in
  let instr =
    float_of_int (Firefly.Machine.total_instructions machine)
    /. float_of_int iterations
  in
  let cycles =
    float_of_int (Firefly.Machine.total_cycles machine)
    /. float_of_int iterations
  in
  let nub =
    Firefly.Machine.counter machine "nub.acquire"
    + Firefly.Machine.counter machine "nub.release"
  in
  (instr, cycles, Firefly.Cost.us_per_cycle *. cycles, nub, machine)

let multicore_ns () =
  let module S = Threads_multicore.Multicore.Sync in
  let m = S.mutex () in
  let n = 2_000_000 in
  (* warm up *)
  for _ = 1 to 10_000 do
    S.acquire m;
    S.release m
  done;
  let t0 = Unix.gettimeofday () in
  for _ = 1 to n do
    S.acquire m;
    S.release m
  done;
  let dt = Unix.gettimeofday () -. t0 in
  let stdlib_m = Mutex.create () in
  let t1 = Unix.gettimeofday () in
  for _ = 1 to n do
    Mutex.lock stdlib_m;
    Mutex.unlock stdlib_m
  done;
  let dt_std = Unix.gettimeofday () -. t1 in
  (dt /. float_of_int n *. 1e9, dt_std /. float_of_int n *. 1e9)

let run () =
  let instr, cycles, us, nub, machine = sim_numbers ~fast_path:true in
  let t =
    Table.create ~title:"E1a: uncontended Acquire/Release pair (simulator)"
      ~aligns:[ Table.Left; Table.Right; Table.Right ]
      [ "metric"; "measured"; "paper (MicroVAX II)" ]
  in
  Table.add_row t
    [ "instructions / pair"; Table.cell_float ~decimals:1 instr; "5" ];
  Table.add_row t [ "cycles / pair"; Table.cell_float ~decimals:1 cycles; "-" ];
  Table.add_row t
    [ "microseconds / pair"; Table.cell_float ~decimals:1 us; "10" ];
  Table.add_row t [ "Nub entries (total)"; Table.cell_int nub; "0" ];
  Table.print t;
  let ours, stdlib = multicore_ns () in
  let t2 =
    Table.create ~title:"E1b: same pair on real hardware (OCaml 5 domains)"
      ~aligns:[ Table.Left; Table.Right ]
      [ "implementation"; "ns / pair" ]
  in
  Table.add_row t2 [ "this package (TAS fast path)"; Table.cell_float ours ];
  Table.add_row t2 [ "Stdlib.Mutex"; Table.cell_float stdlib ];
  Table.print t2;
  print_endline
    "Shape check: in-line fast path, zero Nub entries; simulated pair cost\n\
     within 2x of the paper's 5 instructions / 10 us.";
  Exp.print_metrics
    ~header:"--- observability (uncontended fast-path run) ---" machine

let experiment =
  {
    Exp.id = "E1";
    title = "Uncontended Acquire/Release fast path";
    claim =
      "An Acquire-Release pair executes a total of 5 instructions, taking \
       10 microseconds on a MicroVAX II (Implementation).";
    run;
  }
