(** E3 — Signal vs Broadcast.

    Paper: "Using Signal is preferable (for efficiency) when only one
    blocked thread can benefit from the change; Broadcast is necessary (for
    correctness) if multiple threads should resume."

    With M parked waiters we measure the signaller-side cost of one Signal
    (wakes one) against one Broadcast (wakes all), and show that M Signals
    are needed to drain what one Broadcast drains. *)

module Table = Threads_util.Table
module Ops = Firefly.Machine.Ops

(* Build M waiters parked on a condition, then run [finale] and return the
   machine. *)
let with_parked m_waiters ~finale =
  let report =
    Firefly.Interleave.run ~seed:11 (fun machine ->
        ignore
          (Firefly.Machine.spawn_root machine (fun () ->
               let pkg = Taos_threads.Pkg.create () in
               let m = Taos_threads.Mutex.create pkg in
               let c = Taos_threads.Condition.create pkg in
               let flag = ref false in
               let waiter () =
                 Taos_threads.Mutex.with_lock m (fun () ->
                     while not !flag do
                       Taos_threads.Condition.wait c m
                     done)
               in
               let ws = List.init m_waiters (fun _ -> Ops.spawn waiter) in
               (* Park everyone: poll the queue length cooperatively. *)
               while Taos_threads.Condition.queued c < m_waiters do
                 Ops.yield ()
               done;
               Taos_threads.Mutex.with_lock m (fun () -> flag := true);
               finale m c;
               List.iter Ops.join ws)))
  in
  report.Firefly.Interleave.machine

let signaller_cost m_waiters ~broadcast =
  let calls = ref 0 in
  let machine =
    with_parked m_waiters ~finale:(fun _m c ->
        if broadcast then begin
          incr calls;
          Taos_threads.Condition.broadcast c
        end
        else
          (* Signal until everyone is out (each wakes at least one). *)
          let rec drain () =
            if Taos_threads.Condition.queued c > 0 then begin
              incr calls;
              Taos_threads.Condition.signal c;
              drain ()
            end
          in
          begin
            incr calls;
            Taos_threads.Condition.signal c;
            drain ()
          end)
  in
  (!calls, machine)

let run () =
  let t =
    Table.create ~title:"E3: draining M parked waiters"
      [ "waiters"; "signal calls needed"; "broadcast calls"; "signal wakeups/call"; "broadcast wakeups/call" ]
  in
  let representative = ref None in
  List.iter
    (fun m ->
      let sig_calls, sig_machine = signaller_cost m ~broadcast:false in
      let bc_calls, bc_machine = signaller_cost m ~broadcast:true in
      if m = 8 then representative := Some sig_machine;
      (* wakeups = removals recorded in Signal/Broadcast trace events *)
      let wakeups machine proc =
        let evs =
          List.filter
            (fun (e : Spec_trace.event) -> e.proc = proc)
            (Firefly.Machine.trace machine)
        in
        let total =
          List.fold_left
            (fun acc (e : Spec_trace.event) ->
              acc + List.length e.removed)
            0 evs
        in
        if evs = [] then 0.0
        else float_of_int total /. float_of_int (List.length evs)
      in
      Table.add_row t
        [
          Table.cell_int m;
          Table.cell_int sig_calls;
          Table.cell_int bc_calls;
          Table.cell_float (wakeups sig_machine "Signal");
          Table.cell_float (wakeups bc_machine "Broadcast");
        ])
    [ 1; 2; 4; 8; 16; 32; 64 ];
  Table.print t;
  print_endline
    "Shape check: Signal wakes ~1/call so draining M waiters takes ~M\n\
     calls; one Broadcast wakes all M (necessary when several should\n\
     resume, e.g. releasing a writer lock to all readers).";
  Option.iter
    (Exp.print_metrics
       ~header:"--- observability (8 waiters drained by signals) ---")
    !representative

let experiment =
  {
    Exp.id = "E3";
    title = "Signal vs Broadcast";
    claim =
      "Signal is preferable (for efficiency) when only one blocked thread \
       can benefit; Broadcast is necessary (for correctness) if multiple \
       threads should resume (Informal Description).";
    run;
  }
