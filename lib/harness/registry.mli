(** Registers every experiment (E1–E10) with {!Exp}.

    Call {!init} once before {!Exp.find} / {!Exp.all}; it is idempotent,
    so callers need not coordinate. *)

val init : unit -> unit
