type t = { id : string; title : string; claim : string; run : unit -> unit }

let registry : t list ref = ref []

let register e = registry := e :: !registry

let all () =
  List.sort (fun a b -> compare a.id b.id) !registry

let find id =
  let id = String.uppercase_ascii id in
  List.find_opt (fun e -> String.uppercase_ascii e.id = id) !registry

let banner e =
  Printf.printf "\n=== %s: %s ===\nClaim: %s\n\n" e.id e.title e.claim

let run_one e =
  banner e;
  e.run ()

(* Append an observability section — the machine's instrument registry
   rendered as tables — to an experiment's output.  Experiments that run
   one machine per data point pass a representative machine. *)
let print_metrics ?(header = "--- observability (representative run) ---")
    machine =
  Printf.printf "\n%s\n" header;
  Obs.Report.print (Obs.Instrument.snapshot (Firefly.Machine.obs machine))

let run_ids ids =
  List.filter
    (fun id ->
      match find id with
      | Some e ->
        run_one e;
        false
      | None -> true)
    ids

let run_all () = List.iter run_one (all ())
