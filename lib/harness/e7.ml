(** E7 — the three historical specification incidents (Discussion).

    (a) The original AlertWait spec lacked "m = NIL &" in AlertResume's
    RAISES clause; "that this presented a problem was discovered in less
    than an hour by someone with no prior knowledge of either the
    interface or the specification technique".  Our model checker plays
    that newcomer: it finds a mutual-exclusion violation in milliseconds.

    (b) AlertP/AlertWait were originally constrained to raise Alerted when
    possible; "a programmer pointed out that the implementation was
    non-deterministic: sometimes it raised the exception and sometimes it
    didn't", and the spec was weakened.  We conformance-check real
    simulator traces against both versions: the must-raise variant rejects
    some runs; the final spec accepts all.

    (c) Nelson's bug: the spec "incorrectly required that when AlertWait
    raised the exception Alerted it left the value of c unchanged.  Thus c
    could contain threads that were no longer blocked on the condition
    variable" — so "no blocked thread is awakened by that Signal".  The
    checker violates exactly that invariant under the buggy variant. *)

module Table = Threads_util.Table
module C = Threads_model.Checker
open Spec_core

let check_variant scenario iface =
  let r = C.run iface scenario in
  ( (match r.C.violation with
    | None -> "conforms"
    | Some v ->
      (match v.kind with
      | `Invariant -> "INVARIANT VIOLATED"
      | `Deadlock -> "DEADLOCK"
      | `Requires -> "REQUIRES VIOLATED")),
    r )

let print_counterexample label (r : C.result) =
  match r.violation with
  | None -> ()
  | Some v ->
    Printf.printf "\n%s counterexample (%s):\n" label v.message;
    List.iter
      (fun e -> Format.printf "  %a@." C.pp_trace_entry e)
      v.trace

let run_a () =
  let t =
    Table.create ~title:"E7a: AlertResume without the m = NIL guard"
      ~aligns:[ Table.Left; Table.Left; Table.Right; Table.Right ]
      [ "spec variant"; "verdict"; "states"; "transitions" ]
  in
  let scen = Scenarios.alert_wait_mutual_exclusion () in
  let rows =
    [ ("final", Threads_interface.final);
      ("missing-mutex-guard", Threads_interface.missing_mutex_guard) ]
  in
  let results =
    List.map
      (fun (name, iface) ->
        let verdict, r = check_variant scen iface in
        Table.add_row t
          [ name; verdict; Table.cell_int r.C.states;
            Table.cell_int r.C.transitions ];
        (name, r))
      rows
  in
  Table.print t;
  print_counterexample "E7a" (snd (List.nth results 1))

let run_b () =
  let seeds = 2000 in
  let rejected_by_must_raise = ref 0 in
  let rejected_by_final = ref 0 in
  for seed = 0 to seeds - 1 do
    let report =
      Taos_threads.Api.run ~seed (fun sync ->
          let module S =
            (val sync : Taos_threads.Sync_intf.SYNC
               with type thread = Threads_util.Tid.t)
          in
          let m = S.mutex () in
          let c = S.condition () in
          let w =
            S.fork (fun () ->
                try S.with_lock m (fun () -> S.alert_wait m c)
                with Taos_threads.Sync_intf.Alerted -> ())
          in
          (* Race an Alert against a Signal so the wakened thread often has
             a pending alert it may or may not honour. *)
          let a = S.fork (fun () -> S.alert w) in
          let s = S.fork (fun () -> S.signal c) in
          S.join a;
          S.join s;
          S.signal c;
          (try S.join w with Taos_threads.Sync_intf.Alerted -> ());
          ignore (S.test_alert ()))
    in
    let machine = report.Firefly.Interleave.machine in
    if
      not
        (Threads_model.Conformance.ok
           (Threads_model.Conformance.check Threads_interface.final
              (Firefly.Machine.trace machine)))
    then incr rejected_by_final;
    if
      not
        (Threads_model.Conformance.ok
           (Threads_model.Conformance.check
              Threads_interface.must_raise (Firefly.Machine.trace machine)))
    then incr rejected_by_must_raise
  done;
  let t =
    Table.create
      ~title:
        (Printf.sprintf "E7b: conformance of %d implementation runs" seeds)
      ~aligns:[ Table.Left; Table.Right; Table.Right ]
      [ "spec variant"; "runs rejected"; "fraction" ]
  in
  Table.add_row t
    [ "final (non-deterministic choice)";
      Table.cell_int !rejected_by_final;
      Table.cell_pct (float_of_int !rejected_by_final /. float_of_int seeds) ];
  Table.add_row t
    [ "must-raise (original)";
      Table.cell_int !rejected_by_must_raise;
      Table.cell_pct
        (float_of_int !rejected_by_must_raise /. float_of_int seeds) ];
  Table.print t

let run_c () =
  let t =
    Table.create ~title:"E7c: UNCHANGED [c] on the Alerted case (Nelson)"
      ~aligns:[ Table.Left; Table.Left; Table.Right; Table.Right ]
      [ "spec variant"; "verdict"; "states"; "transitions" ]
  in
  let scen = Scenarios.nelson () in
  let rows =
    [ ("final", Threads_interface.final);
      ("nelson-bug", Threads_interface.nelson_bug) ]
  in
  let results =
    List.map
      (fun (name, iface) ->
        let verdict, r = check_variant scen iface in
        Table.add_row t
          [ name; verdict; Table.cell_int r.C.states;
            Table.cell_int r.C.transitions ];
        (name, r))
      rows
  in
  Table.print t;
  print_counterexample "E7c" (snd (List.nth results 1))

let run () =
  run_a ();
  run_b ();
  run_c ();
  print_endline
    "\nShape check: both spec bugs are found mechanically within a handful\n\
     of states; the must-raise variant is refuted by real traces while the\n\
     final spec accepts every run."

let experiment =
  {
    Exp.id = "E7";
    title = "The three specification incidents";
    claim =
      "Incidents from a year of use: the missing m = NIL guard (found in \
       under an hour), the legitimised non-determinism of AlertP/AlertWait, \
       and Nelson's UNCHANGED [c] bug (Discussion).";
    run;
  }
