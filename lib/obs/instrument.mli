(** Zero-simulation-cost instruments for the Firefly simulator.

    A registry of named counters, cycle-valued histograms, high-water
    gauges, and begin/end spans keyed by (track, name) — a track is a
    simulated thread.  None of the recording entry points perform machine
    effects, so instrumenting a workload never perturbs the schedule, the
    cycle accounting, or the RNG: a run with probes is cycle-identical to
    the same run without.

    Everything here is deterministic under a fixed simulator seed;
    {!snapshot} sorts every table so two identical runs produce equal
    snapshots. *)

type span = {
  track : int;  (** simulated thread id *)
  name : string;  (** e.g. ["held mutex#2"] *)
  cat : string;  (** Chrome-trace category, e.g. ["mutex"] *)
  t0 : int;  (** begin, simulated cycles *)
  t1 : int;  (** end, simulated cycles *)
}

type t

val create : unit -> t

(** [incr t name n] — add [n] to counter [name] (creating it at 0 first,
    so [incr t name 0] materializes the counter). *)
val incr : t -> string -> int -> unit

val counter : t -> string -> int

(** [sample t name v] — record one histogram sample (a cycle count). *)
val sample : t -> string -> int -> unit

(** [gauge_max t name v] — raise gauge [name] to [v] if higher. *)
val gauge_max : t -> string -> int -> unit

(** [span_begin t ~track ?cat name ~now] opens span [(track, name)];
    re-opening an already-open key restarts it. *)
val span_begin : t -> track:int -> ?cat:string -> string -> now:int -> unit

(** [span_end t ~track name ~now] closes the span and returns its duration
    in cycles; [None] if no matching begin. *)
val span_end : t -> track:int -> string -> now:int -> int option

(** [span_add] records an already-delimited span. *)
val span_add : t -> track:int -> ?cat:string -> string -> t0:int -> t1:int -> unit

val open_span_count : t -> int

type snapshot = {
  counters : (string * int) list;  (** sorted by name *)
  gauges : (string * int) list;  (** sorted by name *)
  histograms : (string * Threads_util.Stats.summary) list;
      (** sorted by name *)
  spans : span list;
      (** completed spans, sorted by (t0, track); open spans are dropped *)
}

val snapshot : t -> snapshot
