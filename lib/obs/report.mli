(** Table-rendered metrics report over an instrument snapshot: derived
    per-object fast-path rates, raw counters, high-water gauges, cycle
    histograms (with {!Threads_util.Stats} percentiles), and a span
    aggregate.  Output is deterministic: every section is sorted by
    name, so equal snapshots render byte-identically. *)

val render : Instrument.snapshot -> string
val print : Instrument.snapshot -> unit
