(** Table-rendered metrics report over an instrument snapshot: derived
    per-object fast-path rates, raw counters, high-water gauges, cycle
    histograms (with {!Threads_util.Stats} percentiles), and a span
    aggregate.  Output is deterministic: every section is sorted by
    name, so equal snapshots render byte-identically. *)

val render : Instrument.snapshot -> string
val print : Instrument.snapshot -> unit

(** The same report as a schema-versioned JSON object (schema_version 1):
    fast-path rates, counters, gauges, histogram summaries and span
    aggregates — for [--format=json] consumers. *)
val to_json : Instrument.snapshot -> Json.t
