(** Chrome trace-event exporter.

    Converts an instrument {!Instrument.snapshot} into the JSON object
    format accepted by Perfetto and chrome://tracing: one track per
    simulated thread, a "B"/"E" duration-event pair per completed span,
    plus process/thread-name metadata events.  Timestamps are
    [cycles * cycle_us] microseconds (pass the simulator's
    [Firefly.Cost.us_per_cycle] for real-time scaling; the default 1.0
    shows raw cycles as microseconds). *)

(** The raw event list (metadata first, then per-track span pairs). *)
val events :
  ?pid:int ->
  ?cycle_us:float ->
  ?process_name:string ->
  ?thread_names:(int * string) list ->
  Instrument.snapshot ->
  Json.t list

(** [{"traceEvents": [...], "displayTimeUnit": "ms"}] *)
val to_json :
  ?pid:int ->
  ?cycle_us:float ->
  ?process_name:string ->
  ?thread_names:(int * string) list ->
  Instrument.snapshot ->
  Json.t

val to_string :
  ?pid:int ->
  ?cycle_us:float ->
  ?process_name:string ->
  ?thread_names:(int * string) list ->
  Instrument.snapshot ->
  string
