type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | Arr of t list
  | Obj of (string * t) list

exception Parse_error of string

(* ------------------------------------------------------------------ *)
(* Writer                                                             *)
(* ------------------------------------------------------------------ *)

let escape buf s =
  Buffer.add_char buf '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | '\b' -> Buffer.add_string buf "\\b"
      | '\012' -> Buffer.add_string buf "\\f"
      | c when Char.code c < 0x20 ->
        Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.add_char buf '"'

(* Shortest decimal form that parses back to exactly [x], so writing and
   re-parsing is the identity on finite floats ("%.12g" was lossy: it
   collapsed e.g. 0.1 +. 0.2 to "0.3").  JSON has no lexemes for the
   non-finite values; NaN degrades to null, infinities to literals whose
   magnitude overflows back to infinity on parse. *)
let float_repr x =
  if x <> x then "null"
  else if x = infinity then "1e999"
  else if x = neg_infinity then "-1e999"
  else if Float.is_integer x && Float.abs x < 1e15 then Printf.sprintf "%.1f" x
  else
    let shortest =
      let s = Printf.sprintf "%.15g" x in
      if float_of_string s = x then s
      else
        let s = Printf.sprintf "%.16g" x in
        if float_of_string s = x then s else Printf.sprintf "%.17g" x
    in
    (* Large integral floats render bare ("4761259301325582"), which the
       parser would read back as Int; keep the constructor stable. *)
    if String.exists (function '.' | 'e' | 'E' -> true | _ -> false) shortest
    then shortest
    else shortest ^ ".0"

let rec write buf = function
  | Null -> Buffer.add_string buf "null"
  | Bool b -> Buffer.add_string buf (if b then "true" else "false")
  | Int n -> Buffer.add_string buf (string_of_int n)
  | Float x -> Buffer.add_string buf (float_repr x)
  | String s -> escape buf s
  | Arr xs ->
    Buffer.add_char buf '[';
    List.iteri
      (fun i x ->
        if i > 0 then Buffer.add_char buf ',';
        write buf x)
      xs;
    Buffer.add_char buf ']'
  | Obj kvs ->
    Buffer.add_char buf '{';
    List.iteri
      (fun i (k, v) ->
        if i > 0 then Buffer.add_char buf ',';
        escape buf k;
        Buffer.add_char buf ':';
        write buf v)
      kvs;
    Buffer.add_char buf '}'

let to_string j =
  let buf = Buffer.create 1024 in
  write buf j;
  Buffer.contents buf

(* ------------------------------------------------------------------ *)
(* Parser (recursive descent, enough for trace files and tests)       *)
(* ------------------------------------------------------------------ *)

type parser_state = { src : string; mutable pos : int }

let fail st msg =
  raise (Parse_error (Printf.sprintf "%s at offset %d" msg st.pos))

let peek st = if st.pos < String.length st.src then Some st.src.[st.pos] else None

let advance st = st.pos <- st.pos + 1

let rec skip_ws st =
  match peek st with
  | Some (' ' | '\t' | '\n' | '\r') ->
    advance st;
    skip_ws st
  | _ -> ()

let expect st c =
  match peek st with
  | Some c' when c' = c -> advance st
  | _ -> fail st (Printf.sprintf "expected '%c'" c)

let literal st word value =
  let n = String.length word in
  if
    st.pos + n <= String.length st.src
    && String.sub st.src st.pos n = word
  then begin
    st.pos <- st.pos + n;
    value
  end
  else fail st (Printf.sprintf "expected %s" word)

let utf8_of_code buf code =
  (* Minimal UTF-8 encoder for \uXXXX escapes (no surrogate pairing). *)
  if code < 0x80 then Buffer.add_char buf (Char.chr code)
  else if code < 0x800 then begin
    Buffer.add_char buf (Char.chr (0xC0 lor (code lsr 6)));
    Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3F)))
  end
  else begin
    Buffer.add_char buf (Char.chr (0xE0 lor (code lsr 12)));
    Buffer.add_char buf (Char.chr (0x80 lor ((code lsr 6) land 0x3F)));
    Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3F)))
  end

let parse_string st =
  expect st '"';
  let buf = Buffer.create 16 in
  let rec go () =
    match peek st with
    | None -> fail st "unterminated string"
    | Some '"' -> advance st
    | Some '\\' ->
      advance st;
      (match peek st with
      | Some '"' -> Buffer.add_char buf '"'; advance st
      | Some '\\' -> Buffer.add_char buf '\\'; advance st
      | Some '/' -> Buffer.add_char buf '/'; advance st
      | Some 'n' -> Buffer.add_char buf '\n'; advance st
      | Some 'r' -> Buffer.add_char buf '\r'; advance st
      | Some 't' -> Buffer.add_char buf '\t'; advance st
      | Some 'b' -> Buffer.add_char buf '\b'; advance st
      | Some 'f' -> Buffer.add_char buf '\012'; advance st
      | Some 'u' ->
        advance st;
        if st.pos + 4 > String.length st.src then fail st "bad \\u escape";
        let hex = String.sub st.src st.pos 4 in
        let code =
          try int_of_string ("0x" ^ hex)
          with _ -> fail st "bad \\u escape"
        in
        st.pos <- st.pos + 4;
        utf8_of_code buf code
      | _ -> fail st "bad escape");
      go ()
    | Some c ->
      Buffer.add_char buf c;
      advance st;
      go ()
  in
  go ();
  Buffer.contents buf

let parse_number st =
  let start = st.pos in
  let is_num_char = function
    | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
    | _ -> false
  in
  while (match peek st with Some c -> is_num_char c | None -> false) do
    advance st
  done;
  let s = String.sub st.src start (st.pos - start) in
  if s = "" then fail st "expected number";
  match int_of_string_opt s with
  | Some n -> Int n
  | None -> (
    match float_of_string_opt s with
    | Some x -> Float x
    | None -> fail st "malformed number")

let rec parse_value st =
  skip_ws st;
  match peek st with
  | None -> fail st "unexpected end of input"
  | Some '"' -> String (parse_string st)
  | Some 't' -> literal st "true" (Bool true)
  | Some 'f' -> literal st "false" (Bool false)
  | Some 'n' -> literal st "null" Null
  | Some '[' ->
    advance st;
    skip_ws st;
    if peek st = Some ']' then begin
      advance st;
      Arr []
    end
    else begin
      let rec elems acc =
        let v = parse_value st in
        skip_ws st;
        match peek st with
        | Some ',' ->
          advance st;
          elems (v :: acc)
        | Some ']' ->
          advance st;
          List.rev (v :: acc)
        | _ -> fail st "expected ',' or ']'"
      in
      Arr (elems [])
    end
  | Some '{' ->
    advance st;
    skip_ws st;
    if peek st = Some '}' then begin
      advance st;
      Obj []
    end
    else begin
      let rec fields acc =
        skip_ws st;
        let k = parse_string st in
        skip_ws st;
        expect st ':';
        let v = parse_value st in
        skip_ws st;
        match peek st with
        | Some ',' ->
          advance st;
          fields ((k, v) :: acc)
        | Some '}' ->
          advance st;
          List.rev ((k, v) :: acc)
        | _ -> fail st "expected ',' or '}'"
      in
      Obj (fields [])
    end
  | Some _ -> parse_number st

let of_string s =
  let st = { src = s; pos = 0 } in
  let v = parse_value st in
  skip_ws st;
  if st.pos <> String.length s then fail st "trailing garbage";
  v

let find j key =
  match j with Obj kvs -> List.assoc_opt key kvs | _ -> None

let member j key =
  match find j key with
  | Some v -> v
  | None -> raise (Parse_error (Printf.sprintf "missing member %S" key))
