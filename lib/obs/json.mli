(** A minimal JSON tree, writer and parser — just enough for the Chrome
    trace-event exporter and the tests that parse its output back.  The
    writer is deterministic (object members keep insertion order, floats
    print via a fixed format), which is what keeps trace files
    byte-identical across runs with the same seed. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | Arr of t list
  | Obj of (string * t) list

exception Parse_error of string

val to_string : t -> string

(** @raise Parse_error on malformed input *)
val of_string : string -> t

(** [find j key] — object member lookup; [None] on non-objects. *)
val find : t -> string -> t option

(** Like {!find} but raises {!Parse_error} when absent. *)
val member : t -> string -> t
