module Table = Threads_util.Table
module Stats = Threads_util.Stats

(* Per-object fast-path rates, derived from the "<obj>.acquires" /
   "<obj>.fast_path_hits" counter pairs the package probes maintain
   (P counts as Acquire, per the paper). *)
let fast_path_rows counters =
  List.filter_map
    (fun (name, acquires) ->
      match Filename.check_suffix name ".acquires" with
      | false -> None
      | true ->
        let obj = Filename.chop_suffix name ".acquires" in
        let hits =
          Option.value
            (List.assoc_opt (obj ^ ".fast_path_hits") counters)
            ~default:0
        in
        Some (obj, acquires, hits))
    counters

let span_rows spans =
  let tbl = Hashtbl.create 16 in
  List.iter
    (fun (s : Instrument.span) ->
      let count, total =
        Option.value (Hashtbl.find_opt tbl s.name) ~default:(0, 0)
      in
      Hashtbl.replace tbl s.name (count + 1, total + (s.t1 - s.t0)))
    spans;
  Hashtbl.fold (fun name (count, total) acc -> (name, count, total) :: acc)
    tbl []
  |> List.sort compare

let render (snap : Instrument.snapshot) =
  let buf = Buffer.create 1024 in
  let fp = fast_path_rows snap.counters in
  if fp <> [] then begin
    let t =
      Table.create ~title:"obs: fast-path rates"
        ~aligns:[ Table.Left; Table.Right; Table.Right; Table.Right ]
        [ "object"; "acquires"; "fast-path hits"; "rate" ]
    in
    List.iter
      (fun (obj, acquires, hits) ->
        Table.add_row t
          [
            obj;
            Table.cell_int acquires;
            Table.cell_int hits;
            (if acquires = 0 then "-"
             else Table.cell_pct (float_of_int hits /. float_of_int acquires));
          ])
      fp;
    Buffer.add_string buf (Table.render t)
  end;
  if snap.counters <> [] then begin
    let t =
      Table.create ~title:"obs: counters"
        ~aligns:[ Table.Left; Table.Right ]
        [ "counter"; "value" ]
    in
    List.iter
      (fun (name, v) -> Table.add_row t [ name; Table.cell_int v ])
      snap.counters;
    Buffer.add_string buf (Table.render t)
  end;
  if snap.gauges <> [] then begin
    let t =
      Table.create ~title:"obs: high-water gauges"
        ~aligns:[ Table.Left; Table.Right ]
        [ "gauge"; "max" ]
    in
    List.iter
      (fun (name, v) -> Table.add_row t [ name; Table.cell_int v ])
      snap.gauges;
    Buffer.add_string buf (Table.render t)
  end;
  if snap.histograms <> [] then begin
    let t =
      Table.create ~title:"obs: histograms (cycles)"
        ~aligns:
          [
            Table.Left; Table.Right; Table.Right; Table.Right; Table.Right;
            Table.Right; Table.Right;
          ]
        [ "histogram"; "n"; "mean"; "p50"; "p90"; "p99"; "max" ]
    in
    List.iter
      (fun (name, (s : Stats.summary)) ->
        Table.add_row t
          [
            name;
            Table.cell_int s.n;
            Table.cell_float ~decimals:1 s.mean;
            Table.cell_float ~decimals:1 s.p50;
            Table.cell_float ~decimals:1 s.p90;
            Table.cell_float ~decimals:1 s.p99;
            Table.cell_float ~decimals:0 s.max;
          ])
      snap.histograms;
    Buffer.add_string buf (Table.render t)
  end;
  (match span_rows snap.spans with
  | [] -> ()
  | rows ->
    let t =
      Table.create ~title:"obs: spans"
        ~aligns:[ Table.Left; Table.Right; Table.Right; Table.Right ]
        [ "span"; "count"; "total cycles"; "mean cycles" ]
    in
    List.iter
      (fun (name, count, total) ->
        Table.add_row t
          [
            name;
            Table.cell_int count;
            Table.cell_int total;
            Table.cell_float ~decimals:1
              (float_of_int total /. float_of_int count);
          ])
      rows;
    Buffer.add_string buf (Table.render t));
  Buffer.contents buf

let print snap = print_string (render snap)

(* Machine-readable form of the same report, for --format=json consumers:
   every section the tables render, as one schema-versioned object. *)
let to_json (snap : Instrument.snapshot) =
  let open Json in
  let summary_json (s : Stats.summary) =
    Obj
      [
        ("n", Int s.n);
        ("mean", Float s.mean);
        ("stddev", Float s.stddev);
        ("min", Float s.min);
        ("max", Float s.max);
        ("p50", Float s.p50);
        ("p90", Float s.p90);
        ("p99", Float s.p99);
      ]
  in
  Obj
    [
      ("schema_version", Int 1);
      ( "fast_path",
        Arr
          (List.map
             (fun (obj, acquires, hits) ->
               Obj
                 [
                   ("object", String obj);
                   ("acquires", Int acquires);
                   ("fast_path_hits", Int hits);
                 ])
             (fast_path_rows snap.counters)) );
      ( "counters",
        Obj (List.map (fun (name, v) -> (name, Int v)) snap.counters) );
      ("gauges", Obj (List.map (fun (name, v) -> (name, Int v)) snap.gauges));
      ( "histograms",
        Obj
          (List.map
             (fun (name, s) -> (name, summary_json s))
             snap.histograms) );
      ( "spans",
        Arr
          (List.map
             (fun (name, count, total) ->
               Obj
                 [
                   ("name", String name);
                   ("count", Int count);
                   ("total_cycles", Int total);
                 ])
             (span_rows snap.spans)) );
    ]
