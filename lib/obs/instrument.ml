module Stats = Threads_util.Stats

type span = {
  track : int;  (* simulated thread id *)
  name : string;  (* e.g. "held mutex#2" *)
  cat : string;  (* "mutex" | "cond" | "sem" | "spin" | "sched" | ... *)
  t0 : int;  (* begin, in simulated cycles *)
  t1 : int;  (* end, in simulated cycles *)
}

type t = {
  counters : (string, int) Hashtbl.t;
  hists : (string, int list ref) Hashtbl.t;  (* samples, reversed *)
  gauges : (string, int) Hashtbl.t;  (* high-water marks *)
  open_spans : (int * string, int * string) Hashtbl.t;
      (* (track, name) -> (t0, cat) *)
  mutable spans_rev : span list;
  mutable nspans : int;
}

let create () =
  {
    counters = Hashtbl.create 32;
    hists = Hashtbl.create 32;
    gauges = Hashtbl.create 16;
    open_spans = Hashtbl.create 16;
    spans_rev = [];
    nspans = 0;
  }

let incr t name n =
  let cur = Option.value (Hashtbl.find_opt t.counters name) ~default:0 in
  Hashtbl.replace t.counters name (cur + n)

let counter t name =
  Option.value (Hashtbl.find_opt t.counters name) ~default:0

let sample t name v =
  match Hashtbl.find_opt t.hists name with
  | Some r -> r := v :: !r
  | None -> Hashtbl.replace t.hists name (ref [ v ])

let gauge_max t name v =
  match Hashtbl.find_opt t.gauges name with
  | Some cur -> if v > cur then Hashtbl.replace t.gauges name v
  | None -> Hashtbl.replace t.gauges name v

let add_span t span =
  t.spans_rev <- span :: t.spans_rev;
  t.nspans <- t.nspans + 1

let span_begin t ~track ?(cat = "span") name ~now =
  Hashtbl.replace t.open_spans (track, name) (now, cat)

let span_end t ~track name ~now =
  match Hashtbl.find_opt t.open_spans (track, name) with
  | None -> None
  | Some (t0, cat) ->
    Hashtbl.remove t.open_spans (track, name);
    add_span t { track; name; cat; t0; t1 = now };
    Some (now - t0)

let span_add t ~track ?(cat = "span") name ~t0 ~t1 =
  add_span t { track; name; cat; t0; t1 }

let open_span_count t = Hashtbl.length t.open_spans

type snapshot = {
  counters : (string * int) list;  (* sorted by name *)
  gauges : (string * int) list;  (* sorted by name *)
  histograms : (string * Stats.summary) list;  (* sorted by name *)
  spans : span list;  (* sorted by (t0, track), completion order on ties *)
}

let sorted_assoc fold tbl =
  fold (fun k v acc -> (k, v) :: acc) tbl []
  |> List.sort (fun (a, _) (b, _) -> compare (a : string) b)

let snapshot (t : t) =
  {
    counters = sorted_assoc Hashtbl.fold t.counters;
    gauges = sorted_assoc Hashtbl.fold t.gauges;
    histograms =
      Hashtbl.fold
        (fun k r acc -> (k, Stats.summarize_ints (List.rev !r)) :: acc)
        t.hists []
      |> List.sort (fun (a, _) (b, _) -> compare (a : string) b);
    spans =
      List.stable_sort
        (fun a b -> compare (a.t0, a.track) (b.t0, b.track))
        (List.rev t.spans_rev);
  }
