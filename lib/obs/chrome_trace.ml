type span = Instrument.span

(* Duration events ("B"/"E") must nest properly per tid: each "E" closes
   the most recent open "B" on that track.  The probes are designed so
   spans on one track are sequential or properly nested; the stack walk
   below emits the pairs in an order any trace viewer's stable
   sort-by-timestamp preserves. *)

let b_event ~pid ~cycle_us (s : span) =
  Json.Obj
    [
      ("name", Json.String s.name);
      ("cat", Json.String s.cat);
      ("ph", Json.String "B");
      ("ts", Json.Float (float_of_int s.t0 *. cycle_us));
      ("pid", Json.Int pid);
      ("tid", Json.Int s.track);
    ]

let e_event ~pid ~cycle_us (s : span) =
  Json.Obj
    [
      ("name", Json.String s.name);
      ("cat", Json.String s.cat);
      ("ph", Json.String "E");
      ("ts", Json.Float (float_of_int s.t1 *. cycle_us));
      ("pid", Json.Int pid);
      ("tid", Json.Int s.track);
    ]

let track_events ~pid ~cycle_us spans =
  let sorted =
    List.stable_sort
      (fun (a : span) (b : span) -> compare (a.t0, -a.t1) (b.t0, -b.t1))
      spans
  in
  let out = ref [] in
  let stack = ref [] in
  let emit ev = out := ev :: !out in
  List.iter
    (fun (s : span) ->
      let rec close () =
        match !stack with
        | top :: rest when top.Instrument.t1 <= s.t0 ->
          emit (e_event ~pid ~cycle_us top);
          stack := rest;
          close ()
        | _ -> ()
      in
      close ();
      emit (b_event ~pid ~cycle_us s);
      stack := s :: !stack)
    sorted;
  List.iter (fun s -> emit (e_event ~pid ~cycle_us s)) !stack;
  List.rev !out

let metadata ~pid ~process_name ~thread_names tracks =
  let process =
    Json.Obj
      [
        ("name", Json.String "process_name");
        ("ph", Json.String "M");
        ("pid", Json.Int pid);
        ("tid", Json.Int 0);
        ("args", Json.Obj [ ("name", Json.String process_name) ]);
      ]
  in
  let thread track =
    let name =
      match List.assoc_opt track thread_names with
      | Some n -> n
      | None -> Printf.sprintf "t%d" track
    in
    Json.Obj
      [
        ("name", Json.String "thread_name");
        ("ph", Json.String "M");
        ("pid", Json.Int pid);
        ("tid", Json.Int track);
        ("args", Json.Obj [ ("name", Json.String name) ]);
      ]
  in
  process :: List.map thread tracks

let events ?(pid = 1) ?(cycle_us = 1.0) ?(process_name = "firefly-sim")
    ?(thread_names = []) (snap : Instrument.snapshot) =
  let tracks =
    List.sort_uniq compare
      (List.map (fun (s : span) -> s.track) snap.spans
      @ List.map fst thread_names)
  in
  let span_events =
    List.concat_map
      (fun track ->
        track_events ~pid ~cycle_us
          (List.filter (fun (s : span) -> s.track = track) snap.spans))
      tracks
  in
  metadata ~pid ~process_name ~thread_names tracks @ span_events

let to_json ?pid ?cycle_us ?process_name ?thread_names snap =
  Json.Obj
    [
      ( "traceEvents",
        Json.Arr (events ?pid ?cycle_us ?process_name ?thread_names snap) );
      ("displayTimeUnit", Json.String "ms");
    ]

let to_string ?pid ?cycle_us ?process_name ?thread_names snap =
  Json.to_string (to_json ?pid ?cycle_us ?process_name ?thread_names snap)
