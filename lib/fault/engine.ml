module M = Firefly.Machine
module Tid = Threads_util.Tid
module Rng = Threads_util.Rng

type verdict = Completed | Deadlock of Tid.t list | Step_budget

type outcome = {
  verdict : verdict;
  steps : int;
  machine : M.t;
  injected : M.fault list;
}

let default_budget = 300_000

let pp_verdict ppf = function
  | Completed -> Format.pp_print_string ppf "completed"
  | Deadlock ts ->
    Format.fprintf ppf "deadlock [%s]"
      (String.concat "," (List.map (Printf.sprintf "t%d") ts))
  | Step_budget -> Format.pp_print_string ppf "step budget exhausted"

let run ?strategy ?(max_steps = default_budget) ?(seed = 0) ~(plan : Plan.t)
    build =
  let strategy =
    match strategy with Some s -> s | None -> Firefly.Sched.random seed
  in
  let m = M.create ~seed () in
  M.set_chaos_active m true;
  let steps = ref 0 in
  (* Wakeup-interrupt filter, driven by the Delay/Drop triggers below.
     With no plan action armed it answers Deliver for every wakeup. *)
  let drop_budget = ref 0 in
  let delay_until = ref (-1) in
  let delay_by = ref 0 in
  M.set_wake_filter m
    (Some
       (fun _tid ->
         if !drop_budget > 0 then begin
           decr drop_budget;
           M.Drop
         end
         else if !steps <= !delay_until then M.Delay !delay_by
         else M.Deliver));
  build m;
  let rng = Rng.create (seed lxor (plan.Plan.id * 65599)) in
  let stalls : (Tid.t, int) Hashtbl.t = Hashtbl.create 4 in
  let pending =
    ref
      (List.stable_sort
         (fun a b -> compare (Plan.trigger a) (Plan.trigger b))
         plan.Plan.actions)
  in
  let live_tids () =
    List.filter
      (fun tid ->
        match M.status m tid with
        | M.Runnable | M.Blocked -> true
        | M.Finished | M.Failed _ -> false)
      (M.all_tids m)
  in
  (* Injected work (spurious signals, alert storms, contention bursts)
     runs as real simulated threads through the package's registered
     chaos hooks, so every instruction it executes is on the record. *)
  let spawn_injector desc f =
    ignore
      (M.spawn_root m (fun () ->
           M.Probe.inject_fault desc;
           f ()))
  in
  let run_hook ~suffix ~desc arg =
    match
      List.filter (fun (n, _) -> String.ends_with ~suffix n) (M.chaos_hooks m)
    with
    | [] ->
      M.record_fault m
        (Printf.sprintf "%s skipped: no *%s hook registered" desc suffix)
    | hooks ->
      let name, f = List.nth hooks (Rng.int rng (List.length hooks)) in
      spawn_injector (Printf.sprintf "%s via %s" desc name) (fun () -> f arg)
  in
  let rec take n = function
    | [] -> []
    | _ when n <= 0 -> []
    | x :: tl -> x :: take (n - 1) tl
  in
  let apply a =
    match a with
    | Plan.Delay_wakeups { width; delay; _ } ->
      delay_until := !steps + width;
      delay_by := delay;
      M.record_fault m
        (Printf.sprintf "wakeup-delay window: %d steps, +%d cycles" width
           delay)
    | Plan.Drop_wakeup _ ->
      incr drop_budget;
      M.record_fault m "wakeup-drop armed"
    | Plan.Spurious_wakeup _ ->
      run_hook ~suffix:".spurious" ~desc:"spurious wakeup" 1
    | Plan.Alert_storm { count; _ } -> (
      match List.filter (fun (n, _) -> n = "pkg.alert") (M.chaos_hooks m) with
      | [] -> M.record_fault m "alert storm skipped: no pkg.alert hook"
      | (_, f) :: _ -> (
        match take count (live_tids ()) with
        | [] -> M.record_fault m "alert storm skipped: no live threads"
        | targets ->
          spawn_injector
            (Printf.sprintf "alert storm on %s"
               (String.concat "," (List.map (Printf.sprintf "t%d") targets)))
            (fun () -> List.iter f targets)))
    | Plan.Stall { tid; duration; _ } ->
      if List.mem tid (live_tids ()) then begin
        Hashtbl.replace stalls tid (!steps + duration);
        M.record_fault m
          (Printf.sprintf "stall of t%d for %d steps" tid duration)
      end
      else
        M.record_fault m (Printf.sprintf "stall skipped: t%d not live" tid)
    | Plan.Crash_stop { tid; _ } ->
      if List.mem tid (live_tids ()) then
        M.kill m tid ~reason:"injected crash-stop"
      else
        M.record_fault m
          (Printf.sprintf "crash-stop skipped: t%d not live" tid)
    | Plan.Contention_burst { count; _ } ->
      run_hook ~suffix:".contend"
        ~desc:(Printf.sprintf "contention burst x%d" count)
        count
  in
  let blocked () =
    List.filter (fun tid -> M.status m tid = M.Blocked) (M.all_tids m)
  in
  let rec fire_triggers () =
    match !pending with
    | a :: rest when Plan.trigger a <= !steps ->
      pending := rest;
      apply a;
      fire_triggers ()
    | _ -> ()
  in
  let rec loop () =
    if !steps >= max_steps then Step_budget
    else begin
      fire_triggers ();
      M.flush_delayed m;
      M.fire_due_timers m;
      let rs = M.runnable m in
      let unstalled =
        List.filter
          (fun tid ->
            match Hashtbl.find_opt stalls tid with
            | Some until when !steps < until -> false
            | Some _ ->
              Hashtbl.remove stalls tid;
              true
            | None -> true)
          rs
      in
      match (rs, unstalled) with
      | [], _ -> (
        let horizon =
          match (M.next_timer m, M.next_delayed m) with
          | None, None -> None
          | (Some _ as a), None | None, (Some _ as a) -> a
          | Some a, Some b -> Some (min a b)
        in
        match horizon with
        | Some d ->
          (* Quiescent with a timer or held wakeup outstanding: jump the
             clock there (discrete-event idle time) and deliver. *)
          M.advance_clock m ~to_:d;
          incr steps;
          loop ()
        | None ->
          if !pending <> [] then begin
            (* Fully blocked but plan triggers remain (e.g. a spurious
               wakeup aimed at exactly this situation): let steps run
               forward until they fire. *)
            incr steps;
            loop ()
          end
          else if M.live m then Deadlock (blocked ())
          else Completed)
      | _ :: _, [] ->
        (* Every runnable thread is stalled: the processors idle. *)
        incr steps;
        loop ()
      | _, rs' ->
        let tid = Firefly.Sched.choose strategy m rs' in
        ignore (M.step m tid);
        incr steps;
        loop ()
    end
  in
  let verdict = loop () in
  { verdict; steps = !steps; machine = m; injected = M.faults m }
