(** Fault plans: the deterministic scripts the chaos engine replays.

    Each action carries an [after] trigger measured in {e driver steps}
    (not cycles): the engine applies it at the first loop iteration whose
    step count has reached it, so the same plan on the same seed perturbs
    the same point of the schedule every run. *)

type action =
  | Delay_wakeups of { after : int; width : int; delay : int }
      (** For [width] steps from the trigger, every package wakeup
          interrupt ([Ops.ready]) is held back [delay] cycles — widening
          the paper's wakeup-waiting race window.  A held wakeup whose
          target has meanwhile moved on (woken otherwise, or timed out)
          is stale and is discarded, like a real lost interrupt. *)
  | Drop_wakeup of { after : int }  (** Drop the next wakeup outright. *)
  | Spurious_wakeup of { after : int }
      (** Run a registered [*.spurious] chaos hook: a package-level
          Signal (permitted by the spec's subset ENSURES) — never a raw
          machine wake, which could violate Resume's WHEN. *)
  | Alert_storm of { after : int; count : int }
      (** Alert the [count] lowest live tids via the [pkg.alert] hook. *)
  | Stall of { after : int; tid : int; duration : int }
      (** Keep [tid] off the processor for [duration] steps. *)
  | Crash_stop of { after : int; tid : int }
      (** {!Firefly.Machine.kill}: the thread dies without unwinding —
          held locks stay held, finalizers do not run. *)
  | Contention_burst of { after : int; count : int }
      (** Run a registered [*.contend] hook: [count] acquire/release
          pairs on a package spin-lock from an injector thread. *)

type t = { id : int; actions : action list }

(** Trigger step of an action. *)
val trigger : action -> int

val describe_action : action -> string
val describe : t -> string

(** Number of distinct plan families [generate] cycles through. *)
val families : int

(** [generate ~plan_id] is a fixed, reproducible plan: equal ids yield
    equal plans, and consecutive ids cycle through the action families
    with id-seeded jitter.  With [?seed], the jitter draws from the
    {!Threads_util.Rng.cell} stream keyed by [(seed, plan_id)] instead of
    the historical constant base, so independent matrices draw
    independent, reproducible plan streams; omitting [seed] preserves the
    original pinned plans byte for byte. *)
val generate : ?seed:int -> plan_id:int -> unit -> t

(** [random ~seed ~id] is a free-form plan for generative campaigns: an
    arbitrary-length mix of action families drawn from the
    [Rng.cell ~base:seed ~index:id] stream.  Deterministic in
    [(seed, id)]. *)
val random : seed:int -> id:int -> t

(** Total magnitude of a plan's parameters (shrink tie-breaker). *)
val weight : t -> int

(** [shrink p] — strictly-simpler candidate plans, deterministic order:
    each action dropped, then each action's magnitude halved.  Greedy
    minimization terminates because [(List.length p.actions, weight p)]
    decreases lexicographically along any accepted chain. *)
val shrink : t -> t list

(** One-line round-trip encoding of an action, for replay files.
    [decode_action (encode_action a) = Some a]. *)
val encode_action : action -> string

val decode_action : string -> action option
