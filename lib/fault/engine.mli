(** The chaos engine: a replacement interleaving driver that replays a
    {!Plan} against a machine-hosted backend.

    The engine is the only party that perturbs the run: delayed/dropped
    wakeups go through the machine's wakeup-interrupt filter; spurious
    wakeups, alert storms and contention bursts run as {e injector
    threads} through the chaos hooks the package registered at object
    creation, so they execute real package code with real events; stalls
    and crash-stops act on the schedule and thread set directly.  Every
    injected fault is recorded in {!Firefly.Machine.faults} (and the
    [chaos.faults] counter) for blame attribution.

    Runs are deterministic: equal (seed, plan, build) yield equal
    schedules, traces and fault records.  The step budget is the
    watchdog — a run that an injected fault has wedged (e.g. a dropped
    wakeup or a crash-stop holding the package lock) terminates with
    {!Step_budget} or {!Deadlock} instead of hanging. *)

type verdict =
  | Completed
  | Deadlock of Threads_util.Tid.t list  (** blocked threads *)
  | Step_budget  (** watchdog: budget exhausted, e.g. stalled spinners *)

type outcome = {
  verdict : verdict;
  steps : int;
  machine : Firefly.Machine.t;
      (** inspect trace / failures / metrics post-run *)
  injected : Firefly.Machine.fault list;
      (** every fault injected or observed, in sequence order *)
}

val default_budget : int
val pp_verdict : Format.formatter -> verdict -> unit

(** [run ~plan build] creates a machine, installs the wakeup filter,
    runs [build] (which must spawn the root workload thread), then
    drives the interleaving while firing the plan's triggers. *)
val run :
  ?strategy:Firefly.Sched.t ->
  ?max_steps:int ->
  ?seed:int ->
  plan:Plan.t ->
  (Firefly.Machine.t -> unit) ->
  outcome
