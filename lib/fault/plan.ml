module Rng = Threads_util.Rng

type action =
  | Delay_wakeups of { after : int; width : int; delay : int }
  | Drop_wakeup of { after : int }
  | Spurious_wakeup of { after : int }
  | Alert_storm of { after : int; count : int }
  | Stall of { after : int; tid : int; duration : int }
  | Crash_stop of { after : int; tid : int }
  | Contention_burst of { after : int; count : int }

type t = { id : int; actions : action list }

let trigger = function
  | Delay_wakeups { after; _ }
  | Drop_wakeup { after }
  | Spurious_wakeup { after }
  | Alert_storm { after; _ }
  | Stall { after; _ }
  | Crash_stop { after; _ }
  | Contention_burst { after; _ } -> after

let describe_action = function
  | Delay_wakeups { after; width; delay } ->
    Printf.sprintf "delay-wakeups@%d width=%d delay=%d" after width delay
  | Drop_wakeup { after } -> Printf.sprintf "drop-wakeup@%d" after
  | Spurious_wakeup { after } -> Printf.sprintf "spurious-wakeup@%d" after
  | Alert_storm { after; count } ->
    Printf.sprintf "alert-storm@%d count=%d" after count
  | Stall { after; tid; duration } ->
    Printf.sprintf "stall@%d t%d for=%d" after tid duration
  | Crash_stop { after; tid } -> Printf.sprintf "crash-stop@%d t%d" after tid
  | Contention_burst { after; count } ->
    Printf.sprintf "contention-burst@%d count=%d" after count

let describe p =
  Printf.sprintf "plan#%d: %s" p.id
    (String.concat "; " (List.map describe_action p.actions))

let by_trigger actions =
  List.stable_sort (fun a b -> compare (trigger a) (trigger b)) actions

(* Seven plan families, cycled by id; the id also seeds the jitter, so
   plan N is one fixed, reproducible fault sequence everywhere.  With
   [~seed], the jitter instead draws from an [Rng.cell] stream keyed by
   (seed, plan_id), so independent matrices (chaos sweeps, generative
   campaigns) get independent, reproducible plan streams. *)
let families = 7

let generate ?seed ~plan_id () =
  let rng =
    match seed with
    | None -> Rng.create (0x0fa517 + (plan_id * 0x9e3779))
    | Some base -> Rng.cell ~base ~index:plan_id
  in
  let between lo hi = lo + Rng.int rng (hi - lo) in
  let actions =
    match plan_id mod families with
    | 0 ->
      [
        Delay_wakeups
          {
            after = between 100 400;
            width = between 200 600;
            delay = between 50 400;
          };
      ]
    | 1 ->
      [
        Drop_wakeup { after = between 100 500 };
        Drop_wakeup { after = between 600 1200 };
      ]
    | 2 ->
      [
        Spurious_wakeup { after = between 50 300 };
        Spurious_wakeup { after = between 300 900 };
      ]
    | 3 -> [ Alert_storm { after = between 100 500; count = between 2 5 } ]
    | 4 ->
      [
        Stall
          {
            after = between 100 400;
            tid = Rng.int rng 4;
            duration = between 200 800;
          };
      ]
    | 5 -> [ Crash_stop { after = between 200 900; tid = between 1 4 } ]
    | _ ->
      [
        Contention_burst { after = between 50 300; count = between 2 8 };
        Delay_wakeups
          {
            after = between 300 800;
            width = between 100 400;
            delay = between 20 200;
          };
      ]
  in
  { id = plan_id; actions = by_trigger actions }

(* ---- free-form generation (generative campaigns) ---- *)

(* Unlike [generate], which cycles seven curated single-family plans,
   [random] draws an arbitrary-length mix of families from one
   [Rng.cell] stream — the raw material the generative engine composes
   with random programs and then shrinks. *)
let random_action rng =
  let between lo hi = lo + Rng.int rng (hi - lo) in
  match Rng.int rng 7 with
  | 0 ->
    Delay_wakeups
      {
        after = between 50 600;
        width = between 100 600;
        delay = between 20 400;
      }
  | 1 -> Drop_wakeup { after = between 50 1200 }
  | 2 -> Spurious_wakeup { after = between 50 900 }
  | 3 -> Alert_storm { after = between 50 600; count = between 1 5 }
  | 4 ->
    Stall { after = between 50 600; tid = Rng.int rng 5; duration = between 100 800 }
  | 5 -> Crash_stop { after = between 100 900; tid = between 1 5 }
  | _ -> Contention_burst { after = between 50 400; count = between 1 8 }

let random ~seed ~id =
  let rng = Rng.cell ~base:seed ~index:id in
  let n = 1 + Rng.int rng 3 in
  { id; actions = by_trigger (List.init n (fun _ -> random_action rng)) }

(* ---- shrinking ---- *)

(* Candidates that are strictly simpler than [p]: first each action
   dropped (size shrinks), then each action's magnitude parameters
   halved (size equal, weight shrinks).  Deterministic order; a greedy
   minimizer that only accepts still-failing candidates terminates
   because (length, weight) decreases lexicographically. *)

let weight_action = function
  | Delay_wakeups { width; delay; _ } -> width + delay
  | Drop_wakeup _ -> 1
  | Spurious_wakeup _ -> 1
  | Alert_storm { count; _ } -> count
  | Stall { duration; _ } -> duration
  | Crash_stop _ -> 1
  | Contention_burst { count; _ } -> count

let weight p = List.fold_left (fun acc a -> acc + weight_action a) 0 p.actions

let shrink_action a =
  let halve n = if n > 1 then Some (n / 2) else None in
  match a with
  | Delay_wakeups { after; width; delay } ->
    (match halve width with
    | Some w -> [ Delay_wakeups { after; width = w; delay } ]
    | None -> [])
    @ (match halve delay with
      | Some d -> [ Delay_wakeups { after; width; delay = d } ]
      | None -> [])
  | Drop_wakeup _ | Spurious_wakeup _ | Crash_stop _ -> []
  | Alert_storm { after; count } -> (
    match halve count with
    | Some c -> [ Alert_storm { after; count = c } ]
    | None -> [])
  | Stall { after; tid; duration } -> (
    match halve duration with
    | Some d -> [ Stall { after; tid; duration = d } ]
    | None -> [])
  | Contention_burst { after; count } -> (
    match halve count with
    | Some c -> [ Contention_burst { after; count = c } ]
    | None -> [])

let shrink p =
  let n = List.length p.actions in
  let drop i = List.filteri (fun j _ -> j <> i) p.actions in
  let dropped = List.init n (fun i -> { p with actions = drop i }) in
  let softened =
    List.concat
      (List.mapi
         (fun i a ->
           List.map
             (fun a' ->
               { p with actions = List.mapi (fun j b -> if j = i then a' else b) p.actions })
             (shrink_action a))
         p.actions)
  in
  dropped @ softened

(* ---- serialization (replay files) ---- *)

let encode_action = function
  | Delay_wakeups { after; width; delay } ->
    Printf.sprintf "delay-wakeups %d %d %d" after width delay
  | Drop_wakeup { after } -> Printf.sprintf "drop-wakeup %d" after
  | Spurious_wakeup { after } -> Printf.sprintf "spurious-wakeup %d" after
  | Alert_storm { after; count } -> Printf.sprintf "alert-storm %d %d" after count
  | Stall { after; tid; duration } ->
    Printf.sprintf "stall %d %d %d" after tid duration
  | Crash_stop { after; tid } -> Printf.sprintf "crash-stop %d %d" after tid
  | Contention_burst { after; count } ->
    Printf.sprintf "contention-burst %d %d" after count

let decode_action s =
  match String.split_on_char ' ' (String.trim s) with
  | [ "delay-wakeups"; a; w; d ] -> (
    match (int_of_string_opt a, int_of_string_opt w, int_of_string_opt d) with
    | Some after, Some width, Some delay ->
      Some (Delay_wakeups { after; width; delay })
    | _ -> None)
  | [ "drop-wakeup"; a ] ->
    Option.map (fun after -> Drop_wakeup { after }) (int_of_string_opt a)
  | [ "spurious-wakeup"; a ] ->
    Option.map (fun after -> Spurious_wakeup { after }) (int_of_string_opt a)
  | [ "alert-storm"; a; c ] -> (
    match (int_of_string_opt a, int_of_string_opt c) with
    | Some after, Some count -> Some (Alert_storm { after; count })
    | _ -> None)
  | [ "stall"; a; t; d ] -> (
    match (int_of_string_opt a, int_of_string_opt t, int_of_string_opt d) with
    | Some after, Some tid, Some duration -> Some (Stall { after; tid; duration })
    | _ -> None)
  | [ "crash-stop"; a; t ] -> (
    match (int_of_string_opt a, int_of_string_opt t) with
    | Some after, Some tid -> Some (Crash_stop { after; tid })
    | _ -> None)
  | [ "contention-burst"; a; c ] -> (
    match (int_of_string_opt a, int_of_string_opt c) with
    | Some after, Some count -> Some (Contention_burst { after; count })
    | _ -> None)
  | _ -> None
