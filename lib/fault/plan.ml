module Rng = Threads_util.Rng

type action =
  | Delay_wakeups of { after : int; width : int; delay : int }
  | Drop_wakeup of { after : int }
  | Spurious_wakeup of { after : int }
  | Alert_storm of { after : int; count : int }
  | Stall of { after : int; tid : int; duration : int }
  | Crash_stop of { after : int; tid : int }
  | Contention_burst of { after : int; count : int }

type t = { id : int; actions : action list }

let trigger = function
  | Delay_wakeups { after; _ }
  | Drop_wakeup { after }
  | Spurious_wakeup { after }
  | Alert_storm { after; _ }
  | Stall { after; _ }
  | Crash_stop { after; _ }
  | Contention_burst { after; _ } -> after

let describe_action = function
  | Delay_wakeups { after; width; delay } ->
    Printf.sprintf "delay-wakeups@%d width=%d delay=%d" after width delay
  | Drop_wakeup { after } -> Printf.sprintf "drop-wakeup@%d" after
  | Spurious_wakeup { after } -> Printf.sprintf "spurious-wakeup@%d" after
  | Alert_storm { after; count } ->
    Printf.sprintf "alert-storm@%d count=%d" after count
  | Stall { after; tid; duration } ->
    Printf.sprintf "stall@%d t%d for=%d" after tid duration
  | Crash_stop { after; tid } -> Printf.sprintf "crash-stop@%d t%d" after tid
  | Contention_burst { after; count } ->
    Printf.sprintf "contention-burst@%d count=%d" after count

let describe p =
  Printf.sprintf "plan#%d: %s" p.id
    (String.concat "; " (List.map describe_action p.actions))

let by_trigger actions =
  List.stable_sort (fun a b -> compare (trigger a) (trigger b)) actions

(* Seven plan families, cycled by id; the id also seeds the jitter, so
   plan N is one fixed, reproducible fault sequence everywhere. *)
let families = 7

let generate ~plan_id =
  let rng = Rng.create (0x0fa517 + (plan_id * 0x9e3779)) in
  let between lo hi = lo + Rng.int rng (hi - lo) in
  let actions =
    match plan_id mod families with
    | 0 ->
      [
        Delay_wakeups
          {
            after = between 100 400;
            width = between 200 600;
            delay = between 50 400;
          };
      ]
    | 1 ->
      [
        Drop_wakeup { after = between 100 500 };
        Drop_wakeup { after = between 600 1200 };
      ]
    | 2 ->
      [
        Spurious_wakeup { after = between 50 300 };
        Spurious_wakeup { after = between 300 900 };
      ]
    | 3 -> [ Alert_storm { after = between 100 500; count = between 2 5 } ]
    | 4 ->
      [
        Stall
          {
            after = between 100 400;
            tid = Rng.int rng 4;
            duration = between 200 800;
          };
      ]
    | 5 -> [ Crash_stop { after = between 200 900; tid = between 1 4 } ]
    | _ ->
      [
        Contention_burst { after = between 50 300; count = between 2 8 };
        Delay_wakeups
          {
            after = between 300 800;
            width = between 100 400;
            delay = between 20 200;
          };
      ]
  in
  { id = plan_id; actions = by_trigger actions }
