open Lexer

exception Parse_error of string * Lexer.pos

(* Declaration positions, keyed by "proc", "proc.action" and
   "proc.action#case" (1-based case index). *)
type locs = (string, Lexer.pos) Hashtbl.t

let no_locs : locs = Hashtbl.create 1
let loc_proc locs name = Hashtbl.find_opt locs name
let loc_action locs ~proc a = Hashtbl.find_opt locs (proc ^ "." ^ a)

let loc_case locs ~proc ~action i =
  Hashtbl.find_opt locs (Printf.sprintf "%s.%s#%d" proc action i)

type st = {
  mutable toks : (token * Lexer.pos) array;
  mutable pos : int;
  mutable ret : string option;  (* return formal of the current procedure *)
  locs : locs;
}

let current st = fst st.toks.(st.pos)
let position st = snd st.toks.(st.pos)
let record st key pos = Hashtbl.replace st.locs key pos

let peek2 st =
  if st.pos + 1 < Array.length st.toks then fst st.toks.(st.pos + 1) else EOF

let error st fmt =
  Format.kasprintf (fun s -> raise (Parse_error (s, position st))) fmt

let advance st = if st.pos + 1 < Array.length st.toks then st.pos <- st.pos + 1

let expect st tok =
  if current st = tok then advance st
  else
    error st "expected %a but found %a" pp_token tok pp_token (current st)

let kw st name = expect st (KW name)

let accept st tok =
  if current st = tok then begin
    advance st;
    true
  end
  else false

let accept_kw st name = accept st (KW name)

let ident st =
  match current st with
  | IDENT s ->
    advance st;
    s
  | t -> error st "expected an identifier but found %a" pp_token t

(* ---- sorts and literals ---- *)

let sort st =
  match current st with
  | KW "SET" ->
    advance st;
    kw st "OF";
    let elt = ident st in
    if elt <> "Thread" then error st "only SET OF Thread is supported";
    Sort.Thread_set
  | LPAREN ->
    advance st;
    let a = ident st in
    expect st COMMA;
    let b = ident st in
    expect st RPAREN;
    if a <> "available" || b <> "unavailable" then
      error st "only the enumeration (available, unavailable) is supported";
    Sort.Semaphore
  | IDENT "Thread" ->
    advance st;
    Sort.Thread
  | IDENT "bool" ->
    advance st;
    Sort.Bool
  | IDENT "int" ->
    advance st;
    Sort.Int
  | t -> error st "expected a sort but found %a" pp_token t

let literal st =
  match current st with
  | KW "NIL" ->
    advance st;
    Value.Nil
  | KW "TRUE" ->
    advance st;
    Value.Bool true
  | KW "FALSE" ->
    advance st;
    Value.Bool false
  | LBRACE ->
    advance st;
    expect st RBRACE;
    Value.Set Threads_util.Tid.Set.empty
  | IDENT "available" ->
    advance st;
    Value.Sem Value.Available
  | IDENT "unavailable" ->
    advance st;
    Value.Sem Value.Unavailable
  | t -> error st "expected a literal but found %a" pp_token t

(* ---- expressions ---- *)

type expr = T of Term.t | F of Formula.t

let to_term st = function
  | T t -> t
  | F f -> error st "expected a term but found the predicate %s"
             (Formula.to_string f)

let to_formula = function T t -> Formula.Truth t | F f -> f

let name_term st name =
  if name = "RESULT" || st.ret = Some name then Term.Result
  else
    let post_suffix = "_post" in
    let n = String.length name and k = String.length post_suffix in
    if n > k && String.sub name (n - k) k = post_suffix then
      Term.Ref (String.sub name 0 (n - k), Term.Post)
    else Term.Ref (name, Term.Pre)

let names_in_brackets st =
  expect st LBRACKET;
  let rec go acc =
    let n = ident st in
    if accept st COMMA then go (n :: acc) else List.rev (n :: acc)
  in
  let names = go [] in
  expect st RBRACKET;
  names

let rec parse_expr st = parse_implies st

and parse_implies st =
  let lhs = parse_or st in
  if accept st ARROW then
    let rhs = parse_implies st in
    F (Formula.Implies (to_formula lhs, to_formula rhs))
  else lhs

and parse_or st =
  let rec go acc =
    if accept st BAR then
      let rhs = parse_and st in
      go (F (Formula.Or (to_formula acc, to_formula rhs)))
    else acc
  in
  go (parse_and st)

and parse_and st =
  let rec go acc =
    if accept st AMP then
      let rhs = parse_rel st in
      go (F (Formula.And (to_formula acc, to_formula rhs)))
    else acc
  in
  go (parse_rel st)

and parse_rel st =
  let lhs = parse_unary st in
  match current st with
  | EQUALS ->
    advance st;
    let rhs = parse_unary st in
    (match (lhs, rhs) with
    | T a, T b -> F (Formula.Eq (a, b))
    | _ -> F (Formula.Iff (to_formula lhs, to_formula rhs)))
  | KW "IN" ->
    advance st;
    let rhs = parse_unary st in
    F (Formula.Member (to_term st lhs, to_term st rhs))
  | KW "SUBSET" ->
    advance st;
    let rhs = parse_unary st in
    F (Formula.Subset (to_term st lhs, to_term st rhs))
  | _ -> lhs

and parse_unary st =
  if accept st TILDE then
    let operand = parse_unary st in
    F (Formula.Not (to_formula operand))
  else parse_primary st

and parse_primary st =
  match current st with
  | KW "TRUE" ->
    advance st;
    F Formula.True
  | KW "FALSE" ->
    advance st;
    F Formula.False
  | KW "SELF" ->
    advance st;
    T Term.Self
  | KW "NIL" ->
    advance st;
    T Term.Nil_const
  | KW "UNCHANGED" ->
    advance st;
    F (Formula.Unchanged (names_in_brackets st))
  | LBRACE ->
    advance st;
    expect st RBRACE;
    T Term.Empty_set
  | LPAREN ->
    advance st;
    let e = parse_expr st in
    expect st RPAREN;
    e
  | IDENT "insert" when peek2 st = LPAREN ->
    advance st;
    let a, b = parse_pair st in
    T (Term.Insert (a, b))
  | IDENT "delete" when peek2 st = LPAREN ->
    advance st;
    let a, b = parse_pair st in
    T (Term.Delete (a, b))
  | IDENT "available" ->
    advance st;
    T (Term.Lit (Value.Sem Value.Available))
  | IDENT "unavailable" ->
    advance st;
    T (Term.Lit (Value.Sem Value.Unavailable))
  | IDENT name ->
    advance st;
    T (name_term st name)
  | t -> error st "expected an expression but found %a" pp_token t

and parse_pair st =
  expect st LPAREN;
  let a = to_term st (parse_expr st) in
  expect st COMMA;
  let b = to_term st (parse_expr st) in
  expect st RPAREN;
  (a, b)

let formula st = to_formula (parse_expr st)

(* ---- clauses and declarations ---- *)

let parse_case_prefix st =
  match current st with
  | KW "RETURNS" ->
    advance st;
    Some Proc.Returns
  | KW "RAISES" ->
    advance st;
    Some (Proc.Raises (ident st))
  | _ -> None

(* case ::= (RETURNS | RAISES exc)? (WHEN formula)? ENSURES formula *)
let parse_case st =
  let outcome = Option.value (parse_case_prefix st) ~default:Proc.Returns in
  let when_ = if accept_kw st "WHEN" then formula st else Formula.True in
  kw st "ENSURES";
  let ensures = formula st in
  { Proc.c_outcome = outcome; c_when = when_; c_ensures = ensures }

let case_starts st =
  match current st with
  | KW ("RETURNS" | "RAISES" | "WHEN" | "ENSURES") -> true
  | _ -> false

(* [key] is the "proc.action" path the cases belong to, for the location
   table. *)
let parse_cases st key =
  let rec go i acc =
    if case_starts st then begin
      let cpos = position st in
      let case = parse_case st in
      record st (Printf.sprintf "%s#%d" key i) cpos;
      go (i + 1) (case :: acc)
    end
    else List.rev acc
  in
  let cases = go 1 [] in
  if cases = [] then error st "expected at least one WHEN/ENSURES case";
  cases

let parse_formals st =
  expect st LPAREN;
  if accept st RPAREN then []
  else begin
    let rec go acc =
      let mode = if accept_kw st "VAR" then Proc.By_var else Proc.By_value in
      let name = ident st in
      expect st COLON;
      let ty = ident st in
      let f = { Proc.f_name = name; f_mode = mode; f_type = ty } in
      if accept st SEMI then go (f :: acc) else List.rev (f :: acc)
    in
    let formals = go [] in
    expect st RPAREN;
    formals
  end

let parse_procedure st ~atomic =
  let ppos = position st in
  kw st "PROCEDURE";
  let name = ident st in
  record st name ppos;
  let formals = parse_formals st in
  let returns =
    if current st = KW "RETURNS" && peek2 st = LPAREN then begin
      advance st;
      expect st LPAREN;
      let rname = ident st in
      expect st COLON;
      let rsort = sort st in
      expect st RPAREN;
      Some (rname, rsort)
    end
    else None
  in
  st.ret <- Option.map fst returns;
  let raises =
    (* Distinguish the header clause [RAISES Alerted MODIFIES ...] from a
       case prefix [RAISES Alerted WHEN ... ENSURES ...]: after the
       exception name, a case continues with WHEN or ENSURES. *)
    let peek3 =
      if st.pos + 2 < Array.length st.toks then fst st.toks.(st.pos + 2)
      else EOF
    in
    let is_header_raises =
      current st = KW "RAISES"
      && (match peek3 with KW ("WHEN" | "ENSURES") -> false | _ -> true)
    in
    if is_header_raises then begin
      advance st;
      let rec go acc =
        let e = ident st in
        if accept st COMMA then go (e :: acc) else List.rev (e :: acc)
      in
      go []
    end
    else []
  in
  let composition_names =
    if accept st EQUALS then begin
      kw st "COMPOSITION";
      kw st "OF";
      let rec go acc =
        let n = ident st in
        if accept st SEMI then go (n :: acc) else List.rev (n :: acc)
      in
      let names = go [] in
      kw st "END";
      Some names
    end
    else None
  in
  let requires = if accept_kw st "REQUIRES" then formula st else Formula.True in
  let modifies =
    if accept_kw st "MODIFIES" then begin
      kw st "AT";
      kw st "MOST";
      names_in_brackets st
    end
    else []
  in
  let kind =
    match composition_names with
    | None ->
      if not atomic then
        error st "procedure %s has no COMPOSITION and is not ATOMIC" name;
      record st (name ^ "." ^ name) ppos;
      Proc.Atomic
        { Proc.a_name = name; a_cases = parse_cases st (name ^ "." ^ name) }
    | Some names ->
      if atomic then
        error st "ATOMIC PROCEDURE %s cannot be a COMPOSITION" name;
      let parse_action () =
        let apos = position st in
        kw st "ATOMIC";
        kw st "ACTION";
        let a_name = ident st in
        record st (name ^ "." ^ a_name) apos;
        { Proc.a_name; a_cases = parse_cases st (name ^ "." ^ a_name) }
      in
      let rec go acc =
        if current st = KW "ATOMIC" && peek2 st = KW "ACTION" then
          go (parse_action () :: acc)
        else List.rev acc
      in
      let actions = go [] in
      let got = List.map (fun (a : Proc.action) -> a.a_name) actions in
      if got <> names then
        error st "COMPOSITION OF %s but actions are %s"
          (String.concat "; " names) (String.concat "; " got);
      Proc.Composition actions
  in
  st.ret <- None;
  {
    Proc.p_name = name;
    p_formals = formals;
    p_returns = returns;
    p_raises = raises;
    p_requires = requires;
    p_modifies = modifies;
    p_kind = kind;
  }

let parse_interface st =
  kw st "INTERFACE";
  let i_name = ident st in
  let types = ref [] and globals = ref [] and exceptions = ref [] in
  let procs = ref [] in
  let rec loop () =
    match current st with
    | EOF -> ()
    | KW "TYPE" ->
      advance st;
      let t_name = ident st in
      expect st EQUALS;
      let t_sort = sort st in
      kw st "INITIALLY";
      let t_init = literal st in
      types := { Proc.t_name; t_sort; t_init } :: !types;
      loop ()
    | KW "VAR" ->
      advance st;
      let name = ident st in
      expect st COLON;
      let s = sort st in
      kw st "INITIALLY";
      let init = literal st in
      globals := (name, s, init) :: !globals;
      loop ()
    | KW "EXCEPTION" ->
      advance st;
      exceptions := ident st :: !exceptions;
      loop ()
    | KW "ATOMIC" when peek2 st = KW "PROCEDURE" ->
      advance st;
      procs := parse_procedure st ~atomic:true :: !procs;
      loop ()
    | KW "PROCEDURE" ->
      procs := parse_procedure st ~atomic:false :: !procs;
      loop ()
    | t -> error st "expected a declaration but found %a" pp_token t
  in
  loop ();
  {
    Proc.i_name;
    i_types = List.rev !types;
    i_globals = List.rev !globals;
    i_exceptions = List.rev !exceptions;
    i_procs = List.rev !procs;
  }

let make_state src =
  {
    toks = Array.of_list (tokenize src);
    pos = 0;
    ret = None;
    locs = Hashtbl.create 64;
  }

let interface_of_string_located src =
  let st = make_state src in
  let iface = parse_interface st in
  expect st EOF;
  (iface, st.locs)

let interface_of_string src = fst (interface_of_string_located src)

let formula_of_string ?ret src =
  let st = make_state src in
  st.ret <- ret;
  let f = formula st in
  expect st EOF;
  f

let term_of_string ?ret src =
  let st = make_state src in
  st.ret <- ret;
  let t = to_term st (parse_expr st) in
  expect st EOF;
  t
