(** Lexer for the concrete specification syntax (an ASCII rendering of the
    paper's notation; see [specs/threads.lspec]).

    Comments run from ["--"] to end of line.  Upper-case words from the
    fixed keyword set are keywords; every other alphanumeric word is an
    identifier (so [insert], [delete], [available], [unavailable] are
    identifiers resolved by the parser). *)

type token =
  | IDENT of string
  | KW of string  (** one of the reserved upper-case keywords *)
  | LPAREN
  | RPAREN
  | LBRACKET
  | RBRACKET
  | LBRACE
  | RBRACE
  | COMMA
  | SEMI
  | COLON
  | EQUALS
  | AMP
  | BAR
  | TILDE
  | ARROW  (** ["=>"] *)
  | EOF

val pp_token : Format.formatter -> token -> unit

(** A source position: 1-based line and column of a token's first
    character, so diagnostics can cite [threads.lspec:LINE:COL]. *)
type pos = { line : int; col : int }

val pp_pos : Format.formatter -> pos -> unit

exception Lex_error of string * pos  (** message, position *)

(** [tokenize src] returns the token stream with source positions. *)
val tokenize : string -> (token * pos) list

(** The reserved keyword set. *)
val keywords : string list
