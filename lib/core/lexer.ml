type token =
  | IDENT of string
  | KW of string
  | LPAREN
  | RPAREN
  | LBRACKET
  | RBRACKET
  | LBRACE
  | RBRACE
  | COMMA
  | SEMI
  | COLON
  | EQUALS
  | AMP
  | BAR
  | TILDE
  | ARROW
  | EOF

let pp_token ppf = function
  | IDENT s -> Format.fprintf ppf "identifier %S" s
  | KW s -> Format.fprintf ppf "keyword %s" s
  | LPAREN -> Format.pp_print_string ppf "'('"
  | RPAREN -> Format.pp_print_string ppf "')'"
  | LBRACKET -> Format.pp_print_string ppf "'['"
  | RBRACKET -> Format.pp_print_string ppf "']'"
  | LBRACE -> Format.pp_print_string ppf "'{'"
  | RBRACE -> Format.pp_print_string ppf "'}'"
  | COMMA -> Format.pp_print_string ppf "','"
  | SEMI -> Format.pp_print_string ppf "';'"
  | COLON -> Format.pp_print_string ppf "':'"
  | EQUALS -> Format.pp_print_string ppf "'='"
  | AMP -> Format.pp_print_string ppf "'&'"
  | BAR -> Format.pp_print_string ppf "'|'"
  | TILDE -> Format.pp_print_string ppf "'~'"
  | ARROW -> Format.pp_print_string ppf "'=>'"
  | EOF -> Format.pp_print_string ppf "end of input"

type pos = { line : int; col : int }

let pp_pos ppf p = Format.fprintf ppf "%d:%d" p.line p.col

exception Lex_error of string * pos

let keywords =
  [
    "INTERFACE"; "TYPE"; "INITIALLY"; "VAR"; "EXCEPTION"; "ATOMIC";
    "PROCEDURE"; "ACTION"; "COMPOSITION"; "OF"; "END"; "REQUIRES";
    "MODIFIES"; "AT"; "MOST"; "WHEN"; "ENSURES"; "RETURNS"; "RAISES"; "SET";
    "IN"; "SUBSET"; "UNCHANGED"; "SELF"; "NIL"; "TRUE"; "FALSE";
  ]

let is_word_char c =
  (c >= 'a' && c <= 'z')
  || (c >= 'A' && c <= 'Z')
  || (c >= '0' && c <= '9')
  || c = '_'

let tokenize src =
  let n = String.length src in
  let toks = ref [] in
  let line = ref 1 in
  let bol = ref 0 in
  (* offset of the current line's first character *)
  let i = ref 0 in
  let pos_at j = { line = !line; col = j - !bol + 1 } in
  let emit_at j t = toks := (t, pos_at j) :: !toks in
  let emit t = emit_at !i t in
  while !i < n do
    let c = src.[!i] in
    if c = '\n' then begin
      incr line;
      incr i;
      bol := !i
    end
    else if c = ' ' || c = '\t' || c = '\r' then incr i
    else if c = '-' && !i + 1 < n && src.[!i + 1] = '-' then begin
      (* line comment *)
      while !i < n && src.[!i] <> '\n' do
        incr i
      done
    end
    else if is_word_char c then begin
      let start = !i in
      while !i < n && is_word_char src.[!i] do
        incr i
      done;
      let word = String.sub src start (!i - start) in
      if List.mem word keywords then emit_at start (KW word)
      else emit_at start (IDENT word)
    end
    else begin
      let two = if !i + 1 < n then String.sub src !i 2 else "" in
      if two = "=>" then begin
        emit ARROW;
        i := !i + 2
      end
      else begin
        (match c with
        | '(' -> emit LPAREN
        | ')' -> emit RPAREN
        | '[' -> emit LBRACKET
        | ']' -> emit RBRACKET
        | '{' -> emit LBRACE
        | '}' -> emit RBRACE
        | ',' -> emit COMMA
        | ';' -> emit SEMI
        | ':' -> emit COLON
        | '=' -> emit EQUALS
        | '&' -> emit AMP
        | '|' -> emit BAR
        | '~' -> emit TILDE
        | _ ->
          raise
            (Lex_error (Printf.sprintf "unexpected character %C" c, pos_at !i)));
        incr i
      end
    end
  done;
  emit EOF;
  List.rev !toks
