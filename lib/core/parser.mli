(** Recursive-descent parser for the concrete specification syntax.

    Grammar (informally; [*] = repetition, [?] = option):

    {v
    interface  ::= INTERFACE ident decl...
    decl       ::= TYPE ident = sort INITIALLY literal
                 | VAR ident : sort INITIALLY literal
                 | EXCEPTION ident
                 | ATOMIC? PROCEDURE ident (formals?) header-tail
    formals    ::= formal [; formal]...        formal ::= VAR? ident : ident
    header-tail::= [RETURNS (ident : ident)] [RAISES ident [, ident]...]
                   [= COMPOSITION OF ident [; ident]... END]
                   [REQUIRES formula] [MODIFIES AT MOST [names]]
                   (cases | [ATOMIC ACTION ident cases]...)
    cases      ::= case case...
    case       ::= [RETURNS | RAISES ident] [WHEN formula] ENSURES formula
    formula    ::= expr           -- coerced; '=>' right-assoc, '|' and '&'
                                  -- left-assoc, then '=' / IN / SUBSET,
                                  -- then '~', then primaries
    primary    ::= TRUE | FALSE | SELF | NIL | {} | UNCHANGED [names]
                 | insert(expr, expr) | delete(expr, expr)
                 | available | unavailable | ident | ident_post | (expr)
    v}

    An identifier ending in [_post] denotes the post-state value; the
    procedure's return formal denotes [RESULT]. *)

exception Parse_error of string * Lexer.pos  (** message, position *)

(** Source positions of the declarations of a parsed interface, so
    diagnostics can cite [FILE:LINE:COL].  Kept outside {!Proc.interface}
    so parsed and programmatically-built interfaces stay structurally
    equal ([Proc.equal_interface]). *)
type locs

(** An empty table (e.g. for programmatically-built interfaces). *)
val no_locs : locs

(** Position of [PROCEDURE name]'s declaration. *)
val loc_proc : locs -> string -> Lexer.pos option

(** Position of [ATOMIC ACTION action] inside [proc] (for an atomic
    procedure the action shares the procedure's name and position). *)
val loc_action : locs -> proc:string -> string -> Lexer.pos option

(** Position of the 1-based [case]-th case of [action] inside [proc]. *)
val loc_case : locs -> proc:string -> action:string -> int -> Lexer.pos option

(** [interface_of_string src] parses a complete interface.  Raises
    {!Parse_error} or [Lexer.Lex_error]. *)
val interface_of_string : string -> Proc.interface

(** Like {!interface_of_string} but also returns the declaration
    positions. *)
val interface_of_string_located : string -> Proc.interface * locs

(** [formula_of_string ?ret src] parses a single formula; [ret] is the
    return-formal name resolving to [RESULT], if any. *)
val formula_of_string : ?ret:string -> string -> Formula.t

(** [term_of_string ?ret src] parses a single term. *)
val term_of_string : ?ret:string -> string -> Term.t
