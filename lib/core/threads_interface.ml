open Proc

(* Term and formula shorthands used only in this transcription. *)
let pre name = Term.Ref (name, Term.Pre)
let post name = Term.Ref (name, Term.Post)
let self = Term.Self
let nil = Term.Nil_const
let available = Term.Lit (Value.Sem Value.Available)
let unavailable = Term.Lit (Value.Sem Value.Unavailable)
let ( === ) a b = Formula.Eq (a, b)
let ( &&& ) a b = Formula.And (a, b)
let ( ||| ) a b = Formula.Or (a, b)
let mem x s = Formula.Member (x, s)
let not_ f = Formula.Not f
let unchanged names = Formula.Unchanged names
let insert s x = Term.Insert (s, x)
let delete s x = Term.Delete (s, x)

let var name ty = { f_name = name; f_mode = By_var; f_type = ty }
let byval name ty = { f_name = name; f_mode = By_value; f_type = ty }

let returns_case ?(when_ = Formula.True) ensures =
  { c_outcome = Returns; c_when = when_; c_ensures = ensures }

let raises_case exc ~when_ ensures =
  { c_outcome = Raises exc; c_when = when_; c_ensures = ensures }

let atomic_proc name ~formals ?returns ?(raises = [])
    ?(requires = Formula.True) ~modifies cases =
  {
    p_name = name;
    p_formals = formals;
    p_returns = returns;
    p_raises = raises;
    p_requires = requires;
    p_modifies = modifies;
    p_kind = Atomic { a_name = name; a_cases = cases };
  }

let composition name ~formals ?(raises = []) ?(requires = Formula.True)
    ~modifies actions =
  {
    p_name = name;
    p_formals = formals;
    p_returns = None;
    p_raises = raises;
    p_requires = requires;
    p_modifies = modifies;
    p_kind = Composition actions;
  }

(* TYPE Mutex = Thread INITIALLY NIL, etc. *)
let types =
  [
    { t_name = "Mutex"; t_sort = Sort.Thread; t_init = Value.Nil };
    {
      t_name = "Condition";
      t_sort = Sort.Thread_set;
      t_init = Value.Set Threads_util.Tid.Set.empty;
    };
    {
      t_name = "Semaphore";
      t_sort = Sort.Semaphore;
      t_init = Value.Sem Value.Available;
    };
  ]

let globals =
  [ ("alerts", Sort.Thread_set, Value.Set Threads_util.Tid.Set.empty) ]

let acquire =
  atomic_proc "Acquire" ~formals:[ var "m" "Mutex" ] ~modifies:[ "m" ]
    [ returns_case ~when_:(pre "m" === nil) (post "m" === self) ]

let release =
  atomic_proc "Release" ~formals:[ var "m" "Mutex" ]
    ~requires:(pre "m" === self) ~modifies:[ "m" ]
    [ returns_case (post "m" === nil) ]

let wait_enqueue =
  {
    a_name = "Enqueue";
    a_cases =
      [
        returns_case
          ((post "c" === insert (pre "c") self) &&& (post "m" === nil));
      ];
  }

let wait_resume =
  {
    a_name = "Resume";
    a_cases =
      [
        returns_case
          ~when_:((pre "m" === nil) &&& not_ (mem self (pre "c")))
          ((post "m" === self) &&& unchanged [ "c" ]);
      ];
  }

let wait =
  composition "Wait"
    ~formals:[ var "m" "Mutex"; var "c" "Condition" ]
    ~requires:(pre "m" === self) ~modifies:[ "m"; "c" ]
    [ wait_enqueue; wait_resume ]

let signal =
  atomic_proc "Signal" ~formals:[ var "c" "Condition" ] ~modifies:[ "c" ]
    [
      returns_case
        ((post "c" === Term.Empty_set) ||| Formula.Subset (post "c", pre "c"));
    ]

let broadcast =
  atomic_proc "Broadcast" ~formals:[ var "c" "Condition" ] ~modifies:[ "c" ]
    [ returns_case (post "c" === Term.Empty_set) ]

let p_proc =
  atomic_proc "P" ~formals:[ var "s" "Semaphore" ] ~modifies:[ "s" ]
    [ returns_case ~when_:(pre "s" === available) (post "s" === unavailable) ]

let v_proc =
  atomic_proc "V" ~formals:[ var "s" "Semaphore" ] ~modifies:[ "s" ]
    [ returns_case (post "s" === available) ]

let alert =
  atomic_proc "Alert" ~formals:[ byval "t" "Thread" ] ~modifies:[ "alerts" ]
    [ returns_case (post "alerts" === insert (pre "alerts") (pre "t")) ]

let test_alert =
  atomic_proc "TestAlert" ~formals:[]
    ~returns:("b", Sort.Bool)
    ~modifies:[ "alerts" ]
    [
      returns_case
        (Formula.Iff (Formula.Truth Term.Result, mem self (pre "alerts"))
        &&& (post "alerts" === delete (pre "alerts") self));
    ]

let alert_p ~must_raise =
  let returns_when =
    let base = pre "s" === available in
    if must_raise then base &&& not_ (mem self (pre "alerts")) else base
  in
  atomic_proc "AlertP" ~formals:[ var "s" "Semaphore" ] ~raises:[ "Alerted" ]
    ~modifies:[ "s"; "alerts" ]
    [
      returns_case ~when_:returns_when
        ((post "s" === unavailable) &&& unchanged [ "alerts" ]);
      raises_case "Alerted"
        ~when_:(mem self (pre "alerts"))
        ((post "alerts" === delete (pre "alerts") self) &&& unchanged [ "s" ]);
    ]

let alert_wait_enqueue =
  {
    a_name = "Enqueue";
    a_cases =
      [
        returns_case
          ((post "c" === insert (pre "c") self)
          &&& (post "m" === nil)
          &&& unchanged [ "alerts" ]);
      ];
  }

(* The four historical shapes of AlertResume; see the .mli. *)
let alert_resume ~mutex_guard ~must_raise ~unchanged_c =
  let returns_when =
    let base = (pre "m" === nil) &&& not_ (mem self (pre "c")) in
    if must_raise then base &&& not_ (mem self (pre "alerts")) else base
  in
  let raises_when =
    let alerted = mem self (pre "alerts") in
    if mutex_guard then (pre "m" === nil) &&& alerted else alerted
  in
  let raises_ensures =
    if unchanged_c then
      (post "m" === self)
      &&& (post "alerts" === delete (pre "alerts") self)
      &&& unchanged [ "c" ]
    else
      (post "m" === self)
      &&& (post "c" === delete (pre "c") self)
      &&& (post "alerts" === delete (pre "alerts") self)
  in
  {
    a_name = "AlertResume";
    a_cases =
      [
        returns_case ~when_:returns_when
          ((post "m" === self) &&& unchanged [ "c"; "alerts" ]);
        raises_case "Alerted" ~when_:raises_when raises_ensures;
      ];
  }

let alert_wait ~mutex_guard ~must_raise ~unchanged_c =
  composition "AlertWait"
    ~formals:[ var "m" "Mutex"; var "c" "Condition" ]
    ~raises:[ "Alerted" ] ~requires:(pre "m" === self)
    ~modifies:[ "m"; "c"; "alerts" ]
    [ alert_wait_enqueue; alert_resume ~mutex_guard ~must_raise ~unchanged_c ]

(* Timed variants (this reproduction's extension, not in the paper).
   TimedP either takes the semaphore or gives up with the state intact;
   the raise case has no WHEN so expiry is always permitted — the spec
   constrains only what a timeout may change (nothing). *)
let timed_p =
  atomic_proc "TimedP" ~formals:[ var "s" "Semaphore" ] ~raises:[ "TimedOut" ]
    ~modifies:[ "s" ]
    [
      returns_case ~when_:(pre "s" === available) (post "s" === unavailable);
      raises_case "TimedOut" ~when_:Formula.True (unchanged [ "s" ]);
    ]

(* TimedWait = Enqueue; TimedResume.  A timed-out resume must still
   re-acquire the mutex, and deletes SELF from c — delete of a
   non-member is the identity, which is what a racing Broadcast (that
   already emptied c) leaves behind. *)
let timed_resume =
  {
    a_name = "TimedResume";
    a_cases =
      [
        returns_case
          ~when_:((pre "m" === nil) &&& not_ (mem self (pre "c")))
          ((post "m" === self) &&& unchanged [ "c" ]);
        raises_case "TimedOut"
          ~when_:(pre "m" === nil)
          ((post "m" === self) &&& (post "c" === delete (pre "c") self));
      ];
  }

let timed_wait =
  composition "TimedWait"
    ~formals:[ var "m" "Mutex"; var "c" "Condition" ]
    ~raises:[ "TimedOut" ] ~requires:(pre "m" === self)
    ~modifies:[ "m"; "c" ]
    [ wait_enqueue; timed_resume ]

let make ~mutex_guard ~must_raise ~unchanged_c =
  {
    i_name = "Threads";
    i_types = types;
    i_globals = globals;
    i_exceptions = [ "Alerted"; "TimedOut" ];
    i_procs =
      [
        acquire;
        release;
        wait;
        signal;
        broadcast;
        p_proc;
        v_proc;
        alert;
        test_alert;
        alert_p ~must_raise;
        alert_wait ~mutex_guard ~must_raise ~unchanged_c;
        timed_p;
        timed_wait;
      ];
  }

let final = make ~mutex_guard:true ~must_raise:false ~unchanged_c:false

let missing_mutex_guard =
  make ~mutex_guard:false ~must_raise:false ~unchanged_c:false

let must_raise = make ~mutex_guard:true ~must_raise:true ~unchanged_c:false
let nelson_bug = make ~mutex_guard:true ~must_raise:false ~unchanged_c:true

let variants =
  [
    ("final", final);
    ("missing-mutex-guard", missing_mutex_guard);
    ("must-raise", must_raise);
    ("nelson-bug", nelson_bug);
  ]

let source =
  {|INTERFACE Threads

TYPE Mutex = Thread INITIALLY NIL
TYPE Condition = SET OF Thread INITIALLY {}
TYPE Semaphore = (available, unavailable) INITIALLY available

VAR alerts : SET OF Thread INITIALLY {}
EXCEPTION Alerted
EXCEPTION TimedOut

ATOMIC PROCEDURE Acquire(VAR m : Mutex)
  MODIFIES AT MOST [m]
  WHEN m = NIL
  ENSURES m_post = SELF

ATOMIC PROCEDURE Release(VAR m : Mutex)
  REQUIRES m = SELF
  MODIFIES AT MOST [m]
  ENSURES m_post = NIL

PROCEDURE Wait(VAR m : Mutex; VAR c : Condition) =
  COMPOSITION OF Enqueue; Resume END
  REQUIRES m = SELF
  MODIFIES AT MOST [m, c]
  ATOMIC ACTION Enqueue
    ENSURES (c_post = insert(c, SELF)) & (m_post = NIL)
  ATOMIC ACTION Resume
    WHEN (m = NIL) & ~(SELF IN c)
    ENSURES (m_post = SELF) & UNCHANGED [c]

ATOMIC PROCEDURE Signal(VAR c : Condition)
  MODIFIES AT MOST [c]
  ENSURES (c_post = {}) | (c_post SUBSET c)

ATOMIC PROCEDURE Broadcast(VAR c : Condition)
  MODIFIES AT MOST [c]
  ENSURES c_post = {}

ATOMIC PROCEDURE P(VAR s : Semaphore)
  MODIFIES AT MOST [s]
  WHEN s = available
  ENSURES s_post = unavailable

ATOMIC PROCEDURE V(VAR s : Semaphore)
  MODIFIES AT MOST [s]
  ENSURES s_post = available

ATOMIC PROCEDURE Alert(t : Thread)
  MODIFIES AT MOST [alerts]
  ENSURES alerts_post = insert(alerts, t)

ATOMIC PROCEDURE TestAlert() RETURNS (b : bool)
  MODIFIES AT MOST [alerts]
  ENSURES (b = (SELF IN alerts)) & (alerts_post = delete(alerts, SELF))

ATOMIC PROCEDURE AlertP(VAR s : Semaphore) RAISES Alerted
  MODIFIES AT MOST [s, alerts]
  RETURNS WHEN s = available
    ENSURES (s_post = unavailable) & UNCHANGED [alerts]
  RAISES Alerted WHEN SELF IN alerts
    ENSURES (alerts_post = delete(alerts, SELF)) & UNCHANGED [s]

PROCEDURE AlertWait(VAR m : Mutex; VAR c : Condition) RAISES Alerted =
  COMPOSITION OF Enqueue; AlertResume END
  REQUIRES m = SELF
  MODIFIES AT MOST [m, c, alerts]
  ATOMIC ACTION Enqueue
    ENSURES (c_post = insert(c, SELF)) & (m_post = NIL) & UNCHANGED [alerts]
  ATOMIC ACTION AlertResume
    RETURNS WHEN (m = NIL) & ~(SELF IN c)
      ENSURES (m_post = SELF) & UNCHANGED [c, alerts]
    RAISES Alerted WHEN (m = NIL) & (SELF IN alerts)
      ENSURES (m_post = SELF) & (c_post = delete(c, SELF)) & (alerts_post = delete(alerts, SELF))

ATOMIC PROCEDURE TimedP(VAR s : Semaphore) RAISES TimedOut
  MODIFIES AT MOST [s]
  RETURNS WHEN s = available
    ENSURES s_post = unavailable
  RAISES TimedOut ENSURES UNCHANGED [s]

PROCEDURE TimedWait(VAR m : Mutex; VAR c : Condition) RAISES TimedOut =
  COMPOSITION OF Enqueue; TimedResume END
  REQUIRES m = SELF
  MODIFIES AT MOST [m, c]
  ATOMIC ACTION Enqueue
    ENSURES (c_post = insert(c, SELF)) & (m_post = NIL)
  ATOMIC ACTION TimedResume
    RETURNS WHEN (m = NIL) & ~(SELF IN c)
      ENSURES (m_post = SELF) & UNCHANGED [c]
    RAISES TimedOut WHEN (m = NIL)
      ENSURES (m_post = SELF) & (c_post = delete(c, SELF))
|}
