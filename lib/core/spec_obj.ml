type t = { oid : int; name : string; sort : Sort.t }

(* Atomic: spec objects may be minted from parallel domains (the
   run-matrix executor).  Object identity only needs uniqueness, not
   density, so fetch-and-add is enough.  Code whose printed output
   embeds ids — conformance, the model checker — uses [make] with
   deterministic caller-chosen ids instead. *)
let counter = Atomic.make 0

let create name sort =
  { oid = 1 + Atomic.fetch_and_add counter 1; name; sort }

let make ~oid name sort =
  assert (oid <> 0);
  { oid; name; sort }

(* oid 0 is reserved for the global alerts set. *)
let alerts = { oid = 0; name = "alerts"; sort = Sort.Thread_set }

let is_alerts t = t.oid = 0
let equal a b = a.oid = b.oid
let compare a b = Int.compare a.oid b.oid
let pp ppf t = Format.fprintf ppf "%s#%d" t.name t.oid
