(** The formal specification of the Threads synchronization primitives,
    transcribed clause-for-clause from the paper, plus the three historical
    variants discussed in its "Discussion" section.

    Procedures: [Acquire], [Release], [Wait] (= COMPOSITION OF Enqueue;
    Resume), [Signal], [Broadcast], [P], [V], [Alert], [TestAlert],
    [AlertP], [AlertWait] (= COMPOSITION OF Enqueue; AlertResume), plus
    this reproduction's timed extensions [TimedP] and [TimedWait]
    (= COMPOSITION OF Enqueue; TimedResume): the timeout cases RAISE
    [TimedOut]; an expired [TimedP] leaves the semaphore UNCHANGED, and
    an expired [TimedWait] still re-acquires the mutex and deletes SELF
    from the condition (delete of a non-member is the identity, covering
    the race with a Broadcast that already emptied it).

    Types: [Mutex = Thread INITIALLY NIL], [Condition = SET OF Thread
    INITIALLY {}], [Semaphore = (available, unavailable) INITIALLY
    available]; global [alerts : SET OF Thread INITIALLY {}]; exceptions
    [Alerted] and [TimedOut]. *)

(** The specification as published (after all three corrections). *)
val final : Proc.interface

(** Incident 1 — the original release: AlertResume's RAISES case lacked
    the [m = NIL &] conjunct in its WHEN, so a thread could raise Alerted
    and seize the mutex while another thread held it.  Found "in less than
    an hour" by a newcomer.  Model checking finds a mutual-exclusion
    violation (experiment E7a). *)
val missing_mutex_guard : Proc.interface

(** Incident 2 — AlertP and AlertWait originally {e had} to raise Alerted
    when possible (the RETURNS cases required [~(SELF IN alerts)]).  The
    implementation was non-deterministic, so real traces violate this
    variant; the spec was weakened instead (experiment E7b). *)
val must_raise : Proc.interface

(** Incident 3 — Greg Nelson's bug: AlertResume's RAISES case ensured
    [UNCHANGED \[c\]], leaving the departed thread in the condition's set;
    a later Signal may remove it and wake nobody (experiment E7c). *)
val nelson_bug : Proc.interface

(** All four, with short tags: [("final", final); ...]. *)
val variants : (string * Proc.interface) list

(** The concrete-syntax source of {!final}, as shipped in
    [specs/threads.lspec]; [Parser.interface_of_string source] must equal
    {!final} (checked in the test suite). *)
val source : string
