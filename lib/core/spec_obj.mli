(** Specification-level objects.

    Each synchronization object a client program manipulates (a particular
    mutex, condition variable, or semaphore) is an object with a stable
    identity; a {!State.t} maps objects to their current abstract values.
    The global [alerts] variable is itself an object, distinguished by
    {!is_alerts}. *)

type t = private { oid : int; name : string; sort : Sort.t }

(** [create name sort] allocates a fresh object.  Identities are unique for
    the lifetime of the process (domain-safe: the allocator is atomic). *)
val create : string -> Sort.t -> t

(** [make ~oid name sort] builds an object with a caller-chosen identity.
    For contexts that need {e deterministic} identities — conformance
    checks and model-checker runs executing on parallel domains, whose
    reports must be byte-identical whatever the execution order.  The
    caller guarantees [oid <> 0] (reserved for {!alerts}) and uniqueness
    among objects sharing a {!State.t}. *)
val make : oid:int -> string -> Sort.t -> t

(** The distinguished global [VAR alerts: SET OF Thread INITIALLY {}]. *)
val alerts : t

val is_alerts : t -> bool
val equal : t -> t -> bool
val compare : t -> t -> int
val pp : Format.formatter -> t -> unit
