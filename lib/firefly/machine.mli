(** The simulated shared-memory multiprocessor.

    Thread code is ordinary OCaml performing the effects in {!module:Ops};
    the machine holds one one-shot continuation per thread and executes
    exactly one effect ("instruction") per {!step}, so drivers control the
    interleaving at memory-access granularity.  Computation between effects
    is invisible to other threads, which matches a real machine: only
    loads, stores and interlocked operations are ordering points.

    The machine itself is single-threaded OCaml; concurrency is simulated,
    which is what makes runs deterministic and schedules replayable. *)

type t

type status =
  | Runnable
  | Blocked  (** descheduled; waiting for {!Ops.ready} *)
  | Finished
  | Failed of exn  (** the thread body escaped with an exception *)

(** An interrupt routine attempted to block (join or deschedule).  The
    argument names the blocking site.  Interrupt routines cannot protect
    shared data with a mutex — the paper's stated reason semaphores exist
    — so this is a programming (or fault-plan) error with its own
    diagnostic rather than a bare [Failure]. *)
exception Interrupt_blocked of string

(** Status exception of a thread removed by {!kill} (injected processor
    crash-stop). *)
exception Crash_stopped

(** {1 Fault injection (lib/fault)}

    The chaos engine installs a {!wake_verdict} filter over every
    package-level wakeup interrupt ({!Ops.ready}), may {!kill} threads
    mid-run, and runs package-registered injection hooks from injector
    threads.  Every injected fault lands in the cycle-stamped fault log
    ({!faults}) so post-mortem reports can attribute blame.  With no
    filter installed and no timers armed, none of this code runs: an
    uninjected machine is cycle- and schedule-identical to one built
    before this layer existed. *)

(** Filter verdict for one intercepted wakeup interrupt. *)
type wake_verdict =
  | Deliver  (** pass through unchanged *)
  | Delay of int  (** deliver [n] cycles later (widens the race window) *)
  | Drop  (** lose it — the classic lost-wakeup incident *)

(** One injected fault (or notable consequence), cycle-stamped. *)
type fault = { f_seq : int; f_cycle : int; f_desc : string }

(** {1 Low-level access stream (dynamic analysis)}

    With {!set_recording} on, the machine appends one {!access} per
    shared-memory instruction — and one per package-level lock event
    reported through {!Probe.lock_acquired}/{!Probe.lock_released} —
    stamped with the issuing thread and the lock ids it held.  Recording
    is host-side bookkeeping only (no cycles, no scheduling points, no
    randomness), so a recorded run is cycle- and schedule-identical to an
    unrecorded one.  [lib/analysis] consumes this stream. *)

(** Protocol role of a registered memory word (see
    {!Probe.register_word}).  The analyzers exempt synchronization words
    from race checking and derive happens-before edges from their
    operations; unregistered words are ordinary data. *)
type word_kind =
  | W_lock  (** TAS/clear mutual-exclusion word: spin-locks, mutex Lock-bits *)
  | W_sem  (** semaphore availability bit: V's clear releases to P's TAS *)
  | W_eventcount  (** monotone counter: advance releases to readers *)
  | W_atomic  (** deliberately unsynchronized single word (benign by design) *)
  | W_data  (** named ordinary data word; unregistered words are also data *)

type access_kind =
  | A_load
  | A_store
  | A_tas of bool  (** [true] = won the word (old value was 0) *)
  | A_clear
  | A_faa
  | A_lock_acq  (** package-level lock acquisition (addr = lock id) *)
  | A_lock_att  (** blocked/contended acquisition attempt *)
  | A_lock_rel
  | A_spawn of Threads_util.Tid.t
  | A_join of Threads_util.Tid.t

type access = {
  a_seq : int;
  a_tid : Threads_util.Tid.t;
  a_addr : int;  (** word address or lock id; [-1] for spawn/join *)
  a_kind : access_kind;
  a_locks : int list;  (** lock ids held (for [A_lock_acq]: before acquiring) *)
}

(** {1 Causal profiling stream (lib/profile)}

    With {!set_profiling} on, the machine appends one {!prof_event} per
    causal edge: merged run segments (cycles a thread consumed), block
    edges annotated by {!Probe.will_block} with the object waited on and
    its owner at that instant, wake edges annotated by {!Probe.handoff}
    with the waker and the object handed over, spawn/finish lifecycle
    points, and wakeup-waiting arms.  Host-side bookkeeping only: a
    profiled run is cycle- and schedule-identical to an unprofiled one. *)

(** What a blocked thread is waiting for. *)
type wait_target =
  | On_obj of int  (** mutex / condition / semaphore id *)
  | On_thread of Threads_util.Tid.t  (** join *)
  | On_unknown  (** deschedule with no package annotation *)

type prof_kind =
  | Pr_run of int
      (** merged run segment: the thread consumed cycles [pr_t, arg] *)
  | Pr_spawn of Threads_util.Tid.t  (** [pr_tid] spawned the child *)
  | Pr_block of wait_target * Threads_util.Tid.t option
      (** blocked on [target]; owner of the object at that instant *)
  | Pr_wake of Threads_util.Tid.t option * int option
      (** [pr_tid] was woken by the waker, handing over the object *)
  | Pr_wake_pending of Threads_util.Tid.t option * int option
      (** wakeup-waiting arm: the target was still runnable *)
  | Pr_finish

type prof_event = {
  pr_seq : int;  (** global order, dense from 0 *)
  pr_t : int;  (** cycle timestamp (segment start for [Pr_run]) *)
  pr_tid : Threads_util.Tid.t;  (** subject thread (the woken one for wakes) *)
  pr_kind : prof_kind;
}

(** Memory operation for {!Ops.mem_emit}.  [M_none] is a plain store-class
    instruction with no memory visible effect (used when the action commits
    purely in package bookkeeping, e.g. Alert's pending-set insert).
    Results: [M_read] the value, [M_tas] the {e old} word (0 = acquired),
    [M_faa] the old value, others 0. *)
type mem_op =
  | M_none
  | M_read of int
  | M_tas of int
  | M_clear of int
  | M_faa of int * int

(** {1 Effects performed by thread code} *)

module Ops : sig
  val read : int -> int
  val write : int -> int -> unit

  (** [tas a] atomically reads word [a] and sets it to 1; returns [true]
      iff it was already 1 (i.e. the lock was held). *)
  val tas : int -> bool

  (** [clear a] sets word [a] to 0. *)
  val clear : int -> unit

  (** [faa a n] fetch-and-add: returns the old value. *)
  val faa : int -> int -> int

  (** [alloc n] allocates [n] fresh zeroed words, returning the base
      address. *)
  val alloc : int -> int

  val self : unit -> Threads_util.Tid.t

  (** [spawn ?priority f] creates a new runnable thread. *)
  val spawn : ?priority:int -> (unit -> unit) -> Threads_util.Tid.t

  (** [join t] blocks until thread [t] finishes (normally or by failure). *)
  val join : Threads_util.Tid.t -> unit

  (** [deschedule_and_clear a] atomically blocks the calling thread and
      clears word [a] — the kernel "sleep releasing the spin-lock"
      primitive the Nub's deschedule path relies on. *)
  val deschedule_and_clear : int -> unit

  (** [ready t] moves a blocked thread to the runnable set.  If [t] is
      runnable but about to deschedule, the wakeup is remembered and the
      deschedule becomes a no-op (Saltzer's wakeup-waiting switch); readying
      a finished thread is a simulation error ([Failure]). *)
  val ready : Threads_util.Tid.t -> unit

  (** [emit ev] appends a trace event at the current instant (zero cost). *)
  val emit : Spec_trace.event -> unit

  (** [tick n] consumes [n] cycles of pure computation (one instruction). *)
  val tick : int -> unit

  (** [incr_counter name] bumps a named statistic (zero cost). *)
  val incr_counter : string -> unit

  (** [rand n] draws uniformly from [\[0, n)] using the machine's seeded
      generator (zero cost, deterministic). *)
  val rand : int -> int

  val set_priority : int -> unit

  (** [yield ()] is a zero-cost scheduling point (used by the cooperative
      uniprocessor backend). *)
  val yield : unit -> unit

  (** [mem_emit op thunk] performs memory operation [op] and, atomically in
      the same instruction, calls [thunk result]; if it returns an event it
      is appended to the trace at that instant.  This is how the Threads
      package linearizes its visible atomic actions: the event cannot be
      separated from the memory operation that commits the action.  The
      thunk may update package-level bookkeeping but must not perform
      machine effects. *)
  val mem_emit : mem_op -> (int -> Spec_trace.event option) -> int
end

(** {1 Observation probes (thread code, zero simulated cost)}

    Unlike {!Ops}, nothing here performs an effect: a probe call is not a
    scheduling point, charges no cycles, consumes no randomness, and is
    therefore invisible to the simulation — an instrumented run is
    cycle-identical to an uninstrumented one.  Probes record into the
    stepping machine's {!obs} registry and may be called from anywhere in
    thread code, including inside {!Ops.mem_emit} thunks (where [now]
    already includes the charged cost of the enclosing instruction).
    Outside a simulated thread every probe is a no-op. *)

module Probe : sig
  (** Current simulated time: the machine's running total-cycle clock. *)
  val now : unit -> int

  (** [emit ev] appends a trace event at the current instant without
      performing an effect.  For {!Ops.mem_emit} thunks whose single
      instruction linearizes more than one visible action (e.g. a monitor
      handoff: Release and the successor's Acquire commit together). *)
  val emit : Spec_trace.event -> unit

  (** The thread currently inside {!step} — i.e. the caller's own id when
      invoked from package code or a [mem_emit] thunk; [None] outside a
      machine.  Unlike {!Ops.self} this performs no effect, so it adds no
      scheduling point. *)
  val self : unit -> Threads_util.Tid.t option

  (** Fresh negative trace id for an object not backed by a memory word
      (Hoare conditions).  Allocated from the stepping machine, so the ids
      appearing in traces and reports depend only on the run — not on
      process history or the executing domain. *)
  val fresh_trace_id : unit -> int

  (** [touch ?write id] declares a host-level access to shared package
      state (cooperative queues, monitor holder fields) for the DPOR
      dependence stream.  Object ids live in their own pseudo-address
      range and never alias machine words.  No-op unless footprint
      tracking is on ({!set_footprints}). *)
  val touch : ?write:bool -> int -> unit

  (** [counter name n] adds [n]; [counter name 0] materializes the counter
      at 0 so it shows in reports. *)
  val counter : string -> int -> unit

  (** [sample name v] records a histogram sample (a cycle count). *)
  val sample : string -> int -> unit

  (** [gauge_max name v] raises a high-water gauge. *)
  val gauge_max : string -> int -> unit

  (** Spans are keyed by (current thread, name); see
      {!Obs.Instrument.span_begin}. *)
  val span_begin : ?cat:string -> string -> unit

  (** Returns the span duration in cycles, [None] without matching begin. *)
  val span_end : string -> int option

  (** Record an already-delimited span on the current thread's track. *)
  val span_add : ?cat:string -> string -> t0:int -> t1:int -> unit

  (** {2 Access-stream probes (lib/analysis)} *)

  (** [register_word addr kind name] classifies memory word [addr] for the
      analyzers.  A [W_lock] registration also names [addr] as a lock id
      (TAS-backed locks use their word address as their id). *)
  val register_word : int -> word_kind -> string -> unit

  (** [register_lock id name] names a package-level lock that is not
      backed by a TAS word (cooperative mutexes, Hoare monitors). *)
  val register_lock : int -> string -> unit

  (** [lock_acquired ?tid id] marks lock [id] as held by [tid] (default:
      the stepping thread) and records an [A_lock_acq].  [?tid] covers
      grants made on another thread's behalf, e.g. Hoare's signal handing
      the monitor to the resumed waiter.  Held-lock tracking works even
      with recording off. *)
  val lock_acquired : ?tid:Threads_util.Tid.t -> int -> unit

  val lock_released : ?tid:Threads_util.Tid.t -> int -> unit

  (** [lock_attempted id] records a contended acquisition about to block,
      so the lock-order graph sees the attempted edge even when the
      acquisition never succeeds (the classic deadlock). *)
  val lock_attempted : int -> unit

  (** {2 Causal-profiling probes (lib/profile)} *)

  (** {2 Timer probes (timed waits)}

      Host-side bookkeeping: arming charges no cycle and adds no
      scheduling point.  The deadline takes effect when the driver fires
      due timers between steps ({!fire_due_timers}); the victim is woken
      like any other wake and consumes {!take_timeout_fired} to tell
      expiry from a Signal/V wake. *)

  (** Arm (or re-arm) the calling thread's timer [cycles] from now. *)
  val set_timeout : cycles:int -> unit

  (** Disarm the calling thread's timer and clear any un-consumed fired
      flag. *)
  val cancel_timeout : unit -> unit

  (** Consume and return the calling thread's timer-fired flag. *)
  val take_timeout_fired : unit -> bool

  (** {2 Chaos probes (lib/fault)} *)

  (** True only while a fault-injection driver runs this machine: gates
      degradation heuristics (e.g. spin-lock backoff) so uninjected runs
      stay schedule-identical. *)
  val chaos_active : unit -> bool

  (** [register_chaos name f] registers a named package-level injection
      entry point (spurious wakeup, contention burst, alert); the chaos
      engine runs [f arg] from injector threads it spawns mid-run. *)
  val register_chaos : string -> (int -> unit) -> unit

  (** Record a package-level injected fault in the machine's fault log. *)
  val inject_fault : string -> unit

  (** [will_block obj] annotates the caller's imminent deschedule with the
      synchronization object it waits on; the machine resolves the
      object's owner when the block commits.  No-op unless profiling. *)
  val will_block : int -> unit

  (** [handoff ~obj target] annotates the next wake of [target] with the
      object whose ownership is handed over — call just before the
      [Ops.ready] in Release / Signal / Broadcast / V and in alert
      cancellations.  No-op unless profiling. *)
  val handoff : obj:int -> Threads_util.Tid.t -> unit
end

(** {1 Construction and stepping (driver side)} *)

(** [create ?seed ?cost ()] — [seed] feeds {!Ops.rand}. *)
val create : ?seed:int -> ?cost:Cost.t -> unit -> t

(** [spawn_root m f] adds a thread before (or during) a run; same semantics
    as {!Ops.spawn} but callable from outside.  A thread spawned with
    [~interrupt:true] models an interrupt routine: any attempt to block
    (deschedule or join) fails it with [Failure] — interrupt routines
    cannot protect shared data with a mutex, the paper's stated reason
    semaphores exist. *)
val spawn_root :
  ?priority:int -> ?interrupt:bool -> t -> (unit -> unit) -> Threads_util.Tid.t

(** [spawn_interrupt f] — raise an interrupt from {e inside} running
    thread code: spawns [f] as an interrupt-context thread
    ([spawn_root ~interrupt:true]) on the machine currently executing the
    calling thread on this domain.  The handler may post a semaphore (V)
    but fails if it tries to block.  Raises [Failure] when no machine is
    running on the calling domain (e.g. a hardware backend). *)
val spawn_interrupt : (unit -> unit) -> Threads_util.Tid.t

val is_interrupt : t -> Threads_util.Tid.t -> bool

val status : t -> Threads_util.Tid.t -> status
val priority : t -> Threads_util.Tid.t -> int

(** [runnable m] — runnable thread ids, ascending. *)
val runnable : t -> Threads_util.Tid.t list

(** [live m] is true while some thread is runnable or blocked. *)
val live : t -> bool

(** [deadlocked m] — no runnable thread but some blocked thread. *)
val deadlocked : t -> bool

(** [step m t] executes thread [t]'s pending instruction and runs it up to
    its next effect.  Returns the cycle cost of the executed instruction.
    Raises [Failure] if [t] is not runnable. *)
val step : t -> Threads_util.Tid.t -> int

(** {1 Observation} *)

val trace : t -> Spec_trace.event list
(** in emission order *)

(** The machine's underlying event sink ({!Spec_trace.Sink}); [trace] is
    its current contents. *)
val sink : t -> Spec_trace.Sink.t

val counters : t -> (string * int) list
val counter : t -> string -> int

(** [instructions m t] — instructions executed by thread [t]. *)
val instructions : t -> Threads_util.Tid.t -> int

val total_instructions : t -> int
val total_cycles : t -> int

(** [failures m] — threads that escaped with exceptions. *)
val failures : t -> (Threads_util.Tid.t * exn) list

val all_tids : t -> Threads_util.Tid.t list
val cost_model : t -> Cost.t

(** The machine's instrument registry (counters / histograms / gauges /
    spans recorded by {!Probe} calls and by the machine itself:
    ["machine.blocks"], ["machine.wakes"],
    ["machine.wakeup_waiting_arms"/"_saves"], and per-thread ["blocked"]
    spans).  Snapshot it after a run for {!Obs.Report} or
    {!Obs.Chrome_trace}. *)
val obs : t -> Obs.Instrument.t

(** {1 Access stream (driver side)} *)

(** Enable/disable access recording.  Off by default; usually switched on
    right after {!create}, before any thread runs. *)
val set_recording : t -> bool -> unit

val recording : t -> bool

(** Recorded accesses in execution order (empty unless recording). *)
val accesses : t -> access list

val access_count : t -> int

(** {1 Step footprints (DPOR dependence, driver side)}

    With {!set_footprints} on, each {!step} records the set of
    [(address, is_write)] pairs it touched: real memory addresses for
    loads/stores/interlocked operations, pseudo-addresses for scheduler
    interactions (every step reads its own scheduler slot; waking,
    spawning, finishing or joining a thread writes the target's slot),
    and {!Probe.touch} declarations for host-level package state.  Two
    steps commute whenever their footprints do not conflict — the
    dependence relation {!Explore.explore_dpor} keys its sleep sets on.
    Off by default and charge-free when off. *)

val set_footprints : t -> bool -> unit
val footprints : t -> bool

(** Footprint of the most recently executed step (newest access first). *)
val last_footprint : t -> (int * bool) list

(** [footprints_conflict f1 f2] — do the footprints share an address with
    at least one write? *)
val footprints_conflict : (int * bool) list -> (int * bool) list -> bool

(** {1 Profiling stream (driver side)} *)

(** Enable/disable causal-profile recording.  Off by default; switch on
    right after {!create}, before any thread runs. *)
val set_profiling : t -> bool -> unit

val profiling : t -> bool

(** Recorded profile events in [pr_seq] order (empty unless profiling). *)
val prof_events : t -> prof_event list

val prof_event_count : t -> int

(** {1 Timers (driver side)}

    Drivers call {!fire_due_timers} between steps; when nothing is
    runnable but timers remain, {!advance_to_next_timer} jumps the clock
    to the earliest deadline (discrete-event idle time).  With no timers
    armed both are no-ops, so timer-free runs are unchanged. *)

val timers_pending : t -> bool

(** Earliest armed deadline, in cycles. *)
val next_timer : t -> int option

(** Fire every timer whose deadline has passed: wake the victim (honouring
    the wakeup-waiting switch) and set its fired flag. *)
val fire_due_timers : t -> unit

(** If any timer is armed: advance the clock to the earliest deadline,
    fire it, and return [true]. *)
val advance_to_next_timer : t -> bool

(** {1 Fault injection (driver side)} *)

(** Install (or remove) the wakeup-interrupt filter. *)
val set_wake_filter : t -> (Threads_util.Tid.t -> wake_verdict) option -> unit

(** Are any delayed wakeups still undelivered? *)
val delayed_pending : t -> bool

(** Earliest due-cycle among undelivered delayed wakeups. *)
val next_delayed : t -> int option

(** Deliver every delayed wakeup whose due-cycle has passed.  A wakeup
    whose target has moved on (its wake episode ended via a timer or
    another wake) is stale and is discarded — recorded, never delivered,
    so it cannot spuriously wake an unrelated block. *)
val flush_delayed : t -> unit

(** Jump the clock forward (for delivering delayed wakeups at idle). *)
val advance_clock : t -> to_:int -> unit

(** [kill m t ~reason] crash-stops thread [t]: it fails with
    {!Crash_stopped} {e without unwinding} — finalizers do not run, held
    locks stay held — exactly a processor dying mid-critical-section.
    Joiners are woken; subsequent wakeups of [t] are discarded (and
    recorded) rather than being simulation errors. *)
val kill : t -> Threads_util.Tid.t -> reason:string -> unit

val was_killed : t -> Threads_util.Tid.t -> bool

(** Gate for {!Probe.chaos_active}; set by fault-injection drivers. *)
val set_chaos_active : t -> bool -> unit

(** Driver-side fault record (the injector-thread equivalent is
    {!Probe.inject_fault}): appends to {!faults} and bumps the
    [chaos.faults] counter. *)
val record_fault : t -> string -> unit

(** Package-registered injection entry points, in registration order. *)
val chaos_hooks : t -> (string * (int -> unit)) list

(** The fault log, in injection order. *)
val faults : t -> fault list

val fault_count : t -> int

(** Current holder of lock/object [id], per
    {!Probe.lock_acquired}/{!Probe.lock_released} bookkeeping. *)
val owner_of : t -> int -> Threads_util.Tid.t option

(** Classification of word [a], if registered ([None] = ordinary data). *)
val word_kind : t -> int -> word_kind option

(** Registered name of word [a], or ["word@a"]. *)
val word_name : t -> int -> string

(** Name of lock [id]: from {!Probe.register_lock}, else the word registry,
    else ["lock#id"]. *)
val lock_name : t -> int -> string

(** All registered words [(addr, kind, name)], sorted by address. *)
val registered_words : t -> (int * word_kind * string) list
