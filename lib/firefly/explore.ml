module Tid = Threads_util.Tid

type outcome = {
  verdict : Interleave.verdict;
  machine : Machine.t;
  schedule : Tid.t list;
}

type stats = {
  terminal_runs : int;
  truncated_runs : int;
  total_steps : int;
}

(* Run [build] following [prefix]; afterwards keep stepping while the
   choice is forced (a single runnable thread).  Returns the machine, the
   full schedule actually taken, and either the terminal verdict or the
   enabled set at the first real branch point. *)
let run_prefix ~max_depth ~build prefix =
  let m = Machine.create () in
  build m;
  let taken = ref [] in
  let steps = ref 0 in
  let do_step tid =
    taken := tid :: !taken;
    incr steps;
    ignore (Machine.step m tid)
  in
  List.iter
    (fun tid ->
      match Machine.status m tid with
      | Machine.Runnable -> do_step tid
      | _ -> failwith "Explore: stale replay prefix")
    prefix;
  let rec drive () =
    if !steps >= max_depth then `Truncated
    else
      match Machine.runnable m with
      | [] ->
        if Machine.live m then
          `Terminal
            (Interleave.Deadlock
               (List.filter
                  (fun tid -> Machine.status m tid = Machine.Blocked)
                  (Machine.all_tids m)))
        else `Terminal Interleave.Completed
      | [ only ] ->
        do_step only;
        drive ()
      | several -> `Branch several
  in
  let res = drive () in
  (m, List.rev !taken, res, !steps)

let explore ?(max_depth = 4000) ?(max_runs = 200_000) ~build check =
  let terminal = ref 0 and truncated = ref 0 and steps = ref 0 in
  let error = ref None in
  (* DFS over schedule prefixes.  Each stack entry is a prefix to expand. *)
  let stack = ref [ [] ] in
  let runs = ref 0 in
  while !error = None && !stack <> [] && !runs < max_runs do
    match !stack with
    | [] -> ()
    | prefix :: rest ->
      stack := rest;
      incr runs;
      let m, schedule, res, nsteps = run_prefix ~max_depth ~build prefix in
      steps := !steps + nsteps;
      (match res with
      | `Terminal verdict ->
        incr terminal;
        error := check { verdict; machine = m; schedule }
      | `Truncated ->
        incr truncated;
        error := check { verdict = Interleave.Step_limit; machine = m; schedule }
      | `Branch enabled ->
        (* Expand: one new prefix per enabled thread.  [schedule] already
           includes the forced steps taken after the prefix. *)
        let children = List.map (fun tid -> schedule @ [ tid ]) enabled in
        stack := List.rev children @ !stack)
  done;
  ( !error,
    { terminal_runs = !terminal; truncated_runs = !truncated;
      total_steps = !steps } )

(* Like [explore], but never stops early: collects the set of distinct
   violation strings over the whole tree, for comparison against the
   DPOR traversal.  The extra boolean is false iff the [max_runs] budget
   ran out before the tree was exhausted. *)
let explore_all ?(max_depth = 4000) ?(max_runs = 200_000) ~build check =
  let terminal = ref 0 and truncated = ref 0 and steps = ref 0 in
  let violations = ref [] in
  let record = function
    | Some v -> if not (List.mem v !violations) then violations := v :: !violations
    | None -> ()
  in
  let stack = ref [ [] ] in
  let runs = ref 0 in
  while !stack <> [] && !runs < max_runs do
    match !stack with
    | [] -> ()
    | prefix :: rest ->
      stack := rest;
      incr runs;
      let m, schedule, res, nsteps = run_prefix ~max_depth ~build prefix in
      steps := !steps + nsteps;
      (match res with
      | `Terminal verdict ->
        incr terminal;
        record (check { verdict; machine = m; schedule })
      | `Truncated ->
        incr truncated;
        record (check { verdict = Interleave.Step_limit; machine = m; schedule })
      | `Branch enabled ->
        let children = List.map (fun tid -> schedule @ [ tid ]) enabled in
        stack := List.rev children @ !stack)
  done;
  ( List.sort_uniq String.compare !violations,
    { terminal_runs = !terminal; truncated_runs = !truncated;
      total_steps = !steps },
    !stack = [] )

(* ---- dynamic partial-order reduction (sleep sets + backtrack sets) ----

   Flanagan & Godefroid's DPOR, replay-based.  The machine records a
   footprint (list of (address, is-write)) for every step; two steps of
   different threads are dependent iff their footprints conflict
   ([Machine.footprints_conflict]).  Scheduling causality is part of the
   footprint via pseudo-addresses (every step reads its own scheduler
   slot; wake/spawn/finish write the target's), and host-level package
   state is declared with [Machine.Probe.touch], so the dependence
   relation is sound for the cooperative packages too.

   The exploration tree is kept as a persistent path of nodes; after each
   maximal execution a race analysis walks the path and seeds backtrack
   points, and sleep sets prune branches whose first step commutes with
   everything an already-explored sibling did.  Unlike [explore], the
   search never stops at the first error: it collects the set of distinct
   violation strings, so two runs that explore the space in different
   orders (or split it across domains) report identical results. *)

type dpor_stats = {
  executions : int;  (** maximal (terminal or truncated) replays run *)
  sleep_blocked : int;  (** branches pruned by sleep sets *)
  dpor_truncated : int;  (** executions cut off by the depth bound *)
  dpor_steps : int;  (** instructions executed across all replays *)
  peak_depth : int;  (** deepest exploration path reached *)
  complete : bool;  (** false iff the [max_runs] budget was exhausted *)
}

let dpor_stats_zero =
  { executions = 0; sleep_blocked = 0; dpor_truncated = 0; dpor_steps = 0;
    peak_depth = 0; complete = true }

let dpor_stats_add a b =
  {
    executions = a.executions + b.executions;
    sleep_blocked = a.sleep_blocked + b.sleep_blocked;
    dpor_truncated = a.dpor_truncated + b.dpor_truncated;
    dpor_steps = a.dpor_steps + b.dpor_steps;
    peak_depth = max a.peak_depth b.peak_depth;
    complete = a.complete && b.complete;
  }

type dnode = {
  d_enabled : Tid.t list;  (* enabled in the pre-state of this step *)
  mutable d_chosen : Tid.t;  (* branch currently being explored *)
  mutable d_fp : (int * bool) list;  (* footprint of the chosen step *)
  mutable d_tried : (Tid.t * (int * bool) list) list;
      (* footprint of each child step taken from this node, cached so
         completed siblings can enter the sleep set on later branches;
         a pending step's footprint is a function of the pre-state,
         which replays identically, so the cache stays valid *)
  mutable d_backtrack : Tid.Set.t;
  mutable d_done : Tid.Set.t;  (* children whose subtrees are explored *)
  d_sleep : (Tid.t * (int * bool) list) list;  (* sleep set on entry *)
}

let explore_dpor ?(max_depth = 4000) ?(max_runs = 1_000_000)
    ?(prefix = []) ?progress ~build check =
  let frozen = List.length prefix in
  let prefix = Array.of_list prefix in
  (* Deepest node first; the path persists across replays. *)
  let path : dnode list ref = ref [] in
  let plen = ref 0 in
  let violations = ref [] in
  let executions = ref 0 and sleep_blocked = ref 0 in
  let truncated = ref 0 and steps = ref 0 in
  let peak = ref 0 in
  let record = function
    | Some v -> if not (List.mem v !violations) then violations := v :: !violations
    | None -> ()
  in
  let schedule () = List.rev_map (fun nd -> nd.d_chosen) !path in
  let indep_against fp entries =
    List.filter
      (fun (_, f) -> not (Machine.footprints_conflict f fp))
      entries
  in
  (* Sleep set entering the branch below [nd], given the sleep set on
     entry to [nd]: inherited sleepers plus fully-explored siblings
     (their cached footprints come from [d_tried]), minus any whose step
     conflicts with the step just taken. *)
  let sleep_below nd sleep_in =
    let slept =
      Tid.Set.fold
        (fun t acc ->
          if t = nd.d_chosen || List.mem_assoc t acc then acc
          else
            match List.assoc_opt t nd.d_tried with
            | Some f -> (t, f) :: acc
            | None -> acc)
        nd.d_done sleep_in
    in
    indep_against nd.d_fp slept
  in
  (* One maximal execution: replay the persistent path from the root,
     then extend by always taking the first enabled thread not in the
     sleep set, creating fresh nodes as we go. *)
  let run_one () =
    incr executions;
    let m = Machine.create () in
    build m;
    Machine.set_footprints m true;
    let sleep = ref [] in
    let replay nd =
      ignore (Machine.step m nd.d_chosen);
      incr steps;
      nd.d_fp <- Machine.last_footprint m;
      if not (List.mem_assoc nd.d_chosen nd.d_tried) then
        nd.d_tried <- (nd.d_chosen, nd.d_fp) :: nd.d_tried;
      sleep := sleep_below nd !sleep
    in
    List.iter replay (List.rev !path);
    let push nd =
      path := nd :: !path;
      incr plen
    in
    let rec extend () =
      if !plen >= max_depth then begin
        incr truncated;
        record
          (check
             { verdict = Interleave.Step_limit; machine = m;
               schedule = schedule () })
      end
      else
        match Machine.runnable m with
        | [] ->
          let verdict =
            if Machine.live m then
              Interleave.Deadlock
                (List.filter
                   (fun tid -> Machine.status m tid = Machine.Blocked)
                   (Machine.all_tids m))
            else Interleave.Completed
          in
          record (check { verdict; machine = m; schedule = schedule () })
        | enabled -> (
          let forced =
            if !plen < frozen then Some prefix.(!plen) else None
          in
          let choice =
            match forced with
            | Some c ->
              if not (List.mem c enabled) then
                failwith "Explore: stale DPOR prefix";
              Some c
            | None ->
              List.find_opt
                (fun t -> not (List.mem_assoc t !sleep))
                enabled
          in
          match choice with
          | None ->
            (* Every enabled thread is asleep: any continuation is
               equivalent to an execution already explored. *)
            incr sleep_blocked
          | Some c ->
            let nd =
              {
                d_enabled = enabled;
                d_chosen = c;
                d_fp = [];
                d_tried = [];
                d_backtrack = Tid.Set.singleton c;
                d_done = Tid.Set.empty;
                d_sleep = !sleep;
              }
            in
            push nd;
            ignore (Machine.step m c);
            incr steps;
            nd.d_fp <- Machine.last_footprint m;
            nd.d_tried <- [ (c, nd.d_fp) ];
            sleep := sleep_below nd !sleep;
            extend ())
    in
    extend ()
  in
  (* Race analysis: for every executed step, find the most recent earlier
     step it depends on; if that step belongs to another thread, record
     the later thread as a backtrack candidate at the earlier node (or,
     if it was not yet enabled there, conservatively every enabled
     thread).  Frozen prefix nodes never accumulate backtrack points —
     the caller enumerates all alternatives at those depths itself. *)
  let analyze () =
    let arr = Array.of_list (List.rev !path) in
    let n = Array.length arr in
    for i = 0 to n - 1 do
      let p = arr.(i).d_chosen and fpi = arr.(i).d_fp in
      let rec scan j =
        if j >= 0 then begin
          let nj = arr.(j) in
          if Machine.footprints_conflict nj.d_fp fpi then begin
            if nj.d_chosen <> p && j >= frozen then
              if List.mem p nj.d_enabled then
                nj.d_backtrack <- Tid.Set.add p nj.d_backtrack
              else
                nj.d_backtrack <-
                  Tid.Set.union nj.d_backtrack
                    (Tid.Set.of_int_list nj.d_enabled)
            (* Dependent step found (own or foreign): stop — older races
               are reached transitively through this step's own analysis. *)
          end
          else scan (j - 1)
        end
      in
      scan (i - 1)
    done
  in
  (* Pop to the deepest node with an unexplored backtrack candidate;
     candidates already in the node's sleep set are pruned outright. *)
  let rec backtrack () =
    match !path with
    | [] -> false
    | nd :: rest ->
      nd.d_done <- Tid.Set.add nd.d_chosen nd.d_done;
      let rec pick () =
        match Tid.Set.min_elt_opt (Tid.Set.diff nd.d_backtrack nd.d_done) with
        | None -> None
        | Some c ->
          if List.mem_assoc c nd.d_sleep then begin
            incr sleep_blocked;
            nd.d_done <- Tid.Set.add c nd.d_done;
            pick ()
          end
          else Some c
      in
      (match pick () with
      | Some c ->
        nd.d_chosen <- c;
        nd.d_fp <- [];
        true
      | None ->
        path := rest;
        decr plen;
        backtrack ())
  in
  let budget_ok = ref true in
  let continue_ = ref true in
  while !continue_ do
    if !executions >= max_runs then begin
      budget_ok := false;
      continue_ := false
    end
    else begin
      run_one ();
      if !plen > !peak then peak := !plen;
      (* Host-side observation only: the snapshot is advisory (the
         caller throttles/renders it) and feeds nothing back into the
         search, so instrumented explorations are schedule-identical. *)
      (match progress with
      | Some cb ->
        cb
          { executions = !executions; sleep_blocked = !sleep_blocked;
            dpor_truncated = !truncated; dpor_steps = !steps;
            peak_depth = !peak; complete = true }
      | None -> ());
      analyze ();
      continue_ := backtrack ()
    end
  done;
  ( List.sort_uniq String.compare !violations,
    { executions = !executions; sleep_blocked = !sleep_blocked;
      dpor_truncated = !truncated; dpor_steps = !steps;
      peak_depth = !peak; complete = !budget_ok } )

(* ---- prefix-parallel frontier splitting ----

   Enumerate every schedule prefix down to [split_branches] branch points
   (exhaustively — no pruning, so nothing is lost at the frontier), then
   run an independent DPOR instance under each frozen prefix.  Backtrack
   points that race analysis would place inside a frozen prefix are
   dropped: the enumeration already covers every alternative there, so
   the union over prefixes still covers every Mazurkiewicz trace.  The
   split is performed regardless of [jobs], so reported violations and
   statistics are identical for any worker count; [jobs] only chooses how
   many domains execute the per-prefix searches. *)

let explore_dpor_parallel ?(max_depth = 4000) ?(max_runs = 1_000_000)
    ?(split_branches = 2) ?(jobs = 1) ?progress ?telemetry ~build check =
  let pre_violations = ref [] in
  let pre = ref dpor_stats_zero in
  let record = function
    | Some v ->
      if not (List.mem v !pre_violations) then
        pre_violations := v :: !pre_violations
    | None -> ()
  in
  let frontier = ref [ [] ] in
  for _ = 1 to split_branches do
    frontier :=
      List.concat_map
        (fun p ->
          let m, schedule, res, nsteps = run_prefix ~max_depth ~build p in
          pre := { !pre with dpor_steps = !pre.dpor_steps + nsteps };
          match res with
          | `Branch enabled ->
            List.map (fun tid -> schedule @ [ tid ]) enabled
          | `Terminal verdict ->
            (* The whole program ends before the split depth: check it
               here, once; there is no subtree to hand to a worker. *)
            pre := { !pre with executions = !pre.executions + 1 };
            record (check { verdict; machine = m; schedule });
            []
          | `Truncated ->
            pre :=
              { !pre with executions = !pre.executions + 1;
                dpor_truncated = !pre.dpor_truncated + 1 };
            record
              (check
                 { verdict = Interleave.Step_limit; machine = m; schedule });
            [])
        !frontier
  done;
  let prefixes = Array.of_list !frontier in
  let pre_stats_base = !pre in
  (* Aggregate progress across the per-prefix searches: each search
     reports cumulative counters for its own subtree, so every cell
     keeps a last-seen snapshot and publishes only the delta into the
     shared atomics before invoking the caller's callback with the
     fleet-wide view.  Purely observational — the counters never feed
     back into any search. *)
  let agg_exec = Atomic.make pre_stats_base.executions
  and agg_sleep = Atomic.make pre_stats_base.sleep_blocked
  and agg_steps = Atomic.make pre_stats_base.dpor_steps
  and agg_peak = Atomic.make 0 in
  let rec atomic_max a v =
    let cur = Atomic.get a in
    if v > cur && not (Atomic.compare_and_set a cur v) then atomic_max a v
  in
  let progress_for () =
    match progress with
    | None -> None
    | Some cb ->
      let prev = ref dpor_stats_zero in
      Some
        (fun (st : dpor_stats) ->
          let de = st.executions - !prev.executions
          and ds = st.sleep_blocked - !prev.sleep_blocked
          and dp = st.dpor_steps - !prev.dpor_steps in
          prev := st;
          let e = Atomic.fetch_and_add agg_exec de + de in
          let s = Atomic.fetch_and_add agg_sleep ds + ds in
          let p = Atomic.fetch_and_add agg_steps dp + dp in
          atomic_max agg_peak st.peak_depth;
          cb
            { executions = e; sleep_blocked = s; dpor_truncated = 0;
              dpor_steps = p; peak_depth = Atomic.get agg_peak;
              complete = true })
  in
  let results =
    Threads_runner.Matrix.map ?telemetry ~jobs ~n:(Array.length prefixes)
      (fun i ->
        explore_dpor ~max_depth ~max_runs ~prefix:prefixes.(i)
          ?progress:(progress_for ()) ~build check)
  in
  let violations, stats =
    Array.fold_left
      (fun (vs, st) (v, s) -> (List.rev_append v vs, dpor_stats_add st s))
      (!pre_violations, !pre) results
  in
  (List.sort_uniq String.compare violations, stats)

(* ---- delay-bounded (CHESS-style) search ----

   The baseline scheduler is non-preemptive: the current thread runs until
   it blocks or finishes; at such natural switch points every enabled
   thread is a (free) choice.  Additionally up to [max_preemptions]
   involuntary switches may be inserted anywhere.  Musuvathi & Qadeer's
   observation holds here too: most concurrency bugs need only one or two
   preemptions, so the polynomially-sized bounded space finds them where
   plain DFS/BFS over all interleavings drowns. *)

(* Replay [prefix] (a list of chosen tids, one per choice point), then
   report the next choice point or the terminal verdict. *)
let run_prefix_bounded ~max_depth ~max_preemptions ~build prefix =
  let m = Machine.create () in
  build m;
  let steps = ref 0 in
  let budget = ref max_preemptions in
  let current = ref None in
  let remaining = ref prefix in
  let consumed = ref [] in
  let do_step tid =
    incr steps;
    current := Some tid;
    ignore (Machine.step m tid)
  in
  let rec drive () =
    if !steps >= max_depth then `Truncated
    else
      match Machine.runnable m with
      | [] ->
        if Machine.live m then
          `Terminal
            (Interleave.Deadlock
               (List.filter
                  (fun tid -> Machine.status m tid = Machine.Blocked)
                  (Machine.all_tids m)))
        else `Terminal Interleave.Completed
      | enabled -> (
        let cur_enabled =
          match !current with
          | Some t when List.mem t enabled -> Some t
          | _ -> None
        in
        let candidates =
          match cur_enabled with
          | Some t when !budget <= 0 -> [ t ]
          | Some t -> t :: List.filter (fun x -> x <> t) enabled
          | None -> enabled
        in
        match candidates with
        | [ only ] ->
          do_step only;
          drive ()
        | _ -> (
          match !remaining with
          | choice :: rest ->
            remaining := rest;
            consumed := choice :: !consumed;
            if not (List.mem choice candidates) then
              failwith "Explore: stale bounded replay prefix";
            (match cur_enabled with
            | Some t when choice <> t -> decr budget
            | _ -> ());
            do_step choice;
            drive ()
          | [] -> `Choice candidates))
  in
  let res = drive () in
  (m, List.rev !consumed, res, !steps)

let explore_bounded ?(max_preemptions = 2) ?(max_depth = 4000)
    ?(max_runs = 200_000) ~build check =
  let terminal = ref 0 and truncated = ref 0 and steps = ref 0 in
  let error = ref None in
  let stack = ref [ [] ] in
  let runs = ref 0 in
  while !error = None && !stack <> [] && !runs < max_runs do
    match !stack with
    | [] -> ()
    | prefix :: rest ->
      stack := rest;
      incr runs;
      let m, choices, res, nsteps =
        run_prefix_bounded ~max_depth ~max_preemptions ~build prefix
      in
      steps := !steps + nsteps;
      (match res with
      | `Terminal verdict ->
        incr terminal;
        error := check { verdict; machine = m; schedule = choices }
      | `Truncated ->
        incr truncated;
        error :=
          check { verdict = Interleave.Step_limit; machine = m;
                  schedule = choices }
      | `Choice candidates ->
        let children = List.map (fun tid -> choices @ [ tid ]) candidates in
        stack := children @ !stack)
  done;
  ( !error,
    { terminal_runs = !terminal; truncated_runs = !truncated;
      total_steps = !steps } )
