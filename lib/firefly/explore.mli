(** Exhaustive schedule exploration by replay.

    Continuations are one-shot, so the machine cannot be forked; instead
    the program is re-run from scratch under each schedule prefix (the
    standard replay technique of systematic concurrency testers).  The
    state space is a tree of scheduling choices; [explore] walks it depth
    first up to a depth bound.

    Complexity is exponential in program length — use it on the small
    scenarios of the model-checking experiments (2-4 threads, a handful of
    synchronization operations each). *)

type outcome = {
  verdict : Interleave.verdict;
  machine : Machine.t;
  schedule : Threads_util.Tid.t list;  (** the choices that produced it *)
}

type stats = {
  terminal_runs : int;  (** schedules explored to completion/deadlock *)
  truncated_runs : int;  (** schedules cut off by the depth bound *)
  total_steps : int;  (** instructions executed across all replays *)
}

(** [explore ?max_depth ?max_runs ~build check] re-runs [build] under
    every schedule (up to the bounds), calling [check outcome] on each
    terminal or truncated run.  If [check] returns [Some err] exploration
    stops early and the error is returned with the stats.

    Choice points with a single enabled thread do not branch. *)
val explore :
  ?max_depth:int ->
  ?max_runs:int ->
  build:(Machine.t -> unit) ->
  (outcome -> string option) ->
  (string option * stats)

(** [explore_all] is {!explore} without the early stop: it traverses the
    whole tree and returns the sorted set of distinct violation strings,
    plus [false] iff the [max_runs] budget was exhausted first.  This is
    the reference answer DPOR is compared against. *)
val explore_all :
  ?max_depth:int ->
  ?max_runs:int ->
  build:(Machine.t -> unit) ->
  (outcome -> string option) ->
  string list * stats * bool

(** Statistics of a {!explore_dpor} search. *)
type dpor_stats = {
  executions : int;  (** maximal (terminal or truncated) replays run *)
  sleep_blocked : int;  (** branches pruned by sleep sets *)
  dpor_truncated : int;  (** executions cut off by the depth bound *)
  dpor_steps : int;  (** instructions executed across all replays *)
  peak_depth : int;  (** deepest exploration path reached (deterministic) *)
  complete : bool;  (** false iff the [max_runs] budget was exhausted *)
}

val dpor_stats_zero : dpor_stats
val dpor_stats_add : dpor_stats -> dpor_stats -> dpor_stats

(** [explore_dpor ?max_depth ?max_runs ?prefix ~build check] — dynamic
    partial-order reduction (Flanagan & Godefroid) with sleep sets.
    Dependence between steps is computed from the machine's recorded
    footprints ({!Machine.set_footprints}), which cover memory words,
    scheduling causality and [Probe.touch]-declared package state, so
    pruned interleavings are genuinely equivalent to explored ones.

    Unlike {!explore} the search runs to completion and returns the
    {e set} of distinct violation strings produced by [check] (sorted,
    deduplicated) — identical however the space is traversed or split.
    [check] should therefore return a canonical description free of
    schedule-dependent detail.  [prefix] freezes the first steps of every
    execution (used by {!explore_dpor_parallel}); backtrack points inside
    the frozen region are discarded.

    [?progress] is a host-side observation hook called after every
    maximal execution with the cumulative statistics so far (including
    the peak path depth).  It feeds nothing back into the search —
    instrumented explorations are schedule-identical — and the caller
    is expected to throttle it (see [Threads_telemetry.Progress]). *)
val explore_dpor :
  ?max_depth:int ->
  ?max_runs:int ->
  ?prefix:Threads_util.Tid.t list ->
  ?progress:(dpor_stats -> unit) ->
  build:(Machine.t -> unit) ->
  (outcome -> string option) ->
  string list * dpor_stats

(** [explore_dpor_parallel ?split_branches ?jobs ...] splits the schedule
    tree exhaustively at the first [split_branches] branch points (default
    2) and runs an independent {!explore_dpor} under each frozen prefix,
    distributed over [jobs] domains by the work-stealing run-matrix
    executor.  The split happens regardless of [jobs], so the returned
    violation set and statistics are byte-identical for any worker count.
    Each per-prefix search gets its own [max_runs] budget.

    [?progress] receives advisory fleet-wide cumulative counters
    (aggregated across the concurrent per-prefix searches; the
    [dpor_truncated] field of snapshots is not aggregated and reads 0).
    [?telemetry] attaches a {!Threads_runner.Telemetry.sink} to the
    prefix matrix.  Neither affects the returned results. *)
val explore_dpor_parallel :
  ?max_depth:int ->
  ?max_runs:int ->
  ?split_branches:int ->
  ?jobs:int ->
  ?progress:(dpor_stats -> unit) ->
  ?telemetry:Threads_runner.Telemetry.sink ->
  build:(Machine.t -> unit) ->
  (outcome -> string option) ->
  string list * dpor_stats

(** [explore_bounded ?max_preemptions ...] — delay-bounded systematic
    search in the style of CHESS (Musuvathi & Qadeer): the baseline
    scheduler is non-preemptive (a thread runs until it blocks), switching
    freely only at natural blocking points, plus at most [max_preemptions]
    involuntary switches anywhere.  Most synchronization bugs need one or
    two preemptions, so this polynomial space finds them where exhaustive
    interleaving search drowns; it is the engine behind experiment E5's
    minimal stranding schedule.  In [outcome], [schedule] holds only the
    choice-point decisions, not every step. *)
val explore_bounded :
  ?max_preemptions:int ->
  ?max_depth:int ->
  ?max_runs:int ->
  build:(Machine.t -> unit) ->
  (outcome -> string option) ->
  (string option * stats)
