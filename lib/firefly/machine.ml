module Tid = Threads_util.Tid
module Trace = Spec_trace

type status = Runnable | Blocked | Finished | Failed of exn

(* An interrupt routine tried to block (join or deschedule): its own
   exception, so fault plans that storm the interrupt level produce an
   actionable diagnostic rather than a bare [Failure]. *)
exception Interrupt_blocked of string

(* Status exception of a thread removed by [kill] (injected crash-stop). *)
exception Crash_stopped

let () =
  Printexc.register_printer (function
    | Interrupt_blocked what ->
      Some
        (Printf.sprintf
           "Interrupt_blocked(%s): interrupt routines cannot block — they \
            may only use non-blocking operations such as V"
           what)
    | Crash_stopped -> Some "Crash_stopped (injected processor crash-stop)"
    | _ -> None)

(* ---- fault injection (lib/fault) ----

   The chaos engine installs a wake filter that intercepts every
   package-level wakeup interrupt ([Ops.ready]) and may delay or drop it;
   it can also crash-stop a thread mid-run ([kill]).  Every injected fault
   is appended to the machine's cycle-stamped fault log so post-mortem
   reports can attribute blame.  With no filter installed and no timers
   armed, none of this code runs — an uninjected machine is cycle- and
   schedule-identical to one built before this layer existed. *)

type wake_verdict = Deliver | Delay of int | Drop

type fault = { f_seq : int; f_cycle : int; f_desc : string }

(* ---- low-level access stream (dynamic analysis) ----

   When recording is on, every shared-memory instruction — and every
   package-level lock acquisition reported through the probes — appends
   one [access] stamped with the issuing thread and the set of locks that
   thread held at that instant.  Recording is host-side bookkeeping only:
   it charges no cycles, adds no scheduling points and consumes no
   randomness, so a recorded run is cycle- and schedule-identical to an
   unrecorded one (the same guarantee as the Obs probes). *)

type word_kind =
  | W_lock  (** TAS/clear mutual-exclusion word: spin-locks, mutex Lock-bits *)
  | W_sem  (** semaphore availability bit: V's clear releases to P's TAS *)
  | W_eventcount  (** monotone counter: advance releases to readers *)
  | W_atomic  (** deliberately unsynchronized single word (benign by design) *)
  | W_data  (** named ordinary data word; unregistered words are also data *)

type access_kind =
  | A_load
  | A_store
  | A_tas of bool  (** [true] = won the word (old value was 0) *)
  | A_clear
  | A_faa
  | A_lock_acq  (** package-level lock acquisition (addr = lock id) *)
  | A_lock_att  (** blocked/contended acquisition attempt *)
  | A_lock_rel
  | A_spawn of Tid.t
  | A_join of Tid.t

type access = {
  a_seq : int;
  a_tid : Tid.t;
  a_addr : int;  (** word address or lock id; [-1] for spawn/join *)
  a_kind : access_kind;
  a_locks : int list;  (** lock ids held (for [A_lock_acq]: before acquiring) *)
}

(* ---- causal profiling stream (lib/profile) ----

   When profiling is on, the machine appends one [prof_event] per causal
   edge: merged run segments (cycles a thread actually consumed), block
   edges annotated with the object waited on and its owner at that
   instant, wake edges annotated with the waker and the object handed
   off, spawn/finish lifecycle points, and wakeup-waiting arms.  Like the
   access stream this is host-side bookkeeping only: no cycles, no
   scheduling points, no randomness — a profiled run is cycle- and
   schedule-identical to an unprofiled one. *)

type wait_target =
  | On_obj of int  (** mutex / condition / semaphore id *)
  | On_thread of Tid.t  (** join *)
  | On_unknown  (** deschedule with no package annotation *)

type prof_kind =
  | Pr_run of int  (** merged run segment [pr_t, arg] of charged cycles *)
  | Pr_spawn of Tid.t  (** [pr_tid] spawned the child *)
  | Pr_block of wait_target * Tid.t option  (** what, owner at block *)
  | Pr_wake of Tid.t option * int option  (** waker, object handed off *)
  | Pr_wake_pending of Tid.t option * int option
      (** wakeup-waiting arm: the target was still runnable *)
  | Pr_finish

type prof_event = {
  pr_seq : int;
  pr_t : int;  (** cycle timestamp (segment start for [Pr_run]) *)
  pr_tid : Tid.t;  (** subject thread (the woken one for wake edges) *)
  pr_kind : prof_kind;
}

(* A memory operation bundled with trace emission; see Ops.mem_emit. *)
type mem_op =
  | M_none
  | M_read of int
  | M_tas of int
  | M_clear of int
  | M_faa of int * int

type _ Effect.t +=
  | E_read : int -> int Effect.t
  | E_write : int * int -> unit Effect.t
  | E_tas : int -> bool Effect.t
  | E_clear : int -> unit Effect.t
  | E_faa : int * int -> int Effect.t
  | E_alloc : int -> int Effect.t
  | E_self : Tid.t Effect.t
  | E_spawn : (unit -> unit) * int option -> Tid.t Effect.t
  | E_join : Tid.t -> unit Effect.t
  | E_deschedule_and_clear : int -> unit Effect.t
  | E_ready : Tid.t -> unit Effect.t
  | E_emit : Trace.event -> unit Effect.t
  | E_tick : int -> unit Effect.t
  | E_counter : string -> unit Effect.t
  | E_rand : int -> int Effect.t
  | E_set_priority : int -> unit Effect.t
  | E_yield : unit Effect.t
  | E_mem_emit : mem_op * (int -> Trace.event option) -> int Effect.t

module Ops = struct
  let read a = Effect.perform (E_read a)
  let write a v = Effect.perform (E_write (a, v))
  let tas a = Effect.perform (E_tas a)
  let clear a = Effect.perform (E_clear a)
  let faa a n = Effect.perform (E_faa (a, n))
  let alloc n = Effect.perform (E_alloc n)
  let self () = Effect.perform E_self
  let spawn ?priority f = Effect.perform (E_spawn (f, priority))
  let join t = Effect.perform (E_join t)
  let deschedule_and_clear a = Effect.perform (E_deschedule_and_clear a)
  let ready t = Effect.perform (E_ready t)
  let emit ev = Effect.perform (E_emit ev)
  let tick n = Effect.perform (E_tick n)
  let incr_counter name = Effect.perform (E_counter name)
  let rand n = Effect.perform (E_rand n)
  let set_priority p = Effect.perform (E_set_priority p)
  let yield () = Effect.perform E_yield
  let mem_emit op thunk = Effect.perform (E_mem_emit (op, thunk))
end

(* A paused thread: either not yet started, stopped at an effect awaiting
   its execution, or holding a unit continuation to resume (after a
   deschedule/join/yield). *)
type paused =
  | Fresh of (unit -> unit)
  | At_effect : 'a Effect.t * ('a, unit) Effect.Deep.continuation -> paused
  | Resume_unit of (unit, unit) Effect.Deep.continuation
  | Gone  (** finished or failed; no continuation *)

type thread = {
  tid : Tid.t;
  mutable status : status;
  mutable paused : paused;
  mutable prio : int;
  intr : bool;  (* interrupt context: must never block *)
  mutable wakeup_pending : bool;  (* Saltzer's wakeup-waiting switch *)
  mutable epoch : int;
      (* wake-episode counter, bumped at each delivered wake; a delayed
         wakeup captured in an earlier episode is stale and is discarded
         rather than spuriously waking a later block *)
  mutable instr : int;
  mutable cycles : int;
  mutable joiners : Tid.t list;
  mutable held : int list;  (* lock ids held, most recently acquired first *)
}

type t = {
  cost : Cost.t;
  rng : Threads_util.Rng.t;
  mutable mem : int array;
  mutable mem_used : int;
  mutable threads : thread array;  (* index = tid *)
  mutable nthreads : int;
  sink : Trace.Sink.t;  (* the backend-neutral linearization record *)
  counters : (string, int) Hashtbl.t;
  obs : Obs.Instrument.t;
  mutable total_instr : int;
  mutable total_cycles : int;
  mutable recording : bool;
  mutable accs : access list;  (* newest first; [accesses] reverses *)
  mutable acc_count : int;
  words : (int, word_kind * string) Hashtbl.t;  (* addr -> classification *)
  lock_names : (int, string) Hashtbl.t;  (* lock id -> name, for reports *)
  mutable profiling : bool;
  mutable prof : prof_event list;  (* newest first; [prof_events] reverses *)
  mutable prof_count : int;
  owners : (int, Tid.t) Hashtbl.t;  (* lock id -> current holder *)
  pending_block : (Tid.t, wait_target) Hashtbl.t;
      (* set by Probe.will_block, consumed at the next deschedule *)
  pending_wake : (Tid.t, int) Hashtbl.t;
      (* target -> object id, set by Probe.handoff, consumed at the wake *)
  timers : (Tid.t, int) Hashtbl.t;  (* armed deadline per thread (cycles) *)
  timer_fired : (Tid.t, unit) Hashtbl.t;
      (* set when a timer wake was delivered, consumed by the timed-out
         thread to distinguish expiry from a Signal/V wake *)
  mutable wake_filter : (Tid.t -> wake_verdict) option;
  mutable delayed : (int * int * Tid.t) list;
      (* (due cycle, epoch at interception, target), unsorted *)
  mutable chaos_hooks : (string * (int -> unit)) list;  (* newest first *)
  killed : (Tid.t, unit) Hashtbl.t;  (* crash-stopped by [kill] *)
  mutable chaos_active : bool;
  mutable faults : fault list;  (* newest first; [faults] reverses *)
  mutable fault_count : int;
  mutable neg_ids : int;
      (* per-machine negative trace-id allocator (Hoare condition ids):
         machine-local so runs on parallel domains stay byte-identical *)
  mutable track_footprint : bool;
  mutable footprint : (int * bool) list;
      (* (addr, is_write) pairs touched by the step in progress; newest
         first.  Pseudo-addresses encode scheduler state (see [fp_sched]);
         the DPOR explorer reads this as its dependence relation. *)
}

(* The machine whose thread is currently inside [step], with that thread's
   id.  Lets package code (and thunks running inside [mem_emit]) record
   observations as plain function calls — no effect performed, no
   scheduling point added, no cycle charged — which is what keeps an
   instrumented run cycle-identical to an uninstrumented one.  Each
   simulated machine is stepped by exactly one domain at a time, but the
   run-matrix executor steps many machines on parallel domains, so the
   ambient slot is domain-local state rather than a process global. *)
let current_key : (t * Tid.t) option Domain.DLS.key =
  Domain.DLS.new_key (fun () -> None)

let current () = Domain.DLS.get current_key
let set_current v = Domain.DLS.set current_key v

(* ---- step footprints (DPOR dependence stream) ----

   Pseudo-addresses for scheduler interactions, kept far below zero so
   they can never collide with real memory addresses (>= 0) or with the
   small negative trace ids in [neg_ids].  [fp_sched t] stands for the
   scheduler state of thread [t]: every step reads its own, and waking,
   spawning, finishing or joining a thread writes the target's — which is
   exactly the commutation structure the explorer needs (a wake does not
   commute with any step of the woken thread). *)

let fp_sched tid = -0x4000_0000 - tid
let fp_rng = -0x3000_0000
let fp_alloc = -0x3000_0001
let fp_spawn = -0x3000_0002

(* Host-state package objects (cooperative queues, monitor holders) get
   their own range so a [Probe.touch id] can never alias a machine word
   with the same integer id. *)
let fp_obj id = -0x2000_0000 - id

let fp m addr ~w =
  if m.track_footprint then m.footprint <- (addr, w) :: m.footprint

let dummy_thread =
  {
    tid = -1;
    status = Finished;
    paused = Gone;
    prio = 0;
    intr = false;
    wakeup_pending = false;
    epoch = 0;
    instr = 0;
    cycles = 0;
    joiners = [];
    held = [];
  }

let create ?(seed = 0) ?(cost = Cost.default) () =
  {
    cost;
    rng = Threads_util.Rng.create seed;
    mem = Array.make 1024 0;
    mem_used = 0;
    threads = Array.make 16 dummy_thread;
    nthreads = 0;
    sink = Trace.Sink.create ();
    counters = Hashtbl.create 16;
    obs = Obs.Instrument.create ();
    total_instr = 0;
    total_cycles = 0;
    recording = false;
    accs = [];
    acc_count = 0;
    words = Hashtbl.create 16;
    lock_names = Hashtbl.create 16;
    profiling = false;
    prof = [];
    prof_count = 0;
    owners = Hashtbl.create 16;
    pending_block = Hashtbl.create 8;
    pending_wake = Hashtbl.create 8;
    timers = Hashtbl.create 8;
    timer_fired = Hashtbl.create 8;
    wake_filter = None;
    delayed = [];
    chaos_hooks = [];
    killed = Hashtbl.create 4;
    chaos_active = false;
    faults = [];
    fault_count = 0;
    neg_ids = 0;
    track_footprint = false;
    footprint = [];
  }

let thread m tid =
  if tid < 0 || tid >= m.nthreads then
    failwith (Printf.sprintf "Machine: unknown thread t%d" tid);
  m.threads.(tid)

let add_thread m ?(priority = 0) ?(interrupt = false) f =
  let tid = m.nthreads in
  if tid >= Array.length m.threads then begin
    let bigger = Array.make (2 * Array.length m.threads) dummy_thread in
    Array.blit m.threads 0 bigger 0 m.nthreads;
    m.threads <- bigger
  end;
  m.threads.(tid) <-
    {
      tid;
      status = Runnable;
      paused = Fresh f;
      prio = priority;
      intr = interrupt;
      wakeup_pending = false;
      epoch = 0;
      instr = 0;
      cycles = 0;
      joiners = [];
      held = [];
    };
  m.nthreads <- tid + 1;
  tid

let spawn_root ?priority ?interrupt m f = add_thread m ?priority ?interrupt f

(* Raise an interrupt from inside running thread code: the ambient
   machine is the one executing the calling thread on this domain.  The
   handler runs as a fresh interrupt-context thread — it may post (V) a
   semaphore but any attempt to block fails it, exactly the paper's
   device-interrupt discipline. *)
let spawn_interrupt f =
  match current () with
  | Some (m, _) -> add_thread m ~interrupt:true f
  | None ->
    failwith "Machine.spawn_interrupt: no machine is running on this domain"

let is_interrupt m tid = (thread m tid).intr

let status m tid = (thread m tid).status
let priority m tid = (thread m tid).prio

let runnable m =
  let rec go i acc =
    if i < 0 then acc
    else
      go (i - 1)
        (if m.threads.(i).status = Runnable then i :: acc else acc)
  in
  go (m.nthreads - 1) []

let live m =
  let rec go i =
    i < m.nthreads
    &&
    match m.threads.(i).status with
    | Runnable | Blocked -> true
    | Finished | Failed _ -> go (i + 1)
  in
  go 0

let deadlocked m = live m && runnable m = []

let alloc m n =
  let base = m.mem_used in
  if base + n > Array.length m.mem then begin
    let bigger = Array.make (max (2 * Array.length m.mem) (base + n)) 0 in
    Array.blit m.mem 0 bigger 0 m.mem_used;
    m.mem <- bigger
  end;
  m.mem_used <- base + n;
  base

let record m tid addr kind =
  if m.recording then begin
    m.accs <-
      {
        a_seq = m.acc_count;
        a_tid = tid;
        a_addr = addr;
        a_kind = kind;
        a_locks = m.threads.(tid).held;
      }
      :: m.accs;
    m.acc_count <- m.acc_count + 1
  end

let rec remove_first x = function
  | [] -> []
  | y :: rest -> if x = y then rest else y :: remove_first x rest

(* ---- profiling-stream recorders (host-side, zero simulated cost) ---- *)

let prof_push m tid ~t kind =
  if m.profiling then begin
    m.prof <- { pr_seq = m.prof_count; pr_t = t; pr_tid = tid; pr_kind = kind }
      :: m.prof;
    m.prof_count <- m.prof_count + 1
  end

(* Run segments merge with the immediately preceding segment of the same
   thread when they abut, so a burst of consecutive steps costs one entry.
   Zero-cost steps add nothing. *)
let prof_run m tid ~t0 ~t1 =
  if m.profiling && t1 > t0 then
    match m.prof with
    | ({ pr_tid; pr_kind = Pr_run e; _ } as h) :: rest
      when pr_tid = tid && e = t0 ->
      m.prof <- { h with pr_kind = Pr_run t1 } :: rest
    | _ -> prof_push m tid ~t:t0 (Pr_run t1)

(* The blocking thread's pending annotation (set by Probe.will_block),
   resolved to (target, owner at this instant).  Always consumed, even on
   the paths that end up not blocking. *)
let prof_take_block_reason m tid =
  match Hashtbl.find_opt m.pending_block tid with
  | Some (On_obj o) ->
    Hashtbl.remove m.pending_block tid;
    (On_obj o, Hashtbl.find_opt m.owners o)
  | Some w ->
    Hashtbl.remove m.pending_block tid;
    (w, None)
  | None -> (On_unknown, None)

let prof_waker m =
  match current () with
  | Some (m', w) when m' == m -> Some w
  | _ -> None

(* Cycle-stamped fault log: one entry per injected fault (and per notable
   consequence, e.g. a stale delayed wakeup being discarded).  Host-side
   bookkeeping, mirrored into an obs counter so metrics reports show it. *)
let record_fault m desc =
  m.faults <-
    { f_seq = m.fault_count; f_cycle = m.total_cycles; f_desc = desc }
    :: m.faults;
  m.fault_count <- m.fault_count + 1;
  Obs.Instrument.incr m.obs "chaos.faults" 1

let wake m tid =
  let t = thread m tid in
  fp m (fp_sched tid) ~w:true;
  if Hashtbl.mem m.killed tid then
    record_fault m
      (Printf.sprintf "wakeup of crash-stopped t%d discarded" tid)
  else
  let wake_obj () =
    let obj = Hashtbl.find_opt m.pending_wake tid in
    Hashtbl.remove m.pending_wake tid;
    obj
  in
  match t.status with
  | Blocked ->
    t.status <- Runnable;
    t.epoch <- t.epoch + 1;
    prof_push m tid ~t:m.total_cycles (Pr_wake (prof_waker m, wake_obj ()));
    Obs.Instrument.incr m.obs "machine.wakes" 1;
    ignore
      (Obs.Instrument.span_end m.obs ~track:tid "blocked" ~now:m.total_cycles)
  | Runnable ->
    (* The target has decided to block but its deschedule instruction has
       not executed yet; record the wakeup so the deschedule becomes a
       no-op (Saltzer's wakeup-waiting switch).  The Taos package never
       hits this path (it only readies threads found descheduled under the
       spin-lock); the cooperative backend relies on it. *)
    t.wakeup_pending <- true;
    t.epoch <- t.epoch + 1;
    prof_push m tid ~t:m.total_cycles
      (Pr_wake_pending (prof_waker m, wake_obj ()));
    Obs.Instrument.incr m.obs "machine.wakeup_waiting_arms" 1
  | Finished | Failed _ ->
    failwith (Printf.sprintf "Machine.ready: t%d already finished" tid)

let finish m t st =
  t.status <- st;
  t.paused <- Gone;
  fp m (fp_sched t.tid) ~w:true;
  prof_push m t.tid ~t:m.total_cycles Pr_finish;
  (* Record the join edge at the moment it takes effect: each joiner's
     subsequent execution happens after everything [t] did. *)
  List.iter
    (fun j ->
      record m j (-1) (A_join t.tid);
      wake m j)
    t.joiners;
  t.joiners <- []

(* Run the body of [t] until its next effect, capturing the continuation.
   Used both to start a fresh thread and to resume one (via [continue]). *)
let handler m t =
  {
    Effect.Deep.retc = (fun () -> finish m t Finished);
    exnc = (fun e -> finish m t (Failed e));
    effc =
      (fun (type a) (eff : a Effect.t) ->
        match eff with
        | E_read _ | E_write _ | E_tas _ | E_clear _ | E_faa _ | E_alloc _
        | E_self | E_spawn _ | E_join _ | E_deschedule_and_clear _
        | E_ready _ | E_emit _ | E_tick _ | E_counter _ | E_rand _
        | E_set_priority _ | E_yield | E_mem_emit _ ->
          Some
            (fun (k : (a, unit) Effect.Deep.continuation) ->
              t.paused <- At_effect (eff, k))
        | _ -> None);
  }

let start m t f = Effect.Deep.match_with f () (handler m t)

let resume (type a) _m _t (k : (a, unit) Effect.Deep.continuation) (v : a) =
  (* The handler is deep, so subsequent effects are caught again. *)
  Effect.Deep.continue k v

let incr_counter m name n =
  let cur = Option.value (Hashtbl.find_opt m.counters name) ~default:0 in
  Hashtbl.replace m.counters name (cur + n)

(* Execute the pending effect of [t]: mutate machine state, compute the
   result, account costs, and continue the thread to its next effect.
   Returns the cycle cost. *)
let execute_effect (type a) m t (eff : a Effect.t)
    (k : (a, unit) Effect.Deep.continuation) : int =
  let c = m.cost in
  let charge ~instr cost =
    if instr then begin
      t.instr <- t.instr + 1;
      m.total_instr <- m.total_instr + 1
    end;
    t.cycles <- t.cycles + cost;
    m.total_cycles <- m.total_cycles + cost;
    cost
  in
  match eff with
  | E_read a ->
    let v = m.mem.(a) in
    fp m a ~w:false;
    record m t.tid a A_load;
    let cost = charge ~instr:true c.read in
    resume m t k v;
    cost
  | E_write (a, v) ->
    m.mem.(a) <- v;
    fp m a ~w:true;
    record m t.tid a A_store;
    let cost = charge ~instr:true c.write in
    resume m t k ();
    cost
  | E_tas a ->
    let old = m.mem.(a) in
    m.mem.(a) <- 1;
    fp m a ~w:true;
    record m t.tid a (A_tas (old = 0));
    let cost = charge ~instr:true c.tas in
    resume m t k (old <> 0);
    cost
  | E_clear a ->
    m.mem.(a) <- 0;
    fp m a ~w:true;
    record m t.tid a A_clear;
    let cost = charge ~instr:true c.write in
    resume m t k ();
    cost
  | E_faa (a, n) ->
    let old = m.mem.(a) in
    m.mem.(a) <- old + n;
    fp m a ~w:true;
    record m t.tid a A_faa;
    let cost = charge ~instr:true c.faa in
    resume m t k old;
    cost
  | E_alloc n ->
    let base = alloc m n in
    fp m fp_alloc ~w:true;
    resume m t k base;
    0
  | E_self ->
    resume m t k t.tid;
    0
  | E_spawn (f, prio) ->
    let tid = add_thread m ?priority:prio f in
    fp m fp_spawn ~w:true;
    fp m (fp_sched tid) ~w:true;
    record m t.tid (-1) (A_spawn tid);
    prof_push m t.tid ~t:m.total_cycles (Pr_spawn tid);
    resume m t k tid;
    0
  | E_join target ->
    let tgt = thread m target in
    fp m (fp_sched target) ~w:false;
    (match tgt.status with
    | Finished | Failed _ ->
      record m t.tid (-1) (A_join target);
      resume m t k ();
      0
    | Runnable | Blocked when t.intr ->
      finish m t
        (Failed (Interrupt_blocked (Printf.sprintf "join on t%d" target)));
      0
    | Runnable | Blocked ->
      tgt.joiners <- t.tid :: tgt.joiners;
      t.status <- Blocked;
      ignore (prof_take_block_reason m t.tid);
      prof_push m t.tid ~t:m.total_cycles
        (Pr_block (On_thread target, Some target));
      Obs.Instrument.incr m.obs "machine.blocks" 1;
      Obs.Instrument.span_begin m.obs ~track:t.tid ~cat:"sched" "blocked"
        ~now:m.total_cycles;
      (* E_join has result type unit, so the continuation is reusable as a
         unit resume. *)
      t.paused <- Resume_unit k;
      0)
  | E_deschedule_and_clear a ->
    fp m a ~w:true;
    fp m (fp_sched t.tid) ~w:true;
    let release_held () =
      if List.mem a t.held then begin
        t.held <- remove_first a t.held;
        (match Hashtbl.find_opt m.owners a with
        | Some owner when owner = t.tid -> Hashtbl.remove m.owners a
        | _ -> ());
        record m t.tid a A_lock_rel
      end
    in
    if t.intr then begin
      (* An interrupt routine may not block; it dies without releasing the
         spin-lock, which is exactly the disaster the paper warns about. *)
      ignore (prof_take_block_reason m t.tid);
      finish m t
        (Failed (Interrupt_blocked (Printf.sprintf "deschedule@%d" a)));
      charge ~instr:true c.write
    end
    else if t.wakeup_pending then begin
      t.wakeup_pending <- false;
      ignore (prof_take_block_reason m t.tid);
      m.mem.(a) <- 0;
      release_held ();
      record m t.tid a A_clear;
      t.paused <- Resume_unit k;
      let cost = charge ~instr:true c.write in
      Obs.Instrument.incr m.obs "machine.wakeup_waiting_saves" 1;
      cost
    end
    else begin
      let target, owner = prof_take_block_reason m t.tid in
      m.mem.(a) <- 0;
      release_held ();
      record m t.tid a A_clear;
      t.status <- Blocked;
      t.paused <- Resume_unit k;
      let cost = charge ~instr:true c.write in
      prof_push m t.tid ~t:m.total_cycles (Pr_block (target, owner));
      Obs.Instrument.incr m.obs "machine.blocks" 1;
      Obs.Instrument.span_begin m.obs ~track:t.tid ~cat:"sched" "blocked"
        ~now:m.total_cycles;
      cost
    end
  | E_ready target ->
    (match m.wake_filter with
    | None -> wake m target
    | Some f -> (
      (* Only package wakeup interrupts pass this filter; join/finish
         wakes and timer expiries are machine-internal and undroppable. *)
      match f target with
      | Deliver -> wake m target
      | Delay d ->
        let tgt = thread m target in
        m.delayed <- (m.total_cycles + d, tgt.epoch, target) :: m.delayed;
        record_fault m
          (Printf.sprintf "wakeup of t%d delayed by %d cycles" target d)
      | Drop -> record_fault m (Printf.sprintf "wakeup of t%d dropped" target)));
    resume m t k ();
    0
  | E_emit ev ->
    Trace.Sink.emit m.sink ev;
    resume m t k ();
    0
  | E_tick n ->
    let cost = charge ~instr:true n in
    resume m t k ();
    cost
  | E_counter name ->
    incr_counter m name 1;
    resume m t k ();
    0
  | E_rand n ->
    let v = Threads_util.Rng.int m.rng n in
    fp m fp_rng ~w:true;
    resume m t k v;
    0
  | E_set_priority p ->
    t.prio <- p;
    resume m t k ();
    0
  | E_yield ->
    resume m t k ();
    0
  | E_mem_emit (op, thunk) ->
    let result, cost =
      match op with
      | M_none -> (0, charge ~instr:true c.write)
      | M_read a ->
        fp m a ~w:false;
        record m t.tid a A_load;
        (m.mem.(a), charge ~instr:true c.read)
      | M_tas a ->
        let old = m.mem.(a) in
        m.mem.(a) <- 1;
        fp m a ~w:true;
        record m t.tid a (A_tas (old = 0));
        (old, charge ~instr:true c.tas)
      | M_clear a ->
        m.mem.(a) <- 0;
        fp m a ~w:true;
        record m t.tid a A_clear;
        (0, charge ~instr:true c.write)
      | M_faa (a, n) ->
        let old = m.mem.(a) in
        m.mem.(a) <- old + n;
        fp m a ~w:true;
        record m t.tid a A_faa;
        (old, charge ~instr:true c.faa)
    in
    (* The thunk runs inside this step, atomically with the memory
       operation; it may update package bookkeeping but must not perform
       machine effects. *)
    (match thunk result with
    | Some ev -> Trace.Sink.emit m.sink ev
    | None -> ());
    resume m t k result;
    cost
  | _ -> failwith "Machine: unknown effect"

let step m tid =
  let t = thread m tid in
  if t.status <> Runnable then
    failwith (Printf.sprintf "Machine.step: t%d is not runnable" tid);
  let saved = current () in
  set_current (Some (m, tid));
  if m.track_footprint then m.footprint <- [ (fp_sched tid, false) ];
  Fun.protect
    ~finally:(fun () -> set_current saved)
    (fun () ->
      let t0 = m.total_cycles in
      let cost =
        match t.paused with
        | Fresh f ->
          t.paused <- Gone;
          start m t f;
          0
        | Resume_unit k ->
          t.paused <- Gone;
          resume m t k ();
          0
        | At_effect (eff, k) ->
          t.paused <- Gone;
          execute_effect m t eff k
        | Gone ->
          failwith (Printf.sprintf "Machine.step: t%d has no continuation" tid)
      in
      prof_run m tid ~t0 ~t1:m.total_cycles;
      cost)

let trace m = Trace.Sink.events m.sink
let sink m = m.sink

let counters m =
  Hashtbl.fold (fun k v acc -> (k, v) :: acc) m.counters []
  |> List.sort compare

let counter m name =
  Option.value (Hashtbl.find_opt m.counters name) ~default:0

let instructions m tid = (thread m tid).instr
let total_instructions m = m.total_instr
let total_cycles m = m.total_cycles

let failures m =
  let rec go i acc =
    if i < 0 then acc
    else
      go (i - 1)
        (match m.threads.(i).status with
        | Failed e -> (i, e) :: acc
        | Runnable | Blocked | Finished -> acc)
  in
  go (m.nthreads - 1) []

let all_tids m = List.init m.nthreads (fun i -> i)
let cost_model m = m.cost
let obs m = m.obs

(* ---- access-stream accessors ---- *)

let set_recording m b = m.recording <- b
let recording m = m.recording
let accesses m = List.rev m.accs
let access_count m = m.acc_count

(* ---- step-footprint accessors (DPOR dependence) ---- *)

let set_footprints m b =
  m.track_footprint <- b;
  if not b then m.footprint <- []

let footprints m = m.track_footprint
let last_footprint m = m.footprint

(* Two footprints conflict iff they share an address and at least one
   side writes it — the machine-level dependence relation the explorer's
   sleep sets are keyed on. *)
let footprints_conflict f1 f2 =
  List.exists
    (fun (a1, w1) ->
      List.exists (fun (a2, w2) -> a1 = a2 && (w1 || w2)) f2)
    f1

(* ---- profiling-stream accessors ---- *)

let set_profiling m b = m.profiling <- b
let profiling m = m.profiling

(* ---- timers (driver side) ----

   A timer is armed by the owning thread (Probe.set_timeout) and fired by
   the driver between steps once the machine clock passes its deadline:
   the victim is woken exactly as by [Ops.ready] (honouring the
   wakeup-waiting switch) and its [timer_fired] flag is set; the victim
   itself then dequeues and linearizes the timed outcome under the package
   lock.  When nothing is runnable but timers remain, the driver advances
   the clock to the earliest deadline — discrete-event idle time. *)

let timers_pending m = Hashtbl.length m.timers > 0

let next_timer m =
  Hashtbl.fold
    (fun _ d acc ->
      match acc with None -> Some d | Some d' -> Some (min d d'))
    m.timers None

let fire_timer m tid =
  Hashtbl.remove m.timers tid;
  match (thread m tid).status with
  | Finished | Failed _ -> ()
  | Runnable | Blocked ->
    if not (Hashtbl.mem m.killed tid) then begin
      Hashtbl.replace m.timer_fired tid ();
      wake m tid
    end

let fire_due_timers m =
  if Hashtbl.length m.timers > 0 then begin
    let due =
      Hashtbl.fold
        (fun tid d acc -> if d <= m.total_cycles then tid :: acc else acc)
        m.timers []
    in
    List.iter (fire_timer m) (List.sort compare due)
  end

let advance_to_next_timer m =
  match next_timer m with
  | None -> false
  | Some d ->
    if d > m.total_cycles then m.total_cycles <- d;
    fire_due_timers m;
    true

(* ---- fault injection (driver side) ---- *)

let set_wake_filter m f = m.wake_filter <- f

let delayed_pending m = m.delayed <> []

let next_delayed m =
  List.fold_left
    (fun acc (d, _, _) ->
      match acc with None -> Some d | Some d' -> Some (min d d'))
    None m.delayed

let flush_delayed m =
  if m.delayed <> [] then begin
    let due, rest = List.partition (fun (d, _, _) -> d <= m.total_cycles) m.delayed in
    m.delayed <- rest;
    List.iter
      (fun (_, epoch, target) ->
        let t = thread m target in
        match t.status with
        | (Runnable | Blocked)
          when t.epoch = epoch && not (Hashtbl.mem m.killed target) ->
          record_fault m (Printf.sprintf "delayed wakeup of t%d delivered" target);
          wake m target
        | _ ->
          (* The episode this wakeup targeted is over (a timer or another
             wake got there first): delivering it now would spuriously
             wake an unrelated block, so it is discarded — which is what a
             real lost interrupt looks like. *)
          record_fault m
            (Printf.sprintf "stale delayed wakeup of t%d discarded" target))
      (List.sort compare due)
  end

let advance_clock m ~to_ = if to_ > m.total_cycles then m.total_cycles <- to_

let kill m tid ~reason =
  let t = thread m tid in
  match t.status with
  | Finished | Failed _ -> ()
  | Runnable | Blocked ->
    Hashtbl.replace m.killed tid ();
    Hashtbl.remove m.timers tid;
    record_fault m (Printf.sprintf "crash-stop of t%d (%s)" tid reason);
    finish m t (Failed Crash_stopped)

let was_killed m tid = Hashtbl.mem m.killed tid
let set_chaos_active m b = m.chaos_active <- b
let chaos_hooks m = List.rev m.chaos_hooks
let faults m = List.rev m.faults
let fault_count m = m.fault_count
let prof_events m = List.rev m.prof
let prof_event_count m = m.prof_count
let owner_of m obj = Hashtbl.find_opt m.owners obj
let word_kind m a = Option.map fst (Hashtbl.find_opt m.words a)

let word_name m a =
  match Hashtbl.find_opt m.words a with
  | Some (_, name) -> name
  | None -> Printf.sprintf "word@%d" a

let lock_name m id =
  match Hashtbl.find_opt m.lock_names id with
  | Some name -> name
  | None -> (
    match Hashtbl.find_opt m.words id with
    | Some (_, name) -> name
    | None -> Printf.sprintf "lock#%d" id)

let registered_words m =
  Hashtbl.fold (fun a (k, n) acc -> (a, k, n) :: acc) m.words []
  |> List.sort compare

(* Zero-sim-cost observation points for package code (see [current]).
   Every entry point is a no-op outside a simulated thread, so the Threads
   package stays loadable from code not running under a machine. *)
module Probe = struct
  let now () =
    match current () with Some (m, _) -> m.total_cycles | None -> 0

  (* Append a trace event at the current instant without an effect.  Meant
     for [mem_emit] thunks that linearize more than one visible action in a
     single instruction (e.g. Hoare's monitor handoff: Release + Acquire). *)
  let emit ev =
    match current () with
    | Some (m, _) -> Trace.Sink.emit m.sink ev
    | None -> ()

  (* The stepping thread's id, without the E_self effect (and so without a
     scheduling point): lets a [mem_emit] thunk name itself in an event. *)
  let self () = match current () with Some (_, tid) -> Some tid | None -> None

  (* Machine-local negative id allocator for traced objects that are not
     backed by a memory word (Hoare conditions).  Machine-local rather
     than a process global so the ids — which appear in trace events and
     conformance reports — depend only on the run, not on process history
     or on which domain executed it. *)
  let global_neg_ids = Atomic.make 0

  let fresh_trace_id () =
    match current () with
    | Some (m, _) ->
      m.neg_ids <- m.neg_ids - 1;
      m.neg_ids
    | None -> Atomic.fetch_and_add global_neg_ids (-1) - 1

  (* Declare a host-level access to shared package state for the DPOR
     dependence stream.  Package operations whose effect lives in OCaml
     data structures (cooperative ready queues, monitor holder fields)
     rather than machine words call this inside their atomic thunks so
     the explorer sees the conflict; object ids are mapped into their own
     pseudo-address range and can never alias a machine word.  No-op
     unless footprint tracking is on. *)
  let touch ?(write = true) id =
    match current () with
    | Some (m, _) -> fp m (fp_obj id) ~w:write
    | None -> ()

  let counter name n =
    match current () with
    | Some (m, _) -> Obs.Instrument.incr m.obs name n
    | None -> ()

  let sample name v =
    match current () with
    | Some (m, _) -> Obs.Instrument.sample m.obs name v
    | None -> ()

  let gauge_max name v =
    match current () with
    | Some (m, _) -> Obs.Instrument.gauge_max m.obs name v
    | None -> ()

  let span_begin ?cat name =
    match current () with
    | Some (m, tid) ->
      Obs.Instrument.span_begin m.obs ~track:tid ?cat name
        ~now:m.total_cycles
    | None -> ()

  let span_end name =
    match current () with
    | Some (m, tid) ->
      Obs.Instrument.span_end m.obs ~track:tid name ~now:m.total_cycles
    | None -> None

  let span_add ?cat name ~t0 ~t1 =
    match current () with
    | Some (m, tid) ->
      Obs.Instrument.span_add m.obs ~track:tid ?cat name ~t0 ~t1
    | None -> ()

  (* ---- access-stream probes ----

     Classification and lock-held tracking for the analyzers in
     lib/analysis.  Like every probe these are plain function calls: no
     effect, no cycle, no scheduling point.  The held-lock list is
     maintained even when recording is off (it is a handful of conses per
     lock operation), so recording can be enabled at any time. *)

  (* Classify a memory word so the analyzers know its protocol role.
     Unregistered words are treated as ordinary data. *)
  let register_word addr kind name =
    match current () with
    | Some (m, _) ->
      Hashtbl.replace m.words addr (kind, name);
      if kind = W_lock then Hashtbl.replace m.lock_names addr name
    | None -> ()

  (* Name a package-level lock that is not backed by a TAS word (e.g. the
     cooperative backend's mutexes, Hoare monitors). *)
  let register_lock id name =
    match current () with
    | Some (m, _) -> Hashtbl.replace m.lock_names id name
    | None -> ()

  (* [?tid] covers grants made on another thread's behalf (Hoare's signal
     hands the monitor to the resumed waiter inside the signaller's
     instruction). *)
  let lock_acquired ?tid id =
    match current () with
    | Some (m, cur) ->
      let tid = Option.value tid ~default:cur in
      let t = thread m tid in
      record m tid id A_lock_acq;
      (* recorded before extending [held]: a_locks = locks held on entry *)
      t.held <- id :: t.held;
      Hashtbl.replace m.owners id tid
    | None -> ()

  let lock_released ?tid id =
    match current () with
    | Some (m, cur) ->
      let tid = Option.value tid ~default:cur in
      let t = thread m tid in
      t.held <- remove_first id t.held;
      (match Hashtbl.find_opt m.owners id with
      | Some owner when owner = tid -> Hashtbl.remove m.owners id
      | _ -> ());
      record m tid id A_lock_rel
    | None -> ()

  (* A contended acquisition about to block: gives the lock-order graph
     the attempted edge even if the acquisition never succeeds (the
     classic deadlock leaves both attempts pending forever). *)
  let lock_attempted id =
    match current () with
    | Some (m, cur) -> record m cur id A_lock_att
    | None -> ()

  (* ---- causal-profiling probes (lib/profile) ----

     [will_block obj] annotates the caller's imminent deschedule with the
     synchronization object it is waiting on; the machine resolves the
     object's owner at the instant the block commits (and discards the
     annotation if the wakeup-waiting switch turns the deschedule into a
     no-op).  [handoff ~obj target] annotates the next wake of [target]
     with the object whose ownership is being handed over — called just
     before the [Ops.ready] in Release / Signal / Broadcast / V and the
     alert cancellation paths. *)

  (* ---- timer probes (timed waits) ----

     Arming/disarming a timer is host-side bookkeeping (no effect, no
     cycle): the deadline only becomes visible when the driver fires it
     between steps.  [take_timeout_fired] consumes the delivery flag so
     the timed-out thread can tell expiry from a Signal/V wake. *)

  let set_timeout ~cycles =
    match current () with
    | Some (m, tid) -> Hashtbl.replace m.timers tid (m.total_cycles + cycles)
    | None -> ()

  let cancel_timeout () =
    match current () with
    | Some (m, tid) ->
      Hashtbl.remove m.timers tid;
      Hashtbl.remove m.timer_fired tid
    | None -> ()

  let take_timeout_fired () =
    match current () with
    | Some (m, tid) ->
      if Hashtbl.mem m.timer_fired tid then begin
        Hashtbl.remove m.timer_fired tid;
        true
      end
      else false
    | None -> false

  (* ---- chaos probes (lib/fault) ---- *)

  (* True only while a fault-injection driver is running this machine:
     gates degradation heuristics (spin-lock backoff) so uninjected runs
     stay schedule-identical. *)
  let chaos_active () =
    match current () with Some (m, _) -> m.chaos_active | None -> false

  (* Package code registers named injection entry points at object
     creation (a condition's spurious wakeup, a spin-lock's contention
     burst, the package's alert).  The chaos engine runs them from
     injector threads it spawns mid-run. *)
  let register_chaos name f =
    match current () with
    | Some (m, _) -> m.chaos_hooks <- (name, f) :: m.chaos_hooks
    | None -> ()

  (* Record a package-level injected fault in the machine's fault log. *)
  let inject_fault desc =
    match current () with Some (m, _) -> record_fault m desc | None -> ()

  let will_block obj =
    match current () with
    | Some (m, tid) ->
      if m.profiling then Hashtbl.replace m.pending_block tid (On_obj obj)
    | None -> ()

  let handoff ~obj target =
    match current () with
    | Some (m, _) ->
      if m.profiling then Hashtbl.replace m.pending_wake target obj
    | None -> ()
end
