module Tid = Threads_util.Tid

type verdict = Completed | Deadlock of Tid.t list | Step_limit

type report = { verdict : verdict; steps : int; machine : Machine.t }

let run ?(max_steps = 1_000_000) ?strategy ?(seed = 0) ?cost build =
  let strategy =
    match strategy with Some s -> s | None -> Sched.random seed
  in
  let m = Machine.create ~seed ?cost () in
  build m;
  let steps = ref 0 in
  let rec loop () =
    if !steps >= max_steps then Step_limit
    else begin
      (* No-op unless a thread armed a timed wait (then expiry is driven
         by the machine clock; at quiescence the clock jumps to the next
         deadline — discrete-event idle time). *)
      Machine.fire_due_timers m;
      match Machine.runnable m with
      | [] ->
        if Machine.advance_to_next_timer m then loop ()
        else if Machine.live m then
          Deadlock
            (List.filter
               (fun tid -> Machine.status m tid = Machine.Blocked)
               (Machine.all_tids m))
        else Completed
      | rs ->
        let tid = Sched.choose strategy m rs in
        ignore (Machine.step m tid);
        incr steps;
        loop ()
    end
  in
  let verdict = loop () in
  { verdict; steps = !steps; machine = m }

let run_main ?max_steps ?strategy ?seed ?cost body =
  run ?max_steps ?strategy ?seed ?cost (fun m ->
      ignore (Machine.spawn_root m body))
