module Ops = Firefly.Machine.Ops
module M = Firefly.Machine
module Tid = Threads_util.Tid

type sync = (module Sync_intf.SYNC with type thread = Tid.t)

type mu = { mutable holder : Tid.t option; mq : Tqueue.t; mid : int }

type cond = {
  cq : Tqueue.t;
  departing : (Tid.t, unit) Hashtbl.t;
  cid : int;
}

type sem = { mutable avail : bool; sq : Tqueue.t; sid : int }

type state = {
  mutable pending : Tid.Set.t;
  cancels : (Tid.t, unit -> unit) Hashtbl.t;
  woken : (Tid.t, unit) Hashtbl.t;
  scratch : int;  (* dummy word for deschedule_and_clear *)
  mutable next_id : int;
}

let fresh_id st =
  st.next_id <- st.next_id + 1;
  st.next_id

(* Commit an atomic action: run [f] and emit its event in one instruction. *)
let atomically f = ignore (Ops.mem_emit M.M_none (fun _ -> f ()))

(* DPOR dependence declarations: this package's shared state lives in
   host data structures (holder fields, Tqueues, the alert tables), not
   machine words, so each atomic action declares the objects it touches
   ({!M.Probe.touch} — charge-free, no-op unless the explorer enabled
   footprints).  Object ids come from [fresh_id] (1, 2, ...); id 0 is
   reserved for the package-wide alert state. *)
let touch = M.Probe.touch
let touch_alerts () = M.Probe.touch 0

let block st = Ops.deschedule_and_clear st.scratch

let take_woken st self =
  if Hashtbl.mem st.woken self then begin
    Hashtbl.remove st.woken self;
    true
  end
  else false

let rec lock_loop st m ~event =
  let self = Ops.self () in
  let got = ref false in
  atomically (fun () ->
      touch m.mid;
      match m.holder with
      | None ->
        m.holder <- Some self;
        M.Probe.lock_acquired m.mid;
        got := true;
        event ()
      | Some _ ->
        M.Probe.lock_attempted m.mid;
        Tqueue.push m.mq self;
        None);
  if not !got then begin
    M.Probe.will_block m.mid;
    block st;
    lock_loop st m ~event
  end

let unlock _st m ~event =
  atomically (fun () ->
      touch m.mid;
      m.holder <- None;
      M.Probe.lock_released m.mid;
      event ());
  (* Hand the next queued acquirer a chance; it re-checks on wake. *)
  match Tqueue.pop m.mq with
  | Some t ->
    M.Probe.handoff ~obj:m.mid t;
    Ops.ready t
  | None -> ()

let wait_generic st c m ~proc ~alertable =
  let self = Ops.self () in
  let alerted_now = ref false in
  (* Enqueue: join c and release m in one atomic action.  An alertable
     wait with an alert already pending joins c only abstractly (the
     departing set) and skips the sleep — AlertResume will raise. *)
  atomically (fun () ->
      touch m.mid;
      touch c.cid;
      if alertable then touch_alerts ();
      (if alertable && Tid.Set.mem self st.pending then begin
         alerted_now := true;
         Hashtbl.replace c.departing self ()
       end
       else begin
         Tqueue.push c.cq self;
         if alertable then
           Hashtbl.replace st.cancels self (fun () ->
               touch c.cid;
               ignore (Tqueue.remove c.cq self);
               Hashtbl.replace c.departing self ();
               M.Probe.handoff ~obj:c.cid self;
               Ops.ready self)
       end);
      m.holder <- None;
      M.Probe.lock_released m.mid;
      Some (Events.enqueue ~proc ~self ~m:m.mid ~c:c.cid));
  (match Tqueue.pop m.mq with
  | Some t ->
    M.Probe.handoff ~obj:m.mid t;
    Ops.ready t
  | None -> ());
  if not !alerted_now then begin
    M.Probe.will_block c.cid;
    block st
  end;
  if alertable then touch_alerts ();
  let raise_it =
    alertable
    && (!alerted_now || take_woken st self || Tid.Set.mem self st.pending)
  in
  Hashtbl.remove st.cancels self;
  let event () =
    if alertable then begin
      Hashtbl.remove c.departing self;
      if raise_it then st.pending <- Tid.Set.remove self st.pending;
      Some (Events.alert_resume ~self ~m:m.mid ~c:c.cid ~alerted:raise_it)
    end
    else Some (Events.resume ~self ~m:m.mid ~c:c.cid)
  in
  lock_loop st m ~event;
  if raise_it then raise Sync_intf.Alerted

(* TimedWait: the self-service dequeue happens atomically with the
   TimedResume emission at mutex re-acquisition, so "did we really time
   out" and the event agree by construction: if a Signal/Broadcast
   dequeued us first, the expiry converts into a normal resume. *)
let timed_wait_impl st c m ~timeout =
  let self = Ops.self () in
  atomically (fun () ->
      touch m.mid;
      touch c.cid;
      Tqueue.push c.cq self;
      m.holder <- None;
      M.Probe.lock_released m.mid;
      Some (Events.enqueue ~proc:"TimedWait" ~self ~m:m.mid ~c:c.cid));
  (match Tqueue.pop m.mq with
  | Some t ->
    M.Probe.handoff ~obj:m.mid t;
    Ops.ready t
  | None -> ());
  M.Probe.set_timeout ~cycles:timeout;
  M.Probe.will_block c.cid;
  block st;
  let timed_out = ref false in
  lock_loop st m ~event:(fun () ->
      touch c.cid;
      if M.Probe.take_timeout_fired () && Tqueue.remove c.cq self then
        timed_out := true;
      M.Probe.cancel_timeout ();
      Some
        (Events.timed_resume ~self ~m:m.mid ~c:c.cid ~timed_out:!timed_out));
  if !timed_out then raise Sync_intf.Timed_out

(* TimedP: when the bit is free we always take it, even with the timer
   already fired (RETURNS WHEN s = available has no timeout conjunct) —
   which also makes a V racing with our expiry impossible to lose. *)
let timed_p_impl st s ~timeout =
  let self = Ops.self () in
  M.Probe.set_timeout ~cycles:timeout;
  let rec loop () =
    let outcome = ref `Blocked in
    atomically (fun () ->
        touch s.sid;
        if s.avail then begin
          s.avail <- false;
          outcome := `Got;
          Some (Events.timed_p ~self ~s:s.sid ~timed_out:false)
        end
        else if M.Probe.take_timeout_fired () then begin
          outcome := `Expired;
          ignore (Tqueue.remove s.sq self);
          Some (Events.timed_p ~self ~s:s.sid ~timed_out:true)
        end
        else begin
          Tqueue.push s.sq self;
          None
        end);
    match !outcome with
    | `Got -> M.Probe.cancel_timeout ()
    | `Expired ->
      M.Probe.cancel_timeout ();
      raise Sync_intf.Timed_out
    | `Blocked ->
      M.Probe.will_block s.sid;
      block st;
      loop ()
  in
  loop ()

let wake_cond st c ~take_all ~self =
  let to_ready = ref [] in
  atomically (fun () ->
      touch c.cid;
      touch_alerts ();
      let from_q =
        if take_all then Tqueue.pop_all c.cq
        else match Tqueue.pop c.cq with Some t -> [ t ] | None -> []
      in
      let from_departing =
        Hashtbl.fold (fun t () acc -> t :: acc) c.departing []
      in
      List.iter (fun t -> Hashtbl.remove st.cancels t) from_q;
      to_ready := from_q;
      let removed = from_q @ from_departing in
      Some
        (if take_all then Events.broadcast ~self ~c:c.cid ~removed
         else Events.signal ~self ~c:c.cid ~removed));
  List.iter
    (fun t ->
      M.Probe.handoff ~obj:c.cid t;
      Ops.ready t)
    !to_ready

let rec p_loop st s ~alertable ~event =
  let self = Ops.self () in
  let outcome = ref `Blocked in
  atomically (fun () ->
      touch s.sid;
      if alertable then touch_alerts ();
      if s.avail then begin
        s.avail <- false;
        outcome := `Got;
        event ()
      end
      else if alertable && Tid.Set.mem self st.pending then begin
        outcome := `Alerted;
        None
      end
      else begin
        Tqueue.push s.sq self;
        if alertable then
          Hashtbl.replace st.cancels self (fun () ->
              touch s.sid;
              ignore (Tqueue.remove s.sq self);
              M.Probe.handoff ~obj:s.sid self;
              Ops.ready self);
        None
      end);
  match !outcome with
  | `Got -> `Acquired
  | `Alerted -> `Alerted
  | `Blocked ->
    M.Probe.will_block s.sid;
    block st;
    if alertable then touch_alerts ();
    Hashtbl.remove st.cancels self;
    if alertable && take_woken st self then `Alerted
    else p_loop st s ~alertable ~event

let make () : sync =
  let scratch = Ops.alloc 1 in
  (* Every blocking thread clears this shared word with no lock held; it
     carries no data, so exempt it from race analysis. *)
  M.Probe.register_word scratch M.W_atomic "uniproc.scratch";
  let st =
    {
      pending = Tid.Set.empty;
      cancels = Hashtbl.create 8;
      woken = Hashtbl.create 8;
      scratch;
      next_id = 0;
    }
  in
  (module struct
    type mutex = mu
    type condition = cond
    type semaphore = sem
    type thread = Tid.t

    let mutex () =
      let mid = fresh_id st in
      M.Probe.register_lock mid (Printf.sprintf "mutex#%d" mid);
      { holder = None; mq = Tqueue.create (); mid }

    let condition () =
      let cid = fresh_id st in
      M.Probe.register_lock cid (Printf.sprintf "cond#%d" cid);
      let c = { cq = Tqueue.create (); departing = Hashtbl.create 4; cid } in
      (* Chaos hook: spurious wakeup = a real package-level Signal. *)
      M.Probe.register_chaos
        (Printf.sprintf "cond#%d.spurious" cid)
        (fun k ->
          for _ = 1 to max 1 k do
            wake_cond st c ~take_all:false ~self:(Ops.self ())
          done);
      c

    let semaphore () =
      let sid = fresh_id st in
      M.Probe.register_lock sid (Printf.sprintf "sem#%d" sid);
      { avail = true; sq = Tqueue.create (); sid }

    let acquire m =
      let self = Ops.self () in
      lock_loop st m ~event:(fun () -> Some (Events.acquire ~self ~m:m.mid))

    let release m =
      let self = Ops.self () in
      unlock st m ~event:(fun () -> Some (Events.release ~self ~m:m.mid))

    let with_lock m f =
      acquire m;
      Fun.protect ~finally:(fun () -> release m) f

    let wait m c = wait_generic st c m ~proc:"Wait" ~alertable:false
    let timed_wait m c ~timeout = timed_wait_impl st c m ~timeout

    let signal c = wake_cond st c ~take_all:false ~self:(Ops.self ())
    let broadcast c = wake_cond st c ~take_all:true ~self:(Ops.self ())

    let p s =
      let self = Ops.self () in
      match
        p_loop st s ~alertable:false ~event:(fun () ->
            Some (Events.p ~self ~s:s.sid))
      with
      | `Acquired -> ()
      | `Alerted -> assert false

    let v s =
      let self = Ops.self () in
      atomically (fun () ->
          touch s.sid;
          s.avail <- true;
          Some (Events.v ~self ~s:s.sid));
      match Tqueue.pop s.sq with
      | Some t ->
        M.Probe.handoff ~obj:s.sid t;
        Ops.ready t
      | None -> ()

    let alert target =
      let self = Ops.self () in
      atomically (fun () ->
          touch_alerts ();
          st.pending <- Tid.Set.add target st.pending;
          Some (Events.alert ~self ~target));
      match Hashtbl.find_opt st.cancels target with
      | Some cancel ->
        Hashtbl.remove st.cancels target;
        Hashtbl.replace st.woken target ();
        cancel ()
      | None -> ()

    let timed_p s ~timeout = timed_p_impl st s ~timeout
    let () = M.Probe.register_chaos "pkg.alert" alert

    let test_alert () =
      let self = Ops.self () in
      let was = ref false in
      atomically (fun () ->
          touch_alerts ();
          was := Tid.Set.mem self st.pending;
          st.pending <- Tid.Set.remove self st.pending;
          Some (Events.test_alert ~self ~result:!was));
      !was

    let alert_wait m c = wait_generic st c m ~proc:"AlertWait" ~alertable:true

    let alert_p s =
      let self = Ops.self () in
      match
        p_loop st s ~alertable:true ~event:(fun () ->
            Some (Events.alert_p ~self ~s:s.sid ~alerted:false))
      with
      | `Acquired -> ()
      | `Alerted ->
        atomically (fun () ->
            touch_alerts ();
            st.pending <- Tid.Set.remove self st.pending;
            Some (Events.alert_p ~self ~s:s.sid ~alerted:true));
        raise Sync_intf.Alerted

    let self () = Ops.self ()
    let fork f = Ops.spawn f
    let join = Ops.join
    let yield = Ops.yield
  end)

let run ?seed ?strategy ?max_steps body =
  let strategy =
    match strategy with Some s -> s | None -> Firefly.Sched.round_robin ()
  in
  Firefly.Interleave.run ?max_steps ~strategy ?seed (fun machine ->
      ignore (Firefly.Machine.spawn_root machine (fun () -> body (make ()))))
