(** Condition variables, as implemented on the Firefly (paper,
    Implementation): a pair (Eventcount, Queue).

    Wait(m, c): read the eventcount (this is the linearization point of
    the Enqueue action — at that instant the thread is abstractly in [c]
    and [m] is abstractly NIL, even though the lock bit clears a few
    instructions later); release the mutex without emitting Release (the
    visible effect belongs to Enqueue); call the Nub's Block(c, i); on
    return re-acquire the mutex, emitting the Resume action at the winning
    test-and-set.

    Block compares [i] with the current eventcount under the spin-lock: an
    intervening Signal/Broadcast advanced it, so Block returns immediately
    — the wakeup-waiting race of the paper.  The set of threads inside
    that window is tracked so Signal can report exactly which threads its
    eventcount increment released: the queued thread it dequeues {e plus}
    every window thread ("Signal will unblock all such threads").

    The user code of Signal/Broadcast skips the Nub when the [interest]
    count is zero; waiters increment it before their Enqueue linearization
    and decrement it after leaving, so zero reliably means nobody is
    waiting or committed to waiting. *)

type t

val create : Pkg.t -> t

(** The identity used in trace events. *)
val id : t -> int

(** Wait(m, c).  REQUIRES m = SELF is the caller's obligation. *)
val wait : t -> Mutex.t -> unit

(** AlertWait(m, c) — like Wait but alertable; raises {!Sync_intf.Alerted}
    instead of returning when the thread has been alerted.  The
    RETURNS/RAISES choice when both are possible is deliberately
    schedule-dependent (the paper's incident 2 non-determinism): the
    pending flag is sampled once after wakeup, before re-acquiring the
    mutex. *)
val alert_wait : t -> Mutex.t -> unit

(** TimedWait(m, c) — like Wait but gives up after [timeout] simulated
    cycles, raising {!Sync_intf.Timed_out} (after re-acquiring the mutex,
    as the TimedResume spec clause requires).  Expiry self-services: the
    waking thread pulls itself off the queue under the spin-lock; if a
    Signal/Broadcast got there first the expiry converts into a normal
    resume, so no wakeup is ever lost. *)
val timed_wait : t -> Mutex.t -> timeout:int -> unit

val signal : t -> unit
val broadcast : t -> unit

(** Number of threads currently enqueued (racy; for tests/metrics). *)
val queued : t -> int
