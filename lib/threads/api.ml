module Ops = Firefly.Machine.Ops
module Tid = Threads_util.Tid

type sync = (module Sync_intf.SYNC with type thread = Tid.t)

let make pkg : sync =
  (module struct
    type mutex = Mutex.t
    type condition = Condition.t
    type semaphore = Semaphore.t
    type thread = Tid.t

    let mutex () = Mutex.create pkg
    let condition () = Condition.create pkg
    let semaphore () = Semaphore.create pkg
    let acquire = Mutex.acquire
    let release = Mutex.release
    let with_lock = Mutex.with_lock
    let wait m c = Condition.wait c m
    let signal = Condition.signal
    let broadcast = Condition.broadcast
    let p = Semaphore.p
    let v = Semaphore.v
    let timed_wait m c ~timeout = Condition.timed_wait c m ~timeout
    let timed_p = Semaphore.timed_p

    let alert target =
      Alerts.alert pkg.Pkg.alerts ~lock:pkg.Pkg.lock ~self:(Ops.self ())
        ~target

    let test_alert () = Alerts.test_alert pkg.Pkg.alerts ~self:(Ops.self ())
    let alert_wait m c = Condition.alert_wait c m
    let alert_p = Semaphore.alert_p
    let self () = Ops.self ()
    let fork f = Ops.spawn f
    let join = Ops.join
    let yield = Ops.yield
  end)

let build ?fast_path body machine =
  ignore
    (Firefly.Machine.spawn_root machine (fun () ->
         let pkg = Pkg.create ?fast_path () in
         (* Chaos hook: an alert storm targets thread [n] with a real
            package-level Alert, exercising the cancellation paths. *)
         Firefly.Machine.Probe.register_chaos "pkg.alert" (fun n ->
             Alerts.alert pkg.Pkg.alerts ~lock:pkg.Pkg.lock
               ~self:(Ops.self ()) ~target:n);
         body (make pkg)))

let run ?fast_path ?seed ?strategy ?max_steps ?cost body =
  Firefly.Interleave.run ?max_steps ?strategy ?seed ?cost
    (build ?fast_path body)

let run_timed ~processors ?fast_path ?seed ?cost ?max_cycles body =
  Firefly.Timed.run ~processors ?seed ?cost ?max_cycles (build ?fast_path body)
