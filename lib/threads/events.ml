open Spec_trace

let acquire ~self ~m = make ~proc:"Acquire" ~self ~args:[ ("m", Obj m) ] ()
let release ~self ~m = make ~proc:"Release" ~self ~args:[ ("m", Obj m) ] ()

let enqueue ~proc ~self ~m ~c =
  make ~proc ~action:"Enqueue" ~self ~args:[ ("m", Obj m); ("c", Obj c) ] ()

let resume ~self ~m ~c =
  make ~proc:"Wait" ~action:"Resume" ~self
    ~args:[ ("m", Obj m); ("c", Obj c) ]
    ()

let alert_resume ~self ~m ~c ~alerted =
  make ~proc:"AlertWait" ~action:"AlertResume" ~self
    ~args:[ ("m", Obj m); ("c", Obj c) ]
    ~outcome:(if alerted then Raise "Alerted" else Ret)
    ()

let signal ~self ~c ~removed =
  make ~proc:"Signal" ~self ~args:[ ("c", Obj c) ] ~removed ()

let broadcast ~self ~c ~removed =
  make ~proc:"Broadcast" ~self ~args:[ ("c", Obj c) ] ~removed ()

let p ~self ~s = make ~proc:"P" ~self ~args:[ ("s", Obj s) ] ()
let v ~self ~s = make ~proc:"V" ~self ~args:[ ("s", Obj s) ] ()

let alert ~self ~target =
  make ~proc:"Alert" ~self ~args:[ ("t", Thr target) ] ()

let test_alert ~self ~result =
  make ~proc:"TestAlert" ~self ~args:[] ~result_bool:result ()

let alert_p ~self ~s ~alerted =
  make ~proc:"AlertP" ~self ~args:[ ("s", Obj s) ]
    ~outcome:(if alerted then Raise "Alerted" else Ret)
    ()

let timed_resume ~self ~m ~c ~timed_out =
  make ~proc:"TimedWait" ~action:"TimedResume" ~self
    ~args:[ ("m", Obj m); ("c", Obj c) ]
    ~outcome:(if timed_out then Raise "TimedOut" else Ret)
    ()

let timed_p ~self ~s ~timed_out =
  make ~proc:"TimedP" ~self ~args:[ ("s", Obj s) ]
    ~outcome:(if timed_out then Raise "TimedOut" else Ret)
    ()
