(** Trace-event constructors for the Threads package's atomic actions.

    Kept in one place so every backend — sim, uniprocessor, multicore and
    the baselines — emits identical events and the conformance checker sees
    one vocabulary. *)

open Threads_util

val acquire : self:Tid.t -> m:int -> Spec_trace.event
val release : self:Tid.t -> m:int -> Spec_trace.event

(** Wait's and AlertWait's first atomic action share shape; [proc]
    distinguishes them. *)
val enqueue : proc:string -> self:Tid.t -> m:int -> c:int -> Spec_trace.event

val resume : self:Tid.t -> m:int -> c:int -> Spec_trace.event

val alert_resume :
  self:Tid.t -> m:int -> c:int -> alerted:bool -> Spec_trace.event

val signal : self:Tid.t -> c:int -> removed:Tid.t list -> Spec_trace.event

val broadcast :
  self:Tid.t -> c:int -> removed:Tid.t list -> Spec_trace.event

val p : self:Tid.t -> s:int -> Spec_trace.event
val v : self:Tid.t -> s:int -> Spec_trace.event
val alert : self:Tid.t -> target:Tid.t -> Spec_trace.event
val test_alert : self:Tid.t -> result:bool -> Spec_trace.event
val alert_p : self:Tid.t -> s:int -> alerted:bool -> Spec_trace.event

val timed_resume :
  self:Tid.t -> m:int -> c:int -> timed_out:bool -> Spec_trace.event

val timed_p : self:Tid.t -> s:int -> timed_out:bool -> Spec_trace.event
