module Ops = Firefly.Machine.Ops
module M = Firefly.Machine
module Tid = Threads_util.Tid

type monitor = {
  mutable holder : Tid.t option;
  entry : Tqueue.t;
  urgent : Tqueue.t;  (* suspended signallers; priority over entry *)
  mutable switch_count : int;
  scratch : int;  (* deschedule word; doubles as the monitor's trace id *)
}

type cond = { mon : monitor; hq : Tqueue.t; cid : int }

(* Condition trace ids are negative so they can never collide with the
   memory addresses that identify monitors (and any other traced object)
   without spending a machine effect on allocation.  They come from the
   machine ([Probe.fresh_trace_id]) rather than a process-global counter,
   so the ids appearing in traces — and in conformance reports — depend
   only on the run, not on how many runs this process (or a sibling
   domain) executed before it. *)

let atomically f = ignore (Ops.mem_emit M.M_none (fun _ -> f (); None))

(* All events below are emitted with {!M.Probe.emit} from inside the
   atomic thunks: they cost no cycles and add no scheduling points, so
   step counts are identical to the un-instrumented version. *)
let emit = M.Probe.emit

let monitor () =
  let scratch = Ops.alloc 1 in
  (* The scratch word is only a deschedule target; the monitor itself is
     the lock, identified by the scratch address. *)
  M.Probe.register_word scratch M.W_atomic
    (Printf.sprintf "monitor#%d.scratch" scratch);
  M.Probe.register_lock scratch (Printf.sprintf "monitor#%d" scratch);
  {
    holder = None;
    entry = Tqueue.create ();
    urgent = Tqueue.create ();
    switch_count = 0;
    scratch;
  }

let condition mon =
  let cid = M.Probe.fresh_trace_id () in
  M.Probe.register_lock cid (Printf.sprintf "hcond#%d" (-cid));
  { mon; hq = Tqueue.create (); cid }

(* Ownership is transferred, never contended: a thread woken from the
   entry, urgent or condition queue already holds the monitor. *)
let enter mon =
  let self = Ops.self () in
  let got = ref false in
  atomically (fun () ->
      M.Probe.touch mon.scratch;
      match mon.holder with
      | None ->
        mon.holder <- Some self;
        M.Probe.lock_acquired mon.scratch;
        emit (Events.acquire ~self ~m:mon.scratch);
        got := true
      | Some _ ->
        M.Probe.lock_attempted mon.scratch;
        Tqueue.push mon.entry self);
  if not !got then begin
    M.Probe.will_block mon.scratch;
    Ops.deschedule_and_clear mon.scratch
  end

(* Pass the monitor to a suspended signaller first, then to an entering
   thread, else free it.  Returns the thread to ready, if any.  The
   recipient's Acquire commits in the same instruction as the donor's
   Release/Enqueue — the donor's event has already set the abstract mutex
   to NIL, so the handoff itself conforms. *)
let pass_on mon =
  let grant t =
    mon.holder <- Some t;
    M.Probe.lock_acquired ~tid:t mon.scratch;
    emit (Events.acquire ~self:t ~m:mon.scratch);
    Some t
  in
  match Tqueue.pop mon.urgent with
  | Some u -> grant u
  | None -> (
    match Tqueue.pop mon.entry with
    | Some e -> grant e
    | None ->
      mon.holder <- None;
      None)

let exit mon =
  let next = ref None in
  atomically (fun () ->
      M.Probe.touch mon.scratch;
      (match M.Probe.self () with
      | Some self -> emit (Events.release ~self ~m:mon.scratch)
      | None -> ());
      M.Probe.lock_released mon.scratch;
      next := pass_on mon);
  match !next with
  | Some t ->
    M.Probe.handoff ~obj:mon.scratch t;
    Ops.ready t
  | None -> ()

let with_monitor mon f =
  enter mon;
  Fun.protect ~finally:(fun () -> exit mon) f

let wait c =
  let self = Ops.self () in
  let next = ref None in
  atomically (fun () ->
      M.Probe.touch c.mon.scratch;
      M.Probe.touch c.cid;
      Tqueue.push c.hq self;
      emit (Events.enqueue ~proc:"Wait" ~self ~m:c.mon.scratch ~c:c.cid);
      M.Probe.lock_released c.mon.scratch;
      next := pass_on c.mon);
  (match !next with
  | Some t ->
    M.Probe.handoff ~obj:c.mon.scratch t;
    Ops.ready t
  | None -> ());
  M.Probe.will_block c.cid;
  Ops.deschedule_and_clear c.mon.scratch
(* On return the signaller has handed us the monitor: predicate intact. *)

(* The deliberate non-conformance lives here.  Hoare signal hands the
   monitor straight to the waiter: the waiter's Resume commits while the
   abstract mutex still belongs to the signaller, so its [WHEN (m = NIL)]
   fails — the checker reports exactly one violation per effective
   signal.  (The Signal event itself conforms: it removes one waiter.) *)
let do_signal c =
  let self = Ops.self () in
  let woke = ref None in
  atomically (fun () ->
      M.Probe.touch c.mon.scratch;
      M.Probe.touch c.cid;
      match Tqueue.pop c.hq with
      | Some w ->
        (* Hand over the monitor and step aside onto the urgent queue. *)
        c.mon.holder <- Some w;
        M.Probe.lock_released c.mon.scratch;
        M.Probe.lock_acquired ~tid:w c.mon.scratch;
        Tqueue.push c.mon.urgent self;
        c.mon.switch_count <- c.mon.switch_count + 2;
        emit (Events.signal ~self ~c:c.cid ~removed:[ w ]);
        emit (Events.resume ~self:w ~m:c.mon.scratch ~c:c.cid);
        woke := Some w
      | None -> emit (Events.signal ~self ~c:c.cid ~removed:[]));
  match !woke with
  | Some w ->
    Ops.incr_counter "hoare.switches";
    M.Probe.handoff ~obj:c.cid w;
    Ops.ready w;
    (* The signaller parks on the urgent queue waiting for the monitor,
       whose owner is now [w] — exactly the hand-off edge E8 charges. *)
    M.Probe.will_block c.mon.scratch;
    Ops.deschedule_and_clear c.mon.scratch;
    true
  | None -> false

let signal c = ignore (do_signal c)

(* Hoare (1974) has no broadcast; the classical encoding is to signal
   until the queue drains.  Each round forces the usual pair of context
   switches, which is precisely the cost E8 charges this semantics. *)
let broadcast c =
  while do_signal c do
    ()
  done

let switches mon = mon.switch_count
