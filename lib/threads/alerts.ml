module Tid = Threads_util.Tid
module Ops = Firefly.Machine.Ops
module Probe = Firefly.Machine.Probe

type t = {
  mutable pending : Tid.Set.t;
  cancels : (Tid.t, unit -> unit) Hashtbl.t;
  woken : (Tid.t, unit) Hashtbl.t;
  sent : (Tid.t, int) Hashtbl.t;
      (* cycle timestamp of the (latest) Alert per target, for the
         delivery-latency histogram *)
}

let create () =
  {
    pending = Tid.Set.empty;
    cancels = Hashtbl.create 8;
    woken = Hashtbl.create 8;
    sent = Hashtbl.create 8;
  }

(* Delivery = the alertee's Raises / TestAlert-true action consuming the
   pending flag; sampled from the cycle the Alert linearized. *)
let note_delivered t tid =
  match Hashtbl.find_opt t.sent tid with
  | Some t0 ->
    Hashtbl.remove t.sent tid;
    Probe.counter "alerts.delivered" 1;
    Probe.sample "alerts.delivery_cycles" (Probe.now () - t0)
  | None -> ()

let alert t ~lock ~self ~target =
  Spinlock.acquire ~obs:"alert" lock;
  ignore
    (Ops.mem_emit Firefly.Machine.M_none (fun _ ->
         t.pending <- Tid.Set.add target t.pending;
         Probe.counter "alerts.sent" 1;
         Hashtbl.replace t.sent target (Probe.now ());
         Some (Events.alert ~self ~target)));
  (match Hashtbl.find_opt t.cancels target with
  | Some cancel ->
    Hashtbl.remove t.cancels target;
    Hashtbl.replace t.woken target ();
    cancel ()
  | None -> ());
  Spinlock.release lock

let test_alert t ~self =
  let was = ref false in
  ignore
    (Ops.mem_emit Firefly.Machine.M_none (fun _ ->
         was := Tid.Set.mem self t.pending;
         t.pending <- Tid.Set.remove self t.pending;
         if !was then note_delivered t self;
         Some (Events.test_alert ~self ~result:!was)));
  !was

let pending t tid = Tid.Set.mem tid t.pending

let consume_pending t tid =
  t.pending <- Tid.Set.remove tid t.pending;
  note_delivered t tid

let register t tid cancel = Hashtbl.replace t.cancels tid cancel
let unregister t tid = Hashtbl.remove t.cancels tid

let take_woken_by_alert t tid =
  if Hashtbl.mem t.woken tid then begin
    Hashtbl.remove t.woken tid;
    true
  end
  else false
