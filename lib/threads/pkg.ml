type t = { lock : Spinlock.t; alerts : Alerts.t; fast_path : bool }

let create ?(fast_path = true) () =
  { lock = Spinlock.create ~name:"nub-lock" (); alerts = Alerts.create (); fast_path }
