(** Mutexes, as implemented on the Firefly (paper, Implementation):
    a pair (Lock-bit, Queue).

    The user-space fast path is the in-line code the paper credits with the
    5-instruction uncontended LOCK clause: Acquire is one test-and-set
    (plus a Nub call if the bit was set); Release clears the bit and calls
    the Nub only if the queue is non-empty (observed through the [waiters]
    word maintained under the spin-lock).

    The Nub slow path follows the paper exactly: enqueue the caller,
    re-test the bit, deschedule if still held, otherwise dequeue and retry
    the whole Acquire from the test-and-set.

    The implementation does not record which thread holds the mutex — the
    paper points this out as a place where the specification (Mutex =
    Thread) abstracts away from the representation. *)

type t

(** [create pkg] — allocates the lock bit and waiter count. *)
val create : Pkg.t -> t

(** The identity used in trace events (the lock-bit address). *)
val id : t -> int

(** Acquire(m): emits the Acquire event at the successful test-and-set. *)
val acquire : t -> unit

(** Release(m): emits the Release event atomically with the bit clear.
    REQUIRES m = SELF is the caller's obligation (the implementation
    cannot check it — it does not know the holder). *)
val release : t -> unit

(** [with_lock m f] is the LOCK m DO f() END sugar: Acquire, then f,
    with Release guaranteed on both normal and exceptional exit. *)
val with_lock : t -> (unit -> 'a) -> 'a

(** {1 Internal entry points for the condition-variable implementation}

    Wait's unlock/relock must not emit Acquire/Release events — their
    visible effects belong to Wait's own Enqueue/Resume actions. *)

(** [lock_internal m ~event] — acquire, emitting [event ()] (if any)
    atomically with the winning test-and-set. *)
val lock_internal : t -> event:(unit -> Spec_trace.event option) -> unit

(** [unlock_internal m ~event] — release, emitting [event ()] atomically
    with the bit clear. *)
val unlock_internal : t -> event:(unit -> Spec_trace.event option) -> unit
