module Ops = Firefly.Machine.Ops
module M = Firefly.Machine
module Probe = Firefly.Machine.Probe

type t = {
  pkg : Pkg.t;
  bit : int;  (* 0 = available, 1 = unavailable *)
  waiters : int;
  q : Tqueue.t;
}

let create pkg =
  let bit = Ops.alloc 1 in
  let waiters = Ops.alloc 1 in
  Probe.register_word bit M.W_sem (Printf.sprintf "sem#%d" bit);
  Probe.register_word waiters M.W_atomic
    (Printf.sprintf "sem#%d.waiters" bit);
  { pkg; bit; waiters; q = Tqueue.create () }

let id s = s.bit
let name s = Printf.sprintf "sem#%d" s.bit

(* Unlike a mutex there is no "held" span: V need not come from the thread
   that did the P, so a held region has no single track to live on.  The
   per-object signal is the P-block span/histogram instead. *)

(* Nub slow path shared by P and AlertP.  Returns [`Retry] after a wakeup
   by V, [`Alerted] when the sleep was cancelled (or pre-empted) by an
   alert, [`Acquired] when the bit turned out to be free on re-test. *)
let nub_p s ~alertable =
  let n = name s in
  Ops.incr_counter "nub.acquire";
  Probe.counter (n ^ ".nub_acquires") 1;
  let self = Ops.self () in
  Spinlock.acquire ~obs:n s.pkg.lock;
  if alertable && Alerts.pending s.pkg.alerts self then begin
    Spinlock.release s.pkg.lock;
    `Alerted
  end
  else begin
    Tqueue.push s.q self;
    Ops.write s.waiters (Tqueue.length s.q);
    Probe.gauge_max (n ^ ".queue_hwm") (Tqueue.length s.q);
    if Ops.read s.bit <> 0 then begin
      if alertable then
        Alerts.register s.pkg.alerts self (fun () ->
            ignore (Tqueue.remove s.q self);
            Probe.handoff ~obj:s.bit self;
            Ops.ready self);
      Probe.counter (n ^ ".blocks") 1;
      Probe.span_begin ~cat:"sem" ("P-block " ^ n);
      Probe.will_block s.bit;
      Ops.deschedule_and_clear (Spinlock.addr s.pkg.lock);
      (match Probe.span_end ("P-block " ^ n) with
      | Some d -> Probe.sample (n ^ ".p_block_cycles") d
      | None -> ());
      if alertable && Alerts.take_woken_by_alert s.pkg.alerts self then
        `Alerted
      else `Retry
    end
    else begin
      ignore (Tqueue.remove s.q self);
      Ops.write s.waiters (Tqueue.length s.q);
      Spinlock.release s.pkg.lock;
      `Retry
    end
  end

let try_tas s ~fast ~event =
  let n = name s in
  Ops.mem_emit (M.M_tas s.bit) (fun old ->
      if old = 0 then begin
        Probe.counter (n ^ ".acquires") 1;
        Probe.counter (n ^ ".fast_path_hits") (if fast then 1 else 0);
        event ()
      end
      else None)
  = 0

let rec p_loop s ~first ~alertable ~event =
  if s.pkg.fast_path then begin
    if not (try_tas s ~fast:first ~event) then
      match nub_p s ~alertable with
      | `Alerted -> `Alerted
      | `Retry | `Acquired -> p_loop s ~first:false ~alertable ~event
    else `Acquired
  end
  else begin
    (* Ablation: always through the Nub. *)
    let n = name s in
    Ops.incr_counter "nub.acquire";
    Probe.counter (n ^ ".nub_acquires") 1;
    Spinlock.acquire ~obs:n s.pkg.lock;
    let got = try_tas s ~fast:false ~event in
    if got then begin
      Spinlock.release s.pkg.lock;
      `Acquired
    end
    else begin
      let self = Ops.self () in
      if alertable && Alerts.pending s.pkg.alerts self then begin
        Spinlock.release s.pkg.lock;
        `Alerted
      end
      else begin
        Tqueue.push s.q self;
        Ops.write s.waiters (Tqueue.length s.q);
        Probe.gauge_max (n ^ ".queue_hwm") (Tqueue.length s.q);
        if alertable then
          Alerts.register s.pkg.alerts self (fun () ->
              ignore (Tqueue.remove s.q self);
              Probe.handoff ~obj:s.bit self;
              Ops.ready self);
        Probe.counter (n ^ ".blocks") 1;
        Probe.span_begin ~cat:"sem" ("P-block " ^ n);
        Probe.will_block s.bit;
        Ops.deschedule_and_clear (Spinlock.addr s.pkg.lock);
        (match Probe.span_end ("P-block " ^ n) with
        | Some d -> Probe.sample (n ^ ".p_block_cycles") d
        | None -> ());
        if alertable && Alerts.take_woken_by_alert s.pkg.alerts self then
          `Alerted
        else p_loop s ~first:false ~alertable ~event
      end
    end
  end

let p s =
  let self = Ops.self () in
  match
    p_loop s ~first:true ~alertable:false ~event:(fun () ->
        Some (Events.p ~self ~s:s.bit))
  with
  | `Acquired -> ()
  | `Alerted -> assert false

let v s =
  let n = name s in
  let self = Ops.self () in
  ignore
    (Ops.mem_emit (M.M_clear s.bit) (fun _ ->
         Probe.counter (n ^ ".releases") 1;
         Some (Events.v ~self ~s:s.bit)));
  if (not s.pkg.fast_path) || Ops.read s.waiters <> 0 then begin
    Ops.incr_counter "nub.release";
    Probe.counter (n ^ ".nub_releases") 1;
    Spinlock.acquire ~obs:n s.pkg.lock;
    (match Tqueue.pop s.q with
    | Some t ->
      Ops.write s.waiters (Tqueue.length s.q);
      Alerts.unregister s.pkg.alerts t;
      Probe.handoff ~obj:s.bit t;
      Ops.ready t
    | None -> ());
    Spinlock.release s.pkg.lock
  end

(* TimedP: P that gives up after [timeout] simulated cycles.  One timer is
   armed for the whole operation; after every wakeup we test whether it
   was the timer (rather than a V) that woke us.  Expiry self-services
   under the spin-lock: dequeue ourselves — a stale queue entry would let
   a later V ready a finished thread — and, if the bit is free with
   sleepers still queued, donate the wakeup we may have absorbed to the
   next waiter, so a V that raced with our expiry is never lost. *)
let timed_p s ~timeout =
  let n = name s in
  let self = Ops.self () in
  let event () = Some (Events.timed_p ~self ~s:s.bit ~timed_out:false) in
  Probe.set_timeout ~cycles:timeout;
  let expire () =
    Spinlock.acquire ~obs:n s.pkg.lock;
    ignore (Tqueue.remove s.q self);
    Ops.write s.waiters (Tqueue.length s.q);
    if Ops.read s.bit = 0 then (
      match Tqueue.pop s.q with
      | Some t ->
        Ops.write s.waiters (Tqueue.length s.q);
        Alerts.unregister s.pkg.alerts t;
        Probe.handoff ~obj:s.bit t;
        Ops.ready t
      | None -> ());
    ignore
      (Ops.mem_emit M.M_none (fun _ ->
           Some (Events.timed_p ~self ~s:s.bit ~timed_out:true)));
    Spinlock.release s.pkg.lock;
    Probe.cancel_timeout ();
    Probe.counter (n ^ ".timeouts") 1;
    raise Sync_intf.Timed_out
  in
  let rec loop ~first =
    if try_tas s ~fast:first ~event then Probe.cancel_timeout ()
    else if Probe.take_timeout_fired () then expire ()
    else begin
      (match nub_p s ~alertable:false with
      | `Alerted -> assert false (* non-alertable *)
      | `Retry | `Acquired -> ());
      if Probe.take_timeout_fired () then expire ();
      loop ~first:false
    end
  in
  Probe.counter (n ^ ".timed_ps") 1;
  loop ~first:true

let alert_p s =
  let self = Ops.self () in
  match
    p_loop s ~first:true ~alertable:true ~event:(fun () ->
        Some (Events.alert_p ~self ~s:s.bit ~alerted:false))
  with
  | `Acquired -> ()
  | `Alerted ->
    (* Consume the pending alert atomically with the Raises event. *)
    ignore
      (Ops.mem_emit M.M_none (fun _ ->
           Alerts.consume_pending s.pkg.alerts self;
           Some (Events.alert_p ~self ~s:s.bit ~alerted:true)));
    raise Sync_intf.Alerted
