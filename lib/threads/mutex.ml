module Ops = Firefly.Machine.Ops
module M = Firefly.Machine
module Probe = Firefly.Machine.Probe

type t = {
  pkg : Pkg.t;
  bit : int;  (* the Lock-bit *)
  waiters : int;  (* |queue|, maintained under the spin-lock *)
  q : Tqueue.t;
}

let create pkg =
  let bit = Ops.alloc 1 in
  let waiters = Ops.alloc 1 in
  Probe.register_word bit M.W_lock (Printf.sprintf "mutex#%d" bit);
  (* Read racily by the release fast path; the paper sanctions this. *)
  Probe.register_word waiters M.W_atomic
    (Printf.sprintf "mutex#%d.waiters" bit);
  { pkg; bit; waiters; q = Tqueue.create () }

let id m = m.bit
let name m = Printf.sprintf "mutex#%d" m.bit

(* Record a successful acquisition: per-object counters and the start of
   the "held" span whose duration feeds the hold-time histogram.  Runs
   inside the mem_emit thunk, atomically with the winning test-and-set. *)
let on_acquired m ~fast =
  let n = name m in
  Probe.lock_acquired m.bit;
  Probe.counter (n ^ ".acquires") 1;
  Probe.counter (n ^ ".fast_path_hits") (if fast then 1 else 0);
  Probe.span_begin ~cat:"mutex" ("held " ^ n)

(* Nub subroutine for Acquire: under the spin-lock, enqueue the caller and
   re-test the Lock-bit.  Still held: deschedule (releasing the spin-lock
   atomically); the waker leaves us dequeued.  Free: dequeue ourselves,
   release the spin-lock.  Either way the caller retries from the
   test-and-set. *)
let nub_acquire m =
  let n = name m in
  Ops.incr_counter "nub.acquire";
  Probe.counter (n ^ ".nub_acquires") 1;
  let self = Ops.self () in
  Spinlock.acquire ~obs:n m.pkg.lock;
  Tqueue.push m.q self;
  Ops.write m.waiters (Tqueue.length m.q);
  Probe.gauge_max (n ^ ".queue_hwm") (Tqueue.length m.q);
  if Ops.read m.bit <> 0 then begin
    Probe.counter (n ^ ".blocks") 1;
    Probe.span_begin ~cat:"mutex" ("wait " ^ n);
    Probe.will_block m.bit;
    Ops.deschedule_and_clear (Spinlock.addr m.pkg.lock);
    match Probe.span_end ("wait " ^ n) with
    | Some d -> Probe.sample (n ^ ".wait_cycles") d
    | None -> ()
  end
  else begin
    ignore (Tqueue.remove m.q self);
    Ops.write m.waiters (Tqueue.length m.q);
    Spinlock.release m.pkg.lock
  end

(* Nub subroutine for Release: take one queued thread (if any) and ready
   it. *)
let nub_release m =
  Ops.incr_counter "nub.release";
  Probe.counter (name m ^ ".nub_releases") 1;
  Spinlock.acquire ~obs:(name m) m.pkg.lock;
  (match Tqueue.pop m.q with
  | Some t ->
    Ops.write m.waiters (Tqueue.length m.q);
    Probe.handoff ~obj:m.bit t;
    Ops.ready t
  | None -> ());
  Spinlock.release m.pkg.lock

let rec lock_loop m ~first ~event =
  if m.pkg.fast_path then begin
    let old =
      Ops.mem_emit (M.M_tas m.bit) (fun old ->
          if old = 0 then begin
            on_acquired m ~fast:first;
            event ()
          end
          else None)
    in
    if old <> 0 then begin
      nub_acquire m;
      lock_loop m ~first:false ~event
    end
  end
  else begin
    (* Ablation: every Acquire goes through the Nub. *)
    let n = name m in
    Ops.incr_counter "nub.acquire";
    Probe.counter (n ^ ".nub_acquires") 1;
    Spinlock.acquire ~obs:n m.pkg.lock;
    let old =
      Ops.mem_emit (M.M_tas m.bit) (fun old ->
          if old = 0 then begin
            on_acquired m ~fast:false;
            event ()
          end
          else None)
    in
    if old = 0 then Spinlock.release m.pkg.lock
    else begin
      let self = Ops.self () in
      Tqueue.push m.q self;
      Ops.write m.waiters (Tqueue.length m.q);
      Probe.gauge_max (n ^ ".queue_hwm") (Tqueue.length m.q);
      Probe.counter (n ^ ".blocks") 1;
      Probe.span_begin ~cat:"mutex" ("wait " ^ n);
      Probe.will_block m.bit;
      Ops.deschedule_and_clear (Spinlock.addr m.pkg.lock);
      (match Probe.span_end ("wait " ^ n) with
      | Some d -> Probe.sample (n ^ ".wait_cycles") d
      | None -> ());
      lock_loop m ~first:false ~event
    end
  end

let lock_internal m ~event = lock_loop m ~first:true ~event

let unlock_internal m ~event =
  let n = name m in
  ignore
    (Ops.mem_emit (M.M_clear m.bit) (fun _ ->
         Probe.lock_released m.bit;
         Probe.counter (n ^ ".releases") 1;
         (match Probe.span_end ("held " ^ n) with
         | Some d -> Probe.sample (n ^ ".hold_cycles") d
         | None -> ());
         event ()));
  if m.pkg.fast_path then begin
    if Ops.read m.waiters <> 0 then nub_release m
  end
  else nub_release m

let acquire m =
  let self = Ops.self () in
  lock_internal m ~event:(fun () -> Some (Events.acquire ~self ~m:m.bit))

let release m =
  let self = Ops.self () in
  unlock_internal m ~event:(fun () -> Some (Events.release ~self ~m:m.bit))

let with_lock m f =
  acquire m;
  Fun.protect ~finally:(fun () -> release m) f
