(** The client-facing signature of the Threads synchronization interface.

    Every backend — the Firefly simulation ({!Api.Sim}), the cooperative
    uniprocessor version ({!Uniproc}), and the real-parallelism OCaml 5
    implementation ([threads_multicore]) — provides this signature, so
    client programs (examples, workloads, tests) are backend-generic:
    exactly the insulation the paper says the specification gives its
    clients. *)

(** The exception of the alerting facility. *)
exception Alerted

(** The exception of the timed-wait facility: raised by {!SYNC.timed_wait}
    and {!SYNC.timed_p} when the timeout expires before the operation can
    complete. *)
exception Timed_out

module type SYNC = sig
  type mutex
  type condition
  type semaphore
  type thread

  (** {1 Object creation} *)

  val mutex : unit -> mutex
  val condition : unit -> condition
  val semaphore : unit -> semaphore

  (** {1 Mutual exclusion} *)

  val acquire : mutex -> unit
  val release : mutex -> unit

  (** [with_lock m f] is Modula-2+'s [LOCK m DO f() END]: Release runs on
      both normal and exceptional exit. *)
  val with_lock : mutex -> (unit -> 'a) -> 'a

  (** {1 Condition variables} *)

  val wait : mutex -> condition -> unit
  val signal : condition -> unit
  val broadcast : condition -> unit

  (** {1 Semaphores} *)

  val p : semaphore -> unit
  val v : semaphore -> unit

  (** {1 Timed waits}

      Spec clauses TimedWait (= COMPOSITION OF Enqueue; TimedResume) and
      TimedP: either complete exactly like the untimed operation, or
      raise {!Timed_out} — a timed-out [timed_wait] still re-acquires the
      mutex first, and a timed-out [timed_p] leaves the semaphore
      unchanged.  [timeout] is in simulated cycles on machine-hosted
      backends and host nanoseconds elsewhere. *)

  (** @raise Timed_out after [timeout] if not woken and resumed first. *)
  val timed_wait : mutex -> condition -> timeout:int -> unit

  (** @raise Timed_out after [timeout] if the semaphore stays unavailable. *)
  val timed_p : semaphore -> timeout:int -> unit

  (** {1 Alerting} *)

  val alert : thread -> unit
  val test_alert : unit -> bool

  (** @raise Alerted instead of returning when alerted. *)
  val alert_wait : mutex -> condition -> unit

  (** @raise Alerted instead of returning when alerted. *)
  val alert_p : semaphore -> unit

  (** {1 Threads} *)

  val self : unit -> thread
  val fork : (unit -> unit) -> thread
  val join : thread -> unit
  val yield : unit -> unit
end

(** A backend packaged with its runner. *)
module type BACKEND = sig
  module Make (_ : sig end) : SYNC
end
