module Ops = Firefly.Machine.Ops
module M = Firefly.Machine
module Probe = Firefly.Machine.Probe
module Tid = Threads_util.Tid

type t = {
  pkg : Pkg.t;
  evc : Firefly.Eventcount.t;
  interest : int;
      (* addr; waiters faa it up before Enqueue and down after leaving, so
         the user-space Signal/Broadcast skip (read = 0) is conservative *)
  q : Tqueue.t;
  window : (Tid.t, unit) Hashtbl.t;
      (* threads between their Enqueue linearization and Block's verdict *)
  departing : (Tid.t, unit) Hashtbl.t;
      (* threads pulled out by an alert but whose AlertResume has not yet
         linearized: still abstractly members of c, so Broadcast must list
         them in its removal to establish c_post = {} *)
}

(* Forward reference to [signal], for the chaos hook registered in
   [create] (the definition order puts signal after create). *)
let chaos_signal : (t -> unit) ref = ref (fun _ -> ())

let create pkg =
  let evc = Firefly.Eventcount.create () in
  let interest = Ops.alloc 1 in
  (* interest is faa'd/read outside the spin-lock by design (the
     conservative nub-skip test); the eventcount's advance-under-lock /
     racy-read-at-enqueue is the paper's wakeup-waiting cover. *)
  Probe.register_word interest M.W_atomic
    (Printf.sprintf "cond#%d.interest" interest);
  (* The interest word doubles as the condition's object id; name it so
     profile reports say "cond#N" rather than the word's registry name. *)
  Probe.register_lock interest (Printf.sprintf "cond#%d" interest);
  Probe.register_word
    (Firefly.Eventcount.value_addr evc)
    M.W_eventcount
    (Printf.sprintf "cond#%d.evc" interest);
  let c =
    {
      pkg;
      evc;
      interest;
      q = Tqueue.create ();
      window = Hashtbl.create 8;
      departing = Hashtbl.create 8;
    }
  in
  (* Chaos hook: a spurious wakeup is a package-level Signal — the spec's
     subset ENSURES permits waking nobody-in-particular — never a raw
     machine wake, which could violate Resume's WHEN.  [signal] is defined
     below; the hook closes over a forward reference. *)
  Probe.register_chaos
    (Printf.sprintf "cond#%d.spurious" interest)
    (fun k -> for _ = 1 to max 1 k do !chaos_signal c done);
  c

let id c = c.interest
let name c = Printf.sprintf "cond#%d" c.interest
let queued c = Tqueue.length c.q

type wake = Stale | Alerted_now | Woken

(* The Nub's Block(c, i): under the spin-lock, compare i with the current
   eventcount.  Unequal: a Signal/Broadcast intervened since our Enqueue —
   return at once (the wakeup-waiting race cover).  Equal: sleep on c's
   queue.  An alertable block that already has an alert pending departs
   immediately instead of sleeping. *)
let block ?timeout c i ~alertable =
  let n = name c in
  let self = Ops.self () in
  Spinlock.acquire ~obs:n c.pkg.lock;
  let cur = Firefly.Eventcount.read c.evc in
  if cur <> i then begin
    Hashtbl.remove c.window self;
    Spinlock.release c.pkg.lock;
    Probe.counter (n ^ ".stale_blocks") 1;
    Stale
  end
  else if alertable && Alerts.pending c.pkg.alerts self then begin
    Hashtbl.remove c.window self;
    Hashtbl.replace c.departing self ();
    Spinlock.release c.pkg.lock;
    Alerted_now
  end
  else begin
    Hashtbl.remove c.window self;
    Tqueue.push c.q self;
    Probe.counter (n ^ ".blocks") 1;
    Probe.gauge_max (n ^ ".queue_hwm") (Tqueue.length c.q);
    if alertable then
      Alerts.register c.pkg.alerts self (fun () ->
          (* Cancellation, run by Alert under the spin-lock. *)
          ignore (Tqueue.remove c.q self);
          Hashtbl.replace c.departing self ();
          Probe.handoff ~obj:(id c) self;
          Ops.ready self);
    (match timeout with
    | Some cycles -> Probe.set_timeout ~cycles
    | None -> ());
    Probe.will_block (id c);
    Ops.deschedule_and_clear (Spinlock.addr c.pkg.lock);
    Woken
  end

let wait_generic c m ~proc ~alertable =
  let n = name c in
  let self = Ops.self () in
  let t_start = Probe.now () in
  Probe.counter (n ^ ".waits") 1;
  Probe.span_begin ~cat:"cond" ("wait " ^ n);
  ignore (Ops.faa c.interest 1);
  (* Enqueue linearizes at the eventcount read: event emission, window
     entry and the read are one atomic instruction. *)
  let i =
    Ops.mem_emit
      (M.M_read (Firefly.Eventcount.value_addr c.evc))
      (fun _ ->
        Hashtbl.replace c.window self ();
        Some (Events.enqueue ~proc ~self ~m:(Mutex.id m) ~c:(id c)))
  in
  Mutex.unlock_internal m ~event:(fun () -> None);
  let wake = block c i ~alertable in
  (* The wakeup span ends here, before the re-acquire, so a thread's spans
     stay properly nested ("held" begins at the winning TAS below); the
     full Wait latency — enqueue to re-acquired — is sampled separately. *)
  (match Probe.span_end ("wait " ^ n) with
  | Some d -> Probe.sample (n ^ ".wakeup_cycles") d
  | None -> ());
  let raise_it =
    alertable
    && (wake = Alerted_now
       || (wake = Woken && Alerts.take_woken_by_alert c.pkg.alerts self)
       || Alerts.pending c.pkg.alerts self
          (* sampled once, here: an alert landing after this point is not
             honoured this time round — the implementation's
             non-determinism the paper's incident 2 legitimised *))
  in
  (* Re-acquire, linearizing Resume / AlertResume at the winning TAS. *)
  let cid = id c in
  (if alertable then
     Mutex.lock_internal m ~event:(fun () ->
         Hashtbl.remove c.departing self;
         if raise_it then Alerts.consume_pending c.pkg.alerts self;
         Some
           (Events.alert_resume ~self ~m:(Mutex.id m) ~c:cid
              ~alerted:raise_it))
   else
     Mutex.lock_internal m ~event:(fun () ->
         Some (Events.resume ~self ~m:(Mutex.id m) ~c:cid)));
  Probe.sample (n ^ ".wait_cycles") (Probe.now () - t_start);
  ignore (Ops.faa c.interest (-1));
  if raise_it then raise Sync_intf.Alerted

let wait c m = wait_generic c m ~proc:"Wait" ~alertable:false
let alert_wait c m = wait_generic c m ~proc:"AlertWait" ~alertable:true

(* TimedWait = Enqueue; TimedResume.  The timer lives host-side in the
   machine; the driver fires it between steps and wakes us.  On waking we
   self-service: under the spin-lock, try to pull ourselves off the queue.
   Winning means we really expired — mark [departing] (still abstractly a
   member of c until TimedResume linearizes, so a racing Broadcast lists
   us in its removal set) and raise once the mutex is back.  Losing the
   race means a Signal/Broadcast dequeued us concurrently: the expiry
   converts into a normal resume and the wakeup is not lost. *)
let timed_wait c m ~timeout =
  let n = name c in
  let self = Ops.self () in
  let t_start = Probe.now () in
  Probe.counter (n ^ ".timed_waits") 1;
  Probe.span_begin ~cat:"cond" ("wait " ^ n);
  ignore (Ops.faa c.interest 1);
  let i =
    Ops.mem_emit
      (M.M_read (Firefly.Eventcount.value_addr c.evc))
      (fun _ ->
        Hashtbl.replace c.window self ();
        Some
          (Events.enqueue ~proc:"TimedWait" ~self ~m:(Mutex.id m) ~c:(id c)))
  in
  Mutex.unlock_internal m ~event:(fun () -> None);
  let wake = block ~timeout c i ~alertable:false in
  (match Probe.span_end ("wait " ^ n) with
  | Some d -> Probe.sample (n ^ ".wakeup_cycles") d
  | None -> ());
  let timed_out =
    wake = Woken
    && Probe.take_timeout_fired ()
    && begin
         Spinlock.acquire ~obs:n c.pkg.lock;
         let still_queued = Tqueue.remove c.q self in
         if still_queued then Hashtbl.replace c.departing self ();
         Spinlock.release c.pkg.lock;
         still_queued
       end
  in
  Probe.cancel_timeout ();
  let cid = id c in
  Mutex.lock_internal m ~event:(fun () ->
      Hashtbl.remove c.departing self;
      Some (Events.timed_resume ~self ~m:(Mutex.id m) ~c:cid ~timed_out));
  Probe.sample (n ^ ".wait_cycles") (Probe.now () - t_start);
  ignore (Ops.faa c.interest (-1));
  if timed_out then begin
    Probe.counter (n ^ ".timeouts") 1;
    raise Sync_intf.Timed_out
  end

(* Signal and Broadcast: user code skips the Nub when nobody is (or is
   committing to be) waiting; otherwise, under the spin-lock, advance the
   eventcount — atomically computing and logging the removal set — and
   ready the dequeued threads. *)
let wake_some c ~take_all =
  let n = name c in
  let self = Ops.self () in
  Probe.counter (n ^ (if take_all then ".broadcasts" else ".signals")) 1;
  Probe.counter (n ^ ".wakeup_waiting_hits") 0;
  let event removed =
    if take_all then Events.broadcast ~self ~c:(id c) ~removed
    else Events.signal ~self ~c:(id c) ~removed
  in
  let skipped =
    c.pkg.fast_path
    && Ops.mem_emit (M.M_read c.interest) (fun v ->
           if v = 0 then Some (event []) else None)
       = 0
  in
  if skipped then Probe.counter (n ^ ".nub_skips") 1
  else begin
    Ops.incr_counter "nub.signal";
    let to_ready = ref [] in
    Spinlock.acquire ~obs:n c.pkg.lock;
    ignore
      (Ops.mem_emit
         (M.M_faa (Firefly.Eventcount.value_addr c.evc, 1))
         (fun _ ->
           let from_q =
             if take_all then Tqueue.pop_all c.q
             else match Tqueue.pop c.q with Some t -> [ t ] | None -> []
           in
           let grab tbl = Hashtbl.fold (fun t () acc -> t :: acc) tbl [] in
           let from_window = grab c.window in
           let from_departing = grab c.departing in
           Hashtbl.reset c.window;
           List.iter (Alerts.unregister c.pkg.alerts) from_q;
           to_ready := from_q;
           (* A non-empty window is exactly the paper's wakeup-waiting
              race: this Signal/Broadcast landed between another thread's
              Enqueue linearization and its Block verdict. *)
           if from_window <> [] then
             Probe.counter (n ^ ".wakeup_waiting_hits")
               (List.length from_window);
           Some (event (from_q @ from_window @ from_departing))));
    List.iter
      (fun t ->
        Probe.handoff ~obj:(id c) t;
        Ops.ready t)
      !to_ready;
    Spinlock.release c.pkg.lock
  end

let signal c = wake_some c ~take_all:false
let broadcast c = wake_some c ~take_all:true
let () = chaos_signal := signal
