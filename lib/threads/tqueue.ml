module Tid = Threads_util.Tid

(* Two-list ("banker's") queue: [front] holds the head in order, [rear]
   holds the tail reversed.  Push and pop are O(1) amortized; the old
   head-first list made every push O(n). *)
type t = { mutable front : Tid.t list; mutable rear : Tid.t list }

let create () = { front = []; rear = [] }
let is_empty q = q.front = [] && q.rear = []
let length q = List.length q.front + List.length q.rear
let push q t = q.rear <- t :: q.rear

let pop q =
  (match q.front with
  | [] -> q.front <- List.rev q.rear; q.rear <- []
  | _ :: _ -> ());
  match q.front with
  | [] -> None
  | x :: rest ->
    q.front <- rest;
    Some x

let elements q = q.front @ List.rev q.rear

let pop_all q =
  let all = elements q in
  q.front <- [];
  q.rear <- [];
  all

let remove q t =
  let present = List.mem t q.front || List.mem t q.rear in
  if present then begin
    let drop = List.filter (fun x -> not (Tid.equal x t)) in
    q.front <- drop q.front;
    q.rear <- drop q.rear
  end;
  present

let mem q t = List.mem t q.front || List.mem t q.rear
