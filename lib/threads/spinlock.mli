(** The Nub's primitive mutual-exclusion mechanism: a globally shared bit
    acquired by busy-waiting in a test-and-set loop and released by
    clearing the bit (paper, Implementation section).

    Nub subroutines bracket their visible actions with [acquire]/[release];
    the deschedule path releases it atomically via
    {!Firefly.Machine.Ops.deschedule_and_clear}. *)

type t

(** [create ?name ()] — allocates the lock bit (thread context) and
    registers it as a [W_lock] word under [name] for the analyzers. *)
val create : ?name:string -> unit -> t

(** [acquire ?obs l] busy-waits until the bit is won.  Spin iterations are
    counted under the machine counter ["spin.iterations"]; with [?obs]
    set to an object name (e.g. ["mutex#2"]), contended acquisitions are
    additionally recorded in the instrument registry as
    ["<obs>.spin_iters"] / ["<obs>.spin_cycles"] counters and a
    ["spin <obs>"] span (zero simulated cost). *)
val acquire : ?obs:string -> t -> unit

val release : t -> unit

(** The lock-bit address, for [deschedule_and_clear]. *)
val addr : t -> int
