module Ops = Firefly.Machine.Ops
module Probe = Firefly.Machine.Probe

type t = { bit : int }

let create ?(name = "spin-lock") () =
  let bit = Ops.alloc 1 in
  Probe.register_word bit Firefly.Machine.W_lock name;
  { bit }

(* [?obs] attributes contended spinning to the synchronization object
   whose Nub subroutine took the spin-lock: per-object spin-iteration and
   spin-cycle counters, plus a "spin <obj>" span when at least one TAS
   failed.  The probe calls are not machine effects, so the instruction
   sequence (and hence the schedule) is exactly that of the bare loop. *)
let acquire ?obs l =
  let t0 = Probe.now () in
  let rec go ~spun =
    if Ops.tas l.bit then begin
      Ops.incr_counter "spin.iterations";
      (match obs with
      | Some n -> Probe.counter (n ^ ".spin_iters") 1
      | None -> ());
      go ~spun:true
    end
    else begin
      Probe.lock_acquired l.bit;
      if spun then
        match obs with
        | Some n ->
          let t1 = Probe.now () in
          Probe.counter (n ^ ".spin_cycles") (t1 - t0);
          Probe.span_add ~cat:"spin" ("spin " ^ n) ~t0 ~t1
        | None -> ()
    end
  in
  go ~spun:false

let release l =
  Probe.lock_released l.bit;
  Ops.clear l.bit
let addr l = l.bit
