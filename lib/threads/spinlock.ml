module Ops = Firefly.Machine.Ops
module Probe = Firefly.Machine.Probe

type t = { bit : int }

(* Bounded exponential backoff between failed TASes, active only while a
   chaos run has injection enabled ([Probe.chaos_active] is a host-side
   test, so disabled runs execute the bare loop instruction-for-
   instruction and stay schedule-identical to pre-backoff behavior).
   Under an injected contention burst this keeps the bus from being
   saturated by retry TASes. *)
let backoff_start = 2
let backoff_cap = 64

(* [?obs] attributes contended spinning to the synchronization object
   whose Nub subroutine took the spin-lock: per-object spin-iteration and
   spin-cycle counters, plus a "spin <obj>" span when at least one TAS
   failed.  The probe calls are not machine effects, so the instruction
   sequence (and hence the schedule) is exactly that of the bare loop. *)
let acquire ?obs l =
  let t0 = Probe.now () in
  let rec go ~spun ~backoff =
    if Ops.tas l.bit then begin
      Ops.incr_counter "spin.iterations";
      (match obs with
      | Some n -> Probe.counter (n ^ ".spin_iters") 1
      | None -> ());
      if Probe.chaos_active () then begin
        Ops.tick backoff;
        go ~spun:true ~backoff:(min (backoff * 2) backoff_cap)
      end
      else go ~spun:true ~backoff
    end
    else begin
      Probe.lock_acquired l.bit;
      if spun then
        match obs with
        | Some n ->
          let t1 = Probe.now () in
          Probe.counter (n ^ ".spin_cycles") (t1 - t0);
          Probe.span_add ~cat:"spin" ("spin " ^ n) ~t0 ~t1
        | None -> ()
    end
  in
  go ~spun:false ~backoff:backoff_start

let release l =
  Probe.lock_released l.bit;
  Ops.clear l.bit

let addr l = l.bit

let create ?(name = "spin-lock") () =
  let bit = Ops.alloc 1 in
  Probe.register_word bit Firefly.Machine.W_lock name;
  let l = { bit } in
  (* Chaos hook: a TAS contention burst is [n] acquire/release pairs from
     an injector thread — real contention through the real instructions,
     so lockset/happens-before analyses still see a well-formed history. *)
  Probe.register_chaos (name ^ ".contend") (fun n ->
      for _ = 1 to max 1 n do
        acquire l;
        release l
      done);
  l
