(** Hoare-style monitors (Hoare 1974) — the semantics the Threads design
    deliberately loosened.

    Signal transfers the monitor directly to one waiting thread; the
    signaller suspends on the urgent queue and resumes when the waiter
    leaves.  Consequently the waiter's predicate is {e guaranteed} still
    true on return from [wait] — no re-check loop — at the cost of extra
    mandatory context switches on every signal.  By contrast the Threads
    (Mesa-style) Wait is "only a hint": cheaper signals, but waiters must
    re-evaluate.  Experiment E8 measures the trade on a producer/consumer
    workload.

    Implemented in the cooperative style (single-instruction atomic
    actions).  Every visible action emits a {!Spec_trace} event via
    {!Firefly.Machine.Probe.emit} — zero cycles, zero extra scheduling
    points — so runs can be replayed against the Threads specification.
    The monitor handoff makes this a {e deliberately} non-conforming
    implementation of that interface: the waiter's [Resume] commits while
    the abstract mutex still belongs to the signaller, violating Resume's
    [WHEN (m = NIL)] exactly once per effective signal ([repro diff]
    surfaces this; tests pin it). *)

type monitor
type cond

val monitor : unit -> monitor
val condition : monitor -> cond

val enter : monitor -> unit
val exit : monitor -> unit
val with_monitor : monitor -> (unit -> 'a) -> 'a

(** [wait c] — atomically leave the monitor and sleep; on return the
    caller holds the monitor again, woken by exactly one [signal]. *)
val wait : cond -> unit

(** [signal c] — if a waiter exists, hand it the monitor and suspend the
    caller on the urgent queue (two forced context switches); otherwise a
    no-op. *)
val signal : cond -> unit

(** [broadcast c] — Hoare 1974 has no broadcast; this is the classical
    encoding, signalling until the queue drains.  Each waiter costs the
    full monitor-handoff round trip. *)
val broadcast : cond -> unit

(** Context switches forced by signalling (machine counter
    ["hoare.switches"] also tracks them). *)
val switches : monitor -> int
