(** Binary semaphores with P and V.

    "The implementation of semaphores is identical to mutexes: P is the
    same as Acquire and V is the same as Release" (paper) — and indeed this
    module reuses the mutex structure (bit + queue + Nub retry loop), but
    the {e interface} is distinct: there is no notion of a holder, no
    precondition on V, and P/V need not be textually linked.  Client
    programs relying only on the specified properties of the two types
    would keep working even if the implementations diverged — the paper's
    point about insulation.

    AlertP adds alert responsiveness; the RETURNS/RAISES choice when both
    guards hold is schedule-dependent, as the specification permits. *)

type t

val create : Pkg.t -> t

(** The identity used in trace events. *)
val id : t -> int

val p : t -> unit
val v : t -> unit

(** TimedP: like {!p} but gives up after [timeout] simulated cycles.
    Raises {!Sync_intf.Timed_out} with the semaphore untouched; a V racing
    with the expiry is donated to the next queued waiter, never lost.

    @raise Sync_intf.Timed_out when the timeout expires first. *)
val timed_p : t -> timeout:int -> unit

(** @raise Sync_intf.Alerted when the thread is alerted rather than
    acquiring the semaphore. *)
val alert_p : t -> unit
