module Ops = Firefly.Machine.Ops
module Probe = Firefly.Machine.Probe

type t = {
  sem : Semaphore.t;
  nwaiters : int;  (* addr: waiters registered before releasing the mutex *)
}

let create pkg =
  let sem = Semaphore.create pkg in
  (* A condition's semaphore must start unavailable so P blocks until a
     Signal's V. *)
  Semaphore.p sem;
  let nwaiters = Ops.alloc 1 in
  (* Deliberately registered as plain data, not W_atomic: the decrement in
     [wait] runs outside the mutex, and the lockset analyzer should see
     that — it is part of what is broken about this design. *)
  Probe.register_word nwaiters Firefly.Machine.W_data
    (Printf.sprintf "naive-cond#%d.nwaiters" (Semaphore.id sem));
  { sem; nwaiters }

let wait t m =
  ignore (Ops.faa t.nwaiters 1);
  Mutex.release m;
  Semaphore.p t.sem;
  ignore (Ops.faa t.nwaiters (-1));
  Mutex.acquire m

let signal t = Semaphore.v t.sem

let broadcast t =
  (* One V per waiter seen now; Vs on an already-available binary semaphore
     coalesce, so this loses wakeups — the paper's impossibility argument
     made operational. *)
  let n = Ops.read t.nwaiters in
  for _ = 1 to n do
    Semaphore.v t.sem
  done

let waiters t = Ops.read t.nwaiters
