(* Domain-parallel run-matrix executor: contiguous-block work stealing.

   Each worker owns a block descriptor — one Atomic.t packing the block's
   (next, limit) half-open interval into a single int — from which it
   claims indices at the front.  A worker whose block runs dry steals the
   back half of a victim's remainder and publishes it as its own block.
   Packing both cursors into one CAS word makes claim and steal linearize
   against each other, so an index is executed exactly once without locks
   or a Chase-Lev deque; contiguity keeps each worker walking ascending
   indices.  Results are keyed by cell index, so the output is
   scheduling-independent by construction. *)

let recommended_jobs () = Domain.recommended_domain_count ()
let resolve_jobs j = if j <= 0 then recommended_jobs () else j

(* Host-side observation points.  The runner stays clock-free and
   dependency-free: callbacks fire at the named events and the sink (see
   lib/telemetry) takes its own timestamps.  Callbacks run on the worker
   domain that hit the event, concurrently with other workers' callbacks
   — a sink must confine per-worker mutable state to the worker index or
   use atomics. *)
module Telemetry = struct
  type sink = {
    cell_start : worker:int -> cell:int -> unit;
    cell_done : worker:int -> cell:int -> unit;
    steal : worker:int -> victim:int -> cells:int -> unit;
    steal_fail : worker:int -> unit;
    idle_spin : worker:int -> unit;
    in_flight : count:int -> unit;
  }

  let null =
    {
      cell_start = (fun ~worker:_ ~cell:_ -> ());
      cell_done = (fun ~worker:_ ~cell:_ -> ());
      steal = (fun ~worker:_ ~victim:_ ~cells:_ -> ());
      steal_fail = (fun ~worker:_ -> ());
      idle_spin = (fun ~worker:_ -> ());
      in_flight = (fun ~count:_ -> ());
    }
end

(* (next, limit) packed as next lsl 31 lor limit; both < 2^31. *)
module Block = struct
  let half_bits = 31
  let mask = (1 lsl half_bits) - 1
  let pack ~next ~limit = (next lsl half_bits) lor limit
  let next v = v lsr half_bits
  let limit v = v land mask
  let make ~lo ~hi = Atomic.make (pack ~next:lo ~limit:hi)

  (* Claim the front index of [b], if any. *)
  let rec claim b =
    let v = Atomic.get b in
    let n = next v and l = limit v in
    if n >= l then None
    else if Atomic.compare_and_set b v (pack ~next:(n + 1) ~limit:l) then
      Some n
    else claim b

  (* Steal the back half of [b]'s remainder.  Remainders of one are left
     alone — not worth a CAS storm over a single cell the owner is about
     to claim anyway. *)
  let rec steal b =
    let v = Atomic.get b in
    let n = next v and l = limit v in
    let avail = l - n in
    if avail <= 1 then None
    else
      let l' = l - (avail / 2) in
      if Atomic.compare_and_set b v (pack ~next:n ~limit:l') then
        Some (l', l)
      else steal b
end

(* Initial contiguous partition of [0, n) into [w] blocks. *)
let partition ~n ~w =
  Array.init w (fun i ->
      let lo = i * n / w and hi = (i + 1) * n / w in
      Block.make ~lo ~hi)

(* The worker loop shared by [map] and [iter_ordered]'s producers:
   [execute idx] runs one cell.  Returns when no block has work left —
   safe even if another worker still holds unexecuted stolen indices,
   because those live in that worker's own published block and it drains
   them itself. *)
let worker_loop ?telemetry blocks ~me ~execute ~stop =
  let ev f = match telemetry with Some s -> f s | None -> () in
  let w = Array.length blocks in
  let rec drain_own () =
    if not (Atomic.get stop) then
      match Block.claim blocks.(me) with
      | Some idx ->
        execute idx;
        drain_own ()
      | None -> hunt 0
  and hunt tried =
    if tried < w && not (Atomic.get stop) then
      let victim = (me + 1 + tried) mod w in
      match Block.steal blocks.(victim) with
      | Some (lo, hi) ->
        ev (fun s -> s.Telemetry.steal ~worker:me ~victim ~cells:(hi - lo));
        Atomic.set blocks.(me) (Block.pack ~next:lo ~limit:hi);
        drain_own ()
      | None ->
        ev (fun s -> s.Telemetry.steal_fail ~worker:me);
        hunt (tried + 1)
  in
  drain_own ()

let run_cell f idx =
  match f idx with
  | v -> Ok v
  | exception exn -> Error (exn, Printexc.get_raw_backtrace ())

module Matrix = struct
  let map ?telemetry ?(jobs = 1) ~n f =
    let ev g = match telemetry with Some s -> g s | None -> () in
    if n = 0 then [||]
    else
      let jobs = max 1 (min jobs n) in
      if jobs = 1 then
        match telemetry with
        | None -> Array.init n f
        | Some s ->
          (* Same evaluation order and values as the bare sequential
             path; only the observation callbacks are added. *)
          Array.init n (fun i ->
              s.Telemetry.cell_start ~worker:0 ~cell:i;
              let v = f i in
              s.Telemetry.cell_done ~worker:0 ~cell:i;
              v)
      else begin
        let results = Array.init n (fun _ -> Atomic.make None) in
        let stop = Atomic.make false (* never set: all cells run *) in
        let blocks = partition ~n ~w:jobs in
        let execute me idx =
          ev (fun s -> s.Telemetry.cell_start ~worker:me ~cell:idx);
          Atomic.set results.(idx) (Some (run_cell f idx));
          ev (fun s -> s.Telemetry.cell_done ~worker:me ~cell:idx)
        in
        let body me () =
          worker_loop ?telemetry blocks ~me ~execute:(execute me) ~stop
        in
        let domains =
          Array.init (jobs - 1) (fun i -> Domain.spawn (body (i + 1)))
        in
        body 0 ();
        Array.iter Domain.join domains;
        (* Failures surface as the lowest-indexed failing cell, exactly
           as the sequential path would report them. *)
        Array.map
          (fun slot ->
            match Atomic.get slot with
            | Some (Ok v) -> v
            | Some (Error (exn, bt)) -> Printexc.raise_with_backtrace exn bt
            | None -> failwith "Runner.Matrix.map: unexecuted cell")
          results
      end

  (* Producers run at most [window] cells ahead of the consumer, so the
     in-flight result set — the only thing that outlives a cell — stays
     bounded whatever the matrix size (flat RSS for million-run chaos
     sweeps).  Ring slot for cell [idx] is [idx mod window]; the throttle
     guarantees the slot's previous occupant ([idx - window]) has been
     consumed before [idx] is produced into it. *)
  let window = 256

  let iter_ordered ?telemetry ?(jobs = 1) ~n ~f ~consume () =
    let ev g = match telemetry with Some s -> g s | None -> () in
    if n > 0 then begin
      let jobs = max 1 (min jobs n) in
      if jobs = 1 then
        for i = 0 to n - 1 do
          ev (fun s -> s.Telemetry.cell_start ~worker:0 ~cell:i);
          let v = f i in
          ev (fun s -> s.Telemetry.cell_done ~worker:0 ~cell:i);
          ev (fun s -> s.Telemetry.in_flight ~count:1);
          consume i v
        done
      else begin
        let ring = Array.init window (fun _ -> Atomic.make None) in
        let stop = Atomic.make false in
        let consumed = Atomic.make 0 in
        let blocks = partition ~n ~w:jobs in
        let execute me idx =
          while
            idx - Atomic.get consumed >= window && not (Atomic.get stop)
          do
            (* The consumer runs on the caller's domain, so a spinning
               producer always gets out of the way eventually. *)
            ev (fun s -> s.Telemetry.idle_spin ~worker:me);
            Domain.cpu_relax ()
          done;
          if not (Atomic.get stop) then begin
            ev (fun s -> s.Telemetry.cell_start ~worker:me ~cell:idx);
            let r = run_cell f idx in
            ev (fun s -> s.Telemetry.cell_done ~worker:me ~cell:idx);
            Atomic.set ring.(idx mod window) (Some (idx, r));
            ev (fun s ->
                s.Telemetry.in_flight ~count:(idx + 1 - Atomic.get consumed))
          end
        in
        let body me () =
          worker_loop ?telemetry blocks ~me ~execute:(execute me) ~stop
        in
        let domains = Array.init jobs (fun i -> Domain.spawn (body i)) in
        let failure = ref None in
        let next = ref 0 in
        (* Consume strictly in index order on this domain, dropping each
           slot as it goes so a drained prefix holds no live results.
           The consumer meets failures in index order too, so the first
           one it sees is the lowest-indexed failing cell. *)
        while !next < n && !failure = None do
          let slot = ring.(!next mod window) in
          match Atomic.get slot with
          | Some (idx, r) when idx = !next ->
            Atomic.set slot None;
            incr next;
            Atomic.set consumed !next;
            (match r with
            | Ok v -> consume (!next - 1) v
            | Error (exn, bt) ->
              failure := Some (exn, bt);
              Atomic.set stop true)
          | _ -> Domain.cpu_relax ()
        done;
        Array.iter Domain.join domains;
        match !failure with
        | Some (exn, bt) -> Printexc.raise_with_backtrace exn bt
        | None -> ()
      end
    end
end
