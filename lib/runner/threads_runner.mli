(** Domain-parallel run-matrix executor.

    The verification pipeline is matrices of deterministic, independent
    runs: conformance sweeps (backend × workload × seed), chaos sweeps
    (plan × seed), analysis passes, DPOR frontier prefixes.  This module
    fans a matrix out over OCaml 5 domains with contiguous-block work
    stealing and returns results keyed by cell index, so every report is
    byte-identical whatever the worker count.

    Isolation contract: the cell function must confine mutable state to
    the cell (fresh machine, fresh {!Threads_util.Rng.cell} instance) —
    everything [lib/firefly] and the backends allocate per run already
    qualifies.  Probe state is domain-local in the machine, so cells on
    different domains cannot observe each other. *)

(** The runtime's suggestion for [jobs] on this host
    ([Domain.recommended_domain_count]). *)
val recommended_jobs : unit -> int

(** [resolve_jobs j] maps the CLI convention to a worker count:
    [j <= 0] means "auto" ({!recommended_jobs}), otherwise [j]. *)
val resolve_jobs : int -> int

(** Host-side observation points for the executor.

    The runner itself stays clock-free: it only announces events
    (cell started, cell finished, block stolen, …) and a sink — see
    [lib/telemetry] — timestamps and aggregates them.  Observation is
    strictly host-side: a sink never changes which cells run, in what
    order results are keyed, or anything the simulated machines can
    see, so instrumented runs produce byte-identical reports. *)
module Telemetry : sig
  type sink = {
    cell_start : worker:int -> cell:int -> unit;
        (** Worker [worker] begins executing cell [cell]. *)
    cell_done : worker:int -> cell:int -> unit;
        (** Worker [worker] finished cell [cell] (Ok or Error alike). *)
    steal : worker:int -> victim:int -> cells:int -> unit;
        (** Worker won [cells] indices from [victim]'s block. *)
    steal_fail : worker:int -> unit;
        (** A steal attempt found nothing worth taking. *)
    idle_spin : worker:int -> unit;
        (** One producer throttle spin in {!Matrix.iter_ordered} (the
            in-flight window is full). *)
    in_flight : count:int -> unit;
        (** Produced-but-unconsumed results after a production, for the
            window high-water mark. *)
  }

  (** A sink that ignores every event. *)
  val null : sink
end

module Matrix : sig
  (** [map ~jobs ~n f] computes [|f 0; ...; f (n-1)|].

      [jobs = 1] (the default) runs on the calling domain with no domain
      spawned — bit-for-bit the sequential semantics.  [jobs > 1] spawns
      that many worker domains; each starts with a contiguous block of
      indices and steals half of a victim's remaining block when its own
      runs dry.  Results land in the slot of their index, so the output
      array is independent of scheduling.

      If any cell raises, the exception of the lowest-indexed failing
      cell is re-raised on the caller (after all workers stop), keeping
      failure reports deterministic too.

      [?telemetry] attaches a host-side observation sink (defaults to
      none, at zero cost); the result array is identical with or
      without it, at any [jobs]. *)
  val map :
    ?telemetry:Telemetry.sink -> ?jobs:int -> n:int -> (int -> 'a) ->
    'a array

  (** [iter_ordered ~jobs ~n ~f ~consume ()] computes [f i] for every
      cell and calls [consume i (f i)] for [i = 0, 1, ..., n-1] {e in
      index order, on the calling domain}.

      Unlike {!map} it never materializes the whole result array: with
      [jobs = 1] each result is consumed as soon as it is produced; with
      [jobs > 1] workers throttle against the consumer so at most a
      bounded window of results is in flight.  This is the streaming
      primitive for million-run chaos matrices — render each run to its
      classification line eagerly, consume it into the report, and let
      the machine behind it be collected. *)
  val iter_ordered :
    ?telemetry:Telemetry.sink -> ?jobs:int -> n:int -> f:(int -> 'a) ->
    consume:(int -> 'a -> unit) -> unit -> unit
end
