(* repro — regenerate the paper's evaluation claims.

   repro list            enumerate experiments
   repro run E1 E7       run specific experiments
   repro all             run everything
   repro spec [--variant v]   print a spec variant (concrete syntax)
   repro trace [--seed n] [--format=text|chrome] [--out=FILE]
                         linearized trace + conformance check, or
                         Chrome trace-event JSON of the demo workload
   repro metrics [--seed n]   per-object observability report *)

open Cmdliner

let setup () = Threads_harness.Registry.init ()

(* Shared deterministic demo workload for [metrics] and the Chrome-trace
   export: a producer feeding three consumers through a mutex+condition
   (fast path, Nub slow path, wakeup-waiting window), a single-token
   semaphore ping-pong pair, and two alert victims (one in Alert Wait, one
   in Alert P).  Everything is driven by the seeded simulator scheduler,
   so the same seed gives byte-identical metrics. *)
let demo_workload sync =
  let module S =
    (val sync : Taos_threads.Sync_intf.SYNC with type thread = Threads_util.Tid.t)
  in
  let module Ops = Firefly.Machine.Ops in
  let m = S.mutex () in
  let c = S.condition () in
  let queue = ref 0 in
  let produced = ref 0 in
  let items = 40 in
  let consumer () =
    let continue = ref true in
    while !continue do
      S.with_lock m (fun () ->
          while !queue = 0 && !produced < items do
            S.wait m c
          done;
          if !queue > 0 then begin
            decr queue;
            Ops.tick 3
          end
          else continue := false)
    done
  in
  let producer () =
    for _ = 1 to items do
      Ops.tick 5;
      S.with_lock m (fun () ->
          incr queue;
          incr produced);
      S.signal c
    done;
    (* Final state is published; wake anyone still parked so they exit. *)
    S.broadcast c
  in
  (* Single-token ping-pong: drain [b]'s initial token so exactly one
     token circulates a -> b -> a and the V's never collapse. *)
  let a = S.semaphore () in
  let b = S.semaphore () in
  S.p b;
  let rounds = 12 in
  let pinger =
    S.fork (fun () ->
        for _ = 1 to rounds do
          S.p a;
          Ops.tick 2;
          S.v b
        done)
  in
  let ponger =
    S.fork (fun () ->
        for _ = 1 to rounds do
          S.p b;
          Ops.tick 2;
          S.v a
        done)
  in
  (* Alert victims: one parked in Alert Wait on its own condition, one in
     Alert P on a drained semaphore; both exit via the Alerted exception. *)
  let ac = S.condition () in
  let am = S.mutex () in
  let wait_victim =
    S.fork (fun () ->
        try S.with_lock am (fun () -> S.alert_wait am ac)
        with Taos_threads.Sync_intf.Alerted -> ())
  in
  let dead = S.semaphore () in
  S.p dead;
  let p_victim =
    S.fork (fun () ->
        try S.alert_p dead with Taos_threads.Sync_intf.Alerted -> ())
  in
  let consumers = List.init 3 (fun _ -> S.fork consumer) in
  let pr = S.fork producer in
  S.alert wait_victim;
  S.alert p_victim;
  ignore (S.test_alert ());
  S.join pr;
  List.iter S.join consumers;
  S.join wait_victim;
  S.join p_victim;
  S.join pinger;
  S.join ponger

let demo_snapshot ~seed =
  let report = Taos_threads.Api.run ~seed demo_workload in
  Obs.Instrument.snapshot
    (Firefly.Machine.obs report.Firefly.Interleave.machine)

let thread_names (snap : Obs.Instrument.snapshot) =
  List.sort_uniq compare
    (List.map (fun (s : Obs.Instrument.span) -> s.track) snap.spans)
  |> List.map (fun track -> (track, Printf.sprintf "t%d" track))

(* Write [s] to FILE, or stdout when FILE is "-". *)
let write_out ~out s =
  if out = "-" then print_string s
  else begin
    let oc =
      try open_out out
      with Sys_error e ->
        Printf.eprintf "cannot write %s: %s\n" out e;
        exit 1
    in
    output_string oc s;
    close_out oc;
    Printf.printf "wrote %s (%d bytes)\n" out (String.length s)
  end

(* ---- flags shared by every report-rendering subcommand ---- *)

let format_arg =
  Arg.(
    value
    & opt (enum [ ("table", `Table); ("json", `Json) ]) `Table
    & info [ "format" ] ~docv:"FORMAT"
        ~doc:"$(docv) is $(b,table) (human-readable) or $(b,json)")

let out_arg =
  Arg.(
    value & opt string "-"
    & info [ "out" ] ~docv:"FILE"
        ~doc:"Write the report to $(docv) instead of stdout")

(* Shared --jobs flag: 0 means "ask the runtime", 1 (the default) stays
   sequential, N > 1 spreads the run matrix over N domains.  Reports are
   byte-identical whatever the value. *)
let jobs_arg =
  Arg.(
    value & opt int 1
    & info [ "jobs"; "j" ] ~docv:"N"
        ~doc:
          "Worker domains for the run matrix ($(b,0) = one per available \
           core).  Results are merged in deterministic order, so output \
           does not depend on $(docv)")

(* Streaming --out plumbing: [emit] appends a chunk of the report,
   [finish] closes the file and prints the "wrote" line.  With OUT "-"
   chunks go straight to stdout, unless [buffer_stdout] delays them to
   [finish] (for commands that interleave progress lines with report
   chunks). *)
let make_emit ?(buffer_stdout = false) out =
  if out = "-" then
    if buffer_stdout then begin
      let buf = Buffer.create 4096 in
      (Buffer.add_string buf, fun () -> print_string (Buffer.contents buf))
    end
    else ((fun s -> print_string s), fun () -> ())
  else begin
    let oc =
      try open_out out
      with Sys_error e ->
        Printf.eprintf "cannot write %s: %s\n" out e;
        exit 1
    in
    let written = ref 0 in
    ( (fun s ->
        written := !written + String.length s;
        output_string oc s),
      fun () ->
        close_out oc;
        Printf.printf "wrote %s (%d bytes)\n" out !written )
  end

(* ---- fleet observability flags (--progress / --fleet / --fleet-trace) ---- *)

module Tel = Threads_telemetry

type fleet_opts = {
  fo_progress : string option;
  fo_fleet : string option;
  fo_trace : string option;
}

let progress_arg =
  Arg.(
    value
    & opt ~vopt:(Some "-") (some string) None
    & info [ "progress" ] ~docv:"FILE"
        ~doc:
          "Stream JSON-lines progress events (start, phase, heartbeat with \
           throughput and ETA, straggler flags, per-worker fleet counters) \
           to $(docv) while the matrix runs, or to stderr when $(docv) is \
           omitted.  The final report stays byte-identical")

let fleet_file_arg =
  Arg.(
    value & opt (some string) None
    & info [ "fleet" ] ~docv:"FILE"
        ~doc:
          "After the run, write the per-worker fleet utilization table \
           (cells executed, steals won/failed, idle spins, busy time, \
           in-flight high-water) to $(docv)")

let fleet_trace_arg =
  Arg.(
    value & opt (some string) None
    & info [ "fleet-trace" ] ~docv:"FILE"
        ~doc:
          "After the run, write a Chrome trace-event worker-occupancy \
           timeline (one track per worker domain) to $(docv), for \
           Perfetto / chrome://tracing")

let fleet_term =
  Term.(
    const (fun p f t -> { fo_progress = p; fo_fleet = f; fo_trace = t })
    $ progress_arg $ fleet_file_arg $ fleet_trace_arg)

(* Side files announce themselves on stderr: stdout carries only the
   report, so telemetered runs stay byte-identical to untelemetered
   ones. *)
let write_side_file path s =
  (try
     let oc = open_out path in
     output_string oc s;
     close_out oc
   with Sys_error e ->
     Printf.eprintf "cannot write %s: %s\n" path e;
     exit 1);
  Printf.eprintf "wrote %s (%d bytes)\n" path (String.length s)

(* Observability plumbing around a matrix-shaped command.  [total] is
   the number of matrix cells the command will run (0 = unknown, no
   ETA).  [k] receives the progress handle (None when no telemetry flag
   was given) and threads [Tel.Progress.sink] into the runner via the
   commands' [?telemetry] parameters.  Everything lands on stderr or
   the named side files, never stdout. *)
let with_fleet ~label ~jobs ~total opts k =
  if opts.fo_progress = None && opts.fo_fleet = None && opts.fo_trace = None
  then k None
  else begin
    let dest =
      Option.map
        (fun p ->
          if p = "-" then Tel.Progress.Stderr else Tel.Progress.File p)
        opts.fo_progress
    in
    let p = Tel.Progress.create ?dest ~label ~total ~jobs () in
    let finally () =
      Tel.Progress.finish p;
      let rep = Tel.Progress.fleet_report p in
      Option.iter
        (fun f -> write_side_file f (Tel.Fleet.render rep))
        opts.fo_fleet;
      Option.iter
        (fun f ->
          write_side_file f (Obs.Json.to_string (Tel.Fleet.chrome rep) ^ "\n"))
        opts.fo_trace
    in
    Fun.protect ~finally (fun () -> k (Some p))
  end

let list_cmd =
  let run () =
    setup ();
    List.iter
      (fun (e : Threads_harness.Exp.t) ->
        Printf.printf "%-4s %s\n     %s\n" e.id e.title e.claim)
      (Threads_harness.Exp.all ())
  in
  Cmd.v (Cmd.info "list" ~doc:"List the experiments and the claims they reproduce")
    Term.(const run $ const ())

let run_cmd =
  let ids = Arg.(non_empty & pos_all string [] & info [] ~docv:"ID") in
  let run ids =
    setup ();
    match Threads_harness.Exp.run_ids ids with
    | [] -> ()
    | unknown ->
      Printf.eprintf "unknown experiment id(s): %s\n"
        (String.concat ", " unknown);
      exit 1
  in
  Cmd.v
    (Cmd.info "run" ~doc:"Run one or more experiments (e.g. run E1 E7)")
    Term.(const run $ ids)

let all_cmd =
  let run () =
    setup ();
    Threads_harness.Exp.run_all ()
  in
  Cmd.v (Cmd.info "all" ~doc:"Run every experiment") Term.(const run $ const ())

let spec_cmd =
  let variant =
    Arg.(value & opt string "final" & info [ "variant" ] ~docv:"VARIANT")
  in
  let run variant =
    match List.assoc_opt variant Spec_core.Threads_interface.variants with
    | Some iface -> print_string (Spec_core.Printer.to_string iface)
    | None ->
      Printf.eprintf "unknown variant %s; available: %s\n" variant
        (String.concat ", "
           (List.map fst Spec_core.Threads_interface.variants));
      exit 1
  in
  Cmd.v
    (Cmd.info "spec"
       ~doc:
         "Print a specification variant (final, missing-mutex-guard, \
          must-raise, nelson-bug) in the concrete syntax")
    Term.(const run $ variant)

let metrics_cmd =
  let seed = Arg.(value & opt int 7 & info [ "seed" ] ~docv:"SEED") in
  let run seed format out =
    let snap = demo_snapshot ~seed in
    match format with
    | `Table -> write_out ~out (Obs.Report.render snap)
    | `Json -> write_out ~out (Obs.Json.to_string (Obs.Report.to_json snap) ^ "\n")
  in
  Cmd.v
    (Cmd.info "metrics"
       ~doc:
         "Run the deterministic demo workload and print the per-object \
          observability report (fast-path rates, counters, high-water \
          gauges, cycle histograms, span aggregates); --format=json \
          --out=FILE emits the same report machine-readably")
    Term.(const run $ seed $ format_arg $ out_arg)

let trace_cmd =
  let seed =
    Arg.(value & opt int 42 & info [ "seed" ] ~docv:"SEED")
  in
  let variant =
    Arg.(value & opt string "final" & info [ "variant" ] ~docv:"VARIANT")
  in
  let format =
    Arg.(
      value
      & opt (enum [ ("text", `Text); ("chrome", `Chrome) ]) `Text
      & info [ "format" ] ~docv:"FORMAT"
          ~doc:
            "$(docv) is $(b,text) (linearized event trace + conformance \
             check) or $(b,chrome) (trace-event JSON for Perfetto / \
             chrome://tracing, from the demo workload's spans)")
  in
  let chrome seed out =
    let snap = demo_snapshot ~seed in
    let s =
      Obs.Chrome_trace.to_string ~cycle_us:Firefly.Cost.us_per_cycle
        ~process_name:"firefly-sim" ~thread_names:(thread_names snap) snap
    in
    if out = "-" then print_string s
    else begin
      let oc =
        try open_out out
        with Sys_error e ->
          Printf.eprintf "cannot write trace: %s\n" e;
          exit 1
      in
      output_string oc s;
      close_out oc;
      Printf.printf "wrote %d trace events to %s\n"
        (List.length
           (Obs.Chrome_trace.events ~thread_names:(thread_names snap) snap))
        out
    end
  in
  let run seed variant format out =
    match format with
    | `Chrome -> chrome seed out
    | `Text ->
    let iface =
      match List.assoc_opt variant Spec_core.Threads_interface.variants with
      | Some i -> i
      | None ->
        Printf.eprintf "unknown variant %s\n" variant;
        exit 1
    in
    (* a workload touching every primitive *)
    let report =
      Taos_threads.Api.run ~seed (fun sync ->
          let module S =
            (val sync : Taos_threads.Sync_intf.SYNC
               with type thread = Threads_util.Tid.t)
          in
          let m = S.mutex () in
          let c = S.condition () in
          let sem = S.semaphore () in
          let flag = ref false in
          let w =
            S.fork (fun () ->
                S.with_lock m (fun () ->
                    while not !flag do
                      S.wait m c
                    done))
          in
          let aw =
            S.fork (fun () ->
                try S.with_lock m (fun () -> S.alert_wait m c)
                with Taos_threads.Sync_intf.Alerted -> ())
          in
          S.p sem;
          S.alert aw;
          S.with_lock m (fun () -> flag := true);
          S.broadcast c;
          S.v sem;
          ignore (S.test_alert ());
          S.join w;
          S.join aw)
    in
    let machine = report.Firefly.Interleave.machine in
    List.iteri
      (fun i e ->
        Printf.printf "%3d  %s\n" i (Spec_trace.event_to_string e))
      (Firefly.Machine.trace machine);
    let rep = Threads_model.Conformance.check iface (Firefly.Machine.trace machine) in
    Format.printf "---@.%a@." Threads_model.Conformance.pp_report rep;
    if not (Threads_model.Conformance.ok rep) then exit 2
  in
  Cmd.v
    (Cmd.info "trace"
       ~doc:
         "Run a demo workload on the simulator and print its linearized \
          trace with a conformance check (--format=text), or export the \
          instrumentation spans as Chrome trace-event JSON \
          (--format=chrome --out=FILE)")
    Term.(const run $ seed $ variant $ format $ out_arg)

(* ---- cross-backend conformance / differential testing ---- *)

module Bk = Threads_backend.Backend
module Wl = Threads_backend.Workload
module Cc = Threads_backend.Crosscheck
module Runner = Threads_runner

let resolve_jobs = Runner.resolve_jobs

let resolve_workloads name =
  if name = "all" then Wl.all
  else
    match Wl.find name with
    | Some w -> [ w ]
    | None ->
      Printf.eprintf "unknown workload %s; available: %s, all\n" name
        (String.concat ", " (Wl.names ()));
      exit 1

let pp_verdicts vs =
  String.concat ", "
    (List.map (fun (v, n) -> Printf.sprintf "%dx %s" n v) vs)

let pp_observables = function
  | [] -> "-"
  | obs -> String.concat " / " obs

let summary_row (s : Cc.summary) =
  if s.skipped then
    [ s.backend.Bk.name; "skipped"; "-"; "-"; "-" ]
  else
    [
      s.backend.Bk.name;
      pp_verdicts (Cc.verdicts s);
      pp_observables (Cc.observables s);
      Threads_util.Table.cell_int (Cc.events s);
      Threads_util.Table.cell_int (Cc.violations s);
    ]

let conform_cmd =
  let backend =
    Arg.(value & opt string "sim" & info [ "backend" ] ~docv:"B"
           ~doc:"Backend to check (sim, uniproc, naive, hoare, multicore)")
  in
  let workload =
    Arg.(value & opt string "all" & info [ "workload" ] ~docv:"W"
           ~doc:"Workload name, or $(b,all)")
  in
  let seeds =
    Arg.(value & opt int 5 & info [ "seeds" ] ~docv:"N"
           ~doc:"Number of seeds (schedules) per workload")
  in
  let run backend workload seeds out jobs fleet =
    let jobs = resolve_jobs jobs in
    let b =
      match Bk.find backend with
      | Some b -> b
      | None ->
        Printf.eprintf "unknown backend %s; available: %s\n" backend
          (String.concat ", " (Bk.names ()));
        exit 1
    in
    let wls = resolve_workloads workload in
    let total =
      seeds * List.length (List.filter (fun wl -> Bk.supports b wl) wls)
    in
    let emit, finish = make_emit out in
    let failed = ref false in
    with_fleet ~label:("conform " ^ b.Bk.name) ~jobs ~total fleet
      (fun prog ->
        let telemetry = Option.map Tel.Progress.sink prog in
        List.iter
          (fun (wl : Wl.t) ->
            Option.iter
              (fun p ->
                Tel.Progress.phase p wl.Wl.name
                  ~cells:(if Bk.supports b wl then seeds else 0))
              prog;
            let s = Cc.conform ?telemetry ~jobs b wl ~seeds in
            if s.Cc.skipped then
              emit
                (Printf.sprintf
                   "%-10s skipped (backend lacks a required feature)\n"
                   wl.name)
            else begin
              emit
                (Printf.sprintf
                   "%-10s %d seeds | %s | observable: %s | %d events, %d \
                    violations\n"
                   wl.name seeds
                   (pp_verdicts (Cc.verdicts s))
                   (pp_observables (Cc.observables s))
                   (Cc.events s) (Cc.violations s));
              (match Cc.first_error s with
              | Some e when not b.Bk.conforming ->
                emit
                  (Printf.sprintf
                     "           (expected divergence) first: %s\n" e)
              | Some e ->
                emit (Printf.sprintf "           FIRST VIOLATION: %s\n" e)
              | None -> ());
              if b.Bk.conforming && not (Cc.ok s) then failed := true
            end)
          wls);
    if !failed then
      emit
        (Printf.sprintf "FAIL: %s claims conformance but diverged\n"
           b.Bk.name);
    finish ();
    if !failed then exit 1
  in
  Cmd.v
    (Cmd.info "conform"
       ~doc:
         "Run backend-generic workloads on one backend, replay its \
          linearization-point trace against the formal specification, and \
          report violations (non-zero exit if a conforming backend \
          diverges)")
    Term.(
      const run $ backend $ workload $ seeds $ out_arg $ jobs_arg
      $ fleet_term)

let diff_cmd =
  let workload =
    Arg.(value & opt string "all" & info [ "workload" ] ~docv:"W"
           ~doc:"Workload name, or $(b,all)")
  in
  let seeds =
    Arg.(value & opt int 3 & info [ "seeds" ] ~docv:"N"
           ~doc:"Number of seeds (schedules) per backend")
  in
  let run workload seeds out jobs fleet =
    let jobs = resolve_jobs jobs in
    let wls = resolve_workloads workload in
    let total =
      List.fold_left
        (fun acc wl ->
          acc
          + seeds
            * List.length (List.filter (fun b -> Bk.supports b wl) Bk.all))
        0 wls
    in
    let emit, finish = make_emit out in
    let failed = ref false in
    with_fleet ~label:"diff" ~jobs ~total fleet (fun prog ->
        let telemetry = Option.map Tel.Progress.sink prog in
        List.iter
          (fun (wl : Wl.t) ->
            Option.iter
              (fun p ->
                Tel.Progress.phase p wl.Wl.name
                  ~cells:
                    (seeds
                    * List.length
                        (List.filter (fun b -> Bk.supports b wl) Bk.all)))
              prog;
            let summaries = Cc.diff ?telemetry ~jobs wl ~seeds in
            let t =
              Threads_util.Table.create
                ~title:
                  (Printf.sprintf "diff: %s (%s; %d seeds per backend)"
                     wl.name wl.description seeds)
                [ "backend"; "verdicts"; "observable"; "events"; "violations" ]
            in
            List.iter
              (fun s -> Threads_util.Table.add_row t (summary_row s))
              summaries;
            emit (Threads_util.Table.render t);
            List.iter
              (fun (s : Cc.summary) ->
                if s.backend.Bk.conforming && not s.skipped && not (Cc.ok s)
                then begin
                  failed := true;
                  emit
                    (Printf.sprintf "FAIL: %s diverged on %s%s\n"
                       s.backend.Bk.name wl.name
                       (match Cc.first_error s with
                       | Some e -> ": " ^ e
                       | None -> ""))
                end)
              summaries;
            emit "\n")
          wls);
    emit
      "Expected divergence: naive deadlocks the broadcast workload (E5: \
       coalescing Vs strand waiters); hoare completes but accrues one \
       Resume violation per effective signal (E8: signal hands the mutex \
       over, so Resume's WHEN m = NIL fails).\n";
    finish ();
    if !failed then exit 1
  in
  Cmd.v
    (Cmd.info "diff"
       ~doc:
         "Run one workload on every registered backend and compare \
          verdicts, observables and spec-conformance side by side; the \
          deliberately-broken baselines must diverge exactly where E5/E8 \
          predict (non-zero exit if a conforming backend diverges)")
    Term.(const run $ workload $ seeds $ out_arg $ jobs_arg $ fleet_term)

(* ---- chaos conformance: fault injection x spec conformance ---- *)

let chaos_cmd =
  let backend =
    Arg.(value & opt string "sim" & info [ "backend" ] ~docv:"B"
           ~doc:"Chaos-capable backend (sim, uniproc)")
  in
  let workload =
    Arg.(value & opt string "all" & info [ "workload" ] ~docv:"W"
           ~doc:"Workload name, or $(b,all)")
  in
  let plans =
    Arg.(value & opt int Threads_fault.Plan.families
         & info [ "plans" ] ~docv:"N"
             ~doc:"Number of fault plans (ids 0..N-1; 7 cycles every family)")
  in
  let seeds =
    Arg.(value & opt int 3 & info [ "seeds" ] ~docv:"N"
           ~doc:"Number of seeds (schedules) per plan")
  in
  let run backend workload plans seeds out jobs fleet =
    let jobs = resolve_jobs jobs in
    let b =
      match Bk.find backend with
      | Some b -> b
      | None ->
        Printf.eprintf "unknown backend %s; available: %s\n" backend
          (String.concat ", " (Bk.names ()));
        exit 1
    in
    if b.Bk.chaos = None then begin
      Printf.eprintf "backend %s has no chaos driver (chaos-capable: %s)\n"
        b.Bk.name
        (String.concat ", "
           (List.filter_map
              (fun (b : Bk.t) ->
                if b.Bk.chaos <> None then Some b.Bk.name else None)
              Bk.all));
      exit 1
    end;
    let failed = ref false in
    (* Stream the report: each run is rendered and dropped as its turn
       comes, so memory stays flat however large the matrix is.  With
       --out=FILE chunks go straight to the file; on stdout they are
       buffered so the progress lines keep printing first, like before. *)
    let emit, finish = make_emit ~buffer_stdout:true out in
    let wls = resolve_workloads workload in
    let total =
      plans * seeds
      * List.length (List.filter (fun wl -> Bk.supports b wl) wls)
    in
    with_fleet ~label:("chaos " ^ b.Bk.name) ~jobs ~total fleet
      (fun prog ->
        let telemetry = Option.map Tel.Progress.sink prog in
        List.iter
          (fun (wl : Wl.t) ->
            Option.iter
              (fun p ->
                Tel.Progress.phase p wl.Wl.name
                  ~cells:(if Bk.supports b wl then plans * seeds else 0))
              prog;
            let t = Cc.chaos_stream ?telemetry ~jobs ~emit b wl ~plans ~seeds in
            if t.Cc.ct_skipped then
              Printf.printf
                "%-10s skipped (backend lacks a required feature)\n" wl.name
            else begin
              Printf.printf "%-10s %d plans x %d seeds | %s\n" wl.name plans
                seeds
                (String.concat ", "
                   (List.map
                      (fun (k, n) -> Printf.sprintf "%dx %s" n k)
                      t.Cc.ct_classes));
              if not (Cc.chaos_totals_ok t) then begin
                failed := true;
                List.iter
                  (fun (plan, seed, cls) ->
                    Printf.printf "           FAIL %s plan#%d seed=%d\n"
                      (Cc.class_name cls) plan seed)
                  t.Cc.ct_failures
              end
            end)
          wls);
    finish ();
    if !failed then begin
      Printf.printf
        "FAIL: %s left a run unexplained or in violation under injection\n"
        b.Bk.name;
      exit 1
    end
  in
  Cmd.v
    (Cmd.info "chaos"
       ~doc:
         "Replay deterministic fault plans (delayed/dropped wakeups, \
          spurious wakeups, alert storms, stalls, crash-stops, contention \
          bursts) against a backend while checking its trace against the \
          formal specification.  Every run must either complete conformant \
          or terminate with a diagnosed fault report naming the injected \
          fault — never a silent hang or a spec violation (non-zero exit \
          otherwise).  Equal (backend, workload, plan, seed) produce \
          byte-identical reports")
    Term.(
      const run $ backend $ workload $ plans $ seeds $ out_arg $ jobs_arg
      $ fleet_term)

(* ---- systematic schedule exploration: DPOR vs exhaustive DFS ---- *)

module Ex = Firefly.Explore
module Sc = Threads_harness.Explore_scenarios

let explore_cmd =
  let scenario =
    Arg.(value & opt string "all" & info [ "scenario" ] ~docv:"S"
           ~doc:"Scenario name, or $(b,all); see the list on error")
  in
  let mode =
    Arg.(
      value
      & opt (enum [ ("dpor", `Dpor); ("dfs", `Dfs); ("both", `Both) ]) `Dpor
      & info [ "mode" ] ~docv:"MODE"
          ~doc:
            "$(b,dpor) (sleep-set dynamic partial-order reduction), \
             $(b,dfs) (plain exhaustive search) or $(b,both) (run both \
             and compare their violation sets)")
  in
  let max_runs =
    Arg.(value & opt int 1_000_000 & info [ "max-runs" ] ~docv:"N"
           ~doc:"Execution budget per search (per frozen prefix for DPOR)")
  in
  let split =
    Arg.(value & opt int 2 & info [ "split-branches" ] ~docv:"D"
           ~doc:
             "Branch depth of the exhaustive frontier split handed to the \
              parallel workers (independent of --jobs, so results are \
              too)")
  in
  let min_prune =
    Arg.(value & opt (some float) None & info [ "min-prune" ] ~docv:"PCT"
           ~doc:
             "With --mode=both: fail unless DPOR explores at least \
              $(docv)% fewer executions than DFS")
  in
  let run scenario mode max_runs split min_prune format out jobs fleet =
    let jobs = resolve_jobs jobs in
    let scenarios =
      if scenario = "all" then Sc.all
      else
        match Sc.find scenario with
        | Some s -> [ s ]
        | None ->
          Printf.eprintf "unknown scenario %s; available: %s, all\n" scenario
            (String.concat ", "
               (List.map (fun (s : Sc.t) -> s.Sc.name) Sc.all));
          exit 1
    in
    let failed = ref false in
    let fail fmt = Printf.ksprintf (fun m -> failed := true;
        Printf.printf "FAIL: %s\n" m) fmt
    in
    let t =
      Threads_util.Table.create
        ~aligns:[ Threads_util.Table.Left; Threads_util.Table.Right;
                  Threads_util.Table.Right; Threads_util.Table.Right;
                  Threads_util.Table.Right; Threads_util.Table.Left ]
        ~title:
          (Printf.sprintf "explore: %d worker domain(s), frontier split at \
                           %d branch(es)" jobs split)
        [ "scenario"; "dfs execs"; "dpor execs"; "sleep-pruned"; "prune";
          "violations" ]
    in
    let records = ref [] in
    with_fleet ~label:"explore" ~jobs ~total:0 fleet (fun prog ->
    let telemetry = Option.map Tel.Progress.sink prog in
    List.iter
      (fun (s : Sc.t) ->
        Option.iter (fun p -> Tel.Progress.phase p s.Sc.name ~cells:0) prog;
        let progress =
          Option.map
            (fun p (st : Ex.dpor_stats) ->
              Tel.Progress.explore_tick p ~scenario:s.Sc.name
                ~executions:st.Ex.executions
                ~sleep_blocked:st.Ex.sleep_blocked
                ~peak_depth:st.Ex.peak_depth)
            prog
        in
        let dpor =
          if mode = `Dfs then None
          else
            Some
              (Ex.explore_dpor_parallel ~max_depth:s.Sc.max_depth ~max_runs
                 ~split_branches:split ~jobs ?progress ?telemetry
                 ~build:s.Sc.build s.Sc.check)
        in
        let dfs =
          if mode = `Dpor then None
          else
            Some
              (Ex.explore_all ~max_depth:s.Sc.max_depth ~max_runs
                 ~build:s.Sc.build s.Sc.check)
        in
        let found =
          match (dpor, dfs) with
          | Some (v, _), _ -> v
          | None, Some (v, _, _) -> v
          | None, None -> assert false
        in
        (match dpor with
        | Some (_, ds) when not ds.Ex.complete ->
          fail "%s: DPOR exhausted its execution budget (%d)" s.Sc.name
            max_runs
        | _ -> ());
        if found <> s.Sc.expect then
          fail "%s: violation set mismatch\n  found:    [%s]\n  expected: [%s]"
            s.Sc.name
            (String.concat "; " found)
            (String.concat "; " s.Sc.expect);
        (match (dpor, dfs) with
        | Some (dv, _), Some (fv, _, true) ->
          if dv <> fv then
            fail "%s: DPOR and DFS disagree\n  dpor: [%s]\n  dfs:  [%s]"
              s.Sc.name (String.concat "; " dv) (String.concat "; " fv)
        | _ -> ());
        let dfs_execs =
          match dfs with
          | Some (_, st, _) -> Some (st.Ex.terminal_runs + st.Ex.truncated_runs)
          | None -> None
        in
        let dpor_execs =
          match dpor with Some (_, ds) -> Some ds.Ex.executions | None -> None
        in
        (* If DFS hit its budget the observed count undercounts the true
           tree, so this prune ratio is a conservative lower bound. *)
        let prune =
          match (dpor_execs, dfs_execs) with
          | Some d, Some f when f > 0 ->
            Some (100. *. (1. -. (float_of_int d /. float_of_int f)))
          | _ -> None
        in
        (match (min_prune, prune) with
        | Some want, Some got when got < want ->
          fail "%s: DPOR pruned %.1f%%, below the required %.1f%%" s.Sc.name
            got want
        | Some _, None ->
          fail "%s: --min-prune needs --mode=both" s.Sc.name
        | _ -> ());
        let cell = function Some n -> string_of_int n | None -> "-" in
        Threads_util.Table.add_row t
          [ s.Sc.name; cell dfs_execs; cell dpor_execs;
            (match dpor with
            | Some (_, ds) -> string_of_int ds.Ex.sleep_blocked
            | None -> "-");
            (match prune with
            | Some p -> Printf.sprintf "%.1f%%" p
            | None -> "-");
            (if found = [] then "none"
             else String.concat " | " found) ];
        records :=
          Obs.Json.Obj
            ([ ("scenario", Obs.Json.String s.Sc.name);
               ("expected_ok", Obs.Json.Bool (found = s.Sc.expect));
               ("violations",
                Obs.Json.Arr (List.map (fun v -> Obs.Json.String v) found)) ]
            @ (match dpor with
              | Some (_, ds) ->
                [ ("dpor_executions", Obs.Json.Int ds.Ex.executions);
                  ("dpor_sleep_blocked", Obs.Json.Int ds.Ex.sleep_blocked);
                  ("dpor_steps", Obs.Json.Int ds.Ex.dpor_steps);
                  ("dpor_peak_depth", Obs.Json.Int ds.Ex.peak_depth);
                  ("dpor_complete", Obs.Json.Bool ds.Ex.complete) ]
              | None -> [])
            @ (match dfs with
              | Some (_, st, complete) ->
                [ ("dfs_executions",
                   Obs.Json.Int (st.Ex.terminal_runs + st.Ex.truncated_runs));
                  ("dfs_steps", Obs.Json.Int st.Ex.total_steps);
                  ("dfs_complete", Obs.Json.Bool complete) ]
              | None -> [])
            @
            match prune with
            | Some p -> [ ("prune_pct", Obs.Json.Float p) ]
            | None -> [])
          :: !records)
      scenarios);
    (match format with
    | `Json ->
      write_out ~out
        (Obs.Json.to_string
           (Obs.Json.Obj
              [ ("schema_version", Obs.Json.Int 1);
                ("jobs", Obs.Json.Int jobs);
                ("split_branches", Obs.Json.Int split);
                ("scenarios", Obs.Json.Arr (List.rev !records)) ])
        ^ "\n")
    | `Table -> write_out ~out (Threads_util.Table.render t));
    if !failed then exit 1
  in
  Cmd.v
    (Cmd.info "explore"
       ~doc:
         "Systematically explore every schedule of a small scenario — the \
          wakeup-waiting window, Alert racing Signal, E5's semaphore-encoded \
          broadcast, E8's Hoare hand-off — with sleep-set dynamic \
          partial-order reduction driven by the simulator's per-step \
          footprints, splitting the schedule tree across --jobs worker \
          domains (results are independent of the worker count).  \
          --mode=both cross-checks the DPOR violation set against plain \
          exhaustive DFS and reports the pruning ratio; non-zero exit on \
          any mismatch with the scenario's pinned expectation")
    Term.(
      const run $ scenario $ mode $ max_runs $ split $ min_prune $ format_arg
      $ out_arg $ jobs_arg $ fleet_term)

(* ---- dynamic race / lock-order analysis and the spec linter ---- *)

module An = Threads_analysis.Analysis
module Mu = Threads_analysis.Mutants
module Lint = Threads_analysis.Lint

let report_summary_row name (r : An.report) shown =
  [
    name;
    Threads_util.Table.cell_int r.An.n_accesses;
    Threads_util.Table.cell_int r.An.n_data_words;
    Threads_util.Table.cell_int r.An.n_exempt_words;
    Threads_util.Table.cell_int (List.length r.An.lockset);
    Threads_util.Table.cell_int (List.length r.An.hb);
    (match r.An.lock_order with
    | None -> "-"
    | Some lo -> Threads_util.Table.cell_int (List.length lo.Threads_analysis.Lockorder.cycles));
    shown;
  ]

type analyzer_filter = All | Races_only | Lock_order_only

let filtered_findings filter (r : An.report) =
  let races =
    List.map (Format.asprintf "%a" Threads_analysis.Lockset.pp_race) r.An.lockset
    @ List.map (Format.asprintf "%a" Threads_analysis.Hb.pp_race) r.An.hb
  in
  let cycles =
    List.map
      (Format.asprintf "%a"
         (Threads_analysis.Lockorder.pp_cycle ~lock_name:r.An.lock_name))
      (An.cycles r)
  in
  match filter with
  | All -> races @ cycles
  | Races_only -> races
  | Lock_order_only -> cycles

let analyze_report_json name (r : An.report) extra findings =
  let open Obs.Json in
  Obj
    ([
       ("name", String name);
       ("accesses", Int r.An.n_accesses);
       ("data_words", Int r.An.n_data_words);
       ("exempt_words", Int r.An.n_exempt_words);
       ("lockset_races", Int (List.length r.An.lockset));
       ("hb_races", Int (List.length r.An.hb));
       ("lock_order_cycles", Int (List.length (An.cycles r)));
     ]
    @ extra
    @ [ ("findings", Arr (List.map (fun s -> String s) findings)) ])

let analyze_mutants filter seed ~jobs ~format ~out ~fleet =
  let scenarios = Array.of_list Mu.all in
  let reports =
    with_fleet ~label:"analyze --mutants" ~jobs ~total:(Array.length scenarios)
      fleet (fun prog ->
        let telemetry = Option.map Tel.Progress.sink prog in
        Runner.Matrix.map ?telemetry ~jobs ~n:(Array.length scenarios)
          (fun i -> An.of_machine (scenarios.(i).Mu.m_run ~seed)))
  in
  let t =
    Threads_util.Table.create
      ~aligns:[ Threads_util.Table.Left; Threads_util.Table.Right; Threads_util.Table.Right; Threads_util.Table.Right;
                Threads_util.Table.Right; Threads_util.Table.Right; Threads_util.Table.Right; Threads_util.Table.Left ]
      ~title:(Printf.sprintf "analyze: seeded mutants (seed %d)" seed)
      [ "scenario"; "accesses"; "data"; "exempt"; "lockset"; "hb";
        "cycles"; "expected" ]
  in
  let failures = ref [] in
  let details = ref [] in
  let records = ref [] in
  Array.iteri
    (fun i (s : Mu.scenario) ->
      let r = reports.(i) in
      let expected, caught =
        match s.Mu.m_expect with
        | Mu.Hb -> ("hb race", r.An.hb <> [] && r.An.lockset = [])
        | Mu.Lockset -> ("lockset race", r.An.lockset <> [])
        | Mu.Lock_order -> ("lock-order cycle", An.cycles r <> [])
        | Mu.Clean -> ("no findings", An.clean r)
      in
      if not caught then
        failures :=
          Printf.sprintf "%s: expected %s, got %d lockset / %d hb / %d cycles"
            s.Mu.m_name expected (List.length r.An.lockset)
            (List.length r.An.hb)
            (List.length (An.cycles r))
          :: !failures;
      details :=
        List.map (Printf.sprintf "  [%s] %s" s.Mu.m_name)
          (filtered_findings filter r)
        :: !details;
      records :=
        analyze_report_json s.Mu.m_name r
          [ ("expected", Obs.Json.String expected);
            ("caught", Obs.Json.Bool caught) ]
          (filtered_findings filter r)
        :: !records;
      Threads_util.Table.add_row t
        (report_summary_row s.Mu.m_name r
           (Printf.sprintf "%s %s" expected (if caught then "(caught)" else "(MISSED)"))))
    scenarios;
  (match format with
  | `Json ->
    write_out ~out
      (Obs.Json.to_string
         (Obs.Json.Obj
            [ ("schema_version", Obs.Json.Int 1);
              ("kind", Obs.Json.String "dynamic");
              ("seed", Obs.Json.Int seed);
              ("scenarios", Obs.Json.Arr (List.rev !records)) ])
      ^ "\n")
  | `Table ->
    Threads_util.Table.print t;
    List.iter (List.iter print_endline) (List.rev !details));
  match List.rev !failures with
  | [] ->
    if format = `Table then
      print_endline "all mutants caught by their intended detector"
  | fs ->
    List.iter (fun f -> Printf.eprintf "FAIL: %s\n" f) fs;
    exit 1

let analyze_backend filter backend workload seed ~jobs ~format ~out ~fleet =
  let b =
    match Bk.find backend with
    | Some b -> b
    | None ->
      Printf.eprintf "unknown backend %s; available: %s\n" backend
        (String.concat ", " (Bk.names ()));
      exit 1
  in
  (* The expensive part — running the workload and replaying its access
     stream through the analyzers — is a parallel matrix over workloads;
     rendering below stays sequential and deterministic. *)
  let wls = Array.of_list (resolve_workloads workload) in
  let analyses =
    with_fleet ~label:("analyze " ^ b.Bk.name) ~jobs
      ~total:(Array.length wls) fleet (fun prog ->
        let telemetry = Option.map Tel.Progress.sink prog in
        Runner.Matrix.map ?telemetry ~jobs ~n:(Array.length wls) (fun i ->
            if Bk.supports b wls.(i) then Some (An.run_backend b ~seed wls.(i))
            else None))
  in
  let t =
    Threads_util.Table.create
      ~aligns:[ Threads_util.Table.Left; Threads_util.Table.Right; Threads_util.Table.Right; Threads_util.Table.Right;
                Threads_util.Table.Right; Threads_util.Table.Right; Threads_util.Table.Right; Threads_util.Table.Left ]
      ~title:
        (Printf.sprintf "analyze: backend %s (seed %d)%s" backend seed
           (if b.Bk.conforming then "" else " [non-conforming baseline]"))
      [ "workload"; "accesses"; "data"; "exempt"; "lockset"; "hb";
        "cycles"; "verdict" ]
  in
  let findings = ref [] in
  let records = ref [] in
  let skipped_record name status =
    Obs.Json.Obj
      [ ("name", Obs.Json.String name); ("status", Obs.Json.String status) ]
  in
  Array.iteri
    (fun i (wl : Wl.t) ->
      match analyses.(i) with
      | Some res -> (
        match res.An.br_report with
        | None ->
          records := skipped_record wl.Wl.name "uninstrumented" :: !records;
          Threads_util.Table.add_row t
            [ wl.Wl.name; "-"; "-"; "-"; "-"; "-"; "-"; "uninstrumented" ]
        | Some r ->
          let verdict =
            Format.asprintf "%a" Bk.pp_verdict res.An.br_outcome.Bk.verdict
          in
          findings :=
            List.map (Printf.sprintf "  [%s] %s" wl.Wl.name)
              (filtered_findings filter r)
            :: !findings;
          records :=
            analyze_report_json wl.Wl.name r
              [ ("verdict", Obs.Json.String verdict) ]
              (filtered_findings filter r)
            :: !records;
          Threads_util.Table.add_row t
            (report_summary_row wl.Wl.name r verdict))
      | None ->
        records := skipped_record wl.Wl.name "skipped" :: !records;
        Threads_util.Table.add_row t
          [ wl.Wl.name; "-"; "-"; "-"; "-"; "-"; "-"; "skipped" ])
    wls;
  let findings = List.concat (List.rev !findings) in
  (match format with
  | `Json ->
    write_out ~out
      (Obs.Json.to_string
         (Obs.Json.Obj
            [ ("schema_version", Obs.Json.Int 1);
              ("backend", Obs.Json.String b.Bk.name);
              ("seed", Obs.Json.Int seed);
              ("workloads", Obs.Json.Arr (List.rev !records)) ])
      ^ "\n")
  | `Table ->
    Threads_util.Table.print t;
    List.iter print_endline findings;
    if findings = [] then print_endline "no findings");
  if findings <> [] then begin
    if b.Bk.conforming then begin
      Printf.eprintf "FAIL: conforming backend %s has findings\n" b.Bk.name;
      exit 1
    end
    else if format = `Table then
      print_endline
        "(findings on a non-conforming baseline are expected divergence)"
  end

let analyze_cmd =
  let backend =
    Arg.(value & opt string "sim" & info [ "backend" ] ~docv:"B"
           ~doc:"Backend to analyze (sim, uniproc, naive, hoare, multicore)")
  in
  let workload =
    Arg.(value & opt string "all" & info [ "workload" ] ~docv:"W"
           ~doc:"Workload name, or $(b,all)")
  in
  let seed = Arg.(value & opt int 7 & info [ "seed" ] ~docv:"SEED") in
  let mutants =
    Arg.(value & flag & info [ "mutants" ]
           ~doc:
             "Analyze the seeded fault-injection scenarios instead of a \
              backend; non-zero exit unless every mutant is caught by its \
              intended detector and the clean control stays silent")
  in
  let races =
    Arg.(value & flag & info [ "races" ]
           ~doc:"Report race findings only (lockset + happens-before)")
  in
  let lock_order =
    Arg.(value & flag & info [ "lock-order" ]
           ~doc:"Report lock-order cycles only")
  in
  let run backend workload seed mutants races lock_order format out jobs
      fleet =
    setup ();
    let jobs = resolve_jobs jobs in
    let filter =
      match (races, lock_order) with
      | true, false -> Races_only
      | false, true -> Lock_order_only
      | _ -> All
    in
    if mutants then analyze_mutants filter seed ~jobs ~format ~out ~fleet
    else analyze_backend filter backend workload seed ~jobs ~format ~out ~fleet
  in
  Cmd.v
    (Cmd.info "analyze"
       ~doc:
         "Record a workload's shared-memory access stream on one backend \
          and run the dynamic analyzers over it: Eraser-style lockset and \
          vector-clock happens-before race detection plus lock-order \
          (deadlock-potential) cycle detection.  Non-zero exit if a \
          conforming backend yields findings.  With $(b,--mutants), \
          validate the analyzers against seeded bugs instead.  \
          $(b,--format=json --out=FILE) emits the report machine-readably")
    Term.(
      const run $ backend $ workload $ seed $ mutants $ races $ lock_order
      $ format_arg $ out_arg $ jobs_arg $ fleet_term)

(* ---- causal profiler ---- *)

module Pf = Threads_profile.Profile

let profile_cmd =
  let backend =
    Arg.(value & opt string "sim" & info [ "backend" ] ~docv:"B"
           ~doc:"Backend to profile (sim, uniproc, naive, hoare)")
  in
  let workload =
    Arg.(value & opt string "mutex" & info [ "workload" ] ~docv:"W"
           ~doc:"Workload name (mutex, condvar, semaphore, alert, broadcast)")
  in
  let seed = Arg.(value & opt int 1 & info [ "seed" ] ~docv:"SEED") in
  let format =
    Arg.(
      value
      & opt
          (enum
             [ ("table", `Table); ("folded", `Folded); ("chrome", `Chrome);
               ("json", `Json) ])
          `Table
      & info [ "format" ] ~docv:"FORMAT"
          ~doc:
            "$(docv) is $(b,table) (critical path, per-object attribution, \
             top blockers, wait decomposition), $(b,folded) (flamegraph \
             folded stacks), $(b,chrome) (trace-event JSON with per-state \
             thread tracks and a critical-path track) or $(b,json) \
             (structured report)")
  in
  let run backend workload seed format out =
    let b =
      match Bk.find backend with
      | Some b -> b
      | None ->
        Printf.eprintf "unknown backend %s; available: %s\n" backend
          (String.concat ", " (Bk.names ()));
        exit 1
    in
    let wl =
      match Wl.find workload with
      | Some w -> w
      | None ->
        Printf.eprintf "unknown workload %s; available: %s\n" workload
          (String.concat ", " (Wl.names ()));
        exit 1
    in
    if not (Bk.supports b wl) then begin
      Printf.eprintf "backend %s lacks a feature workload %s needs\n"
        b.Bk.name wl.Wl.name;
      exit 1
    end;
    match b.Bk.profile with
    | None ->
      Printf.eprintf
        "backend %s is not profilable (no simulator machine to observe)\n"
        b.Bk.name;
      exit 1
    | Some profiled_run ->
      let outcome, machine = profiled_run ~seed wl in
      let p = Pf.of_machine machine in
      let s =
        match format with
        | `Table ->
          Printf.sprintf "backend %s, workload %s, seed %d: %s\n\n" b.Bk.name
            wl.Wl.name seed
            (Format.asprintf "%a" Bk.pp_verdict outcome.Bk.verdict)
          ^ Pf.render p
        | `Folded -> Pf.folded p
        | `Chrome -> Pf.chrome p
        | `Json -> Obs.Json.to_string (Pf.to_json p) ^ "\n"
      in
      write_out ~out s
  in
  Cmd.v
    (Cmd.info "profile"
       ~doc:
         "Run a workload under the causal profiler: reconstruct every \
          thread's running / spin / runnable / blocked timeline from the \
          zero-sim-cost probe stream, extract the blocking-chain critical \
          path (whose step durations tile the makespan exactly), attribute \
          it per object, rank the top blockers, and report wait-for \
          forensics (deadlock cycles, threads still blocked at exit).  \
          Profiled runs are cycle- and schedule-identical to unprofiled \
          ones")
    Term.(const run $ backend $ workload $ seed $ format $ out_arg)

(* ---- static spec verifier ---- *)

module SC = Threads_staticcheck

let read_spec = function
  | None -> ("threads (builtin)", Spec_core.Threads_interface.source)
  | Some f -> (
    ( f,
      try
        let ic = open_in f in
        let n = in_channel_length ic in
        let s = really_input_string ic n in
        close_in ic;
        s
      with Sys_error e ->
        Printf.eprintf "cannot read %s: %s\n" f e;
        exit 1 ))

let parse_spec name src =
  try Spec_core.Parser.interface_of_string_located src with
  | Spec_core.Parser.Parse_error (msg, p) ->
    Printf.eprintf "%s:%d:%d: parse error: %s\n" name p.Spec_core.Lexer.line
      p.Spec_core.Lexer.col msg;
    exit 1
  | Spec_core.Lexer.Lex_error (msg, p) ->
    Printf.eprintf "%s:%d:%d: lexical error: %s\n" name
      p.Spec_core.Lexer.line p.Spec_core.Lexer.col msg;
    exit 1

let sc_finding_json (f : SC.Finding.t) =
  Obs.Json.Obj
    [ ("class", Obs.Json.String f.SC.Finding.cls);
      ("severity",
       Obs.Json.String (SC.Finding.severity_name f.SC.Finding.severity));
      ("where", Obs.Json.String f.SC.Finding.where);
      ("msg", Obs.Json.String f.SC.Finding.msg) ]

(* The spec-level scenario catalogue the whole-program pass analyzes. *)
let progcheck_catalogue () =
  [ Threads_harness.Scenarios.mutex_contention 2;
    Threads_harness.Scenarios.wait_signal 1;
    Threads_harness.Scenarios.alert_wait_mutual_exclusion ();
    Threads_harness.Scenarios.nelson ();
    Threads_harness.Scenarios.semaphore_pingpong () ]

(* The clause-level pass alone (what lint-spec used to do). *)
let lint_only name iface locs =
  let findings = Lint.lint ~locs iface in
  List.iter
    (fun f -> Format.printf "%s: %a@." name Lint.pp_finding f)
    findings;
  let errs = List.length (Lint.errors findings) in
  Printf.printf "%s: %d procedure(s), %d error(s), %d warning(s)\n" name
    (List.length iface.Spec_core.Proc.i_procs)
    errs
    (List.length findings - errs);
  if errs > 0 then exit 1

let check_spec_mutants ~format ~out =
  let pristine = SC.Speccheck.check Spec_core.Threads_interface.final in
  let pristine_clean = pristine.SC.Speccheck.rep_findings = [] in
  let results = SC.Speccheck.check_mutants () in
  (match format with
  | `Json ->
    write_out ~out
      (Obs.Json.to_string
         (Obs.Json.Obj
            [ ("schema_version", Obs.Json.Int 1);
              ("kind", Obs.Json.String "static");
              ("pristine_clean", Obs.Json.Bool pristine_clean);
              ( "mutants",
                Obs.Json.Arr
                  (List.map
                     (fun (r : SC.Speccheck.mutant_result) ->
                       Obs.Json.Obj
                         [ ("name", Obs.Json.String r.SC.Speccheck.mu_name);
                           ( "expected",
                             Obs.Json.String r.SC.Speccheck.mu_expected );
                           ( "primary",
                             match r.SC.Speccheck.mu_primary with
                             | Some c -> Obs.Json.String c
                             | None -> Obs.Json.Null );
                           ("caught", Obs.Json.Bool r.SC.Speccheck.mu_caught);
                           ( "classes",
                             Obs.Json.Arr
                               (List.map
                                  (fun c -> Obs.Json.String c)
                                  r.SC.Speccheck.mu_classes) ) ])
                     results) ) ])
      ^ "\n")
  | `Table ->
    let t =
      Threads_util.Table.create
        ~aligns:
          [ Threads_util.Table.Left; Threads_util.Table.Left;
            Threads_util.Table.Left; Threads_util.Table.Left ]
        ~title:"check-spec: seeded spec mutants"
        [ "mutant"; "expected class"; "primary class"; "verdict" ]
    in
    Threads_util.Table.add_row t
      [ "(pristine control)"; "no findings";
        (if pristine_clean then "no findings" else "FINDINGS");
        (if pristine_clean then "clean" else "DIRTY") ];
    List.iter
      (fun (r : SC.Speccheck.mutant_result) ->
        Threads_util.Table.add_row t
          [ r.SC.Speccheck.mu_name; r.SC.Speccheck.mu_expected;
            (match r.SC.Speccheck.mu_primary with
            | Some c -> c
            | None -> "(none)");
            (if r.SC.Speccheck.mu_caught then "caught" else "MISSED") ])
      results;
    Threads_util.Table.print t);
  let missed =
    List.filter (fun r -> not r.SC.Speccheck.mu_caught) results
  in
  if not pristine_clean then begin
    Printf.eprintf "FAIL: pristine spec produced findings\n";
    exit 1
  end;
  if missed <> [] then begin
    List.iter
      (fun (r : SC.Speccheck.mutant_result) ->
        Printf.eprintf "FAIL: mutant %s expected %s, primary %s\n"
          r.SC.Speccheck.mu_name r.SC.Speccheck.mu_expected
          (match r.SC.Speccheck.mu_primary with Some c -> c | None -> "none"))
      missed;
    exit 1
  end;
  if format = `Table then
    print_endline "all spec mutants caught with their expected class"

(* Dynamic violation sets from a [repro explore --format=json] report. *)
let dynamic_of_explore_json file =
  let fail msg =
    Printf.eprintf "cannot use %s as explore report: %s\n" file msg;
    exit 1
  in
  let src =
    try
      let ic = open_in file in
      let n = in_channel_length ic in
      let s = really_input_string ic n in
      close_in ic;
      s
    with Sys_error e -> fail e
  in
  match Obs.Json.of_string src with
  | exception Obs.Json.Parse_error e -> fail e
  | j -> (
    match Obs.Json.find j "scenarios" with
    | Some (Obs.Json.Arr scenarios) ->
      List.filter_map
        (fun s ->
          match
            (Obs.Json.find s "scenario", Obs.Json.find s "violations")
          with
          | Some (Obs.Json.String name), Some (Obs.Json.Arr vs) ->
            Some
              ( name,
                List.filter_map
                  (function Obs.Json.String v -> Some v | _ -> None)
                  vs )
          | _ -> None)
        scenarios
    | _ -> fail "no scenarios array")

let check_spec_crosscheck ~dynamic_file ~format ~out =
  let dynamic =
    match dynamic_file with
    | "" -> None
    | f -> Some (dynamic_of_explore_json f)
  in
  let entries =
    SC.Crossval.run ?dynamic Spec_core.Threads_interface.final
  in
  (match format with
  | `Json ->
    write_out ~out
      (Obs.Json.to_string
         (Obs.Json.Obj
            [ ("schema_version", Obs.Json.Int 1);
              ("kind", Obs.Json.String "static-crosscheck");
              ( "dynamic_source",
                Obs.Json.String
                  (if dynamic_file = "" then "pinned" else dynamic_file) );
              ( "scenarios",
                Obs.Json.Arr
                  (List.map
                     (fun (e : SC.Crossval.entry) ->
                       Obs.Json.Obj
                         [ ( "scenario",
                             Obs.Json.String e.SC.Crossval.x_scenario );
                           ( "dynamic_classes",
                             Obs.Json.Arr
                               (List.map
                                  (fun c -> Obs.Json.String c)
                                  e.SC.Crossval.x_dynamic_classes) );
                           ( "static_classes",
                             Obs.Json.Arr
                               (List.map
                                  (fun c -> Obs.Json.String c)
                                  e.SC.Crossval.x_static_classes) );
                           ("ok", Obs.Json.Bool e.SC.Crossval.x_ok) ])
                     entries) ) ])
      ^ "\n")
  | `Table ->
    let t =
      Threads_util.Table.create
        ~aligns:
          [ Threads_util.Table.Left; Threads_util.Table.Left;
            Threads_util.Table.Left; Threads_util.Table.Left ]
        ~title:
          (Printf.sprintf "check-spec: DPOR soundness cross-check (%s)"
             (if dynamic_file = "" then "pinned expectations"
              else dynamic_file))
        [ "scenario"; "dynamic classes"; "static classes"; "sound" ]
    in
    List.iter
      (fun (e : SC.Crossval.entry) ->
        Threads_util.Table.add_row t
          [ e.SC.Crossval.x_scenario;
            (match e.SC.Crossval.x_dynamic_classes with
            | [] -> "(none)"
            | cs -> String.concat ", " cs);
            (match e.SC.Crossval.x_static_classes with
            | [] -> "(none)"
            | cs -> String.concat ", " cs);
            (if e.SC.Crossval.x_ok then "yes" else "NO") ])
      entries;
    Threads_util.Table.print t);
  let bad = List.filter (fun e -> not e.SC.Crossval.x_ok) entries in
  if bad <> [] then begin
    List.iter
      (fun (e : SC.Crossval.entry) ->
        Printf.eprintf
          "FAIL: %s: dynamic violation class not statically reachable\n"
          e.SC.Crossval.x_scenario)
      bad;
    exit 1
  end;
  if format = `Table then
    print_endline
      "every dynamically observed violation class is statically reachable"

let check_spec_full name iface locs ~demos ~format ~out =
  let rep = SC.Speccheck.check ~locs iface in
  let prog_reports =
    List.map (SC.Progcheck.check iface) (progcheck_catalogue ())
  in
  let demo_reports =
    if demos then
      List.map (SC.Progcheck.check iface) SC.Progcheck.demo_scenarios
    else []
  in
  let all_findings =
    rep.SC.Speccheck.rep_findings
    @ List.concat_map (fun r -> r.SC.Progcheck.p_findings) prog_reports
  in
  let errs = List.length (SC.Finding.errors all_findings) in
  let warns = List.length all_findings - errs in
  (match format with
  | `Json ->
    let model_json m =
      Obs.Json.Obj
        [ ("scenario", Obs.Json.String m.SC.Speccheck.mr_scenario);
          ("skipped", Obs.Json.Bool m.SC.Speccheck.mr_skipped);
          ("states", Obs.Json.Int m.SC.Speccheck.mr_states);
          ("transitions", Obs.Json.Int m.SC.Speccheck.mr_transitions);
          ( "findings",
            Obs.Json.Arr
              (List.map sc_finding_json m.SC.Speccheck.mr_findings) ) ]
    in
    let prog_json (r : SC.Progcheck.report) =
      Obs.Json.Obj
        [ ("scenario", Obs.Json.String r.SC.Progcheck.p_scenario);
          ( "lock_order_edges",
            Obs.Json.Arr
              (List.map
                 (fun (a, b) ->
                   Obs.Json.Arr [ Obs.Json.String a; Obs.Json.String b ])
                 r.SC.Progcheck.p_edges) );
          ( "findings",
            Obs.Json.Arr (List.map sc_finding_json r.SC.Progcheck.p_findings)
          ) ]
    in
    write_out ~out
      (Obs.Json.to_string
         (Obs.Json.Obj
            ([ ("schema_version", Obs.Json.Int 1);
               ("kind", Obs.Json.String "static");
               ("spec", Obs.Json.String name);
               ( "lint",
                 Obs.Json.Arr
                   (List.map sc_finding_json rep.SC.Speccheck.rep_lint) );
               ( "model",
                 Obs.Json.Arr (List.map model_json rep.SC.Speccheck.rep_model)
               );
               ( "uncovered",
                 Obs.Json.Arr
                   (List.map
                      (fun (p, a, ci) ->
                        Obs.Json.String (Printf.sprintf "%s.%s#%d" p a (ci + 1)))
                      rep.SC.Speccheck.rep_uncovered) );
               ("program", Obs.Json.Arr (List.map prog_json prog_reports)) ]
            @ (if demos then
                 [ ("demos", Obs.Json.Arr (List.map prog_json demo_reports)) ]
               else [])
            @ [ ("errors", Obs.Json.Int errs);
                ("warnings", Obs.Json.Int warns) ]))
      ^ "\n")
  | `Table ->
    Printf.printf "check-spec: %s\n" name;
    List.iter
      (fun f -> Format.printf "  %a@." SC.Finding.pp f)
      rep.SC.Speccheck.rep_lint;
    let t =
      Threads_util.Table.create
        ~aligns:
          [ Threads_util.Table.Left; Threads_util.Table.Right;
            Threads_util.Table.Right; Threads_util.Table.Right ]
        ~title:"spec model checking (abstract exploration)"
        [ "scenario"; "states"; "transitions"; "findings" ]
    in
    List.iter
      (fun m ->
        Threads_util.Table.add_row t
          [ m.SC.Speccheck.mr_scenario;
            (if m.SC.Speccheck.mr_skipped then "-"
             else string_of_int m.SC.Speccheck.mr_states);
            (if m.SC.Speccheck.mr_skipped then "-"
             else string_of_int m.SC.Speccheck.mr_transitions);
            string_of_int (List.length m.SC.Speccheck.mr_findings) ])
      rep.SC.Speccheck.rep_model;
    Threads_util.Table.print t;
    List.iter
      (fun m ->
        List.iter
          (fun f -> Format.printf "  %a@." SC.Finding.pp f)
          m.SC.Speccheck.mr_findings)
      rep.SC.Speccheck.rep_model;
    List.iter
      (fun (p, a, ci) ->
        Printf.printf "  unreachable: case %d of %s.%s\n" (ci + 1) p a)
      rep.SC.Speccheck.rep_uncovered;
    let pt =
      Threads_util.Table.create
        ~aligns:
          [ Threads_util.Table.Left; Threads_util.Table.Right;
            Threads_util.Table.Right ]
        ~title:"whole-program static analysis (locksets, lock order)"
        [ "scenario"; "lock-order edges"; "findings" ]
    in
    List.iter
      (fun (r : SC.Progcheck.report) ->
        Threads_util.Table.add_row pt
          [ r.SC.Progcheck.p_scenario;
            string_of_int (List.length r.SC.Progcheck.p_edges);
            string_of_int (List.length r.SC.Progcheck.p_findings) ])
      prog_reports;
    Threads_util.Table.print pt;
    List.iter
      (fun (r : SC.Progcheck.report) ->
        List.iter
          (fun f -> Format.printf "  %a@." SC.Finding.pp f)
          r.SC.Progcheck.p_findings)
      prog_reports;
    if demos then begin
      let dt =
        Threads_util.Table.create
          ~aligns:[ Threads_util.Table.Left; Threads_util.Table.Left ]
          ~title:"defect demonstrations (not counted in the verdict)"
          [ "scenario"; "finding" ]
      in
      List.iter
        (fun (r : SC.Progcheck.report) ->
          List.iter
            (fun (f : SC.Finding.t) ->
              Threads_util.Table.add_row dt
                [ r.SC.Progcheck.p_scenario;
                  Printf.sprintf "[%s] %s" f.SC.Finding.cls f.SC.Finding.msg ])
            r.SC.Progcheck.p_findings)
        demo_reports;
      Threads_util.Table.print dt
    end;
    Printf.printf "check-spec: %s: %d error(s), %d warning(s)\n" name errs
      warns);
  if errs > 0 then exit 1

let check_spec_cmd =
  let file =
    Arg.(value & pos 0 (some string) None & info [] ~docv:"FILE"
           ~doc:
             "Specification file in the concrete syntax; defaults to the \
              built-in Threads interface (specs/threads.lspec)")
  in
  let lint_only_flag =
    Arg.(value & flag & info [ "lint-only" ]
           ~doc:"Run only the clause-level linter (the old lint-spec)")
  in
  let mutants =
    Arg.(value & flag & info [ "mutants" ]
           ~doc:
             "Verify the verifier: every seeded spec defect must be flagged \
              with its expected diagnostic class while the pristine spec \
              stays clean; non-zero exit otherwise")
  in
  let crosscheck =
    Arg.(value
         & opt ~vopt:(Some "") (some string) None
         & info [ "crosscheck" ] ~docv:"FILE"
             ~doc:
               "Check DPOR soundness: every violation class observed by \
                dynamic exploration must be reachable in the static \
                abstraction.  With $(docv), read the dynamic violations \
                from a $(b,repro explore --format=json) report; otherwise \
                use the pinned expectation sets")
  in
  let demos =
    Arg.(value & flag & info [ "demos" ]
           ~doc:
             "Also analyze the built-in defect demonstration scenarios \
              (lock inversion, double acquire, unheld release, blocking in \
              an interrupt handler); their findings do not affect the exit \
              status")
  in
  let run file lint_only_flag mutants crosscheck demos format out =
    setup ();
    if mutants then check_spec_mutants ~format ~out
    else
      match crosscheck with
      | Some dynamic_file -> check_spec_crosscheck ~dynamic_file ~format ~out
      | None ->
        let name, src = read_spec file in
        let iface, locs = parse_spec name src in
        if lint_only_flag then lint_only name iface locs
        else check_spec_full name iface locs ~demos ~format ~out
  in
  Cmd.v
    (Cmd.info "check-spec"
       ~doc:
         "Statically verify an interface specification.  Pass 1 lints every \
          clause (well-formedness, dead WHEN guards, unimplementable \
          ENSURES, unconstrained MODIFIES) and model-checks a finite \
          abstract transition system compiled from the spec: deadlock \
          freedom with benign-wakeup separation, signal-loss freedom across \
          the Enqueue/Resume window, mutex-theft freedom, stale-waiter and \
          mutual-exclusion invariants, and case reachability.  Pass 2 \
          statically analyzes client scenarios without executing them: \
          must-hold locksets, lock-order cycles, blocking calls in \
          interrupt handlers.  $(b,--mutants) validates the verifier \
          against seeded spec defects; $(b,--crosscheck) validates the \
          abstraction against dynamic DPOR exploration; non-zero exit on \
          any error-level finding")
    Term.(
      const run $ file $ lint_only_flag $ mutants $ crosscheck $ demos
      $ format_arg $ out_arg)

(* Deprecated alias: lint-spec = check-spec --lint-only. *)
let lint_spec_cmd =
  let file =
    Arg.(value & pos 0 (some string) None & info [] ~docv:"FILE"
           ~doc:
             "Specification file in the concrete syntax; defaults to the \
              built-in Threads interface (specs/threads.lspec)")
  in
  let run file =
    Printf.eprintf
      "note: lint-spec is deprecated; use check-spec --lint-only (or plain \
       check-spec for the full static verifier)\n";
    let name, src = read_spec file in
    let iface, locs = parse_spec name src in
    lint_only name iface locs
  in
  Cmd.v
    (Cmd.info "lint-spec"
       ~doc:
         "Deprecated alias for $(b,check-spec --lint-only): clause-level \
          linting of an interface specification")
    Term.(const run $ file)

(* ---- perf-trajectory regression gate ---- *)

let bench_diff_cmd =
  let old_file =
    Arg.(required & pos 0 (some string) None & info [] ~docv:"OLD"
           ~doc:
             "Baseline bench record: a $(b,results/BENCH.json)-shaped \
              document, or a $(b,.jsonl) trajectory history (its last \
              record is used)")
  in
  let new_file =
    Arg.(required & pos 1 (some string) None & info [] ~docv:"NEW"
           ~doc:"Candidate bench record (same shapes as $(b,OLD))")
  in
  let gate =
    Arg.(value & opt float 0. & info [ "gate" ] ~docv:"PCT"
           ~doc:
             "Hard gate on the deterministic metrics (per-arm sim_cycles \
              and DPOR executions): any increase beyond $(docv) percent \
              fails the diff.  Default 0 — deterministic costs may never \
              silently grow")
  in
  let host_gate =
    Arg.(value & opt float 25. & info [ "host-gate" ] ~docv:"PCT"
           ~doc:
             "Advisory threshold for host wall-clock drift; host timing \
              is machine noise and never fails the diff")
  in
  let run old_file new_file gate host_gate format out =
    let load path =
      try Tel.Bench_diff.load_file path with
      | Sys_error e ->
        Printf.eprintf "cannot read %s: %s\n" path e;
        exit 1
      | Obs.Json.Parse_error e ->
        Printf.eprintf "%s: %s\n" path e;
        exit 1
    in
    let old_ = load old_file and new_ = load new_file in
    let r = Tel.Bench_diff.compare_json ~gate ~host_gate ~old_ ~new_ () in
    (match format with
    | `Table -> write_out ~out (Tel.Bench_diff.render r)
    | `Json ->
      write_out ~out
        (Obs.Json.to_string (Tel.Bench_diff.to_json r) ^ "\n"));
    if not (Tel.Bench_diff.ok r) then exit 1
  in
  Cmd.v
    (Cmd.info "bench-diff"
       ~doc:
         "Compare two bench result records (or trajectory histories) and \
          gate performance regressions.  Deterministic metrics — per-arm \
          simulated cycles and the DPOR execution counts — fail the diff \
          when they grow beyond $(b,--gate) percent; host wall-clock is \
          reported as an advisory only.  Non-zero exit on any \
          deterministic regression")
    Term.(
      const run $ old_file $ new_file $ gate $ host_gate $ format_arg
      $ out_arg)

(* ---- generative chaos engine ---- *)

module Gen = Threads_gen

let generate_cmd =
  let backend =
    Arg.(value & opt string "sim" & info [ "backend" ] ~docv:"B"
           ~doc:"Backend to generate against (sim, uniproc, naive, hoare, \
                 multicore)")
  in
  let runs =
    Arg.(value & opt int 100 & info [ "runs" ] ~docv:"N"
           ~doc:"Number of generated scenarios")
  in
  let seed =
    Arg.(value & opt int 7 & info [ "seed" ] ~docv:"S"
           ~doc:"Campaign base seed; cell $(b,i) draws from the \
                 deterministic (S, i) stream")
  in
  let policy =
    Arg.(value & opt string "safe" & info [ "policy" ] ~docv:"P"
           ~doc:"Generation policy: $(b,safe) (deadlock-free by \
                 construction; any stranding is a finding), $(b,free) \
                 (unconstrained; only spec violations count), $(b,irq) \
                 (safe plus interrupt-context V)")
  in
  let chaos =
    Arg.(value & flag & info [ "chaos" ]
           ~doc:"Compose each scenario with a generated fault plan \
                 (backend must have a chaos driver)")
  in
  let shrink =
    Arg.(value & flag & info [ "shrink" ]
           ~doc:"Minimize the first counterexample to a locally-minimal \
                 replayable scenario")
  in
  let save =
    Arg.(value & opt (some string) None & info [ "save" ] ~docv:"FILE"
           ~doc:"Write the minimized counterexample as a replay file \
                 (implies $(b,--shrink))")
  in
  let replay =
    Arg.(value & opt (some string) None & info [ "replay" ] ~docv:"FILE"
           ~doc:"Re-run a saved counterexample file and re-classify it \
                 (exit 1 if the pinned classification does not reproduce)")
  in
  let mutants =
    Arg.(value & flag & info [ "mutants" ]
           ~doc:"Mutation adequacy: run generated scenarios against every \
                 seeded spec mutant and report the kill table")
  in
  let scenarios =
    Arg.(value & opt int 12 & info [ "scenarios" ] ~docv:"N"
           ~doc:"Generated scenarios per differential in $(b,--mutants) \
                 mode")
  in
  let require =
    Arg.(value & opt int 0 & info [ "require" ] ~docv:"K"
           ~doc:"In $(b,--mutants) mode, exit non-zero unless at least \
                 $(docv) mutants are killed")
  in
  let resolve_backend name =
    match Bk.find name with
    | Some b -> b
    | None ->
      Printf.eprintf "unknown backend %s; available: %s\n" name
        (String.concat ", " (Bk.names ()));
      exit 1
  in
  let run_replay file out =
    let emit, finish = make_emit out in
    match Gen.Replay.load file with
    | Error msg ->
      Printf.eprintf "cannot replay %s: %s\n" file msg;
      exit 1
    | Ok r ->
      let b = resolve_backend r.Gen.Replay.backend in
      let c =
        try Gen.Oracle.run b r.Gen.Replay.scenario
        with Invalid_argument msg ->
          Printf.eprintf "%s\n" msg;
          exit 1
      in
      let got =
        match c with
        | Gen.Oracle.Pass label -> Printf.sprintf "pass (%s)" label
        | Gen.Oracle.Fail (kind, detail) ->
          Printf.sprintf "%s (%s)" (Gen.Oracle.kind_name kind) detail
      in
      emit (Printf.sprintf "replay %s: backend=%s %s\n" file b.Bk.name got);
      let ok =
        match (r.Gen.Replay.expect, c) with
        | None, _ -> true
        | Some k, Gen.Oracle.Fail (k', _) -> Gen.Oracle.same_kind k k'
        | Some _, Gen.Oracle.Pass _ -> false
      in
      (match r.Gen.Replay.expect with
      | Some k ->
        emit
          (Printf.sprintf "  pinned %s: %s\n" (Gen.Oracle.kind_name k)
             (if ok then "reproduced" else "NOT REPRODUCED"))
      | None -> ());
      finish ();
      if not ok then exit 1
  in
  let run_mutants ~seed ~scenarios ~require out =
    setup ();
    let emit, finish = make_emit out in
    let rows = Gen.Mutants.kill_table ~scenarios ~seed () in
    emit (Format.asprintf "%a" Gen.Mutants.render rows);
    finish ();
    if Gen.Mutants.killed rows < require then begin
      Printf.eprintf "FAIL: %d mutants killed, %d required\n"
        (Gen.Mutants.killed rows) require;
      exit 1
    end
  in
  let run backend runs seed policy chaos shrink save replay mutants
      scenarios require out jobs fleet =
    if replay <> None && mutants then begin
      Printf.eprintf "--replay and --mutants are mutually exclusive\n";
      exit 1
    end;
    match replay with
    | Some file -> run_replay file out
    | None when mutants -> run_mutants ~seed ~scenarios ~require out
    | None ->
      let jobs = resolve_jobs jobs in
      let b = resolve_backend backend in
      let policy =
        match Gen.Generate.policy_of_string policy with
        | Some p -> p
        | None ->
          Printf.eprintf "unknown policy %s; available: %s\n" policy
            (String.concat ", "
               (List.map Gen.Generate.policy_name Gen.Generate.policies));
          exit 1
      in
      let config =
        {
          Gen.Campaign.policy;
          runs;
          seed;
          chaos;
          shrink = shrink || save <> None;
        }
      in
      let emit, finish = make_emit out in
      with_fleet ~label:("generate " ^ b.Bk.name) ~jobs ~total:runs fleet
        (fun prog ->
          let telemetry = Option.map Tel.Progress.sink prog in
          let r =
            try Gen.Campaign.run ?telemetry ~jobs b config
            with Invalid_argument msg ->
              Printf.eprintf "%s\n" msg;
              exit 1
          in
          emit (Format.asprintf "%a" Gen.Campaign.render r);
          Option.iter
            (fun file ->
              match r.Gen.Campaign.minimal with
              | Some (rf, _) ->
                Gen.Replay.save file rf;
                Printf.eprintf "wrote %s (%d bytes)\n" file
                  (String.length (Gen.Replay.to_string rf))
              | None ->
                Printf.eprintf
                  "no counterexample to save (all %d runs passed)\n"
                  r.Gen.Campaign.config.Gen.Campaign.runs)
            save;
          finish ();
          if b.Bk.conforming && r.Gen.Campaign.failures <> [] then exit 1)
  in
  Cmd.v
    (Cmd.info "generate"
       ~doc:
         "Generative chaos engine: generate random client programs over \
          random object graphs (locks, semaphores, condition flags, \
          producer/consumer tokens, alerts, timeouts, interrupt-context \
          V), run them against a backend with spec-conformance checking, \
          and shrink any counterexample to a locally-minimal replayable \
          (program, seed, fault plan) triple.  Deterministic in \
          $(b,--seed) at any $(b,--jobs).  $(b,--replay) re-runs a saved \
          counterexample; $(b,--mutants) measures mutation adequacy \
          against the seeded spec defects.  Non-zero exit when a \
          conforming backend yields a counterexample")
    Term.(
      const run $ backend $ runs $ seed $ policy $ chaos $ shrink $ save
      $ replay $ mutants $ scenarios $ require $ out_arg $ jobs_arg
      $ fleet_term)

(* ---- subcommand map (bare `repro` and `repro help`) ---- *)

let command_summaries =
  [ ("list", "list the experiments and the claims they reproduce");
    ("run", "run one or more experiments by id (e.g. run E1 E7)");
    ("all", "run every experiment");
    ("spec", "print a specification variant in the concrete syntax");
    ("trace", "run a demo workload and print / export its linearized trace");
    ("metrics", "run the demo workload and print the observability report");
    ("conform", "replay a backend's trace against the formal spec");
    ("diff", "run all backends side by side and compare verdicts");
    ("chaos", "deterministic fault-plan sweeps with spec conformance");
    ("generate", "generative chaos: random programs, shrink, replay");
    ("explore", "DPOR schedule exploration of the small scenarios");
    ("analyze", "dynamic race and lock-order analysis (or --mutants)");
    ("profile", "causal profiler: critical path, blockers, wait forensics");
    ("check-spec", "static spec verifier: lint + abstract model check");
    ("lint-spec", "deprecated alias for check-spec --lint-only");
    ("bench-diff", "compare two bench records and gate perf regressions");
    ("help", "print this subcommand summary") ]

let print_command_summaries () =
  print_string
    "repro — Birrell/Guttag/Horning/Levin synchronization primitives, \
     reproduced\n\nCommands:\n";
  let w =
    List.fold_left (fun a (n, _) -> max a (String.length n)) 0
      command_summaries
  in
  List.iter
    (fun (n, s) -> Printf.printf "  %-*s  %s\n" w n s)
    command_summaries;
  print_string
    "\nRun 'repro COMMAND --help' for flags; matrix commands take --jobs, \
     --progress, --fleet and --fleet-trace.\n"

let help_cmd =
  Cmd.v
    (Cmd.info "help" ~doc:"Print a one-line summary of every subcommand")
    Term.(const print_command_summaries $ const ())

let default = Term.(const print_command_summaries $ const ())

let () =
  let info =
    Cmd.info "repro" ~version:"1.0"
      ~doc:
        "Reproduction of Birrell, Guttag, Horning & Levin, Synchronization \
         Primitives for a Multiprocessor: A Formal Specification (SRC-20, \
         1987)"
  in
  exit
    (Cmd.eval
       (Cmd.group ~default info
          [ list_cmd; run_cmd; all_cmd; spec_cmd; trace_cmd; metrics_cmd;
            conform_cmd; diff_cmd; chaos_cmd; generate_cmd; explore_cmd;
            analyze_cmd; profile_cmd; check_spec_cmd; lint_spec_cmd;
            bench_diff_cmd; help_cmd ]))
