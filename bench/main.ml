(* Micro-benchmarks (Bechamel), one group per experiment with a
   timing-shaped component.  `dune exec bench/main.exe` prints ns/run for
   each; the full experiment tables come from `dune exec bin/repro.exe --
   all` (see EXPERIMENTS.md).

   What is timed here:
   - E1: the uncontended Acquire/Release pair on real hardware (this
     package vs Stdlib.Mutex), plus the simulated pair including the whole
     simulator machinery.
   - E2: one cycle-accurate contended run on the 5-CPU timed driver.
   - E3: one Signal-drain vs one Broadcast-drain over parked waiters.
   - E7/E9: the model checker on an incident scenario and the conformance
     checker over a long real trace.
   - spec: parsing and printing the full interface. *)

open Bechamel
open Toolkit

module S = Threads_multicore.Multicore.Sync

let e1_multicore_pair =
  let m = S.mutex () in
  Test.make ~name:"e1/multicore acquire+release"
    (Staged.stage (fun () ->
         S.acquire m;
         S.release m))

let e1_stdlib_pair =
  let m = Mutex.create () in
  Test.make ~name:"e1/stdlib lock+unlock"
    (Staged.stage (fun () ->
         Mutex.lock m;
         Mutex.unlock m))

let e1_sim_pair =
  (* one whole simulated run of 100 uncontended pairs *)
  Test.make ~name:"e1/sim 100 pairs (full machine)"
    (Staged.stage (fun () ->
         ignore
           (Taos_threads.Api.run ~seed:1 (fun sync ->
                let module Sy =
                  (val sync : Taos_threads.Sync_intf.SYNC
                     with type thread = Threads_util.Tid.t)
                in
                let m = Sy.mutex () in
                for _ = 1 to 100 do
                  Sy.acquire m;
                  Sy.release m
                done))))

let wake_run ~broadcast =
  ignore
    (Taos_threads.Api.run ~seed:3 (fun sync ->
         let module Sy =
           (val sync : Taos_threads.Sync_intf.SYNC
              with type thread = Threads_util.Tid.t)
         in
         let m = Sy.mutex () in
         let c = Sy.condition () in
         let flag = ref false in
         let waiter () =
           Sy.with_lock m (fun () ->
               while not !flag do
                 Sy.wait m c
               done)
         in
         let ws = List.init 8 (fun _ -> Sy.fork waiter) in
         Sy.with_lock m (fun () -> flag := true);
         if broadcast then Sy.broadcast c
         else begin
           for _ = 1 to 8 do
             Sy.signal c
           done;
           (* A Signal may find its target already between tests (awake
              but not yet re-checking the flag), so 8 signals need not
              wake all 8 waiters; sweep up any stragglers.  The broadcast
              arm wakes everyone in one call and needs no sweep. *)
           Sy.broadcast c
         end;
         List.iter Sy.join ws))

let e3_signal =
  Test.make ~name:"e3/drain 8 waiters with signals"
    (Staged.stage (fun () -> wake_run ~broadcast:false))

let e3_broadcast =
  Test.make ~name:"e3/drain 8 waiters with broadcast"
    (Staged.stage (fun () -> wake_run ~broadcast:true))

let e7_model_check =
  let scen = Threads_harness.Scenarios.nelson () in
  Test.make ~name:"e7/model-check nelson scenario"
    (Staged.stage (fun () ->
         ignore
           (Threads_model.Checker.run Spec_core.Threads_interface.nelson_bug
              scen)))

let e9_trace =
  let report =
    Taos_threads.Api.run ~seed:5 (fun sync ->
        let module Sy =
          (val sync : Taos_threads.Sync_intf.SYNC
             with type thread = Threads_util.Tid.t)
        in
        let m = Sy.mutex () in
        let c = Sy.condition () in
        let buf = ref 0 in
        let consumer () =
          for _ = 1 to 100 do
            Sy.with_lock m (fun () ->
                while !buf = 0 do
                  Sy.wait m c
                done;
                decr buf)
          done
        in
        let producer () =
          for _ = 1 to 100 do
            Sy.with_lock m (fun () ->
                incr buf;
                Sy.signal c)
          done
        in
        let cs = List.init 2 (fun _ -> Sy.fork consumer) in
        let ps = List.init 2 (fun _ -> Sy.fork producer) in
        List.iter Sy.join (cs @ ps))
  in
  Firefly.Machine.trace report.Firefly.Interleave.machine

let e9_conformance =
  Test.make
    ~name:
      (Printf.sprintf "e9/conformance-check %d-event trace"
         (List.length e9_trace))
    (Staged.stage (fun () ->
         ignore
           (Threads_model.Conformance.check Spec_core.Threads_interface.final
              e9_trace)))

let spec_parse =
  Test.make ~name:"spec/parse full interface"
    (Staged.stage (fun () ->
         ignore
           (Spec_core.Parser.interface_of_string
              Spec_core.Threads_interface.source)))

let spec_print =
  Test.make ~name:"spec/print full interface"
    (Staged.stage (fun () ->
         ignore (Spec_core.Printer.to_string Spec_core.Threads_interface.final)))

let e2_timed_sim =
  Test.make ~name:"e2/timed sim, 4 threads x 50 ops, 5 cpus"
    (Staged.stage (fun () ->
         ignore
           (Taos_threads.Api.run_timed ~processors:5 ~seed:7 (fun sync ->
                let module Sy =
                  (val sync : Taos_threads.Sync_intf.SYNC
                     with type thread = Threads_util.Tid.t)
                in
                let m = Sy.mutex () in
                let worker () =
                  for _ = 1 to 50 do
                    Sy.acquire m;
                    Firefly.Machine.Ops.tick 10;
                    Sy.release m
                  done
                in
                let ts = List.init 4 (fun _ -> Sy.fork worker) in
                List.iter Sy.join ts))))

(* Analyzer overhead: the same contended workload (4 threads x 25 guarded
   increments) through the sim backend with recording off, with recording
   on, and the pure analysis pass over an already-recorded run.  Recording
   is host-side bookkeeping, so the on/off gap is the whole cost of
   capture; the analyzers run post-mortem and never touch the run. *)
let analysis_backend, analysis_instrument =
  let b = Option.get (Threads_backend.Backend.find "sim") in
  match b.Threads_backend.Backend.instrument with
  | Threads_backend.Backend.Machine_access f -> (b, f)
  | _ -> assert false

let analysis_workload =
  Option.get (Threads_backend.Workload.find "mutex")

let analysis_plain =
  Test.make ~name:"analysis/sim mutex, recording off"
    (Staged.stage (fun () ->
         ignore
           (analysis_backend.Threads_backend.Backend.run ~seed:7
              analysis_workload)))

let analysis_recorded =
  Test.make ~name:"analysis/sim mutex, recording on"
    (Staged.stage (fun () ->
         ignore (analysis_instrument ~seed:7 analysis_workload)))

let analysis_pass =
  let _, machine = analysis_instrument ~seed:7 analysis_workload in
  Test.make
    ~name:
      (Printf.sprintf "analysis/analyze %d-access stream"
         (Firefly.Machine.access_count machine))
    (Staged.stage (fun () ->
         ignore (Threads_analysis.Analysis.of_machine machine)))

(* Injection overhead: the same sim mutex workload under the plain
   interleaver (analysis/sim mutex, recording off), under the fault
   engine with an empty plan (pure driver bookkeeping: trigger scan,
   timer poll, stall filter), and under the engine replaying the
   delay-wakeups plan (bookkeeping plus the injection itself). *)
let chaos_driver =
  Option.get analysis_backend.Threads_backend.Backend.chaos

let chaos_empty_plan = Threads_fault.Plan.{ id = -1; actions = [] }
let chaos_delay_plan = Threads_fault.Plan.generate ~plan_id:0 ()

let chaos_empty =
  Test.make ~name:"chaos/sim mutex, empty plan"
    (Staged.stage (fun () ->
         ignore (chaos_driver ~seed:7 ~plan:chaos_empty_plan analysis_workload)))

let chaos_injected =
  Test.make ~name:"chaos/sim mutex, delay-wakeups plan"
    (Staged.stage (fun () ->
         ignore (chaos_driver ~seed:7 ~plan:chaos_delay_plan analysis_workload)))

(* Scale-out arms: the same conformance matrix run sequentially and
   spread over every available domain by the work-stealing executor.
   The summaries are byte-identical (pinned in test/test_runner.ml); the
   ratio of the two timings is the scale-out speedup on this host.  On a
   single-core container the "max" arm measures pure executor overhead
   instead — `scale_jobs` in the JSON says which. *)
let scale_backend = Option.get (Threads_backend.Backend.find "uniproc")
let scale_workload = Option.get (Threads_backend.Workload.find "condvar")
let scale_seeds = 8
let scale_jobs = Threads_runner.recommended_jobs ()

let scale_seq =
  Test.make ~name:"scale/conform 8 seeds, jobs=1"
    (Staged.stage (fun () ->
         ignore
           (Threads_backend.Crosscheck.conform ~jobs:1 scale_backend
              scale_workload ~seeds:scale_seeds)))

let scale_par =
  Test.make ~name:"scale/conform 8 seeds, jobs=max"
    (Staged.stage (fun () ->
         ignore
           (Threads_backend.Crosscheck.conform ~jobs:scale_jobs scale_backend
              scale_workload ~seeds:scale_seeds)))

(* Schedule-exploration arms: exhaustive DFS vs sleep-set DPOR on the
   wakeup-waiting scenario (the one scenario small enough for DFS to
   finish quickly).  Both traverse the full tree; DPOR visits a fraction
   of the executions — the deterministic reduction itself is recorded in
   the JSON's `dpor` block, these arms time it. *)
let explore_scenario =
  Option.get (Threads_harness.Explore_scenarios.find "wakeup-waiting")

let explore_dfs =
  Test.make ~name:"explore/wakeup-waiting dfs"
    (Staged.stage (fun () ->
         ignore
           (Firefly.Explore.explore_all
              ~max_depth:explore_scenario.Threads_harness.Explore_scenarios.max_depth
              ~build:explore_scenario.Threads_harness.Explore_scenarios.build
              explore_scenario.Threads_harness.Explore_scenarios.check)))

let explore_dpor =
  Test.make ~name:"explore/wakeup-waiting dpor"
    (Staged.stage (fun () ->
         ignore
           (Firefly.Explore.explore_dpor
              ~max_depth:explore_scenario.Threads_harness.Explore_scenarios.max_depth
              ~build:explore_scenario.Threads_harness.Explore_scenarios.build
              explore_scenario.Threads_harness.Explore_scenarios.check)))

(* The reduction is deterministic (same scenario, same tree): measured
   once outside the timing loop, like `arm_sim_cycles`. *)
let dpor_block =
  let s = explore_scenario in
  let module Sc = Threads_harness.Explore_scenarios in
  let dfs_v, dfs_stats, dfs_complete =
    Firefly.Explore.explore_all ~max_depth:s.Sc.max_depth ~build:s.Sc.build
      s.Sc.check
  in
  let dpor_v, dpor_stats =
    Firefly.Explore.explore_dpor ~max_depth:s.Sc.max_depth ~build:s.Sc.build
      s.Sc.check
  in
  let dfs_execs = dfs_stats.Firefly.Explore.terminal_runs
                  + dfs_stats.Firefly.Explore.truncated_runs
  in
  let open Obs.Json in
  Obj
    [
      ("scenario", String s.Sc.name);
      ("dfs_executions", Int dfs_execs);
      ("dfs_complete", Bool dfs_complete);
      ("dpor_executions", Int dpor_stats.Firefly.Explore.executions);
      ("dpor_sleep_blocked", Int dpor_stats.Firefly.Explore.sleep_blocked);
      ("dpor_peak_depth", Int dpor_stats.Firefly.Explore.peak_depth);
      ("dpor_complete", Bool dpor_stats.Firefly.Explore.complete);
      ( "prune_pct",
        Float
          (100.
          *. (1.
             -. float_of_int dpor_stats.Firefly.Explore.executions
                /. float_of_int (max 1 dfs_execs))) );
      ("violations_agree", Bool (dfs_v = dpor_v));
    ]

let benchmark ~quick tests =
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |]
  in
  let instances = Instance.[ monotonic_clock ] in
  let limit, quota = if quick then (200, 0.05) else (2000, 0.5) in
  let cfg =
    Benchmark.cfg ~limit ~quota:(Time.second quota) ~stabilize:true ()
  in
  let raw = Benchmark.all cfg instances tests in
  Analyze.all ols Instance.monotonic_clock raw

(* Deterministic simulated-cycle counts for the simulator-shaped arms,
   measured once outside the timing loop: the same seed gives the same
   schedule, so these are stable across hosts and runs — the trajectory
   CI tracks, next to the host-dependent ns figures. *)
let arm_sim_cycles =
  let cycles_of (report : Firefly.Interleave.report) =
    Firefly.Machine.total_cycles report.Firefly.Interleave.machine
  in
  let api_cycles ?processors ~seed body =
    match processors with
    | None -> cycles_of (Taos_threads.Api.run ~seed body)
    | Some p ->
      let r = Taos_threads.Api.run_timed ~processors:p ~seed body in
      Firefly.Machine.total_cycles r.Firefly.Timed.machine
  in
  let sim_pairs sync =
    let module Sy =
      (val sync : Taos_threads.Sync_intf.SYNC with type thread = Threads_util.Tid.t)
    in
    let m = Sy.mutex () in
    for _ = 1 to 100 do
      Sy.acquire m;
      Sy.release m
    done
  in
  let e2_body sync =
    let module Sy =
      (val sync : Taos_threads.Sync_intf.SYNC with type thread = Threads_util.Tid.t)
    in
    let m = Sy.mutex () in
    let worker () =
      for _ = 1 to 50 do
        Sy.acquire m;
        Firefly.Machine.Ops.tick 10;
        Sy.release m
      done
    in
    let ts = List.init 4 (fun _ -> Sy.fork worker) in
    List.iter Sy.join ts
  in
  (* Same body as wake_run, run once outside the timing loop for its
     deterministic cycle count. *)
  let wake_cycles ~broadcast =
    api_cycles ~seed:3 (fun sync ->
        let module Sy =
          (val sync : Taos_threads.Sync_intf.SYNC
             with type thread = Threads_util.Tid.t)
        in
        let m = Sy.mutex () in
        let c = Sy.condition () in
        let flag = ref false in
        let waiter () =
          Sy.with_lock m (fun () ->
              while not !flag do
                Sy.wait m c
              done)
        in
        let ws = List.init 8 (fun _ -> Sy.fork waiter) in
        Sy.with_lock m (fun () -> flag := true);
        if broadcast then Sy.broadcast c
        else begin
          for _ = 1 to 8 do
            Sy.signal c
          done;
          Sy.broadcast c
        end;
        List.iter Sy.join ws)
  in
  let analysis_cycles =
    let _, machine = analysis_instrument ~seed:7 analysis_workload in
    Firefly.Machine.total_cycles machine
  in
  let chaos_cycles plan =
    let _, o = chaos_driver ~seed:7 ~plan analysis_workload in
    Firefly.Machine.total_cycles o.Threads_fault.Engine.machine
  in
  [
    ("e1/sim 100 pairs (full machine)", api_cycles ~seed:1 sim_pairs);
    ("e2/timed sim, 4 threads x 50 ops, 5 cpus",
     api_cycles ~processors:5 ~seed:7 e2_body);
    ("e3/drain 8 waiters with signals", wake_cycles ~broadcast:false);
    ("e3/drain 8 waiters with broadcast", wake_cycles ~broadcast:true);
    ("analysis/sim mutex, recording off", analysis_cycles);
    ("analysis/sim mutex, recording on", analysis_cycles);
    (Printf.sprintf "analysis/analyze %d-access stream"
       (let _, machine = analysis_instrument ~seed:7 analysis_workload in
        Firefly.Machine.access_count machine),
     analysis_cycles);
    ("chaos/sim mutex, empty plan", chaos_cycles chaos_empty_plan);
    ("chaos/sim mutex, delay-wakeups plan", chaos_cycles chaos_delay_plan);
  ]

(* Strip the Bechamel group prefix ("threads-repro/") for stable keys. *)
let arm_key name =
  match String.index_opt name '/' with
  | Some i when String.sub name 0 i = "threads-repro" ->
    String.sub name (i + 1) (String.length name - i - 1)
  | _ -> name

(* Schema v2 adds a [commit] field (the trajectory's x-axis; Null unless
   --commit=SHA is passed) next to the v1 keys.  `repro bench-diff`
   accepts both versions. *)
let bench_json ~quick ~commit rows =
  let open Obs.Json in
  let record (name, ns) =
    let key = arm_key name in
    Obj
      [
        ("name", String key);
        ("host_us_per_run", match ns with Some v -> Float (v /. 1000.) | None -> Null);
        ( "sim_cycles",
          match List.assoc_opt key arm_sim_cycles with
          | Some c -> Int c
          | None -> Null );
      ]
  in
  Obj
    [
      ("schema_version", Int 2);
      ("commit", (match commit with Some s -> String s | None -> Null));
      ("quick", Bool quick);
      ("scale_jobs", Int scale_jobs);
      ("dpor", dpor_block);
      ("benchmarks", Arr (List.map record rows));
    ]

let rec ensure_dir d =
  if d <> "." && d <> "/" && not (Sys.file_exists d) then begin
    ensure_dir (Filename.dirname d);
    Sys.mkdir d 0o755
  end

let write_bench_json ~quick ~commit ~history rows =
  let json = bench_json ~quick ~commit rows in
  ensure_dir "results";
  let oc = open_out "results/BENCH.json" in
  output_string oc (Obs.Json.to_string json);
  output_char oc '\n';
  close_out oc;
  print_endline "wrote results/BENCH.json";
  (* The trajectory is append-only JSON lines, newest last — the shape
     `repro bench-diff` reads back. *)
  match history with
  | None -> ()
  | Some path ->
    ensure_dir (Filename.dirname path);
    let oc = open_out_gen [ Open_append; Open_creat ] 0o644 path in
    output_string oc (Obs.Json.to_string json);
    output_char oc '\n';
    close_out oc;
    Printf.printf "appended %s\n" path

(* Flag parsing is deliberately bare: --quick, --commit=SHA,
   --history=FILE (the only flags this binary takes). *)
let flag_value name =
  let p = name ^ "=" in
  Array.fold_left
    (fun acc a ->
      if String.length a > String.length p
         && String.sub a 0 (String.length p) = p
      then Some (String.sub a (String.length p) (String.length a - String.length p))
      else acc)
    None Sys.argv

let () =
  let quick = Array.exists (( = ) "--quick") Sys.argv in
  let commit = flag_value "--commit" in
  let history = flag_value "--history" in
  let tests =
    Test.make_grouped ~name:"threads-repro"
      [
        e1_multicore_pair;
        e1_stdlib_pair;
        e1_sim_pair;
        e2_timed_sim;
        e3_signal;
        e3_broadcast;
        e7_model_check;
        e9_conformance;
        spec_parse;
        spec_print;
        analysis_plain;
        analysis_recorded;
        analysis_pass;
        chaos_empty;
        chaos_injected;
        scale_seq;
        scale_par;
        explore_dfs;
        explore_dpor;
      ]
  in
  let results = benchmark ~quick tests in
  let rows = Hashtbl.fold (fun name ols acc -> (name, ols) :: acc) results [] in
  let rows = List.sort (fun (a, _) (b, _) -> compare a b) rows in
  Printf.printf "%-55s %15s\n" "benchmark" "ns/run";
  Printf.printf "%s\n" (String.make 72 '-');
  let measured =
    List.map
      (fun (name, ols) ->
        let ns =
          match Analyze.OLS.estimates ols with
          | Some (x :: _) -> Some x
          | _ -> None
        in
        Printf.printf "%-55s %15s\n" name
          (match ns with Some x -> Printf.sprintf "%.1f" x | None -> "n/a");
        (name, ns))
      rows
  in
  write_bench_json ~quick ~commit ~history measured;
  print_endline
    "\n(ns per run; full experiment tables: dune exec bin/repro.exe -- all)"
