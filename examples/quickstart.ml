(* Quickstart: a bounded buffer with Mutex + two Conditions, the canonical
   monitor idiom of the paper's Informal Description, written once against
   the backend-generic SYNC signature and executed on all three backends:
   the Firefly simulation, the co-routine version, and real OCaml 5
   domains.

     dune exec examples/quickstart.exe *)

module Tid = Threads_util.Tid

(* The client program: note the while-loops around Wait — return from Wait
   is only a hint that must be confirmed. *)
module Bounded_buffer (S : Taos_threads.Sync_intf.SYNC) = struct
  type t = {
    m : S.mutex;
    nonempty : S.condition;
    nonfull : S.condition;
    items : int Queue.t;
    capacity : int;
  }

  let create capacity =
    {
      m = S.mutex ();
      nonempty = S.condition ();
      nonfull = S.condition ();
      items = Queue.create ();
      capacity;
    }

  let put buf x =
    S.with_lock buf.m (fun () ->
        while Queue.length buf.items >= buf.capacity do
          S.wait buf.m buf.nonfull
        done;
        Queue.add x buf.items;
        S.signal buf.nonempty)

  let get buf =
    S.with_lock buf.m (fun () ->
        while Queue.is_empty buf.items do
          S.wait buf.m buf.nonempty
        done;
        let x = Queue.take buf.items in
        S.signal buf.nonfull;
        x)

  let run ~items ~producers ~consumers =
    let buf = create 3 in
    let sum = ref 0 and produced = ref 0 in
    let m_sum = S.mutex () in
    let producer _ =
      S.fork (fun () ->
          for i = 1 to items do
            put buf i
          done)
    in
    let consumer _ =
      S.fork (fun () ->
          for _ = 1 to items * producers / consumers do
            let x = get buf in
            S.with_lock m_sum (fun () ->
                sum := !sum + x;
                incr produced)
          done)
    in
    let ps = List.init producers producer in
    let cs = List.init consumers consumer in
    List.iter S.join (ps @ cs);
    (!sum, !produced)
end

let expect name (sum, n) ~items ~producers =
  let want_n = items * producers in
  let want_sum = producers * (items * (items + 1) / 2) in
  Printf.printf "%-22s consumed %d items, sum %d  (%s)\n" name n sum
    (if n = want_n && sum = want_sum then "ok" else "MISMATCH")

let () =
  let items = 50 and producers = 2 and consumers = 2 in
  (* 1. Firefly simulation: deterministic, schedule-controlled. *)
  let result = ref (0, 0) in
  let report =
    Taos_threads.Api.run ~seed:42 (fun sync ->
        let module S =
          (val sync : Taos_threads.Sync_intf.SYNC with type thread = Tid.t)
        in
        let module B = Bounded_buffer (S) in
        result := B.run ~items ~producers ~consumers)
  in
  expect "firefly simulator:" !result ~items ~producers;
  Printf.printf "  (simulated: %d instructions, %d trace events)\n"
    (Firefly.Machine.total_instructions report.Firefly.Interleave.machine)
    (List.length (Firefly.Machine.trace report.Firefly.Interleave.machine));

  (* ... and because the simulator logs every atomic action, we can verify
     the whole run against the paper's formal specification: *)
  let conf =
    Threads_model.Conformance.check Spec_core.Threads_interface.final
      (Firefly.Machine.trace report.Firefly.Interleave.machine)
  in
  Printf.printf "  conformance vs formal spec: %s\n"
    (if Threads_model.Conformance.ok conf then "every event admitted"
     else "VIOLATION");

  (* 2. Co-routine backend (the paper's single-process Unix version). *)
  let result = ref (0, 0) in
  ignore
    (Taos_threads.Uniproc.run ~seed:1 (fun sync ->
         let module S =
           (val sync : Taos_threads.Sync_intf.SYNC with type thread = Tid.t)
         in
         let module B = Bounded_buffer (S) in
         result := B.run ~items ~producers ~consumers));
  expect "co-routine backend:" !result ~items ~producers;

  (* 3. Real parallelism (OCaml 5 domains). *)
  let module B = Bounded_buffer (Threads_multicore.Multicore.Sync) in
  let result =
    Threads_multicore.Multicore.run (fun () ->
        B.run ~items ~producers ~consumers)
  in
  expect "multicore backend:" result ~items ~producers
