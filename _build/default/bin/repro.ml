(* repro — regenerate the paper's evaluation claims.

   repro list            enumerate experiments
   repro run E1 E7       run specific experiments
   repro all             run everything
   repro spec [--variant v]   print a spec variant (concrete syntax) *)

open Cmdliner

let setup () = Threads_harness.Registry.init ()

let list_cmd =
  let run () =
    setup ();
    List.iter
      (fun (e : Threads_harness.Exp.t) ->
        Printf.printf "%-4s %s\n     %s\n" e.id e.title e.claim)
      (Threads_harness.Exp.all ())
  in
  Cmd.v (Cmd.info "list" ~doc:"List the experiments and the claims they reproduce")
    Term.(const run $ const ())

let run_cmd =
  let ids = Arg.(non_empty & pos_all string [] & info [] ~docv:"ID") in
  let run ids =
    setup ();
    match Threads_harness.Exp.run_ids ids with
    | [] -> ()
    | unknown ->
      Printf.eprintf "unknown experiment id(s): %s\n"
        (String.concat ", " unknown);
      exit 1
  in
  Cmd.v
    (Cmd.info "run" ~doc:"Run one or more experiments (e.g. run E1 E7)")
    Term.(const run $ ids)

let all_cmd =
  let run () =
    setup ();
    Threads_harness.Exp.run_all ()
  in
  Cmd.v (Cmd.info "all" ~doc:"Run every experiment") Term.(const run $ const ())

let spec_cmd =
  let variant =
    Arg.(value & opt string "final" & info [ "variant" ] ~docv:"VARIANT")
  in
  let run variant =
    match List.assoc_opt variant Spec_core.Threads_interface.variants with
    | Some iface -> print_string (Spec_core.Printer.to_string iface)
    | None ->
      Printf.eprintf "unknown variant %s; available: %s\n" variant
        (String.concat ", "
           (List.map fst Spec_core.Threads_interface.variants));
      exit 1
  in
  Cmd.v
    (Cmd.info "spec"
       ~doc:
         "Print a specification variant (final, missing-mutex-guard, \
          must-raise, nelson-bug) in the concrete syntax")
    Term.(const run $ variant)

let trace_cmd =
  let seed =
    Arg.(value & opt int 42 & info [ "seed" ] ~docv:"SEED")
  in
  let variant =
    Arg.(value & opt string "final" & info [ "variant" ] ~docv:"VARIANT")
  in
  let run seed variant =
    let iface =
      match List.assoc_opt variant Spec_core.Threads_interface.variants with
      | Some i -> i
      | None ->
        Printf.eprintf "unknown variant %s\n" variant;
        exit 1
    in
    (* a workload touching every primitive *)
    let report =
      Taos_threads.Api.run ~seed (fun sync ->
          let module S =
            (val sync : Taos_threads.Sync_intf.SYNC
               with type thread = Threads_util.Tid.t)
          in
          let m = S.mutex () in
          let c = S.condition () in
          let sem = S.semaphore () in
          let flag = ref false in
          let w =
            S.fork (fun () ->
                S.with_lock m (fun () ->
                    while not !flag do
                      S.wait m c
                    done))
          in
          let aw =
            S.fork (fun () ->
                try S.with_lock m (fun () -> S.alert_wait m c)
                with Taos_threads.Sync_intf.Alerted -> ())
          in
          S.p sem;
          S.alert aw;
          S.with_lock m (fun () -> flag := true);
          S.broadcast c;
          S.v sem;
          ignore (S.test_alert ());
          S.join w;
          S.join aw)
    in
    let machine = report.Firefly.Interleave.machine in
    List.iteri
      (fun i e ->
        Printf.printf "%3d  %s\n" i (Firefly.Trace.event_to_string e))
      (Firefly.Machine.trace machine);
    let rep = Threads_model.Conformance.check_machine iface machine in
    Format.printf "---@.%a@." Threads_model.Conformance.pp_report rep;
    if not (Threads_model.Conformance.ok rep) then exit 2
  in
  Cmd.v
    (Cmd.info "trace"
       ~doc:
         "Run a demo workload on the simulator, print its linearized trace \
          and conformance-check it against a spec variant")
    Term.(const run $ seed $ variant)

let default =
  Term.(ret (const (fun () -> `Help (`Pager, None)) $ const ()))

let () =
  let info =
    Cmd.info "repro" ~version:"1.0"
      ~doc:
        "Reproduction of Birrell, Guttag, Horning & Levin, Synchronization \
         Primitives for a Multiprocessor: A Formal Specification (SRC-20, \
         1987)"
  in
  exit (Cmd.eval (Cmd.group ~default info [ list_cmd; run_cmd; all_cmd; spec_cmd; trace_cmd ]))
