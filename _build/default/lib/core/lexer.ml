type token =
  | IDENT of string
  | KW of string
  | LPAREN
  | RPAREN
  | LBRACKET
  | RBRACKET
  | LBRACE
  | RBRACE
  | COMMA
  | SEMI
  | COLON
  | EQUALS
  | AMP
  | BAR
  | TILDE
  | ARROW
  | EOF

let pp_token ppf = function
  | IDENT s -> Format.fprintf ppf "identifier %S" s
  | KW s -> Format.fprintf ppf "keyword %s" s
  | LPAREN -> Format.pp_print_string ppf "'('"
  | RPAREN -> Format.pp_print_string ppf "')'"
  | LBRACKET -> Format.pp_print_string ppf "'['"
  | RBRACKET -> Format.pp_print_string ppf "']'"
  | LBRACE -> Format.pp_print_string ppf "'{'"
  | RBRACE -> Format.pp_print_string ppf "'}'"
  | COMMA -> Format.pp_print_string ppf "','"
  | SEMI -> Format.pp_print_string ppf "';'"
  | COLON -> Format.pp_print_string ppf "':'"
  | EQUALS -> Format.pp_print_string ppf "'='"
  | AMP -> Format.pp_print_string ppf "'&'"
  | BAR -> Format.pp_print_string ppf "'|'"
  | TILDE -> Format.pp_print_string ppf "'~'"
  | ARROW -> Format.pp_print_string ppf "'=>'"
  | EOF -> Format.pp_print_string ppf "end of input"

exception Lex_error of string * int

let keywords =
  [
    "INTERFACE"; "TYPE"; "INITIALLY"; "VAR"; "EXCEPTION"; "ATOMIC";
    "PROCEDURE"; "ACTION"; "COMPOSITION"; "OF"; "END"; "REQUIRES";
    "MODIFIES"; "AT"; "MOST"; "WHEN"; "ENSURES"; "RETURNS"; "RAISES"; "SET";
    "IN"; "SUBSET"; "UNCHANGED"; "SELF"; "NIL"; "TRUE"; "FALSE";
  ]

let is_word_char c =
  (c >= 'a' && c <= 'z')
  || (c >= 'A' && c <= 'Z')
  || (c >= '0' && c <= '9')
  || c = '_'

let tokenize src =
  let n = String.length src in
  let toks = ref [] in
  let line = ref 1 in
  let emit t = toks := (t, !line) :: !toks in
  let i = ref 0 in
  while !i < n do
    let c = src.[!i] in
    if c = '\n' then begin
      incr line;
      incr i
    end
    else if c = ' ' || c = '\t' || c = '\r' then incr i
    else if c = '-' && !i + 1 < n && src.[!i + 1] = '-' then begin
      (* line comment *)
      while !i < n && src.[!i] <> '\n' do
        incr i
      done
    end
    else if is_word_char c then begin
      let start = !i in
      while !i < n && is_word_char src.[!i] do
        incr i
      done;
      let word = String.sub src start (!i - start) in
      if List.mem word keywords then emit (KW word) else emit (IDENT word)
    end
    else begin
      let two = if !i + 1 < n then String.sub src !i 2 else "" in
      if two = "=>" then begin
        emit ARROW;
        i := !i + 2
      end
      else begin
        (match c with
        | '(' -> emit LPAREN
        | ')' -> emit RPAREN
        | '[' -> emit LBRACKET
        | ']' -> emit RBRACKET
        | '{' -> emit LBRACE
        | '}' -> emit RBRACE
        | ',' -> emit COMMA
        | ';' -> emit SEMI
        | ':' -> emit COLON
        | '=' -> emit EQUALS
        | '&' -> emit AMP
        | '|' -> emit BAR
        | '~' -> emit TILDE
        | _ ->
          raise (Lex_error (Printf.sprintf "unexpected character %C" c, !line)));
        incr i
      end
    end
  done;
  emit EOF;
  List.rev !toks
