(** Pretty-printer for interface specifications, producing the concrete
    syntax accepted by {!Parser}.  [Parser.interface_of_string (to_string
    iface)] yields an interface equal to [iface] (checked by a property
    test). *)

val pp_interface : Format.formatter -> Proc.interface -> unit
val pp_proc : Proc.interface -> Format.formatter -> Proc.t -> unit
val to_string : Proc.interface -> string
