(** Executable semantics of interface specifications.

    The clauses are declarative; to model-check client programs we need the
    set of transitions an atomic action {e allows} from a given pre state.
    [outcomes] enumerates them by generating candidate post states from
    small per-sort pools (every value constructively expressible with the
    interface's term language: insert/delete of relevant threads, the empty
    set, NIL, SELF, the enum constants) and filtering by the ENSURES
    formula.  The enumeration is sound by construction — every returned
    outcome satisfies the clauses — and complete for any spec whose ENSURES
    only uses this term language, which covers the whole Threads interface
    and its historical variants.

    [check_transition] is the converse direction, used by the trace
    conformance checker: given an {e observed} (pre, post, outcome) triple
    from an implementation run, decide whether some case of the action
    admits it. *)

type outcome = {
  o_case : int;  (** index of the firing case within the action *)
  o_outcome : Proc.outcome;
  o_post : State.t;
  o_result : Value.t option;
}

(** [bindings_of_args iface proc args] pairs the procedure's formals with
    the supplied arguments, checking arity, VAR-ness (a [By_var] formal
    needs an object of the right sort, a [By_value] formal a value) and
    sorts.  Raises [Invalid_argument] on mismatch. *)
val bindings_of_args :
  Proc.interface ->
  Proc.t ->
  [ `Obj of Spec_obj.t | `Val of Value.t ] list ->
  (string * Term.binding) list

(** [requires_holds proc ~self ~bindings pre] evaluates the REQUIRES
    clause.  A violated REQUIRES means the {e caller} is at fault; the spec
    then allows anything. *)
val requires_holds :
  Proc.t ->
  self:Threads_util.Tid.t ->
  bindings:(string * Term.binding) list ->
  State.t ->
  bool

(** [enabled action ~self ~bindings pre] — the indices of cases whose WHEN
    guard holds in [pre].  Empty means the action must delay. *)
val enabled :
  Proc.action ->
  self:Threads_util.Tid.t ->
  bindings:(string * Term.binding) list ->
  State.t ->
  int list

(** [outcomes iface proc action ~self ~bindings pre] enumerates all
    spec-allowed transitions of [action] from [pre].  Objects not listed in
    the procedure's MODIFIES keep their values. *)
val outcomes :
  Proc.interface ->
  Proc.t ->
  Proc.action ->
  self:Threads_util.Tid.t ->
  bindings:(string * Term.binding) list ->
  State.t ->
  outcome list

(** [check_transition iface proc action ~self ~bindings ~pre ~post ~outcome
    ~result] validates an observed transition: some case must (1) have the
    matching outcome kind, (2) have its WHEN true in [pre], (3) have its
    ENSURES true over (pre, post, result); additionally every object bound
    in [pre] and not named by MODIFIES must be unchanged in [post].
    Returns [Ok case_index] or [Error reason]. *)
val check_transition :
  Proc.interface ->
  Proc.t ->
  Proc.action ->
  self:Threads_util.Tid.t ->
  bindings:(string * Term.binding) list ->
  pre:State.t ->
  post:State.t ->
  outcome:Proc.outcome ->
  result:Value.t option ->
  (int, string) result
