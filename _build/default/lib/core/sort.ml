type t = Thread | Bool | Int | Thread_set | Semaphore

let equal = ( = )

let to_string = function
  | Thread -> "Thread"
  | Bool -> "bool"
  | Int -> "int"
  | Thread_set -> "SET OF Thread"
  | Semaphore -> "(available, unavailable)"

let pp ppf t = Format.pp_print_string ppf (to_string t)
