module Tid = Threads_util.Tid

type sem = Available | Unavailable

type t =
  | Nil
  | Thread of Tid.t
  | Bool of bool
  | Int of int
  | Set of Tid.Set.t
  | Sem of sem

let equal a b =
  match (a, b) with
  | Nil, Nil -> true
  | Thread x, Thread y -> Tid.equal x y
  | Bool x, Bool y -> x = y
  | Int x, Int y -> x = y
  | Set x, Set y -> Tid.Set.equal x y
  | Sem x, Sem y -> x = y
  | (Nil | Thread _ | Bool _ | Int _ | Set _ | Sem _), _ -> false

let compare a b =
  let tag = function
    | Nil -> 0
    | Thread _ -> 1
    | Bool _ -> 2
    | Int _ -> 3
    | Set _ -> 4
    | Sem _ -> 5
  in
  match (a, b) with
  | Nil, Nil -> 0
  | Thread x, Thread y -> Tid.compare x y
  | Bool x, Bool y -> Bool.compare x y
  | Int x, Int y -> Int.compare x y
  | Set x, Set y -> Tid.Set.compare x y
  | Sem x, Sem y -> Stdlib.compare x y
  | _ -> Int.compare (tag a) (tag b)

let sort_of = function
  | Nil | Thread _ -> Sort.Thread
  | Bool _ -> Sort.Bool
  | Int _ -> Sort.Int
  | Set _ -> Sort.Thread_set
  | Sem _ -> Sort.Semaphore

let has_sort v s = Sort.equal (sort_of v) s

let initial = function
  | Sort.Thread -> Nil
  | Sort.Bool -> Bool false
  | Sort.Int -> Int 0
  | Sort.Thread_set -> Set Tid.Set.empty
  | Sort.Semaphore -> Sem Available

let to_string = function
  | Nil -> "NIL"
  | Thread t -> Tid.to_string t
  | Bool b -> string_of_bool b
  | Int i -> string_of_int i
  | Set s -> Tid.Set.to_string s
  | Sem Available -> "available"
  | Sem Unavailable -> "unavailable"

let pp ppf v = Format.pp_print_string ppf (to_string v)

let sort_error op v =
  invalid_arg (Printf.sprintf "Value.%s: bad operand %s" op (to_string v))

let as_set = function Set s -> s | v -> sort_error "as_set" v

let as_thread_or_nil = function
  | Nil -> None
  | Thread t -> Some t
  | v -> sort_error "as_thread_or_nil" v

let as_bool = function Bool b -> b | v -> sort_error "as_bool" v

let as_tid op = function Thread t -> t | v -> sort_error op v

let insert set thread = Set (Tid.Set.add (as_tid "insert" thread) (as_set set))
let delete set thread = Set (Tid.Set.remove (as_tid "delete" thread) (as_set set))
let member thread set = Tid.Set.mem (as_tid "member" thread) (as_set set)
let subset s1 s2 = Tid.Set.subset (as_set s1) (as_set s2)
