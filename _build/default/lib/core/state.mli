(** Abstract two-tier states: a persistent map from specification objects to
    their values.

    States are persistent so the model checker can branch cheaply; [hash]
    and [equal] let it memoize visited states. *)

type t

(** The state binding nothing but [alerts = {}]. *)
val empty : t

(** [add obj v st] binds [obj]; the value must inhabit [obj.sort]. *)
val add : Spec_obj.t -> Value.t -> t -> t

(** [get st obj] — raises [Not_found] if unbound. *)
val get : t -> Spec_obj.t -> Value.t

(** [set st obj v] updates an existing binding (same sort check as [add]). *)
val set : t -> Spec_obj.t -> Value.t -> t

val alerts : t -> Threads_util.Tid.Set.t
val set_alerts : t -> Threads_util.Tid.Set.t -> t

(** [objects st] in increasing oid order ([alerts] first). *)
val objects : t -> Spec_obj.t list

val equal : t -> t -> bool
val compare : t -> t -> int
val hash : t -> int
val pp : Format.formatter -> t -> unit
