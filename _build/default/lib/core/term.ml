type stage = Pre | Post

type t =
  | Self
  | Nil_const
  | Lit of Value.t
  | Ref of string * stage
  | Result
  | Insert of t * t
  | Delete of t * t
  | Empty_set

type binding = Obj of Spec_obj.t | Const of Value.t

type env = {
  self : Threads_util.Tid.t;
  bindings : (string * binding) list;
  pre : State.t;
  post : State.t option;
  result : Value.t option;
}

let env ~self ~bindings ~pre ?post ?result () =
  { self; bindings; pre; post; result }

exception Eval_error of string

let error fmt = Format.kasprintf (fun s -> raise (Eval_error s)) fmt

let resolve env name =
  match List.assoc_opt name env.bindings with
  | Some b -> b
  | None ->
    if name = "alerts" then Obj Spec_obj.alerts
    else error "unbound name %s" name

let rec eval env t =
  match t with
  | Self -> Value.Thread env.self
  | Nil_const -> Value.Nil
  | Lit v -> v
  | Empty_set -> Value.Set Threads_util.Tid.Set.empty
  | Result -> (
    match env.result with
    | Some v -> v
    | None -> error "RESULT referenced with no return value")
  | Ref (name, stage) -> (
    match resolve env name with
    | Const v -> v
    | Obj obj -> (
      match stage with
      | Pre -> State.get env.pre obj
      | Post -> (
        match env.post with
        | Some post -> State.get post obj
        | None -> error "%s_post referenced in a one-state predicate" name)))
  | Insert (s, x) -> Value.insert (eval env s) (eval env x)
  | Delete (s, x) -> Value.delete (eval env s) (eval env x)

let rec equal a b =
  match (a, b) with
  | Self, Self | Nil_const, Nil_const | Result, Result | Empty_set, Empty_set
    ->
    true
  | Lit x, Lit y -> Value.equal x y
  | Ref (n1, s1), Ref (n2, s2) -> n1 = n2 && s1 = s2
  | Insert (a1, a2), Insert (b1, b2) | Delete (a1, a2), Delete (b1, b2) ->
    equal a1 b1 && equal a2 b2
  | ( ( Self | Nil_const | Lit _ | Ref _ | Result | Insert _ | Delete _
      | Empty_set ),
      _ ) ->
    false

let rec pp ppf = function
  | Self -> Format.pp_print_string ppf "SELF"
  | Nil_const -> Format.pp_print_string ppf "NIL"
  | Result -> Format.pp_print_string ppf "RESULT"
  | Empty_set -> Format.pp_print_string ppf "{}"
  | Lit v -> Value.pp ppf v
  | Ref (name, Pre) -> Format.pp_print_string ppf name
  | Ref (name, Post) -> Format.fprintf ppf "%s_post" name
  | Insert (s, x) -> Format.fprintf ppf "insert(%a, %a)" pp s pp x
  | Delete (s, x) -> Format.fprintf ppf "delete(%a, %a)" pp s pp x

let to_string t = Format.asprintf "%a" pp t
