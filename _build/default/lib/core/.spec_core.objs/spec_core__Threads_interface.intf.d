lib/core/threads_interface.mli: Proc
