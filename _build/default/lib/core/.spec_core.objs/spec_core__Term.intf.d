lib/core/term.mli: Format Spec_obj State Threads_util Value
