lib/core/threads_interface.ml: Formula Proc Sort Term Threads_util Value
