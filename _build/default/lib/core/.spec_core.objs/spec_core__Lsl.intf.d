lib/core/lsl.mli: Format Value
