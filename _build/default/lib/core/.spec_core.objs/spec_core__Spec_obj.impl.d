lib/core/spec_obj.ml: Format Int Sort
