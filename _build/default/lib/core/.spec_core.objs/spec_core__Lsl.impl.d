lib/core/lsl.ml: Format List Printf Threads_util Value
