lib/core/spec_obj.mli: Format Sort
