lib/core/formula.ml: Format List String Term Value
