lib/core/parser.ml: Array Format Formula Lexer List Option Proc Sort String Term Threads_util Value
