lib/core/state.ml: Format Hashtbl List Map Spec_obj Threads_util Value
