lib/core/lexer.ml: Format List Printf String
