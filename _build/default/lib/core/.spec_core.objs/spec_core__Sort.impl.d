lib/core/sort.ml: Format
