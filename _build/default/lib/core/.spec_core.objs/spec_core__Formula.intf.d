lib/core/formula.mli: Format Term
