lib/core/printer.mli: Format Proc
