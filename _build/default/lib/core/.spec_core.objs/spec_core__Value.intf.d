lib/core/value.mli: Format Sort Threads_util
