lib/core/term.ml: Format List Spec_obj State Threads_util Value
