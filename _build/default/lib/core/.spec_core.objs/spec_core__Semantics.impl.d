lib/core/semantics.ml: Format Formula Int List Option Printf Proc Sort Spec_obj State String Term Threads_util Value
