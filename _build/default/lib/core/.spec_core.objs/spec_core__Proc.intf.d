lib/core/proc.mli: Format Formula Sort Value
