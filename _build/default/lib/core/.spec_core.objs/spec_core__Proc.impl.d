lib/core/proc.ml: Format Formula List Printf Sort Term Value
