lib/core/value.ml: Bool Format Int Printf Sort Stdlib Threads_util
