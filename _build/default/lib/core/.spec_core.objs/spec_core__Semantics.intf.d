lib/core/semantics.mli: Proc Spec_obj State Term Threads_util Value
