lib/core/parser.mli: Formula Proc Term
