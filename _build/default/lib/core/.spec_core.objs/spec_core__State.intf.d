lib/core/state.mli: Format Spec_obj Threads_util Value
