lib/core/printer.ml: Format Formula List Printf Proc Sort String Threads_util Value
