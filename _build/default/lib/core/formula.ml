type t =
  | True
  | False
  | Truth of Term.t
  | Eq of Term.t * Term.t
  | Iff of t * t
  | Member of Term.t * Term.t
  | Subset of Term.t * Term.t
  | Not of t
  | And of t * t
  | Or of t * t
  | Implies of t * t
  | Unchanged of string list

let rec eval env f =
  match f with
  | True -> true
  | False -> false
  | Truth t -> Value.as_bool (Term.eval env t)
  | Eq (a, b) -> Value.equal (Term.eval env a) (Term.eval env b)
  | Iff (a, b) -> eval env a = eval env b
  | Member (x, s) -> Value.member (Term.eval env x) (Term.eval env s)
  | Subset (a, b) -> Value.subset (Term.eval env a) (Term.eval env b)
  | Not f -> not (eval env f)
  | And (a, b) -> eval env a && eval env b
  | Or (a, b) -> eval env a || eval env b
  | Implies (a, b) -> (not (eval env a)) || eval env b
  | Unchanged names ->
    let same name =
      Value.equal
        (Term.eval env (Term.Ref (name, Term.Pre)))
        (Term.eval env (Term.Ref (name, Term.Post)))
    in
    List.for_all same names

let conj = function
  | [] -> True
  | f :: fs -> List.fold_left (fun acc g -> And (acc, g)) f fs

let rec term_names = function
  | Term.Self | Term.Nil_const | Term.Lit _ | Term.Result | Term.Empty_set ->
    []
  | Term.Ref (name, _) -> [ name ]
  | Term.Insert (a, b) | Term.Delete (a, b) -> term_names a @ term_names b

let rec term_post_names = function
  | Term.Self | Term.Nil_const | Term.Lit _ | Term.Result | Term.Empty_set ->
    []
  | Term.Ref (name, Term.Post) -> [ name ]
  | Term.Ref (_, Term.Pre) -> []
  | Term.Insert (a, b) | Term.Delete (a, b) ->
    term_post_names a @ term_post_names b

let collect by_term by_unchanged f =
  let rec go = function
    | True | False -> []
    | Truth t -> by_term t
    | Eq (a, b) | Member (a, b) | Subset (a, b) -> by_term a @ by_term b
    | Not f -> go f
    | Iff (a, b) | And (a, b) | Or (a, b) | Implies (a, b) -> go a @ go b
    | Unchanged names -> by_unchanged names
  in
  List.sort_uniq String.compare (go f)

let names f = collect term_names (fun ns -> ns) f
let post_names f = collect term_post_names (fun ns -> ns) f

let rec equal a b =
  match (a, b) with
  | True, True | False, False -> true
  | Eq (a1, a2), Eq (b1, b2)
  | Member (a1, a2), Member (b1, b2)
  | Subset (a1, a2), Subset (b1, b2) ->
    Term.equal a1 b1 && Term.equal a2 b2
  | Not x, Not y -> equal x y
  | Truth x, Truth y -> Term.equal x y
  | Iff (a1, a2), Iff (b1, b2) -> equal a1 b1 && equal a2 b2
  | And (a1, a2), And (b1, b2)
  | Or (a1, a2), Or (b1, b2)
  | Implies (a1, a2), Implies (b1, b2) ->
    equal a1 b1 && equal a2 b2
  | Unchanged xs, Unchanged ys -> xs = ys
  | ( ( True | False | Truth _ | Eq _ | Iff _ | Member _ | Subset _ | Not _
      | And _ | Or _ | Implies _ | Unchanged _ ),
      _ ) ->
    false

(* Printing uses minimal parentheses: atoms never need them; any compound
   operand of a binary connective is parenthesised, which matches the
   fully-parenthesised style of the paper closely enough to round-trip. *)
let rec pp ppf = function
  | True -> Format.pp_print_string ppf "TRUE"
  | False -> Format.pp_print_string ppf "FALSE"
  | Truth t -> Term.pp ppf t
  | Eq (a, b) -> Format.fprintf ppf "%a = %a" Term.pp a Term.pp b
  | Iff (a, b) -> Format.fprintf ppf "%a = %a" pp_atom a pp_atom b
  | Member (x, s) -> Format.fprintf ppf "%a IN %a" Term.pp x Term.pp s
  | Subset (a, b) -> Format.fprintf ppf "%a SUBSET %a" Term.pp a Term.pp b
  | Not f -> Format.fprintf ppf "~%a" pp_atom f
  | And (a, b) -> Format.fprintf ppf "%a & %a" pp_atom a pp_atom b
  | Or (a, b) -> Format.fprintf ppf "%a | %a" pp_atom a pp_atom b
  | Implies (a, b) -> Format.fprintf ppf "%a => %a" pp_atom a pp_atom b
  | Unchanged names ->
    Format.fprintf ppf "UNCHANGED [%s]" (String.concat ", " names)

and pp_atom ppf f =
  match f with
  | True | False | Truth _ | Unchanged _ -> pp ppf f
  | Eq _ | Iff _ | Member _ | Subset _ | Not _ | And _ | Or _ | Implies _ ->
    Format.fprintf ppf "(%a)" pp f

let to_string f = Format.asprintf "%a" pp f
