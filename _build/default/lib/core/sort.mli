(** Sorts of the Larch Shared Language tier used by the Threads interface.

    The paper's interface needs only a handful of well-known abstractions
    (booleans, threads, sets of threads, a two-valued semaphore enum), all of
    which appear in the Larch Shared Language Handbook; we model them as a
    fixed universe of sorts. *)

type t =
  | Thread  (** a thread identity, or the distinguished [NIL] *)
  | Bool
  | Int
  | Thread_set  (** [SET OF Thread] *)
  | Semaphore  (** the enumeration [(available, unavailable)] *)

val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit
val to_string : t -> string
