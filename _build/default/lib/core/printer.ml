let pp_sort ppf = function
  | Sort.Thread -> Format.pp_print_string ppf "Thread"
  | Sort.Bool -> Format.pp_print_string ppf "bool"
  | Sort.Int -> Format.pp_print_string ppf "int"
  | Sort.Thread_set -> Format.pp_print_string ppf "SET OF Thread"
  | Sort.Semaphore -> Format.pp_print_string ppf "(available, unavailable)"

let pp_literal ppf = function
  | Value.Nil -> Format.pp_print_string ppf "NIL"
  | Value.Bool true -> Format.pp_print_string ppf "TRUE"
  | Value.Bool false -> Format.pp_print_string ppf "FALSE"
  | Value.Set s when Threads_util.Tid.Set.is_empty s ->
    Format.pp_print_string ppf "{}"
  | v -> Value.pp ppf v

let pp_formal ppf (f : Proc.formal) =
  let mode = match f.f_mode with Proc.By_var -> "VAR " | Proc.By_value -> "" in
  Format.fprintf ppf "%s%s : %s" mode f.f_name f.f_type

let pp_case ppf (c : Proc.case) =
  let prefix =
    match c.c_outcome with
    | Proc.Returns -> ""
    | Proc.Raises e -> Printf.sprintf "RAISES %s " e
  in
  (* A RETURNS prefix is only needed to separate multi-case actions; we
     print it whenever the case carries a WHEN that could otherwise merge
     with a preceding case, i.e. always for Raises and never for plain
     Returns — the parser defaults an unprefixed case to RETURNS. *)
  (match c.c_when with
  | Formula.True -> Format.fprintf ppf "  %sENSURES %a" prefix Formula.pp c.c_ensures
  | w ->
    Format.fprintf ppf "  %sWHEN %a@\n    ENSURES %a" prefix Formula.pp w
      Formula.pp c.c_ensures)

let pp_cases ppf cases =
  (* When an action has several cases, unprefixed RETURNS cases need their
     explicit RETURNS keyword so the parser can see the case boundary. *)
  let many = List.length cases > 1 in
  List.iteri
    (fun i (c : Proc.case) ->
      if i > 0 then Format.fprintf ppf "@\n";
      match (many, c.c_outcome) with
      | true, Proc.Returns ->
        (match c.c_when with
        | Formula.True ->
          Format.fprintf ppf "  RETURNS ENSURES %a" Formula.pp c.c_ensures
        | w ->
          Format.fprintf ppf "  RETURNS WHEN %a@\n    ENSURES %a" Formula.pp w
            Formula.pp c.c_ensures)
      | _ -> pp_case ppf c)
    cases

let pp_proc _iface ppf (p : Proc.t) =
  let atomic = match p.p_kind with Proc.Atomic _ -> true | _ -> false in
  Format.fprintf ppf "@[<v>%sPROCEDURE %s(%a)"
    (if atomic then "ATOMIC " else "")
    p.p_name
    (Format.pp_print_list
       ~pp_sep:(fun ppf () -> Format.pp_print_string ppf "; ")
       pp_formal)
    p.p_formals;
  (match p.p_returns with
  | Some (name, sort) ->
    Format.fprintf ppf " RETURNS (%s : %a)" name pp_sort sort
  | None -> ());
  if p.p_raises <> [] then
    Format.fprintf ppf " RAISES %s" (String.concat ", " p.p_raises);
  (match p.p_kind with
  | Proc.Composition actions ->
    Format.fprintf ppf " =@\n  COMPOSITION OF %s END"
      (String.concat "; "
         (List.map (fun (a : Proc.action) -> a.a_name) actions))
  | Proc.Atomic _ -> ());
  (match p.p_requires with
  | Formula.True -> ()
  | r -> Format.fprintf ppf "@\n  REQUIRES %a" Formula.pp r);
  if p.p_modifies <> [] then
    Format.fprintf ppf "@\n  MODIFIES AT MOST [%s]"
      (String.concat ", " p.p_modifies);
  (match p.p_kind with
  | Proc.Atomic a -> Format.fprintf ppf "@\n%a" pp_cases a.a_cases
  | Proc.Composition actions ->
    List.iter
      (fun (a : Proc.action) ->
        Format.fprintf ppf "@\n  ATOMIC ACTION %s@\n  %a" a.a_name pp_cases
          a.a_cases)
      actions);
  Format.fprintf ppf "@]"

let pp_interface ppf (iface : Proc.interface) =
  Format.fprintf ppf "@[<v>INTERFACE %s@\n" iface.i_name;
  List.iter
    (fun (td : Proc.type_decl) ->
      Format.fprintf ppf "@\nTYPE %s = %a INITIALLY %a" td.t_name pp_sort
        td.t_sort pp_literal td.t_init)
    iface.i_types;
  List.iter
    (fun (name, sort, init) ->
      Format.fprintf ppf "@\nVAR %s : %a INITIALLY %a" name pp_sort sort
        pp_literal init)
    iface.i_globals;
  List.iter
    (fun e -> Format.fprintf ppf "@\nEXCEPTION %s" e)
    iface.i_exceptions;
  List.iter
    (fun p -> Format.fprintf ppf "@\n@\n%a" (pp_proc iface) p)
    iface.i_procs;
  Format.fprintf ppf "@]@\n"

let to_string iface = Format.asprintf "%a" pp_interface iface
