module Tid = Threads_util.Tid

type outcome = {
  o_case : int;
  o_outcome : Proc.outcome;
  o_post : State.t;
  o_result : Value.t option;
}

let bindings_of_args iface (proc : Proc.t) args =
  let formals = proc.p_formals in
  if List.length formals <> List.length args then
    invalid_arg
      (Printf.sprintf "%s: expected %d arguments, got %d" proc.p_name
         (List.length formals) (List.length args));
  List.map2
    (fun (f : Proc.formal) arg ->
      let sort = Proc.sort_of_type iface f.f_type in
      match (f.f_mode, arg) with
      | Proc.By_var, `Obj obj ->
        if not (Sort.equal obj.Spec_obj.sort sort) then
          invalid_arg
            (Format.asprintf "%s: VAR %s expects sort %a, got object %a"
               proc.p_name f.f_name Sort.pp sort Spec_obj.pp obj);
        (f.f_name, Term.Obj obj)
      | Proc.By_value, `Val v ->
        if not (Value.has_sort v sort) then
          invalid_arg
            (Format.asprintf "%s: %s expects sort %a, got %a" proc.p_name
               f.f_name Sort.pp sort Value.pp v);
        (f.f_name, Term.Const v)
      | Proc.By_var, `Val _ ->
        invalid_arg
          (Printf.sprintf "%s: VAR formal %s needs an object" proc.p_name
             f.f_name)
      | Proc.By_value, `Obj _ ->
        invalid_arg
          (Printf.sprintf "%s: by-value formal %s needs a value" proc.p_name
             f.f_name))
    formals args

let requires_holds (proc : Proc.t) ~self ~bindings pre =
  let env = Term.env ~self ~bindings ~pre () in
  Formula.eval env proc.p_requires

let enabled (action : Proc.action) ~self ~bindings pre =
  let env = Term.env ~self ~bindings ~pre () in
  List.concat
    (List.mapi
       (fun i (c : Proc.case) -> if Formula.eval env c.c_when then [ i ] else [])
       action.a_cases)

(* Objects the procedure may modify, resolved through the actual bindings.
   Global names in MODIFIES (e.g. "alerts") resolve via Term.resolve. *)
let modified_objects ~self ~bindings pre (proc : Proc.t) =
  let env = Term.env ~self ~bindings ~pre () in
  List.filter_map
    (fun name ->
      match Term.resolve env name with
      | Term.Obj obj -> Some obj
      | Term.Const _ -> None)
    proc.p_modifies
  |> List.sort_uniq Spec_obj.compare

(* Thread identities that candidate set values may be built from: SELF,
   every by-value thread argument, and the current members of the set. *)
let relevant_threads ~self ~bindings v =
  let from_bindings =
    List.filter_map
      (fun (_, b) ->
        match b with Term.Const (Value.Thread t) -> Some t | _ -> None)
      bindings
  in
  let members =
    match v with Value.Set s -> Tid.Set.elements s | _ -> []
  in
  List.sort_uniq Tid.compare ((self :: from_bindings) @ members)

let candidate_values ~self ~bindings (obj : Spec_obj.t) pre_value =
  let dedup vs = List.sort_uniq Value.compare vs in
  match obj.sort with
  | Sort.Thread ->
    dedup [ pre_value; Value.Nil; Value.Thread self ]
  | Sort.Semaphore ->
    [ Value.Sem Value.Available; Value.Sem Value.Unavailable ]
  | Sort.Bool -> [ Value.Bool false; Value.Bool true ]
  | Sort.Int -> [ pre_value ]
  | Sort.Thread_set ->
    let threads = relevant_threads ~self ~bindings pre_value in
    let s = Value.as_set pre_value in
    let with_each =
      List.concat_map
        (fun t ->
          [ Value.Set (Tid.Set.add t s); Value.Set (Tid.Set.remove t s) ])
        threads
    in
    dedup (pre_value :: Value.Set Tid.Set.empty :: with_each)

let result_candidates (proc : Proc.t) =
  match proc.p_returns with
  | None -> [ None ]
  | Some (_, Sort.Bool) -> [ Some (Value.Bool false); Some (Value.Bool true) ]
  | Some (_, Sort.Int) -> [ Some (Value.Int 0) ]
  | Some (_, sort) ->
    invalid_arg
      (Format.asprintf "%s: unsupported return sort %a" proc.p_name Sort.pp
         sort)

(* Cartesian product of candidate posts over the modified objects. *)
let candidate_posts ~self ~bindings pre objs =
  let rec go st = function
    | [] -> [ st ]
    | obj :: rest ->
      let cands = candidate_values ~self ~bindings obj (State.get pre obj) in
      List.concat_map (fun v -> go (State.set st obj v) rest) cands
  in
  go pre objs

let outcomes iface (proc : Proc.t) (action : Proc.action) ~self ~bindings pre =
  ignore iface;
  let objs = modified_objects ~self ~bindings pre proc in
  let posts = candidate_posts ~self ~bindings pre objs in
  let results = result_candidates proc in
  let pre_env = Term.env ~self ~bindings ~pre () in
  let per_case i (c : Proc.case) =
    if not (Formula.eval pre_env c.c_when) then []
    else
      List.concat_map
        (fun post ->
          List.filter_map
            (fun result ->
              let env = Term.env ~self ~bindings ~pre ~post ?result () in
              if Formula.eval env c.c_ensures then
                Some { o_case = i; o_outcome = c.c_outcome; o_post = post;
                       o_result = result }
              else None)
            results)
        posts
  in
  let all = List.concat (List.mapi per_case action.a_cases) in
  (* Deduplicate transitions that several candidate constructions reach. *)
  let cmp a b =
    let c = Int.compare a.o_case b.o_case in
    if c <> 0 then c
    else
      let c = State.compare a.o_post b.o_post in
      if c <> 0 then c else Option.compare Value.compare a.o_result b.o_result
  in
  List.sort_uniq cmp all

let check_transition iface (proc : Proc.t) (action : Proc.action) ~self
    ~bindings ~pre ~post ~outcome ~result =
  ignore iface;
  (* Frame condition: objects outside MODIFIES must be unchanged. *)
  let modifiable = modified_objects ~self ~bindings pre proc in
  let frame_violation =
    List.find_opt
      (fun obj ->
        (not (List.exists (Spec_obj.equal obj) modifiable))
        && not (Value.equal (State.get pre obj) (State.get post obj)))
      (State.objects pre)
  in
  match frame_violation with
  | Some obj ->
    Error
      (Format.asprintf
         "%s.%s by %a: modifies %a which is outside MODIFIES AT MOST"
         proc.p_name action.a_name Tid.pp self Spec_obj.pp obj)
  | None ->
    let pre_env = Term.env ~self ~bindings ~pre () in
    let env = Term.env ~self ~bindings ~pre ~post ?result () in
    let matching =
      List.concat
        (List.mapi
           (fun i (c : Proc.case) ->
             if c.c_outcome = outcome && Formula.eval pre_env c.c_when
                && Formula.eval env c.c_ensures
             then [ i ]
             else [])
           action.a_cases)
    in
    (match matching with
    | i :: _ -> Ok i
    | [] ->
      let describe (c : Proc.case) =
        let when_ok = Formula.eval pre_env c.c_when in
        let kind_ok = c.c_outcome = outcome in
        Format.asprintf "[%a: when=%b kind-match=%b ensures=%b]"
          Proc.pp_outcome c.c_outcome when_ok kind_ok
          (if when_ok && kind_ok then Formula.eval env c.c_ensures else false)
      in
      Error
        (Format.asprintf
           "%s.%s by %a with outcome %a admitted by no case: %s" proc.p_name
           action.a_name Tid.pp self Proc.pp_outcome outcome
           (String.concat " " (List.map describe action.a_cases))))
