(** Terms of the interface-specification language.

    A term denotes a value in a (pre, post) state pair.  Following the
    paper: an unsubscripted formal stands for its value in the pre state;
    [x_post] for its value in the post state; [SELF] for the executing
    thread; [RESULT] for the procedure's return formal (defined only in the
    post state). *)

type stage = Pre | Post

type t =
  | Self
  | Nil_const
  | Lit of Value.t
  | Ref of string * stage  (** formal parameter or global, by name *)
  | Result  (** the RETURNS formal, e.g. [b] in TestAlert *)
  | Insert of t * t  (** [insert(set, thread)] *)
  | Delete of t * t  (** [delete(set, thread)] *)
  | Empty_set

(** How a formal name resolves during evaluation: a VAR formal denotes a
    mutable object looked up in the state; a by-value formal (or a literal
    binding) denotes the same value in both stages. *)
type binding = Obj of Spec_obj.t | Const of Value.t

type env = {
  self : Threads_util.Tid.t;
  bindings : (string * binding) list;
  pre : State.t;
  post : State.t option;  (** [None] when evaluating a one-state predicate *)
  result : Value.t option;
}

(** [env ~self ~bindings ~pre ()] builds an evaluation environment. *)
val env :
  self:Threads_util.Tid.t ->
  bindings:(string * binding) list ->
  pre:State.t ->
  ?post:State.t ->
  ?result:Value.t ->
  unit ->
  env

exception Eval_error of string

(** [eval env t] evaluates [t]; raises {!Eval_error} on unbound names, on
    [Post]/[Result] references when the environment lacks a post
    state/result, and on sort mismatches. *)
val eval : env -> t -> Value.t

(** [resolve env name] returns the binding of a formal or global name,
    treating ["alerts"] as the distinguished global when not shadowed. *)
val resolve : env -> string -> binding

val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit
val to_string : t -> string
