(** Procedure and atomic-action specifications — the interface tier.

    Mirrors the paper's clause structure:

    - an ATOMIC PROCEDURE executes exactly one atomic action per call;
    - a PROCEDURE with [COMPOSITION OF a1; a2 END] executes the named
      actions in order, possibly interleaved with other threads' actions;
    - each atomic action has one or more {e cases} (the RETURNS/RAISES
      alternatives of AlertP/AlertResume), each guarded by a WHEN clause;
      when several guards hold the choice is the implementation's — the
      non-determinism discussed in the paper. *)

type outcome = Returns | Raises of string

val pp_outcome : Format.formatter -> outcome -> unit

type case = {
  c_outcome : outcome;
  c_when : Formula.t;  (** delay condition; [True] if omitted *)
  c_ensures : Formula.t;
}

type action = { a_name : string; a_cases : case list }

type formal_mode = By_var | By_value

type formal = { f_name : string; f_mode : formal_mode; f_type : string }
(** [f_type] is a declared TYPE name (e.g. ["Mutex"]); resolve to a sort
    via the enclosing {!interface}. *)

type kind =
  | Atomic of action
  | Composition of action list  (** at least two actions, executed in order *)

type t = {
  p_name : string;
  p_formals : formal list;
  p_returns : (string * Sort.t) option;
  p_raises : string list;
  p_requires : Formula.t;
  p_modifies : string list;  (** MODIFIES AT MOST, by formal/global name *)
  p_kind : kind;
}

type type_decl = { t_name : string; t_sort : Sort.t; t_init : Value.t }

type interface = {
  i_name : string;
  i_types : type_decl list;
  i_globals : (string * Sort.t * Value.t) list;
  i_exceptions : string list;
  i_procs : t list;
}

(** [actions p] lists the procedure's actions in execution order (a single
    pseudo-action named like the procedure for the atomic case). *)
val actions : t -> action list

(** [find_proc iface name] — raises [Not_found]. *)
val find_proc : interface -> string -> t

(** [sort_of_type iface name] resolves a TYPE name (or a global's name) to
    its sort; raises [Not_found]. *)
val sort_of_type : interface -> string -> Sort.t

(** [formal_sort iface p formal_name] — raises [Not_found]. *)
val formal_sort : interface -> t -> string -> Sort.t

(** [well_formed iface] checks static rules and returns the list of
    violations (empty when well-formed):
    - every formal's type and every raised exception is declared;
    - every name in MODIFIES is a VAR formal or a declared global;
    - every [_post]/[UNCHANGED] name in an ENSURES is listed in MODIFIES;
    - WHEN and REQUIRES clauses are one-state (no [_post], no [UNCHANGED]);
    - a RAISES case's exception is declared in the procedure header;
    - compositions have at least two actions and atomic actions at least
      one case. *)
val well_formed : interface -> string list

val equal_interface : interface -> interface -> bool
