(** Lexer for the concrete specification syntax (an ASCII rendering of the
    paper's notation; see [specs/threads.lspec]).

    Comments run from ["--"] to end of line.  Upper-case words from the
    fixed keyword set are keywords; every other alphanumeric word is an
    identifier (so [insert], [delete], [available], [unavailable] are
    identifiers resolved by the parser). *)

type token =
  | IDENT of string
  | KW of string  (** one of the reserved upper-case keywords *)
  | LPAREN
  | RPAREN
  | LBRACKET
  | RBRACKET
  | LBRACE
  | RBRACE
  | COMMA
  | SEMI
  | COLON
  | EQUALS
  | AMP
  | BAR
  | TILDE
  | ARROW  (** ["=>"] *)
  | EOF

val pp_token : Format.formatter -> token -> unit

exception Lex_error of string * int  (** message, line number *)

(** [tokenize src] returns the token stream with line numbers. *)
val tokenize : string -> (token * int) list

(** The reserved keyword set. *)
val keywords : string list
