module Tid = Threads_util.Tid

type lsl_sort = L_bool | L_elem | L_set

type term = Var of string * lsl_sort | App of string * term list

type operator = { op_name : string; op_args : lsl_sort list; op_res : lsl_sort }

type equation = { eq_name : string; left : term; right : term }

type trait = { tr_name : string; tr_ops : operator list; tr_eqs : equation list }

type model = string -> Value.t list -> Value.t

let value_model name args =
  let bad () =
    invalid_arg
      (Printf.sprintf "value_model: %s applied to %d bad arguments" name
         (List.length args))
  in
  match (name, args) with
  | "empty", [] -> Value.Set Tid.Set.empty
  | "insert", [ s; e ] -> Value.insert s e
  | "delete", [ s; e ] -> Value.delete s e
  | "member", [ e; s ] -> Value.Bool (Value.member e s)
  | "subset", [ a; b ] -> Value.Bool (Value.subset a b)
  | "union", [ Value.Set a; Value.Set b ] -> Value.Set (Tid.Set.union a b)
  | "eq", [ a; b ] -> Value.Bool (Value.equal a b)
  | "true", [] -> Value.Bool true
  | "false", [] -> Value.Bool false
  | "or", [ Value.Bool a; Value.Bool b ] -> Value.Bool (a || b)
  | "and", [ Value.Bool a; Value.Bool b ] -> Value.Bool (a && b)
  | "not", [ Value.Bool a ] -> Value.Bool (not a)
  | "if", [ Value.Bool c; t; e ] -> if c then t else e
  | _ -> bad ()

let v name sort = Var (name, sort)
let app name args = App (name, args)
let s_ = v "s" L_set
let t_ = v "t" L_set
let e_ = v "e" L_elem
let f_ = v "f" L_elem

let set_trait =
  {
    tr_name = "Set of Thread";
    tr_ops =
      [
        { op_name = "empty"; op_args = []; op_res = L_set };
        { op_name = "insert"; op_args = [ L_set; L_elem ]; op_res = L_set };
        { op_name = "delete"; op_args = [ L_set; L_elem ]; op_res = L_set };
        { op_name = "member"; op_args = [ L_elem; L_set ]; op_res = L_bool };
        { op_name = "subset"; op_args = [ L_set; L_set ]; op_res = L_bool };
        { op_name = "union"; op_args = [ L_set; L_set ]; op_res = L_set };
        { op_name = "eq"; op_args = [ L_elem; L_elem ]; op_res = L_bool };
        { op_name = "true"; op_args = []; op_res = L_bool };
        { op_name = "false"; op_args = []; op_res = L_bool };
        { op_name = "or"; op_args = [ L_bool; L_bool ]; op_res = L_bool };
        { op_name = "and"; op_args = [ L_bool; L_bool ]; op_res = L_bool };
        { op_name = "not"; op_args = [ L_bool ]; op_res = L_bool };
        { op_name = "if"; op_args = [ L_bool; L_set; L_set ]; op_res = L_set };
      ];
    tr_eqs =
      [
        (* generators: empty and insert; insert is idempotent and
           commutes with itself *)
        {
          eq_name = "insert-idempotent";
          left = app "insert" [ app "insert" [ s_; e_ ]; e_ ];
          right = app "insert" [ s_; e_ ];
        };
        {
          eq_name = "insert-commutes";
          left = app "insert" [ app "insert" [ s_; e_ ]; f_ ];
          right = app "insert" [ app "insert" [ s_; f_ ]; e_ ];
        };
        (* member *)
        {
          eq_name = "member-empty";
          left = app "member" [ e_; app "empty" [] ];
          right = app "false" [];
        };
        {
          eq_name = "member-insert";
          left = app "member" [ e_; app "insert" [ s_; f_ ] ];
          right = app "or" [ app "eq" [ e_; f_ ]; app "member" [ e_; s_ ] ];
        };
        (* delete *)
        {
          eq_name = "delete-empty";
          left = app "delete" [ app "empty" []; e_ ];
          right = app "empty" [];
        };
        {
          eq_name = "delete-insert";
          left = app "delete" [ app "insert" [ s_; f_ ]; e_ ];
          right =
            app "if"
              [
                app "eq" [ e_; f_ ];
                app "delete" [ s_; e_ ];
                app "insert" [ app "delete" [ s_; e_ ]; f_ ];
              ];
        };
        {
          eq_name = "delete-then-member";
          left = app "member" [ e_; app "delete" [ s_; e_ ] ];
          right = app "false" [];
        };
        (* subset *)
        {
          eq_name = "subset-empty";
          left = app "subset" [ app "empty" []; s_ ];
          right = app "true" [];
        };
        {
          eq_name = "subset-insert-left";
          left = app "subset" [ app "insert" [ s_; e_ ]; t_ ];
          right = app "and" [ app "member" [ e_; t_ ]; app "subset" [ s_; t_ ] ];
        };
        {
          eq_name = "subset-reflexive";
          left = app "subset" [ s_; s_ ];
          right = app "true" [];
        };
        (* union *)
        {
          eq_name = "union-empty";
          left = app "union" [ s_; app "empty" [] ];
          right = s_;
        };
        {
          eq_name = "union-insert";
          left = app "union" [ s_; app "insert" [ t_; e_ ] ];
          right = app "insert" [ app "union" [ s_; t_ ]; e_ ];
        };
      ];
  }

let rec term_vars = function
  | Var (name, sort) -> [ (name, sort) ]
  | App (_, args) -> List.concat_map term_vars args

let vars_of eq = List.sort_uniq compare (term_vars eq.left @ term_vars eq.right)

let rec pp_term ppf = function
  | Var (name, _) -> Format.pp_print_string ppf name
  | App (name, []) -> Format.pp_print_string ppf name
  | App (name, args) ->
    Format.fprintf ppf "%s(%a)" name
      (Format.pp_print_list
         ~pp_sep:(fun ppf () -> Format.pp_print_string ppf ", ")
         pp_term)
      args

let pp_equation ppf eq =
  Format.fprintf ppf "%s: %a == %a" eq.eq_name pp_term eq.left pp_term eq.right

(* Sort inference: returns the sort or an error string. *)
let sort_check trait =
  let op name =
    List.find_opt (fun o -> o.op_name = name) trait.tr_ops
  in
  let errs = ref [] in
  let err fmt = Format.kasprintf (fun s -> errs := s :: !errs) fmt in
  let rec infer ctx = function
    | Var (name, sort) -> (
      match List.assoc_opt name !ctx with
      | Some s ->
        if s <> sort then begin
          err "variable %s used at two sorts" name;
          Some sort
        end
        else Some sort
      | None ->
        ctx := (name, sort) :: !ctx;
        Some sort)
    | App (name, args) -> (
      match op name with
      | None ->
        err "unknown operator %s" name;
        None
      | Some o ->
        if List.length args <> List.length o.op_args then
          err "operator %s: arity %d, applied to %d" name
            (List.length o.op_args) (List.length args)
        else
          List.iter2
            (fun expected arg ->
              match infer ctx arg with
              | Some got when got <> expected ->
                err "operator %s: argument sort mismatch" name
              | _ -> ())
            o.op_args args;
        Some o.op_res)
  in
  List.iter
    (fun eq ->
      let ctx = ref [] in
      let ls = infer ctx eq.left in
      let rs = infer ctx eq.right in
      match (ls, rs) with
      | Some a, Some b when a <> b ->
        err "equation %s: sides have different sorts" eq.eq_name
      | _ -> ())
    trait.tr_eqs;
  List.rev !errs

let rec eval model assignment = function
  | Var (name, _) -> (
    match List.assoc_opt name assignment with
    | Some value -> value
    | None -> invalid_arg (Printf.sprintf "Lsl.eval: unbound variable %s" name))
  | App (name, args) -> model name (List.map (eval model assignment) args)

let holds model assignment eq =
  Value.equal (eval model assignment eq.left) (eval model assignment eq.right)
