type outcome = Returns | Raises of string

let pp_outcome ppf = function
  | Returns -> Format.pp_print_string ppf "RETURNS"
  | Raises e -> Format.fprintf ppf "RAISES %s" e

type case = {
  c_outcome : outcome;
  c_when : Formula.t;
  c_ensures : Formula.t;
}

type action = { a_name : string; a_cases : case list }

type formal_mode = By_var | By_value

type formal = { f_name : string; f_mode : formal_mode; f_type : string }

type kind = Atomic of action | Composition of action list

type t = {
  p_name : string;
  p_formals : formal list;
  p_returns : (string * Sort.t) option;
  p_raises : string list;
  p_requires : Formula.t;
  p_modifies : string list;
  p_kind : kind;
}

type type_decl = { t_name : string; t_sort : Sort.t; t_init : Value.t }

type interface = {
  i_name : string;
  i_types : type_decl list;
  i_globals : (string * Sort.t * Value.t) list;
  i_exceptions : string list;
  i_procs : t list;
}

let actions p =
  match p.p_kind with Atomic a -> [ a ] | Composition actions -> actions

let find_proc iface name =
  List.find (fun p -> p.p_name = name) iface.i_procs

let sort_of_type iface name =
  match List.find_opt (fun td -> td.t_name = name) iface.i_types with
  | Some td -> td.t_sort
  | None -> (
    match List.find_opt (fun (n, _, _) -> n = name) iface.i_globals with
    | Some (_, sort, _) -> sort
    | None ->
      (* Built-in sorts usable directly in formal declarations. *)
      (match name with
      | "bool" -> Sort.Bool
      | "int" -> Sort.Int
      | "Thread" -> Sort.Thread
      | _ -> raise Not_found))

let formal_sort iface p name =
  let f = List.find (fun f -> f.f_name = name) p.p_formals in
  sort_of_type iface f.f_type

(* One-state formulas may not mention _post or UNCHANGED. *)
let rec term_one_state = function
  | Term.Self | Term.Nil_const | Term.Lit _ | Term.Empty_set -> true
  | Term.Result -> false
  | Term.Ref (_, Term.Pre) -> true
  | Term.Ref (_, Term.Post) -> false
  | Term.Insert (x, y) | Term.Delete (x, y) ->
    term_one_state x && term_one_state y

let rec one_state = function
  | Formula.True | Formula.False -> true
  | Formula.Truth t -> term_one_state t
  | Formula.Eq (a, b) | Formula.Member (a, b) | Formula.Subset (a, b) ->
    term_one_state a && term_one_state b
  | Formula.Not f -> one_state f
  | Formula.Iff (a, b)
  | Formula.And (a, b)
  | Formula.Or (a, b)
  | Formula.Implies (a, b) ->
    one_state a && one_state b
  | Formula.Unchanged _ -> false

let well_formed iface =
  let errs = ref [] in
  let err fmt = Format.kasprintf (fun s -> errs := s :: !errs) fmt in
  let check_proc p =
    let ctx = p.p_name in
    List.iter
      (fun f ->
        match sort_of_type iface f.f_type with
        | (_ : Sort.t) -> ()
        | exception Not_found ->
          err "%s: formal %s has undeclared type %s" ctx f.f_name f.f_type)
      p.p_formals;
    List.iter
      (fun e ->
        if not (List.mem e iface.i_exceptions) then
          err "%s: undeclared exception %s" ctx e)
      p.p_raises;
    let is_modifiable name =
      List.exists (fun f -> f.f_name = name && f.f_mode = By_var) p.p_formals
      || List.exists (fun (n, _, _) -> n = name) iface.i_globals
    in
    List.iter
      (fun name ->
        if not (is_modifiable name) then
          err "%s: MODIFIES names %s which is not a VAR formal or global" ctx
            name)
      p.p_modifies;
    if not (one_state p.p_requires) then
      err "%s: REQUIRES must be a one-state predicate" ctx;
    let check_case a c =
      let actx = Printf.sprintf "%s.%s" ctx a.a_name in
      if not (one_state c.c_when) then
        err "%s: WHEN must be a one-state predicate" actx;
      List.iter
        (fun name ->
          if not (List.mem name p.p_modifies) then
            err "%s: ENSURES constrains %s_post but %s is not in MODIFIES"
              actx name name)
        (Formula.post_names c.c_ensures);
      match c.c_outcome with
      | Returns -> ()
      | Raises e ->
        if not (List.mem e p.p_raises) then
          err "%s: case raises %s not declared by the procedure" actx e
    in
    (match p.p_kind with
    | Atomic a ->
      if a.a_cases = [] then err "%s: atomic procedure with no cases" ctx
    | Composition actions ->
      if List.length actions < 2 then
        err "%s: COMPOSITION OF needs at least two actions" ctx;
      List.iter
        (fun a ->
          if a.a_cases = [] then err "%s.%s: action with no cases" ctx a.a_name)
        actions);
    List.iter (fun a -> List.iter (check_case a) a.a_cases) (actions p)
  in
  List.iter check_proc iface.i_procs;
  List.rev !errs

let equal_interface a b =
  (* Structural equality is sufficient: all components are pure data.  The
     polymorphic [=] would also work but we spell it out for formulas to get
     alpha-insensitive comparison if the representation ever grows. *)
  a.i_name = b.i_name && a.i_types = b.i_types && a.i_globals = b.i_globals
  && a.i_exceptions = b.i_exceptions
  && List.length a.i_procs = List.length b.i_procs
  && List.for_all2
       (fun p q ->
         p.p_name = q.p_name && p.p_formals = q.p_formals
         && p.p_returns = q.p_returns && p.p_raises = q.p_raises
         && Formula.equal p.p_requires q.p_requires
         && p.p_modifies = q.p_modifies
         &&
         let eq_case c d =
           c.c_outcome = d.c_outcome
           && Formula.equal c.c_when d.c_when
           && Formula.equal c.c_ensures d.c_ensures
         in
         let eq_action x y =
           x.a_name = y.a_name
           && List.length x.a_cases = List.length y.a_cases
           && List.for_all2 eq_case x.a_cases y.a_cases
         in
         match (p.p_kind, q.p_kind) with
         | Atomic x, Atomic y -> eq_action x y
         | Composition xs, Composition ys ->
           List.length xs = List.length ys && List.for_all2 eq_action xs ys
         | (Atomic _ | Composition _), _ -> false)
       a.i_procs b.i_procs
