(** Specification-level objects.

    Each synchronization object a client program manipulates (a particular
    mutex, condition variable, or semaphore) is an object with a stable
    identity; a {!State.t} maps objects to their current abstract values.
    The global [alerts] variable is itself an object, distinguished by
    {!is_alerts}. *)

type t = private { oid : int; name : string; sort : Sort.t }

(** [create name sort] allocates a fresh object.  Identities are unique for
    the lifetime of the process. *)
val create : string -> Sort.t -> t

(** The distinguished global [VAR alerts: SET OF Thread INITIALLY {}]. *)
val alerts : t

val is_alerts : t -> bool
val equal : t -> t -> bool
val compare : t -> t -> int
val pp : Format.formatter -> t -> unit
