(** Values of the specification tier.

    A [Mutex] is modelled as the thread holding it (or [Nil]); a [Condition]
    as the set of threads enqueued on it; a [Semaphore] as one of the two
    enumeration constants; the global [alerts] as a set of threads — exactly
    the abstractions of the paper's TYPE declarations. *)

type sem = Available | Unavailable

type t =
  | Nil  (** the NIL thread *)
  | Thread of Threads_util.Tid.t
  | Bool of bool
  | Int of int
  | Set of Threads_util.Tid.Set.t
  | Sem of sem

val equal : t -> t -> bool
val compare : t -> t -> int

(** [sort_of v] is the sort [v] inhabits ([Nil] inhabits [Thread]). *)
val sort_of : t -> Sort.t

(** [has_sort v s] — [Nil] has sort [Thread]. *)
val has_sort : t -> Sort.t -> bool

(** [initial s] is the paper's INITIALLY value for sort [s]: [Nil] for
    mutexes/threads, the empty set for conditions, [available] for
    semaphores, [false]/[0] for bool/int. *)
val initial : Sort.t -> t

val pp : Format.formatter -> t -> unit
val to_string : t -> string

(** Set-typed helpers; all raise [Invalid_argument] on sort mismatch. *)

val insert : t -> t -> t
(** [insert set thread] is [insert(set, thread)] of the shared tier. *)

val delete : t -> t -> t
(** [delete set thread]. *)

val member : t -> t -> bool
(** [member thread set]. *)

val subset : t -> t -> bool
(** [subset s1 s2] is [s1 ⊆ s2]. *)

val as_set : t -> Threads_util.Tid.Set.t
val as_thread_or_nil : t -> Threads_util.Tid.t option
val as_bool : t -> bool
