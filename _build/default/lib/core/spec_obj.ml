type t = { oid : int; name : string; sort : Sort.t }

let counter = ref 0

let create name sort =
  incr counter;
  { oid = !counter; name; sort }

(* oid 0 is reserved for the global alerts set. *)
let alerts = { oid = 0; name = "alerts"; sort = Sort.Thread_set }

let is_alerts t = t.oid = 0
let equal a b = a.oid = b.oid
let compare a b = Int.compare a.oid b.oid
let pp ppf t = Format.fprintf ppf "%s#%d" t.name t.oid
