module Tid = Threads_util.Tid

module M = Map.Make (Spec_obj)

type t = Value.t M.t

let empty = M.add Spec_obj.alerts (Value.Set Tid.Set.empty) M.empty

let check obj v =
  if not (Value.has_sort v obj.Spec_obj.sort) then
    invalid_arg
      (Format.asprintf "State: %a cannot hold %a" Spec_obj.pp obj Value.pp v)

let add obj v st =
  check obj v;
  M.add obj v st

let get st obj = M.find obj st

let set st obj v =
  if not (M.mem obj st) then
    invalid_arg (Format.asprintf "State.set: unbound %a" Spec_obj.pp obj);
  check obj v;
  M.add obj v st

let alerts st = Value.as_set (get st Spec_obj.alerts)
let set_alerts st s = M.add Spec_obj.alerts (Value.Set s) st

let objects st = List.map fst (M.bindings st)

let equal = M.equal Value.equal
let compare = M.compare Value.compare

let hash st =
  M.fold
    (fun obj v acc ->
      let vh = Hashtbl.hash (Value.to_string v) in
      (acc * 1000003) lxor (obj.Spec_obj.oid * 65599) lxor vh)
    st 5381

let pp ppf st =
  Format.fprintf ppf "@[<hv>";
  M.iter
    (fun obj v -> Format.fprintf ppf "%a = %a;@ " Spec_obj.pp obj Value.pp v)
    st;
  Format.fprintf ppf "@]"
