(** The Larch Shared Language tier (tier 1 of the two-tiered approach).

    The paper: "The Larch Shared Language tier is algebraic, and defines
    mathematical abstractions that can be used in the interface language
    tier ...  all the abstractions needed for the Threads specification are
    well known (e.g., booleans, integers, and sets) and appear in the Larch
    Shared Language Handbook."

    This module makes that tier concrete: a {e trait} is a signature
    (operators with sorts) plus equations over universally quantified
    variables.  A {e model} interprets each operator as a function over
    {!Value.t}.  [holds] checks an equation on one variable assignment;
    the test suite property-checks every equation of {!set_trait} against
    the {!Value} implementation the interface tier actually computes with —
    so tier 1 axiomatizes exactly what tier 2 uses, and the two are kept
    honest mechanically. *)

(** Sorts of the algebraic tier (a deliberately small universe: the traits
    the Threads specification needs). *)
type lsl_sort = L_bool | L_elem  (** thread ids *) | L_set

type term =
  | Var of string * lsl_sort
  | App of string * term list  (** operator application *)

type operator = { op_name : string; op_args : lsl_sort list; op_res : lsl_sort }

type equation = { eq_name : string; left : term; right : term }

type trait = {
  tr_name : string;
  tr_ops : operator list;
  tr_eqs : equation list;
}

(** A model: total interpretations of the operators over {!Value.t}.
    Raises on unknown operator. *)
type model = string -> Value.t list -> Value.t

(** The standard model: [empty]/[insert]/[delete]/[member]/[subset]/
    [union] interpreted by {!Value}'s set operations, booleans by
    [Value.Bool], with [eq] on elements. *)
val value_model : model

(** The Set-of-Thread trait from the Larch handbook lineage: generators
    [empty]/[insert], observers [member]/[subset], plus [delete] and
    [union], axiomatized by 12 equations. *)
val set_trait : trait

(** [sort_check trait] — every equation's two sides must be well-sorted
    with the same sort, variables used consistently.  Returns violations
    (empty = well-sorted). *)
val sort_check : trait -> string list

(** [vars_of eq] — the variables of an equation (name, sort), deduplicated. *)
val vars_of : equation -> (string * lsl_sort) list

(** [eval model assignment term] — raises [Invalid_argument] on unbound
    variables or sort errors in the model. *)
val eval : model -> (string * Value.t) list -> term -> Value.t

(** [holds model assignment eq] — do both sides evaluate equal? *)
val holds : model -> (string * Value.t) list -> equation -> bool

val pp_term : Format.formatter -> term -> unit
val pp_equation : Format.formatter -> equation -> unit
