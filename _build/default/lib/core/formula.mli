(** Predicates of the interface-specification language.

    Formulas appear in REQUIRES clauses (one-state, pre only), WHEN clauses
    (one-state, evaluated at the instant the atomic action fires) and
    ENSURES clauses (two-state, relating pre and post). *)

type t =
  | True
  | False
  | Truth of Term.t
      (** a bool-sorted term as a predicate, e.g. the return formal [b] *)
  | Eq of Term.t * Term.t
  | Iff of t * t
      (** [=] between predicates, as in TestAlert's
          [b = (SELF IN alerts)] *)
  | Member of Term.t * Term.t  (** [x IN s] *)
  | Subset of Term.t * Term.t  (** [s1 SUBSET s2], i.e. s1 ⊆ s2 *)
  | Not of t
  | And of t * t
  | Or of t * t
  | Implies of t * t
  | Unchanged of string list
      (** [UNCHANGED \[x, y\]]: each named VAR formal/global has equal value
          in pre and post states *)

(** [eval env f] — raises {!Term.Eval_error} on ill-formed references (e.g.
    a two-state construct under a one-state environment). *)
val eval : Term.env -> t -> bool

(** [conj fs] is the conjunction of [fs] ([True] when empty). *)
val conj : t list -> t

(** [names f] is the set of formal/global names referenced (sorted,
    deduplicated); used by well-formedness checks. *)
val names : t -> string list

(** [post_names f] is the subset of {!names} referenced in the post state
    (via [_post] or [UNCHANGED]); MODIFIES AT MOST must cover them. *)
val post_names : t -> string list

val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit
val to_string : t -> string
