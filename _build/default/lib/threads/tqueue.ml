module Tid = Threads_util.Tid

(* Head-first list; push is O(n) but queues are short (blocked threads). *)
type t = { mutable items : Tid.t list }

let create () = { items = [] }
let is_empty q = q.items = []
let length q = List.length q.items
let push q t = q.items <- q.items @ [ t ]

let pop q =
  match q.items with
  | [] -> None
  | x :: rest ->
    q.items <- rest;
    Some x

let pop_all q =
  let all = q.items in
  q.items <- [];
  all

let remove q t =
  let present = List.mem t q.items in
  if present then q.items <- List.filter (fun x -> not (Tid.equal x t)) q.items;
  present

let mem q t = List.mem t q.items
let elements q = q.items
