(** The alerting machinery: the global pending set ([VAR alerts]) plus the
    Nub bookkeeping that lets [Alert] pull an alertably-blocked thread out
    of whatever queue it sleeps on.

    The pending set is OCaml state mutated only inside single atomic
    simulator steps ({!Firefly.Machine.Ops.mem_emit} thunks) or under the
    spin-lock, so it is race-free by construction. *)

type t

val create : unit -> t

(** [alert t ~lock ~self ~target] — the Alert(t) procedure: atomically add
    [target] to the pending set (emitting the Alert event), then, if
    [target] is blocked in an alertable wait, cancel that wait: dequeue it,
    mark it woken-by-alert and ready it.  Runs under [lock]. *)
val alert : t -> lock:Spinlock.t -> self:Threads_util.Tid.t ->
  target:Threads_util.Tid.t -> unit

(** [test_alert t ~self] — atomically read-and-clear [self]'s pending flag
    (emitting the TestAlert event). *)
val test_alert : t -> self:Threads_util.Tid.t -> bool

(** [pending t tid] — is an alert pending for [tid]?  (A racy read used
    only where either answer is acceptable, i.e. the non-deterministic
    RETURNS/RAISES choices.) *)
val pending : t -> Threads_util.Tid.t -> bool

(** [consume_pending t tid] removes [tid]'s pending flag; called inside the
    mem_emit thunk that emits the corresponding Raises event, so the
    consumption is atomic with the action. *)
val consume_pending : t -> Threads_util.Tid.t -> unit

(** [register t tid cancel] — [tid] is about to deschedule in an alertable
    wait; [cancel] (called with the spin-lock held, from the alerter's
    context) must dequeue it and ready it. *)
val register : t -> Threads_util.Tid.t -> (unit -> unit) -> unit

(** [unregister t tid] — called by a normal waker when it dequeues [tid]. *)
val unregister : t -> Threads_util.Tid.t -> unit

(** [take_woken_by_alert t tid] — read-and-clear the woken-by-alert mark
    set by a cancellation. *)
val take_woken_by_alert : t -> Threads_util.Tid.t -> bool
