module Tid = Threads_util.Tid
module Ops = Firefly.Machine.Ops

type t = {
  mutable pending : Tid.Set.t;
  cancels : (Tid.t, unit -> unit) Hashtbl.t;
  woken : (Tid.t, unit) Hashtbl.t;
}

let create () =
  { pending = Tid.Set.empty; cancels = Hashtbl.create 8; woken = Hashtbl.create 8 }

let alert t ~lock ~self ~target =
  Spinlock.acquire lock;
  ignore
    (Ops.mem_emit Firefly.Machine.M_none (fun _ ->
         t.pending <- Tid.Set.add target t.pending;
         Some (Events.alert ~self ~target)));
  (match Hashtbl.find_opt t.cancels target with
  | Some cancel ->
    Hashtbl.remove t.cancels target;
    Hashtbl.replace t.woken target ();
    cancel ()
  | None -> ());
  Spinlock.release lock

let test_alert t ~self =
  let was = ref false in
  ignore
    (Ops.mem_emit Firefly.Machine.M_none (fun _ ->
         was := Tid.Set.mem self t.pending;
         t.pending <- Tid.Set.remove self t.pending;
         Some (Events.test_alert ~self ~result:!was)));
  !was

let pending t tid = Tid.Set.mem tid t.pending
let consume_pending t tid = t.pending <- Tid.Set.remove tid t.pending
let register t tid cancel = Hashtbl.replace t.cancels tid cancel
let unregister t tid = Hashtbl.remove t.cancels tid

let take_woken_by_alert t tid =
  if Hashtbl.mem t.woken tid then begin
    Hashtbl.remove t.woken tid;
    true
  end
  else false
