module Ops = Firefly.Machine.Ops
module M = Firefly.Machine

type t = {
  pkg : Pkg.t;
  bit : int;  (* 0 = available, 1 = unavailable *)
  waiters : int;
  q : Tqueue.t;
}

let create pkg =
  let bit = Ops.alloc 1 in
  let waiters = Ops.alloc 1 in
  { pkg; bit; waiters; q = Tqueue.create () }

let id s = s.bit

(* Nub slow path shared by P and AlertP.  Returns [`Retry] after a wakeup
   by V, [`Alerted] when the sleep was cancelled (or pre-empted) by an
   alert, [`Acquired] when the bit turned out to be free on re-test. *)
let nub_p s ~alertable =
  Ops.incr_counter "nub.acquire";
  let self = Ops.self () in
  Spinlock.acquire s.pkg.lock;
  if alertable && Alerts.pending s.pkg.alerts self then begin
    Spinlock.release s.pkg.lock;
    `Alerted
  end
  else begin
    Tqueue.push s.q self;
    Ops.write s.waiters (Tqueue.length s.q);
    if Ops.read s.bit <> 0 then begin
      if alertable then
        Alerts.register s.pkg.alerts self (fun () ->
            ignore (Tqueue.remove s.q self);
            Ops.ready self);
      Ops.deschedule_and_clear (Spinlock.addr s.pkg.lock);
      if alertable && Alerts.take_woken_by_alert s.pkg.alerts self then
        `Alerted
      else `Retry
    end
    else begin
      ignore (Tqueue.remove s.q self);
      Ops.write s.waiters (Tqueue.length s.q);
      Spinlock.release s.pkg.lock;
      `Retry
    end
  end

let try_tas s ~event =
  Ops.mem_emit (M.M_tas s.bit) (fun old -> if old = 0 then event () else None)
  = 0

let rec p_loop s ~alertable ~event =
  if s.pkg.fast_path then begin
    if not (try_tas s ~event) then
      match nub_p s ~alertable with
      | `Alerted -> `Alerted
      | `Retry | `Acquired -> p_loop s ~alertable ~event
    else `Acquired
  end
  else begin
    (* Ablation: always through the Nub. *)
    Ops.incr_counter "nub.acquire";
    Spinlock.acquire s.pkg.lock;
    let got = try_tas s ~event in
    if got then begin
      Spinlock.release s.pkg.lock;
      `Acquired
    end
    else begin
      let self = Ops.self () in
      if alertable && Alerts.pending s.pkg.alerts self then begin
        Spinlock.release s.pkg.lock;
        `Alerted
      end
      else begin
        Tqueue.push s.q self;
        Ops.write s.waiters (Tqueue.length s.q);
        if alertable then
          Alerts.register s.pkg.alerts self (fun () ->
              ignore (Tqueue.remove s.q self);
              Ops.ready self);
        Ops.deschedule_and_clear (Spinlock.addr s.pkg.lock);
        if alertable && Alerts.take_woken_by_alert s.pkg.alerts self then
          `Alerted
        else p_loop s ~alertable ~event
      end
    end
  end

let p s =
  let self = Ops.self () in
  match
    p_loop s ~alertable:false ~event:(fun () ->
        Some (Events.p ~self ~s:s.bit))
  with
  | `Acquired -> ()
  | `Alerted -> assert false

let v s =
  let self = Ops.self () in
  ignore
    (Ops.mem_emit (M.M_clear s.bit) (fun _ -> Some (Events.v ~self ~s:s.bit)));
  if (not s.pkg.fast_path) || Ops.read s.waiters <> 0 then begin
    Ops.incr_counter "nub.release";
    Spinlock.acquire s.pkg.lock;
    (match Tqueue.pop s.q with
    | Some t ->
      Ops.write s.waiters (Tqueue.length s.q);
      Alerts.unregister s.pkg.alerts t;
      Ops.ready t
    | None -> ());
    Spinlock.release s.pkg.lock
  end

let alert_p s =
  let self = Ops.self () in
  match
    p_loop s ~alertable:true ~event:(fun () ->
        Some (Events.alert_p ~self ~s:s.bit ~alerted:false))
  with
  | `Acquired -> ()
  | `Alerted ->
    (* Consume the pending alert atomically with the Raises event. *)
    ignore
      (Ops.mem_emit M.M_none (fun _ ->
           Alerts.consume_pending s.pkg.alerts self;
           Some (Events.alert_p ~self ~s:s.bit ~alerted:true)));
    raise Sync_intf.Alerted
