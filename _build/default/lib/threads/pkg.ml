type t = { lock : Spinlock.t; alerts : Alerts.t; fast_path : bool }

let create ?(fast_path = true) () =
  { lock = Spinlock.create (); alerts = Alerts.create (); fast_path }
