module Ops = Firefly.Machine.Ops
module M = Firefly.Machine

type t = {
  pkg : Pkg.t;
  bit : int;  (* the Lock-bit *)
  waiters : int;  (* |queue|, maintained under the spin-lock *)
  q : Tqueue.t;
}

let create pkg =
  let bit = Ops.alloc 1 in
  let waiters = Ops.alloc 1 in
  { pkg; bit; waiters; q = Tqueue.create () }

let id m = m.bit

(* Nub subroutine for Acquire: under the spin-lock, enqueue the caller and
   re-test the Lock-bit.  Still held: deschedule (releasing the spin-lock
   atomically); the waker leaves us dequeued.  Free: dequeue ourselves,
   release the spin-lock.  Either way the caller retries from the
   test-and-set. *)
let nub_acquire m =
  Ops.incr_counter "nub.acquire";
  let self = Ops.self () in
  Spinlock.acquire m.pkg.lock;
  Tqueue.push m.q self;
  Ops.write m.waiters (Tqueue.length m.q);
  if Ops.read m.bit <> 0 then
    Ops.deschedule_and_clear (Spinlock.addr m.pkg.lock)
  else begin
    ignore (Tqueue.remove m.q self);
    Ops.write m.waiters (Tqueue.length m.q);
    Spinlock.release m.pkg.lock
  end

(* Nub subroutine for Release: take one queued thread (if any) and ready
   it. *)
let nub_release m =
  Ops.incr_counter "nub.release";
  Spinlock.acquire m.pkg.lock;
  (match Tqueue.pop m.q with
  | Some t ->
    Ops.write m.waiters (Tqueue.length m.q);
    Ops.ready t
  | None -> ());
  Spinlock.release m.pkg.lock

let rec lock_internal m ~event =
  if m.pkg.fast_path then begin
    let old =
      Ops.mem_emit (M.M_tas m.bit) (fun old ->
          if old = 0 then event () else None)
    in
    if old <> 0 then begin
      nub_acquire m;
      lock_internal m ~event
    end
  end
  else begin
    (* Ablation: every Acquire goes through the Nub. *)
    Ops.incr_counter "nub.acquire";
    Spinlock.acquire m.pkg.lock;
    let old =
      Ops.mem_emit (M.M_tas m.bit) (fun old ->
          if old = 0 then event () else None)
    in
    if old = 0 then Spinlock.release m.pkg.lock
    else begin
      let self = Ops.self () in
      Tqueue.push m.q self;
      Ops.write m.waiters (Tqueue.length m.q);
      Ops.deschedule_and_clear (Spinlock.addr m.pkg.lock);
      lock_internal m ~event
    end
  end

let unlock_internal m ~event =
  ignore (Ops.mem_emit (M.M_clear m.bit) (fun _ -> event ()));
  if m.pkg.fast_path then begin
    if Ops.read m.waiters <> 0 then nub_release m
  end
  else nub_release m

let acquire m =
  let self = Ops.self () in
  lock_internal m ~event:(fun () -> Some (Events.acquire ~self ~m:m.bit))

let release m =
  let self = Ops.self () in
  unlock_internal m ~event:(fun () -> Some (Events.release ~self ~m:m.bit))

let with_lock m f =
  acquire m;
  Fun.protect ~finally:(fun () -> release m) f
