module Ops = Firefly.Machine.Ops
module M = Firefly.Machine
module Tid = Threads_util.Tid

type monitor = {
  mutable holder : Tid.t option;
  entry : Tqueue.t;
  urgent : Tqueue.t;  (* suspended signallers; priority over entry *)
  mutable switch_count : int;
  scratch : int;
}

type cond = { mon : monitor; hq : Tqueue.t }

let atomically f = ignore (Ops.mem_emit M.M_none (fun _ -> f (); None))

let monitor () =
  {
    holder = None;
    entry = Tqueue.create ();
    urgent = Tqueue.create ();
    switch_count = 0;
    scratch = Ops.alloc 1;
  }

let condition mon = { mon; hq = Tqueue.create () }

(* Ownership is transferred, never contended: a thread woken from the
   entry, urgent or condition queue already holds the monitor. *)
let enter mon =
  let self = Ops.self () in
  let got = ref false in
  atomically (fun () ->
      match mon.holder with
      | None ->
        mon.holder <- Some self;
        got := true
      | Some _ -> Tqueue.push mon.entry self);
  if not !got then Ops.deschedule_and_clear mon.scratch

(* Pass the monitor to a suspended signaller first, then to an entering
   thread, else free it.  Returns the thread to ready, if any. *)
let pass_on mon =
  match Tqueue.pop mon.urgent with
  | Some u ->
    mon.holder <- Some u;
    Some u
  | None -> (
    match Tqueue.pop mon.entry with
    | Some e ->
      mon.holder <- Some e;
      Some e
    | None ->
      mon.holder <- None;
      None)

let exit mon =
  let next = ref None in
  atomically (fun () -> next := pass_on mon);
  match !next with Some t -> Ops.ready t | None -> ()

let with_monitor mon f =
  enter mon;
  Fun.protect ~finally:(fun () -> exit mon) f

let wait c =
  let self = Ops.self () in
  let next = ref None in
  atomically (fun () ->
      Tqueue.push c.hq self;
      next := pass_on c.mon);
  (match !next with Some t -> Ops.ready t | None -> ());
  Ops.deschedule_and_clear c.mon.scratch
(* On return the signaller has handed us the monitor: predicate intact. *)

let signal c =
  let self = Ops.self () in
  let woke = ref None in
  atomically (fun () ->
      match Tqueue.pop c.hq with
      | Some w ->
        (* Hand over the monitor and step aside onto the urgent queue. *)
        c.mon.holder <- Some w;
        Tqueue.push c.mon.urgent self;
        c.mon.switch_count <- c.mon.switch_count + 2;
        woke := Some w
      | None -> ());
  match !woke with
  | Some w ->
    Ops.incr_counter "hoare.switches";
    Ops.ready w;
    Ops.deschedule_and_clear c.mon.scratch
  | None -> ()

let switches mon = mon.switch_count
