module Ops = Firefly.Machine.Ops

type t = { bit : int }

let create () = { bit = Ops.alloc 1 }

let rec acquire l =
  if Ops.tas l.bit then begin
    Ops.incr_counter "spin.iterations";
    acquire l
  end

let release l = Ops.clear l.bit
let addr l = l.bit
