(** A Threads-package instance: the Nub's global spin-lock, the alerting
    machinery, and configuration.  One per simulated machine run; create it
    inside the root simulated thread. *)

type t = {
  lock : Spinlock.t;
  alerts : Alerts.t;
  fast_path : bool;
      (** when false, Acquire/Release/P/V/Signal/Broadcast always enter the
          Nub — the ablation of experiment E6 *)
}

val create : ?fast_path:bool -> unit -> t
