(** The single-process co-routine implementation of the Threads interface
    (the paper's "other implementation", which "runs within any single
    process on a normal Unix system").

    No spin-lock, no test-and-set, no eventcount: each visible atomic
    action commits in one simulator instruction (a {!Firefly.Machine.Ops.mem_emit}
    thunk manipulating plain OCaml state), because a co-routine system has
    no true concurrency to protect against.  Blocking threads deschedule;
    wakers ready them, relying on the machine's wakeup-waiting switch for
    the one racy window (a wake arriving between a thread's decision to
    sleep and its deschedule instruction).

    Because it implements the same {!Sync_intf.SYNC} signature and emits
    the same trace events, the conformance checker validates it against the
    same specification — the paper's point that the spec insulates clients
    from a complete change of implementation technique.  One observable
    difference survives abstraction: this Signal never unblocks more than
    one thread, which the specification's weak postcondition also allows. *)

type sync = (module Sync_intf.SYNC with type thread = Threads_util.Tid.t)

(** [make ()] builds a fresh backend instance (thread context). *)
val make : unit -> sync

(** [run body] — drive [body] over a fresh machine with the interleaving
    driver (defaults: round-robin, matching a co-routine scheduler; any
    strategy is safe). *)
val run :
  ?seed:int ->
  ?strategy:Firefly.Sched.t ->
  ?max_steps:int ->
  (sync -> unit) ->
  Firefly.Interleave.report
