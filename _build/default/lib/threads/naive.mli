(** The rejected design: condition variables represented by a binary
    semaphore (paper, Implementation): Wait(m, c) = Release(m); P(c);
    Acquire(m) and Signal(c) = V(c).

    The single bit covers the wakeup-waiting race for Signal, but — as the
    paper explains — "this implementation does not generalize to
    Broadcast": arbitrarily many threads can sit in the race window at the
    semicolon between Release(m) and P(c), and the one available/unavailable
    bit cannot tell them all to resume.  Our Broadcast does the best it can
    (one V per registered waiter), yet consecutive Vs coalesce on the
    binary semaphore and threads are left stranded.  Experiment E5 counts
    them; the exhaustive explorer exhibits a minimal stranding schedule.

    This module is a baseline for experiments, not part of the supported
    interface; it emits the P/V events of the semaphore it really uses. *)

type t

val create : Pkg.t -> t
val wait : t -> Mutex.t -> unit
val signal : t -> unit

(** Best-effort broadcast: one V per waiter registered at entry. *)
val broadcast : t -> unit

(** Waiters currently registered (racy, for metrics). *)
val waiters : t -> int
