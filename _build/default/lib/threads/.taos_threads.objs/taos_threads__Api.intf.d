lib/threads/api.mli: Firefly Pkg Sync_intf Threads_util
