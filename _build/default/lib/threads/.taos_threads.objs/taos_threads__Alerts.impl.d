lib/threads/alerts.ml: Events Firefly Hashtbl Spinlock Threads_util
