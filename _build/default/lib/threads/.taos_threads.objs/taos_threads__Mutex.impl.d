lib/threads/mutex.ml: Events Firefly Fun Pkg Spinlock Tqueue
