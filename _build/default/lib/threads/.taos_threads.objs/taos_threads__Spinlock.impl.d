lib/threads/spinlock.ml: Firefly
