lib/threads/mutex.mli: Firefly Pkg
