lib/threads/hoare.mli:
