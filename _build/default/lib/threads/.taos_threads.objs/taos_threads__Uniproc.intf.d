lib/threads/uniproc.mli: Firefly Sync_intf Threads_util
