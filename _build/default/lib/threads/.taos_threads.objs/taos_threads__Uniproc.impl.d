lib/threads/uniproc.ml: Events Firefly Fun Hashtbl List Sync_intf Threads_util Tqueue
