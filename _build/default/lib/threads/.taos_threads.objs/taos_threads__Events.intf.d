lib/threads/events.mli: Firefly Threads_util Tid
