lib/threads/spinlock.mli:
