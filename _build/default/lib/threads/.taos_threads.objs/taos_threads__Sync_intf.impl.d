lib/threads/sync_intf.ml:
