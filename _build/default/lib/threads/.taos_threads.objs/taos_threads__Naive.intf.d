lib/threads/naive.mli: Mutex Pkg
