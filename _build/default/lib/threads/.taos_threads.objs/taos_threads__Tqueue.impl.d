lib/threads/tqueue.ml: List Threads_util
