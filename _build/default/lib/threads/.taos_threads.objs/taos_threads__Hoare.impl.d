lib/threads/hoare.ml: Firefly Fun Threads_util Tqueue
