lib/threads/tqueue.mli: Threads_util
