lib/threads/condition.ml: Alerts Events Firefly Hashtbl List Mutex Pkg Spinlock Sync_intf Threads_util Tqueue
