lib/threads/api.ml: Alerts Condition Firefly Mutex Pkg Semaphore Sync_intf Threads_util
