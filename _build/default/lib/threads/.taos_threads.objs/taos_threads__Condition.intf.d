lib/threads/condition.mli: Mutex Pkg
