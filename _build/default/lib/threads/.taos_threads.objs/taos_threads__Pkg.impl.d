lib/threads/pkg.ml: Alerts Spinlock
