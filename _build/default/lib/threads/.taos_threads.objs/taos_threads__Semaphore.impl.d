lib/threads/semaphore.ml: Alerts Events Firefly Pkg Spinlock Sync_intf Tqueue
