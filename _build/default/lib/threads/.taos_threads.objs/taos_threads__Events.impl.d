lib/threads/events.ml: Firefly
