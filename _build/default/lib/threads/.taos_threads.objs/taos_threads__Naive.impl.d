lib/threads/naive.ml: Firefly Mutex Semaphore
