lib/threads/pkg.mli: Alerts Spinlock
