lib/threads/semaphore.mli: Pkg
