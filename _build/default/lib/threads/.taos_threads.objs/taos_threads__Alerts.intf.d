lib/threads/alerts.mli: Spinlock Threads_util
