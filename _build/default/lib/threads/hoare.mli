(** Hoare-style monitors (Hoare 1974) — the semantics the Threads design
    deliberately loosened.

    Signal transfers the monitor directly to one waiting thread; the
    signaller suspends on the urgent queue and resumes when the waiter
    leaves.  Consequently the waiter's predicate is {e guaranteed} still
    true on return from [wait] — no re-check loop — at the cost of extra
    mandatory context switches on every signal.  By contrast the Threads
    (Mesa-style) Wait is "only a hint": cheaper signals, but waiters must
    re-evaluate.  Experiment E8 measures the trade on a producer/consumer
    workload.

    Implemented in the cooperative style (single-instruction atomic
    actions); no spec events are emitted — Hoare signal mutates the mutex
    holder, which the Threads specification's [MODIFIES AT MOST \[c\]] for
    Signal forbids, so this baseline is {e deliberately} not a conforming
    implementation of the interface (a fact exercised in tests). *)

type monitor
type cond

val monitor : unit -> monitor
val condition : monitor -> cond

val enter : monitor -> unit
val exit : monitor -> unit
val with_monitor : monitor -> (unit -> 'a) -> 'a

(** [wait c] — atomically leave the monitor and sleep; on return the
    caller holds the monitor again, woken by exactly one [signal]. *)
val wait : cond -> unit

(** [signal c] — if a waiter exists, hand it the monitor and suspend the
    caller on the urgent queue (two forced context switches); otherwise a
    no-op. *)
val signal : cond -> unit

(** Context switches forced by signalling (machine counter
    ["hoare.switches"] also tracks them). *)
val switches : monitor -> int
