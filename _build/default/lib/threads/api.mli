(** Backend assembly: the Firefly-simulator implementation of
    {!Sync_intf.SYNC}, plus run helpers.

    Typical use:

    {[
      let report =
        Taos_threads.Api.run ~seed:42 (fun sync ->
            let module S = (val sync : Taos_threads.Sync_intf.SYNC
                              with type thread = Threads_util.Tid.t) in
            let m = S.mutex () in
            ...)
    ]} *)

type sync = (module Sync_intf.SYNC with type thread = Threads_util.Tid.t)

(** [make pkg] builds the simulator backend over a package instance.
    Must be called from simulated thread context. *)
val make : Pkg.t -> sync

(** [run ?fast_path ?seed ?strategy ?max_steps body] — create a machine,
    a package and the backend inside a root thread, then drive with the
    interleaving driver. *)
val run :
  ?fast_path:bool ->
  ?seed:int ->
  ?strategy:Firefly.Sched.t ->
  ?max_steps:int ->
  ?cost:Firefly.Cost.t ->
  (sync -> unit) ->
  Firefly.Interleave.report

(** [run_timed ~processors body] — same, driven by the cycle-accurate
    timed driver. *)
val run_timed :
  processors:int ->
  ?fast_path:bool ->
  ?seed:int ->
  ?cost:Firefly.Cost.t ->
  ?max_cycles:int ->
  (sync -> unit) ->
  Firefly.Timed.report

(** [build ?fast_path body machine] — spawn the root thread on an existing
    machine (for {!Firefly.Explore}). *)
val build : ?fast_path:bool -> (sync -> unit) -> Firefly.Machine.t -> unit
