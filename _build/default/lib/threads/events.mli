(** Trace-event constructors for the Threads package's atomic actions.

    Kept in one place so the sim and uniprocessor backends emit identical
    events and the conformance checker sees one vocabulary. *)

open Threads_util

val acquire : self:Tid.t -> m:int -> Firefly.Trace.event
val release : self:Tid.t -> m:int -> Firefly.Trace.event

(** Wait's and AlertWait's first atomic action share shape; [proc]
    distinguishes them. *)
val enqueue : proc:string -> self:Tid.t -> m:int -> c:int -> Firefly.Trace.event

val resume : self:Tid.t -> m:int -> c:int -> Firefly.Trace.event

val alert_resume :
  self:Tid.t -> m:int -> c:int -> alerted:bool -> Firefly.Trace.event

val signal : self:Tid.t -> c:int -> removed:Tid.t list -> Firefly.Trace.event

val broadcast :
  self:Tid.t -> c:int -> removed:Tid.t list -> Firefly.Trace.event

val p : self:Tid.t -> s:int -> Firefly.Trace.event
val v : self:Tid.t -> s:int -> Firefly.Trace.event
val alert : self:Tid.t -> target:Tid.t -> Firefly.Trace.event
val test_alert : self:Tid.t -> result:bool -> Firefly.Trace.event
val alert_p : self:Tid.t -> s:int -> alerted:bool -> Firefly.Trace.event
