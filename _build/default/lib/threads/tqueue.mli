(** FIFO queues of thread ids with arbitrary removal (for alert
    cancellation).  These model the Nub's queues of blocked threads; they
    are plain OCaml state because they are only touched under the global
    spin-lock (or inside a single atomic simulator step), never
    concurrently. *)

type t

val create : unit -> t
val is_empty : t -> bool
val length : t -> int

(** [push q t] appends at the tail. *)
val push : t -> Threads_util.Tid.t -> unit

(** [pop q] removes and returns the head, if any. *)
val pop : t -> Threads_util.Tid.t option

(** [pop_all q] removes and returns everything, head first. *)
val pop_all : t -> Threads_util.Tid.t list

(** [remove q t] removes [t] wherever it is; returns whether it was
    present. *)
val remove : t -> Threads_util.Tid.t -> bool

val mem : t -> Threads_util.Tid.t -> bool
val elements : t -> Threads_util.Tid.t list
